package btpan

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// runScat runs a scatternet campaign for the equivalence suite.
func runScat(t *testing.T, piconets, bridges int, streaming bool) *ScatternetResult {
	t.Helper()
	res, err := RunScatternet(ScatternetConfig{
		CampaignConfig: CampaignConfig{
			Seed: 7, Duration: equivDuration(), Scenario: ScenarioSIRAsMasking,
			Streaming: streaming,
		},
		Piconets: piconets,
		Bridges:  bridges,
		HoldTime: 10 * sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestScatternetOnePiconetEquivalence is the seed-equivalence guarantee of
// the scatternet subsystem: a 1-piconet scatternet reproduces the classic
// single-piconet campaign's Table 2/3/4, figures and §6 scalars
// bit-identically on a fixed seed, on both aggregation planes.
func TestScatternetOnePiconetEquivalence(t *testing.T) {
	classic := runEquiv(t, false, 0, 0)
	scat := runScat(t, 1, 0, false)
	if len(scat.Piconets) != 1 {
		t.Fatalf("1-piconet scatternet has %d piconets", len(scat.Piconets))
	}
	compareOutputs(t, "1-piconet scatternet vs classic campaign", classic, scat.Piconet(0))

	streaming := runScat(t, 1, 0, true)
	compareOutputs(t, "streaming 1-piconet scatternet vs classic campaign",
		classic, streaming.Piconet(0))
	if streaming.Piconet(0).Agg == nil {
		t.Fatal("streaming scatternet piconet has no aggregates")
	}
}

// TestScatternetPiconetZeroUnperturbed pins the composition's isolation:
// adding piconets and bridges around piconet 0 cannot change a single float
// of its tables, because no state crosses a simulation-world boundary.
func TestScatternetPiconetZeroUnperturbed(t *testing.T) {
	classic := runEquiv(t, true, 0, 0)
	scat := runScat(t, 3, 2, true)
	compareOutputs(t, "piconet 0 of a 3-piconet/2-bridge scatternet vs classic",
		classic, scat.Piconet(0))
}

// TestScatternetBridgeAccounting checks the bridge-attributed aggregate's
// internal consistency on a real multi-piconet run: one row per bridge, a
// live hold-time rotation, and outage bookkeeping that agrees between the
// per-bridge and per-piconet views.
func TestScatternetBridgeAccounting(t *testing.T) {
	scat := runScat(t, 3, 2, true)
	bt := scat.Bridges
	if len(bt.Rows) != 2 {
		t.Fatalf("expected 2 bridge rows, got %d", len(bt.Rows))
	}
	corr := 0
	for _, r := range bt.Rows {
		if len(r.Serves) != 2 {
			t.Errorf("%s serves %v, want 2 piconets", r.Bridge, r.Serves)
		}
		if r.Hops == 0 {
			t.Errorf("%s never completed a residency switch", r.Bridge)
		}
		for _, c := range r.Coupling {
			if c.Outages != r.Outages {
				t.Errorf("%s: piconet %d saw %d outages, bridge recorded %d (must be correlated)",
					r.Bridge, c.Piconet, c.Outages, r.Outages)
			}
			corr += c.Outages
		}
		if r.Downtime.N() != r.Outages {
			t.Errorf("%s: %d downtime samples for %d outages", r.Bridge, r.Downtime.N(), r.Outages)
		}
		delivered := 0
		for _, c := range r.Coupling {
			delivered += c.Delivered
		}
		if delivered != r.Relayed {
			t.Errorf("%s: per-piconet deliveries %d != total relayed %d", r.Bridge, delivered, r.Relayed)
		}
	}
	if got := bt.CorrelatedOutages(); got != corr {
		t.Errorf("CorrelatedOutages() = %d, per-coupling sum = %d", got, corr)
	}
	if bt.TotalRelayed() == 0 {
		t.Error("no relay SDU was delivered across piconets in a virtual day")
	}
}

// TestScatternetSweep runs a small scatternet sweep and checks the
// piconet-0 view plus the coupling CIs are populated.
func TestScatternetSweep(t *testing.T) {
	res, err := Sweep(SweepConfig{
		BaseSeed: 1, Seeds: 2, Duration: 6 * Hour, Scenario: ScenarioSIRAs,
		Workers: 2, Piconets: 2, Bridges: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scatternets) != 2 {
		t.Fatalf("expected 2 scatternet runs, got %d", len(res.Scatternets))
	}
	if res.Runs[0] != res.Scatternets[0].Piconets[0] {
		t.Error("Runs[0] is not seed 0's piconet-0 result")
	}
	if ci := res.PiconetDependabilityCI(1); ci == nil || ci.Seeds != 2 {
		t.Errorf("PiconetDependabilityCI(1) = %+v, want 2 seeds", ci)
	}
	if res.PiconetDependabilityCI(2) != nil {
		t.Error("PiconetDependabilityCI out of range should be nil")
	}
	if ci := res.CorrelatedOutagesCI(); ci.N != 2 {
		t.Errorf("CorrelatedOutagesCI over %d seeds, want 2", ci.N)
	}
	if ci := res.RelayDepthCI(); ci == nil || ci.Seeds != 2 || len(ci.Rows) == 0 {
		t.Errorf("RelayDepthCI = %+v, want 2 seeds with rows", ci)
	}
	if ci := res.RedundancyCI(); ci == nil || ci.Seeds != 2 || ci.MemberOutages.N != 2 {
		t.Errorf("RedundancyCI = %+v, want 2 seeds", ci)
	}
}

// TestScatternetSweepSharedRandomTopology pins that a random-topology sweep
// materializes ONE graph from the base seed and reuses it for every seed —
// the CIs must measure seed-to-seed variation, not topology churn.
func TestScatternetSweepSharedRandomTopology(t *testing.T) {
	res, err := Sweep(SweepConfig{
		BaseSeed: 5, Seeds: 2, Duration: 2 * Hour, Scenario: ScenarioSIRAs,
		Workers: 2, Piconets: 3, Bridges: 3, Topology: TopologyRandom,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.Scatternets[0].Topology, res.Scatternets[1].Topology
	if !reflect.DeepEqual(a, b) {
		t.Errorf("seeds ran different random topologies:\nseed 0: %+v\nseed 1: %+v", a, b)
	}
	if a.Bridges() != 3 || !a.Connected() {
		t.Errorf("sweep topology %+v, want 3 connected bridges", a)
	}
}
