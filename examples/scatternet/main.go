// Scatternet: compose the paper's piconet campaigns into a bridged
// multi-piconet topology and measure what single-piconet studies cannot —
// the failure coupling that bridge nodes introduce. Three piconets are
// connected in a ring by two bridges that time-share membership on a
// hold-time schedule and relay inter-piconet traffic through the real
// HCI → L2CAP → BNEP → PAN path; every bridge failure (from the same
// device/recovery processes as any testbed node) takes the inter-piconet
// service of both piconets it serves down with it.
//
// Usage: scatternet [-days D]
package main

import (
	"flag"
	"fmt"

	btpan "repro"
	"repro/internal/sim"
)

func main() {
	days := flag.Int("days", 2, "virtual campaign days")
	flag.Parse()

	cfg := btpan.ScatternetConfig{
		CampaignConfig: btpan.CampaignConfig{
			Seed:     21,
			Duration: sim.Time(*days) * btpan.Day,
			Scenario: btpan.ScenarioSIRAs,
			// Streaming aggregation: each piconet folds its records into
			// running aggregates in flight, so memory stays O(piconets)
			// no matter how long the campaign runs.
			Streaming: true,
		},
		Piconets: 3,
		Bridges:  2,
		HoldTime: 30 * sim.Second,
	}
	fmt.Printf("%d virtual day(s), %d piconets (2 testbeds each), %d bridges, %v hold time...\n\n",
		*days, cfg.Piconets, cfg.Bridges, cfg.HoldTime)
	res, err := btpan.RunScatternet(cfg)
	if err != nil {
		panic(err)
	}

	fmt.Printf("per-piconet dependability (each piconet is a full paper campaign):\n%s\n",
		res.Overview().Render())

	fmt.Printf("bridge-attributed coupling:\n%s\n", res.Bridges.Render())

	fmt.Printf("lesson: %d bridge failures became %d correlated piconet-level outages\n",
		res.Bridges.TotalOutages(), res.Bridges.CorrelatedOutages())
	fmt.Printf("(%.0f s of inter-piconet downtime) — in a scatternet, a bridge is a\n",
		res.Bridges.TotalDowntimeSeconds())
	fmt.Println("shared failure domain: harden bridges first, or span piconets redundantly.")
}
