// Scatternet: compose the paper's piconet campaigns into a bridged
// multi-piconet topology and measure what single-piconet studies cannot —
// the failure coupling that bridge nodes introduce, how store-and-forward
// delay grows with relay depth, and what bridge redundancy buys back. Four
// piconets hang off a star topology (every inter-spoke route relays through
// two bridges) with two bridges per span (-redundancy 2 in btcampaign
// terms): bridges time-share membership on a hold-time schedule, relay
// inter-piconet traffic through the real HCI → L2CAP → BNEP → PAN path, and
// fail through the same device/recovery processes as any testbed node — but
// a span's inter-piconet service only counts as down while BOTH its bridges
// are down at once.
//
// Usage: scatternet [-days D]
package main

import (
	"flag"
	"fmt"

	btpan "repro"
	"repro/internal/sim"
)

func main() {
	days := flag.Int("days", 2, "virtual campaign days")
	flag.Parse()

	cfg := btpan.ScatternetConfig{
		CampaignConfig: btpan.CampaignConfig{
			Seed:     21,
			Duration: sim.Time(*days) * btpan.Day,
			Scenario: btpan.ScenarioSIRAs,
			// Streaming aggregation: each piconet folds its records into
			// running aggregates in flight, so memory stays O(piconets)
			// no matter how long the campaign runs.
			Streaming: true,
		},
		Piconets:   4,
		Topology:   btpan.TopologyStar,
		Redundancy: 2,
		HoldTime:   30 * sim.Second,
	}
	fmt.Printf("%d virtual day(s), %d piconets (2 testbeds each), star topology, %d bridges (2 per span), %v hold time...\n\n",
		*days, cfg.Piconets, 2*(cfg.Piconets-1), cfg.HoldTime)
	res, err := btpan.RunScatternet(cfg)
	if err != nil {
		panic(err)
	}

	fmt.Printf("per-piconet dependability (each piconet is a full paper campaign):\n%s\n",
		res.Overview().Render())

	fmt.Printf("bridge-attributed coupling:\n%s\n", res.Bridges.Render())

	fmt.Printf("relay delay vs depth (hub routes are 1 hop, spoke-to-spoke 2):\n%s\n",
		res.RelayDepth.Render())

	fmt.Printf("redundancy groups (all-down vs the independent 1-of-2 model):\n%s\n",
		res.Redundancy.Render())

	fmt.Printf("lesson: %d bridge failures, but only %d all-down span outages (%.0f s)\n",
		res.Redundancy.MemberOutages(), res.Redundancy.AllDownEpisodes(),
		res.Redundancy.AllDownSeconds())
	fmt.Println("— spanning each piconet pair twice turns a shared failure domain into a")
	fmt.Println("redundant one, exactly the paper's closing recommendation, now measured.")
}
