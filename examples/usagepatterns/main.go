// Usagepatterns: extract the paper's §6 guidance for writing robust
// Bluetooth PAN applications from a fresh campaign — which baseband packet
// types to prefer (Figure 3a), why young connections fail more (Figure 3b),
// and which application patterns stress the channel (Figure 3c).
package main

import (
	"fmt"

	btpan "repro"
	"repro/internal/analysis"
)

func main() {
	res, err := btpan.RunCampaign(btpan.CampaignConfig{
		Seed:     3,
		Duration: 4 * btpan.Day,
		Scenario: btpan.ScenarioSIRAs,
	})
	if err != nil {
		panic(err)
	}

	fmt.Print(analysis.RenderBars(
		"Figure 3a -- packet losses per byte by packet type (random workload)",
		res.Fig3a(), 40))
	fmt.Println("lesson: prefer multi-slot packets, and DHx over DMx — strict error")
	fmt.Println("control means more retransmissions, hence more flush-limit drops.")
	fmt.Println()

	fixed, err := btpan.RunFixedExperiment(btpan.FixedExperimentConfig{
		Seed: 3, Duration: 10 * btpan.Day,
	})
	if err != nil {
		panic(err)
	}
	fmt.Print(analysis.RenderBars(
		"Figure 3b -- losses by packets sent before the loss (fixed workload)",
		btpan.Fig3b(fixed, 1000, 10), 40))
	fmt.Println("lesson: connections fail young (latent setup defects); keep an")
	fmt.Println("already-open connection up instead of cycling connect/disconnect.")
	fmt.Println()

	fmt.Print(analysis.RenderBars(
		"Figure 3c -- losses by application (realistic workload)",
		res.Fig3c(), 40))
	fmt.Println("lesson: long continuous transfers (P2P, streaming) overload the")
	fmt.Println("channel; intermittent use (Web, mail, FTP) is far gentler on BT PANs.")

	s := res.Scalars()
	fmt.Printf("\nidle connections are safe: mean idle before failed cycles %.1f s vs %.1f s before clean ones\n",
		s.IdleBeforeFailedMean, s.IdleBeforeCleanMean)
}
