// Masking: reproduce the paper's headline dependability claim — SIRAs plus
// error-masking strategies improve availability by 3.64 % (up to 36.6 %)
// and MTTF-reliability by 202 % — by running the same campaign under all
// four recovery regimes of Table 4.
package main

import (
	"fmt"

	btpan "repro"
)

func main() {
	const days = 6
	fmt.Printf("running the four Table-4 scenarios, %d virtual days each...\n\n", days)
	t4, err := btpan.Table4(7, days*btpan.Day)
	if err != nil {
		panic(err)
	}
	fmt.Print(t4.Render())

	vsReboot, vsAppReboot, mttfGain := t4.Improvement()
	fmt.Println("\npaper vs measured:")
	fmt.Printf("  availability gain vs reboot-only:     36.6%%  ->  %+.1f%%\n", vsReboot)
	fmt.Printf("  availability gain vs app-restart:      3.64%% ->  %+.2f%%\n", vsAppReboot)
	fmt.Printf("  MTTF (reliability) gain with masking: 202%%   ->  %+.0f%%\n", mttfGain)

	masked := t4.Columns[3]
	fmt.Printf("\nwith masking, %d failures were observed while %.1f%% of would-be\n",
		masked.Failures, masked.MaskingPct)
	fmt.Println("failures were suppressed before users could see them; the unmasked")
	fmt.Printf("residue is severe, which is why MTTR rises to %.1f s (paper: 120.84 s)\n", masked.MTTR)
}
