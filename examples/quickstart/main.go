// Quickstart: run a short failure-data campaign on the simulated Bluetooth
// PAN testbeds and print what failed, how often, and how dependable the
// piconet was.
package main

import (
	"fmt"
	"sort"

	btpan "repro"
	"repro/internal/core"
)

func main() {
	res, err := btpan.RunCampaign(btpan.CampaignConfig{
		Seed:     42,
		Duration: 2 * btpan.Day,
		Scenario: btpan.ScenarioSIRAs,
	})
	if err != nil {
		panic(err)
	}

	users, system, total := res.DataItems()
	fmt.Printf("2 virtual days, 2 testbeds (random + realistic workloads), 7 nodes each\n")
	fmt.Printf("failure data items: %d user-level + %d system-level = %d\n\n", users, system, total)

	counts := map[core.UserFailure]int{}
	for _, r := range res.AllReports() {
		if !r.Masked {
			counts[r.Failure]++
		}
	}
	type row struct {
		f core.UserFailure
		n int
	}
	var rows []row
	for f, n := range counts {
		rows = append(rows, row{f, n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	fmt.Println("user-level failures by type:")
	for _, r := range rows {
		fmt.Printf("  %-26s %4d\n", r.f, r.n)
	}

	d := res.Dependability()
	fmt.Printf("\nMTTF %.1f s   MTTR %.1f s   availability %.3f   coverage %.1f%%\n",
		d.MTTF, d.MTTR, d.Availability, d.CoveragePct)
	fmt.Println("\n(see cmd/btrepro for the full paper reproduction)")
}
