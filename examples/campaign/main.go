// Campaign: the full collection pipeline, end to end — two 7-node testbeds
// under their workloads, per-node LogAnalyzer daemons filtering and shipping
// failure data over TCP to a central repository, and the merge-and-coalesce
// analysis run over the repository's contents (exactly the paper's §3
// infrastructure).
package main

import (
	"fmt"
	"time"

	btpan "repro"
	"repro/internal/analysis"
	"repro/internal/coalesce"
	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/testbed"
)

func main() {
	fmt.Println("1. running both testbeds for 3 virtual days...")
	res, err := btpan.RunCampaign(btpan.CampaignConfig{
		Seed:     11,
		Duration: 3 * btpan.Day,
		Scenario: btpan.ScenarioSIRAs,
	})
	if err != nil {
		panic(err)
	}
	u, s, _ := res.DataItems()
	fmt.Printf("   %d user reports, %d system entries on the nodes' local logs\n", u, s)

	fmt.Println("2. starting the central repository (TCP)...")
	repo, err := collector.NewRepository("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer repo.Close()
	fmt.Printf("   listening on %s\n", repo.Addr())

	fmt.Println("3. each node's LogAnalyzer extracts, filters, ships...")
	analyzers := 0
	for _, tb := range []*testbed.Results{res.Random, res.Realistic} {
		for node := range tb.PerNodeEntries {
			test := logging.NewTestLog(node)
			for _, r := range tb.PerNodeReports[node] {
				test.Append(r)
			}
			sys := logging.NewSystemLog(node)
			for _, e := range tb.PerNodeEntries[node] {
				sys.Append(e)
			}
			a := collector.NewLogAnalyzer(node, tb.Name, test, sys,
				repo.Addr(), collector.DefaultFilter())
			if err := a.FlushOnce(); err != nil {
				panic(err)
			}
			analyzers++
		}
	}
	// Wait for the asynchronous receive side to drain.
	deadline := time.Now().Add(3 * time.Second)
	for {
		_, entries, batches := repo.Stats()
		if batches >= analyzers || time.Now().After(deadline) {
			_ = entries
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	gotReports, gotEntries, batches := repo.Stats()
	fmt.Printf("   %d daemons shipped %d batches: repository holds %d reports / %d entries\n",
		analyzers, batches, gotReports, gotEntries)

	fmt.Println("4. merge-and-coalesce over the repository data...")
	reports := repo.Reports()
	entries := repo.Entries()
	events := coalesce.Merge(reports, entries)
	curve := coalesce.Sensitivity(events, coalesce.DefaultWindows())
	knee, _ := curve.Knee()
	fmt.Printf("   sensitivity knee at %.0f s (paper: 330 s)\n", knee)

	perNodeReports := map[string][]core.UserReport{}
	perNodeEntries := map[string][]core.SystemEntry{}
	for _, r := range reports {
		key := r.Testbed + "/" + r.Node
		perNodeReports[key] = append(perNodeReports[key], r)
	}
	for _, e := range entries {
		key := e.Testbed + "/" + e.Node
		perNodeEntries[key] = append(perNodeEntries[key], e)
	}
	// Present per testbed so the NAP log pairs with its own PANUs.
	ev := coalesce.NewEvidence()
	for _, tbName := range []string{"random", "realistic"} {
		nr := map[string][]core.UserReport{}
		ne := map[string][]core.SystemEntry{}
		for k, v := range perNodeReports {
			if len(k) > len(tbName) && k[:len(tbName)] == tbName {
				nr[k[len(tbName)+1:]] = v
			}
		}
		for k, v := range perNodeEntries {
			if len(k) > len(tbName) && k[:len(tbName)] == tbName {
				ne[k[len(tbName)+1:]] = v
			}
		}
		analysis.BuildEvidence(ev, nr, ne, "Giallo", coalesce.PaperWindow)
	}
	t2 := analysis.BuildTable2(ev)
	fmt.Printf("   HCI share of user failures: %.1f%% (paper: 49.9%%)\n",
		t2.SourceShare(core.SrcHCI))
	fmt.Println("\ndone — see cmd/btanalyze to run this pipeline over files on disk.")
}
