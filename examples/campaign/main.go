// Campaign: the full collection pipeline, end to end — two 7-node testbeds
// under their workloads, per-node LogAnalyzer daemons filtering and shipping
// failure data over TCP (compact binary frames) to a central repository that
// folds the records into running aggregates as they arrive (exactly the
// paper's §3 infrastructure, scaled for month-long campaigns), followed by a
// multi-seed sweep that puts 95 % confidence intervals on Table 2.
//
// Usage: campaign [-days D] [-seeds N]
package main

import (
	"flag"
	"fmt"
	"time"

	btpan "repro"
	"repro/internal/analysis"
	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/sim"
	"repro/internal/testbed"
)

func main() {
	days := flag.Int("days", 2, "virtual days per campaign")
	seeds := flag.Int("seeds", 3, "sweep seeds for the confidence intervals")
	flag.Parse()
	duration := sim.Time(*days) * btpan.Day

	fmt.Printf("1. running both testbeds for %d virtual day(s)...\n", *days)
	res, err := btpan.RunCampaign(btpan.CampaignConfig{
		Seed:     11,
		Duration: duration,
		Scenario: btpan.ScenarioSIRAs,
	})
	if err != nil {
		panic(err)
	}
	u, s, _ := res.DataItems()
	fmt.Printf("   %d user reports, %d system entries on the nodes' local logs\n", u, s)

	fmt.Println("2. starting the central repository (TCP, streaming aggregation)...")
	repo, err := collector.NewStreamingRepository("127.0.0.1:0", streamSpec(res))
	if err != nil {
		panic(err)
	}
	defer repo.Close()
	fmt.Printf("   listening on %s\n", repo.Addr())

	fmt.Println("3. each node's LogAnalyzer extracts, filters, ships binary frames...")
	analyzers := 0
	for _, tb := range []*testbed.Results{res.Random, res.Realistic} {
		for node := range tb.PerNodeEntries {
			test := logging.NewTestLog(node)
			for _, r := range tb.PerNodeReports[node] {
				test.Append(r)
			}
			sys := logging.NewSystemLog(node)
			for _, e := range tb.PerNodeEntries[node] {
				sys.Append(e)
			}
			a := collector.NewLogAnalyzer(node, tb.Name, test, sys,
				repo.Addr(), collector.DefaultFilter())
			if err := a.FlushOnce(); err != nil {
				panic(err)
			}
			// An empty extraction ships no batch; count what actually went
			// out, or the rendezvous below would wait for ghosts.
			analyzers += a.Shipped()
		}
	}
	// Rendezvous with the asynchronous receive side (no sleep polling: the
	// repository signals as batches land and wakes waiters on close).
	if !repo.WaitForBatches(analyzers, 5*time.Second) {
		panic("repository did not receive every batch")
	}
	if n := repo.Rejected(); n > 0 {
		panic(fmt.Sprintf("repository rejected %d batches", n))
	}
	gotReports, gotEntries, batches := repo.Stats()
	fmt.Printf("   %d daemons shipped %d batches: repository folded %d reports / %d entries\n",
		analyzers, batches, gotReports, gotEntries)

	fmt.Println("4. the paper tables come straight from the folded aggregates...")
	agg := repo.Aggregates()
	t2 := agg.Table2()
	fmt.Printf("   HCI share of user failures: %.1f%% (paper: 49.9%%)\n",
		t2.SourceShare(core.SrcHCI))
	d := agg.Dependability(btpan.ScenarioSIRAs.String())
	fmt.Printf("   MTTF %.2f s, MTTR %.2f s, availability %.3f\n",
		d.MTTF, d.MTTR, d.Availability)

	fmt.Printf("5. sweeping %d seeds for confidence intervals on Table 2...\n", *seeds)
	sweep, err := btpan.Sweep(btpan.SweepConfig{
		BaseSeed: 100, Seeds: *seeds, Duration: duration,
		Scenario: btpan.ScenarioSIRAs,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println()
	fmt.Print(sweep.Table2CI().Render())
	fmt.Println("\ndone — see cmd/btcampaign for month-scale runs (-days 30..540).")
}

// streamSpec declares the campaign's streams to the repository: node names
// repeat across the two testbeds, so each (testbed, node) pair is its own
// shard.
func streamSpec(res *btpan.CampaignResult) analysis.StreamSpec {
	spec := analysis.StreamSpec{}
	for _, tb := range []struct {
		r    *testbed.Results
		kind core.WorkloadKind
	}{{res.Random, core.WLRandom}, {res.Realistic, core.WLRealistic}} {
		entry := analysis.TestbedSpec{Name: tb.r.Name, Kind: tb.kind, NAP: tb.r.NAPNode}
		for node := range tb.r.PerNodeReports {
			entry.PANUs = append(entry.PANUs, node)
		}
		spec.Testbeds = append(spec.Testbeds, entry)
	}
	return spec
}
