// Command distributed demonstrates the distributed collection plane in one
// process: a collection sink and two testbed-shard agents (the random and
// realistic workloads) talk over loopback TCP with seeded fault injection —
// 10 % of data frames dropped, 10 % duplicated, 15 % reordered — and the
// campaign still reproduces the single-process streaming tables digit for
// digit, because retransmission and sequence-number deduplication hide the
// lossy network completely. The same deployment runs as real OS processes
// with cmd/btsink and cmd/btagent (see OPERATIONS.md).
package main

import (
	"fmt"
	"os"
	"time"

	btpan "repro"
	"repro/internal/collector"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/workload"
)

func main() {
	cfg := btpan.CampaignConfig{
		Seed: 1, Duration: 12 * btpan.Hour,
		Scenario: btpan.ScenarioSIRAsMasking, Streaming: true,
	}

	campaign := collector.CampaignID{Seed: cfg.Seed, Duration: cfg.Duration,
		Scenario: int(cfg.Scenario)}
	sink, err := collector.NewSink(collector.SinkConfig{
		Addr: "127.0.0.1:0", Campaign: campaign, Spec: testbed.CampaignStreamSpec()})
	if err != nil {
		fatal(err)
	}
	defer sink.Close()
	fmt.Printf("sink listening on %s\n", sink.Addr())

	randomOpts, realisticOpts := testbed.CampaignOptions(cfg.Seed, cfg.Scenario, cfg.Duration)
	errs := make(chan error, 2)
	for i, opts := range []testbed.Options{randomOpts, realisticOpts} {
		fault := collector.FaultConfig{
			Seed: uint64(i) + 1, Drop: 0.1, Duplicate: 0.1, Reorder: 0.15,
		}
		go func(opts testbed.Options, fault collector.FaultConfig) {
			errs <- runShard(opts, campaign, sink.Addr(), cfg.Duration, fault)
		}(opts, fault)
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			fatal(err)
		}
	}

	rep, err := sink.Wait(2 * time.Minute)
	if err != nil {
		fatal(err)
	}
	res, err := btpan.ResultFromAggregates(cfg, rep.Agg, rep.Counters, rep.Durations)
	if err != nil {
		fatal(err)
	}
	btpan.WriteReport(os.Stdout, res)
	applied, dups, rejected := sink.Stats()
	fmt.Printf("\ntransport: %d batches applied, %d duplicates filtered, %d rejected, %d sequence gaps\n",
		applied, dups, rejected, rep.Agg.SeqGaps)
}

// runShard mirrors cmd/btagent: one testbed streamed through an uplink.
func runShard(opts testbed.Options, campaign collector.CampaignID, addr string,
	duration sim.Time, fault collector.FaultConfig) error {
	tb, err := testbed.New(opts)
	if err != nil {
		return err
	}
	nodes := make([]string, 0, len(tb.PANUs)+1)
	for _, h := range tb.PANUs {
		nodes = append(nodes, h.Node)
	}
	nodes = append(nodes, tb.NAP.Node)
	agent, err := collector.NewAgent(collector.AgentConfig{
		Addr: addr, Campaign: campaign, Testbed: opts.Name, Nodes: nodes, Fault: fault})
	if err != nil {
		return err
	}
	defer agent.Close()
	tb.StreamTo(agent, sim.Hour)
	tb.Run(duration)
	tb.FinishStream(agent)
	res := tb.Results()
	counters := make(map[string]*workload.CountersSnapshot, len(res.Counters))
	for node, c := range res.Counters {
		counters[node] = c.Snapshot()
	}
	return agent.Finish(counters, duration, time.Minute)
}

// fatal prints the error and exits non-zero.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "distributed:", err)
	os.Exit(1)
}
