package btpan

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestScatternetRollupPublicAPI drives the hierarchical roll-up through the
// public surface: Rollup mode must return the metro report instead of
// per-piconet results, Overview() must fall back to the roll-up's overview,
// and the render must carry the deployment tables.
func TestScatternetRollupPublicAPI(t *testing.T) {
	cfg := ScatternetConfig{
		CampaignConfig: CampaignConfig{
			Seed: 5, Duration: 2 * sim.Hour, Scenario: ScenarioSIRAs, Streaming: true,
		},
		Piconets: 4, Topology: TopologyRing,
		ProbeSample: 0.5, Rollup: true,
	}
	res, err := RunScatternet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rollup == nil {
		t.Fatal("Rollup mode returned no roll-up")
	}
	if len(res.Piconets) != 0 {
		t.Fatalf("Rollup mode retained %d per-piconet results, want none", len(res.Piconets))
	}
	overview := res.Overview()
	if overview == nil || len(overview.Rows) != 4 {
		t.Fatalf("Overview() fallback = %+v, want the roll-up's 4 rows", overview)
	}
	out := res.Rollup.Render()
	for _, want := range []string{
		"Scatternet roll-up: 4 piconets",
		"Deployment Table 2",
		"Deployment Table 3",
		"Piconet overview",
		"All-bridge summary",
		"pair sample fraction 0.5000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("roll-up render is missing %q:\n%s", want, out)
		}
	}

	// Rollup without the streaming plane must be rejected up front.
	bad := cfg
	bad.Streaming = false
	if err := bad.Validate(); err == nil {
		t.Error("Rollup without Streaming must fail validation")
	}
	if _, err := RunScatternet(bad); err == nil {
		t.Error("RunScatternet must reject Rollup without Streaming")
	}
}

// TestScatternetRollupTaxonomyShardInvariant pins the taxonomy plane's
// shard-count invariance: the deployment taxonomy table, the Kaplan-Meier
// uptime curve and the partition-candidate list rendered from a roll-up must
// be byte-identical whether one worker folded every piconet sequentially or
// three workers folded contiguous ranges concurrently. Uptime intervals are
// censored at the horizon per piconet before the fold merges them, so the
// merged curve cannot depend on fold grouping.
func TestScatternetRollupTaxonomyShardInvariant(t *testing.T) {
	render := func(parallelism int) string {
		cfg := ScatternetConfig{
			CampaignConfig: CampaignConfig{
				Seed: 5, Duration: 2 * sim.Hour, Scenario: ScenarioSIRAs,
				Streaming: true, Parallelism: parallelism,
			},
			Piconets: 4, Topology: TopologyRing,
			ProbeSample: 0.5, Rollup: true,
		}
		res, err := RunScatternet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := res.Rollup.RenderTaxonomy(cfg.Duration)
		if res.Topology.Bridges() > 0 {
			out += "\n" + res.Redundancy.RenderPartitionCandidates(30)
		}
		return out
	}
	seq := render(1)
	par := render(3)
	if seq != par {
		t.Errorf("taxonomy roll-up differs across shard counts:\n-- sequential --\n%s\n-- 3 shards --\n%s",
			seq, par)
	}
	for _, want := range []string{"Deployment failure taxonomy", "Kaplan-Meier", "failure interarrival"} {
		if !strings.Contains(seq, want) {
			t.Errorf("taxonomy roll-up is missing %q:\n%s", want, seq)
		}
	}
}

// TestRandomSweepBuildsTopologyOnce is the hot-loop regression guard for
// random-topology sweeps: the RandomConnected graph is a function of the
// base seed alone, so a sweep must materialize it once up front (plus one
// probe build inside Validate) — not once per seed inside the worker pool.
func TestRandomSweepBuildsTopologyOnce(t *testing.T) {
	before := randomTopologyBuilds.Load()
	res, err := Sweep(SweepConfig{
		BaseSeed: 7, Seeds: 5, Duration: 1 * sim.Hour, Scenario: ScenarioSIRAs,
		Piconets: 4, Bridges: 5, Topology: TopologyRandom, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	builds := randomTopologyBuilds.Load() - before
	if builds > 2 {
		t.Errorf("5-seed random sweep built the topology %d times, want at most 2 (validate probe + materialization)", builds)
	}
	members := res.Scatternets[0].Topology.Members
	for i, r := range res.Scatternets {
		if len(r.Topology.Members) != len(members) {
			t.Fatalf("seed %d ran a different topology (%d vs %d bridges) — the shared map was not pinned",
				i, len(r.Topology.Members), len(members))
		}
	}
}
