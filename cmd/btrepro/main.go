// Command btrepro regenerates every table and figure of the paper's
// evaluation section and prints paper-vs-measured values.
//
// Usage:
//
//	btrepro [-seed N] [-days D] [-quick] [-only ID]
//
// IDs: table2, table3, table4, fig2, fig3a, fig3b, fig3c, fig4, scalars.
// Without -only, everything runs. -quick shrinks the observation windows for
// a fast smoke run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	btpan "repro"
	"repro/internal/analysis"
	"repro/internal/coalesce"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	seed := flag.Uint64("seed", 1, "campaign seed")
	days := flag.Int("days", 8, "virtual campaign days per scenario")
	quick := flag.Bool("quick", false, "fast smoke run (shorter windows)")
	only := flag.String("only", "", "run a single experiment (table2, table3, table4, fig2, fig3a, fig3b, fig3c, fig4, scalars)")
	flag.Parse()

	dur := sim.Time(*days) * sim.Day
	fixedDur := 16 * sim.Day
	if *quick {
		dur = 2 * sim.Day
		fixedDur = 4 * sim.Day
	}

	want := func(id string) bool { return *only == "" || *only == id }

	needCampaign := want("table2") || want("table3") || want("fig2") ||
		want("fig3a") || want("fig3c") || want("fig4") || want("scalars")

	var res *btpan.CampaignResult
	if needCampaign {
		fmt.Printf("== campaign: %v per testbed, seed %d, scenario SIRAs ==\n", dur, *seed)
		var err error
		res, err = btpan.RunCampaign(btpan.CampaignConfig{
			Seed: *seed, Duration: dur, Scenario: btpan.ScenarioSIRAs,
		})
		if err != nil {
			fatal(err)
		}
		u, s, tot := res.DataItems()
		fmt.Printf("collected %d user reports + %d system entries = %d items\n\n", u, s, tot)
	}

	if want("fig2") {
		curve, knee := res.SensitivityCurve()
		fmt.Println("== Figure 2: coalescence-window sensitivity ==")
		fmt.Printf("paper: knee at 330 s; measured knee: %.0f s (%d-point curve)\n", knee, curve.Len())
		fmt.Println(sampleCurve(curve))
	}

	if want("table2") {
		t2 := res.Table2()
		fmt.Println("== Table 2: error-failure relationship (row % local/NAP) ==")
		fmt.Print(t2.Render())
		fmt.Printf("\npaper anchors: HCI explains 49.9%% of failures -> measured %.1f%%\n",
			t2.SourceShare(core.SrcHCI))
		fmt.Printf("  PAN connect <- SDP 96.5%% -> measured %.1f%%\n",
			t2.RowShare(core.UFPANConnectFailed, core.SrcSDP))
		fmt.Printf("  Sw role request <- HCI 91.1%% -> measured %.1f%%\n\n",
			t2.RowShare(core.UFSwitchRoleRequestFailed, core.SrcHCI))
	}

	if want("table3") {
		t3 := res.Table3()
		fmt.Println("== Table 3: SIRA effectiveness (row %) ==")
		fmt.Print(t3.Render())
		fmt.Printf("\npaper anchors: NAP-not-found -> stack reset 61.4%% -> measured %.1f%%\n",
			t3.Share(core.UFNAPNotFound, core.RABTStackReset))
		fmt.Printf("  packet loss -> socket reset 5.9%% -> measured %.1f%%\n",
			t3.Share(core.UFPacketLoss, core.RAIPSocketReset))
		fmt.Printf("  connect failed expensive (>=app restart) 84.6%% -> measured %.1f%%\n\n",
			t3.ExpensiveShare(core.UFConnectFailed))
	}

	if want("table4") {
		fmt.Println("== Table 4: dependability improvement (4 scenario campaigns) ==")
		t4, err := btpan.Table4(*seed, dur)
		if err != nil {
			fatal(err)
		}
		fmt.Print(t4.Render())
		a, b, m := t4.Improvement()
		fmt.Printf("\npaper: avail +36.6%% vs reboot-only -> measured %+.1f%%\n", a)
		fmt.Printf("paper: avail +3.64%% vs app+reboot -> measured %+.2f%%\n", b)
		fmt.Printf("paper: MTTF +202%% with masking -> measured %+.0f%%\n\n", m)
	}

	if want("fig3a") {
		fmt.Println("== Figure 3a: packet loss by baseband packet type (random WL) ==")
		fmt.Print(analysis.RenderBars("per-byte loss share (paper: DM1 worst ... DH5 best; prefer multi-slot, prefer DHx)",
			res.Fig3a(), 40))
		fmt.Println()
	}

	if want("fig3b") {
		fmt.Println("== Figure 3b: packet loss vs connection age (fixed WL, Verde+Win) ==")
		fres, err := btpan.RunFixedExperiment(btpan.FixedExperimentConfig{Seed: *seed, Duration: fixedDur})
		if err != nil {
			fatal(err)
		}
		bars := btpan.Fig3b(fres, 1000, 10)
		fmt.Print(analysis.RenderBars("share of losses by packets sent before the loss (paper: young connections fail more)",
			bars, 40))
		fmt.Println()
	}

	if want("fig3c") {
		fmt.Println("== Figure 3c: packet loss by application (realistic WL) ==")
		fmt.Print(analysis.RenderBars("share of losses by emulated application (paper: P2P > Streaming > Web/Mail/FTP)",
			res.Fig3c(), 40))
		fmt.Println()
	}

	if want("fig4") {
		fmt.Println("== Figure 4: user failures per host (realistic WL) ==")
		fmt.Print(analysis.RenderFig4(res.Fig4()))
		fmt.Println("paper: bind failures only on Azzurro and Win; switch-role-command failures concentrate on the PDAs")
		fmt.Println()
	}

	if want("scalars") {
		s := res.Scalars()
		fmt.Println("== Section 6 scalars ==")
		fmt.Printf("random workload share of failures: paper 84%% -> measured %.1f%%\n", s.RandomSharePct)
		fmt.Printf("idle time before failed cycles:    paper 27.3 s -> measured %.1f s\n", s.IdleBeforeFailedMean)
		fmt.Printf("idle time before clean cycles:     paper 26.9 s -> measured %.1f s\n", s.IdleBeforeCleanMean)
		fmt.Printf("failure share by distance (paper 33.33/37.14/29.63 %% at 0.5/5/7 m):\n")
		for _, d := range []float64{0.5, 5, 7} {
			fmt.Printf("  %.1f m: %.2f%%\n", d, s.DistanceShares[d])
		}
		fmt.Printf("window: %v of paper-scale operation (paper: 18 months, 356,551 items)\n", dur)
	}

	_ = coalesce.PaperWindow
}

// sampleCurve prints every 12th point of the sensitivity curve so the knee
// region is visible in text form.
func sampleCurve(c *stats.Curve) string {
	var b strings.Builder
	for i := 0; i < c.Len(); i += 12 {
		fmt.Fprintf(&b, "  W=%5.0fs  tuples=%6.2f%% of events\n", c.X[i], c.Y[i])
	}
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "btrepro:", err)
	os.Exit(1)
}
