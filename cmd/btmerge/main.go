// Command btmerge folds the partials exported by horizontally sharded
// btsink processes (-partial-dir) into the one campaign report a single
// sink hosting every testbed would have printed — byte-identical to
// `btcampaign -stream` at the same seeds, which is the property the
// multi-tenant chaos script asserts.
//
// Each partial carries one shard's finalized aggregates plus the
// fold-ordered dependability event trace; the merge combines the
// order-insensitive state algebraically and replays the merged trace
// through a fresh accumulator, so the order-sensitive Table 4 statistics
// come out exactly as an unsharded run computes them (the merge laws are
// pinned by the analysis and collector test suites). The partials must
// disjointly cover the campaign's testbeds and agree on the campaign
// identity, or the merge fails loudly. Data loss (sequence gaps, dropped
// records) fails the merge BEFORE any report is printed — a report implying
// completeness must never precede the verdict that the data is incomplete.
//
// With -scatternet the inputs are instead the district partials exported by
// btsink -district keyspaces (DIR/<key>.district.json): the merge validates
// campaign and scatternet agreement and exact disjoint coverage of the
// piconet space, re-interleaves the deployment trace by total (time,
// piconet, seq) order, and prints the hierarchical metro report
// byte-identical to `btcampaign -scatternet -rollup -stream` at the same
// seed (modulo the campaign banner line).
//
// Usage:
//
//	btmerge [flags] PARTIAL.json...
//
// Flags:
//
//	-seed N          campaign seed (default 1); must match the partials'
//	-days D          virtual campaign days 1..540 (default 4); must match
//	-scenario 1..4   recovery regime (default 3); must match the partials'
//	-scatternet      merge scatternet district partials into the metro report
//	-taxonomy        append the failure-taxonomy / survival report, matching
//	                 `btcampaign -taxonomy` (or -scatternet -rollup -taxonomy)
//	                 byte for byte at the same seeds
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	btpan "repro"
	"repro/internal/collector"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// cliConfig is the parsed, cross-validated command line.
type cliConfig struct {
	cfg      btpan.CampaignConfig
	campaign collector.CampaignID
	scat     bool
	taxonomy bool
	paths    []string
}

// partitionThresholdSeconds is the -taxonomy metro report's
// partition-candidate threshold; it must match btcampaign's so the merged
// report stays byte-diffable.
const partitionThresholdSeconds = 30

// parseCLI parses and validates the command line. Every validation returns
// an error instead of exiting so the table-driven CLI tests can exercise it
// directly.
func parseCLI(args []string) (*cliConfig, error) {
	fs := flag.NewFlagSet("btmerge", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "campaign seed (must match the partials)")
	days := fs.Int("days", 4, "virtual campaign days 1..540 (must match the partials)")
	scenario := fs.Int("scenario", int(btpan.ScenarioSIRAs),
		"recovery scenario 1..4 (must match the partials)")
	scat := fs.Bool("scatternet", false, "merge scatternet district partials into the metro report")
	taxonomy := fs.Bool("taxonomy", false,
		"append the failure-taxonomy / survival report to the merged output")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	if *days < 1 || *days > 540 {
		return nil, fmt.Errorf("-days %d out of range 1..540", *days)
	}
	if *scenario < 1 || *scenario > 4 {
		return nil, fmt.Errorf("-scenario %d out of range 1..4", *scenario)
	}
	if fs.NArg() == 0 {
		return nil, fmt.Errorf("no partial files given (usage: btmerge [flags] PARTIAL.json...)")
	}
	cfg := btpan.CampaignConfig{
		Seed:      *seed,
		Duration:  sim.Time(*days) * sim.Day,
		Scenario:  btpan.Scenario(*scenario),
		Streaming: true,
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cliConfig{
		cfg:      cfg,
		campaign: collector.CampaignID{Seed: *seed, Duration: cfg.Duration, Scenario: *scenario},
		scat:     *scat,
		taxonomy: *taxonomy,
		paths:    fs.Args(),
	}, nil
}

func main() {
	cli, err := parseCLI(os.Args[1:])
	if err != nil {
		fatal(err)
	}
	cfg, campaign := cli.cfg, cli.campaign

	if cli.scat {
		mergeDistricts(campaign, cli.paths, cli.taxonomy)
		return
	}

	parts := make([]*collector.Partial, 0, len(cli.paths))
	for _, path := range cli.paths {
		// Partials are trailer-guarded durable writes; a partial torn by a
		// sink crash mid-export is rejected here rather than half-merged.
		blob, err := collector.ReadFileDurable(path)
		if err != nil {
			fatal(err)
		}
		var p collector.Partial
		if err := json.Unmarshal(blob, &p); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		if p.Campaign != campaign {
			fatal(fmt.Errorf("%s: partial is from campaign seed %d, %v, scenario %d "+
				"(flags say seed %d, %v, scenario %d)", path,
				p.Campaign.Seed, p.Campaign.Duration, p.Campaign.Scenario,
				campaign.Seed, campaign.Duration, campaign.Scenario))
		}
		parts = append(parts, &p)
	}

	rep, err := collector.MergePartials(testbed.CampaignStreamSpec(), parts)
	if err != nil {
		fatal(err)
	}
	// Loss is checked BEFORE the report is written: a merge that detected
	// sequence gaps or dropped records must not emit a report that looks
	// complete to anything consuming stdout.
	if rep.Agg.SeqGaps > 0 || rep.Agg.DroppedRecords > 0 {
		fatal(fmt.Errorf("data loss: %d sequence gaps, %d dropped records",
			rep.Agg.SeqGaps, rep.Agg.DroppedRecords))
	}
	res, err := btpan.ResultFromAggregates(cfg, rep.Agg, rep.Counters, rep.Durations)
	if err != nil {
		fatal(err)
	}
	btpan.WriteReport(os.Stdout, res)
	if cli.taxonomy {
		btpan.WriteTaxonomyReport(os.Stdout, res)
	}
}

// mergeDistricts folds scatternet district partials into the metro rollup
// and prints it exactly as `btcampaign -scatternet -rollup -stream` does
// (sans the banner line).
func mergeDistricts(campaign collector.CampaignID, paths []string, taxonomy bool) {
	parts := make([]*collector.DistrictPartial, 0, len(paths))
	for _, path := range paths {
		blob, err := collector.ReadFileDurable(path)
		if err != nil {
			fatal(err)
		}
		var p collector.DistrictPartial
		if err := json.Unmarshal(blob, &p); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		if p.Campaign != campaign {
			fatal(fmt.Errorf("%s: district partial is from campaign seed %d, %v, scenario %d "+
				"(flags say seed %d, %v, scenario %d)", path,
				p.Campaign.Seed, p.Campaign.Duration, p.Campaign.Scenario,
				campaign.Seed, campaign.Duration, campaign.Scenario))
		}
		parts = append(parts, &p)
	}
	roll, redundancy, err := collector.MergeDistricts(parts)
	if err != nil {
		fatal(err)
	}
	// Loss-before-report, metro edition: the fold carries the piconets'
	// summed transport counters through the exact aggregate merge.
	if roll.Agg.SeqGaps > 0 || roll.Agg.DroppedRecords > 0 {
		fatal(fmt.Errorf("data loss: %d sequence gaps, %d dropped records",
			roll.Agg.SeqGaps, roll.Agg.DroppedRecords))
	}
	fmt.Printf("\n%s", roll.Render())
	// The redundancy table exists exactly when the campaign had bridges —
	// the same condition btcampaign's rollup printer uses.
	if redundancy != nil {
		fmt.Printf("\nRedundancy groups (outage charged only when a whole span is down)\n%s",
			redundancy.Render())
	}
	if taxonomy {
		fmt.Printf("\n%s", roll.RenderTaxonomy(campaign.Duration))
		if redundancy != nil {
			fmt.Printf("\n%s", redundancy.RenderPartitionCandidates(partitionThresholdSeconds))
		}
	}
}

// fatal prints the error and exits non-zero.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "btmerge:", err)
	os.Exit(1)
}
