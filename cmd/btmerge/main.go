// Command btmerge folds the partials exported by horizontally sharded
// btsink processes (-partial-dir) into the one campaign report a single
// sink hosting every testbed would have printed — byte-identical to
// `btcampaign -stream` at the same seeds, which is the property the
// multi-tenant chaos script asserts.
//
// Each partial carries one shard's finalized aggregates plus the
// fold-ordered dependability event trace; the merge combines the
// order-insensitive state algebraically and replays the merged trace
// through a fresh accumulator, so the order-sensitive Table 4 statistics
// come out exactly as an unsharded run computes them (the merge laws are
// pinned by the analysis and collector test suites). The partials must
// disjointly cover the campaign's testbeds and agree on the campaign
// identity, or the merge fails loudly.
//
// Usage:
//
//	btmerge [flags] PARTIAL.json...
//
// Flags:
//
//	-seed N          campaign seed (default 1); must match the partials'
//	-days D          virtual campaign days 1..540 (default 4); must match
//	-scenario 1..4   recovery regime (default 3); must match the partials'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	btpan "repro"
	"repro/internal/collector"
	"repro/internal/sim"
	"repro/internal/testbed"
)

func main() {
	seed := flag.Uint64("seed", 1, "campaign seed (must match the partials)")
	days := flag.Int("days", 4, "virtual campaign days 1..540 (must match the partials)")
	scenario := flag.Int("scenario", int(btpan.ScenarioSIRAs),
		"recovery scenario 1..4 (must match the partials)")
	flag.Parse()

	if *days < 1 || *days > 540 {
		fatal(fmt.Errorf("-days %d out of range 1..540", *days))
	}
	if flag.NArg() == 0 {
		fatal(fmt.Errorf("no partial files given (usage: btmerge [flags] PARTIAL.json...)"))
	}
	cfg := btpan.CampaignConfig{
		Seed:      *seed,
		Duration:  sim.Time(*days) * sim.Day,
		Scenario:  btpan.Scenario(*scenario),
		Streaming: true,
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	campaign := collector.CampaignID{Seed: *seed, Duration: cfg.Duration, Scenario: *scenario}

	parts := make([]*collector.Partial, 0, flag.NArg())
	for _, path := range flag.Args() {
		// Partials are trailer-guarded durable writes; a partial torn by a
		// sink crash mid-export is rejected here rather than half-merged.
		blob, err := collector.ReadFileDurable(path)
		if err != nil {
			fatal(err)
		}
		var p collector.Partial
		if err := json.Unmarshal(blob, &p); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		if p.Campaign != campaign {
			fatal(fmt.Errorf("%s: partial is from campaign seed %d, %v, scenario %d "+
				"(flags say seed %d, %v, scenario %d)", path,
				p.Campaign.Seed, p.Campaign.Duration, p.Campaign.Scenario,
				*seed, cfg.Duration, *scenario))
		}
		parts = append(parts, &p)
	}

	rep, err := collector.MergePartials(testbed.CampaignStreamSpec(), parts)
	if err != nil {
		fatal(err)
	}
	res, err := btpan.ResultFromAggregates(cfg, rep.Agg, rep.Counters, rep.Durations)
	if err != nil {
		fatal(err)
	}
	btpan.WriteReport(os.Stdout, res)
	if rep.Agg.SeqGaps > 0 || rep.Agg.DroppedRecords > 0 {
		fatal(fmt.Errorf("data loss: %d sequence gaps, %d dropped records",
			rep.Agg.SeqGaps, rep.Agg.DroppedRecords))
	}
}

// fatal prints the error and exits non-zero.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "btmerge:", err)
	os.Exit(1)
}
