package main

import (
	"strings"
	"testing"
)

// The merge CLI validation table: flag-range checks reject before any
// partial file is touched (part of the loss-before-report sweep — btmerge
// must never get far enough to print a report from a misdescribed campaign).
func TestParseCLIValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // "" = must parse
	}{
		{"flat", []string{"a.json", "b.json"}, ""},
		{"scatternet", []string{"-scatternet", "d0.json", "d1.json"}, ""},
		{"days low", []string{"-days", "0", "a.json"}, "-days 0 out of range 1..540"},
		{"days high", []string{"-days", "541", "a.json"}, "-days 541 out of range 1..540"},
		{"scenario low", []string{"-scenario", "0", "a.json"}, "-scenario 0 out of range 1..4"},
		{"scenario high", []string{"-scenario", "5", "a.json"}, "-scenario 5 out of range 1..4"},
		{"no files", nil, "no partial files given"},
		{"no files scatternet", []string{"-scatternet"}, "no partial files given"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cli, err := parseCLI(tc.args)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("parseCLI(%q) = %v, want success", tc.args, err)
				}
				if len(cli.paths) == 0 {
					t.Fatalf("parseCLI(%q) dropped the partial paths", tc.args)
				}
				return
			}
			if err == nil {
				t.Fatalf("parseCLI(%q) accepted, want error containing %q", tc.args, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("parseCLI(%q) = %q, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}
