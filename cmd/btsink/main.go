// Command btsink hosts the distributed collection plane's central
// repository: the streaming aggregator for one campaign, fed by btagent
// shard processes over TCP. It applies sequenced batches exactly once,
// acknowledges durable progress, and — once every declared shard has
// delivered all of its data and its Done frame — prints the merged campaign
// report (Tables 2, 3, the Table 4 column and the §6 scalars) in exactly
// the format `btcampaign -stream` prints for the same seeds, which is the
// bit-identity the multi-process smoke test asserts.
//
// With -checkpoint the sink periodically persists its full aggregation
// state (atomic rename, CRC/length guard trailer, previous good file kept
// as FILE.prev) and acknowledges only checkpoint-covered batches: kill it
// at any instant, restart it with the same flags, and the agents resume
// from the last checkpoint to the same digits. A checkpoint torn by a
// crash mid-write is detected by its trailer and restore falls back to
// FILE.prev instead of resuming from garbage. See PROTOCOL.md for the wire
// format and OPERATIONS.md for a crash-resume walkthrough and crash matrix.
//
// Usage:
//
//	btsink [flags]
//
// Flags:
//
//	-addr ADDR           TCP listen address (default 127.0.0.1:9310)
//	-seed N              campaign seed (default 1); must match the agents'
//	-days D              virtual campaign days 1..540 (default 4); must match
//	-scenario 1..4       recovery regime (default 3); must match the agents'
//	-checkpoint FILE     enable durable checkpoints at FILE (resumes from it
//	                     when it already exists; empty disables durability)
//	-checkpoint-every N  batch frames between checkpoints (default 64)
//	-timeout D           campaign completion timeout, e.g. 30m (default 0:
//	                     wait forever)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	btpan "repro"
	"repro/internal/collector"
	"repro/internal/sim"
	"repro/internal/testbed"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9310", "TCP listen address")
	seed := flag.Uint64("seed", 1, "campaign seed (must match the agents)")
	days := flag.Int("days", 4, "virtual campaign days 1..540 (must match the agents)")
	scenario := flag.Int("scenario", int(btpan.ScenarioSIRAs),
		"recovery scenario 1..4 (must match the agents)")
	checkpoint := flag.String("checkpoint", "", "checkpoint file (empty disables durability)")
	every := flag.Int("checkpoint-every", 64, "batch frames between checkpoints")
	timeout := flag.Duration("timeout", 0, "campaign completion timeout (0 = forever)")
	flag.Parse()

	if *days < 1 || *days > 540 {
		fatal(fmt.Errorf("-days %d out of range 1..540", *days))
	}
	cfg := btpan.CampaignConfig{
		Seed:      *seed,
		Duration:  sim.Time(*days) * sim.Day,
		Scenario:  btpan.Scenario(*scenario),
		Streaming: true,
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	sink, err := collector.NewSink(collector.SinkConfig{
		Addr: *addr,
		Campaign: collector.CampaignID{Seed: *seed, Duration: cfg.Duration,
			Scenario: *scenario},
		Spec:           testbed.CampaignStreamSpec(),
		CheckpointPath: *checkpoint, CheckpointEvery: *every,
	})
	if err != nil {
		fatal(err)
	}
	resumed := ""
	if *checkpoint != "" {
		if _, statErr := os.Stat(*checkpoint); statErr == nil {
			resumed = ", resumed from checkpoint"
		}
	}
	fmt.Fprintf(os.Stderr, "btsink: listening on %s (seed %d, %v, scenario %q%s)\n",
		sink.Addr(), *seed, cfg.Duration, cfg.Scenario, resumed)

	start := time.Now()
	rep, err := sink.Wait(*timeout)
	if err != nil {
		sink.Close()
		fatal(err)
	}
	res, err := btpan.ResultFromAggregates(cfg, rep.Agg, rep.Counters, rep.Durations)
	if err != nil {
		sink.Close()
		fatal(err)
	}
	btpan.WriteReport(os.Stdout, res)
	applied, dups, rejected := sink.Stats()
	fmt.Fprintf(os.Stderr, "btsink: campaign complete in %v (%d batches applied, %d duplicates filtered, %d rejected)\n",
		time.Since(start).Round(time.Millisecond), applied, dups, rejected)
	if err := sink.Close(); err != nil {
		fatal(err)
	}
	if rep.Agg.SeqGaps > 0 || rep.Agg.DroppedRecords > 0 {
		fatal(fmt.Errorf("data loss: %d sequence gaps, %d dropped records",
			rep.Agg.SeqGaps, rep.Agg.DroppedRecords))
	}
}

// fatal prints the error and exits non-zero.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "btsink:", err)
	os.Exit(1)
}
