// Command btsink hosts the distributed collection plane's central
// repository. In its original single-campaign mode it is the streaming
// aggregator for one campaign, fed by btagent shard processes over TCP: it
// applies sequenced batches exactly once, acknowledges durable progress,
// and — once every declared shard has delivered all of its data and its
// Done frame — prints the merged campaign report (Tables 2, 3, the Table 4
// column and the §6 scalars) in exactly the format `btcampaign -stream`
// prints for the same seeds, which is the bit-identity the multi-process
// smoke test asserts.
//
// With repeated -campaign flags it is instead a long-lived multi-tenant
// service hosting many concurrent campaigns, each in its own keyspace with
// its own checkpoint file, ingest quotas and completion state. A keyspace
// may host only a subset of its campaign's testbeds — one shard of a
// horizontally sharded deployment — in which case its completed state is
// exported as a partial (-partial-dir) for cmd/btmerge to fold into the
// full campaign report. SIGTERM/SIGINT trigger a graceful drain: every
// keyspace's checkpoint is sealed, live sessions get a retryable draining
// Reject, and the process exits 0 so a replacement can take over from the
// checkpoint files.
//
// With -checkpoint (or -checkpoint-dir) the sink periodically persists its
// full aggregation state (atomic rename, CRC/length guard trailer, previous
// good file kept as FILE.prev) and acknowledges only checkpoint-covered
// batches: kill it at any instant, restart it with the same flags, and the
// agents resume from the last checkpoint to the same digits. A checkpoint
// torn by a crash mid-write is detected by its trailer and restore falls
// back to FILE.prev instead of resuming from garbage. See PROTOCOL.md for
// the wire format and OPERATIONS.md for deployment walkthroughs.
//
// Usage:
//
//	btsink [flags]
//
// Single-campaign flags (the default keyspace):
//
//	-addr ADDR           TCP listen address (default 127.0.0.1:9310)
//	-seed N              campaign seed (default 1); must match the agents'
//	-days D              virtual campaign days 1..540 (default 4); must match
//	-scenario 1..4       recovery regime (default 3); must match the agents'
//	-checkpoint FILE     enable durable checkpoints at FILE (resumes from it
//	                     when it already exists; empty disables durability)
//	-checkpoint-every N  batch frames between checkpoints (default 64)
//	-timeout D           campaign completion timeout, e.g. 30m (default 0:
//	                     wait forever)
//	-taxonomy            append the failure-taxonomy / survival report to the
//	                     final campaign report (single-campaign stdout and
//	                     -report-dir exports), matching `btcampaign -taxonomy`
//	                     byte for byte at the same seeds
//
// Multi-tenant flags:
//
//	-campaign SPEC       host one campaign keyspace (repeatable). SPEC is
//	                     comma-separated key=value pairs:
//	                       key=K            keyspace name (required)
//	                       seed=N           campaign seed (required)
//	                       days=D           virtual days 1..540 (default 4)
//	                       scenario=1..4    recovery regime (default 3)
//	                       testbeds=A+B     testbed subset this sink hosts
//	                                        (default: all; subsets record the
//	                                        depend trace for btmerge)
//	                       quota-bytes=N    ingest byte quota (0 = unlimited)
//	                       quota-batches=N  ingest batch quota (0 = unlimited)
//	-serve               always-on service mode: start with no campaigns and
//	                     accept registrations over HTTP (-http required)
//	-checkpoint-dir DIR  per-keyspace checkpoints at DIR/<key>.ckpt
//	-partial-dir DIR     write DIR/<key>.partial.json when a keyspace
//	                     completes (the btmerge input)
//	-report-dir DIR      write DIR/<key>.report when a full-campaign keyspace
//	                     completes (canonical btcampaign format)
//	-http ADDR           serve the observability API (/healthz, /readyz,
//	                     /metricsz, /campaigns, live tables) on ADDR
//	-memory-budget N     delay acks while more than N records are buffered
//	                     across all keyspaces (0 = no backpressure)
//
// Scatternet district flags (the distributed metro plane):
//
//	-district SPEC       host one scatternet district keyspace (repeatable).
//	                     Agents in -scatternet mode ship per-piconet fold
//	                     partials into it; the district checkpoints its
//	                     running fold after every applied partial
//	                     (-checkpoint-dir, at DIR/<key>.district.ckpt) and on
//	                     completion exports DIR/<key>.district.json under
//	                     -partial-dir — the input of `btmerge -scatternet`.
//	                     SPEC is comma-separated key=value pairs:
//	                       key=K            keyspace name (required)
//	                       seed=N           campaign seed (required)
//	                       range=A:B        piconet range [A, B) (required)
//	                       days=D           virtual days 1..540 (default 4)
//	                       scenario=1..4    recovery regime (default 3)
//	                       piconets=P       scatternet piconet count (default 2)
//	                       bridges=K        bridge count / edge budget (default 1)
//	                       topology=T       ring, star, mesh, random (default "")
//	                       redundancy=K     bridges per span (default 1)
//	                       hold=S           bridge residency seconds (default 10)
//	                       probe-sample=F   probe pair fraction in (0, 1]
package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"flag"

	btpan "repro"
	"repro/internal/analysis"
	"repro/internal/collector"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// campaignFlag is one parsed -campaign SPEC.
type campaignFlag struct {
	key          string
	seed         uint64
	days         int
	scenario     int
	testbeds     []string
	quotaBytes   int64
	quotaBatches int
}

// campaignFlags collects repeated -campaign values.
type campaignFlags []campaignFlag

// String renders the accumulated specs (flag.Value).
func (c *campaignFlags) String() string {
	var parts []string
	for _, cf := range *c {
		parts = append(parts, cf.key)
	}
	return strings.Join(parts, ",")
}

// Set parses one -campaign SPEC (flag.Value).
func (c *campaignFlags) Set(v string) error {
	cf := campaignFlag{days: 4, scenario: int(btpan.ScenarioSIRAs)}
	seenKey, seenSeed := false, false
	for _, pair := range strings.Split(v, ",") {
		k, val, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("-campaign %q: %q is not key=value", v, pair)
		}
		var err error
		switch k {
		case "key":
			cf.key, seenKey = val, true
		case "seed":
			cf.seed, err = strconv.ParseUint(val, 10, 64)
			seenSeed = true
		case "days":
			cf.days, err = strconv.Atoi(val)
		case "scenario":
			cf.scenario, err = strconv.Atoi(val)
		case "testbeds":
			cf.testbeds = strings.Split(val, "+")
		case "quota-bytes":
			cf.quotaBytes, err = strconv.ParseInt(val, 10, 64)
		case "quota-batches":
			cf.quotaBatches, err = strconv.Atoi(val)
		default:
			return fmt.Errorf("-campaign %q: unknown field %q", v, k)
		}
		if err != nil {
			return fmt.Errorf("-campaign %q: field %q: %v", v, k, err)
		}
	}
	if !seenKey || !seenSeed {
		return fmt.Errorf("-campaign %q: key= and seed= are required", v)
	}
	if cf.days < 1 || cf.days > 540 {
		return fmt.Errorf("-campaign %q: days %d out of range 1..540", v, cf.days)
	}
	*c = append(*c, cf)
	return nil
}

// districtFlag is one parsed -district SPEC.
type districtFlag struct {
	key         string
	seed        uint64
	days        int
	scenario    int
	lo, hi      int
	piconets    int
	bridges     int
	topology    string
	redundancy  int
	hold        int
	probeSample float64
}

// districtFlags collects repeated -district values.
type districtFlags []districtFlag

// String renders the accumulated specs (flag.Value).
func (d *districtFlags) String() string {
	var parts []string
	for _, df := range *d {
		parts = append(parts, df.key)
	}
	return strings.Join(parts, ",")
}

// Set parses one -district SPEC (flag.Value).
func (d *districtFlags) Set(v string) error {
	df := districtFlag{days: 4, scenario: int(btpan.ScenarioSIRAs),
		piconets: 2, bridges: 1, redundancy: 1, hold: 10, probeSample: 1}
	seenKey, seenSeed, seenRange := false, false, false
	for _, pair := range strings.Split(v, ",") {
		k, val, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("-district %q: %q is not key=value", v, pair)
		}
		var err error
		switch k {
		case "key":
			df.key, seenKey = val, true
		case "seed":
			df.seed, err = strconv.ParseUint(val, 10, 64)
			seenSeed = true
		case "days":
			df.days, err = strconv.Atoi(val)
		case "scenario":
			df.scenario, err = strconv.Atoi(val)
		case "range":
			if _, serr := fmt.Sscanf(val, "%d:%d", &df.lo, &df.hi); serr != nil {
				err = fmt.Errorf("want A:B (half-open)")
			}
			seenRange = true
		case "piconets":
			df.piconets, err = strconv.Atoi(val)
		case "bridges":
			df.bridges, err = strconv.Atoi(val)
		case "topology":
			df.topology = val
		case "redundancy":
			df.redundancy, err = strconv.Atoi(val)
		case "hold":
			df.hold, err = strconv.Atoi(val)
		case "probe-sample":
			df.probeSample, err = strconv.ParseFloat(val, 64)
		default:
			return fmt.Errorf("-district %q: unknown field %q", v, k)
		}
		if err != nil {
			return fmt.Errorf("-district %q: field %q: %v", v, k, err)
		}
	}
	if !seenKey || !seenSeed || !seenRange {
		return fmt.Errorf("-district %q: key=, seed= and range= are required", v)
	}
	if df.days < 1 || df.days > 540 {
		return fmt.Errorf("-district %q: days %d out of range 1..540", v, df.days)
	}
	if df.scenario < 1 || df.scenario > 4 {
		return fmt.Errorf("-district %q: scenario %d out of range 1..4", v, df.scenario)
	}
	if df.lo < 0 || df.hi <= df.lo {
		return fmt.Errorf("-district %q: range [%d:%d) is empty or negative", v, df.lo, df.hi)
	}
	*d = append(*d, df)
	return nil
}

// config builds the collector district for one parsed spec. The scatternet
// identity derives from the same campaign-engine validation the agents use,
// so the effective piconet/bridge counts agree by construction when the
// flags agree.
func (df *districtFlag) config(checkpointDir string) (collector.DistrictConfig, error) {
	duration := sim.Time(df.days) * sim.Day
	hold := sim.Time(df.hold) * sim.Second
	camp, err := btpan.NewScatternetCampaign(btpan.ScatternetConfig{
		CampaignConfig: btpan.CampaignConfig{Seed: df.seed, Duration: duration,
			Scenario: btpan.Scenario(df.scenario), Streaming: true},
		Piconets: df.piconets, Bridges: df.bridges,
		Topology: df.topology, Redundancy: df.redundancy, HoldTime: hold,
		ProbeSample: df.probeSample, Rollup: true,
	})
	if err != nil {
		return collector.DistrictConfig{}, fmt.Errorf("district %q: %w", df.key, err)
	}
	if df.hi > camp.Piconets() {
		return collector.DistrictConfig{}, fmt.Errorf("district %q: range [%d:%d) outside the campaign's [0:%d)",
			df.key, df.lo, df.hi, camp.Piconets())
	}
	dc := collector.DistrictConfig{
		Key: df.key,
		Campaign: collector.CampaignID{Seed: df.seed, Duration: duration,
			Scenario: df.scenario},
		Net: collector.ScatterNet{
			Piconets: camp.Piconets(), Bridges: camp.BridgeCount(),
			Topology: df.topology, Redundancy: df.redundancy,
			Hold: hold, ProbeSample: df.probeSample,
		},
		ScenarioName: camp.ScenarioName(),
		Lo:           df.lo, Hi: df.hi,
	}
	if checkpointDir != "" {
		dc.CheckpointPath = filepath.Join(checkpointDir, df.key+".district.ckpt")
	}
	return dc, nil
}

// keyspace builds the collector keyspace for one parsed campaign.
func (cf *campaignFlag) keyspace(checkpointDir string) (collector.KeyspaceConfig, error) {
	spec := testbed.CampaignStreamSpec()
	if len(cf.testbeds) > 0 {
		var err error
		if spec, err = analysis.SubSpec(spec, cf.testbeds); err != nil {
			return collector.KeyspaceConfig{}, fmt.Errorf("campaign %q: %w", cf.key, err)
		}
	}
	ks := collector.KeyspaceConfig{
		Key: cf.key,
		Campaign: collector.CampaignID{Seed: cf.seed,
			Duration: sim.Time(cf.days) * sim.Day, Scenario: cf.scenario},
		Spec:         spec,
		ScenarioName: fmt.Sprint(btpan.Scenario(cf.scenario)),
		MaxBytes:     cf.quotaBytes,
		MaxBatches:   cf.quotaBatches,
	}
	if checkpointDir != "" {
		ks.CheckpointPath = filepath.Join(checkpointDir, cf.key+".ckpt")
	}
	return ks, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9310", "TCP listen address")
	seed := flag.Uint64("seed", 1, "campaign seed (must match the agents)")
	days := flag.Int("days", 4, "virtual campaign days 1..540 (must match the agents)")
	scenario := flag.Int("scenario", int(btpan.ScenarioSIRAs),
		"recovery scenario 1..4 (must match the agents)")
	checkpoint := flag.String("checkpoint", "", "checkpoint file (empty disables durability)")
	every := flag.Int("checkpoint-every", 64, "batch frames between checkpoints")
	timeout := flag.Duration("timeout", 0, "campaign completion timeout (0 = forever)")
	taxonomy := flag.Bool("taxonomy", false,
		"append the failure-taxonomy / survival report to final campaign reports")
	var campaigns campaignFlags
	flag.Var(&campaigns, "campaign", "host one campaign keyspace (repeatable; see package doc)")
	var districts districtFlags
	flag.Var(&districts, "district", "host one scatternet district keyspace (repeatable; see package doc)")
	serve := flag.Bool("serve", false, "always-on service mode (campaigns register over HTTP)")
	checkpointDir := flag.String("checkpoint-dir", "", "per-keyspace checkpoint directory")
	partialDir := flag.String("partial-dir", "", "write <key>.partial.json here on keyspace completion")
	reportDir := flag.String("report-dir", "", "write <key>.report here when a full-campaign keyspace completes")
	httpAddr := flag.String("http", "", "observability HTTP listen address (empty disables)")
	memoryBudget := flag.Int("memory-budget", 0, "buffered record count above which acks are delayed (0 = off)")
	flag.Parse()

	multi := len(campaigns) > 0 || len(districts) > 0 || *serve
	if *serve && *httpAddr == "" {
		fatal(fmt.Errorf("-serve needs -http to accept campaign registrations"))
	}

	cfg := collector.SinkConfig{
		Addr:            *addr,
		CheckpointEvery: *every,
		MemoryBudget:    *memoryBudget,
		AllowEmpty:      *serve,
		SpecResolver: func(c collector.CampaignID, testbeds []string) (analysis.StreamSpec, error) {
			if len(testbeds) == 0 {
				return testbed.CampaignStreamSpec(), nil
			}
			return analysis.SubSpec(testbed.CampaignStreamSpec(), testbeds)
		},
	}
	var legacy btpan.CampaignConfig
	if !multi {
		if *days < 1 || *days > 540 {
			fatal(fmt.Errorf("-days %d out of range 1..540", *days))
		}
		legacy = btpan.CampaignConfig{
			Seed:      *seed,
			Duration:  sim.Time(*days) * sim.Day,
			Scenario:  btpan.Scenario(*scenario),
			Streaming: true,
		}
		if err := legacy.Validate(); err != nil {
			fatal(err)
		}
		cfg.Campaign = collector.CampaignID{Seed: *seed, Duration: legacy.Duration,
			Scenario: *scenario}
		cfg.Spec = testbed.CampaignStreamSpec()
		cfg.CheckpointPath = *checkpoint
	}
	for _, cf := range campaigns {
		ks, err := cf.keyspace(*checkpointDir)
		if err != nil {
			fatal(err)
		}
		cfg.Keyspaces = append(cfg.Keyspaces, ks)
	}
	for i := range districts {
		dc, err := districts[i].config(*checkpointDir)
		if err != nil {
			fatal(err)
		}
		cfg.Districts = append(cfg.Districts, dc)
	}

	sink, err := collector.NewSink(cfg)
	if err != nil {
		fatal(err)
	}
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal(fmt.Errorf("http listen %s: %w", *httpAddr, err))
		}
		fmt.Fprintf(os.Stderr, "btsink: observability API on http://%s\n", ln.Addr())
		go http.Serve(ln, sink.Handler())
	}

	// SIGTERM/SIGINT: graceful drain — seal every checkpoint, send live
	// sessions a retryable draining Reject, exit 0 so the supervisor knows
	// this was a clean handoff, not a crash.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "btsink: %v: draining\n", sig)
		if err := sink.Drain(); err != nil {
			fmt.Fprintln(os.Stderr, "btsink: drain:", err)
			sink.Close()
			os.Exit(1)
		}
		sink.Close()
		os.Exit(0)
	}()

	if !multi {
		legacyMain(sink, legacy, *checkpoint, *timeout, *taxonomy)
		return
	}

	fmt.Fprintf(os.Stderr, "btsink: listening on %s (%d campaigns, %d districts%s)\n",
		sink.Addr(), len(campaigns), len(districts),
		map[bool]string{true: ", serve mode", false: ""}[*serve])

	// Every configured keyspace gets a completion watcher that exports its
	// partial (and, for full-campaign keyspaces, its canonical report).
	var wg sync.WaitGroup
	failures := make(chan error, len(campaigns)+len(districts))
	for _, cf := range campaigns {
		wg.Add(1)
		go func(cf campaignFlag) {
			defer wg.Done()
			if err := watchKeyspace(sink, cf, *partialDir, *reportDir, *timeout, *taxonomy); err != nil {
				failures <- fmt.Errorf("campaign %q: %w", cf.key, err)
			}
		}(cf)
	}
	for _, df := range districts {
		wg.Add(1)
		go func(df districtFlag) {
			defer wg.Done()
			if err := watchDistrict(sink, df, *partialDir, *timeout); err != nil {
				failures <- fmt.Errorf("district %q: %w", df.key, err)
			}
		}(df)
	}
	wg.Wait()
	close(failures)
	failed := false
	for err := range failures {
		failed = true
		fmt.Fprintln(os.Stderr, "btsink:", err)
	}
	if *serve {
		select {} // stay up for registered campaigns until a signal drains us
	}
	if err := sink.Close(); err != nil {
		fatal(err)
	}
	if failed {
		os.Exit(1)
	}
}

// watchKeyspace waits for one keyspace's completion and writes its exports.
func watchKeyspace(sink *collector.Sink, cf campaignFlag, partialDir, reportDir string,
	timeout time.Duration, taxonomy bool) error {
	p, err := sink.WaitPartial(cf.key, timeout)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "btsink: campaign %q complete (%d testbeds)\n",
		cf.key, len(p.Shard.Testbeds))
	if partialDir != "" {
		blob, err := json.Marshal(p)
		if err != nil {
			return err
		}
		path := filepath.Join(partialDir, cf.key+".partial.json")
		if err := collector.WriteFileDurable(path, blob); err != nil {
			return err
		}
	}
	if reportDir != "" && len(cf.testbeds) == 0 {
		rep, err := sink.WaitKeyspace(cf.key, timeout)
		if err != nil {
			return err
		}
		ccfg := btpan.CampaignConfig{Seed: cf.seed, Duration: sim.Time(cf.days) * sim.Day,
			Scenario: btpan.Scenario(cf.scenario), Streaming: true}
		res, err := btpan.ResultFromAggregates(ccfg, rep.Agg, rep.Counters, rep.Durations)
		if err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(reportDir, cf.key+".report"))
		if err != nil {
			return err
		}
		btpan.WriteReport(f, res)
		if taxonomy {
			btpan.WriteTaxonomyReport(f, res)
		}
		return f.Close()
	}
	return nil
}

// watchDistrict waits for one district's piconet range to fold completely
// and exports its sealed partial — the `btmerge -scatternet` input.
func watchDistrict(sink *collector.Sink, df districtFlag, partialDir string,
	timeout time.Duration) error {
	p, err := sink.WaitDistrict(df.key, timeout)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "btsink: district %q complete (piconets [%d:%d))\n",
		df.key, p.Lo, p.Hi)
	if partialDir != "" {
		blob, err := json.Marshal(p)
		if err != nil {
			return err
		}
		path := filepath.Join(partialDir, df.key+".district.json")
		if err := collector.WriteFileDurable(path, blob); err != nil {
			return err
		}
	}
	return nil
}

// legacyMain is the original single-campaign flow: wait for the default
// keyspace, print the canonical report on stdout, exit.
func legacyMain(sink *collector.Sink, cfg btpan.CampaignConfig, checkpoint string,
	timeout time.Duration, taxonomy bool) {
	resumed := ""
	if checkpoint != "" {
		if _, statErr := os.Stat(checkpoint); statErr == nil {
			resumed = ", resumed from checkpoint"
		}
	}
	fmt.Fprintf(os.Stderr, "btsink: listening on %s (seed %d, %v, scenario %q%s)\n",
		sink.Addr(), cfg.Seed, cfg.Duration, cfg.Scenario, resumed)

	start := time.Now()
	rep, err := sink.Wait(timeout)
	if err != nil {
		sink.Close()
		fatal(err)
	}
	res, err := btpan.ResultFromAggregates(cfg, rep.Agg, rep.Counters, rep.Durations)
	if err != nil {
		sink.Close()
		fatal(err)
	}
	btpan.WriteReport(os.Stdout, res)
	if taxonomy {
		btpan.WriteTaxonomyReport(os.Stdout, res)
	}
	applied, dups, rejected := sink.Stats()
	fmt.Fprintf(os.Stderr, "btsink: campaign complete in %v (%d batches applied, %d duplicates filtered, %d rejected)\n",
		time.Since(start).Round(time.Millisecond), applied, dups, rejected)
	if err := sink.Close(); err != nil {
		fatal(err)
	}
	if rep.Agg.SeqGaps > 0 || rep.Agg.DroppedRecords > 0 {
		fatal(fmt.Errorf("data loss: %d sequence gaps, %d dropped records",
			rep.Agg.SeqGaps, rep.Agg.DroppedRecords))
	}
}

// fatal prints the error and exits non-zero.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "btsink:", err)
	os.Exit(1)
}
