// Command btagent runs one testbed shard of a distributed collection
// campaign: it builds the shard's simulated testbed (the same seed
// derivation a single-process campaign uses, so the shard is bit-identical
// to the corresponding testbed of `btcampaign -stream` at the same seed),
// drains every node's Test/System logs on the virtual flush cadence, and
// streams them to a btsink repository as sequenced binary batch frames over
// TCP.
//
// Delivery is at-least-once: batches stay buffered until the sink
// acknowledges them, connection losses reconnect (with capped, jittered
// exponential backoff) and resume from the sink's handshake cursors, and
// acknowledgement stalls trigger go-back-N retransmission — so the campaign
// survives sink restarts and (with the fault-injection knobs) deterministic
// frame loss, duplication, reordering and delay on the data path.
//
// With -spill-dir the agent itself survives kill -9: every encoded batch
// frame is appended to a write-ahead spill log before it is offered to the
// uplink, and a restarted agent with the same flags replays the
// unacknowledged tail while its deterministic re-run regenerates — and
// skips — everything already assigned a sequence number, so the campaign
// report stays byte-identical to an uninterrupted run. See PROTOCOL.md for
// the wire and WAL formats and OPERATIONS.md for the crash matrix.
//
// Usage:
//
//	btagent -sink HOST:PORT -testbed random|realistic [flags]
//
// Flags:
//
//	-sink ADDR       sink address (default 127.0.0.1:9310)
//	-keyspace K      campaign keyspace on a multi-tenant sink (default "":
//	                 the sink's default keyspace). Retryable rejects —
//	                 unknown-campaign, over-quota, draining — make the agent
//	                 back off and retry; fatal ones (campaign-mismatch,
//	                 unknown-shard) end it with an error.
//	-testbed T       shard to run: random or realistic (required)
//	-seed N          campaign seed (default 1); must match the sink's
//	-days D          virtual campaign days 1..540 (default 4); must match
//	-scenario 1..4   recovery regime (default 3); must match the sink's
//	-flush S         virtual seconds between log drains (default 3600)
//	-codec C         data frame codec: binary or json (default binary)
//	-timeout D       how long Finish waits for the sink's completion
//	                 confirmation, e.g. 5m (default 10m; 0 waits forever)
//	-spill-dir DIR   write-ahead spill log directory; restart with the same
//	                 directory to resume after a crash (empty disables)
//	-spill-budget N  max bytes of unacknowledged spill before the agent
//	                 fails loudly (default 0: unbounded)
//	-drop P          fault injection: P(drop) per data frame (default 0)
//	-dup P           fault injection: P(duplicate) per data frame (default 0)
//	-reorder P       fault injection: P(swap with next frame) (default 0)
//	-delay D         fault injection: delay imposed on a delay decision
//	-delay-rate P    fault injection: P(delay) per data frame (default 0)
//	-fault-seed N    fault injection decision seed (default 1)
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"time"

	btpan "repro"
	"repro/internal/collector"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/workload"
)

func main() {
	sinkAddr := flag.String("sink", "127.0.0.1:9310", "sink address")
	keyspace := flag.String("keyspace", "", "campaign keyspace on a multi-tenant sink")
	shard := flag.String("testbed", "", "testbed shard: random or realistic")
	seed := flag.Uint64("seed", 1, "campaign seed (must match the sink)")
	days := flag.Int("days", 4, "virtual campaign days 1..540 (must match the sink)")
	scenario := flag.Int("scenario", int(btpan.ScenarioSIRAs),
		"recovery scenario 1..4 (must match the sink)")
	flush := flag.Int("flush", 3600, "virtual seconds between log drains")
	codecName := flag.String("codec", "binary", "data frame codec: binary or json")
	timeout := flag.Duration("timeout", 10*time.Minute, "completion confirmation timeout (0 = forever)")
	spillDir := flag.String("spill-dir", "", "write-ahead spill log directory (empty disables crash tolerance)")
	spillBudget := flag.Int64("spill-budget", 0, "max bytes of unacknowledged spill (0 = unbounded)")
	drop := flag.Float64("drop", 0, "fault injection: drop probability per data frame")
	dup := flag.Float64("dup", 0, "fault injection: duplicate probability per data frame")
	reorder := flag.Float64("reorder", 0, "fault injection: reorder probability per data frame")
	delay := flag.Duration("delay", 0, "fault injection: delay imposed on a delay decision")
	delayRate := flag.Float64("delay-rate", 0, "fault injection: delay probability per data frame")
	faultSeed := flag.Uint64("fault-seed", 1, "fault injection decision seed")
	flag.Parse()

	if *days < 1 || *days > 540 {
		fatal(fmt.Errorf("-days %d out of range 1..540", *days))
	}
	if *flush < 1 {
		fatal(fmt.Errorf("-flush %d must be at least one virtual second", *flush))
	}
	codec, err := collector.ParseCodec(*codecName)
	if err != nil {
		fatal(err)
	}
	duration := sim.Time(*days) * sim.Day

	randomOpts, realisticOpts := testbed.CampaignOptions(*seed, btpan.Scenario(*scenario), duration)
	var opts testbed.Options
	switch *shard {
	case "random":
		opts = randomOpts
	case "realistic":
		opts = realisticOpts
	default:
		fatal(fmt.Errorf("-testbed %q: want random or realistic", *shard))
	}
	tb, err := testbed.New(opts)
	if err != nil {
		fatal(err)
	}
	nodes := make([]string, 0, len(tb.PANUs)+1)
	for _, h := range tb.PANUs {
		nodes = append(nodes, h.Node)
	}
	nodes = append(nodes, tb.NAP.Node)

	// Decorrelate the reconnection jitter of this campaign's shards: same
	// campaign seed, different testbed name, different backoff schedule.
	jitter := fnv.New64a()
	jitter.Write([]byte(opts.Name))
	agent, err := collector.NewAgent(collector.AgentConfig{
		Addr: *sinkAddr, Keyspace: *keyspace,
		Campaign: collector.CampaignID{Seed: *seed, Duration: duration,
			Scenario: *scenario},
		Testbed: opts.Name, Nodes: nodes, Codec: codec,
		SpillDir: *spillDir, SpillBudget: *spillBudget,
		RetrySeed: *seed ^ jitter.Sum64(),
		Fault: collector.FaultConfig{
			Seed: *faultSeed, Drop: *drop, Duplicate: *dup, Reorder: *reorder,
			Delay: *delay, DelayRate: *delayRate,
		},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "btagent: running %s shard (seed %d, %v, scenario %q) -> %s\n",
		opts.Name, *seed, duration, btpan.Scenario(*scenario), *sinkAddr)

	start := time.Now()
	if err := runShard(tb, agent, duration, sim.Time(*flush)*sim.Second); err != nil {
		fatal(err)
	}
	res := tb.Results()
	counters := make(map[string]*workload.CountersSnapshot, len(res.Counters))
	for node, c := range res.Counters {
		counters[node] = c.Snapshot()
	}
	if err := agent.Finish(counters, duration, *timeout); err != nil {
		fatal(err)
	}
	sent, retrans := agent.Stats()
	fmt.Fprintf(os.Stderr, "btagent: %s shard complete in %v (%d frames sent, %d retransmissions)\n",
		opts.Name, time.Since(start).Round(time.Millisecond), sent, retrans)
}

// runShard drives the simulation with the uplink armed. The testbed's
// streaming drain panics on an unrecoverable uplink error (a refused
// session, a sink that lost its checkpoint); convert that to a clean CLI
// failure instead of a stack trace.
func runShard(tb *testbed.Testbed, agent *collector.Agent, duration, flush sim.Time) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = e
				return
			}
			panic(r)
		}
	}()
	tb.StreamTo(agent, flush)
	tb.Run(duration)
	tb.FinishStream(agent)
	return nil
}

// fatal prints the error and exits non-zero.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "btagent:", err)
	os.Exit(1)
}
