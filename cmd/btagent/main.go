// Command btagent runs one testbed shard of a distributed collection
// campaign: it builds the shard's simulated testbed (the same seed
// derivation a single-process campaign uses, so the shard is bit-identical
// to the corresponding testbed of `btcampaign -stream` at the same seed),
// drains every node's Test/System logs on the virtual flush cadence, and
// streams them to a btsink repository as sequenced binary batch frames over
// TCP.
//
// Delivery is at-least-once: batches stay buffered until the sink
// acknowledges them, connection losses reconnect (with capped, jittered
// exponential backoff) and resume from the sink's handshake cursors, and
// acknowledgement stalls trigger go-back-N retransmission — so the campaign
// survives sink restarts and (with the fault-injection knobs) deterministic
// frame loss, duplication, reordering and delay on the data path.
//
// With -spill-dir the agent itself survives kill -9: every encoded batch
// frame is appended to a write-ahead spill log before it is offered to the
// uplink, and a restarted agent with the same flags replays the
// unacknowledged tail while its deterministic re-run regenerates — and
// skips — everything already assigned a sequence number, so the campaign
// report stays byte-identical to an uninterrupted run. See PROTOCOL.md for
// the wire and WAL formats and OPERATIONS.md for the crash matrix.
//
// Failure records carry their taxonomy tags (protocol phase + transience
// verdict) from the moment the workload emits them, so the agent needs no
// flag for the taxonomy plane: the binary codec (v2) and the JSON codec both
// ship the tags, and the sink's accumulators see exactly what a
// single-process campaign sees.
//
// Usage:
//
//	btagent -sink HOST:PORT -testbed random|realistic [flags]
//
// Flags:
//
//	-sink ADDR       sink address (default 127.0.0.1:9310)
//	-keyspace K      campaign keyspace on a multi-tenant sink (default "":
//	                 the sink's default keyspace). Retryable rejects —
//	                 unknown-campaign, over-quota, draining — make the agent
//	                 back off and retry; fatal ones (campaign-mismatch,
//	                 unknown-shard) end it with an error.
//	-testbed T       shard to run: random or realistic (required)
//	-seed N          campaign seed (default 1); must match the sink's
//	-days D          virtual campaign days 1..540 (default 4); must match
//	-scenario 1..4   recovery regime (default 3); must match the sink's
//	-flush S         virtual seconds between log drains (default 3600)
//	-codec C         data frame codec: binary or json (default binary)
//	-timeout D       how long Finish waits for the sink's completion
//	                 confirmation, e.g. 5m (default 10m; 0 waits forever)
//	-spill-dir DIR   write-ahead spill log directory; restart with the same
//	                 directory to resume after a crash (empty disables)
//	-spill-budget N  max bytes of unacknowledged spill before the agent
//	                 fails loudly (default 0: unbounded)
//	-drop P          fault injection: P(drop) per data frame (default 0)
//	-dup P           fault injection: P(duplicate) per data frame (default 0)
//	-reorder P       fault injection: P(swap with next frame) (default 0)
//	-delay D         fault injection: delay imposed on a delay decision
//	-delay-rate P    fault injection: P(delay) per data frame (default 0)
//	-fault-seed N    fault injection decision seed (default 1)
//
// Scatternet mode (-scatternet) turns the agent into one district shard of
// a distributed metro campaign: it owns the contiguous piconet range
// -piconet-range A:B of a -piconets P scatternet, runs each piconet world
// to completion (deterministic in (seed, piconet), so no spill log is
// needed — a restarted agent re-runs past the sink's resume cursor and
// regenerates byte-identical partials) and ships one fold partial per
// piconet to the district sink as a kind-8 frame, stop-and-wait under
// cumulative acks. The range that starts at piconet 0 additionally runs the
// bridge overlay and ships its pre-merged rollup partial last. The topology
// flags (-piconets -bridges -topology -redundancy -hold -probe-sample) must
// match the sink's district declaration exactly; a mismatch is a fatal
// typed reject. The fault-injection knobs apply to kind-8 frames too.
//
//	-scatternet          run a scatternet district shard
//	-piconet-range A:B   piconet range [A, B) this agent owns (required)
//	-piconets P          scatternet piconet count (default 2)
//	-bridges K           bridge count / random edge budget (default 1)
//	-topology T          ring, star, mesh, random; empty = legacy ring
//	-redundancy K        bridges per span (default 1)
//	-hold S              bridge residency seconds per visit (default 10)
//	-probe-sample F      relay-probe pair sampling fraction in (0, 1]
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"time"

	btpan "repro"
	"repro/internal/collector"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/workload"
)

func main() {
	sinkAddr := flag.String("sink", "127.0.0.1:9310", "sink address")
	keyspace := flag.String("keyspace", "", "campaign keyspace on a multi-tenant sink")
	shard := flag.String("testbed", "", "testbed shard: random or realistic")
	seed := flag.Uint64("seed", 1, "campaign seed (must match the sink)")
	days := flag.Int("days", 4, "virtual campaign days 1..540 (must match the sink)")
	scenario := flag.Int("scenario", int(btpan.ScenarioSIRAs),
		"recovery scenario 1..4 (must match the sink)")
	flush := flag.Int("flush", 3600, "virtual seconds between log drains")
	codecName := flag.String("codec", "binary", "data frame codec: binary or json")
	timeout := flag.Duration("timeout", 10*time.Minute, "completion confirmation timeout (0 = forever)")
	spillDir := flag.String("spill-dir", "", "write-ahead spill log directory (empty disables crash tolerance)")
	spillBudget := flag.Int64("spill-budget", 0, "max bytes of unacknowledged spill (0 = unbounded)")
	drop := flag.Float64("drop", 0, "fault injection: drop probability per data frame")
	dup := flag.Float64("dup", 0, "fault injection: duplicate probability per data frame")
	reorder := flag.Float64("reorder", 0, "fault injection: reorder probability per data frame")
	delay := flag.Duration("delay", 0, "fault injection: delay imposed on a delay decision")
	delayRate := flag.Float64("delay-rate", 0, "fault injection: delay probability per data frame")
	faultSeed := flag.Uint64("fault-seed", 1, "fault injection decision seed")
	scat := flag.Bool("scatternet", false, "run a scatternet district shard")
	piconetRange := flag.String("piconet-range", "", "piconet range A:B owned by this shard (with -scatternet)")
	piconets := flag.Int("piconets", 2, "scatternet piconet count (with -scatternet)")
	bridges := flag.Int("bridges", 1, "scatternet bridge count / random edge budget (with -scatternet)")
	topology := flag.String("topology", "", "scatternet membership map: ring, star, mesh or random (with -scatternet)")
	redundancy := flag.Int("redundancy", 1, "bridges per span (with -scatternet)")
	hold := flag.Int("hold", 10, "bridge residency seconds per piconet visit (with -scatternet)")
	probeSample := flag.Float64("probe-sample", 1, "relay-probe pair sampling fraction in (0, 1] (with -scatternet)")
	flag.Parse()

	if *days < 1 || *days > 540 {
		fatal(fmt.Errorf("-days %d out of range 1..540", *days))
	}
	if *scenario < 1 || *scenario > 4 {
		fatal(fmt.Errorf("-scenario %d out of range 1..4", *scenario))
	}
	if *flush < 1 {
		fatal(fmt.Errorf("-flush %d must be at least one virtual second", *flush))
	}
	codec, err := collector.ParseCodec(*codecName)
	if err != nil {
		fatal(err)
	}
	duration := sim.Time(*days) * sim.Day
	fault := collector.FaultConfig{
		Seed: *faultSeed, Drop: *drop, Duplicate: *dup, Reorder: *reorder,
		Delay: *delay, DelayRate: *delayRate,
	}

	if *scat {
		if *spillDir != "" {
			fatal(fmt.Errorf("-spill-dir is the flat agent's WAL; scatternet shards need none " +
				"(piconet worlds are deterministic and re-run past the sink's resume cursor)"))
		}
		runScatternetShard(scatShardConfig{
			sink: *sinkAddr, keyspace: *keyspace, seed: *seed, duration: duration,
			scenario: btpan.Scenario(*scenario), piconetRange: *piconetRange,
			piconets: *piconets, bridges: *bridges, topology: *topology,
			redundancy: *redundancy, hold: sim.Time(*hold) * sim.Second,
			probeSample: *probeSample, fault: fault,
		})
		return
	}

	randomOpts, realisticOpts := testbed.CampaignOptions(*seed, btpan.Scenario(*scenario), duration)
	var opts testbed.Options
	switch *shard {
	case "random":
		opts = randomOpts
	case "realistic":
		opts = realisticOpts
	default:
		fatal(fmt.Errorf("-testbed %q: want random or realistic", *shard))
	}
	tb, err := testbed.New(opts)
	if err != nil {
		fatal(err)
	}
	nodes := make([]string, 0, len(tb.PANUs)+1)
	for _, h := range tb.PANUs {
		nodes = append(nodes, h.Node)
	}
	nodes = append(nodes, tb.NAP.Node)

	// Decorrelate the reconnection jitter of this campaign's shards: same
	// campaign seed, different testbed name, different backoff schedule.
	jitter := fnv.New64a()
	jitter.Write([]byte(opts.Name))
	agent, err := collector.NewAgent(collector.AgentConfig{
		Addr: *sinkAddr, Keyspace: *keyspace,
		Campaign: collector.CampaignID{Seed: *seed, Duration: duration,
			Scenario: *scenario},
		Testbed: opts.Name, Nodes: nodes, Codec: codec,
		SpillDir: *spillDir, SpillBudget: *spillBudget,
		RetrySeed: *seed ^ jitter.Sum64(),
		Fault:     fault,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "btagent: running %s shard (seed %d, %v, scenario %q) -> %s\n",
		opts.Name, *seed, duration, btpan.Scenario(*scenario), *sinkAddr)

	start := time.Now()
	if err := runShard(tb, agent, duration, sim.Time(*flush)*sim.Second); err != nil {
		fatal(err)
	}
	res := tb.Results()
	counters := make(map[string]*workload.CountersSnapshot, len(res.Counters))
	for node, c := range res.Counters {
		counters[node] = c.Snapshot()
	}
	if err := agent.Finish(counters, duration, *timeout); err != nil {
		fatal(err)
	}
	sent, retrans := agent.Stats()
	fmt.Fprintf(os.Stderr, "btagent: %s shard complete in %v (%d frames sent, %d retransmissions)\n",
		opts.Name, time.Since(start).Round(time.Millisecond), sent, retrans)
}

// runShard drives the simulation with the uplink armed. The testbed's
// streaming drain panics on an unrecoverable uplink error (a refused
// session, a sink that lost its checkpoint); convert that to a clean CLI
// failure instead of a stack trace.
func runShard(tb *testbed.Testbed, agent *collector.Agent, duration, flush sim.Time) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = e
				return
			}
			panic(r)
		}
	}()
	tb.StreamTo(agent, flush)
	tb.Run(duration)
	tb.FinishStream(agent)
	return nil
}

// scatShardConfig bundles the scatternet-mode command line.
type scatShardConfig struct {
	sink, keyspace string
	seed           uint64
	duration       sim.Time
	scenario       btpan.Scenario
	piconetRange   string
	piconets       int
	bridges        int
	topology       string
	redundancy     int
	hold           sim.Time
	probeSample    float64
	fault          collector.FaultConfig
}

// parsePiconetRange parses "A:B" into the half-open range [A, B).
func parsePiconetRange(s string) (lo, hi int, err error) {
	if s == "" {
		return 0, 0, fmt.Errorf("-piconet-range is required with -scatternet (e.g. 0:4)")
	}
	if _, err := fmt.Sscanf(s, "%d:%d", &lo, &hi); err != nil {
		return 0, 0, fmt.Errorf("-piconet-range %q: want A:B (half-open, e.g. 0:4)", s)
	}
	if lo < 0 || hi <= lo {
		return 0, 0, fmt.Errorf("-piconet-range %q is empty or negative", s)
	}
	return lo, hi, nil
}

// runScatternetShard runs one district shard of a distributed metro
// campaign: builds the full campaign engine (so every piconet world derives
// from the same seeds as the single-process run), then walks the owned
// range through collector.RunScatterAgent, which ships each finished
// piconet's fold partial — and, on the range owning piconet 0 of a bridged
// campaign, the overlay's pre-merged rollup partial — to the district sink.
func runScatternetShard(cfg scatShardConfig) {
	lo, hi, err := parsePiconetRange(cfg.piconetRange)
	if err != nil {
		fatal(err)
	}
	scfg := btpan.ScatternetConfig{
		CampaignConfig: btpan.CampaignConfig{
			Seed: cfg.seed, Duration: cfg.duration, Scenario: cfg.scenario,
			Streaming: true,
		},
		Piconets: cfg.piconets, Bridges: cfg.bridges,
		Topology: cfg.topology, Redundancy: cfg.redundancy, HoldTime: cfg.hold,
		ProbeSample: cfg.probeSample, Rollup: true,
	}
	camp, err := btpan.NewScatternetCampaign(scfg)
	if err != nil {
		fatal(err)
	}
	if hi > camp.Piconets() {
		fatal(fmt.Errorf("-piconet-range %s outside the campaign's [0:%d)", cfg.piconetRange, camp.Piconets()))
	}
	// The overlay rides with the range owning piconet 0 — the convention
	// both the district sink and the merge tier enforce.
	overlay := lo == 0 && camp.BridgeCount() > 0
	net := collector.ScatterNet{
		Piconets: camp.Piconets(), Bridges: camp.BridgeCount(),
		Topology: cfg.topology, Redundancy: cfg.redundancy,
		Hold: cfg.hold, ProbeSample: cfg.probeSample,
	}
	// Decorrelate the reconnection jitter of this campaign's shards: same
	// campaign seed, different range, different backoff schedule.
	jitter := fnv.New64a()
	fmt.Fprintf(jitter, "%d:%d", lo, hi)
	fmt.Fprintf(os.Stderr, "btagent: running scatternet shard [%d:%d) of %d piconets (seed %d, %v, scenario %q, overlay %v) -> %s\n",
		lo, hi, camp.Piconets(), cfg.seed, cfg.duration, cfg.scenario, overlay, cfg.sink)
	start := time.Now()
	err = collector.RunScatterAgent(collector.ScatterAgentConfig{
		Addr: cfg.sink, Keyspace: cfg.keyspace,
		Campaign: collector.CampaignID{Seed: cfg.seed, Duration: cfg.duration,
			Scenario: int(cfg.scenario)},
		Net: net, Lo: lo, Hi: hi, Overlay: overlay,
		RunPiconet: camp.PiconetPartial,
		RunOverlay: camp.RunOverlay,
		RetrySeed:  int64(cfg.seed ^ jitter.Sum64()),
		Fault:      cfg.fault,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "btagent: scatternet shard [%d:%d) complete in %v\n",
		lo, hi, time.Since(start).Round(time.Millisecond))
}

// fatal prints the error and exits non-zero.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "btagent:", err)
	os.Exit(1)
}
