package main

import (
	"strings"
	"testing"
)

// TestParsePiconetRange pins the -piconet-range grammar: half-open A:B with
// A >= 0 and B > A; everything else is rejected with a message naming the
// flag.
func TestParsePiconetRange(t *testing.T) {
	cases := []struct {
		in      string
		lo, hi  int
		wantErr string // "" = must parse
	}{
		{in: "0:4", lo: 0, hi: 4},
		{in: "2:3", lo: 2, hi: 3},
		{in: "10:64", lo: 10, hi: 64},
		{in: "", wantErr: "-piconet-range is required"},
		{in: "4", wantErr: "want A:B"},
		{in: "a:b", wantErr: "want A:B"},
		{in: "4:2", wantErr: "is empty or negative"},
		{in: "3:3", wantErr: "is empty or negative"},
		{in: "-1:2", wantErr: "is empty or negative"},
	}
	for _, tc := range cases {
		lo, hi, err := parsePiconetRange(tc.in)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("parsePiconetRange(%q) = %v, want [%d:%d)", tc.in, err, tc.lo, tc.hi)
			} else if lo != tc.lo || hi != tc.hi {
				t.Errorf("parsePiconetRange(%q) = [%d:%d), want [%d:%d)", tc.in, lo, hi, tc.lo, tc.hi)
			}
			continue
		}
		if err == nil {
			t.Errorf("parsePiconetRange(%q) = [%d:%d), want error containing %q", tc.in, lo, hi, tc.wantErr)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("parsePiconetRange(%q) = %q, want error containing %q", tc.in, err, tc.wantErr)
		}
	}
}
