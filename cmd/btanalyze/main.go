// Command btanalyze re-runs the merge-and-coalesce analysis over stored
// campaign logs (the files btcampaign writes): the coalescence sensitivity
// sweep with knee detection, the error-failure relationship table, and the
// SIRA effectiveness table.
//
// Usage:
//
//	btanalyze [-dir DIR] [-window SECONDS]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/coalesce"
	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/sim"
)

func main() {
	dir := flag.String("dir", "campaign-data", "directory holding user.jsonl and system.jsonl")
	windowS := flag.Int("window", 330, "coalescence window in seconds (paper: 330)")
	flag.Parse()

	reports, err := readReports(filepath.Join(*dir, "user.jsonl"))
	if err != nil {
		fatal(err)
	}
	entries, err := readEntries(filepath.Join(*dir, "system.jsonl"))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %d user reports, %d system entries\n\n", len(reports), len(entries))

	// Figure 2: the sensitivity sweep over the merged stream.
	events := coalesce.Merge(reports, entries)
	curve := coalesce.Sensitivity(events, coalesce.DefaultWindows())
	knee, _ := curve.Knee()
	fmt.Printf("coalescence sensitivity: knee at %.0f s (paper picks 330 s)\n\n", knee)

	// Rebuild per-(testbed, node) views for the relationship pipeline.
	perNodeReports := make(map[string]map[string][]core.UserReport)
	for _, r := range reports {
		if perNodeReports[r.Testbed] == nil {
			perNodeReports[r.Testbed] = make(map[string][]core.UserReport)
		}
		perNodeReports[r.Testbed][r.Node] = append(perNodeReports[r.Testbed][r.Node], r)
	}
	perNodeEntries := make(map[string]map[string][]core.SystemEntry)
	for _, e := range entries {
		if perNodeEntries[e.Testbed] == nil {
			perNodeEntries[e.Testbed] = make(map[string][]core.SystemEntry)
		}
		perNodeEntries[e.Testbed][e.Node] = append(perNodeEntries[e.Testbed][e.Node], e)
	}

	window := sim.Time(*windowS) * sim.Second
	ev := coalesce.NewEvidence()
	for tb, nodeReports := range perNodeReports {
		analysis.BuildEvidence(ev, nodeReports, perNodeEntries[tb], "Giallo", window)
	}
	t2 := analysis.BuildTable2(ev)
	fmt.Println("== Table 2: error-failure relationship ==")
	fmt.Print(t2.Render())

	t3 := analysis.BuildTable3(reports)
	fmt.Println("\n== Table 3: SIRA effectiveness ==")
	fmt.Print(t3.Render())
}

func readReports(path string) ([]core.UserReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return logging.ReadUserReports(f)
}

func readEntries(path string) ([]core.SystemEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return logging.ReadSystemEntries(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "btanalyze:", err)
	os.Exit(1)
}
