package main

import (
	"strings"
	"testing"
)

// The CLI validation table: every rejected command line names the offending
// flag and every accepted one parses cleanly — these pin the bugfix sweep
// (probe-sample domain checks at the flag boundary, scatternet-only flags
// rejected on flat campaigns, rollup/sweep cross-checks).
func TestParseCLIValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // "" = must parse
	}{
		{"defaults", nil, ""},
		{"flat stream", []string{"-stream", "-days", "2"}, ""},
		{"days low", []string{"-days", "0"}, "-days 0 out of range"},
		{"days high", []string{"-days", "541"}, "-days 541 out of range"},
		{"scenario low", []string{"-scenario", "0"}, "-scenario 0 out of range 1..4"},
		{"scenario high", []string{"-scenario", "5"}, "-scenario 5 out of range 1..4"},
		{"bad codec", []string{"-codec", "xml"}, "xml"},

		// Bugfix 1: -probe-sample domain validation at the flag boundary.
		{"probe-sample zero", []string{"-scatternet", "-probe-sample", "0"},
			"-probe-sample 0 outside (0, 1]"},
		{"probe-sample negative", []string{"-scatternet", "-probe-sample", "-1"},
			"-probe-sample -1 outside (0, 1]"},
		{"probe-sample above one", []string{"-scatternet", "-probe-sample", "1.5"},
			"-probe-sample 1.5 outside (0, 1]"},
		{"probe-sample NaN", []string{"-scatternet", "-probe-sample", "NaN"},
			"-probe-sample is NaN"},
		{"probe-sample valid", []string{"-scatternet", "-probe-sample", "0.25"}, ""},
		{"probe-sample exhaustive", []string{"-scatternet", "-probe-sample", "1"}, ""},

		// Bugfix 3: scatternet-only flags on a flat campaign are errors, not
		// silently ignored knobs.
		{"stray probe-sample", []string{"-probe-sample", "0.5"},
			"-probe-sample needs -scatternet"},
		{"stray rollup", []string{"-rollup", "-stream"},
			"-rollup needs -scatternet"},
		{"stray hold", []string{"-hold", "20"}, "-hold needs -scatternet"},
		{"stray piconets", []string{"-piconets", "8"}, "-piconets needs -scatternet"},
		{"stray bridges", []string{"-bridges", "4"}, "-bridges needs -scatternet"},
		{"stray topology", []string{"-topology", "ring"}, "-topology needs -scatternet"},
		{"stray redundancy", []string{"-redundancy", "2"}, "-redundancy needs -scatternet"},

		// Rollup cross-checks at the flag boundary.
		{"rollup sweep", []string{"-scatternet", "-rollup", "-stream", "-seeds", "3"},
			"-rollup is a single-campaign report"},
		{"rollup without stream", []string{"-scatternet", "-rollup"},
			"-rollup requires -stream"},
		{"rollup ok", []string{"-scatternet", "-rollup", "-stream"}, ""},

		{"scatternet sweep json", []string{"-scatternet", "-seeds", "3", "-json", "x.json"},
			"-json and -checkpoint-dir support classic sweeps only"},
		{"json without sweep", []string{"-json", "x.json"},
			"-json and -checkpoint-dir need sweep mode"},
		{"scatternet topology ok",
			[]string{"-scatternet", "-topology", "ring", "-piconets", "6", "-stream"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := parseCLI(tc.args)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("parseCLI(%q) = %v, want success", tc.args, err)
				}
				if cfg == nil {
					t.Fatalf("parseCLI(%q) returned nil config", tc.args)
				}
				return
			}
			if err == nil {
				t.Fatalf("parseCLI(%q) accepted, want error containing %q", tc.args, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("parseCLI(%q) = %q, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}
