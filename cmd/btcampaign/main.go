// Command btcampaign runs failure-data collection campaigns on the
// simulated testbeds — the paper's single-piconet pair by default, or a
// bridged multi-piconet scatternet with -scatternet.
//
// Single-seed mode mirrors the paper's infrastructure: each node's
// LogAnalyzer daemon extracts and filters its Test/System logs and ships
// them over TCP (compact binary frames by default, -codec json for
// debugging) to a central repository; the repository contents are written to
// JSON-line files for later analysis with btanalyze. With -stream the
// campaign instead folds records into running aggregates as they are
// collected — O(1) memory in campaign length — and prints the paper tables
// directly, which is what makes month-scale runs (-days 30..540) cheap.
//
// Multi-seed mode (-seeds N) runs a sweep on a bounded worker pool and
// reports every table as mean ± 95 % confidence interval over the seeds.
//
// Scatternet mode (-scatternet) composes -piconets full piconet campaigns
// with -bridges bridge nodes that time-share membership across piconets on
// a -hold second residency schedule, relaying inter-piconet traffic through
// the real stack path. It prints per-piconet tables plus the
// bridge-attributed failure-coupling table; piconet tables aggregate in
// O(1) memory with -stream exactly like single-piconet campaigns (the
// repository shipping path is single-piconet only).
//
// Usage:
//
//	btcampaign [flags]
//
// Flags:
//
//	-seed N          campaign seed; sweeps use seed..seed+seeds-1 (default 1)
//	-days D          virtual campaign days, 1..540 (default 4)
//	-scenario 1..4   recovery regime: 1=reboot only, 2=app restart+reboot,
//	                 3=SIRAs, 4=SIRAs+masking (default 3)
//	-out DIR         output directory for the single-seed retained
//	                 single-piconet repository files (default campaign-data)
//	-codec C         collection wire codec: binary or json (default binary)
//	-stream          fold records into running aggregates (O(1) memory)
//	                 instead of retaining them
//	-seeds N         sweep seed count; N > 1 enables sweep mode with 95% CIs
//	-workers W       sweep worker pool size; 0 means NumCPU/2
//	-scatternet      run a multi-piconet scatternet campaign
//	-piconets P      scatternet piconet count (default 2)
//	-bridges K       scatternet bridge count; bridge b serves the piconet
//	                 ring pair (b mod P, b+1 mod P) (default 1)
//	-hold S          bridge residency seconds per piconet visit (default 10)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	btpan "repro"
	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/sim"
	"repro/internal/testbed"
)

func main() {
	seed := flag.Uint64("seed", 1, "campaign seed (sweeps use seed..seed+seeds-1)")
	days := flag.Int("days", 4, "virtual campaign days (1..540; 30+ is month scale)")
	scenario := flag.Int("scenario", int(btpan.ScenarioSIRAs),
		"recovery scenario: 1=reboot only, 2=app restart+reboot, 3=SIRAs, 4=SIRAs+masking")
	out := flag.String("out", "campaign-data", "output directory (single-seed retained mode)")
	codecName := flag.String("codec", "binary", "collection wire codec: binary or json")
	stream := flag.Bool("stream", false, "streaming aggregation: fold records instead of retaining them")
	seeds := flag.Int("seeds", 1, "number of sweep seeds (>1 enables sweep mode with 95% CIs)")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = NumCPU/2)")
	scat := flag.Bool("scatternet", false, "run a multi-piconet scatternet campaign")
	piconets := flag.Int("piconets", 2, "scatternet piconet count (with -scatternet)")
	bridges := flag.Int("bridges", 1, "scatternet bridge count (with -scatternet)")
	hold := flag.Int("hold", 10, "bridge residency seconds per piconet visit (with -scatternet)")
	flag.Parse()

	if *days < 1 || *days > 540 {
		fatal(fmt.Errorf("-days %d out of range 1..540 (the paper's campaign was 540 days)", *days))
	}
	codec, err := collector.ParseCodec(*codecName)
	if err != nil {
		fatal(err)
	}
	duration := sim.Time(*days) * sim.Day
	holdTime := sim.Time(*hold) * sim.Second

	if *scat {
		if *seeds > 1 {
			runScatternetSweep(*seed, *seeds, duration, btpan.Scenario(*scenario),
				*workers, *piconets, *bridges, holdTime)
			return
		}
		runScatternet(*seed, duration, btpan.Scenario(*scenario),
			*piconets, *bridges, holdTime, *stream)
		return
	}

	if *seeds > 1 {
		runSweep(*seed, *seeds, duration, btpan.Scenario(*scenario), *workers)
		return
	}

	cfg := btpan.CampaignConfig{
		Seed:      *seed,
		Duration:  duration,
		Scenario:  btpan.Scenario(*scenario),
		Streaming: *stream,
	}
	fmt.Printf("running %v campaign (scenario %q, seed %d, %s)...\n",
		cfg.Duration, cfg.Scenario, cfg.Seed, mode(*stream))
	res, err := btpan.RunCampaign(cfg)
	if err != nil {
		fatal(err)
	}
	u, s, tot := res.DataItems()
	fmt.Printf("collected %d user reports + %d system entries = %d items\n", u, s, tot)

	if *stream {
		// Records were folded as they streamed off the nodes; print the
		// tables straight from the aggregates.
		d := res.Dependability()
		fmt.Printf("MTTF %.2f s, MTTR %.2f s, availability %.3f, coverage %.1f%%\n",
			d.MTTF, d.MTTR, d.Availability, d.CoveragePct)
		fmt.Printf("\nTable 2 (error-failure relationship)\n%s", res.Table2().Render())
		fmt.Printf("\nTable 3 (SIRA effectiveness)\n%s", res.Table3().Render())
		return
	}

	shipAndPersist(res, codec, *out)
	d := res.Dependability()
	fmt.Printf("MTTF %.2f s, MTTR %.2f s, availability %.3f, coverage %.1f%%\n",
		d.MTTF, d.MTTR, d.Availability, d.CoveragePct)
}

func mode(stream bool) string {
	if stream {
		return "streaming aggregation"
	}
	return "retained records"
}

// runScatternet runs one scatternet campaign and prints the per-piconet
// tables plus the bridge-attributed failure-coupling table.
func runScatternet(seed uint64, duration sim.Time, scenario btpan.Scenario,
	piconets, bridges int, hold sim.Time, stream bool) {
	fmt.Printf("running %v scatternet campaign (%d piconets, %d bridges, hold %v, scenario %q, seed %d, %s)...\n",
		duration, piconets, bridges, hold, scenario, seed, mode(stream))
	res, err := btpan.RunScatternet(btpan.ScatternetConfig{
		CampaignConfig: btpan.CampaignConfig{
			Seed: seed, Duration: duration, Scenario: scenario, Streaming: stream,
		},
		Piconets: piconets, Bridges: bridges, HoldTime: hold,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nPiconet overview\n%s", res.Overview().Render())
	for p, pic := range res.Piconets {
		fmt.Printf("\nPiconet %d — Table 2 (error-failure relationship)\n%s", p, pic.Table2().Render())
		fmt.Printf("Piconet %d — Table 3 (SIRA effectiveness)\n%s", p, pic.Table3().Render())
	}
	if bridges > 0 {
		fmt.Printf("\nBridge-attributed coupling\n%s", res.Bridges.Render())
		fmt.Printf("\n%d bridge outages propagated as %d correlated piconet-level service interruptions (%.1f s total downtime)\n",
			res.Bridges.TotalOutages(), res.Bridges.CorrelatedOutages(), res.Bridges.TotalDowntimeSeconds())
	}
}

// runScatternetSweep sweeps scatternet campaigns over seeds and prints the
// piconet-0 tables with CIs plus the coupling estimates.
func runScatternetSweep(baseSeed uint64, seeds int, duration sim.Time,
	scenario btpan.Scenario, workers, piconets, bridges int, hold sim.Time) {
	fmt.Printf("sweeping %d seeds x %v scatternet (%d piconets, %d bridges, scenario %q, %d workers)...\n",
		seeds, duration, piconets, bridges, scenario, workers)
	start := time.Now()
	res, err := btpan.Sweep(btpan.SweepConfig{
		BaseSeed: baseSeed, Seeds: seeds, Duration: duration, Scenario: scenario,
		Workers: workers, Piconets: piconets, Bridges: bridges, HoldTime: hold,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("sweep finished in %v\n\n", time.Since(start).Round(time.Millisecond))
	for p := 0; p < piconets; p++ {
		fmt.Printf("Piconet %d dependability (mean ± 95%% CI)\n%s\n",
			p, res.PiconetDependabilityCI(p).Render())
	}
	fmt.Printf("correlated piconet outages per seed: %s\n", res.CorrelatedOutagesCI().Format("%.1f"))
	fmt.Printf("bridge downtime per seed (s):        %s\n", res.BridgeDowntimeCI().Format("%.1f"))
}

// runSweep runs the multi-seed sweep and prints every table with 95 % CIs.
func runSweep(baseSeed uint64, seeds int, duration sim.Time, scenario btpan.Scenario, workers int) {
	fmt.Printf("sweeping %d seeds x %v (scenario %q, %d workers)...\n",
		seeds, duration, scenario, workers)
	start := time.Now()
	res, err := btpan.Sweep(btpan.SweepConfig{
		BaseSeed: baseSeed, Seeds: seeds, Duration: duration,
		Scenario: scenario, Workers: workers,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("sweep finished in %v\n\n", time.Since(start).Round(time.Millisecond))
	sc := res.ScalarsCI()
	fmt.Printf("data items per seed: %s user reports, %s system entries\n",
		sc.UserReports.Format("%.0f"), sc.SystemEntries.Format("%.0f"))
	fmt.Printf("random-workload share: %s%% (paper: 84%%)\n\n", sc.RandomSharePct.Format("%.1f"))
	fmt.Printf("Table 2 (error-failure relationship, mean ± 95%% CI)\n%s\n", res.Table2CI().Render())
	fmt.Printf("Table 3 (SIRA effectiveness, mean ± 95%% CI)\n%s\n", res.Table3CI().Render())
	fmt.Printf("Table 4 column (dependability, mean ± 95%% CI)\n%s", res.DependabilityCI().Render())
}

// shipAndPersist pushes the retained campaign through the real collection
// path — one LogAnalyzer per node, a central repository over loopback TCP —
// and writes the repository contents to JSON-line files.
func shipAndPersist(res *btpan.CampaignResult, codec collector.Codec, out string) {
	repo, err := collector.NewRepository("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	defer repo.Close()

	shippedBatches := 0
	ship := func(tb *testbed.Results) {
		flush := func(node string, reports []core.UserReport, entries []core.SystemEntry) {
			test := logging.NewTestLog(node)
			for _, r := range reports {
				test.Append(r)
			}
			sys := logging.NewSystemLog(node)
			for _, e := range entries {
				sys.Append(e)
			}
			a := collector.NewLogAnalyzer(node, tb.Name, test, sys, repo.Addr(), collector.DefaultFilter())
			a.Codec = codec
			if err := a.FlushOnce(); err != nil {
				fatal(err)
			}
			shippedBatches += a.Shipped()
		}
		for node, reports := range tb.PerNodeReports {
			flush(node, reports, tb.PerNodeEntries[node])
		}
		// The NAP has no Test Log, only a System Log.
		flush(tb.NAPNode, nil, tb.PerNodeEntries[tb.NAPNode])
	}
	ship(res.Random)
	ship(res.Realistic)
	// Batches land asynchronously; rendezvous before reading the store, or
	// the tail batch of the last node can still be in flight.
	if !repo.WaitForBatches(shippedBatches, 10*time.Second) {
		fatal(fmt.Errorf("repository received fewer batches than shipped (%d expected)", shippedBatches))
	}

	if err := os.MkdirAll(out, 0o755); err != nil {
		fatal(err)
	}
	reports := repo.Reports()
	entries := repo.Entries()
	logging.SortUserReports(reports)
	logging.SortSystemEntries(entries)

	if err := writeReports(filepath.Join(out, "user.jsonl"), reports); err != nil {
		fatal(err)
	}
	if err := writeEntries(filepath.Join(out, "system.jsonl"), entries); err != nil {
		fatal(err)
	}
	fmt.Printf("repository stored %d reports / %d entries (%s codec) -> %s/{user,system}.jsonl\n",
		len(reports), len(entries), codec, out)
}

func writeReports(path string, reports []core.UserReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return logging.WriteUserReports(f, reports)
}

func writeEntries(path string, entries []core.SystemEntry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return logging.WriteSystemEntries(f, entries)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "btcampaign:", err)
	os.Exit(1)
}
