// Command btcampaign runs failure-data collection campaigns on the
// simulated testbeds — the paper's single-piconet pair by default, or a
// bridged multi-piconet scatternet with -scatternet.
//
// Single-seed mode mirrors the paper's infrastructure: each node's
// LogAnalyzer daemon extracts and filters its Test/System logs and ships
// them over TCP (compact binary frames by default, -codec json for
// debugging) to a central repository; the repository contents are written to
// JSON-line files for later analysis with btanalyze. With -stream the
// campaign instead folds records into running aggregates as they are
// collected — O(1) memory in campaign length — and prints the paper tables
// directly, which is what makes month-scale runs (-days 30..540) cheap.
//
// Multi-seed mode (-seeds N) runs a sweep on a bounded worker pool and
// reports every table as mean ± 95 % confidence interval over the seeds.
//
// Scatternet mode (-scatternet) composes -piconets full piconet campaigns
// with bridge nodes that time-share membership across piconets on a -hold
// second residency schedule, relaying inter-piconet traffic through the
// real stack path. The bridge→piconet membership map comes from -topology
// (ring, star, mesh, or a seeded random connected graph; the default keeps
// the legacy ring pairing of -bridges bridges), and -redundancy K deploys K
// bridges per span, charging a correlated outage only while all K are down.
// It prints per-piconet tables plus the bridge-attributed failure-coupling
// table, the delay-vs-relay-depth table from the multi-hop probe plane, and
// the redundancy table (measured all-down time against the independent
// 1-out-of-K model); piconet tables aggregate in O(1) memory with -stream
// exactly like single-piconet campaigns (the repository shipping path is
// single-piconet only).
//
// City scale (-piconets 1000) wants three more knobs: -shards S partitions
// the piconet space across S worker goroutines (0 = GOMAXPROCS; any value
// gives identical results), -probe-sample F keeps each ordered piconet pair
// on the relay probe plane with seeded probability F instead of probing all
// P·(P-1) pairs (probe counts scale back by 1/F in the report; delays are
// unbiased; F=1 is exhaustive and byte-identical), and -rollup (needs
// -stream) folds every finished piconet into one hierarchical metro-wide
// report — deployment Table 2/3/4, per-piconet overview, all-bridge summary
// — instead of retaining P per-piconet results, keeping live memory flat in
// the piconet count.
//
// Usage:
//
//	btcampaign [flags]
//
// Flags:
//
//	-seed N          campaign seed; sweeps use seed..seed+seeds-1 (default 1)
//	-days D          virtual campaign days, 1..540 (default 4)
//	-scenario 1..4   recovery regime: 1=reboot only, 2=app restart+reboot,
//	                 3=SIRAs, 4=SIRAs+masking (default 3)
//	-out DIR         output directory for the single-seed retained
//	                 single-piconet repository files (default campaign-data)
//	-codec C         collection wire codec: binary or json (default binary)
//	-stream          fold records into running aggregates (O(1) memory)
//	                 instead of retaining them
//	-seeds N         sweep seed count; N > 1 enables sweep mode with 95% CIs
//	-workers W       sweep worker pool size; 0 means NumCPU/2
//	-json FILE       sweep mode: also write the CI tables as JSON (the
//	                 input of docs/CONVERGENCE.md)
//	-checkpoint-dir D  sweep mode: persist each completed seed in D and
//	                 resume interrupted sweeps (streaming sweeps only).
//	                 This is per-seed sweep resume, not the distributed
//	                 plane's crash tolerance: for campaigns run as real
//	                 processes, sink durability is btsink's -checkpoint /
//	                 -checkpoint-dir and agent durability is btagent's
//	                 -spill-dir/-spill-budget write-ahead spill log — the
//	                 two compose, and OPERATIONS.md's crash matrix says
//	                 which flag recovers which failure
//	-scatternet      run a multi-piconet scatternet campaign
//	-piconets P      scatternet piconet count (default 2)
//	-bridges K       scatternet bridge count for the legacy ring pairing
//	                 (bridge b serves b mod P, b+1 mod P) and the random
//	                 topology's edge budget; ring/star/mesh topologies
//	                 dictate their own bridge count (default 1)
//	-topology T      membership map: ring, star, mesh or random; empty
//	                 keeps the legacy -bridges ring pairing (default "")
//	-redundancy K    bridges per span; K >= 2 forms redundancy groups whose
//	                 correlated outage needs all K down at once (default 1)
//	-hold S          bridge residency seconds per piconet visit (default 10)
//	-shards S        scatternet piconet-plane worker shards; 0 = GOMAXPROCS
//	                 capped at the piconet count, 1 = fully sequential —
//	                 results identical for any value (default 0)
//	-probe-sample F  relay-probe pair sampling fraction in (0, 1]; keeps
//	                 each ordered piconet pair with seeded probability F.
//	                 1 probes every pair exhaustively (default 1)
//	-rollup          with -scatternet -stream: fold piconets into one
//	                 hierarchical metro-wide report (live memory flat in
//	                 -piconets) instead of per-piconet tables
//	-taxonomy        append the failure-taxonomy / survival plane to the
//	                 report: the per-phase (discovery/probe/open/send/
//	                 session) failure split with transience verdicts and
//	                 MTBF/MTTR, the Kaplan-Meier node-uptime curve and the
//	                 failure-interarrival histogram; sweeps print the
//	                 taxonomy CI summary, scatternet roll-ups add the
//	                 partition-candidate spans (all K bridges of a span
//	                 down >= 30 s at once). Rendering only: the underlying
//	                 accumulators always run, so the flag cannot change
//	                 any other table
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	btpan "repro"
	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// cliConfig is the parsed and validated command line.
type cliConfig struct {
	seed     uint64
	duration sim.Time
	scenario btpan.Scenario
	out      string
	codec    collector.Codec
	stream   bool
	seeds    int
	workers  int
	jsonOut  string
	ckptDir  string
	scat     bool
	taxonomy bool
	topo     scatTopology
}

// partitionThresholdSeconds is the -taxonomy report's partition-candidate
// threshold: a span qualifies when all its bridges were simultaneously
// down for at least this long (tests sweep other thresholds through the
// library API).
const partitionThresholdSeconds = 30

// scatOnlyFlags are meaningful only with -scatternet; setting one on a flat
// campaign is a configuration error (the flag would be silently ignored,
// and a silently ignored -probe-sample or -rollup is exactly the kind of
// misconfiguration that produces a report nobody meant to run).
var scatOnlyFlags = map[string]bool{
	"probe-sample": true, "rollup": true, "hold": true, "piconets": true,
	"bridges": true, "topology": true, "redundancy": true,
}

// parseCLI parses and cross-validates the command line. Every validation
// returns an error instead of exiting so the table-driven CLI tests can
// exercise it directly.
func parseCLI(args []string) (*cliConfig, error) {
	fs := flag.NewFlagSet("btcampaign", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "campaign seed (sweeps use seed..seed+seeds-1)")
	days := fs.Int("days", 4, "virtual campaign days (1..540; 30+ is month scale)")
	scenario := fs.Int("scenario", int(btpan.ScenarioSIRAs),
		"recovery scenario: 1=reboot only, 2=app restart+reboot, 3=SIRAs, 4=SIRAs+masking")
	out := fs.String("out", "campaign-data", "output directory (single-seed retained mode)")
	codecName := fs.String("codec", "binary", "collection wire codec: binary or json")
	stream := fs.Bool("stream", false, "streaming aggregation: fold records instead of retaining them")
	seeds := fs.Int("seeds", 1, "number of sweep seeds (>1 enables sweep mode with 95% CIs)")
	workers := fs.Int("workers", 0, "sweep worker pool size (0 = NumCPU/2)")
	jsonOut := fs.String("json", "", "sweep mode: also write the CI tables as JSON to this file")
	ckptDir := fs.String("checkpoint-dir", "", "sweep mode: per-seed checkpoint directory (interrupted sweeps resume)")
	scat := fs.Bool("scatternet", false, "run a multi-piconet scatternet campaign")
	piconets := fs.Int("piconets", 2, "scatternet piconet count (with -scatternet)")
	bridges := fs.Int("bridges", 1, "scatternet bridge count: legacy ring pairing / random edge budget (with -scatternet)")
	topology := fs.String("topology", "", "scatternet membership map: ring, star, mesh or random (empty = legacy -bridges ring)")
	redundancy := fs.Int("redundancy", 1, "bridges per span; >= 2 forms redundancy groups (with -scatternet)")
	hold := fs.Int("hold", 10, "bridge residency seconds per piconet visit (with -scatternet)")
	shards := fs.Int("shards", 0, "scatternet piconet-plane worker shards (0 = GOMAXPROCS; results identical for any value)")
	probeSample := fs.Float64("probe-sample", 1, "relay-probe pair sampling fraction in (0, 1]; 1 = exhaustive")
	rollup := fs.Bool("rollup", false, "scatternet streaming mode: one hierarchical metro-wide report, memory flat in -piconets")
	taxonomy := fs.Bool("taxonomy", false, "append the failure-taxonomy / survival report (per-phase split, Kaplan-Meier uptime curve, interarrival histogram)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	if *days < 1 || *days > 540 {
		return nil, fmt.Errorf("-days %d out of range 1..540 (the paper's campaign was 540 days)", *days)
	}
	if *scenario < 1 || *scenario > 4 {
		return nil, fmt.Errorf("-scenario %d out of range 1..4", *scenario)
	}
	codec, err := collector.ParseCodec(*codecName)
	if err != nil {
		return nil, err
	}
	if !*scat {
		var stray string
		fs.Visit(func(f *flag.Flag) {
			if stray == "" && scatOnlyFlags[f.Name] {
				stray = f.Name
			}
		})
		if stray != "" {
			return nil, fmt.Errorf("-%s needs -scatternet (it configures the scatternet plane)", stray)
		}
	} else {
		switch {
		case math.IsNaN(*probeSample):
			return nil, fmt.Errorf("-probe-sample is NaN; want a fraction in (0, 1] (1 = exhaustive)")
		case *probeSample <= 0 || *probeSample > 1:
			return nil, fmt.Errorf("-probe-sample %v outside (0, 1] (1 = exhaustive)", *probeSample)
		}
		if *jsonOut != "" || *ckptDir != "" {
			return nil, fmt.Errorf("-json and -checkpoint-dir support classic sweeps only, not -scatternet")
		}
		if *seeds > 1 && *rollup {
			return nil, fmt.Errorf("-rollup is a single-campaign report; sweeps aggregate across seeds already")
		}
		if *seeds <= 1 && *rollup && !*stream {
			return nil, fmt.Errorf("-rollup requires -stream (the roll-up folds streaming aggregates)")
		}
	}
	if !*scat && *seeds <= 1 && (*jsonOut != "" || *ckptDir != "") {
		return nil, fmt.Errorf("-json and -checkpoint-dir need sweep mode (-seeds > 1)")
	}
	if *taxonomy && *scat && *seeds <= 1 && !*rollup {
		return nil, fmt.Errorf("-taxonomy with -scatternet needs -rollup (the deployment-wide taxonomy folds the roll-up aggregates)")
	}

	return &cliConfig{
		seed: *seed, duration: sim.Time(*days) * sim.Day,
		scenario: btpan.Scenario(*scenario),
		out:      *out, codec: codec, stream: *stream,
		seeds: *seeds, workers: *workers, jsonOut: *jsonOut, ckptDir: *ckptDir,
		scat: *scat, taxonomy: *taxonomy,
		topo: scatTopology{piconets: *piconets, bridges: *bridges,
			name: *topology, redundancy: *redundancy,
			hold:   sim.Time(*hold) * sim.Second,
			shards: *shards, probeSample: *probeSample, rollup: *rollup},
	}, nil
}

func main() {
	cfg, err := parseCLI(os.Args[1:])
	if err != nil {
		fatal(err)
	}

	if cfg.scat {
		if cfg.seeds > 1 {
			runScatternetSweep(cfg.seed, cfg.seeds, cfg.duration, cfg.scenario, cfg.workers, cfg.topo, cfg.taxonomy)
			return
		}
		runScatternet(cfg.seed, cfg.duration, cfg.scenario, cfg.topo, cfg.stream, cfg.taxonomy)
		return
	}

	if cfg.seeds > 1 {
		runSweep(cfg.seed, cfg.seeds, cfg.duration, cfg.scenario, cfg.workers, cfg.jsonOut, cfg.ckptDir, cfg.taxonomy)
		return
	}

	campaign := btpan.CampaignConfig{
		Seed:      cfg.seed,
		Duration:  cfg.duration,
		Scenario:  cfg.scenario,
		Streaming: cfg.stream,
	}
	fmt.Printf("running %v campaign (scenario %q, seed %d, %s)...\n",
		campaign.Duration, campaign.Scenario, campaign.Seed, mode(cfg.stream))
	res, err := btpan.RunCampaign(campaign)
	if err != nil {
		fatal(err)
	}

	if cfg.stream {
		// Records were folded as they streamed off the nodes; print the
		// canonical streaming report straight from the aggregates. The
		// format is shared with btsink (btpan.WriteReport) so a distributed
		// run of the same seeds is diffable byte for byte.
		btpan.WriteReport(os.Stdout, res)
		if cfg.taxonomy {
			btpan.WriteTaxonomyReport(os.Stdout, res)
		}
		return
	}
	u, s, tot := res.DataItems()
	fmt.Printf("collected %d user reports + %d system entries = %d items\n", u, s, tot)

	shipAndPersist(res, cfg.codec, cfg.out)
	d := res.Dependability()
	fmt.Printf("MTTF %.2f s, MTTR %.2f s, availability %.3f, coverage %.1f%%\n",
		d.MTTF, d.MTTR, d.Availability, d.CoveragePct)
	if cfg.taxonomy {
		btpan.WriteTaxonomyReport(os.Stdout, res)
	}
}

func mode(stream bool) string {
	if stream {
		return "streaming aggregation"
	}
	return "retained records"
}

// scatTopology bundles the CLI's scatternet topology and scale knobs.
type scatTopology struct {
	piconets, bridges, redundancy int
	name                          string
	hold                          sim.Time
	shards                        int
	probeSample                   float64
	rollup                        bool
}

// describe renders the topology knobs for campaign banners.
func (t scatTopology) describe() string {
	name := t.name
	if name == "" {
		name = fmt.Sprintf("legacy ring, %d bridge(s)", t.bridges)
	}
	if t.redundancy > 1 {
		name += fmt.Sprintf(", %d-redundant", t.redundancy)
	}
	return fmt.Sprintf("%d piconets, %s topology", t.piconets, name)
}

// runScatternet runs one scatternet campaign and prints the per-piconet
// tables plus the bridge-attributed coupling, relay-depth and redundancy
// tables.
func runScatternet(seed uint64, duration sim.Time, scenario btpan.Scenario,
	topo scatTopology, stream, taxonomy bool) {
	fmt.Printf("running %v scatternet campaign (%s, hold %v, scenario %q, seed %d, %s)...\n",
		duration, topo.describe(), topo.hold, scenario, seed, mode(stream))
	res, err := btpan.RunScatternet(btpan.ScatternetConfig{
		CampaignConfig: btpan.CampaignConfig{
			Seed: seed, Duration: duration, Scenario: scenario, Streaming: stream,
			Parallelism: topo.shards,
		},
		Piconets: topo.piconets, Bridges: topo.bridges,
		Topology: topo.name, Redundancy: topo.redundancy, HoldTime: topo.hold,
		ProbeSample: topo.probeSample, Rollup: topo.rollup,
	})
	if err != nil {
		fatal(err)
	}
	if res.Rollup != nil {
		// The hierarchical metro report replaces the per-piconet spread: the
		// whole deployment in one pass, memory flat in the piconet count.
		fmt.Printf("\n%s", res.Rollup.Render())
		if res.Topology.Bridges() > 0 {
			fmt.Printf("\nRedundancy groups (outage charged only when a whole span is down)\n%s",
				res.Redundancy.Render())
		}
		if taxonomy {
			fmt.Printf("\n%s", res.Rollup.RenderTaxonomy(duration))
			if res.Topology.Bridges() > 0 {
				fmt.Printf("\n%s", res.Redundancy.RenderPartitionCandidates(partitionThresholdSeconds))
			}
		}
		return
	}
	fmt.Printf("\nPiconet overview\n%s", res.Overview().Render())
	for p, pic := range res.Piconets {
		fmt.Printf("\nPiconet %d — Table 2 (error-failure relationship)\n%s", p, pic.Table2().Render())
		fmt.Printf("Piconet %d — Table 3 (SIRA effectiveness)\n%s", p, pic.Table3().Render())
	}
	if res.Topology.Bridges() > 0 {
		fmt.Printf("\nBridge-attributed coupling\n%s", res.Bridges.Render())
		fmt.Printf("\nRelay delay vs depth (store-and-forward probes)\n%s", res.RelayDepth.Render())
		fmt.Printf("\nRedundancy groups (outage charged only when a whole span is down)\n%s",
			res.Redundancy.Render())
		fmt.Printf("\n%d bridge outages propagated as %d correlated piconet-level service interruptions (%.1f s total downtime)\n",
			res.Bridges.TotalOutages(), res.Bridges.CorrelatedOutages(), res.Bridges.TotalDowntimeSeconds())
	}
}

// runScatternetSweep sweeps scatternet campaigns over seeds and prints the
// piconet tables with CIs plus the coupling, relay-depth and redundancy
// estimates.
func runScatternetSweep(baseSeed uint64, seeds int, duration sim.Time,
	scenario btpan.Scenario, workers int, topo scatTopology, taxonomy bool) {
	fmt.Printf("sweeping %d seeds x %v scatternet (%s, scenario %q, %d workers)...\n",
		seeds, duration, topo.describe(), scenario, workers)
	start := time.Now()
	res, err := btpan.Sweep(btpan.SweepConfig{
		BaseSeed: baseSeed, Seeds: seeds, Duration: duration, Scenario: scenario,
		Workers: workers, Piconets: topo.piconets, Bridges: topo.bridges,
		Topology: topo.name, Redundancy: topo.redundancy, HoldTime: topo.hold,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("sweep finished in %v\n\n", time.Since(start).Round(time.Millisecond))
	for p := 0; p < len(res.Scatternets[0].Piconets); p++ {
		fmt.Printf("Piconet %d dependability (mean ± 95%% CI)\n%s\n",
			p, res.PiconetDependabilityCI(p).Render())
	}
	fmt.Printf("Relay delay vs depth (mean ± 95%% CI per seed)\n%s\n", res.RelayDepthCI().Render())
	fmt.Printf("Redundancy (mean ± 95%% CI per seed)\n%s\n", res.RedundancyCI().Render())
	fmt.Printf("correlated piconet outages per seed: %s\n", res.CorrelatedOutagesCI().Format("%.1f"))
	fmt.Printf("bridge downtime per seed (s):        %s\n", res.BridgeDowntimeCI().Format("%.1f"))
	if taxonomy {
		fmt.Printf("\nTaxonomy (piconet 0, mean ± 95%% CI)\n%s", res.TaxonomyCI().Render())
	}
}

// runSweep runs the multi-seed sweep and prints every table with 95 % CIs.
// jsonOut optionally writes the machine-readable CI summary (the input of
// docs/CONVERGENCE.md); ckptDir makes the sweep resumable per seed.
func runSweep(baseSeed uint64, seeds int, duration sim.Time, scenario btpan.Scenario,
	workers int, jsonOut, ckptDir string, taxonomy bool) {
	fmt.Printf("sweeping %d seeds x %v (scenario %q, %d workers)...\n",
		seeds, duration, scenario, workers)
	start := time.Now()
	cfg := btpan.SweepConfig{
		BaseSeed: baseSeed, Seeds: seeds, Duration: duration,
		Scenario: scenario, Workers: workers, CheckpointDir: ckptDir,
	}
	res, err := btpan.Sweep(cfg)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("sweep finished in %v\n\n", elapsed.Round(time.Millisecond))
	sc := res.ScalarsCI()
	fmt.Printf("data items per seed: %s user reports, %s system entries\n",
		sc.UserReports.Format("%.0f"), sc.SystemEntries.Format("%.0f"))
	fmt.Printf("random-workload share: %s%% (paper: 84%%)\n\n", sc.RandomSharePct.Format("%.1f"))
	fmt.Printf("Table 2 (error-failure relationship, mean ± 95%% CI)\n%s\n", res.Table2CI().Render())
	fmt.Printf("Table 3 (SIRA effectiveness, mean ± 95%% CI)\n%s\n", res.Table3CI().Render())
	fmt.Printf("Table 4 column (dependability, mean ± 95%% CI)\n%s", res.DependabilityCI().Render())
	if taxonomy {
		fmt.Printf("\nTaxonomy (mean ± 95%% CI)\n%s", res.TaxonomyCI().Render())
	}
	if jsonOut != "" {
		if err := writeSweepJSON(jsonOut, cfg, res, elapsed); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote CI summary -> %s\n", jsonOut)
	}
}

// ciJSON is one mean ± 95 % CI cell of the sweep's JSON summary.
type ciJSON struct {
	Mean float64 `json:"mean"`
	Half float64 `json:"half"`
	N    int     `json:"n"`
}

// est converts a stats.Estimate for JSON output.
func est(e stats.Estimate) ciJSON { return ciJSON{Mean: e.Mean, Half: e.Half, N: e.N} }

// writeSweepJSON emits the sweep's CI tables as machine-readable JSON: the
// §6 scalars, the Table 4 column, Table 2's TOT column and per-source
// totals, and Table 3's Total row. docs/CONVERGENCE.md is built from these
// files across horizons.
func writeSweepJSON(path string, cfg btpan.SweepConfig, res *btpan.SweepResult,
	elapsed time.Duration) error {
	sc := res.ScalarsCI()
	t2 := res.Table2CI()
	t3 := res.Table3CI()
	d := res.DependabilityCI()
	t2tot := make(map[string]ciJSON, len(t2.Tot))
	for f, e := range t2.Tot {
		t2tot[f.String()] = est(e)
	}
	t2src := make(map[string]ciJSON, len(t2.SourceTotals))
	for src, e := range t2.SourceTotals {
		t2src[src.String()] = est(e)
	}
	t3total := make(map[string]ciJSON, core.NumRecoveryActions)
	for i, a := range core.RecoveryActions() {
		t3total[a.String()] = est(t3.TotalRow[i])
	}
	tax := res.TaxonomyCI()
	taxPhases := make(map[string]ciJSON, len(tax.Failures))
	for p, e := range tax.Failures {
		taxPhases[p.String()] = est(e)
	}
	out := map[string]any{
		"base_seed":    cfg.BaseSeed,
		"seeds":        cfg.Seeds,
		"days":         int(cfg.Duration / sim.Day),
		"scenario":     int(cfg.Scenario),
		"wall_seconds": elapsed.Seconds(),
		"scalars": map[string]ciJSON{
			"user_reports":     est(sc.UserReports),
			"system_entries":   est(sc.SystemEntries),
			"random_share_pct": est(sc.RandomSharePct),
		},
		"dependability": map[string]ciJSON{
			"mttf_s":       est(d.MTTF),
			"mttr_s":       est(d.MTTR),
			"availability": est(d.Availability),
			"coverage_pct": est(d.CoveragePct),
			"masking_pct":  est(d.MaskingPct),
			"failures":     est(d.Failures),
		},
		"table2_tot_pct":    t2tot,
		"table2_source_pct": t2src,
		"table3_total_pct":  t3total,
		"taxonomy": map[string]any{
			"phase_failures":      taxPhases,
			"dynamic_pct":         est(tax.DynamicPct),
			"mean_interarrival_s": est(tax.MeanUptime),
		},
	}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// shipAndPersist pushes the retained campaign through the real collection
// path — one LogAnalyzer per node, a central repository over loopback TCP —
// and writes the repository contents to JSON-line files.
func shipAndPersist(res *btpan.CampaignResult, codec collector.Codec, out string) {
	repo, err := collector.NewRepository("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	defer repo.Close()

	shippedBatches := 0
	ship := func(tb *testbed.Results) {
		flush := func(node string, reports []core.UserReport, entries []core.SystemEntry) {
			test := logging.NewTestLog(node)
			for _, r := range reports {
				test.Append(r)
			}
			sys := logging.NewSystemLog(node)
			for _, e := range entries {
				sys.Append(e)
			}
			a := collector.NewLogAnalyzer(node, tb.Name, test, sys, repo.Addr(), collector.DefaultFilter())
			a.Codec = codec
			if err := a.FlushOnce(); err != nil {
				fatal(err)
			}
			shippedBatches += a.Shipped()
		}
		for node, reports := range tb.PerNodeReports {
			flush(node, reports, tb.PerNodeEntries[node])
		}
		// The NAP has no Test Log, only a System Log.
		flush(tb.NAPNode, nil, tb.PerNodeEntries[tb.NAPNode])
	}
	ship(res.Random)
	ship(res.Realistic)
	// Batches land asynchronously; rendezvous before reading the store, or
	// the tail batch of the last node can still be in flight.
	if !repo.WaitForBatches(shippedBatches, 10*time.Second) {
		fatal(fmt.Errorf("repository received fewer batches than shipped (%d expected)", shippedBatches))
	}

	if err := os.MkdirAll(out, 0o755); err != nil {
		fatal(err)
	}
	reports := repo.Reports()
	entries := repo.Entries()
	logging.SortUserReports(reports)
	logging.SortSystemEntries(entries)

	if err := writeReports(filepath.Join(out, "user.jsonl"), reports); err != nil {
		fatal(err)
	}
	if err := writeEntries(filepath.Join(out, "system.jsonl"), entries); err != nil {
		fatal(err)
	}
	fmt.Printf("repository stored %d reports / %d entries (%s codec) -> %s/{user,system}.jsonl\n",
		len(reports), len(entries), codec, out)
}

func writeReports(path string, reports []core.UserReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return logging.WriteUserReports(f, reports)
}

func writeEntries(path string, entries []core.SystemEntry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return logging.WriteSystemEntries(f, entries)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "btcampaign:", err)
	os.Exit(1)
}
