// Command btcampaign runs a failure-data collection campaign on the two
// simulated testbeds and persists the collected logs.
//
// The collection path mirrors the paper's infrastructure: each node's
// LogAnalyzer daemon extracts and filters its Test/System logs and ships
// them over TCP to a central repository; the repository contents are then
// written to JSON-line files for later analysis with btanalyze.
//
// Usage:
//
//	btcampaign [-seed N] [-days D] [-scenario 1..4] [-out DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	btpan "repro"
	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/sim"
	"repro/internal/testbed"
)

func main() {
	seed := flag.Uint64("seed", 1, "campaign seed")
	days := flag.Int("days", 4, "virtual campaign days")
	scenario := flag.Int("scenario", int(btpan.ScenarioSIRAs),
		"recovery scenario: 1=reboot only, 2=app restart+reboot, 3=SIRAs, 4=SIRAs+masking")
	out := flag.String("out", "campaign-data", "output directory")
	flag.Parse()

	cfg := btpan.CampaignConfig{
		Seed:     *seed,
		Duration: sim.Time(*days) * sim.Day,
		Scenario: btpan.Scenario(*scenario),
	}
	fmt.Printf("running %v campaign (scenario %q, seed %d)...\n",
		cfg.Duration, cfg.Scenario, cfg.Seed)
	res, err := btpan.RunCampaign(cfg)
	if err != nil {
		fatal(err)
	}
	u, s, tot := res.DataItems()
	fmt.Printf("collected %d user reports + %d system entries = %d items\n", u, s, tot)

	// Ship everything through the real collection path: one LogAnalyzer per
	// node, a central repository over loopback TCP.
	repo, err := collector.NewRepository("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	defer repo.Close()

	shippedBatches := 0
	ship := func(tb *testbed.Results) {
		for node, reports := range tb.PerNodeReports {
			test := logging.NewTestLog(node)
			for _, r := range reports {
				test.Append(r)
			}
			sys := logging.NewSystemLog(node)
			for _, e := range tb.PerNodeEntries[node] {
				sys.Append(e)
			}
			a := collector.NewLogAnalyzer(node, tb.Name, test, sys, repo.Addr(), collector.DefaultFilter())
			if err := a.FlushOnce(); err != nil {
				fatal(err)
			}
			shippedBatches += a.Shipped()
		}
		// The NAP has no Test Log, only a System Log.
		sys := logging.NewSystemLog(tb.NAPNode)
		for _, e := range tb.PerNodeEntries[tb.NAPNode] {
			sys.Append(e)
		}
		a := collector.NewLogAnalyzer(tb.NAPNode, tb.Name, logging.NewTestLog(tb.NAPNode),
			sys, repo.Addr(), collector.DefaultFilter())
		if err := a.FlushOnce(); err != nil {
			fatal(err)
		}
		shippedBatches += a.Shipped()
	}
	ship(res.Random)
	ship(res.Realistic)
	// Batches land asynchronously; rendezvous before reading the store, or
	// the tail batch of the last node can still be in flight.
	if !repo.WaitForBatches(shippedBatches, 10*time.Second) {
		fatal(fmt.Errorf("repository received fewer batches than shipped (%d expected)", shippedBatches))
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	reports := repo.Reports()
	entries := repo.Entries()
	logging.SortUserReports(reports)
	logging.SortSystemEntries(entries)

	if err := writeReports(filepath.Join(*out, "user.jsonl"), reports); err != nil {
		fatal(err)
	}
	if err := writeEntries(filepath.Join(*out, "system.jsonl"), entries); err != nil {
		fatal(err)
	}
	fmt.Printf("repository stored %d reports / %d entries -> %s/{user,system}.jsonl\n",
		len(reports), len(entries), *out)

	d := res.Dependability()
	fmt.Printf("MTTF %.2f s, MTTR %.2f s, availability %.3f, coverage %.1f%%\n",
		d.MTTF, d.MTTR, d.Availability, d.CoveragePct)
}

func writeReports(path string, reports []core.UserReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return logging.WriteUserReports(f, reports)
}

func writeEntries(path string, entries []core.SystemEntry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return logging.WriteSystemEntries(f, entries)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "btcampaign:", err)
	os.Exit(1)
}
