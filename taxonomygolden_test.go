package btpan

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/sim"
)

// The taxonomy capture pins the NEW report surfaces of the taxonomy /
// survival plane byte-for-byte: the -taxonomy appendix (phase x transience
// table, Kaplan-Meier uptime curve, interarrival histogram) on both
// aggregation planes, the deployment-wide roll-up rendering, and the
// partition-candidate list of a K-redundant span. Together with
// testdata/report_golden.txt (which proves the plane is invisible when not
// rendered) this is the golden half of the PR 10 acceptance bar.
//
// Regenerate (only when intentionally re-baselining on a known-good tree)
// with:
//
//	go test -run TestGoldenTaxonomyCaptures -update-taxonomy-golden
var updateTaxonomyGolden = flag.Bool("update-taxonomy-golden", false,
	"rewrite testdata/taxonomy_golden.txt from the current tree")

// taxonomyGoldenPath is the capture file the suite pins against.
const taxonomyGoldenPath = "testdata/taxonomy_golden.txt"

// captureTaxonomyGolden renders the pinned taxonomy matrix.
func captureTaxonomyGolden(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	for _, streaming := range []bool{false, true} {
		cfg := CampaignConfig{Seed: 7, Duration: 6 * sim.Hour,
			Scenario: ScenarioSIRAs, Streaming: streaming, Parallelism: 1}
		res, err := RunCampaign(cfg)
		if err != nil {
			t.Fatalf("campaign streaming=%v: %v", streaming, err)
		}
		fmt.Fprintf(&b, "=== taxonomy streaming=%v\n", streaming)
		WriteTaxonomyReport(&b, res)
	}

	roll := ScatternetConfig{
		CampaignConfig: CampaignConfig{Seed: 7, Duration: 6 * sim.Hour,
			Scenario: ScenarioSIRAs, Streaming: true, Parallelism: 1},
		Piconets: 3, Topology: TopologyRing, HoldTime: 10 * sim.Second,
		Rollup: true,
	}
	rollRes, err := RunScatternet(roll)
	if err != nil {
		t.Fatalf("scatternet rollup: %v", err)
	}
	fmt.Fprintf(&b, "=== scatternet rollup taxonomy ring P=3\n%s",
		rollRes.Rollup.RenderTaxonomy(roll.Duration))

	red := ScatternetConfig{
		CampaignConfig: CampaignConfig{Seed: 7, Duration: 6 * sim.Hour,
			Scenario: ScenarioSIRAs, Streaming: true, Parallelism: 1},
		Piconets: 2, Bridges: 1, Redundancy: 2, HoldTime: 10 * sim.Second,
	}
	redRes, err := RunScatternet(red)
	if err != nil {
		t.Fatalf("scatternet redundancy: %v", err)
	}
	fmt.Fprintf(&b, "=== partition candidates P=2 K=2\n%s",
		redRes.Redundancy.RenderPartitionCandidates(30))
	return b.String()
}

// TestGoldenTaxonomyCaptures pins every taxonomy-plane report byte-for-byte.
func TestGoldenTaxonomyCaptures(t *testing.T) {
	if testing.Short() {
		t.Skip("taxonomy capture matrix runs several six-hour campaigns; skipped in -short")
	}
	got := captureTaxonomyGolden(t)
	if *updateTaxonomyGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(taxonomyGoldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", taxonomyGoldenPath, len(got))
		return
	}
	want, err := os.ReadFile(taxonomyGoldenPath)
	if err != nil {
		t.Fatalf("missing capture file (run with -update-taxonomy-golden on a known-good tree): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("taxonomy capture diverges at line %d:\ngot:  %s\nwant: %s",
				i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("taxonomy capture length diverges: got %d lines, want %d",
		len(gotLines), len(wantLines))
}
