package btpan

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/collector"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Sweep checkpointing: every completed seed of a streaming sweep persists
// its folded aggregates and per-client counters as one JSON file, and a
// re-run of the same sweep configuration loads those files instead of
// recomputing the seeds — interrupted month-scale sweeps resume where they
// stopped. The files carry the campaign configuration as a guard so a stale
// directory cannot silently contaminate a different sweep, plus the
// collector's torn-write trailer (collector.WriteFileDurable) so a sweep
// process killed mid-write leaves a detectably-torn file — which load
// rejects in favor of the previous good copy — rather than a silently
// half-loaded seed.

// seedCheckpoint is one completed seed's persisted campaign.
type seedCheckpoint struct {
	Seed     uint64   `json:"seed"`
	Duration sim.Time `json:"duration"`
	Scenario int      `json:"scenario"`

	Agg       *analysis.AggregatesSnapshot                     `json:"agg"`
	Counters  map[string]map[string]*workload.CountersSnapshot `json:"counters"`
	Durations map[string]sim.Time                              `json:"durations"`
}

// seedCheckpointPath names a seed's checkpoint file.
func seedCheckpointPath(dir string, seed uint64) string {
	return filepath.Join(dir, fmt.Sprintf("seed-%d.json", seed))
}

// saveSeedCheckpoint persists one completed streaming campaign atomically.
func saveSeedCheckpoint(dir string, res *CampaignResult) error {
	if res.Agg == nil {
		return fmt.Errorf("btpan: cannot checkpoint a retained campaign")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cp := seedCheckpoint{
		Seed:     res.Config.Seed,
		Duration: res.Config.Duration,
		Scenario: int(res.Config.Scenario),
		Agg:      res.Agg.Snapshot(),
		Counters: map[string]map[string]*workload.CountersSnapshot{
			"random": {}, "realistic": {},
		},
		Durations: map[string]sim.Time{
			"random": res.Random.Duration, "realistic": res.Realistic.Duration,
		},
	}
	for node, c := range res.Random.Counters {
		cp.Counters["random"][node] = c.Snapshot()
	}
	for node, c := range res.Realistic.Counters {
		cp.Counters["realistic"][node] = c.Snapshot()
	}
	blob, err := json.Marshal(&cp)
	if err != nil {
		return err
	}
	return collector.WriteFileDurable(seedCheckpointPath(dir, res.Config.Seed), blob)
}

// loadSeedCheckpoint restores one seed's campaign if its checkpoint file
// exists. A missing file returns (nil, nil) — run the seed; a file from a
// different configuration is an error, never a silent substitute.
func loadSeedCheckpoint(dir string, cfg CampaignConfig) (*CampaignResult, error) {
	path := seedCheckpointPath(dir, cfg.Seed)
	blob, err := collector.ReadFileDurable(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var cp seedCheckpoint
	if err := json.Unmarshal(blob, &cp); err != nil {
		return nil, fmt.Errorf("btpan: corrupt sweep checkpoint %s: %w", path, err)
	}
	if cp.Seed != cfg.Seed || cp.Duration != cfg.Duration || cp.Scenario != int(cfg.Scenario) {
		return nil, fmt.Errorf("btpan: sweep checkpoint %s is from a different campaign "+
			"(seed %d, %v, scenario %d; want seed %d, %v, scenario %d)",
			path, cp.Seed, cp.Duration, cp.Scenario, cfg.Seed, cfg.Duration, int(cfg.Scenario))
	}
	agg, err := analysis.RestoreAggregates(cp.Agg)
	if err != nil {
		return nil, fmt.Errorf("btpan: sweep checkpoint %s: %w", path, err)
	}
	counters := make(map[string]map[string]*workload.Counters, len(cp.Counters))
	for tb, m := range cp.Counters {
		counters[tb] = make(map[string]*workload.Counters, len(m))
		for node, snap := range m {
			c, err := workload.RestoreCounters(snap)
			if err != nil {
				return nil, fmt.Errorf("btpan: sweep checkpoint %s: %w", path, err)
			}
			counters[tb][node] = c
		}
	}
	return ResultFromAggregates(cfg, agg, counters, cp.Durations)
}
