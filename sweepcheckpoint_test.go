package btpan

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// sweepCfg is the sweep-checkpoint suite's configuration: short campaigns,
// two seeds, one worker (single-core determinism is not required — results
// are per-seed — but keep the test light).
func sweepCfg(dir string) SweepConfig {
	d := 6 * sim.Hour
	if testing.Short() {
		d = 2 * sim.Hour
	}
	return SweepConfig{BaseSeed: 11, Seeds: 2, Duration: d,
		Scenario: ScenarioSIRAs, Workers: 1, CheckpointDir: dir}
}

// compareSweeps asserts the CI tables of two sweeps are bit-identical.
func compareSweeps(t *testing.T, label string, a, b *SweepResult) {
	t.Helper()
	if !reflect.DeepEqual(a.Table2CI(), b.Table2CI()) {
		t.Errorf("%s: Table 2 CI diverges", label)
	}
	if !reflect.DeepEqual(a.Table3CI(), b.Table3CI()) {
		t.Errorf("%s: Table 3 CI diverges", label)
	}
	if !reflect.DeepEqual(a.DependabilityCI(), b.DependabilityCI()) {
		t.Errorf("%s: dependability CI diverges", label)
	}
	if !reflect.DeepEqual(a.ScalarsCI(), b.ScalarsCI()) {
		t.Errorf("%s: scalars CI diverges", label)
	}
}

// TestSweepCheckpointResume: a sweep writes per-seed checkpoints; a re-run
// (fresh process state, same directory) restores every seed and reproduces
// the CI tables digit for digit; deleting one file re-runs only that seed
// to the same digits.
func TestSweepCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	cfg := sweepCfg(dir)
	first, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Seeds; i++ {
		path := filepath.Join(dir, "seed-"+itoa(cfg.BaseSeed+uint64(i))+".json")
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("missing sweep checkpoint %s: %v", path, err)
		}
	}

	restored, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	compareSweeps(t, "restored sweep", first, restored)

	// Partial resume: drop one seed's file; only that seed is recomputed.
	if err := os.Remove(filepath.Join(dir, "seed-"+itoa(cfg.BaseSeed)+".json")); err != nil {
		t.Fatal(err)
	}
	partial, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	compareSweeps(t, "partial resume", first, partial)
}

// TestSweepCheckpointGuards: foreign checkpoints and invalid configurations
// fail loudly instead of contaminating a sweep.
func TestSweepCheckpointGuards(t *testing.T) {
	dir := t.TempDir()
	cfg := sweepCfg(dir)
	if _, err := Sweep(cfg); err != nil {
		t.Fatal(err)
	}

	// Same directory, different duration: the guard must refuse.
	other := cfg
	other.Duration = cfg.Duration + sim.Hour
	if _, err := Sweep(other); err == nil {
		t.Error("sweep accepted checkpoints from a different duration")
	}

	// Corrupt file: loud error.
	path := filepath.Join(dir, "seed-"+itoa(cfg.BaseSeed)+".json")
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Sweep(cfg); err == nil {
		t.Error("sweep accepted a corrupt checkpoint")
	}

	// Checkpointing without the streaming plane is a config error.
	bad := cfg
	bad.Retained = true
	if err := bad.Validate(); err == nil {
		t.Error("retained sweep with checkpoint dir validated")
	}
	scat := cfg
	scat.Piconets = 2
	if err := scat.Validate(); err == nil {
		t.Error("scatternet sweep with checkpoint dir validated")
	}
}

// itoa renders a uint64 without strconv noise at call sites.
func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
