package btpan

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// The chaos suite: repeatedly SIGKILL every process of the distributed
// plane — both agents (in-process Abort, abandoning everything but the
// spill log) and the sink (Abort, abandoning everything but the
// checkpoint) — on a deterministic schedule, under fault injection, and
// demand the finished campaign stay byte-identical to the single-process
// streaming run. This is ARCHITECTURE.md invariant 9 extended to agent
// crashes; scripts/chaos_distributed.sh is the real-process version.

// errChaosKill is the sentinel a killSwitch throws through the testbed's
// drain panic to emulate kill -9 at an exact ingest count.
var errChaosKill = errors.New("chaos: scheduled agent kill")

// killSwitch wraps an agent's Ingestor surface and fails the fuse-th
// drain, so each incarnation of a shard dies at a deterministic point
// mid-campaign.
type killSwitch struct {
	agent *collector.Agent
	fuse  int
}

// Ingest forwards drains to the agent until the fuse runs out.
func (k *killSwitch) Ingest(testbed, node string, reports []core.UserReport,
	entries []core.SystemEntry, watermark sim.Time) error {
	k.fuse--
	if k.fuse < 0 {
		return errChaosKill
	}
	return k.agent.Ingest(testbed, node, reports, entries, watermark)
}

// runChaosShard runs one shard through len(kills) kill-and-restart
// incarnations plus a final run to completion. Every incarnation rebuilds
// the testbed from scratch — the deterministic re-run a restarted btagent
// performs — and shares one spill directory, so each restart replays the
// previous life's unacknowledged tail and skips what the WAL already
// covers. kills[i] is the ingest count at which incarnation i dies.
func runChaosShard(opts testbed.Options, campaign collector.CampaignID, addr string,
	duration, flush sim.Time, fault collector.FaultConfig, spillDir string,
	kills []int, errs chan<- shardErr) {
	attempt := func(fuse int) error {
		tb, err := testbed.New(opts)
		if err != nil {
			return err
		}
		nodes := make([]string, 0, len(tb.PANUs)+1)
		for _, h := range tb.PANUs {
			nodes = append(nodes, h.Node)
		}
		nodes = append(nodes, tb.NAP.Node)
		agent, err := collector.NewAgent(collector.AgentConfig{
			Addr: addr, Campaign: campaign, Testbed: opts.Name, Nodes: nodes,
			Fault: fault, SpillDir: spillDir,
			RetryMin: 10 * time.Millisecond, RetryMax: 200 * time.Millisecond,
			RetrySeed:    uint64(fuse) + 1,
			StallTimeout: 150 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		killed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if e, ok := r.(error); ok && errors.Is(e, errChaosKill) {
						killed = true
						return
					}
					panic(r)
				}
			}()
			var sink testbed.Ingestor = agent
			if fuse > 0 {
				sink = &killSwitch{agent: agent, fuse: fuse}
			}
			tb.StreamTo(sink, flush)
			tb.Run(duration)
			tb.FinishStream(sink)
		}()
		if killed {
			agent.Abort() // kill -9 double: only the spill log survives
			return errChaosKill
		}
		res := tb.Results()
		counters := make(map[string]*workload.CountersSnapshot, len(res.Counters))
		for node, c := range res.Counters {
			counters[node] = c.Snapshot()
		}
		err = agent.Finish(counters, duration, 120*time.Second)
		agent.Close()
		return err
	}
	for _, fuse := range kills {
		if err := attempt(fuse); !errors.Is(err, errChaosKill) {
			errs <- shardErr{opts.Name, fmt.Errorf("incarnation with fuse %d did not die on schedule: %v",
				fuse, err)}
			return
		}
	}
	errs <- shardErr{opts.Name, attempt(0)}
}

// TestChaosAgentSinkKillStorm kills both agents three times each (at
// staggered deterministic ingest counts, under drop/duplicate/reorder
// injection) and the sink twice, all mid-campaign, then lets the survivors
// finish. The assembled report must match the uninterrupted single-process
// streaming campaign digit for digit: the WAL, the sink checkpoint, the
// resume handshake and the duplicate filter together make a kill storm
// invisible in the data.
func TestChaosAgentSinkKillStorm(t *testing.T) {
	cfg := distributedConfig()
	want, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}

	cpPath := filepath.Join(t.TempDir(), "sink.ckpt")
	spill := t.TempDir()
	mkSink := func(addr string) *collector.Sink {
		s, err := collector.NewSink(collector.SinkConfig{
			Addr: addr, Campaign: campaignID(cfg), Spec: testbed.CampaignStreamSpec(),
			CheckpointPath: cpPath, CheckpointEvery: 4})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	sink := mkSink("127.0.0.1:0")
	addr := sink.Addr()

	randomOpts, realisticOpts := testbed.CampaignOptions(cfg.Seed, cfg.Scenario, cfg.Duration)
	fault := collector.FaultConfig{Seed: 23, Drop: 0.1, Duplicate: 0.1, Reorder: 0.15}
	faultB := fault
	faultB.Seed++
	errs := make(chan shardErr, 2)
	// Each shard dies after 5, then 17, then 29 ingests; the counts rise so
	// every incarnation makes progress past its predecessor, and the
	// stagger between shards keeps the kills unsynchronized.
	go runChaosShard(randomOpts, campaignID(cfg), addr, cfg.Duration, sim.Hour,
		fault, spill, []int{5, 17, 29}, errs)
	go runChaosShard(realisticOpts, campaignID(cfg), addr, cfg.Duration, sim.Hour,
		faultB, spill, []int{9, 21, 33}, errs)

	// Meanwhile, kill the sink twice under the storm, restarting it from
	// its checkpoint on the same port each time.
	for round := 0; round < 2; round++ {
		deadline := time.Now().Add(60 * time.Second)
		for {
			if applied, _, _ := sink.Stats(); applied >= 8 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("sink round %d never applied enough to be worth killing", round)
			}
			time.Sleep(5 * time.Millisecond)
		}
		if err := sink.Abort(); err != nil {
			t.Fatal(err)
		}
		sink = mkSink(addr)
	}
	defer sink.Close()

	for i := 0; i < 2; i++ {
		if e := <-errs; e.err != nil {
			t.Fatalf("shard %s: %v", e.name, e.err)
		}
	}
	got := assembleDistributed(t, cfg, sink, 120*time.Second)
	compareOutputs(t, "chaos kill storm", want, got)
	if got.Agg.SeqGaps != 0 || got.Agg.DroppedRecords != 0 {
		t.Errorf("the kill storm leaked into the aggregates: %d gaps, %d dropped",
			got.Agg.SeqGaps, got.Agg.DroppedRecords)
	}
}
