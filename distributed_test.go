package btpan

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// The distributed-plane acceptance suite: N btagent-style shard processes
// (as goroutines around real testbeds) + one sink over loopback TCP must
// reproduce the single-process streaming campaign digit for digit — on a
// clean network, under seeded loss/duplication/reordering, and across a
// sink kill + checkpoint restore. These are the in-process versions of the
// multi-process smoke in scripts/smoke_distributed.sh.

// shardErr carries one shard's terminal error.
type shardErr struct {
	name string
	err  error
}

// campaignID derives the handshake identity from a campaign config.
func campaignID(cfg CampaignConfig) collector.CampaignID {
	return collector.CampaignID{Seed: cfg.Seed, Duration: cfg.Duration,
		Scenario: int(cfg.Scenario)}
}

// runShard runs one testbed shard against the sink at addr, exactly as
// cmd/btagent does: build the testbed from the campaign options, stream its
// drains through a collector.Agent, then Finish with the counters.
func runShard(opts testbed.Options, campaign collector.CampaignID, addr string,
	duration, flush sim.Time, fault collector.FaultConfig, errs chan<- shardErr) {
	tb, err := testbed.New(opts)
	if err != nil {
		errs <- shardErr{opts.Name, err}
		return
	}
	nodes := make([]string, 0, len(tb.PANUs)+1)
	for _, h := range tb.PANUs {
		nodes = append(nodes, h.Node)
	}
	nodes = append(nodes, tb.NAP.Node)
	agent, err := collector.NewAgent(collector.AgentConfig{
		Addr: addr, Campaign: campaign, Testbed: opts.Name, Nodes: nodes, Fault: fault,
		RetryEvery: 20 * time.Millisecond, StallTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		errs <- shardErr{opts.Name, err}
		return
	}
	defer agent.Close()
	tb.StreamTo(agent, flush)
	tb.Run(duration)
	tb.FinishStream(agent)
	res := tb.Results()
	counters := make(map[string]*workload.CountersSnapshot, len(res.Counters))
	for node, c := range res.Counters {
		counters[node] = c.Snapshot()
	}
	errs <- shardErr{opts.Name, agent.Finish(counters, duration, 120*time.Second)}
}

// distributedConfig is the suite's campaign config (mirrors runEquiv).
func distributedConfig() CampaignConfig {
	return CampaignConfig{Seed: 7, Duration: equivDuration(),
		Scenario: ScenarioSIRAsMasking, Streaming: true}
}

// assembleDistributed turns a completed sink report into a CampaignResult.
func assembleDistributed(t *testing.T, cfg CampaignConfig, sink *collector.Sink,
	timeout time.Duration) *CampaignResult {
	t.Helper()
	rep, err := sink.Wait(timeout)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ResultFromAggregates(cfg, rep.Agg, rep.Counters, rep.Durations)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runDistributed runs the full N-agent + sink campaign over loopback.
func runDistributed(t *testing.T, cfg CampaignConfig, fault collector.FaultConfig) *CampaignResult {
	t.Helper()
	sink, err := collector.NewSink(collector.SinkConfig{
		Addr: "127.0.0.1:0", Campaign: campaignID(cfg), Spec: testbed.CampaignStreamSpec()})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	randomOpts, realisticOpts := testbed.CampaignOptions(cfg.Seed, cfg.Scenario, cfg.Duration)
	errs := make(chan shardErr, 2)
	faultB := fault
	if faultB.Active() {
		faultB.Seed = fault.Seed + 1 // distinct decision sequences per shard
	}
	go runShard(randomOpts, campaignID(cfg), sink.Addr(), cfg.Duration, sim.Hour, fault, errs)
	go runShard(realisticOpts, campaignID(cfg), sink.Addr(), cfg.Duration, sim.Hour, faultB, errs)
	for i := 0; i < 2; i++ {
		if e := <-errs; e.err != nil {
			t.Fatalf("shard %s: %v", e.name, e.err)
		}
	}
	return assembleDistributed(t, cfg, sink, 120*time.Second)
}

// TestCampaignStreamSpecMatchesCampaign pins that the sink-side spec helper
// (no hosts built) is exactly the campaign's own spec.
func TestCampaignStreamSpecMatchesCampaign(t *testing.T) {
	c, err := testbed.NewCampaign(3, ScenarioSIRAs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := testbed.CampaignStreamSpec(), c.StreamSpec(); !reflect.DeepEqual(got, want) {
		t.Fatalf("CampaignStreamSpec diverges from Campaign.StreamSpec:\n%+v\nvs\n%+v", got, want)
	}
}

// TestDistributedMatchesStreaming: 2 agents + 1 sink over loopback, clean
// network, equals the single-process streaming campaign digit for digit.
func TestDistributedMatchesStreaming(t *testing.T) {
	cfg := distributedConfig()
	want, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := runDistributed(t, cfg, collector.FaultConfig{})
	compareOutputs(t, "distributed", want, got)
}

// TestDistributedUnderFaults: same claim with seeded drop/duplicate/reorder
// injection on the data path — retransmission and duplicate filtering must
// hide the lossy network completely.
func TestDistributedUnderFaults(t *testing.T) {
	cfg := distributedConfig()
	want, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fault := collector.FaultConfig{Seed: 17, Drop: 0.1, Duplicate: 0.1, Reorder: 0.15}
	got := runDistributed(t, cfg, fault)
	compareOutputs(t, "distributed+faults", want, got)
	if got.Agg.SeqGaps != 0 || got.Agg.DroppedRecords != 0 {
		t.Errorf("injected loss leaked into the aggregates: %d gaps, %d dropped",
			got.Agg.SeqGaps, got.Agg.DroppedRecords)
	}
}

// TestDistributedResume kills the sink mid-campaign (no graceful
// checkpoint) and restarts it from its checkpoint file on the same port;
// the resumed campaign must still match the single-process digits. The
// second shard only starts after the restart, so the kill is guaranteed to
// land mid-campaign.
func TestDistributedResume(t *testing.T) {
	cfg := distributedConfig()
	want, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}

	cpPath := filepath.Join(t.TempDir(), "sink.ckpt")
	sink, err := collector.NewSink(collector.SinkConfig{
		Addr: "127.0.0.1:0", Campaign: campaignID(cfg), Spec: testbed.CampaignStreamSpec(),
		CheckpointPath: cpPath, CheckpointEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	addr := sink.Addr()
	randomOpts, realisticOpts := testbed.CampaignOptions(cfg.Seed, cfg.Scenario, cfg.Duration)
	errs := make(chan shardErr, 2)
	go runShard(randomOpts, campaignID(cfg), addr, cfg.Duration, sim.Hour, collector.FaultConfig{}, errs)

	// Kill the sink once it has demonstrably checkpointed mid-stream.
	deadline := time.Now().Add(60 * time.Second)
	for {
		applied, _, _ := sink.Stats()
		if _, statErr := os.Stat(cpPath); statErr == nil && applied >= 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sink never checkpointed (%d applied)", applied)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := sink.Abort(); err != nil {
		t.Fatal(err)
	}

	sink2, err := collector.NewSink(collector.SinkConfig{
		Addr: addr, Campaign: campaignID(cfg), Spec: testbed.CampaignStreamSpec(),
		CheckpointPath: cpPath, CheckpointEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer sink2.Close()
	go runShard(realisticOpts, campaignID(cfg), addr, cfg.Duration, sim.Hour, collector.FaultConfig{}, errs)
	for i := 0; i < 2; i++ {
		if e := <-errs; e.err != nil {
			t.Fatalf("shard %s: %v", e.name, e.err)
		}
	}
	got := assembleDistributed(t, cfg, sink2, 120*time.Second)
	compareOutputs(t, "distributed+kill/resume", want, got)
}
