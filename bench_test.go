package btpan

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (ARCHITECTURE.md maps each to the code that produces it).
// Campaigns run once
// per process as shared setup; each benchmark times the regeneration of its
// artefact from the collected data and logs the measured rows next to the
// paper's values. Run with:
//
//	go test -bench=. -benchmem
import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// benchDuration keeps the whole bench suite in the tens of seconds while
// still collecting thousands of failure-data items.
const benchDuration = 3 * Day

var (
	campaignOnce sync.Once
	campaignRes  *CampaignResult
	campaignErr  error
)

// benchCampaign runs the shared SIRAs-scenario campaign once.
func benchCampaign(b *testing.B) *CampaignResult {
	b.Helper()
	campaignOnce.Do(func() {
		campaignRes, campaignErr = RunCampaign(CampaignConfig{
			Seed: 1, Duration: benchDuration, Scenario: ScenarioSIRAs,
		})
	})
	if campaignErr != nil {
		b.Fatal(campaignErr)
	}
	return campaignRes
}

var (
	table4Once sync.Once
	table4Res  *analysis.Table4
	table4Err  error
)

// benchTable4 runs the four scenario campaigns once.
func benchTable4(b *testing.B) *analysis.Table4 {
	b.Helper()
	table4Once.Do(func() {
		table4Res, table4Err = Table4(1, benchDuration)
	})
	if table4Err != nil {
		b.Fatal(table4Err)
	}
	return table4Res
}

var (
	fixedOnce sync.Once
	fixedRes  *testbed.Results
	fixedErr  error
)

// benchFixed runs the Figure 3b fixed-workload experiment once.
func benchFixed(b *testing.B) *testbed.Results {
	b.Helper()
	fixedOnce.Do(func() {
		fixedRes, fixedErr = RunFixedExperiment(FixedExperimentConfig{
			Seed: 1, Duration: 8 * Day,
		})
	})
	if fixedErr != nil {
		b.Fatal(fixedErr)
	}
	return fixedRes
}

// BenchmarkFig2Coalescence regenerates the coalescence-window sensitivity
// curve and its knee (paper: the knee picks W = 330 s).
func BenchmarkFig2Coalescence(b *testing.B) {
	res := benchCampaign(b)
	b.ResetTimer()
	var knee float64
	for i := 0; i < b.N; i++ {
		_, knee = res.SensitivityCurve()
	}
	b.ReportMetric(knee, "knee-s")
	b.Logf("Fig 2: sensitivity knee at %.0f s (paper: 330 s)", knee)
}

// BenchmarkTable2ErrorFailure regenerates the error-failure relationship
// table (paper anchors: HCI 49.9 %, PAN connect <- SDP 96.5 %, switch-role
// request <- HCI 91.1 %).
func BenchmarkTable2ErrorFailure(b *testing.B) {
	res := benchCampaign(b)
	b.ResetTimer()
	var t2 *analysis.Table2
	for i := 0; i < b.N; i++ {
		t2 = res.Table2()
	}
	b.Logf("Table 2: HCI total %.1f%% (paper 49.9), PAN<-SDP %.1f%% (96.5), SwReq<-HCI %.1f%% (91.1)",
		t2.SourceShare(core.SrcHCI),
		t2.RowShare(core.UFPANConnectFailed, core.SrcSDP),
		t2.RowShare(core.UFSwitchRoleRequestFailed, core.SrcHCI))
}

// BenchmarkTable3SIRA regenerates the SIRA effectiveness table (paper
// anchors: NAP-not-found -> stack reset 61.4 %, packet loss -> socket reset
// 5.9 %, connect failed expensive 84.6 %).
func BenchmarkTable3SIRA(b *testing.B) {
	res := benchCampaign(b)
	b.ResetTimer()
	var t3 *analysis.Table3
	for i := 0; i < b.N; i++ {
		t3 = res.Table3()
	}
	b.Logf("Table 3: NAPnf->stack %.1f%% (paper 61.4), loss->socket %.1f%% (5.9), connect expensive %.1f%% (84.6)",
		t3.Share(core.UFNAPNotFound, core.RABTStackReset),
		t3.Share(core.UFPacketLoss, core.RAIPSocketReset),
		t3.ExpensiveShare(core.UFConnectFailed))
}

// BenchmarkTable4Dependability regenerates the dependability-improvement
// comparison (paper: availability 0.688/0.907/0.923/0.94; MTTF 630.56 ->
// 1905.05 s; MTTR 285.92 -> 70.94/120.84 s).
func BenchmarkTable4Dependability(b *testing.B) {
	t4 := benchTable4(b)
	b.ResetTimer()
	var a, g, m float64
	for i := 0; i < b.N; i++ {
		a, g, m = t4.Improvement()
	}
	b.Logf("Table 4: avail +%.1f%% vs reboot (paper 36.6), +%.2f%% vs app+reboot (3.64), MTTF %+.0f%% (202)", a, g, m)
	for _, c := range t4.Columns {
		b.Logf("  %-24s MTTF %8.2fs  MTTR %7.2fs  avail %.3f  cover %5.1f%%  mask %5.1f%%",
			c.Scenario, c.MTTF, c.MTTR, c.Availability, c.CoveragePct, c.MaskingPct)
	}
}

// BenchmarkFig3aPacketType regenerates the packet-loss-by-packet-type
// distribution (paper: DM1 worst, DH5 best; prefer multi-slot and DHx).
func BenchmarkFig3aPacketType(b *testing.B) {
	res := benchCampaign(b)
	b.ResetTimer()
	var bars []analysis.Bar
	for i := 0; i < b.N; i++ {
		bars = res.Fig3a()
	}
	b.Logf("Fig 3a (per-byte loss shares): %s", barString(bars))
}

// BenchmarkFig3bConnectionAge regenerates the connection-age loss histogram
// (paper: young connections fail more).
func BenchmarkFig3bConnectionAge(b *testing.B) {
	res := benchFixed(b)
	b.ResetTimer()
	var bars []analysis.Bar
	for i := 0; i < b.N; i++ {
		bars = Fig3b(res, 1000, 10)
	}
	b.Logf("Fig 3b (loss share by packets before loss): %s", barString(bars))
}

// BenchmarkFig3cApplications regenerates the loss-by-application
// distribution (paper: P2P > streaming > Web/Mail/FTP).
func BenchmarkFig3cApplications(b *testing.B) {
	res := benchCampaign(b)
	b.ResetTimer()
	var bars []analysis.Bar
	for i := 0; i < b.N; i++ {
		bars = res.Fig3c()
	}
	b.Logf("Fig 3c (loss share by app): %s", barString(bars))
}

// BenchmarkFig4PerHost regenerates the per-host failure distribution
// (paper: bind only on Azzurro/Win, switch-role-command on the PDAs).
func BenchmarkFig4PerHost(b *testing.B) {
	res := benchCampaign(b)
	b.ResetTimer()
	var rows []analysis.Fig4Row
	for i := 0; i < b.N; i++ {
		rows = res.Fig4()
	}
	for _, r := range rows {
		b.Logf("Fig 4: %-8s bind %4.1f%%  swRoleCmd %4.1f%%  (of %d failures)",
			r.Node, r.Shares[core.UFBindFailed], r.Shares[core.UFSwitchRoleCommandFailed], r.Total)
	}
}

// BenchmarkSection6Scalars regenerates the §6 scalar findings (paper: 84 %
// random-workload share; idle 27.3 s vs 26.9 s; distance split
// 33.33/37.14/29.63 %).
func BenchmarkSection6Scalars(b *testing.B) {
	res := benchCampaign(b)
	b.ResetTimer()
	var s *analysis.Scalars
	for i := 0; i < b.N; i++ {
		s = res.Scalars()
	}
	b.Logf("§6: random share %.1f%% (paper 84), idle failed/clean %.1f/%.1f s (27.3/26.9), distance %.1f/%.1f/%.1f%% (33.3/37.1/29.6)",
		s.RandomSharePct, s.IdleBeforeFailedMean, s.IdleBeforeCleanMean,
		s.DistanceShares[0.5], s.DistanceShares[5], s.DistanceShares[7])
}

// benchCampaignDays times end-to-end campaigns of the given length on
// either aggregation plane. live-MB is the heap growth still held after the
// run while the last result is alive — the memory the aggregation plane
// actually retains (O(days) for retained records, O(1) for streaming).
func benchCampaignDays(b *testing.B, days int, streaming bool) {
	b.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var keep *CampaignResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunCampaign(CampaignConfig{
			Seed: uint64(i + 1), Duration: sim.Time(days) * Day,
			Scenario: ScenarioSIRAs, Streaming: streaming,
		})
		if err != nil {
			b.Fatal(err)
		}
		keep = res
	}
	b.StopTimer()
	runtime.GC()
	runtime.ReadMemStats(&after)
	b.ReportMetric((float64(after.HeapAlloc)-float64(before.HeapAlloc))/1e6, "live-MB")
	_, _, tot := keep.DataItems()
	b.ReportMetric(float64(tot), "items")
}

// BenchmarkCampaignDay measures end-to-end simulation throughput: one
// virtual day of both testbeds per iteration (retained records — the PR 1
// trajectory metric).
func BenchmarkCampaignDay(b *testing.B) { benchCampaignDays(b, 1, false) }

// BenchmarkCampaignDayTaxonomy / BenchmarkCampaignDayNoTaxonomy isolate the
// taxonomy plane's streaming cost: the identical one-day streaming campaign
// with the taxonomy/survival accumulators running (the default) and forced
// off through the benchmark kill switch. scripts/bench.sh emits the pair's
// overhead ratio into BENCH_campaign.json; the budget is < 5 %.
func BenchmarkCampaignDayTaxonomy(b *testing.B) { benchCampaignDays(b, 1, true) }

func BenchmarkCampaignDayNoTaxonomy(b *testing.B) {
	analysis.SetTaxonomyDisabled(true)
	defer analysis.SetTaxonomyDisabled(false)
	benchCampaignDays(b, 1, true)
}

// BenchmarkCampaignMonth measures a month-scale campaign: 30 virtual days
// per iteration with records folded into streaming aggregates in flight.
// Compare live-MB against BenchmarkCampaignMonthRetained: the streaming
// plane's retained heap does not grow with campaign length.
func BenchmarkCampaignMonth(b *testing.B) { benchCampaignDays(b, 30, true) }

// BenchmarkCampaignMonthRetained is the 30-day control on the retained
// plane (every record kept in RAM).
func BenchmarkCampaignMonthRetained(b *testing.B) { benchCampaignDays(b, 30, false) }

// BenchmarkScatternetDay measures one virtual day of a 4-piconet, 3-bridge
// scatternet on the streaming plane: four full piconet campaigns (eight
// testbeds) plus the bridge overlay. live-MB stays O(piconets) — the
// per-piconet aggregates plus the O(1) bridge accumulators.
func BenchmarkScatternetDay(b *testing.B) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var keep *ScatternetResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunScatternet(ScatternetConfig{
			CampaignConfig: CampaignConfig{
				Seed: uint64(i + 1), Duration: 1 * Day,
				Scenario: ScenarioSIRAs, Streaming: true,
			},
			Piconets: 4, Bridges: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		keep = res
	}
	b.StopTimer()
	runtime.GC()
	runtime.ReadMemStats(&after)
	b.ReportMetric((float64(after.HeapAlloc)-float64(before.HeapAlloc))/1e6, "live-MB")
	items := 0
	for _, pic := range keep.Piconets {
		_, _, tot := pic.DataItems()
		items += tot
	}
	b.ReportMetric(float64(items), "items")
	b.ReportMetric(float64(keep.Bridges.CorrelatedOutages()), "corr-outages")
}

// benchScatternetScale times one virtual day of a piconets-sized ring on
// the sharded engine: streaming plane, hierarchical roll-up, relay probes
// sampled to ~4 pairs per source piconet (min(1, 4/(piconets-1))), shard
// count from GOMAXPROCS. live-MB is the heap still held after the run — it
// must stay flat in the piconet count, because the roll-up folds and drops
// every finished piconet instead of retaining it. Under -short the piconet
// count downscales by 4 so the race job finishes quickly; the recorded
// BENCH_campaign.json numbers come from full-size runs.
func benchScatternetScale(b *testing.B, piconets int) {
	b.Helper()
	if testing.Short() {
		piconets /= 4
	}
	fraction := 4.0 / float64(piconets-1)
	if fraction > 1 {
		fraction = 1
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var keep *ScatternetResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunScatternet(ScatternetConfig{
			CampaignConfig: CampaignConfig{
				Seed: uint64(i + 1), Duration: 1 * Day,
				Scenario: ScenarioSIRAs, Streaming: true,
			},
			Piconets: piconets, Topology: TopologyRing,
			ProbeSample: fraction, Rollup: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		keep = res
	}
	b.StopTimer()
	runtime.GC()
	runtime.ReadMemStats(&after)
	b.ReportMetric((float64(after.HeapAlloc)-float64(before.HeapAlloc))/1e6, "live-MB")
	_, _, items := keep.Rollup.Agg.DataItems()
	b.ReportMetric(float64(items), "items")
	b.ReportMetric(float64(keep.Rollup.RelayDepth.Probes()), "probes")
}

// BenchmarkScatternetDay64 is the district scale: 64 piconets, one virtual
// day, hierarchical roll-up.
func BenchmarkScatternetDay64(b *testing.B) { benchScatternetScale(b, 64) }

// BenchmarkScatternetDay256 is the borough scale: 256 piconets.
func BenchmarkScatternetDay256(b *testing.B) { benchScatternetScale(b, 256) }

// BenchmarkScatternetDay1024 is the city scale the sharded engine was built
// for: 10³ piconets (~10⁴ simulated devices), one virtual day, probes
// sampled to ~4 pairs per source instead of the 1,047,552 exhaustive pairs.
func BenchmarkScatternetDay1024(b *testing.B) { benchScatternetScale(b, 1024) }

// barString renders bars compactly for bench logs.
func barString(bars []analysis.Bar) string {
	out := ""
	for i, bar := range bars {
		if i > 0 {
			out += "  "
		}
		out += fmt.Sprintf("%s=%.1f%%", bar.Label, bar.Share)
	}
	return out
}
