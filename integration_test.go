package btpan

// End-to-end integration: campaign -> JSONL persistence -> read-back ->
// identical analysis results (the cmd/btcampaign + cmd/btanalyze path), and
// campaign -> TCP collection -> repository -> analysis (the paper's
// distributed pipeline).
import (
	"bytes"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/coalesce"
	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/logging"
)

// TestPersistenceRoundTripPreservesAnalysis writes a campaign's records to
// the JSONL wire format, reads them back, and checks the error-failure
// evidence is bit-identical.
func TestPersistenceRoundTripPreservesAnalysis(t *testing.T) {
	res := testCampaign(t)

	var userBuf, sysBuf bytes.Buffer
	allReports := res.AllReports()
	var allEntries []core.SystemEntry
	allEntries = append(allEntries, res.Random.Entries...)
	allEntries = append(allEntries, res.Realistic.Entries...)
	if err := logging.WriteUserReports(&userBuf, allReports); err != nil {
		t.Fatal(err)
	}
	if err := logging.WriteSystemEntries(&sysBuf, allEntries); err != nil {
		t.Fatal(err)
	}

	gotReports, err := logging.ReadUserReports(&userBuf)
	if err != nil {
		t.Fatal(err)
	}
	gotEntries, err := logging.ReadSystemEntries(&sysBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotReports) != len(allReports) || len(gotEntries) != len(allEntries) {
		t.Fatalf("round trip lost records: %d/%d reports, %d/%d entries",
			len(gotReports), len(allReports), len(gotEntries), len(allEntries))
	}
	for i := range allReports {
		if gotReports[i] != allReports[i] {
			t.Fatalf("report %d mutated in round trip", i)
		}
	}

	// Rebuild the evidence from the read-back data, split per testbed/node
	// as btanalyze does, and compare with the live pipeline.
	rebuild := func(reports []core.UserReport, entries []core.SystemEntry) *coalesce.Evidence {
		perR := map[string]map[string][]core.UserReport{}
		for _, r := range reports {
			if perR[r.Testbed] == nil {
				perR[r.Testbed] = map[string][]core.UserReport{}
			}
			perR[r.Testbed][r.Node] = append(perR[r.Testbed][r.Node], r)
		}
		perE := map[string]map[string][]core.SystemEntry{}
		for _, e := range entries {
			if perE[e.Testbed] == nil {
				perE[e.Testbed] = map[string][]core.SystemEntry{}
			}
			perE[e.Testbed][e.Node] = append(perE[e.Testbed][e.Node], e)
		}
		ev := coalesce.NewEvidence()
		for tb := range perR {
			analysis.BuildEvidence(ev, perR[tb], perE[tb], "Giallo", coalesce.PaperWindow)
		}
		return ev
	}
	live := res.Evidence(coalesce.PaperWindow)
	fromDisk := rebuild(gotReports, gotEntries)

	if live.TotalFailures != fromDisk.TotalFailures {
		t.Fatalf("failures diverged: live %d vs disk %d", live.TotalFailures, fromDisk.TotalFailures)
	}
	if len(live.Counts) != len(fromDisk.Counts) {
		t.Fatalf("evidence cells diverged: %d vs %d", len(live.Counts), len(fromDisk.Counts))
	}
	for k, v := range live.Counts {
		if fromDisk.Counts[k] != v {
			t.Fatalf("cell %+v diverged: %d vs %d", k, v, fromDisk.Counts[k])
		}
	}
}

// TestTCPCollectionPipeline ships a campaign through per-node LogAnalyzers
// to a repository over loopback TCP and checks nothing significant is lost.
func TestTCPCollectionPipeline(t *testing.T) {
	res := testCampaign(t)
	repo, err := collector.NewRepository("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()

	analyzers := 0
	wantReports := 0
	ship := func(name string, perNodeReports map[string][]core.UserReport,
		perNodeEntries map[string][]core.SystemEntry) {
		for node := range perNodeEntries {
			test := logging.NewTestLog(node)
			for _, r := range perNodeReports[node] {
				test.Append(r)
				wantReports++
			}
			sys := logging.NewSystemLog(node)
			for _, e := range perNodeEntries[node] {
				sys.Append(e)
			}
			a := collector.NewLogAnalyzer(node, name, test, sys, repo.Addr(),
				collector.Filter{}) // no dedup: exact counts
			if err := a.FlushOnce(); err != nil {
				t.Fatal(err)
			}
			analyzers++
		}
	}
	ship("random", res.Random.PerNodeReports, res.Random.PerNodeEntries)
	ship("realistic", res.Realistic.PerNodeReports, res.Realistic.PerNodeEntries)

	deadline := time.Now().Add(5 * time.Second)
	for {
		gotReports, _, batches := repo.Stats()
		if batches >= analyzers && gotReports == wantReports {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("repository drained %d reports / %d batches, want %d/%d",
				gotReports, batches, wantReports, analyzers)
		}
		time.Sleep(10 * time.Millisecond)
	}

	_, sysEntries, _ := res.DataItems()
	_, gotEntries, _ := repo.Stats()
	if gotEntries != sysEntries {
		t.Errorf("system entries: shipped %d, repository has %d", sysEntries, gotEntries)
	}
}

// TestTable4ColumnsOrdered checks the Table 4 assembly keeps the paper's
// column order (reboot-only first, masking last).
func TestTable4ColumnsOrdered(t *testing.T) {
	t4, err := Table4(3, 18*Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Columns) != 4 {
		t.Fatalf("%d columns", len(t4.Columns))
	}
	want := []string{"Only Reboot", "App restart and Reboot", "With only SIRAs", "SIRAs and masking"}
	for i, c := range t4.Columns {
		if c.Scenario != want[i] {
			t.Errorf("column %d = %q, want %q", i, c.Scenario, want[i])
		}
	}
	// The structural claims that must hold at any seed: manual reboot
	// recovery is the slowest; masking has the highest MTTF.
	if !(t4.Columns[0].MTTR > t4.Columns[2].MTTR) {
		t.Errorf("reboot-only MTTR (%v) should exceed SIRAs MTTR (%v)",
			t4.Columns[0].MTTR, t4.Columns[2].MTTR)
	}
	if !(t4.Columns[3].MTTF > t4.Columns[2].MTTF) {
		t.Errorf("masking MTTF (%v) should exceed SIRAs MTTF (%v)",
			t4.Columns[3].MTTF, t4.Columns[2].MTTF)
	}
}

// TestRedundantPiconetsExtension checks the paper's future-work proposal
// yields a strictly better deployment.
func TestRedundantPiconetsExtension(t *testing.T) {
	dep, err := RedundantPiconets(7, 18*Hour, 2*Second)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Availability() <= dep.A.Availability {
		t.Errorf("redundant availability %v should beat single %v",
			dep.Availability(), dep.A.Availability)
	}
	if dep.MTBSF() <= dep.A.MTTF {
		t.Errorf("MTBSF %v should exceed single-piconet MTTF %v",
			dep.MTBSF(), dep.A.MTTF)
	}
}
