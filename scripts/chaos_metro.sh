#!/bin/sh
# chaos_metro.sh is the real-OS-process proof of the distributed metro
# plane: a 4-piconet ring scatternet campaign split into two districts,
# each district a btagent -scatternet shard shipping fold partials to its
# own btsink district shard over a lossy, duplicating, reordering loopback
# network. Mid-storm the overlay-owning agent is kill -9'd and restarted
# (a fresh process re-runs its deterministic piconet worlds past the
# sink's resume cursor) and district 1's sink shard is kill -9'd and
# restarted from its durable district checkpoint (its agent retries
# through the outage with backoff). The btmerge -scatternet report must
# come out byte-identical to `btcampaign -scatternet -rollup -stream` at
# the same seed. The Go-level twins (same topology, in-process, fault
# injection and both crash variants) are the TestMetroDistributed* suite.
# CI runs this in the chaos job; it is bounded to roughly a minute.
# Usage: scripts/chaos_metro.sh [days]
set -eu

cd "$(dirname "$0")/.."
days="${1:-7}"
seed=5
tmp="$(mktemp -d)"
port0=$((27000 + $$ % 10000))
port1=$((port0 + 1))
addr0="127.0.0.1:$port0"
addr1="127.0.0.1:$port1"
mkdir -p "$tmp/ckpt0" "$tmp/ckpt1" "$tmp/part0" "$tmp/part1"
cleanup() {
    # shellcheck disable=SC2046
    kill -9 $(jobs -p) 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/btsink" ./cmd/btsink
go build -o "$tmp/btagent" ./cmd/btagent
go build -o "$tmp/btmerge" ./cmd/btmerge
go build -o "$tmp/btcampaign" ./cmd/btcampaign

# Reference: the single-process hierarchical metro report (skip the banner;
# the report proper starts at the roll-up header). btmerge -scatternet
# prints the same section, so the extraction diffs directly.
"$tmp/btcampaign" -seed "$seed" -days "$days" -scatternet -topology ring \
    -piconets 4 -probe-sample 0.5 -stream -rollup >"$tmp/ref_raw.txt"
sed -n '/^Scatternet roll-up:/,$p' "$tmp/ref_raw.txt" >"$tmp/ref.txt"
[ -s "$tmp/ref.txt" ] || { echo "chaos_metro: empty reference report" >&2; exit 1; }

# start_sink SHARD ROUND: one district keyspace per shard. Flags are
# identical across rounds — a kill -9 restart needs nothing but the same
# command line plus the surviving checkpoint.
start_sink() {
    case "$1" in
    0) "$tmp/btsink" -addr "$addr0" \
        -district "key=metro0,seed=$seed,days=$days,range=0:2,piconets=4,topology=ring,probe-sample=0.5" \
        -checkpoint-dir "$tmp/ckpt0" -partial-dir "$tmp/part0" -timeout 10m \
        2>"$tmp/sink0_$2.log" & s0=$! ;;
    1) "$tmp/btsink" -addr "$addr1" \
        -district "key=metro1,seed=$seed,days=$days,range=2:4,piconets=4,topology=ring,probe-sample=0.5" \
        -checkpoint-dir "$tmp/ckpt1" -partial-dir "$tmp/part1" -timeout 10m \
        2>"$tmp/sink1_$2.log" & s1=$! ;;
    esac
}
start_sink 0 1
start_sink 1 1

# start_agent DISTRICT ROUND: one district shard per agent, faults on every
# partial frame. District 0 owns piconet 0 and therefore the bridge overlay.
start_agent() {
    case "$1" in
    0) "$tmp/btagent" -sink "$addr0" -keyspace metro0 -scatternet \
        -piconet-range 0:2 -piconets 4 -topology ring -probe-sample 0.5 \
        -seed "$seed" -days "$days" -drop 0.05 -dup 0.05 -reorder 0.1 \
        -fault-seed 70 2>"$tmp/agent0_$2.log" & a0=$! ;;
    1) "$tmp/btagent" -sink "$addr1" -keyspace metro1 -scatternet \
        -piconet-range 2:4 -piconets 4 -topology ring -probe-sample 0.5 \
        -seed "$seed" -days "$days" -drop 0.05 -dup 0.05 -reorder 0.1 \
        -fault-seed 71 2>"$tmp/agent1_$2.log" & a1=$! ;;
    esac
}
start_agent 0 1
start_agent 1 1

# Kill the overlay-owning agent the moment its district has durable
# progress (so the restart genuinely resumes past the sink's cursor), and
# the other district's sink shard at the same milestone. Best-effort: on a
# fast machine a victim may already have finished, which only makes the
# kill a no-op — equivalence is asserted regardless.
deadline=$(( $(date +%s) + 60 ))
while [ ! -s "$tmp/ckpt0/metro0.district.ckpt" ] || [ ! -s "$tmp/ckpt1/metro1.district.ckpt" ]; do
    if [ "$(date +%s)" -gt "$deadline" ]; then
        echo "chaos_metro: timed out waiting for the first district checkpoints" >&2
        exit 1
    fi
    sleep 0.1
done
kill -9 "$a0" 2>/dev/null || true
wait "$a0" 2>/dev/null || true
kill -9 "$s1" 2>/dev/null || true
wait "$s1" 2>/dev/null || true
start_agent 0 2
start_sink 1 2

# Both agents (the restarted one included) must finish cleanly.
wait "$a0" || { echo "chaos_metro: restarted district 0 agent failed" >&2; cat "$tmp/agent0_2.log" >&2; exit 1; }
wait "$a1" || { echo "chaos_metro: district 1 agent failed" >&2; cat "$tmp/agent1_1.log" >&2; exit 1; }

# The sealed district partials appear as the districts complete.
deadline=$(( $(date +%s) + 120 ))
for f in part0/metro0 part1/metro1; do
    while [ ! -s "$tmp/${f%%/*}/${f##*/}.district.json" ]; do
        if [ "$(date +%s)" -gt "$deadline" ]; then
            echo "chaos_metro: timed out waiting for $f.district.json" >&2
            exit 1
        fi
        sleep 0.2
    done
done

# Graceful drain: SIGTERM both shards; each must exit 0.
kill -TERM "$s0" 2>/dev/null || true
kill -TERM "$s1" 2>/dev/null || true
wait "$s0" || { echo "chaos_metro: sink shard 0 drain exited non-zero" >&2; exit 1; }
wait "$s1" || { echo "chaos_metro: sink shard 1 drain exited non-zero" >&2; exit 1; }

# Merge the district partials and demand byte-identity with the
# single-process hierarchical report.
"$tmp/btmerge" -seed "$seed" -days "$days" -scatternet \
    "$tmp/part0/metro0.district.json" "$tmp/part1/metro1.district.json" \
    >"$tmp/merged_raw.txt"
sed -n '/^Scatternet roll-up:/,$p' "$tmp/merged_raw.txt" >"$tmp/merged.txt"
if ! diff -u "$tmp/ref.txt" "$tmp/merged.txt"; then
    echo "chaos_metro: merged metro report differs from btcampaign -scatternet -rollup" >&2
    exit 1
fi

echo "chaos_metro: OK (metro report byte-identical through agent kill -9 + sink shard kill -9/restore)"
