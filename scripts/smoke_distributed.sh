#!/bin/sh
# smoke_distributed.sh is the end-to-end multi-process proof of the
# distributed collection plane: it spawns one btsink and two btagent shard
# processes over loopback TCP and asserts that the sink's campaign report is
# byte-identical to `btcampaign -stream` on the same seeds — first on a
# clean network, then with fault injection (drop/duplicate/reorder) AND a
# kill -9 of the sink mid-campaign followed by a checkpoint restart.
# CI runs it on every push; bench.sh times it into BENCH_campaign.json.
# Usage: scripts/smoke_distributed.sh [days] [seed]
set -eu

cd "$(dirname "$0")/.."
days="${1:-1}"
seed="${2:-1}"
tmp="$(mktemp -d)"
port=$((21000 + $$ % 20000))
addr="127.0.0.1:$port"
cleanup() {
    # shellcheck disable=SC2046
    kill $(jobs -p) 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/btsink" ./cmd/btsink
go build -o "$tmp/btagent" ./cmd/btagent
go build -o "$tmp/btcampaign" ./cmd/btcampaign

# Reference: the single-process streaming campaign's report (skip the
# banner; the report starts at the "collected" line).
"$tmp/btcampaign" -seed "$seed" -days "$days" -stream >"$tmp/ref_raw.txt"
sed -n '/^collected /,$p' "$tmp/ref_raw.txt" >"$tmp/ref.txt"
[ -s "$tmp/ref.txt" ] || { echo "smoke_distributed: empty reference report" >&2; exit 1; }

# Pass 1: clean network, no checkpointing.
"$tmp/btsink" -addr "$addr" -seed "$seed" -days "$days" -timeout 10m \
    >"$tmp/dist1.txt" 2>"$tmp/sink1.log" &
sink_pid=$!
"$tmp/btagent" -sink "$addr" -testbed random -seed "$seed" -days "$days" 2>"$tmp/agent_r1.log" &
a1=$!
"$tmp/btagent" -sink "$addr" -testbed realistic -seed "$seed" -days "$days" 2>"$tmp/agent_e1.log" &
a2=$!
wait "$a1"; wait "$a2"; wait "$sink_pid"
if ! diff -u "$tmp/ref.txt" "$tmp/dist1.txt"; then
    echo "smoke_distributed: clean-network report differs from btcampaign -stream" >&2
    exit 1
fi
echo "smoke_distributed: pass 1 OK (clean network, report byte-identical)"

# Pass 2: fault injection on both agents + SIGKILL the sink mid-campaign,
# then restart it from its checkpoint on the same port.
port=$((port + 1))
addr="127.0.0.1:$port"
ckpt="$tmp/sink.ckpt"
"$tmp/btsink" -addr "$addr" -seed "$seed" -days "$days" \
    -checkpoint "$ckpt" -checkpoint-every 8 -timeout 10m \
    >"$tmp/dist2a.txt" 2>"$tmp/sink2a.log" &
sink_pid=$!
"$tmp/btagent" -sink "$addr" -testbed random -seed "$seed" -days "$days" \
    -drop 0.1 -dup 0.1 -reorder 0.15 -fault-seed 5 2>"$tmp/agent_r2.log" &
a1=$!
"$tmp/btagent" -sink "$addr" -testbed realistic -seed "$seed" -days "$days" \
    -drop 0.1 -dup 0.1 -reorder 0.15 -fault-seed 6 2>"$tmp/agent_e2.log" &
a2=$!

# Kill as soon as a checkpoint exists (kill -9: no graceful final write).
tries=0
while [ ! -s "$ckpt" ]; do
    tries=$((tries + 1))
    [ "$tries" -gt 600 ] && { echo "smoke_distributed: no checkpoint appeared" >&2; exit 1; }
    sleep 0.05
done
kill -9 "$sink_pid" 2>/dev/null || true
wait "$sink_pid" 2>/dev/null || true

"$tmp/btsink" -addr "$addr" -seed "$seed" -days "$days" \
    -checkpoint "$ckpt" -checkpoint-every 8 -timeout 10m \
    >"$tmp/dist2.txt" 2>"$tmp/sink2b.log" &
sink_pid=$!
wait "$a1"; wait "$a2"; wait "$sink_pid"
if ! diff -u "$tmp/ref.txt" "$tmp/dist2.txt"; then
    echo "smoke_distributed: kill/resume report differs from btcampaign -stream" >&2
    exit 1
fi
echo "smoke_distributed: pass 2 OK (faults + kill -9 + checkpoint resume, report byte-identical)"
