// Command doclint enforces the repo's documentation bar without external
// dependencies: every exported top-level declaration (functions, methods,
// types, and const/var groups) in non-test files must carry a doc comment,
// and every package must have a package comment in exactly the revive/
// golint "exported" spirit. CI runs it over the whole module.
//
// The -strict flag raises the bar for named path prefixes: there EVERY
// top-level declaration — unexported included, only func main/init exempt —
// must carry a doc comment. CI applies it to the distributed collection
// plane (the cmd/btagent and cmd/btsink binaries and the collector
// transport), whose session protocol is exactly the kind of code where an
// undocumented helper hides a protocol invariant.
//
// Usage:
//
//	go run ./scripts/doclint [-strict prefix,prefix...] [dir ...]
//
// Exits non-zero listing file:line for every undocumented symbol.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// strictPrefixes holds the -strict path prefixes (slash-separated, relative
// to the lint root).
var strictPrefixes []string

// strictPath reports whether a file path falls under a strict prefix.
func strictPath(path string) bool {
	path = filepath.ToSlash(strings.TrimPrefix(path, "./"))
	for _, p := range strictPrefixes {
		if p != "" && strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

func main() {
	strict := flag.String("strict", "",
		"comma-separated path prefixes where all top-level declarations (unexported included) need doc comments")
	flag.Parse()
	if *strict != "" {
		strictPrefixes = strings.Split(*strict, ",")
	}
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var failures []string
	for _, root := range roots {
		dirs, err := goDirs(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
		for _, dir := range dirs {
			f, err := lintDir(dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "doclint:", err)
				os.Exit(2)
			}
			failures = append(failures, f...)
		}
	}
	if len(failures) > 0 {
		sort.Strings(failures)
		for _, f := range failures {
			fmt.Println(f)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported declaration(s)\n", len(failures))
		os.Exit(1)
	}
}

// goDirs lists every directory under root that contains Go files, skipping
// hidden directories and testdata.
func goDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, err
}

// lintDir checks one directory's non-test files.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: undocumented exported %s %s", p.Filename, p.Line, what, name))
	}
	for _, pkg := range pkgs {
		// Walk files in name order so reports are deterministic (the Files
		// map iterates in random order).
		fnames := make([]string, 0, len(pkg.Files))
		hasPkgDoc := false
		for fname, file := range pkg.Files {
			fnames = append(fnames, fname)
			if file.Doc != nil {
				hasPkgDoc = true
			}
		}
		sort.Strings(fnames)
		for _, fname := range fnames {
			file := pkg.Files[fname]
			strict := strictPath(fname)
			if !hasPkgDoc {
				report(file.Package, "package", pkg.Name+" ("+filepath.Base(fname)+")")
				hasPkgDoc = true // one report per package
			}
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Doc != nil {
						continue
					}
					name := d.Name.Name
					if strict && name != "main" && name != "init" {
						report(d.Pos(), funcKind(d), name)
						continue
					}
					if d.Name.IsExported() && exportedRecv(d) {
						report(d.Pos(), funcKind(d), name)
					}
				case *ast.GenDecl:
					lintGen(d, report, strict)
				}
			}
		}
	}
	return out, nil
}

// funcKind labels a FuncDecl for the report.
func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// exportedRecv reports whether a method's receiver type is exported (a
// method on an unexported type is not part of the package surface).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// lintGen checks a type/const/var declaration group: the group doc covers
// every spec; otherwise each exported spec (every spec, in strict files)
// needs its own.
func lintGen(d *ast.GenDecl, report func(token.Pos, string, string), strict bool) {
	if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
		return
	}
	if d.Doc != nil {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if (s.Name.IsExported() || strict) && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.Name == "_" {
					continue
				}
				if name.IsExported() || strict {
					report(s.Pos(), strings.ToLower(d.Tok.String()), name.Name)
					break
				}
			}
		}
	}
}
