#!/bin/sh
# chaos_distributed.sh is the kill-storm proof of the collection plane's
# crash tolerance with real processes: it runs one btsink (checkpointing)
# and two btagent shards (spilling to a shared WAL directory) over loopback
# TCP, and on a fixed schedule SIGKILLs all three mid-campaign, then
# restarts them with identical flags. After the storm the campaign runs to
# completion and the sink's report must be byte-identical to
# `btcampaign -stream` on the same seeds — ARCHITECTURE.md invariant 9,
# extended to agent crashes. The Go-level twin is TestChaosAgentSinkKillStorm.
# CI runs this in the chaos job; it is bounded to roughly a minute.
# Usage: scripts/chaos_distributed.sh [days] [seed]
set -eu

cd "$(dirname "$0")/.."
days="${1:-2}"
seed="${2:-1}"
tmp="$(mktemp -d)"
port=$((23000 + $$ % 20000))
addr="127.0.0.1:$port"
ckpt="$tmp/sink.ckpt"
spill="$tmp/spill"
cleanup() {
    # shellcheck disable=SC2046
    kill -9 $(jobs -p) 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/btsink" ./cmd/btsink
go build -o "$tmp/btagent" ./cmd/btagent
go build -o "$tmp/btcampaign" ./cmd/btcampaign

# Reference: the single-process streaming campaign's report (skip the
# banner; the report starts at the "collected" line).
"$tmp/btcampaign" -seed "$seed" -days "$days" -stream >"$tmp/ref_raw.txt"
sed -n '/^collected /,$p' "$tmp/ref_raw.txt" >"$tmp/ref.txt"
[ -s "$tmp/ref.txt" ] || { echo "chaos_distributed: empty reference report" >&2; exit 1; }

# start_all ROUND launches the full plane with flags identical across
# rounds — a restart after kill -9 must need nothing but the same command
# line. Fault injection stays on the whole time, so every incarnation also
# rides a lossy, duplicating, reordering network.
start_all() {
    "$tmp/btsink" -addr "$addr" -seed "$seed" -days "$days" \
        -checkpoint "$ckpt" -checkpoint-every 8 -timeout 10m \
        >"$tmp/sink_out_$1.txt" 2>"$tmp/sink_err_$1.log" &
    sink_pid=$!
    "$tmp/btagent" -sink "$addr" -testbed random -seed "$seed" -days "$days" \
        -spill-dir "$spill" -drop 0.05 -dup 0.05 -reorder 0.1 -fault-seed 5 \
        2>"$tmp/agent_r_$1.log" &
    a1=$!
    "$tmp/btagent" -sink "$addr" -testbed realistic -seed "$seed" -days "$days" \
        -spill-dir "$spill" -drop 0.05 -dup 0.05 -reorder 0.1 -fault-seed 6 \
        2>"$tmp/agent_e_$1.log" &
    a2=$!
}

# The storm: a fixed schedule of short lives, each ended by kill -9 of all
# three processes at once — no graceful shutdown, no final flush, only the
# spill logs and the checkpoint survive. If a round finishes the campaign
# before its kill lands, its report is the final output.
final=""
round=0
for pause in 0.4 0.6 0.5 0.7 0.45; do
    round=$((round + 1))
    start_all "$round"
    sleep "$pause"
    kill -9 "$sink_pid" "$a1" "$a2" 2>/dev/null || true
    wait "$sink_pid" 2>/dev/null || true
    wait "$a1" 2>/dev/null || true
    wait "$a2" 2>/dev/null || true
    if grep -q '^collected ' "$tmp/sink_out_$round.txt" 2>/dev/null; then
        final="$tmp/sink_out_$round.txt"
        echo "chaos_distributed: campaign completed during round $round"
        break
    fi
done

# Survivors' round: same flags, no kill — the campaign must now finish.
if [ -z "$final" ]; then
    round=$((round + 1))
    start_all "$round"
    wait "$a1" || { echo "chaos_distributed: random agent failed after the storm" >&2; exit 1; }
    wait "$a2" || { echo "chaos_distributed: realistic agent failed after the storm" >&2; exit 1; }
    wait "$sink_pid" || { echo "chaos_distributed: sink failed after the storm" >&2; exit 1; }
    final="$tmp/sink_out_$round.txt"
fi

if ! diff -u "$tmp/ref.txt" "$final"; then
    echo "chaos_distributed: post-storm report differs from btcampaign -stream" >&2
    exit 1
fi
echo "chaos_distributed: OK ($round rounds, report byte-identical after kill storm)"
