#!/bin/sh
# bench.sh runs the end-to-end campaign benchmarks and emits
# BENCH_campaign.json so the performance trajectory is tracked across PRs:
# the day-scale throughput metric (ns/op, B/op, allocs/op — comparable back
# to PR 1), the month-scale streaming benchmark with its live-heap metric
# (O(1) in campaign days) and the retained 30-day control, plus the
# scatternet day benchmark (4 piconets, 3 bridges, streaming — PR 3), the
# wall-clock seconds of the end-to-end multi-process collection smoke
# (sink + 2 agents over loopback, clean + kill/resume passes — PR 5), and
# the agent-side WAL overhead ratio (streaming day shipped through a real
# agent/sink pair with and without the spill log — PR 6; budget: < 0.15),
# and the scatternet scaling ladder (64/256/1024-piconet virtual days on the
# sharded roll-up engine — PR 8; live_mb must stay flat across the ladder),
# and the taxonomy overhead ratio (streaming day with the taxonomy/survival
# accumulators on vs forced off — PR 10; budget: < 0.05).
# Usage: scripts/bench.sh [day-benchtime] [month-benchtime] [scale-benchtime]
set -eu

cd "$(dirname "$0")/.."
day_benchtime="${1:-5x}"
month_benchtime="${2:-1x}"
scale_benchtime="${3:-1x}"

# Warm the build cache first so the smoke's internal go-build steps are
# cache hits and the timed value measures the collection plane, not the
# compiler (a cold CI runner would otherwise dominate the metric).
go build ./... >/dev/null
smoke_start="$(date +%s)"
./scripts/smoke_distributed.sh >/dev/null
smoke_secs="$(($(date +%s) - smoke_start))"
# The metro smoke is the distributed scatternet pass (two district shards,
# fault injection, agent + sink kill -9, byte-identical merge — PR 9).
metro_start="$(date +%s)"
./scripts/chaos_metro.sh >/dev/null
metro_secs="$(($(date +%s) - metro_start))"

day_out="$(go test -run '^$' -bench '^BenchmarkCampaignDay(Taxonomy|NoTaxonomy)?$' -benchtime "$day_benchtime" -benchmem . | tee /dev/stderr)"
month_out="$(go test -run '^$' -bench '^Benchmark(CampaignMonth(Retained)?|ScatternetDay)$' -benchtime "$month_benchtime" -benchmem . | tee /dev/stderr)"
# The scaling ladder runs at 1x by default: the city rung is a whole
# 1024-piconet virtual day per iteration.
scale_out="$(go test -run '^$' -bench '^BenchmarkScatternetDay(64|256|1024)$' -benchtime "$scale_benchtime" -benchmem -timeout 60m . | tee /dev/stderr)"
# The agent pair is cheap per op; a fixed high count keeps the overhead
# ratio stable against scheduler noise.
agent_out="$(go test -run '^$' -bench '^BenchmarkAgentStreamDay' -benchtime 100x -benchmem ./internal/collector | tee /dev/stderr)"

printf '%s\n%s\n%s\n%s\n' "$day_out" "$month_out" "$scale_out" "$agent_out" | awk -v smoke="$smoke_secs" -v metro="$metro_secs" '
# Benchmark lines interleave custom metrics with the standard ones, so pick
# values by their unit token instead of field position.
/^Benchmark(Campaign|Scatternet|Agent)/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = bytes = allocs = live = items = outages = probes = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i-1)
        if ($i == "B/op") bytes = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
        if ($i == "live-MB") live = $(i-1)
        if ($i == "items") items = $(i-1)
        if ($i == "corr-outages") outages = $(i-1)
        if ($i == "probes") probes = $(i-1)
    }
    if (name == "BenchmarkCampaignDay") { d_ns = ns; d_b = bytes; d_a = allocs; d_live = live }
    if (name == "BenchmarkCampaignDayTaxonomy") { tax_ns = ns }
    if (name == "BenchmarkCampaignDayNoTaxonomy") { notax_ns = ns }
    if (name == "BenchmarkCampaignMonth") { m_ns = ns; m_b = bytes; m_a = allocs; m_live = live; m_items = items }
    if (name == "BenchmarkCampaignMonthRetained") { r_live = live }
    if (name == "BenchmarkScatternetDay") { s_ns = ns; s_b = bytes; s_a = allocs; s_live = live; s_items = items; s_out = outages }
    if (name == "BenchmarkAgentStreamDay") { ag_ns = ns }
    if (name == "BenchmarkAgentStreamDaySpill") { ags_ns = ns }
    if (name == "BenchmarkScatternetDay64") { sc64_ns = ns; sc64_live = live; sc64_items = items; sc64_probes = probes }
    if (name == "BenchmarkScatternetDay256") { sc256_ns = ns; sc256_live = live; sc256_items = items; sc256_probes = probes }
    if (name == "BenchmarkScatternetDay1024") { sc1024_ns = ns; sc1024_live = live; sc1024_items = items; sc1024_probes = probes }
}
END {
    if (d_ns == "" || d_b == "" || d_a == "" || d_live == "" ||
        m_ns == "" || m_b == "" || m_a == "" || m_live == "" ||
        m_items == "" || r_live == "" ||
        s_ns == "" || s_b == "" || s_a == "" || s_live == "" || s_items == "" || s_out == "" ||
        sc64_ns == "" || sc64_live == "" || sc64_items == "" || sc64_probes == "" ||
        sc256_ns == "" || sc256_live == "" || sc256_items == "" || sc256_probes == "" ||
        sc1024_ns == "" || sc1024_live == "" || sc1024_items == "" || sc1024_probes == "" ||
        tax_ns == "" || notax_ns == "" ||
        ag_ns == "" || ags_ns == "") {
        print "bench.sh: missing benchmark lines or metrics" > "/dev/stderr"
        exit 1
    }
    printf "{\n"
    printf "  \"benchmark\": \"BenchmarkCampaignDay\",\n"
    printf "  \"ns_per_op\": %s,\n", d_ns
    printf "  \"bytes_per_op\": %s,\n", d_b
    printf "  \"allocs_per_op\": %s,\n", d_a
    printf "  \"live_mb\": %s,\n", d_live
    printf "  \"month\": {\n"
    printf "    \"benchmark\": \"BenchmarkCampaignMonth\",\n"
    printf "    \"ns_per_op\": %s,\n", m_ns
    printf "    \"bytes_per_op\": %s,\n", m_b
    printf "    \"allocs_per_op\": %s,\n", m_a
    printf "    \"live_mb\": %s,\n", m_live
    printf "    \"items\": %s,\n", m_items
    printf "    \"retained_live_mb\": %s\n", r_live
    printf "  },\n"
    printf "  \"scatternet\": {\n"
    printf "    \"benchmark\": \"BenchmarkScatternetDay\",\n"
    printf "    \"piconets\": 4,\n"
    printf "    \"bridges\": 3,\n"
    printf "    \"ns_per_op\": %s,\n", s_ns
    printf "    \"bytes_per_op\": %s,\n", s_b
    printf "    \"allocs_per_op\": %s,\n", s_a
    printf "    \"live_mb\": %s,\n", s_live
    printf "    \"items\": %s,\n", s_items
    printf "    \"correlated_outages\": %s\n", s_out
    printf "  },\n"
    printf "  \"scatternet_scaling\": [\n"
    printf "    {\"piconets\": 64, \"ns_per_op\": %s, \"live_mb\": %s, \"items\": %s, \"probes\": %s},\n", sc64_ns, sc64_live, sc64_items, sc64_probes
    printf "    {\"piconets\": 256, \"ns_per_op\": %s, \"live_mb\": %s, \"items\": %s, \"probes\": %s},\n", sc256_ns, sc256_live, sc256_items, sc256_probes
    printf "    {\"piconets\": 1024, \"ns_per_op\": %s, \"live_mb\": %s, \"items\": %s, \"probes\": %s}\n", sc1024_ns, sc1024_live, sc1024_items, sc1024_probes
    printf "  ],\n"
    printf "  \"campaign_day_taxonomy_ns\": %s,\n", tax_ns
    printf "  \"campaign_day_no_taxonomy_ns\": %s,\n", notax_ns
    printf "  \"taxonomy_overhead_ratio\": %.4f,\n", (tax_ns - notax_ns) / notax_ns
    printf "  \"agent_stream_day_ns\": %s,\n", ag_ns
    printf "  \"agent_stream_day_spill_ns\": %s,\n", ags_ns
    printf "  \"agent_wal_overhead_ratio\": %.4f,\n", (ags_ns - ag_ns) / ag_ns
    printf "  \"distributed_smoke_seconds\": %s,\n", smoke
    printf "  \"metro_smoke_seconds\": %s\n", metro
    printf "}\n"
}' >BENCH_campaign.json

cat BENCH_campaign.json
