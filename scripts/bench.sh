#!/bin/sh
# bench.sh runs the end-to-end campaign throughput benchmark and emits
# BENCH_campaign.json with ns/op, B/op, and allocs/op, so the performance
# trajectory is tracked across PRs. Usage: scripts/bench.sh [benchtime]
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-5x}"

out="$(go test -run '^$' -bench BenchmarkCampaignDay -benchtime "$benchtime" -benchmem . | tee /dev/stderr)"

echo "$out" | awk '
/^BenchmarkCampaignDay/ {
    ns = $3; bytes = $5; allocs = $7
}
END {
    if (ns == "") {
        print "bench.sh: no BenchmarkCampaignDay line found" > "/dev/stderr"
        exit 1
    }
    printf "{\n"
    printf "  \"benchmark\": \"BenchmarkCampaignDay\",\n"
    printf "  \"ns_per_op\": %s,\n", ns
    printf "  \"bytes_per_op\": %s,\n", bytes
    printf "  \"allocs_per_op\": %s\n", allocs
    printf "}\n"
}' >BENCH_campaign.json

cat BENCH_campaign.json
