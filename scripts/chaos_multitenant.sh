#!/bin/sh
# chaos_multitenant.sh is the real-OS-process proof of the multi-tenant
# collection plane: three concurrent campaigns (keyspaces alpha, bravo, hog)
# collected through TWO btsink shards — shard 0 hosts every campaign's
# random testbed, shard 1 every realistic one — fed by six btagent
# processes under fault injection. Mid-storm, shard 0 is kill -9'd and
# restarted from its per-keyspace checkpoints, and the hog campaign is
# driven over its ingest quota on shard 0: it must be shed with a typed
# over-quota reject (durably — the restarted shard keeps shedding) while
# alpha's and bravo's btmerge'd reports stay byte-identical to their
# `btcampaign -stream` references. The Go-level twin (same topology,
# in-process, -race) is TestMultiTenantShardedChaos.
# CI runs this in the chaos job; it is bounded to roughly a minute.
# Usage: scripts/chaos_multitenant.sh [days]
set -eu

cd "$(dirname "$0")/.."
days="${1:-2}"
tmp="$(mktemp -d)"
port0=$((25000 + $$ % 10000))
port1=$((port0 + 1))
addr0="127.0.0.1:$port0"
addr1="127.0.0.1:$port1"
mkdir -p "$tmp/ckpt0" "$tmp/ckpt1" "$tmp/part0" "$tmp/part1"
cleanup() {
    # shellcheck disable=SC2046
    kill -9 $(jobs -p) 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/btsink" ./cmd/btsink
go build -o "$tmp/btagent" ./cmd/btagent
go build -o "$tmp/btmerge" ./cmd/btmerge
go build -o "$tmp/btcampaign" ./cmd/btcampaign

# References: each campaign's single-process streaming report (skip the
# banner; the report starts at the "collected" line). btmerge prints the
# report alone, so the extracted reference diffs directly against it.
for c in alpha:7 bravo:11; do
    key="${c%%:*}"; seed="${c##*:}"
    "$tmp/btcampaign" -seed "$seed" -days "$days" -stream >"$tmp/ref_${key}_raw.txt"
    sed -n '/^collected /,$p' "$tmp/ref_${key}_raw.txt" >"$tmp/ref_$key.txt"
    [ -s "$tmp/ref_$key.txt" ] || { echo "chaos_multitenant: empty $key reference" >&2; exit 1; }
done

# start_shard0 ROUND: every campaign's random half, with per-keyspace
# checkpoints and the hog's tight batch quota. Flags are identical across
# rounds — a kill -9 restart needs nothing but the same command line.
start_shard0() {
    "$tmp/btsink" -addr "$addr0" \
        -campaign "key=alpha,seed=7,days=$days,testbeds=random" \
        -campaign "key=bravo,seed=11,days=$days,testbeds=random" \
        -campaign "key=hog,seed=13,days=$days,testbeds=random,quota-batches=12" \
        -checkpoint-dir "$tmp/ckpt0" -checkpoint-every 8 \
        -partial-dir "$tmp/part0" -timeout 10m \
        2>"$tmp/shard0_$1.log" &
    s0=$!
}
start_shard0 1

"$tmp/btsink" -addr "$addr1" \
    -campaign "key=alpha,seed=7,days=$days,testbeds=realistic" \
    -campaign "key=bravo,seed=11,days=$days,testbeds=realistic" \
    -campaign "key=hog,seed=13,days=$days,testbeds=realistic" \
    -checkpoint-dir "$tmp/ckpt1" -checkpoint-every 8 \
    -partial-dir "$tmp/part1" -timeout 10m \
    2>"$tmp/shard1.log" &
s1=$!

# Six agents: campaign x testbed, random halves at shard 0, realistic at
# shard 1, all on a lossy, duplicating, reordering network. The hog random
# agent gets a short completion timeout: it is EXPECTED to be shed.
fs=50
pids=""
for c in alpha:7 bravo:11; do
    key="${c%%:*}"; seed="${c##*:}"
    "$tmp/btagent" -sink "$addr0" -keyspace "$key" -testbed random \
        -seed "$seed" -days "$days" -drop 0.05 -dup 0.05 -reorder 0.1 \
        -fault-seed $fs 2>"$tmp/agent_${key}_r.log" &
    pids="$pids $!"
    fs=$((fs + 1))
    "$tmp/btagent" -sink "$addr1" -keyspace "$key" -testbed realistic \
        -seed "$seed" -days "$days" -drop 0.05 -dup 0.05 -reorder 0.1 \
        -fault-seed $fs 2>"$tmp/agent_${key}_e.log" &
    pids="$pids $!"
    fs=$((fs + 1))
done
"$tmp/btagent" -sink "$addr0" -keyspace hog -testbed random \
    -seed 13 -days "$days" -timeout 15s 2>"$tmp/agent_hog_r.log" &
hog_r=$!
"$tmp/btagent" -sink "$addr1" -keyspace hog -testbed realistic \
    -seed 13 -days "$days" 2>"$tmp/agent_hog_e.log" &
pids="$pids $!"

# Kill shard 0 mid-storm and restart it from its checkpoints: resumable
# collection for alpha/bravo, durable quarantine for the hog.
sleep 1.2
kill -9 "$s0" 2>/dev/null || true
wait "$s0" 2>/dev/null || true
start_shard0 2

# Every clean agent must finish; the hog's random agent must fail with the
# typed over-quota reject in its diagnostics.
for pid in $pids; do
    wait "$pid" || { echo "chaos_multitenant: a clean agent failed" >&2; exit 1; }
done
if wait "$hog_r" 2>/dev/null; then
    echo "chaos_multitenant: hog random agent finished despite its quota" >&2
    exit 1
fi
grep -q "over-quota" "$tmp/agent_hog_r.log" || {
    echo "chaos_multitenant: hog agent log lacks the typed over-quota reject" >&2
    cat "$tmp/agent_hog_r.log" >&2
    exit 1
}

# The clean campaigns' partials appear on both shards as they complete.
deadline=$(( $(date +%s) + 120 ))
for f in part0/alpha part0/bravo part1/alpha part1/bravo part1/hog; do
    while [ ! -s "$tmp/${f%%/*}/${f##*/}.partial.json" ]; do
        if [ "$(date +%s)" -gt "$deadline" ]; then
            echo "chaos_multitenant: timed out waiting for $f.partial.json" >&2
            exit 1
        fi
        sleep 0.2
    done
done

# Graceful drain: SIGTERM both shards; each must exit 0 (shard 0 still
# hosts the never-completing hog keyspace, so drain is its only way out).
kill -TERM "$s0" 2>/dev/null || true
kill -TERM "$s1" 2>/dev/null || true
wait "$s0" || { echo "chaos_multitenant: shard 0 drain exited non-zero" >&2; exit 1; }
wait "$s1" || { echo "chaos_multitenant: shard 1 drain exited non-zero" >&2; exit 1; }

# Merge each clean campaign's shard partials and demand byte-identity with
# its single-process reference.
for c in alpha:7 bravo:11; do
    key="${c%%:*}"; seed="${c##*:}"
    "$tmp/btmerge" -seed "$seed" -days "$days" \
        "$tmp/part0/$key.partial.json" "$tmp/part1/$key.partial.json" \
        >"$tmp/merged_$key.txt"
    if ! diff -u "$tmp/ref_$key.txt" "$tmp/merged_$key.txt"; then
        echo "chaos_multitenant: $key merged report differs from btcampaign -stream" >&2
        exit 1
    fi
done

echo "chaos_multitenant: OK (2 campaigns byte-identical through shard kill + restart, hog shed over quota)"
