package btpan

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/collector"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// The multi-tenant chaos test: three concurrent campaigns collected through
// a horizontally sharded sink pair (shard 0 hosts every campaign's random
// testbed, shard 1 every realistic one), under fault injection, with shard 0
// killed and restarted from its checkpoints mid-storm and one campaign
// driven over its ingest quota on shard 0. The quota offender is shed with a
// typed over-quota Reject — durably, across the shard restart — while the
// other campaigns' merged reports stay byte-identical to their
// single-process streaming references. scripts/chaos_multitenant.sh is the
// real-OS-process version of this test.

// runTenantShard is runShard with a keyspace and a caller-chosen Finish
// timeout (the quota-shed shard is EXPECTED to time out, rejected).
func runTenantShard(opts testbed.Options, campaign collector.CampaignID, keyspace, addr string,
	duration, flush sim.Time, fault collector.FaultConfig, finishTimeout time.Duration,
	errs chan<- shardErr) {
	name := keyspace + "/" + opts.Name
	tb, err := testbed.New(opts)
	if err != nil {
		errs <- shardErr{name, err}
		return
	}
	nodes := make([]string, 0, len(tb.PANUs)+1)
	for _, h := range tb.PANUs {
		nodes = append(nodes, h.Node)
	}
	nodes = append(nodes, tb.NAP.Node)
	agent, err := collector.NewAgent(collector.AgentConfig{
		Addr: addr, Campaign: campaign, Keyspace: keyspace,
		Testbed: opts.Name, Nodes: nodes, Fault: fault,
		RetryMin: 10 * time.Millisecond, RetryMax: 100 * time.Millisecond,
		RetrySeed:    campaign.Seed,
		StallTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		errs <- shardErr{name, err}
		return
	}
	defer agent.Close()
	tb.StreamTo(agent, flush)
	tb.Run(duration)
	tb.FinishStream(agent)
	res := tb.Results()
	counters := make(map[string]*workload.CountersSnapshot, len(res.Counters))
	for node, c := range res.Counters {
		counters[node] = c.Snapshot()
	}
	errs <- shardErr{name, agent.Finish(counters, duration, finishTimeout)}
}

// TestMultiTenantShardedChaos is the PR's acceptance test; see the file
// comment for the topology and the promises under test.
func TestMultiTenantShardedChaos(t *testing.T) {
	full := testbed.CampaignStreamSpec()
	camps := []struct {
		key string
		cfg CampaignConfig
	}{
		{"alpha", CampaignConfig{Seed: 7, Duration: equivDuration(), Scenario: ScenarioSIRAsMasking, Streaming: true}},
		{"bravo", CampaignConfig{Seed: 11, Duration: equivDuration(), Scenario: ScenarioSIRAsMasking, Streaming: true}},
		{"hog", CampaignConfig{Seed: 13, Duration: equivDuration(), Scenario: ScenarioSIRAsMasking, Streaming: true}},
	}

	// Single-process streaming references for the campaigns that complete.
	want := make(map[string]*CampaignResult)
	for _, c := range camps[:2] {
		res, err := RunCampaign(c.cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[c.key] = res
	}

	// Shard i hosts testbed names[i] of every campaign, each keyspace with
	// its own checkpoint file; the hog campaign gets a small batch quota on
	// shard 0 only — its realistic half on shard 1 must stay untouched.
	names := []string{"random", "realistic"}
	ckptDir := t.TempDir()
	mkShard := func(i int, addr string) *collector.Sink {
		var kss []collector.KeyspaceConfig
		for _, c := range camps {
			sub, err := analysis.SubSpec(full, []string{names[i]})
			if err != nil {
				t.Fatal(err)
			}
			ks := collector.KeyspaceConfig{
				Key: c.key, Campaign: campaignID(c.cfg), Spec: sub,
				CheckpointPath: filepath.Join(ckptDir, fmt.Sprintf("%s-shard%d.ckpt", c.key, i)),
			}
			if i == 0 && c.key == "hog" {
				ks.MaxBatches = 12
			}
			kss = append(kss, ks)
		}
		s, err := collector.NewSink(collector.SinkConfig{
			Addr: addr, Keyspaces: kss, CheckpointEvery: 4})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	shard0 := mkShard(0, "127.0.0.1:0")
	addr0 := shard0.Addr()
	shard1 := mkShard(1, "127.0.0.1:0")
	defer shard1.Close()

	// Six agents: every campaign's random shard at shard 0, realistic at
	// shard 1, all under drop/duplicate/reorder injection. The hog random
	// agent is expected to be shed: give it a short Finish timeout.
	errs := make(chan shardErr, 2*len(camps))
	var faultSeed uint64 = 40
	for _, c := range camps {
		randomOpts, realisticOpts := testbed.CampaignOptions(c.cfg.Seed, c.cfg.Scenario, c.cfg.Duration)
		finishTimeout := 120 * time.Second
		if c.key == "hog" {
			finishTimeout = 5 * time.Second
		}
		fault := collector.FaultConfig{Seed: faultSeed, Drop: 0.05, Duplicate: 0.05, Reorder: 0.1}
		faultB := fault
		faultB.Seed++
		faultSeed += 2
		go runTenantShard(randomOpts, campaignID(c.cfg), c.key, addr0,
			c.cfg.Duration, sim.Hour, fault, finishTimeout, errs)
		go runTenantShard(realisticOpts, campaignID(c.cfg), c.key, shard1.Addr(),
			c.cfg.Duration, sim.Hour, faultB, 120*time.Second, errs)
	}

	// Kill shard 0 mid-storm — but only once it has made durable progress
	// AND quarantined the hog, so the restart must preserve both.
	deadline := time.Now().Add(120 * time.Second)
	for {
		applied, _, _ := shard0.Stats()
		hogQuarantined := false
		for _, km := range shard0.Metrics().Keyspaces {
			if km.Key == "hog" && km.Quarantined {
				hogQuarantined = true
			}
		}
		if applied >= 8 && hogQuarantined {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard 0 never reached kill conditions (applied %d, hog quarantined %v)",
				applied, hogQuarantined)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := shard0.Abort(); err != nil {
		t.Fatal(err)
	}
	shard0 = mkShard(0, addr0)
	defer shard0.Close()

	// The restarted shard must still be shedding the hog (quarantine rides
	// in the checkpoint; a restart cannot silently re-admit the offender).
	for _, km := range shard0.Metrics().Keyspaces {
		if km.Key == "hog" && !km.Quarantined {
			t.Error("shard 0 restart dropped the hog quarantine")
		}
	}

	// Collect every agent: all succeed except the hog's random shard, which
	// must have been shed with the typed over-quota reject.
	for i := 0; i < 2*len(camps); i++ {
		e := <-errs
		if e.name == "hog/random" {
			if e.err == nil {
				t.Error("hog/random finished despite its quota quarantine")
			} else if !strings.Contains(e.err.Error(), collector.RejectOverQuota) {
				t.Errorf("hog/random failed without the typed over-quota reject: %v", e.err)
			}
			continue
		}
		if e.err != nil {
			t.Fatalf("shard %s: %v", e.name, e.err)
		}
	}

	// The two clean campaigns merge byte-identically to their references.
	for _, c := range camps[:2] {
		p0, err := shard0.WaitPartial(c.key, 120*time.Second)
		if err != nil {
			t.Fatalf("%s partial from shard 0: %v", c.key, err)
		}
		p1, err := shard1.WaitPartial(c.key, 120*time.Second)
		if err != nil {
			t.Fatalf("%s partial from shard 1: %v", c.key, err)
		}
		rep, err := collector.MergePartials(full, []*collector.Partial{p0, p1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := ResultFromAggregates(c.cfg, rep.Agg, rep.Counters, rep.Durations)
		if err != nil {
			t.Fatal(err)
		}
		compareOutputs(t, "campaign "+c.key, want[c.key], res)
		if rep.Agg.SeqGaps != 0 || rep.Agg.DroppedRecords != 0 {
			t.Errorf("campaign %s leaked the storm into its aggregates: %d gaps, %d dropped",
				c.key, rep.Agg.SeqGaps, rep.Agg.DroppedRecords)
		}
	}

	// Isolation: the hog's realistic half (on the untouched shard) completed
	// normally, while its random half stays quarantined and incomplete.
	if _, err := shard1.WaitPartial("hog", 120*time.Second); err != nil {
		t.Errorf("hog's realistic half should complete untouched: %v", err)
	}
	for _, km := range shard0.Metrics().Keyspaces {
		if km.Key == "hog" && km.Complete {
			t.Error("hog's random half completed despite the quota quarantine")
		}
	}
}
