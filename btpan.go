// Package btpan is the public API of the Bluetooth PAN failure-data
// reproduction (Cinque, Cotroneo, Russo — DSN 2006): it assembles the
// simulated testbeds, runs failure-data campaigns under the four recovery
// scenarios, and regenerates every table and figure of the paper's
// evaluation from the collected data.
//
// A minimal session:
//
//	res, err := btpan.RunCampaign(btpan.CampaignConfig{
//		Seed:     1,
//		Duration: 10 * btpan.Day,
//		Scenario: btpan.ScenarioSIRAs,
//	})
//	if err != nil { ... }
//	fmt.Println(res.Table2().Render())
//
// The heavy lifting lives in the internal packages (simulation kernel,
// radio channel, Bluetooth stack layers, workload, coalescence, analysis);
// this package wires them together behind a small surface.
package btpan

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/coalesce"
	"repro/internal/core"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// Scenario selects the recovery regime of a campaign (Table 4 columns).
type Scenario = recovery.Scenario

// Recovery scenarios.
const (
	ScenarioRebootOnly   = recovery.ScenarioRebootOnly
	ScenarioAppReboot    = recovery.ScenarioAppReboot
	ScenarioSIRAs        = recovery.ScenarioSIRAs
	ScenarioSIRAsMasking = recovery.ScenarioSIRAsMasking
)

// Duration helpers re-exported for campaign configuration.
const (
	Second = sim.Second
	Minute = sim.Minute
	Hour   = sim.Hour
	Day    = sim.Day
)

// CampaignConfig configures one two-testbed campaign.
type CampaignConfig struct {
	// Seed roots all randomness; equal seeds reproduce campaigns exactly.
	Seed uint64
	// Duration is the virtual observation window (the paper ran 18 months;
	// a few virtual days already give thousands of failures).
	Duration sim.Time
	// Scenario selects the recovery regime.
	Scenario Scenario
	// Parallelism controls campaign orchestration: 0 (default) runs the
	// two testbeds on separate goroutines (each owns its kernel and RNG,
	// so results are identical to sequential execution for a given seed);
	// 1 forces a single goroutine. Values above 1 behave like 0 — a
	// campaign has exactly two independent simulations to overlap.
	Parallelism int
	// Streaming selects the O(1)-memory aggregation plane: node logs are
	// drained every FlushEvery of virtual time into a streaming aggregator
	// that folds records into the running aggregates behind Table 2/3/4,
	// the figures and the §6 scalars, instead of retaining every record.
	// The resulting tables are bit-identical to a retained run of the same
	// seed (see TestStreamingEquivalence); raw-record views (AllReports,
	// Evidence, SensitivityCurve) are unavailable in this mode.
	Streaming bool
	// FlushEvery is the virtual-time log drain cadence in streaming mode
	// (default one virtual hour). Shorter intervals bound pending memory
	// tighter; the aggregates do not depend on the cadence.
	FlushEvery sim.Time
}

// Validate reports configuration errors.
func (c CampaignConfig) Validate() error {
	if c.Duration <= 0 {
		return fmt.Errorf("btpan: non-positive campaign duration")
	}
	if c.Scenario < ScenarioRebootOnly || c.Scenario > ScenarioSIRAsMasking {
		return fmt.Errorf("btpan: unknown scenario %d", c.Scenario)
	}
	if c.FlushEvery < 0 {
		return fmt.Errorf("btpan: negative streaming flush interval")
	}
	return nil
}

// CampaignResult bundles both testbeds' collected data. In retained mode
// Random/Realistic hold every record; in streaming mode they hold only the
// light parts (names, durations, per-client counters) and Agg holds the
// folded aggregates.
type CampaignResult struct {
	Config    CampaignConfig
	Random    *testbed.Results
	Realistic *testbed.Results
	// Agg is the streaming aggregation state (nil in retained mode).
	Agg *analysis.Aggregates
}

// RunCampaign builds both testbeds (random and realistic workloads, seven
// heterogeneous nodes each), runs them for the configured virtual duration
// with the mid-campaign hardware replacement, and returns the collected
// failure data.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c, err := testbed.NewCampaign(cfg.Seed, cfg.Scenario, nil)
	if err != nil {
		return nil, err
	}
	var randomRes, realisticRes *testbed.Results
	var agg *analysis.Aggregates
	if cfg.Streaming {
		flush := cfg.FlushEvery
		if flush == 0 {
			flush = sim.Hour
		}
		s, err := analysis.NewStreamer(c.StreamSpec())
		if err != nil {
			return nil, err
		}
		if cfg.Parallelism == 1 {
			randomRes, realisticRes = c.RunStreamingSequential(cfg.Duration, flush, s)
		} else {
			randomRes, realisticRes = c.RunStreaming(cfg.Duration, flush, s)
		}
		agg = s.Finalize()
	} else if cfg.Parallelism == 1 {
		randomRes, realisticRes = c.RunSequential(cfg.Duration)
	} else {
		randomRes, realisticRes = c.Run(cfg.Duration)
	}
	return &CampaignResult{Config: cfg, Random: randomRes, Realistic: realisticRes, Agg: agg}, nil
}

// AllReports returns both testbeds' user reports (time-sorted per testbed).
// Streaming campaigns do not retain records: the result is nil.
func (r *CampaignResult) AllReports() []core.UserReport {
	if r.Agg != nil {
		return nil
	}
	out := make([]core.UserReport, 0, len(r.Random.Reports)+len(r.Realistic.Reports))
	out = append(out, r.Random.Reports...)
	out = append(out, r.Realistic.Reports...)
	return out
}

// DataItems reports the dataset sizes: user reports, system entries, total
// (the paper collected 20,854 + 335,697 = 356,551 items over 18 months).
func (r *CampaignResult) DataItems() (userReports, systemEntries, total int) {
	if r.Agg != nil {
		return r.Agg.DataItems()
	}
	u := len(r.Random.Reports) + len(r.Realistic.Reports)
	s := len(r.Random.Entries) + len(r.Realistic.Entries)
	return u, s, u + s
}

// Evidence runs the merge-and-coalesce pipeline over both testbeds with the
// given window and returns the accumulated error-failure evidence. A
// streaming campaign folds evidence at its configured window/radius as
// records arrive, so it can only answer for those parameters: any other
// window returns nil — rerun retained for window/radius ablations (the
// sensitivity sweep needs raw events anyway).
func (r *CampaignResult) Evidence(window sim.Time) *coalesce.Evidence {
	if r.Agg != nil {
		if window == r.Agg.Window {
			return r.Agg.Evidence
		}
		return nil
	}
	return r.EvidenceRadius(window, coalesce.RelateRadius)
}

// EvidenceRadius is Evidence with an explicit adjacency radius. Streaming
// campaigns answer only for their configured (window, radius) and return
// nil otherwise.
func (r *CampaignResult) EvidenceRadius(window, radius sim.Time) *coalesce.Evidence {
	if r.Agg != nil {
		if window == r.Agg.Window && radius == r.Agg.Radius {
			return r.Agg.Evidence
		}
		return nil
	}
	ev := coalesce.NewEvidence()
	analysis.BuildEvidenceWithRadius(ev, r.Random.PerNodeReports, r.Random.PerNodeEntries,
		r.Random.NAPNode, window, radius)
	analysis.BuildEvidenceWithRadius(ev, r.Realistic.PerNodeReports, r.Realistic.PerNodeEntries,
		r.Realistic.NAPNode, window, radius)
	return ev
}

// Table2 computes the error-failure relationship table at the paper's 330 s
// coalescence window.
func (r *CampaignResult) Table2() *analysis.Table2 {
	if r.Agg != nil {
		return r.Agg.Table2()
	}
	return analysis.BuildTable2(r.Evidence(coalesce.PaperWindow))
}

// Table3 computes the SIRA effectiveness table from both testbeds.
func (r *CampaignResult) Table3() *analysis.Table3 {
	if r.Agg != nil {
		return r.Agg.Table3()
	}
	return analysis.BuildTable3(r.AllReports())
}

// Dependability computes one Table 4 column from this campaign.
func (r *CampaignResult) Dependability() *analysis.Dependability {
	if r.Agg != nil {
		return r.Agg.Dependability(r.Config.Scenario.String())
	}
	return analysis.BuildDependability(r.Config.Scenario.String(), r.AllReports(),
		r.Config.Duration)
}

// SensitivityCurve reproduces Figure 2's inset: tuple count versus
// coalescence window over both testbeds' merged logs, plus the knee. The
// sweep needs the raw event stream, so streaming campaigns return nil (run
// a short retained campaign for Figure 2 — the knee stabilizes within days).
func (r *CampaignResult) SensitivityCurve() (curve *stats.Curve, kneeSeconds float64) {
	if r.Agg != nil {
		return nil, 0
	}
	events := rebuildEvents(r)
	curve = coalesce.Sensitivity(events, coalesce.DefaultWindows())
	knee, _ := curve.Knee()
	return curve, knee
}

// rebuildEvents merges every node's streams into one time-ordered sequence.
func rebuildEvents(r *CampaignResult) []coalesce.Event {
	var reports []core.UserReport
	var entries []core.SystemEntry
	for _, res := range []*testbed.Results{r.Random, r.Realistic} {
		reports = append(reports, res.Reports...)
		entries = append(entries, res.Entries...)
	}
	return coalesce.Merge(reports, entries)
}

// Fig3a computes the packet-loss-by-packet-type distribution (random WL).
func (r *CampaignResult) Fig3a() []analysis.Bar {
	return analysis.Fig3aPacketType(r.Random.Counters)
}

// Fig3c computes the packet-loss-by-application distribution (realistic WL).
func (r *CampaignResult) Fig3c() []analysis.Bar {
	if r.Agg != nil {
		return r.Agg.Fig3c()
	}
	return analysis.Fig3cApplications(r.Realistic.Reports)
}

// Fig4 computes the per-host failure distribution. The paper's Figure 4
// uses the realistic workload over 18 months; compressed campaigns use both
// testbeds so the rare host-specific failure types (bind, switch-role
// command) accumulate enough occurrences to be visible (a documented
// reproduction assumption, see ARCHITECTURE.md).
func (r *CampaignResult) Fig4() []analysis.Fig4Row {
	if r.Agg != nil {
		return r.Agg.Fig4()
	}
	return analysis.Fig4PerHost(r.AllReports())
}

// retainedTaxonomy folds the retained records into fresh taxonomy and
// survival accumulators, registering the same node roster the streaming
// plane declares up front (every PANU test log, sorted for determinism).
// Per-node record order matches the fold order — each testbed's Reports
// are time-sorted and the accumulators are insensitive to cross-node
// interleaving — so the result is bit-identical to the streamed one.
func (r *CampaignResult) retainedTaxonomy() (*analysis.TaxonomyAccum, *analysis.SurvivalAccum) {
	tax := analysis.NewTaxonomyAccum()
	surv := analysis.NewSurvivalAccum()
	for _, res := range []*testbed.Results{r.Random, r.Realistic} {
		nodes := make([]string, 0, len(res.PerNodeReports))
		for node := range res.PerNodeReports {
			nodes = append(nodes, node)
		}
		sort.Strings(nodes)
		for _, node := range nodes {
			tax.Nodes++
			surv.Observe(res.Name, node)
		}
		for i := range res.Reports {
			rep := &res.Reports[i]
			tax.Add(rep)
			surv.Add(rep.Testbed, rep.Node, rep)
		}
	}
	return tax, surv
}

// Taxonomy returns the phase/verdict failure split of the campaign.
// Streaming campaigns answer from the folded accumulator; retained
// campaigns fold the retained records on demand. Both planes yield
// bit-identical accumulators for the same seed.
func (r *CampaignResult) Taxonomy() *analysis.TaxonomyAccum {
	if r.Agg != nil {
		return r.Agg.Tax
	}
	tax, _ := r.retainedTaxonomy()
	return tax
}

// Survival returns the node-uptime survival accumulator (Kaplan-Meier
// event/censor bins plus the failure-interarrival histogram), on either
// aggregation plane.
func (r *CampaignResult) Survival() *analysis.SurvivalAccum {
	if r.Agg != nil {
		return r.Agg.Surv
	}
	_, surv := r.retainedTaxonomy()
	return surv
}

// countersMap merges both testbeds' per-client counters under prefixed keys.
func (r *CampaignResult) countersMap() map[string]*workload.Counters {
	counters := make(map[string]*workload.Counters)
	for k, v := range r.Realistic.Counters {
		counters["realistic/"+k] = v
	}
	for k, v := range r.Random.Counters {
		counters["random/"+k] = v
	}
	return counters
}

// Scalars computes the §6 scalar findings.
func (r *CampaignResult) Scalars() *analysis.Scalars {
	counters := r.countersMap()
	if r.Agg != nil {
		return r.Agg.Scalars(counters)
	}
	_, sys, _ := r.DataItems()
	return analysis.BuildScalars(r.Random.Reports, r.Realistic.Reports, counters, sys)
}

// Table4 runs the four scenario campaigns and assembles the dependability
// comparison. Each scenario observes the same virtual duration with its own
// derived seed, mirroring the paper's estimation of the four regimes from
// the same testbeds. The four campaigns are independent simulations and run
// concurrently; the column order (and every number in it) is the same as a
// sequential pass would produce.
func Table4(seed uint64, duration sim.Time) (*analysis.Table4, error) {
	scenarios := recovery.Scenarios()
	columns := make([]*analysis.Dependability, len(scenarios))
	errs := make([]error, len(scenarios))
	var wg sync.WaitGroup
	for i, sc := range scenarios {
		wg.Add(1)
		go func(i int, sc recovery.Scenario) {
			defer wg.Done()
			res, err := RunCampaign(CampaignConfig{
				Seed: seed, Duration: duration, Scenario: sc,
			})
			if err != nil {
				errs[i] = err
				return
			}
			columns[i] = res.Dependability()
		}(i, sc)
	}
	wg.Wait()
	t4 := &analysis.Table4{}
	for i := range scenarios {
		if errs[i] != nil {
			return nil, errs[i]
		}
		t4.Columns = append(t4.Columns, columns[i])
	}
	return t4, nil
}

// RedundantPiconets evaluates the paper's closing recommendation for
// critical deployments — redundant, overlapped piconets on top of SIRAs and
// masking — by running two independent masked campaigns and composing their
// dependability into a 1-out-of-2 deployment with the given failover time.
func RedundantPiconets(seed uint64, duration sim.Time, failover sim.Time) (*analysis.RedundantDeployment, error) {
	var a, b *CampaignResult
	var errA, errB error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		a, errA = RunCampaign(CampaignConfig{Seed: seed, Duration: duration, Scenario: ScenarioSIRAsMasking})
	}()
	b, errB = RunCampaign(CampaignConfig{Seed: seed ^ 0x5EC0DB, Duration: duration, Scenario: ScenarioSIRAsMasking})
	wg.Wait()
	if errA != nil {
		return nil, errA
	}
	if errB != nil {
		return nil, errB
	}
	return &analysis.RedundantDeployment{
		A:               a.Dependability(),
		B:               b.Dependability(),
		FailoverSeconds: failover.Seconds(),
	}, nil
}

// FixedExperimentConfig configures the Figure 3b special experiment.
type FixedExperimentConfig struct {
	Seed     uint64
	Duration sim.Time // the paper ran it for two months on Verde and Win
}

// RunFixedExperiment runs the fixed workload (N = 10000 packets,
// L_S = L_R = 1691 bytes) on Verde and Win and returns the packet-loss
// reports for the connection-age histogram.
func RunFixedExperiment(cfg FixedExperimentConfig) (*testbed.Results, error) {
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("btpan: non-positive experiment duration")
	}
	tb, err := testbed.New(testbed.Options{
		Name: "fixed", Seed: cfg.Seed ^ 0x66697865, Kind: core.WLFixed,
		Scenario: ScenarioSIRAs, Nodes: []string{"Verde", "Win"},
	})
	if err != nil {
		return nil, err
	}
	tb.Run(cfg.Duration)
	return tb.Results(), nil
}

// Fig3b histograms the fixed experiment's packet losses by connection age
// (packets sent before the loss).
func Fig3b(res *testbed.Results, binWidth, bins int) []analysis.Bar {
	return analysis.Fig3bConnectionAge(res.Reports, binWidth, bins)
}
