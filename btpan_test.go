package btpan

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
)

func TestCampaignConfigValidate(t *testing.T) {
	good := CampaignConfig{Seed: 1, Duration: Day, Scenario: ScenarioSIRAs}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Duration = 0
	if bad.Validate() == nil {
		t.Error("zero duration accepted")
	}
	bad = good
	bad.Scenario = 9
	if bad.Validate() == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := RunCampaign(bad); err == nil {
		t.Error("RunCampaign should reject a bad config")
	}
}

var (
	testCampaignOnce sync.Once
	testCampaignRes  *CampaignResult
	testCampaignErr  error
)

// testCampaign runs one small shared campaign for the facade tests. The
// result is cached: tests only read from it. -short (the CI race job)
// shrinks the observation window; every assertion on the result is
// qualitative, so it holds on the shorter campaign too.
func testCampaign(t *testing.T) *CampaignResult {
	t.Helper()
	testCampaignOnce.Do(func() {
		dur := 36 * Hour
		if testing.Short() {
			dur = 12 * Hour
		}
		testCampaignRes, testCampaignErr = RunCampaign(CampaignConfig{
			Seed: 5, Duration: dur, Scenario: ScenarioSIRAs,
		})
	})
	if testCampaignErr != nil {
		t.Fatal(testCampaignErr)
	}
	return testCampaignRes
}

func TestRunCampaignProducesData(t *testing.T) {
	res := testCampaign(t)
	u, s, tot := res.DataItems()
	if u == 0 || s == 0 || tot != u+s {
		t.Fatalf("DataItems = %d/%d/%d", u, s, tot)
	}
	if len(res.AllReports()) != u {
		t.Error("AllReports size mismatch")
	}
	if res.Random == nil || res.Realistic == nil {
		t.Fatal("missing testbed results")
	}
}

func TestCampaignDeterminism(t *testing.T) {
	run := func() (int, int) {
		res, err := RunCampaign(CampaignConfig{
			Seed: 9, Duration: 12 * Hour, Scenario: ScenarioSIRAs,
		})
		if err != nil {
			t.Fatal(err)
		}
		u, s, _ := res.DataItems()
		return u, s
	}
	au, as := run()
	bu, bs := run()
	if au != bu || as != bs {
		t.Errorf("same seed diverged: %d/%d vs %d/%d", au, as, bu, bs)
	}
}

func TestTable2FromCampaign(t *testing.T) {
	res := testCampaign(t)
	t2 := res.Table2()
	if t2.TotalFailures == 0 {
		t.Fatal("no failures related")
	}
	// Every row with evidence sums to ~100.
	for _, f := range core.UserFailures() {
		sum := 0.0
		for _, src := range core.SysSources() {
			c := t2.Rows[f][src]
			sum += c.Local + c.NAP
		}
		if t2.RowEvidence[f] > 0 && math.Abs(sum-100) > 0.5 {
			t.Errorf("%v row sums to %v", f, sum)
		}
	}
	// TOT column sums to ~100.
	tot := 0.0
	for _, f := range core.UserFailures() {
		tot += t2.Tot[f]
	}
	if math.Abs(tot-100) > 0.5 {
		t.Errorf("TOT column sums to %v", tot)
	}
	// HCI must be the dominant source, as in the paper (49.9 %). A single
	// 36-hour campaign leaves several points of seed noise on the HCI/SDP
	// margin (the paper integrated 18 months), so dominance is asserted on
	// shares averaged over a few seeds — cheap now that a campaign day
	// simulates in well under a second.
	shares := map[core.SysSource]float64{}
	seeds := []uint64{1, 2, 3, 4}
	for _, seed := range seeds {
		r, err := RunCampaign(CampaignConfig{
			Seed: seed, Duration: 36 * Hour, Scenario: ScenarioSIRAs,
		})
		if err != nil {
			t.Fatal(err)
		}
		st2 := r.Table2()
		for _, src := range core.SysSources() {
			shares[src] += st2.SourceShare(src) / float64(len(seeds))
		}
	}
	hci := shares[core.SrcHCI]
	if hci < 30 {
		t.Errorf("mean HCI share %.1f%% far below the paper's 49.9%%", hci)
	}
	for _, src := range core.SysSources() {
		if src != core.SrcHCI && shares[src] > hci {
			t.Errorf("%v (%.1f%% mean) outweighs HCI (%.1f%% mean)", src, shares[src], hci)
		}
	}
}

func TestTable3FromCampaign(t *testing.T) {
	res := testCampaign(t)
	t3 := res.Table3()
	if len(t3.Counts) == 0 {
		t.Fatal("no recoveries")
	}
	sum := 0.0
	for _, v := range t3.TotalRow {
		sum += v
	}
	if math.Abs(sum-100) > 0.5 {
		t.Errorf("total row sums to %v", sum)
	}
}

func TestDependabilityFromCampaign(t *testing.T) {
	res := testCampaign(t)
	d := res.Dependability()
	if d.Failures == 0 {
		t.Fatal("no failures")
	}
	if d.MTTF <= 0 || d.MTTR <= 0 {
		t.Errorf("MTTF/MTTR = %v/%v", d.MTTF, d.MTTR)
	}
	if d.Availability <= 0 || d.Availability >= 1 {
		t.Errorf("availability = %v", d.Availability)
	}
	if d.MinTTF > d.MaxTTF || d.MinTTR > d.MaxTTR {
		t.Error("min/max inverted")
	}
}

func TestSensitivityCurveShape(t *testing.T) {
	res := testCampaign(t)
	curve, knee := res.SensitivityCurve()
	if curve.Len() == 0 {
		t.Fatal("empty curve")
	}
	if !curve.Decreasing() {
		t.Error("tuple-count curve must be non-increasing")
	}
	if knee <= 0 || knee > 1200 {
		t.Errorf("knee at %v s", knee)
	}
}

func TestFig3aOrdering(t *testing.T) {
	res := testCampaign(t)
	bars := res.Fig3a()
	if len(bars) != 6 {
		t.Fatalf("%d bars", len(bars))
	}
	share := map[string]float64{}
	for _, b := range bars {
		share[b.Label] = b.Share
	}
	// The headline finding at campaign scale: single-slot types lose far
	// more per byte than five-slot types. (The full per-type ordering,
	// including DMx > DHx, is asserted deterministically at high volume in
	// baseband's TestPerByteLossOrderingMatchesFigure3a; a short campaign
	// has too few losses in the rare binomial tails for per-type tests.)
	oneSlot := share["DM1"] + share["DH1"]
	fiveSlot := share["DM5"] + share["DH5"]
	if !(oneSlot > fiveSlot) {
		t.Errorf("1-slot share (%.2f) should exceed 5-slot share (%.2f): %v",
			oneSlot, fiveSlot, share)
	}
}

func TestFig4BindFailuresOnlyOnDefectHosts(t *testing.T) {
	res := testCampaign(t)
	for _, row := range res.Fig4() {
		bind := row.Shares[core.UFBindFailed]
		defect := row.Node == "Azzurro" || row.Node == "Win"
		if !defect && bind > 0 {
			t.Errorf("%s shows bind failures (%.1f%%) without the HAL defect", row.Node, bind)
		}
	}
}

func TestFixedExperiment(t *testing.T) {
	dur := 4 * Day
	if testing.Short() {
		dur = Day
	}
	res, err := RunFixedExperiment(FixedExperimentConfig{Seed: 5, Duration: dur})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerNodeReports) != 2 {
		t.Fatalf("fixed experiment ran on %d nodes, want 2 (Verde, Win)", len(res.PerNodeReports))
	}
	losses := 0
	for _, r := range res.Reports {
		if r.Failure == core.UFPacketLoss && !r.Masked {
			losses++
		}
	}
	if losses == 0 {
		t.Fatal("fixed experiment produced no packet losses")
	}
	bars := Fig3b(res, 1000, 10)
	// Infant mortality: the first bin dominates the last.
	if !(bars[0].Share > bars[len(bars)-1].Share) {
		t.Errorf("young bin %.1f%% should dominate old bin %.1f%%",
			bars[0].Share, bars[len(bars)-1].Share)
	}
	if _, err := RunFixedExperiment(FixedExperimentConfig{}); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestScalarsFromCampaign(t *testing.T) {
	res := testCampaign(t)
	s := res.Scalars()
	if s.RandomSharePct <= 50 {
		t.Errorf("random workload share %.1f%% — the random WL should dominate (paper: 84%%)",
			s.RandomSharePct)
	}
	if s.UserReports == 0 {
		t.Error("no user reports counted")
	}
}

func TestMaskedScenarioImprovesMTTF(t *testing.T) {
	base := testCampaign(t)
	masked, err := RunCampaign(CampaignConfig{
		Seed: 5, Duration: 36 * Hour, Scenario: ScenarioSIRAsMasking,
	})
	if err != nil {
		t.Fatal(err)
	}
	db := base.Dependability()
	dm := masked.Dependability()
	if dm.MTTF <= db.MTTF {
		t.Errorf("masking should raise MTTF: %v -> %v", db.MTTF, dm.MTTF)
	}
	if dm.MaskingPct <= 0 {
		t.Error("masked campaign reports no masking")
	}
}
