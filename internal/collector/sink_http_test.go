package collector

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/sim"
)

// httpGet fetches one URL and returns status + body.
func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestSinkHTTP walks the whole observability surface of a live multi-tenant
// sink: probes, metrics, campaign listing, live mid-campaign tables, HTTP
// registration, the partial export, and the drain flip of /readyz.
func TestSinkHTTP(t *testing.T) {
	batches := tpBatches(24)
	camp := CampaignID{Seed: 8, Duration: 24 * sim.Hour, Scenario: 1}
	sink, err := NewSink(SinkConfig{
		Addr: "127.0.0.1:0",
		Keyspaces: []KeyspaceConfig{
			{Key: "exp", Campaign: camp, Spec: tpSpec(), ScenarioName: "SIR-as-masking"},
		},
		SpecResolver: func(c CampaignID, testbeds []string) (analysis.StreamSpec, error) {
			if len(testbeds) == 0 {
				return tpSpec(), nil
			}
			return analysis.SubSpec(tpSpec(), testbeds)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	srv := httptest.NewServer(sink.Handler())
	defer srv.Close()

	if code, body := httpGet(t, srv.URL+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("healthz: %d %q", code, body)
	}
	if code, _ := httpGet(t, srv.URL+"/readyz"); code != 200 {
		t.Errorf("readyz before drain: %d", code)
	}

	// Metrics and campaign listing know the configured keyspace.
	code, body := httpGet(t, srv.URL+"/metricsz")
	if code != 200 {
		t.Fatalf("metricsz: %d", code)
	}
	var m SinkMetrics
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("metricsz decode: %v", err)
	}
	if len(m.Keyspaces) != 1 || m.Keyspaces[0].Key != "exp" {
		t.Fatalf("metricsz keyspaces: %+v", m.Keyspaces)
	}
	code, body = httpGet(t, srv.URL+"/campaigns")
	var kms []KeyspaceMetrics
	if code != 200 || json.Unmarshal([]byte(body), &kms) != nil || len(kms) != 1 {
		t.Fatalf("campaigns listing: %d %q", code, body)
	}

	// Live tables mid-campaign: incomplete, but already rendering.
	code, body = httpGet(t, srv.URL+"/campaigns/tables?keyspace=exp")
	if code != 200 {
		t.Fatalf("tables: %d %q", code, body)
	}
	var lt LiveTables
	if err := json.Unmarshal([]byte(body), &lt); err != nil {
		t.Fatal(err)
	}
	if lt.Complete || lt.Table2 == "" || lt.Table4 == nil || lt.Table4.Scenario != "SIR-as-masking" {
		t.Errorf("mid-campaign tables: complete=%v scenario=%q", lt.Complete, lt.Table4.Scenario)
	}
	if code, _ := httpGet(t, srv.URL+"/campaigns/tables?keyspace=nope"); code != 404 {
		t.Errorf("tables for unknown keyspace: %d, want 404", code)
	}

	// Partial before completion: known keyspace, not ready yet.
	if code, _ := httpGet(t, srv.URL+"/campaigns/partial?keyspace=exp"); code != 409 {
		t.Errorf("partial before completion: %d, want 409", code)
	}
	if code, _ := httpGet(t, srv.URL+"/campaigns/partial?keyspace=nope"); code != 404 {
		t.Errorf("partial for unknown keyspace: %d, want 404", code)
	}

	// HTTP registration through the SpecResolver.
	reg := `{"key":"new","campaign":{"seed":9,"duration":86400000000000,"scenario":2},"testbeds":["alpha"]}`
	resp, err := http.Post(srv.URL+"/campaigns", "application/json", strings.NewReader(reg))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d", resp.StatusCode)
	}
	code, body = httpGet(t, srv.URL+"/campaigns")
	if json.Unmarshal([]byte(body), &kms); len(kms) != 2 {
		t.Fatalf("campaigns after register: %d %q", code, body)
	}
	// Duplicate registration is refused.
	resp, err = http.Post(srv.URL+"/campaigns", "application/json", strings.NewReader(reg))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate register: %d, want 409", resp.StatusCode)
	}

	// Run the configured campaign to completion; tables flip to complete and
	// the partial export appears.
	agents := ksAgents(t, sink.Addr(), "exp", camp, batches)
	finishKSAgents(t, agents, 30*time.Second)
	if _, err := sink.WaitKeyspace("exp", 30*time.Second); err != nil {
		t.Fatal(err)
	}
	code, body = httpGet(t, srv.URL+"/campaigns/tables?keyspace=exp")
	if code != 200 || json.Unmarshal([]byte(body), &lt) != nil || !lt.Complete {
		t.Errorf("tables after completion: %d complete=%v", code, lt.Complete)
	}
	if lt.MTTFCI.N == 0 || lt.Reports == 0 {
		t.Errorf("completed tables lack data: %+v", lt)
	}
	code, body = httpGet(t, srv.URL+"/campaigns/partial?keyspace=exp")
	if code != 200 {
		t.Fatalf("partial after completion: %d %q", code, body)
	}
	var p Partial
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(p.Shard.Testbeds) != "[alpha beta]" {
		t.Errorf("partial testbeds: %v", p.Shard.Testbeds)
	}

	// Drain flips readiness.
	if err := sink.Drain(); err != nil {
		t.Fatal(err)
	}
	if code, _ := httpGet(t, srv.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz after drain: %d, want 503", code)
	}
}
