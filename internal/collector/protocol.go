// Package collector implements the paper's collection infrastructure: a
// LogAnalyzer daemon per BT node that periodically (i) extracts failure data
// from the node's Test Log and System Log, (ii) filters it so only
// significant data travels, and (iii) ships it to a central repository,
// plus the repository server itself.
//
// Transport is TCP with length-prefixed frames, so the pieces run as real
// daemons (see cmd/btcampaign and examples/campaign) and are exercised over
// loopback in tests. The default wire encoding is a compact binary format
// (varints, per-batch string interning, pooled buffers — marshalling cost
// and frame size are what bound month-scale campaigns); JSON remains
// available as a debug/compatibility codec, selected per frame by a codec
// tag, and a cross-codec equivalence test pins that both decode to the same
// records.
//
// The repository runs on either collection plane: retained
// (NewRepository — every record kept, for raw-record analysis) or
// streaming (NewStreamingRepository — batches fold into the running
// analysis.Aggregates as they arrive, with batch watermarks and 1-based
// sequence numbers keeping the fold order exact across reordered
// connections, so repository memory is bounded by the senders' flush
// cadence rather than the campaign length). Batches lost in transit are
// surfaced, never swallowed: rejected batches count in
// Repository.Rejected and unfilled sequence gaps in Aggregates.SeqGaps.
//
// The distributed collection plane (Agent, Sink and the control-frame
// session protocol in transport.go; cmd/btagent and cmd/btsink wrap them
// as daemons) runs the same machinery across real OS processes with
// at-least-once delivery: per-stream sequence cursors, cumulative
// acknowledgements, reconnect-and-resume handshakes, go-back-N
// retransmission, seeded fault injection for measuring the plane under an
// adversarial network, and durable sink checkpoints for crash recovery.
// The wire format — frame layout, codec tag/kind byte, varint/zigzag
// encoding, string interning, watermark/sequence semantics, the resume
// handshake and the loss-accounting rules — is specified normatively in
// PROTOCOL.md at the repository root; OPERATIONS.md documents deployments.
package collector

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/sim"
)

// Batch is one shipment from a LogAnalyzer to the repository.
type Batch struct {
	Node    string             `json:"node"`
	Testbed string             `json:"testbed"`
	Reports []core.UserReport  `json:"reports,omitempty"`
	Entries []core.SystemEntry `json:"entries,omitempty"`
	// Watermark is the sender's promise that every record of this node up
	// to that virtual instant has now been shipped; a streaming repository
	// folds records once every node's watermark has passed them.
	Watermark sim.Time `json:"watermark,omitempty"`
	// Seq numbers a sender's batches from 1: each flush rides its own TCP
	// connection, so consecutive batches can arrive reordered, and the
	// streaming repository uses the sequence to apply them in send order
	// (0 disables sequencing for hand-built batches).
	Seq uint64 `json:"seq,omitempty"`
}

// Codec selects the wire encoding of a frame's payload.
type Codec byte

// Wire codecs. The zero value is the production binary encoding, so codec
// fields default to it; JSON stays available for debugging with external
// tools and as a compatibility escape hatch.
const (
	CodecBinary Codec = 0
	CodecJSON   Codec = 1
)

// String names the codec.
func (c Codec) String() string {
	switch c {
	case CodecBinary:
		return "binary"
	case CodecJSON:
		return "json"
	default:
		return fmt.Sprintf("Codec(%d)", byte(c))
	}
}

// ParseCodec maps a flag value to a codec.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "binary", "":
		return CodecBinary, nil
	case "json":
		return CodecJSON, nil
	default:
		return 0, fmt.Errorf("collector: unknown codec %q (want binary or json)", s)
	}
}

// maxBatchBytes bounds a wire batch (guards the repository against garbage
// or runaway peers).
const maxBatchBytes = 64 << 20

// bufPool recycles encode/decode buffers: the hot path of a campaign ships
// thousands of batches, and per-frame slab allocation would dominate the
// collection plane's profile.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// WriteBatch frames and writes one batch with the default (binary) codec.
func WriteBatch(w io.Writer, b *Batch) error {
	return WriteBatchCodec(w, b, CodecBinary)
}

// WriteBatchCodec frames and writes one batch: a 4-byte big-endian length
// prefix, a codec tag byte, and the payload. The whole frame goes out in
// one Write from a pooled buffer.
func WriteBatchCodec(w io.Writer, b *Batch, codec Codec) error {
	bufp := bufPool.Get().(*[]byte)
	defer bufPool.Put(bufp)
	frame := (*bufp)[:0]
	frame = append(frame, 0, 0, 0, 0, byte(codec)) // header backfilled below

	var err error
	switch codec {
	case CodecBinary:
		frame = appendBinaryBatch(frame, b)
	case CodecJSON:
		var blob []byte
		if blob, err = json.Marshal(b); err != nil {
			return fmt.Errorf("collector: marshal batch: %w", err)
		}
		frame = append(frame, blob...)
	default:
		return fmt.Errorf("collector: unknown codec %d", codec)
	}
	n := len(frame) - 4 // codec byte + payload
	if n > maxBatchBytes {
		return fmt.Errorf("collector: batch of %d bytes exceeds limit", n)
	}
	binary.BigEndian.PutUint32(frame[:4], uint32(n))
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("collector: write frame: %w", err)
	}
	*bufp = frame[:0]
	return nil
}

// ReadBatch reads one framed batch, dispatching on its codec tag. io.EOF is
// returned unchanged when the stream ends cleanly between frames.
func ReadBatch(r io.Reader) (*Batch, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("collector: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 || n > maxBatchBytes {
		return nil, fmt.Errorf("collector: implausible frame length %d", n)
	}
	if _, err := io.ReadFull(r, hdr[4:5]); err != nil {
		return nil, fmt.Errorf("collector: read codec tag: %w", err)
	}
	bufp := bufPool.Get().(*[]byte)
	defer bufPool.Put(bufp)
	if cap(*bufp) < int(n)-1 {
		*bufp = make([]byte, 0, int(n)-1)
	}
	blob := (*bufp)[:int(n)-1]
	if _, err := io.ReadFull(r, blob); err != nil {
		return nil, fmt.Errorf("collector: read frame body: %w", err)
	}
	defer func() { *bufp = blob[:0] }()
	switch Codec(hdr[4]) {
	case CodecBinary:
		return decodeBinaryBatch(blob)
	case CodecJSON:
		var b Batch
		if err := json.Unmarshal(blob, &b); err != nil {
			return nil, fmt.Errorf("collector: decode batch: %w", err)
		}
		return &b, nil
	default:
		return nil, fmt.Errorf("collector: unknown frame codec %d", hdr[4])
	}
}

// The binary payload layout (version 2):
//
//	uvarint  version
//	uvarint  string-table length, then per string: uvarint len + bytes
//	uvarint  node index, testbed index
//	varint   watermark
//	uvarint  sequence number
//	uvarint  report count, then the reports
//	uvarint  entry count, then the entries
//
// All integers are varints (signed ones zigzag-encoded); strings are
// interned per batch, which collapses the node/testbed names and repeated
// daemon messages that dominate JSON frames.
//
// Version 2 (PR 10) appends one taxonomy byte per report after TTR: the
// protocol phase in bits 0–3 and the transience verdict in bits 4–5.
// Version 1 frames — produced before the taxonomy plane existed — decode
// losslessly with both tags left at their zero values; out-of-range phase
// or verdict bits in a v2 frame are rejected loudly, never clamped.
const (
	binaryVersion       = 2
	legacyBinaryVersion = 1
)

// stringTable interns strings in first-appearance order during encoding.
type stringTable struct {
	index map[string]uint64
	list  []string
}

func (t *stringTable) intern(s string) uint64 {
	if i, ok := t.index[s]; ok {
		return i
	}
	i := uint64(len(t.list))
	t.index[s] = i
	t.list = append(t.list, s)
	return i
}

// Integers go out via binary.AppendUvarint / binary.AppendVarint (the
// latter zigzag-encodes, so the signed record fields cost one byte while
// small).

// appendBinaryBatch encodes b after the frame header.
func appendBinaryBatch(frame []byte, b *Batch) []byte {
	tab := &stringTable{index: make(map[string]uint64, 8)}
	tab.intern(b.Node)
	tab.intern(b.Testbed)
	for i := range b.Reports {
		tab.intern(b.Reports[i].Testbed)
		tab.intern(b.Reports[i].Node)
	}
	for i := range b.Entries {
		tab.intern(b.Entries[i].Testbed)
		tab.intern(b.Entries[i].Node)
		tab.intern(b.Entries[i].Detail)
	}

	frame = binary.AppendUvarint(frame, binaryVersion)
	frame = binary.AppendUvarint(frame, uint64(len(tab.list)))
	for _, s := range tab.list {
		frame = binary.AppendUvarint(frame, uint64(len(s)))
		frame = append(frame, s...)
	}
	frame = binary.AppendUvarint(frame, tab.intern(b.Node))
	frame = binary.AppendUvarint(frame, tab.intern(b.Testbed))
	frame = binary.AppendVarint(frame, int64(b.Watermark))
	frame = binary.AppendUvarint(frame, b.Seq)

	frame = binary.AppendUvarint(frame, uint64(len(b.Reports)))
	for i := range b.Reports {
		r := &b.Reports[i]
		frame = binary.AppendVarint(frame, int64(r.At))
		frame = binary.AppendUvarint(frame, tab.intern(r.Testbed))
		frame = binary.AppendUvarint(frame, tab.intern(r.Node))
		frame = binary.AppendVarint(frame, int64(r.Failure))
		frame = binary.AppendVarint(frame, int64(r.Workload))
		frame = binary.AppendVarint(frame, int64(r.App))
		frame = binary.AppendVarint(frame, int64(r.Packet))
		frame = binary.AppendVarint(frame, int64(r.SentPkts))
		frame = binary.AppendVarint(frame, int64(r.RecvdPkts))
		frame = binary.AppendVarint(frame, int64(r.CycleIdx))
		var flags byte
		if r.SDPFlag {
			flags |= 1
		}
		if r.ScanFlag {
			flags |= 2
		}
		if r.Masked {
			flags |= 4
		}
		if r.Recovered {
			flags |= 8
		}
		frame = append(frame, flags)
		frame = binary.LittleEndian.AppendUint64(frame, math.Float64bits(r.DistanceM))
		frame = binary.AppendVarint(frame, int64(r.IdleBefore))
		frame = binary.AppendUvarint(frame, r.ConnID)
		frame = binary.AppendVarint(frame, int64(r.Recovery))
		frame = binary.AppendVarint(frame, int64(r.TTR))
		frame = append(frame, byte(r.Phase)&0x0F|byte(r.Verdict)<<4)
	}

	frame = binary.AppendUvarint(frame, uint64(len(b.Entries)))
	for i := range b.Entries {
		e := &b.Entries[i]
		frame = binary.AppendVarint(frame, int64(e.At))
		frame = binary.AppendUvarint(frame, tab.intern(e.Testbed))
		frame = binary.AppendUvarint(frame, tab.intern(e.Node))
		frame = binary.AppendVarint(frame, int64(e.Source))
		frame = binary.AppendVarint(frame, int64(e.Code))
		frame = binary.AppendUvarint(frame, tab.intern(e.Detail))
		frame = binary.AppendUvarint(frame, e.ConnID)
	}
	return frame
}

// preallocHint bounds a wire-declared element count by the number of
// minimal-size elements the remaining payload bytes could encode.
func preallocHint(declared uint64, remaining, minSize int) uint64 {
	if remaining < 0 {
		return 0
	}
	if possible := uint64(remaining / minSize); declared > possible {
		return possible
	}
	return declared
}

// binReader decodes the binary payload with bounds checking.
type binReader struct {
	b   []byte
	off int
	err error
}

func (r *binReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("collector: truncated or corrupt binary batch at %s (offset %d)", what, r.off)
	}
}

func (r *binReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) varint(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) byte(what string) byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail(what)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *binReader) f64(what string) float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *binReader) str(table []string, what string) string {
	i := r.uvarint(what)
	if r.err != nil {
		return ""
	}
	if i >= uint64(len(table)) {
		r.fail(what + " string index")
		return ""
	}
	return table[i]
}

// decodeBinaryBatch decodes the payload into a fresh Batch (the input
// buffer is pooled; string() copies keep no reference to it).
func decodeBinaryBatch(blob []byte) (*Batch, error) {
	r := &binReader{b: blob}
	v := r.uvarint("version")
	if r.err == nil && v != binaryVersion && v != legacyBinaryVersion {
		return nil, fmt.Errorf("collector: unsupported binary batch version %d", v)
	}
	nstr := r.uvarint("string table length")
	if r.err == nil && nstr > uint64(len(blob)) {
		r.fail("string table length")
	}
	// Preallocations are capped by what the remaining bytes could possibly
	// hold (1 byte per table entry, ~20/7 bytes per minimal record), so a
	// garbage count in a large frame cannot demand gigabytes up front —
	// append grows organically if a legitimate batch beats the estimate.
	table := make([]string, 0, preallocHint(nstr, len(blob)-r.off, 1))
	for i := uint64(0); i < nstr && r.err == nil; i++ {
		l := r.uvarint("string length")
		if r.err != nil {
			break
		}
		if r.off+int(l) > len(blob) {
			r.fail("string bytes")
			break
		}
		table = append(table, string(blob[r.off:r.off+int(l)]))
		r.off += int(l)
	}

	b := &Batch{}
	b.Node = r.str(table, "node")
	b.Testbed = r.str(table, "testbed")
	b.Watermark = sim.Time(r.varint("watermark"))
	b.Seq = r.uvarint("sequence")

	nrep := r.uvarint("report count")
	if r.err == nil && nrep > uint64(len(blob)) {
		r.fail("report count")
	}
	if r.err == nil && nrep > 0 {
		b.Reports = make([]core.UserReport, 0, preallocHint(nrep, len(blob)-r.off, 20))
	}
	for i := uint64(0); i < nrep && r.err == nil; i++ {
		var rec core.UserReport
		rec.At = sim.Time(r.varint("report at"))
		rec.Testbed = r.str(table, "report testbed")
		rec.Node = r.str(table, "report node")
		rec.Failure = core.UserFailure(r.varint("failure"))
		rec.Workload = core.WorkloadKind(r.varint("workload"))
		rec.App = core.AppKind(r.varint("app"))
		rec.Packet = core.PacketType(r.varint("packet"))
		rec.SentPkts = int(r.varint("sent"))
		rec.RecvdPkts = int(r.varint("recvd"))
		rec.CycleIdx = int(r.varint("cycle"))
		flags := r.byte("flags")
		rec.SDPFlag = flags&1 != 0
		rec.ScanFlag = flags&2 != 0
		rec.Masked = flags&4 != 0
		rec.Recovered = flags&8 != 0
		rec.DistanceM = r.f64("distance")
		rec.IdleBefore = sim.Time(r.varint("idle"))
		rec.ConnID = r.uvarint("conn id")
		rec.Recovery = core.RecoveryAction(r.varint("recovery"))
		rec.TTR = sim.Time(r.varint("ttr"))
		if v >= binaryVersion {
			tax := r.byte("taxonomy")
			rec.Phase = core.FailurePhase(tax & 0x0F)
			rec.Verdict = core.TransienceVerdict(tax >> 4)
			if r.err == nil && (int(rec.Phase) > core.NumFailurePhases ||
				int(rec.Verdict) > core.NumTransienceVerdicts) {
				return nil, fmt.Errorf("collector: corrupt taxonomy byte 0x%02x (phase %d, verdict %d) in binary batch",
					tax, rec.Phase, rec.Verdict)
			}
		}
		if r.err == nil {
			b.Reports = append(b.Reports, rec)
		}
	}

	nent := r.uvarint("entry count")
	if r.err == nil && nent > uint64(len(blob)) {
		r.fail("entry count")
	}
	if r.err == nil && nent > 0 {
		b.Entries = make([]core.SystemEntry, 0, preallocHint(nent, len(blob)-r.off, 7))
	}
	for i := uint64(0); i < nent && r.err == nil; i++ {
		var rec core.SystemEntry
		rec.At = sim.Time(r.varint("entry at"))
		rec.Testbed = r.str(table, "entry testbed")
		rec.Node = r.str(table, "entry node")
		rec.Source = core.SysSource(r.varint("source"))
		rec.Code = core.ErrorCode(r.varint("code"))
		rec.Detail = r.str(table, "detail")
		rec.ConnID = r.uvarint("entry conn id")
		if r.err == nil {
			b.Entries = append(b.Entries, rec)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(blob) {
		return nil, fmt.Errorf("collector: %d trailing bytes after binary batch", len(blob)-r.off)
	}
	return b, nil
}
