// Package collector implements the paper's collection infrastructure: a
// LogAnalyzer daemon per BT node that periodically (i) extracts failure data
// from the node's Test Log and System Log, (ii) filters it so only
// significant data travels, and (iii) ships it to a central repository,
// plus the repository server itself.
//
// Transport is TCP with length-prefixed JSON batches, so the pieces run as
// real daemons (see cmd/btcampaign and examples/campaign) and are exercised
// over loopback in tests.
package collector

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
)

// Batch is one shipment from a LogAnalyzer to the repository.
type Batch struct {
	Node    string             `json:"node"`
	Testbed string             `json:"testbed"`
	Reports []core.UserReport  `json:"reports,omitempty"`
	Entries []core.SystemEntry `json:"entries,omitempty"`
}

// maxBatchBytes bounds a wire batch (guards the repository against garbage
// or runaway peers).
const maxBatchBytes = 64 << 20

// WriteBatch frames and writes one batch: a 4-byte big-endian length prefix
// followed by the JSON payload.
func WriteBatch(w io.Writer, b *Batch) error {
	blob, err := json.Marshal(b)
	if err != nil {
		return fmt.Errorf("collector: marshal batch: %w", err)
	}
	if len(blob) > maxBatchBytes {
		return fmt.Errorf("collector: batch of %d bytes exceeds limit", len(blob))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(blob)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("collector: write frame header: %w", err)
	}
	if _, err := w.Write(blob); err != nil {
		return fmt.Errorf("collector: write frame body: %w", err)
	}
	return nil
}

// ReadBatch reads one framed batch. io.EOF is returned unchanged when the
// stream ends cleanly between frames.
func ReadBatch(r io.Reader) (*Batch, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("collector: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxBatchBytes {
		return nil, fmt.Errorf("collector: implausible frame length %d", n)
	}
	blob := make([]byte, n)
	if _, err := io.ReadFull(r, blob); err != nil {
		return nil, fmt.Errorf("collector: read frame body: %w", err)
	}
	var b Batch
	if err := json.Unmarshal(blob, &b); err != nil {
		return nil, fmt.Errorf("collector: decode batch: %w", err)
	}
	return &b, nil
}
