package collector

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// FuzzDecode throws arbitrary byte streams at the frame reader — the exact
// surface a hostile or corrupted peer reaches over TCP. The decoder must
// never panic, never hang, and never allocate absurdly off a garbage length
// field; and whatever it does accept must re-encode and re-decode to the
// same records (the round-trip law that keeps the streaming repository's
// fold exact).
//
// The seed corpus is real frames: the full-field batch of the codec suite,
// a minimal empty batch, and a watermark-only heartbeat, each in both wire
// codecs, plus truncations and tag corruptions of them.
func FuzzDecode(f *testing.F) {
	seeds := []*Batch{
		fullBatch(),
		{Node: "n", Testbed: "t"},
		{Node: "Verde", Testbed: "random", Watermark: 3 * sim.Hour, Seq: 9},
		{Node: "W", Testbed: "realistic", Seq: 1, Entries: []core.SystemEntry{
			{At: -5, Node: "W", Source: core.SrcHCI, Code: core.CodeHCICommandTimeout, Detail: ""},
		}},
	}
	for _, b := range seeds {
		for _, codec := range []Codec{CodecBinary, CodecJSON} {
			var buf bytes.Buffer
			if err := WriteBatchCodec(&buf, b, codec); err != nil {
				f.Fatal(err)
			}
			frame := buf.Bytes()
			f.Add(frame)
			// Truncated and tag-corrupted variants steer the fuzzer into
			// the decoder's error paths from the first generation on.
			f.Add(frame[:len(frame)/2])
			mangled := append([]byte(nil), frame...)
			mangled[4] ^= 0xFF
			f.Add(mangled)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := ReadBatch(bytes.NewReader(data))
		if err != nil {
			return // rejected garbage is the expected outcome
		}
		// Accepted frames must satisfy the round-trip law under the
		// canonical binary codec.
		var buf bytes.Buffer
		if err := WriteBatchCodec(&buf, b, CodecBinary); err != nil {
			t.Fatalf("re-encode of accepted batch failed: %v", err)
		}
		again, err := ReadBatch(&buf)
		if err != nil {
			t.Fatalf("re-decode of accepted batch failed: %v", err)
		}
		if !batchEqual(b, again) {
			t.Fatalf("round-trip changed the batch:\nfirst  %+v\nsecond %+v", b, again)
		}
	})
}

// batchEqual compares decoded batches, treating empty and nil record slices
// as equal (the JSON codec's omitempty drops empty slices, the binary codec
// never materializes them).
func batchEqual(a, b *Batch) bool {
	if a.Node != b.Node || a.Testbed != b.Testbed ||
		a.Watermark != b.Watermark || a.Seq != b.Seq {
		return false
	}
	if len(a.Reports) != len(b.Reports) || len(a.Entries) != len(b.Entries) {
		return false
	}
	for i := range a.Reports {
		if a.Reports[i] != b.Reports[i] {
			return false
		}
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			return false
		}
	}
	return true
}

// TestFuzzSeedCorpusRoundTrips runs the fuzz body over the seed corpus
// directly, so the round-trip law is enforced on every `go test` run even
// without -fuzz.
func TestFuzzSeedCorpusRoundTrips(t *testing.T) {
	for _, codec := range []Codec{CodecBinary, CodecJSON} {
		var buf bytes.Buffer
		in := fullBatch()
		if err := WriteBatchCodec(&buf, in, codec); err != nil {
			t.Fatal(err)
		}
		out, err := ReadBatch(&buf)
		if err != nil {
			t.Fatalf("%v decode: %v", codec, err)
		}
		if !batchEqual(in, out) {
			t.Errorf("%v: decoded batch diverges from input", codec)
		}
		if !reflect.DeepEqual(in.Reports, out.Reports) || !reflect.DeepEqual(in.Entries, out.Entries) {
			t.Errorf("%v: record slices diverge", codec)
		}
	}
	// The reader must also cleanly reject an empty stream and a bare header.
	if _, err := ReadBatch(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
	if _, err := ReadBatch(bytes.NewReader([]byte{0, 0, 0})); err == nil {
		t.Error("3-byte stream decoded without error")
	}
}
