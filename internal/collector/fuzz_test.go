package collector

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// FuzzDecode throws arbitrary byte streams at the frame reader — the exact
// surface a hostile or corrupted peer reaches over TCP. The decoder must
// never panic, never hang, and never allocate absurdly off a garbage length
// field; and whatever it does accept must re-encode and re-decode to the
// same records (the round-trip law that keeps the streaming repository's
// fold exact).
//
// The seed corpus is real frames: the full-field batch of the codec suite,
// a minimal empty batch, and a watermark-only heartbeat, each in both wire
// codecs, plus truncations and tag corruptions of them.
func FuzzDecode(f *testing.F) {
	seeds := []*Batch{
		fullBatch(),
		{Node: "n", Testbed: "t"},
		{Node: "Verde", Testbed: "random", Watermark: 3 * sim.Hour, Seq: 9},
		{Node: "W", Testbed: "realistic", Seq: 1, Entries: []core.SystemEntry{
			{At: -5, Node: "W", Source: core.SrcHCI, Code: core.CodeHCICommandTimeout, Detail: ""},
		}},
	}
	for _, b := range seeds {
		for _, codec := range []Codec{CodecBinary, CodecJSON} {
			var buf bytes.Buffer
			if err := WriteBatchCodec(&buf, b, codec); err != nil {
				f.Fatal(err)
			}
			frame := buf.Bytes()
			f.Add(frame)
			// Truncated and tag-corrupted variants steer the fuzzer into
			// the decoder's error paths from the first generation on.
			f.Add(frame[:len(frame)/2])
			mangled := append([]byte(nil), frame...)
			mangled[4] ^= 0xFF
			f.Add(mangled)
		}
		// The pre-taxonomy wire format: version-1 frames must keep decoding
		// (tags zeroed), so the fuzzer starts from both codec versions.
		f.Add(encodeV1Frame(b))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := ReadBatch(bytes.NewReader(data))
		if err != nil {
			return // rejected garbage is the expected outcome
		}
		// Accepted frames must satisfy the round-trip law under the
		// canonical binary codec.
		var buf bytes.Buffer
		if err := WriteBatchCodec(&buf, b, CodecBinary); err != nil {
			t.Fatalf("re-encode of accepted batch failed: %v", err)
		}
		again, err := ReadBatch(&buf)
		if err != nil {
			t.Fatalf("re-decode of accepted batch failed: %v", err)
		}
		if !batchEqual(b, again) {
			t.Fatalf("round-trip changed the batch:\nfirst  %+v\nsecond %+v", b, again)
		}
	})
}

// batchEqual compares decoded batches, treating empty and nil record slices
// as equal (the JSON codec's omitempty drops empty slices, the binary codec
// never materializes them).
func batchEqual(a, b *Batch) bool {
	if a.Node != b.Node || a.Testbed != b.Testbed ||
		a.Watermark != b.Watermark || a.Seq != b.Seq {
		return false
	}
	if len(a.Reports) != len(b.Reports) || len(a.Entries) != len(b.Entries) {
		return false
	}
	for i := range a.Reports {
		if a.Reports[i] != b.Reports[i] {
			return false
		}
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			return false
		}
	}
	return true
}

// FuzzControlFrame throws arbitrary byte streams at the control-plane
// surface of ReadFrame — the hello/resume/ack/done/fin/reject JSON frames a
// malformed or hostile peer can send a sink or an agent. The decoder must
// never panic or hang; whatever it accepts must carry the right payload for
// its kind byte, and accepted control frames must survive a re-encode with
// writeControl and re-decode to the same kind (the handshake's round-trip
// law).
//
// The seed corpus is every control frame the real session writes, plus
// truncations and kind-byte corruptions of each.
func FuzzControlFrame(f *testing.F) {
	id := CampaignID{Seed: 7, Duration: 24 * sim.Hour, Scenario: 3}
	seeds := []struct {
		kind    byte
		payload any
	}{
		{frameHello, &Hello{Campaign: id, Testbed: "random", Nodes: []string{"a1", "napA"}}},
		{frameResume, &Resume{Cursors: []StreamCursor{{Node: "a1", Seq: 12, Watermark: 3 * sim.Hour}}}},
		{frameAck, &Ack{Node: "a1", Seq: 12, Watermark: 3 * sim.Hour}},
		{frameDone, &Done{Testbed: "random", Duration: 24 * sim.Hour,
			Final: []StreamCursor{{Node: "a1", Seq: 24}}}},
		{frameFin, &Fin{}},
		{frameReject, &Reject{Reason: "campaign mismatch"}},
	}
	for _, s := range seeds {
		var buf bytes.Buffer
		if err := writeControl(&buf, s.kind, s.payload); err != nil {
			f.Fatal(err)
		}
		frame := buf.Bytes()
		f.Add(frame)
		f.Add(frame[:len(frame)/2])
		mangled := append([]byte(nil), frame...)
		mangled[4] ^= 0xFF
		f.Add(mangled)
		empty := append([]byte(nil), frame[:5]...) // kind with no payload
		f.Add(empty)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return // rejected garbage is the expected outcome
		}
		// An accepted frame must carry the payload its kind promises.
		var rekind byte
		var payload any
		switch fr.Kind {
		case KindBatch:
			return // FuzzDecode owns the data plane
		case KindHello:
			if fr.Hello == nil {
				t.Fatal("accepted hello frame with nil payload")
			}
			rekind, payload = frameHello, fr.Hello
		case KindResume:
			if fr.Resume == nil {
				t.Fatal("accepted resume frame with nil payload")
			}
			rekind, payload = frameResume, fr.Resume
		case KindAck:
			if fr.Ack == nil {
				t.Fatal("accepted ack frame with nil payload")
			}
			rekind, payload = frameAck, fr.Ack
		case KindDone:
			if fr.Done == nil {
				t.Fatal("accepted done frame with nil payload")
			}
			rekind, payload = frameDone, fr.Done
		case KindFin:
			rekind, payload = frameFin, &Fin{}
		case KindReject:
			if fr.Reject == nil {
				t.Fatal("accepted reject frame with nil payload")
			}
			rekind, payload = frameReject, fr.Reject
		default:
			t.Fatalf("accepted frame of unknown kind %d", fr.Kind)
		}
		var buf bytes.Buffer
		if err := writeControl(&buf, rekind, payload); err != nil {
			t.Fatalf("re-encode of accepted control frame failed: %v", err)
		}
		again, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-decode of accepted control frame failed: %v", err)
		}
		if again.Kind != fr.Kind {
			t.Fatalf("round-trip changed the frame kind: %d -> %d", fr.Kind, again.Kind)
		}
	})
}

// TestFuzzControlSeedCorpusRoundTrips drives each real control frame
// through writeControl/ReadFrame on every `go test` run even without -fuzz.
func TestFuzzControlSeedCorpusRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	id := CampaignID{Seed: 7, Duration: 24 * sim.Hour, Scenario: 3}
	if err := writeControl(&buf, frameHello, &Hello{Campaign: id, Testbed: "random",
		Nodes: []string{"a1"}}); err != nil {
		t.Fatal(err)
	}
	if err := writeControl(&buf, frameAck, &Ack{Node: "a1", Seq: 3}); err != nil {
		t.Fatal(err)
	}
	if err := writeControl(&buf, frameFin, &Fin{}); err != nil {
		t.Fatal(err)
	}
	wantKinds := []FrameKind{KindHello, KindAck, KindFin}
	for i, want := range wantKinds {
		fr, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if fr.Kind != want {
			t.Fatalf("frame %d: kind %d, want %d", i, fr.Kind, want)
		}
	}
	if fr := (&Frame{}); fr.Kind != KindBatch {
		t.Fatal("zero Frame is not a batch frame") // pins the kind enum's zero
	}
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 2, 9, '{', '}'})); err == nil {
		t.Error("unknown kind byte 9 decoded without error")
	}
}

// TestFuzzSeedCorpusRoundTrips runs the fuzz body over the seed corpus
// directly, so the round-trip law is enforced on every `go test` run even
// without -fuzz.
func TestFuzzSeedCorpusRoundTrips(t *testing.T) {
	for _, codec := range []Codec{CodecBinary, CodecJSON} {
		var buf bytes.Buffer
		in := fullBatch()
		if err := WriteBatchCodec(&buf, in, codec); err != nil {
			t.Fatal(err)
		}
		out, err := ReadBatch(&buf)
		if err != nil {
			t.Fatalf("%v decode: %v", codec, err)
		}
		if !batchEqual(in, out) {
			t.Errorf("%v: decoded batch diverges from input", codec)
		}
		if !reflect.DeepEqual(in.Reports, out.Reports) || !reflect.DeepEqual(in.Entries, out.Entries) {
			t.Errorf("%v: record slices diverge", codec)
		}
	}
	// The reader must also cleanly reject an empty stream and a bare header.
	if _, err := ReadBatch(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
	if _, err := ReadBatch(bytes.NewReader([]byte{0, 0, 0})); err == nil {
		t.Error("3-byte stream decoded without error")
	}
}
