package collector

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Sink is the distributed collection plane's repository process
// (cmd/btsink): a multi-tenant service hosting one streaming aggregator per
// campaign keyspace. It accepts agent sessions over TCP, routes each session
// to its keyspace by the Hello handshake, applies sequenced batches exactly
// once (duplicates from retransmission are filtered by sequence number), and
// acknowledges durable progress.
//
// Tenancy and robustness properties:
//
//   - Every keyspace has its own streamer, checkpoint file, completion state
//     and transport counters: one campaign finishing, failing or flooding
//     never touches its neighbors' state.
//   - Admission control: per-keyspace byte/batch ingest quotas. A keyspace
//     that exhausts its quota is quarantined — its sessions get a typed
//     over-quota Reject, new hellos are refused, and the quarantine is
//     persisted in the keyspace's checkpoint so a sink restart does not
//     silently re-admit the offender. Requota lifts it.
//   - Backpressure: when the sink's total buffered record count exceeds the
//     configured memory budget, acknowledgements are delayed. Acks gate the
//     agents' send windows, so the fleet slows down instead of ballooning
//     the sink's memory.
//   - Graceful drain: Drain seals every tenant's checkpoint, notifies live
//     sessions with a retryable draining Reject, and refuses new hellos —
//     agents back off and resume against the restarted (or replacement)
//     sink with nothing lost.
//
// With a checkpoint path configured a tenant periodically serializes its
// full live aggregation state — analysis.StreamerCheckpoint plus the
// counters and completion bookkeeping — to disk with an atomic rename, and
// acknowledges only checkpoint-covered batches. A killed sink restarted on
// the same checkpoint files resumes exactly where the last checkpoints left
// off; agents reconnect, learn the durable cursors from the Resume
// handshake, retransmit the tail, and every campaign completes with tables
// bit-identical to an uninterrupted run (pinned by TestDistributedResume and
// the multi-tenant chaos tests).
type Sink struct {
	cfg SinkConfig
	ln  net.Listener

	mu        sync.Mutex
	tenants   map[string]*tenant
	districts map[string]*district
	conns     map[net.Conn]bool
	draining  bool
	closed    bool

	delayedAcks    int // acks delayed by the memory-budget backpressure
	hellosRejected int // hello handshakes answered with a Reject

	wg sync.WaitGroup
}

// tenant is one campaign keyspace's private state.
type tenant struct {
	cfg KeyspaceConfig
	str *analysis.Streamer

	ackable   map[skey]StreamCursor // what sessions may acknowledge
	finals    map[string][]StreamCursor
	counters  map[string]map[string]*workload.CountersSnapshot
	durations map[string]sim.Time
	finished  map[string]bool
	sessions  map[string]*sinkSession // latest session per testbed
	sinceCP   int
	agg       *analysis.Aggregates // set at completion
	trace     []analysis.DependEvent

	applied     int // batches applied (first delivery)
	duplicates  int // batch frames filtered as retransmitted duplicates
	rejected    int // batch frames refused as protocol errors
	ckptFails   int // checkpoint write failures (disk trouble, not protocol)
	lastCkptErr error

	ingestBytes   int64 // data-frame wire bytes received (retransmissions included)
	ingestBatches int   // data frames received
	quarantined   bool  // over quota: shedding load until Requota

	done chan struct{}
}

// KeyspaceConfig declares one campaign keyspace hosted by a Sink.
type KeyspaceConfig struct {
	// Key names the keyspace; agents address it with the Hello Keyspace
	// field. The empty string is the default keyspace pre-keyspace agents
	// land in.
	Key string
	// Campaign identifies the keyspace's campaign: sessions from agents of
	// a different campaign are refused, and a checkpoint file recorded
	// under a different campaign is never silently substituted.
	Campaign CampaignID
	// Spec declares the campaign's streams as hosted by THIS sink — the
	// full campaign spec, or (on one shard of a horizontally sharded
	// deployment) the subset of its testbeds this shard owns, built with
	// analysis.SubSpec so the shard records the depend trace the merge
	// tier needs.
	Spec analysis.StreamSpec
	// ScenarioName labels live Table 4 renderings served over HTTP
	// (optional; defaults to "scenario <N>").
	ScenarioName string
	// CheckpointPath enables durable checkpoints at this file; empty runs
	// the keyspace in memory only (acknowledgements then cover applied
	// batches immediately, and a crash loses the campaign).
	CheckpointPath string
	// MaxBytes / MaxBatches are the keyspace's ingest quotas, counted over
	// received data-frame wire bytes / frames, retransmissions included
	// (0 = unlimited). Exceeding either quarantines the keyspace.
	MaxBytes   int64
	MaxBatches int
}

// SinkConfig configures a Sink. The Campaign/Spec/CheckpointPath trio is the
// single-campaign shorthand: when Spec declares any testbeds, it becomes the
// default ("") keyspace, which is how pre-multi-tenant deployments keep
// working unchanged. Additional (or all) campaigns go in Keyspaces.
type SinkConfig struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// Campaign identifies the default keyspace's campaign (single-campaign
	// shorthand; see KeyspaceConfig.Campaign).
	Campaign CampaignID
	// Spec declares the default keyspace's streams (single-campaign
	// shorthand; see KeyspaceConfig.Spec).
	Spec analysis.StreamSpec
	// CheckpointPath is the default keyspace's checkpoint file (see
	// KeyspaceConfig.CheckpointPath).
	CheckpointPath string
	// Keyspaces declares the hosted campaigns beyond (or instead of) the
	// single-campaign shorthand fields.
	Keyspaces []KeyspaceConfig
	// Districts declares the hosted scatternet district keyspaces: piconet
	// ranges of metro campaigns whose agents ship fold partials (protocol
	// §12) instead of record batches. Districts and flat keyspaces are
	// independent namespaces; a sink may host both at once.
	Districts []DistrictConfig
	// AllowEmpty lets the sink start with no keyspaces at all — the
	// always-on service mode, where campaigns arrive later via Register.
	// Without it an empty configuration is a loud error.
	AllowEmpty bool
	// CheckpointEvery is the number of received batch frames between a
	// keyspace's checkpoints (default 64; 1 checkpoints after every frame).
	CheckpointEvery int
	// MemoryBudget bounds the total buffered (not yet folded) record count
	// across all keyspaces; above it acknowledgements are delayed by
	// BackpressureDelay to slow the fleet down (0 = no backpressure).
	MemoryBudget int
	// BackpressureDelay is the per-ack delay applied while over the memory
	// budget (default 2 ms).
	BackpressureDelay time.Duration
	// HelloTimeout bounds the wait for a new connection's Hello frame
	// (default 10 s); a connection that says nothing is dropped.
	HelloTimeout time.Duration
	// WriteTimeout bounds each control frame write to an agent (default
	// 5 s); a stuck agent connection is dropped, the agent resumes.
	WriteTimeout time.Duration
	// SpecResolver maps a POST /campaigns registration (campaign identity
	// plus optional testbed-name subset) to the campaign's stream spec.
	// The collector package cannot derive specs itself — that knowledge
	// lives with the campaign definition — so the embedding binary wires
	// this in (cmd/btsink uses the testbed package's campaign spec).
	// Nil disables HTTP registration (the endpoint answers 501).
	SpecResolver func(campaign CampaignID, testbeds []string) (analysis.StreamSpec, error)
}

// skey identifies one stream.
type skey struct{ testbed, node string }

// sinkSession serializes writes to one agent connection (acknowledgements
// and Fin can be written from another session's completion path).
type sinkSession struct {
	conn    net.Conn
	timeout time.Duration
	wmu     sync.Mutex
}

// send writes one control frame to the session's connection.
func (s *sinkSession) send(kind byte, payload any) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.conn.SetWriteDeadline(time.Now().Add(s.timeout))
	return writeControl(s.conn, kind, payload)
}

// sinkCheckpoint is one keyspace's on-disk state: the campaign identity, the
// full live aggregation state, and the session-protocol and admission
// bookkeeping that must survive a crash. (Quota accounting is persisted so
// a restart cannot silently re-admit a quarantined campaign.)
type sinkCheckpoint struct {
	Campaign  CampaignID                                       `json:"campaign"`
	Keyspace  string                                           `json:"keyspace,omitempty"`
	Streamer  *analysis.StreamerCheckpoint                     `json:"streamer"`
	Finals    map[string][]StreamCursor                        `json:"finals,omitempty"`
	Counters  map[string]map[string]*workload.CountersSnapshot `json:"counters,omitempty"`
	Durations map[string]sim.Time                              `json:"durations,omitempty"`

	IngestBytes   int64 `json:"ingest_bytes,omitempty"`
	IngestBatches int   `json:"ingest_batches,omitempty"`
	Quarantined   bool  `json:"quarantined,omitempty"`
}

// SinkReport is one completed campaign as seen by the sink: the finalized
// aggregates plus the per-testbed counters and durations shipped in the
// agents' Done frames.
type SinkReport struct {
	Agg       *analysis.Aggregates
	Counters  map[string]map[string]*workload.Counters
	Durations map[string]sim.Time
}

// NewSink starts the sink with its configured keyspaces. Keyspaces whose
// checkpoint file exists resume from it instead of starting empty.
func NewSink(cfg SinkConfig) (*Sink, error) {
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 64
	}
	if cfg.HelloTimeout <= 0 {
		cfg.HelloTimeout = 10 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 5 * time.Second
	}
	if cfg.BackpressureDelay <= 0 {
		cfg.BackpressureDelay = 2 * time.Millisecond
	}
	s := &Sink{
		cfg:       cfg,
		tenants:   make(map[string]*tenant),
		districts: make(map[string]*district),
		conns:     make(map[net.Conn]bool),
	}
	keyspaces := cfg.Keyspaces
	if len(cfg.Spec.Testbeds) > 0 {
		keyspaces = append([]KeyspaceConfig{{
			Campaign: cfg.Campaign, Spec: cfg.Spec, CheckpointPath: cfg.CheckpointPath,
		}}, keyspaces...)
	}
	if len(keyspaces) == 0 && len(cfg.Districts) == 0 && !cfg.AllowEmpty {
		return nil, fmt.Errorf("collector: sink declares no keyspaces (set AllowEmpty for the always-on mode)")
	}
	for _, dc := range cfg.Districts {
		d, err := newDistrict(dc)
		if err != nil {
			return nil, err
		}
		if _, dup := s.districts[dc.Key]; dup {
			return nil, fmt.Errorf("collector: duplicate district keyspace %q", dc.Key)
		}
		s.districts[dc.Key] = d
	}
	for _, ks := range keyspaces {
		t, err := s.newTenant(ks)
		if err != nil {
			return nil, err
		}
		if _, dup := s.tenants[ks.Key]; dup {
			return nil, fmt.Errorf("collector: duplicate keyspace %q", ks.Key)
		}
		s.tenants[ks.Key] = t
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("collector: listen %s: %w", cfg.Addr, err)
	}
	s.ln = ln
	for _, t := range s.tenants {
		s.checkCompletion(t) // a checkpoint taken after completion resumes complete
	}
	for _, d := range s.districts {
		s.checkScatterCompletion(d)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// newTenant builds one keyspace, resuming from its checkpoint file when it
// exists.
func (s *Sink) newTenant(ks KeyspaceConfig) (*tenant, error) {
	t := &tenant{
		cfg:       ks,
		ackable:   make(map[skey]StreamCursor),
		finals:    make(map[string][]StreamCursor),
		counters:  make(map[string]map[string]*workload.CountersSnapshot),
		durations: make(map[string]sim.Time),
		finished:  make(map[string]bool),
		sessions:  make(map[string]*sinkSession),
		done:      make(chan struct{}),
	}
	if ks.CheckpointPath != "" {
		if blob, err := ReadFileDurable(ks.CheckpointPath); err == nil {
			var cp sinkCheckpoint
			if err := json.Unmarshal(blob, &cp); err != nil {
				return nil, fmt.Errorf("collector: corrupt sink checkpoint %s: %w", ks.CheckpointPath, err)
			}
			if cp.Campaign != ks.Campaign || cp.Keyspace != ks.Key {
				return nil, fmt.Errorf("collector: checkpoint %s is from a different campaign "+
					"(keyspace %q, seed %d, %v, scenario %d; this keyspace is %q, seed %d, %v, scenario %d) — "+
					"delete it to start over", ks.CheckpointPath,
					cp.Keyspace, cp.Campaign.Seed, cp.Campaign.Duration, cp.Campaign.Scenario,
					ks.Key, ks.Campaign.Seed, ks.Campaign.Duration, ks.Campaign.Scenario)
			}
			str, err := analysis.RestoreStreamer(ks.Spec, cp.Streamer)
			if err != nil {
				return nil, fmt.Errorf("collector: restore sink checkpoint: %w", err)
			}
			t.str = str
			for i := range cp.Streamer.Shards {
				sh := &cp.Streamer.Shards[i]
				t.ackable[skey{sh.Testbed, sh.Node}] = StreamCursor{
					Node: sh.Node, Seq: sh.NextSeq - 1, Watermark: sh.Watermark}
			}
			for tb, final := range cp.Finals {
				t.finals[tb] = final
			}
			for tb, m := range cp.Counters {
				t.counters[tb] = m
			}
			for tb, d := range cp.Durations {
				t.durations[tb] = d
			}
			t.ingestBytes = cp.IngestBytes
			t.ingestBatches = cp.IngestBatches
			t.quarantined = cp.Quarantined
		} else if !errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("collector: read sink checkpoint: %w", err)
		}
	}
	if t.str == nil {
		str, err := analysis.NewStreamer(ks.Spec)
		if err != nil {
			return nil, err
		}
		t.str = str
		for _, tb := range ks.Spec.Testbeds {
			for _, node := range append(append([]string{}, tb.PANUs...), tb.NAP) {
				t.ackable[skey{tb.Name, node}] = StreamCursor{Node: node}
			}
		}
	}
	return t, nil
}

// Register adds a keyspace to a running sink — the always-on service path,
// where campaigns come and go while the sink stays up. Registering an
// existing key, or registering on a draining sink, is an error.
func (s *Sink) Register(ks KeyspaceConfig) error {
	t, err := s.newTenant(ks)
	if err != nil {
		return err
	}
	s.mu.Lock()
	switch {
	case s.closed:
		err = fmt.Errorf("collector: register %q on a closed sink", ks.Key)
	case s.draining:
		err = fmt.Errorf("collector: register %q on a draining sink", ks.Key)
	default:
		if _, dup := s.tenants[ks.Key]; dup {
			err = fmt.Errorf("collector: keyspace %q already registered", ks.Key)
		} else {
			s.tenants[ks.Key] = t
		}
	}
	s.mu.Unlock()
	if err == nil {
		s.checkCompletion(t)
	}
	return err
}

// Requota replaces a keyspace's ingest quotas and lifts its quarantine (the
// operator's load-shedding escape hatch). The accumulated ingest counters
// stay — if they already exceed the new quota, the next frame re-trips it.
func (s *Sink) Requota(key string, maxBytes int64, maxBatches int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenants[key]
	if t == nil {
		return fmt.Errorf("collector: requota of unknown keyspace %q", key)
	}
	t.cfg.MaxBytes, t.cfg.MaxBatches = maxBytes, maxBatches
	t.quarantined = false
	return nil
}

// Addr reports the listening address.
func (s *Sink) Addr() string { return s.ln.Addr().String() }

// Stats reports transport counters summed over every keyspace: batches
// applied for the first time, duplicate frames filtered, and frames rejected
// as protocol errors.
func (s *Sink) Stats() (applied, duplicates, rejected int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.tenants {
		applied += t.applied
		duplicates += t.duplicates
		rejected += t.rejected
	}
	return applied, duplicates, rejected
}

// acceptLoop serves agent connections until Close/Abort.
func (s *Sink) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
			conn.Close()
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// rejectHello refuses a handshake with a typed reason.
func (s *Sink) rejectHello(conn net.Conn, code, format string, args ...any) {
	s.mu.Lock()
	s.hellosRejected++
	s.mu.Unlock()
	writeControl(conn, frameReject, &Reject{Code: code, Reason: fmt.Sprintf(format, args...)})
}

// serve drives one agent session.
func (s *Sink) serve(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(s.cfg.HelloTimeout))
	fr, err := ReadFrame(conn)
	if err != nil || fr.Kind != KindHello {
		return
	}
	conn.SetReadDeadline(time.Time{})
	hello := fr.Hello
	if hello.Scatter != nil {
		s.serveScatter(conn, hello)
		return
	}

	s.mu.Lock()
	draining := s.draining
	t := s.tenants[hello.Keyspace]
	var quarantined bool
	if t != nil {
		quarantined = t.quarantined
	}
	s.mu.Unlock()

	switch {
	case draining:
		s.rejectHello(conn, RejectDraining, "sink is draining; retry against its replacement")
		return
	case t == nil:
		s.rejectHello(conn, RejectUnknownCampaign,
			"no campaign registered under keyspace %q (yet)", hello.Keyspace)
		return
	case quarantined:
		s.rejectHello(conn, RejectOverQuota,
			"keyspace %q is quarantined over quota (%d bytes, %d batches ingested)",
			hello.Keyspace, t.ingestBytes, t.ingestBatches)
		return
	case hello.Campaign != t.cfg.Campaign:
		s.rejectHello(conn, RejectCampaignMismatch,
			"campaign mismatch: agent runs seed %d, %v, scenario %d; keyspace %q runs seed %d, %v, scenario %d",
			hello.Campaign.Seed, hello.Campaign.Duration, hello.Campaign.Scenario,
			hello.Keyspace, t.cfg.Campaign.Seed, t.cfg.Campaign.Duration, t.cfg.Campaign.Scenario)
		return
	}
	spec := testbedSpec(&t.cfg.Spec, hello.Testbed)
	if spec == nil || !nodesMatch(hello.Nodes, append(append([]string{}, spec.PANUs...), spec.NAP)) {
		s.rejectHello(conn, RejectUnknownShard,
			"unknown shard %q or node set not in keyspace %q's spec", hello.Testbed, hello.Keyspace)
		return
	}
	sess := &sinkSession{conn: conn, timeout: s.cfg.WriteTimeout}
	res := Resume{}
	s.mu.Lock()
	t.sessions[hello.Testbed] = sess
	for _, node := range append(append([]string{}, spec.PANUs...), spec.NAP) {
		res.Cursors = append(res.Cursors, t.ackable[skey{hello.Testbed, node}])
	}
	s.mu.Unlock()
	if err := sess.send(frameResume, &res); err != nil {
		return
	}

	for {
		fr, err := ReadFrame(conn)
		if err != nil {
			return
		}
		switch fr.Kind {
		case KindBatch:
			if !s.handleBatch(t, sess, fr.Batch, fr.WireBytes) {
				return
			}
		case KindDone:
			s.handleDone(t, fr.Done)
		default:
			return // protocol violation
		}
	}
}

// handleBatch applies one data frame to the session's keyspace and
// acknowledges the stream's durable cursor. It reports whether the session
// should continue.
func (s *Sink) handleBatch(t *tenant, sess *sinkSession, b *Batch, wireBytes int) bool {
	key := skey{b.Testbed, b.Node}
	s.mu.Lock()
	// Admission control first: quota accounting covers every received data
	// frame, retransmissions included — the quota bounds what the keyspace
	// makes the shared sink do, not its unique payload.
	t.ingestBytes += int64(wireBytes)
	t.ingestBatches++
	if t.quarantined ||
		(t.cfg.MaxBytes > 0 && t.ingestBytes > t.cfg.MaxBytes) ||
		(t.cfg.MaxBatches > 0 && t.ingestBatches > t.cfg.MaxBatches) {
		if !t.quarantined {
			t.quarantined = true
			if t.cfg.CheckpointPath != "" {
				// Make the quarantine durable immediately so a restarted
				// sink keeps shedding this keyspace rather than re-admitting
				// it with reset accounting.
				if err := s.checkpointLocked(t); err != nil {
					t.ckptFails++
					t.lastCkptErr = err
				}
			}
		}
		bytes, batches := t.ingestBytes, t.ingestBatches
		s.mu.Unlock()
		sess.send(frameReject, &Reject{Code: RejectOverQuota, Reason: fmt.Sprintf(
			"keyspace %q over ingest quota (%d bytes, %d batches received)",
			t.cfg.Key, bytes, batches)})
		return false
	}
	if t.finished[b.Testbed] || t.agg != nil {
		// Late retransmission after completion: everything is durable
		// already, just re-acknowledge.
		cur := t.ackable[key]
		s.mu.Unlock()
		return sess.send(frameAck, &Ack{Node: b.Node, Seq: cur.Seq, Watermark: cur.Watermark}) == nil
	}
	s.mu.Unlock()

	accepted, err := t.str.OfferSeq(b.Testbed, b.Node, b.Reports, b.Entries, b.Watermark, b.Seq)
	s.mu.Lock()
	if err != nil {
		t.rejected++
		s.mu.Unlock()
		return false
	}
	if accepted {
		t.applied++
	} else {
		t.duplicates++
	}
	t.sinceCP++
	if t.cfg.CheckpointPath == "" {
		// No durability layer: applied is acknowledgeable immediately.
		seq, wm, err := t.str.Cursor(b.Testbed, b.Node)
		if err == nil {
			t.ackable[key] = StreamCursor{Node: b.Node, Seq: seq, Watermark: wm}
		}
	} else if t.sinceCP >= s.cfg.CheckpointEvery || donePending(t) {
		// Endgame: once a shard has declared Done, every further frame is a
		// retransmission filling the last gaps — checkpoint eagerly so the
		// final acknowledgements (and Fin) go out without waiting for the
		// cadence to come around.
		if err := s.checkpointLocked(t); err != nil {
			// Disk trouble, not a peer error: record it where Wait's
			// timeout diagnostics surface it, and drop the session so the
			// agent keeps the unacknowledged batches for retransmission.
			t.ckptFails++
			t.lastCkptErr = err
			s.mu.Unlock()
			return false
		}
	}
	cur := t.ackable[key]
	s.mu.Unlock()
	s.backpressure()
	ok := sess.send(frameAck, &Ack{Node: b.Node, Seq: cur.Seq, Watermark: cur.Watermark}) == nil
	s.checkCompletion(t)
	return ok
}

// backpressure delays the pending acknowledgement while the sink is over its
// memory budget. Acks gate the agents' send windows, and frames on one
// session are processed serially, so a delayed ack directly slows the fleet
// down to what the sink absorbs.
func (s *Sink) backpressure() {
	if s.cfg.MemoryBudget <= 0 {
		return
	}
	if s.PendingRecords() <= s.cfg.MemoryBudget {
		return
	}
	s.mu.Lock()
	s.delayedAcks++
	s.mu.Unlock()
	time.Sleep(s.cfg.BackpressureDelay)
}

// PendingRecords reports the total buffered (not yet folded) record count
// across every keyspace — the quantity the memory budget bounds.
func (s *Sink) PendingRecords() int {
	s.mu.Lock()
	streamers := make([]*analysis.Streamer, 0, len(s.tenants))
	for _, t := range s.tenants {
		streamers = append(streamers, t.str)
	}
	s.mu.Unlock()
	n := 0
	for _, str := range streamers {
		n += str.Pending()
	}
	return n
}

// handleDone records a shard's completion claim: final cursors, counters,
// duration. Completion is re-checked (and, when checkpointing, made durable
// first).
func (s *Sink) handleDone(t *tenant, d *Done) {
	s.mu.Lock()
	if t.finished[d.Testbed] {
		// Re-sent Done after a reconnect: answer with Fin again.
		sess := t.sessions[d.Testbed]
		s.mu.Unlock()
		if sess != nil {
			sess.send(frameFin, &Fin{})
		}
		return
	}
	t.finals[d.Testbed] = d.Final
	t.counters[d.Testbed] = d.Counters
	t.durations[d.Testbed] = d.Duration
	if t.cfg.CheckpointPath != "" {
		if err := s.checkpointLocked(t); err != nil {
			t.ckptFails++
			t.lastCkptErr = err
			s.mu.Unlock()
			return
		}
	}
	s.mu.Unlock()
	s.checkCompletion(t)
}

// checkpointLocked serializes one keyspace's full state to its checkpoint
// file — guard trailer, previous-good rotation and atomic rename via
// WriteFileDurable — then advances the acknowledgeable cursors to what the
// checkpoint covers. Caller holds mu.
func (s *Sink) checkpointLocked(t *tenant) error {
	cp, err := t.str.Checkpoint()
	if err != nil {
		return err
	}
	blob, err := json.Marshal(&sinkCheckpoint{Campaign: t.cfg.Campaign, Keyspace: t.cfg.Key,
		Streamer: cp, Finals: t.finals, Counters: t.counters, Durations: t.durations,
		IngestBytes: t.ingestBytes, IngestBatches: t.ingestBatches, Quarantined: t.quarantined})
	if err != nil {
		return err
	}
	if err := WriteFileDurable(t.cfg.CheckpointPath, blob); err != nil {
		return err
	}
	t.sinceCP = 0
	for i := range cp.Shards {
		sh := &cp.Shards[i]
		t.ackable[skey{sh.Testbed, sh.Node}] = StreamCursor{
			Node: sh.Node, Seq: sh.NextSeq - 1, Watermark: sh.Watermark}
	}
	return nil
}

// donePending reports whether some shard of the keyspace has declared Done
// but is not yet released. Caller holds mu.
func donePending(t *tenant) bool {
	for tb := range t.finals {
		if !t.finished[tb] {
			return true
		}
	}
	return false
}

// checkCompletion marks the keyspace's testbeds whose final cursors are
// fully acknowledgeable, releases their agents with Fin, and finalizes the
// campaign once every declared testbed is complete. The Fin frames go out
// synchronously BEFORE the done channel closes: WaitKeyspace returning (and
// the Close that typically follows it) must never cut off the last agent's
// release — the multi-process smoke caught exactly that race.
func (s *Sink) checkCompletion(t *tenant) {
	s.mu.Lock()
	var fins []*sinkSession
	for tb, final := range t.finals {
		if t.finished[tb] {
			continue
		}
		covered := true
		for _, c := range final {
			if t.ackable[skey{tb, c.Node}].Seq < c.Seq {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		t.finished[tb] = true
		if sess := t.sessions[tb]; sess != nil {
			fins = append(fins, sess)
		}
	}
	complete := t.agg == nil && len(t.finished) == len(t.cfg.Spec.Testbeds) &&
		len(t.cfg.Spec.Testbeds) > 0
	if complete {
		t.agg = t.str.Finalize()
		t.trace = t.str.DependTrace()
	}
	s.mu.Unlock()
	for _, sess := range fins {
		sess.send(frameFin, &Fin{})
	}
	if complete {
		close(t.done)
	}
}

// testbedSpec finds the declared spec entry for a testbed name.
func testbedSpec(spec *analysis.StreamSpec, name string) *analysis.TestbedSpec {
	for i := range spec.Testbeds {
		if spec.Testbeds[i].Name == name {
			return &spec.Testbeds[i]
		}
	}
	return nil
}

// nodesMatch reports set equality of two node lists.
func nodesMatch(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[string]bool, len(a))
	for _, n := range a {
		set[n] = true
	}
	for _, n := range b {
		if !set[n] {
			return false
		}
	}
	return len(set) == len(b)
}

// Wait blocks until the default keyspace's campaign has completed (all data
// durable and Done received), then returns its finalized report. A zero
// timeout waits indefinitely. Single-campaign deployments' entry point;
// multi-tenant callers use WaitKeyspace.
func (s *Sink) Wait(timeout time.Duration) (*SinkReport, error) {
	return s.WaitKeyspace("", timeout)
}

// WaitKeyspace blocks until the named keyspace's campaign has completed,
// then returns its finalized report. A zero timeout waits indefinitely.
func (s *Sink) WaitKeyspace(key string, timeout time.Duration) (*SinkReport, error) {
	s.mu.Lock()
	t := s.tenants[key]
	s.mu.Unlock()
	if t == nil {
		return nil, fmt.Errorf("collector: wait on unknown keyspace %q", key)
	}
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	select {
	case <-t.done:
	case <-timeoutCh:
		s.mu.Lock()
		applied, dups, rejected := t.applied, t.duplicates, t.rejected
		ckptFails, ckptErr := t.ckptFails, t.lastCkptErr
		quarantined := t.quarantined
		s.mu.Unlock()
		msg := fmt.Sprintf("collector: campaign incomplete after %v (%d applied, %d duplicates, %d rejected)",
			timeout, applied, dups, rejected)
		if quarantined {
			msg += "; keyspace is quarantined over quota"
		}
		if ckptFails > 0 {
			msg += fmt.Sprintf("; %d checkpoint write failures, last: %v", ckptFails, ckptErr)
		}
		return nil, fmt.Errorf("%s", msg)
	}
	rep := &SinkReport{
		Agg:       t.agg,
		Counters:  make(map[string]map[string]*workload.Counters),
		Durations: make(map[string]sim.Time),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for tb, m := range t.counters {
		rep.Counters[tb] = make(map[string]*workload.Counters, len(m))
		for node, snap := range m {
			c, err := workload.RestoreCounters(snap)
			if err != nil {
				return nil, fmt.Errorf("collector: counters for %s/%s: %w", tb, node, err)
			}
			rep.Counters[tb][node] = c
		}
	}
	for tb, d := range t.durations {
		rep.Durations[tb] = d
	}
	return rep, nil
}

// Drain starts a graceful shutdown: every keyspace's checkpoint is sealed
// (so acknowledgements cover exactly what survives), live sessions are told
// to go away with a retryable draining Reject, and new hellos are refused.
// Sessions whose shard already completed were already released with Fin.
// The sink keeps listening — explicitly rejecting is kinder to a backing-off
// fleet than a connection refused — until Close tears it down. Idempotent.
func (s *Sink) Drain() error {
	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	var firstErr error
	var sessions []*sinkSession
	for _, t := range s.tenants {
		if t.cfg.CheckpointPath != "" && t.agg == nil {
			if err := s.checkpointLocked(t); err != nil {
				t.ckptFails++
				t.lastCkptErr = err
				if firstErr == nil {
					firstErr = err
				}
			}
		}
		for tb, sess := range t.sessions {
			if !t.finished[tb] {
				sessions = append(sessions, sess)
			}
		}
	}
	for _, d := range s.districts {
		if d.cfg.CheckpointPath != "" && d.partial == nil {
			if err := s.districtCheckpointLocked(d); err != nil {
				d.ckptFails++
				d.lastCkptErr = err
				if firstErr == nil {
					firstErr = err
				}
			}
		}
		for key, sess := range d.sessions {
			if !d.finished[key] {
				sessions = append(sessions, sess)
			}
		}
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.send(frameReject, &Reject{Code: RejectDraining,
			Reason: "sink is draining; retry against its replacement"})
	}
	return firstErr
}

// Close shuts the sink down gracefully: a final checkpoint per running
// keyspace (when configured) followed by teardown.
func (s *Sink) Close() error {
	s.mu.Lock()
	if !s.closed {
		for _, t := range s.tenants {
			if t.cfg.CheckpointPath != "" && t.agg == nil {
				_ = s.checkpointLocked(t)
			}
		}
		for _, d := range s.districts {
			if d.cfg.CheckpointPath != "" && d.partial == nil {
				_ = s.districtCheckpointLocked(d)
			}
		}
	}
	s.mu.Unlock()
	return s.shutdown()
}

// Abort kills the sink without a final checkpoint — the test double for
// SIGKILL: only state already checkpointed survives into a restart.
func (s *Sink) Abort() error { return s.shutdown() }

// shutdown closes the listener and every live connection, then waits.
func (s *Sink) shutdown() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// KeyspaceMetrics is one keyspace's slice of the sink metrics.
type KeyspaceMetrics struct {
	Key      string     `json:"key"`
	Campaign CampaignID `json:"campaign"`

	Testbeds         int  `json:"testbeds"`
	FinishedTestbeds int  `json:"finished_testbeds"`
	Complete         bool `json:"complete"`
	Quarantined      bool `json:"quarantined"`

	AppliedBatches   int   `json:"applied_batches"`
	DuplicateBatches int   `json:"duplicate_batches"`
	RejectedBatches  int   `json:"rejected_batches"`
	IngestBytes      int64 `json:"ingest_bytes"`
	IngestBatches    int   `json:"ingest_batches"`
	QuotaBytes       int64 `json:"quota_bytes,omitempty"`
	QuotaBatches     int   `json:"quota_batches,omitempty"`

	PendingRecords     int `json:"pending_records"`
	CheckpointFailures int `json:"checkpoint_failures"`
}

// SinkMetrics is the sink's observable state — what /metricsz serves.
type SinkMetrics struct {
	Draining       bool `json:"draining"`
	Sessions       int  `json:"sessions"`
	PendingRecords int  `json:"pending_records"`
	MemoryBudget   int  `json:"memory_budget,omitempty"`
	DelayedAcks    int  `json:"delayed_acks"`
	HellosRejected int  `json:"hellos_rejected"`

	Keyspaces []KeyspaceMetrics `json:"keyspaces"`
}

// Metrics captures the sink's transport/ingest/durability counters, per
// keyspace and globally (keyspaces sorted by key for stable output).
func (s *Sink) Metrics() *SinkMetrics {
	s.mu.Lock()
	m := &SinkMetrics{
		Draining:       s.draining,
		Sessions:       len(s.conns),
		MemoryBudget:   s.cfg.MemoryBudget,
		DelayedAcks:    s.delayedAcks,
		HellosRejected: s.hellosRejected,
	}
	type pair struct {
		t  *tenant
		km KeyspaceMetrics
	}
	pairs := make([]pair, 0, len(s.tenants))
	for key, t := range s.tenants {
		pairs = append(pairs, pair{t: t, km: KeyspaceMetrics{
			Key:              key,
			Campaign:         t.cfg.Campaign,
			Testbeds:         len(t.cfg.Spec.Testbeds),
			FinishedTestbeds: len(t.finished),
			Complete:         t.agg != nil,
			Quarantined:      t.quarantined,
			AppliedBatches:   t.applied,
			DuplicateBatches: t.duplicates,
			RejectedBatches:  t.rejected,
			IngestBytes:      t.ingestBytes,
			IngestBatches:    t.ingestBatches,
			QuotaBytes:       t.cfg.MaxBytes,
			QuotaBatches:     t.cfg.MaxBatches,

			CheckpointFailures: t.ckptFails,
		}})
	}
	s.mu.Unlock()
	for i := range pairs {
		pairs[i].km.PendingRecords = pairs[i].t.str.Pending()
		m.PendingRecords += pairs[i].km.PendingRecords
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].km.Key < pairs[j].km.Key })
	for _, p := range pairs {
		m.Keyspaces = append(m.Keyspaces, p.km)
	}
	return m
}
