package collector

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Sink is the distributed collection plane's repository process
// (cmd/btsink): it hosts the streaming aggregator for a declared campaign
// spec, accepts agent sessions over TCP, applies their sequenced batches
// exactly once (duplicates from retransmission are filtered by sequence
// number), and acknowledges durable progress.
//
// With a checkpoint path configured the sink periodically serializes the
// full live aggregation state — analysis.StreamerCheckpoint plus the
// counters and completion bookkeeping — to disk with an atomic rename, and
// acknowledges only checkpoint-covered batches. A killed sink restarted on
// the same checkpoint file resumes exactly where the last checkpoint left
// off; agents reconnect, learn the durable cursors from the Resume
// handshake, retransmit the tail, and the campaign completes with tables
// bit-identical to an uninterrupted run (pinned by TestDistributedResume).
type Sink struct {
	cfg SinkConfig
	ln  net.Listener
	str *analysis.Streamer

	mu        sync.Mutex
	ackable   map[skey]StreamCursor // what sessions may acknowledge
	finals    map[string][]StreamCursor
	counters  map[string]map[string]*workload.CountersSnapshot
	durations map[string]sim.Time
	finished  map[string]bool
	sessions  map[string]*sinkSession // latest session per testbed
	conns     map[net.Conn]bool
	sinceCP   int
	agg       *analysis.Aggregates // set at completion
	closed    bool

	applied     int // batches applied (first delivery)
	duplicates  int // batch frames filtered as retransmitted duplicates
	rejected    int // batch frames refused as protocol errors
	ckptFails   int // checkpoint write failures (disk trouble, not protocol)
	lastCkptErr error

	done chan struct{}
	wg   sync.WaitGroup
}

// SinkConfig configures a Sink.
type SinkConfig struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// Campaign identifies the campaign: sessions from agents of a
	// different campaign are refused, and a checkpoint file recorded under
	// a different campaign is never silently substituted.
	Campaign CampaignID
	// Spec declares the campaign's streams; it must match what the agents
	// run (the single-process equivalent's testbed.Campaign.StreamSpec).
	Spec analysis.StreamSpec
	// CheckpointPath enables durable checkpoints at this file; empty runs
	// the sink in memory only (acknowledgements then cover applied batches
	// immediately, and a crash loses the campaign). Checkpoints carry a
	// CRC/length guard trailer and every write keeps the previous good file
	// as CheckpointPath+".prev": restore rejects a torn or truncated
	// checkpoint and falls back to the previous one instead of silently
	// resuming from garbage.
	CheckpointPath string
	// CheckpointEvery is the number of received batch frames between
	// checkpoints (default 64; 1 checkpoints after every frame).
	CheckpointEvery int
	// HelloTimeout bounds the wait for a new connection's Hello frame
	// (default 10 s); a connection that says nothing is dropped.
	HelloTimeout time.Duration
	// WriteTimeout bounds each control frame write to an agent (default
	// 5 s); a stuck agent connection is dropped, the agent resumes.
	WriteTimeout time.Duration
}

// skey identifies one stream.
type skey struct{ testbed, node string }

// sinkSession serializes writes to one agent connection (acknowledgements
// and Fin can be written from another session's completion path).
type sinkSession struct {
	conn    net.Conn
	timeout time.Duration
	wmu     sync.Mutex
}

// send writes one control frame to the session's connection.
func (s *sinkSession) send(kind byte, payload any) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.conn.SetWriteDeadline(time.Now().Add(s.timeout))
	return writeControl(s.conn, kind, payload)
}

// sinkCheckpoint is the sink's on-disk state: the campaign identity, the
// full live aggregation state, and the session-protocol bookkeeping that
// must survive a crash.
type sinkCheckpoint struct {
	Campaign  CampaignID                                       `json:"campaign"`
	Streamer  *analysis.StreamerCheckpoint                     `json:"streamer"`
	Finals    map[string][]StreamCursor                        `json:"finals,omitempty"`
	Counters  map[string]map[string]*workload.CountersSnapshot `json:"counters,omitempty"`
	Durations map[string]sim.Time                              `json:"durations,omitempty"`
}

// SinkReport is the completed campaign as seen by the sink: the finalized
// aggregates plus the per-testbed counters and durations shipped in the
// agents' Done frames.
type SinkReport struct {
	Agg       *analysis.Aggregates
	Counters  map[string]map[string]*workload.Counters
	Durations map[string]sim.Time
}

// NewSink starts the sink. If the configured checkpoint file exists, the
// sink resumes from it instead of starting an empty campaign.
func NewSink(cfg SinkConfig) (*Sink, error) {
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 64
	}
	if cfg.HelloTimeout <= 0 {
		cfg.HelloTimeout = 10 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 5 * time.Second
	}
	s := &Sink{
		cfg:       cfg,
		ackable:   make(map[skey]StreamCursor),
		finals:    make(map[string][]StreamCursor),
		counters:  make(map[string]map[string]*workload.CountersSnapshot),
		durations: make(map[string]sim.Time),
		finished:  make(map[string]bool),
		sessions:  make(map[string]*sinkSession),
		conns:     make(map[net.Conn]bool),
		done:      make(chan struct{}),
	}
	if cfg.CheckpointPath != "" {
		if blob, err := ReadFileDurable(cfg.CheckpointPath); err == nil {
			var cp sinkCheckpoint
			if err := json.Unmarshal(blob, &cp); err != nil {
				return nil, fmt.Errorf("collector: corrupt sink checkpoint %s: %w", cfg.CheckpointPath, err)
			}
			if cp.Campaign != cfg.Campaign {
				return nil, fmt.Errorf("collector: checkpoint %s is from a different campaign "+
					"(seed %d, %v, scenario %d; this sink runs seed %d, %v, scenario %d) — "+
					"delete it to start over", cfg.CheckpointPath,
					cp.Campaign.Seed, cp.Campaign.Duration, cp.Campaign.Scenario,
					cfg.Campaign.Seed, cfg.Campaign.Duration, cfg.Campaign.Scenario)
			}
			str, err := analysis.RestoreStreamer(cfg.Spec, cp.Streamer)
			if err != nil {
				return nil, fmt.Errorf("collector: restore sink checkpoint: %w", err)
			}
			s.str = str
			s.loadCheckpointMeta(&cp)
		} else if !errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("collector: read sink checkpoint: %w", err)
		}
	}
	if s.str == nil {
		str, err := analysis.NewStreamer(cfg.Spec)
		if err != nil {
			return nil, err
		}
		s.str = str
		for _, tb := range cfg.Spec.Testbeds {
			for _, node := range append(append([]string{}, tb.PANUs...), tb.NAP) {
				s.ackable[skey{tb.Name, node}] = StreamCursor{Node: node}
			}
		}
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("collector: listen %s: %w", cfg.Addr, err)
	}
	s.ln = ln
	s.checkCompletion() // a checkpoint taken after completion resumes complete
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// loadCheckpointMeta restores the ack cursors and completion bookkeeping
// from a checkpoint.
func (s *Sink) loadCheckpointMeta(cp *sinkCheckpoint) {
	for i := range cp.Streamer.Shards {
		sh := &cp.Streamer.Shards[i]
		s.ackable[skey{sh.Testbed, sh.Node}] = StreamCursor{
			Node: sh.Node, Seq: sh.NextSeq - 1, Watermark: sh.Watermark}
	}
	for tb, final := range cp.Finals {
		s.finals[tb] = final
	}
	for tb, m := range cp.Counters {
		s.counters[tb] = m
	}
	for tb, d := range cp.Durations {
		s.durations[tb] = d
	}
}

// Addr reports the listening address.
func (s *Sink) Addr() string { return s.ln.Addr().String() }

// Stats reports transport counters: batches applied for the first time,
// duplicate frames filtered, and frames rejected as protocol errors.
func (s *Sink) Stats() (applied, duplicates, rejected int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied, s.duplicates, s.rejected
}

// acceptLoop serves agent connections until Close/Abort.
func (s *Sink) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
			conn.Close()
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// serve drives one agent session.
func (s *Sink) serve(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(s.cfg.HelloTimeout))
	fr, err := ReadFrame(conn)
	if err != nil || fr.Kind != KindHello {
		return
	}
	conn.SetReadDeadline(time.Time{})
	hello := fr.Hello
	if hello.Campaign != s.cfg.Campaign {
		writeControl(conn, frameReject, &Reject{Reason: fmt.Sprintf(
			"campaign mismatch: agent runs seed %d, %v, scenario %d; sink runs seed %d, %v, scenario %d",
			hello.Campaign.Seed, hello.Campaign.Duration, hello.Campaign.Scenario,
			s.cfg.Campaign.Seed, s.cfg.Campaign.Duration, s.cfg.Campaign.Scenario)})
		return
	}
	spec := s.testbedSpec(hello.Testbed)
	if spec == nil || !nodesMatch(hello.Nodes, append(append([]string{}, spec.PANUs...), spec.NAP)) {
		writeControl(conn, frameReject, &Reject{Reason: fmt.Sprintf(
			"unknown shard %q or node set not in the sink's spec", hello.Testbed)})
		return
	}
	sess := &sinkSession{conn: conn, timeout: s.cfg.WriteTimeout}
	res := Resume{}
	s.mu.Lock()
	s.sessions[hello.Testbed] = sess
	for _, node := range append(append([]string{}, spec.PANUs...), spec.NAP) {
		res.Cursors = append(res.Cursors, s.ackable[skey{hello.Testbed, node}])
	}
	s.mu.Unlock()
	if err := sess.send(frameResume, &res); err != nil {
		return
	}

	for {
		fr, err := ReadFrame(conn)
		if err != nil {
			return
		}
		switch fr.Kind {
		case KindBatch:
			if !s.handleBatch(sess, fr.Batch) {
				return
			}
		case KindDone:
			s.handleDone(fr.Done)
		default:
			return // protocol violation
		}
	}
}

// handleBatch applies one data frame and acknowledges the stream's durable
// cursor. It reports whether the session should continue.
func (s *Sink) handleBatch(sess *sinkSession, b *Batch) bool {
	key := skey{b.Testbed, b.Node}
	s.mu.Lock()
	if s.finished[b.Testbed] || s.agg != nil {
		// Late retransmission after completion: everything is durable
		// already, just re-acknowledge.
		cur := s.ackable[key]
		s.mu.Unlock()
		return sess.send(frameAck, &Ack{Node: b.Node, Seq: cur.Seq, Watermark: cur.Watermark}) == nil
	}
	s.mu.Unlock()

	accepted, err := s.str.OfferSeq(b.Testbed, b.Node, b.Reports, b.Entries, b.Watermark, b.Seq)
	s.mu.Lock()
	if err != nil {
		s.rejected++
		s.mu.Unlock()
		return false
	}
	if accepted {
		s.applied++
	} else {
		s.duplicates++
	}
	s.sinceCP++
	if s.cfg.CheckpointPath == "" {
		// No durability layer: applied is acknowledgeable immediately.
		seq, wm, err := s.str.Cursor(b.Testbed, b.Node)
		if err == nil {
			s.ackable[key] = StreamCursor{Node: b.Node, Seq: seq, Watermark: wm}
		}
	} else if s.sinceCP >= s.cfg.CheckpointEvery || s.donePendingLocked() {
		// Endgame: once a shard has declared Done, every further frame is a
		// retransmission filling the last gaps — checkpoint eagerly so the
		// final acknowledgements (and Fin) go out without waiting for the
		// cadence to come around.
		if err := s.checkpointLocked(); err != nil {
			// Disk trouble, not a peer error: record it where Wait's
			// timeout diagnostics surface it, and drop the session so the
			// agent keeps the unacknowledged batches for retransmission.
			s.ckptFails++
			s.lastCkptErr = err
			s.mu.Unlock()
			return false
		}
	}
	cur := s.ackable[key]
	s.mu.Unlock()
	ok := sess.send(frameAck, &Ack{Node: b.Node, Seq: cur.Seq, Watermark: cur.Watermark}) == nil
	s.checkCompletion()
	return ok
}

// handleDone records a shard's completion claim: final cursors, counters,
// duration. Completion is re-checked (and, when checkpointing, made durable
// first).
func (s *Sink) handleDone(d *Done) {
	s.mu.Lock()
	if s.finished[d.Testbed] {
		// Re-sent Done after a reconnect: answer with Fin again.
		sess := s.sessions[d.Testbed]
		s.mu.Unlock()
		if sess != nil {
			sess.send(frameFin, &Fin{})
		}
		return
	}
	s.finals[d.Testbed] = d.Final
	s.counters[d.Testbed] = d.Counters
	s.durations[d.Testbed] = d.Duration
	if s.cfg.CheckpointPath != "" {
		if err := s.checkpointLocked(); err != nil {
			s.ckptFails++
			s.lastCkptErr = err
			s.mu.Unlock()
			return
		}
	}
	s.mu.Unlock()
	s.checkCompletion()
}

// checkpointLocked serializes the full sink state to the checkpoint file —
// guard trailer, previous-good rotation and atomic rename via
// WriteFileDurable — then advances the acknowledgeable cursors to what the
// checkpoint covers. Caller holds mu.
func (s *Sink) checkpointLocked() error {
	cp, err := s.str.Checkpoint()
	if err != nil {
		return err
	}
	blob, err := json.Marshal(&sinkCheckpoint{Campaign: s.cfg.Campaign, Streamer: cp,
		Finals: s.finals, Counters: s.counters, Durations: s.durations})
	if err != nil {
		return err
	}
	if err := WriteFileDurable(s.cfg.CheckpointPath, blob); err != nil {
		return err
	}
	s.sinceCP = 0
	for i := range cp.Shards {
		sh := &cp.Shards[i]
		s.ackable[skey{sh.Testbed, sh.Node}] = StreamCursor{
			Node: sh.Node, Seq: sh.NextSeq - 1, Watermark: sh.Watermark}
	}
	return nil
}

// donePendingLocked reports whether some shard has declared Done but is not
// yet released. Caller holds mu.
func (s *Sink) donePendingLocked() bool {
	for tb := range s.finals {
		if !s.finished[tb] {
			return true
		}
	}
	return false
}

// checkCompletion marks testbeds whose final cursors are fully
// acknowledgeable, releases their agents with Fin, and finalizes the
// campaign once every declared testbed is complete. The Fin frames go out
// synchronously BEFORE the done channel closes: Wait returning (and the
// Close that typically follows it) must never cut off the last agent's
// release — the multi-process smoke caught exactly that race.
func (s *Sink) checkCompletion() {
	s.mu.Lock()
	var fins []*sinkSession
	for tb, final := range s.finals {
		if s.finished[tb] {
			continue
		}
		covered := true
		for _, c := range final {
			if s.ackable[skey{tb, c.Node}].Seq < c.Seq {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		s.finished[tb] = true
		if sess := s.sessions[tb]; sess != nil {
			fins = append(fins, sess)
		}
	}
	complete := s.agg == nil && len(s.finished) == len(s.cfg.Spec.Testbeds) &&
		len(s.cfg.Spec.Testbeds) > 0
	if complete {
		s.agg = s.str.Finalize()
	}
	s.mu.Unlock()
	for _, sess := range fins {
		sess.send(frameFin, &Fin{})
	}
	if complete {
		close(s.done)
	}
}

// testbedSpec finds the declared spec entry for a testbed name.
func (s *Sink) testbedSpec(name string) *analysis.TestbedSpec {
	for i := range s.cfg.Spec.Testbeds {
		if s.cfg.Spec.Testbeds[i].Name == name {
			return &s.cfg.Spec.Testbeds[i]
		}
	}
	return nil
}

// nodesMatch reports set equality of two node lists.
func nodesMatch(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[string]bool, len(a))
	for _, n := range a {
		set[n] = true
	}
	for _, n := range b {
		if !set[n] {
			return false
		}
	}
	return len(set) == len(b)
}

// Wait blocks until every declared testbed has completed (all data durable
// and Done received), then returns the finalized campaign report. A zero
// timeout waits indefinitely.
func (s *Sink) Wait(timeout time.Duration) (*SinkReport, error) {
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	select {
	case <-s.done:
	case <-timeoutCh:
		s.mu.Lock()
		applied, dups, rejected := s.applied, s.duplicates, s.rejected
		ckptFails, ckptErr := s.ckptFails, s.lastCkptErr
		s.mu.Unlock()
		msg := fmt.Sprintf("collector: campaign incomplete after %v (%d applied, %d duplicates, %d rejected)",
			timeout, applied, dups, rejected)
		if ckptFails > 0 {
			msg += fmt.Sprintf("; %d checkpoint write failures, last: %v", ckptFails, ckptErr)
		}
		return nil, fmt.Errorf("%s", msg)
	}
	rep := &SinkReport{
		Agg:       s.agg,
		Counters:  make(map[string]map[string]*workload.Counters),
		Durations: make(map[string]sim.Time),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for tb, m := range s.counters {
		rep.Counters[tb] = make(map[string]*workload.Counters, len(m))
		for node, snap := range m {
			c, err := workload.RestoreCounters(snap)
			if err != nil {
				return nil, fmt.Errorf("collector: counters for %s/%s: %w", tb, node, err)
			}
			rep.Counters[tb][node] = c
		}
	}
	for tb, d := range s.durations {
		rep.Durations[tb] = d
	}
	return rep, nil
}

// Close shuts the sink down gracefully: a final checkpoint (when configured
// and the campaign is still running) followed by teardown.
func (s *Sink) Close() error {
	s.mu.Lock()
	if !s.closed && s.cfg.CheckpointPath != "" && s.agg == nil {
		_ = s.checkpointLocked()
	}
	s.mu.Unlock()
	return s.shutdown()
}

// Abort kills the sink without a final checkpoint — the test double for
// SIGKILL: only state already checkpointed survives into a restart.
func (s *Sink) Abort() error { return s.shutdown() }

// shutdown closes the listener and every live connection, then waits.
func (s *Sink) shutdown() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}
