package collector

import (
	"testing"
	"time"
)

// benchWaitConnected parks until the agent holds a live session, so the
// timed region measures the steady connected state — a real agent
// handshakes once and then streams for days, and before the handshake
// Ingest deliberately takes the slower inline-spill path.
func benchWaitConnected(b *testing.B, a *Agent) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		a.mu.Lock()
		c := a.connected
		a.mu.Unlock()
		if c {
			return
		}
		if time.Now().After(deadline) {
			b.Fatal("agent never reached a live session")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// benchAgentStreamDay ships one streaming day of the standard two-testbed
// corpus (tpBatches(24): 120 hourly drains across five streams) through
// real agents to a loopback sink and finishes the campaign — the whole
// agent-side lifecycle a btagent shard performs. With spill on, every
// encoded frame also rides through the write-ahead spill log, so the pair
// of benchmarks isolates the WAL's cost; bench.sh folds the two into
// agent_wal_overhead_ratio in BENCH_campaign.json (budget: under 15%).
func benchAgentStreamDay(b *testing.B, spill bool) {
	batches := tpBatches(24)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sink, err := NewSink(SinkConfig{Addr: "127.0.0.1:0", Spec: tpSpec()})
		if err != nil {
			b.Fatal(err)
		}
		spillDir := ""
		if spill {
			spillDir = b.TempDir()
		}
		agents := tpSpillAgents(b, sink.Addr(), spillDir)
		for _, a := range agents {
			benchWaitConnected(b, a)
		}
		b.StartTimer()
		for _, bt := range batches {
			if err := agents[bt.testbed].Ingest(bt.testbed, bt.node, bt.reports, bt.entries, bt.watermark); err != nil {
				b.Fatal(err)
			}
		}
		tpFinish(b, agents)
		for _, a := range agents {
			a.Close()
		}
		b.StopTimer()
		sink.Close()
	}
}

// BenchmarkAgentStreamDay is the no-WAL baseline: the agent keeps
// unacknowledged batches in memory only.
func BenchmarkAgentStreamDay(b *testing.B) { benchAgentStreamDay(b, false) }

// BenchmarkAgentStreamDaySpill runs the same day with the write-ahead
// spill log armed, appending every encoded frame before it is offered to
// the uplink.
func BenchmarkAgentStreamDaySpill(b *testing.B) { benchAgentStreamDay(b, true) }
