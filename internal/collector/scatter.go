package collector

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"net"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/sim"
)

// The scatternet district plane (protocol §12): a metro campaign sharded
// over real OS processes. Each scatternet agent owns a contiguous piconet
// range and streams one kind-8 frame per finished piconet — the fold
// partial AddPiconet needs — to its district sink, stop-and-wait under the
// same cumulative-cursor/Resume discipline as the flat record stream. The
// range that starts at piconet 0 additionally owns the bridge overlay and
// ships its pre-merged rollup partial as the final work item (the overlay's
// Welford merges are order-sensitive, so they happen at the owner, never at
// the sink). The sink folds partials in arrival order — ScatternetFold's
// aggregate sums are exact and commutative, and Finalize re-sorts the
// deployment trace by total key — checkpoints after every applied partial,
// and exports a trailer-sealed district partial when its range completes.
// MergeDistricts then rebuilds the metro rollup bit-identically to the
// single-process `btcampaign -scatternet -rollup -stream` run.

// ScatterNet is the scatternet campaign identity beyond CampaignID: the
// topology knobs that shape every piconet world and the probe plane. Agents
// and districts must agree on it exactly — a mismatch is a fatal
// configuration error, the metro analogue of a campaign mismatch.
type ScatterNet struct {
	Piconets    int      `json:"piconets"`
	Bridges     int      `json:"bridges"`
	Topology    string   `json:"topology,omitempty"`
	Redundancy  int      `json:"redundancy,omitempty"`
	Hold        sim.Time `json:"hold,omitempty"`
	ProbeSample float64  `json:"probe_sample,omitempty"`
}

// ScatterHello rides inside Hello on a district session: the shared
// scatternet identity plus the agent's claimed piconet range. Overlay marks
// the session that will ship the bridge-overlay partial as its last work
// item — by convention exactly the range starting at piconet 0 when the
// campaign has bridges.
type ScatterHello struct {
	Net     ScatterNet `json:"net"`
	Lo      int        `json:"lo"`
	Hi      int        `json:"hi"`
	Overlay bool       `json:"overlay,omitempty"`
}

// ScatterBatch is one kind-8 data frame: work item Seq of the session's
// range. Seq 1..(hi-lo) carry piconet partials for piconets lo..hi-1 in
// order; on an overlay-owning session, seq hi-lo+1 carries the overlay
// partial. Exactly one of Piconet/Overlay is set.
type ScatterBatch struct {
	Seq     uint64                   `json:"seq"`
	Piconet *analysis.PiconetPartial `json:"piconet,omitempty"`
	Overlay *analysis.OverlayPartial `json:"overlay,omitempty"`
}

// scatterRangeKey names a piconet range — the stream/cursor key of a
// district session, the analogue of a flat stream's node name.
func scatterRangeKey(lo, hi int) string { return fmt.Sprintf("%d:%d", lo, hi) }

// DistrictConfig declares one scatternet district keyspace hosted by a
// Sink: a contiguous piconet slice of one metro campaign.
type DistrictConfig struct {
	// Key names the district keyspace; agents address it with the Hello
	// Keyspace field. Districts and flat keyspaces are separate namespaces
	// (the Hello's Scatter field discriminates).
	Key string
	// Campaign identifies the campaign (seed/duration/scenario).
	Campaign CampaignID
	// Net is the scatternet identity every agent must match exactly.
	Net ScatterNet
	// ScenarioName labels the fold's Dependability column (must be the
	// campaign's Scenario.String(); defaults to "scenario <N>").
	ScenarioName string
	// Lo, Hi bound the piconet range [Lo, Hi) this district accepts.
	Lo, Hi int
	// CheckpointPath enables a durable checkpoint after every applied
	// partial; empty runs the district in memory only.
	CheckpointPath string
}

// districtWantsOverlay reports whether the district's range owes the
// overlay partial: the range containing piconet 0, when the campaign has
// bridges at all.
func districtWantsOverlay(cfg DistrictConfig) bool {
	return cfg.Lo == 0 && cfg.Net.Bridges > 0
}

// scatterCursor is one registered range's durable progress: the range
// bounds (so restarts can police overlaps without re-hearing the Hello) and
// the cumulative applied-and-checkpointed work-item cursor.
type scatterCursor struct {
	Lo      int    `json:"lo"`
	Hi      int    `json:"hi"`
	Overlay bool   `json:"overlay,omitempty"`
	Seq     uint64 `json:"seq"`
}

// district is one scatternet district keyspace's private state.
type district struct {
	cfg     DistrictConfig
	fold    *analysis.ScatternetFold
	folded  []bool // [Hi-Lo): piconet Lo+i folded
	foldedN int
	overlay *analysis.OverlayPartial

	cursors  map[string]*scatterCursor // per range key
	finals   map[string]uint64         // range key -> final work-item count from Done
	finished map[string]bool
	sessions map[string]*sinkSession // latest session per range key
	partial  *DistrictPartial        // set at completion

	applied     int // partials folded (first delivery)
	duplicates  int // frames filtered as retransmitted duplicates
	rejected    int // frames refused as protocol errors
	ckptFails   int
	lastCkptErr error

	done chan struct{}
}

// districtCheckpoint is one district's on-disk state. The fold snapshot is
// exact (see analysis.ScatternetFoldSnapshot), so restart + resume is
// bit-identical to never having crashed.
type districtCheckpoint struct {
	Campaign CampaignID `json:"campaign"`
	Keyspace string     `json:"keyspace,omitempty"`
	Net      ScatterNet `json:"net"`
	Lo       int        `json:"lo"`
	Hi       int        `json:"hi"`

	Fold    *analysis.ScatternetFoldSnapshot `json:"fold"`
	Folded  []bool                           `json:"folded"`
	Overlay *analysis.OverlayPartial         `json:"overlay,omitempty"`
	Cursors map[string]*scatterCursor        `json:"cursors,omitempty"`
	Finals  map[string]uint64                `json:"finals,omitempty"`
}

// newDistrict builds one district keyspace, resuming from its checkpoint
// file when it exists.
func newDistrict(cfg DistrictConfig) (*district, error) {
	if cfg.Net.Piconets <= 0 {
		return nil, fmt.Errorf("collector: district %q declares no piconets", cfg.Key)
	}
	if cfg.Lo < 0 || cfg.Hi <= cfg.Lo || cfg.Hi > cfg.Net.Piconets {
		return nil, fmt.Errorf("collector: district %q range [%d:%d) outside the campaign's [0:%d)",
			cfg.Key, cfg.Lo, cfg.Hi, cfg.Net.Piconets)
	}
	if cfg.ScenarioName == "" {
		cfg.ScenarioName = fmt.Sprintf("scenario %d", cfg.Campaign.Scenario)
	}
	d := &district{
		cfg:      cfg,
		folded:   make([]bool, cfg.Hi-cfg.Lo),
		cursors:  make(map[string]*scatterCursor),
		finals:   make(map[string]uint64),
		finished: make(map[string]bool),
		sessions: make(map[string]*sinkSession),
		done:     make(chan struct{}),
	}
	if cfg.CheckpointPath != "" {
		if blob, err := ReadFileDurable(cfg.CheckpointPath); err == nil {
			var cp districtCheckpoint
			if err := json.Unmarshal(blob, &cp); err != nil {
				return nil, fmt.Errorf("collector: corrupt district checkpoint %s: %w", cfg.CheckpointPath, err)
			}
			if cp.Campaign != cfg.Campaign || cp.Keyspace != cfg.Key ||
				cp.Net != cfg.Net || cp.Lo != cfg.Lo || cp.Hi != cfg.Hi {
				return nil, fmt.Errorf("collector: checkpoint %s is from a different district "+
					"(keyspace %q, seed %d, piconets [%d:%d) of %d; this district is %q, seed %d, "+
					"piconets [%d:%d) of %d) — delete it to start over", cfg.CheckpointPath,
					cp.Keyspace, cp.Campaign.Seed, cp.Lo, cp.Hi, cp.Net.Piconets,
					cfg.Key, cfg.Campaign.Seed, cfg.Lo, cfg.Hi, cfg.Net.Piconets)
			}
			fold, err := analysis.RestoreScatternetFold(cp.Fold)
			if err != nil {
				return nil, fmt.Errorf("collector: restore district checkpoint %s: %w", cfg.CheckpointPath, err)
			}
			if len(cp.Folded) != cfg.Hi-cfg.Lo {
				return nil, fmt.Errorf("collector: checkpoint %s folded bitmap covers %d piconets, range has %d",
					cfg.CheckpointPath, len(cp.Folded), cfg.Hi-cfg.Lo)
			}
			d.fold = fold
			copy(d.folded, cp.Folded)
			for _, b := range cp.Folded {
				if b {
					d.foldedN++
				}
			}
			d.overlay = cp.Overlay
			for k, c := range cp.Cursors {
				d.cursors[k] = c
			}
			for k, f := range cp.Finals {
				d.finals[k] = f
			}
		} else if !errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("collector: read district checkpoint: %w", err)
		}
	}
	if d.fold == nil {
		d.fold = analysis.NewScatternetFold(cfg.ScenarioName)
	}
	return d, nil
}

// districtCheckpointLocked serializes one district's full state to its
// checkpoint file (guard trailer, previous-good rotation, atomic rename).
// Acknowledgements cover exactly what this writes: the cursor IS the
// ackable position, advanced only after the checkpoint lands. Caller holds
// mu.
func (s *Sink) districtCheckpointLocked(d *district) error {
	blob, err := json.Marshal(&districtCheckpoint{
		Campaign: d.cfg.Campaign, Keyspace: d.cfg.Key, Net: d.cfg.Net,
		Lo: d.cfg.Lo, Hi: d.cfg.Hi,
		Fold: d.fold.Snapshot(), Folded: d.folded, Overlay: d.overlay,
		Cursors: d.cursors, Finals: d.finals,
	})
	if err != nil {
		return err
	}
	return WriteFileDurable(d.cfg.CheckpointPath, blob)
}

// serveScatter drives one district session (the Hello carried a Scatter
// claim). Validation mirrors the flat path's typed rejects: service
// conditions are retryable, configuration errors fatal.
func (s *Sink) serveScatter(conn net.Conn, hello *Hello) {
	sc := hello.Scatter
	s.mu.Lock()
	draining := s.draining
	d := s.districts[hello.Keyspace]
	s.mu.Unlock()
	switch {
	case draining:
		s.rejectHello(conn, RejectDraining, "sink is draining; retry against its replacement")
		return
	case d == nil:
		s.rejectHello(conn, RejectUnknownCampaign,
			"no district registered under keyspace %q (yet)", hello.Keyspace)
		return
	case hello.Campaign != d.cfg.Campaign:
		s.rejectHello(conn, RejectCampaignMismatch,
			"campaign mismatch: agent runs seed %d, %v, scenario %d; district %q runs seed %d, %v, scenario %d",
			hello.Campaign.Seed, hello.Campaign.Duration, hello.Campaign.Scenario,
			hello.Keyspace, d.cfg.Campaign.Seed, d.cfg.Campaign.Duration, d.cfg.Campaign.Scenario)
		return
	case sc.Net != d.cfg.Net:
		s.rejectHello(conn, RejectCampaignMismatch,
			"scatternet mismatch: agent runs %+v; district %q runs %+v", sc.Net, hello.Keyspace, d.cfg.Net)
		return
	case sc.Lo < d.cfg.Lo || sc.Hi > d.cfg.Hi || sc.Lo >= sc.Hi:
		s.rejectHello(conn, RejectUnknownShard,
			"piconet range [%d:%d) outside district %q's [%d:%d)",
			sc.Lo, sc.Hi, hello.Keyspace, d.cfg.Lo, d.cfg.Hi)
		return
	case sc.Overlay != (sc.Lo == 0 && d.cfg.Net.Bridges > 0):
		s.rejectHello(conn, RejectUnknownShard,
			"overlay ownership violation for range [%d:%d): the range starting at piconet 0 "+
				"carries the overlay exactly when the campaign has bridges (%d configured)",
			sc.Lo, sc.Hi, d.cfg.Net.Bridges)
		return
	}
	key := scatterRangeKey(sc.Lo, sc.Hi)
	s.mu.Lock()
	for k, cur := range d.cursors {
		if k != key && sc.Lo < cur.Hi && cur.Lo < sc.Hi {
			s.mu.Unlock()
			s.rejectHello(conn, RejectUnknownShard,
				"piconet range [%d:%d) overlaps already-registered [%d:%d) in district %q",
				sc.Lo, sc.Hi, cur.Lo, cur.Hi, hello.Keyspace)
			return
		}
	}
	cur := d.cursors[key]
	if cur == nil {
		cur = &scatterCursor{Lo: sc.Lo, Hi: sc.Hi, Overlay: sc.Overlay}
		d.cursors[key] = cur
	}
	sess := &sinkSession{conn: conn, timeout: s.cfg.WriteTimeout}
	d.sessions[key] = sess
	res := Resume{Cursors: []StreamCursor{{Node: key, Seq: cur.Seq}}}
	s.mu.Unlock()
	if sess.send(frameResume, &res) != nil {
		return
	}
	for {
		fr, err := ReadFrame(conn)
		if err != nil {
			return
		}
		switch fr.Kind {
		case KindScatter:
			if !s.handleScatter(d, sess, key, fr.Scatter) {
				return
			}
		case KindDone:
			s.handleScatterDone(d, key, fr.Done)
		default:
			return // protocol violation
		}
	}
}

// handleScatter applies one kind-8 frame under stop-and-wait discipline:
// only the next expected work item is applied (then checkpointed, then
// acknowledged); retransmissions re-acknowledge the cursor; frames from the
// future (reorder injection) are ignored and recovered by the agent's stall
// retransmission. It reports whether the session should continue.
func (s *Sink) handleScatter(d *district, sess *sinkSession, key string, sb *ScatterBatch) bool {
	if sb == nil {
		return false
	}
	s.mu.Lock()
	cur := d.cursors[key]
	if cur == nil {
		s.mu.Unlock()
		return false
	}
	if sb.Seq <= cur.Seq {
		d.duplicates++
		ack := Ack{Node: key, Seq: cur.Seq}
		s.mu.Unlock()
		return sess.send(frameAck, &ack) == nil
	}
	if sb.Seq != cur.Seq+1 {
		s.mu.Unlock()
		return true
	}
	items := uint64(cur.Hi - cur.Lo)
	var applyErr error
	switch {
	case sb.Seq <= items:
		p := cur.Lo + int(sb.Seq) - 1
		switch {
		case sb.Piconet == nil || sb.Piconet.Piconet != p:
			applyErr = fmt.Errorf("work item %d of range %s must be piconet %d's partial", sb.Seq, key, p)
		case d.folded[p-d.cfg.Lo]:
			applyErr = fmt.Errorf("piconet %d already folded", p)
		default:
			if applyErr = d.fold.AddPartial(sb.Piconet); applyErr == nil {
				d.folded[p-d.cfg.Lo] = true
				d.foldedN++
			}
		}
	case cur.Overlay && sb.Seq == items+1:
		switch {
		case sb.Overlay == nil:
			applyErr = fmt.Errorf("work item %d of range %s must be the overlay partial", sb.Seq, key)
		case d.overlay != nil:
			applyErr = fmt.Errorf("duplicate overlay partial")
		default:
			d.overlay = sb.Overlay
		}
	default:
		applyErr = fmt.Errorf("work item %d beyond range %s's %d items", sb.Seq, key, items)
	}
	if applyErr != nil {
		d.rejected++
		s.mu.Unlock()
		return false
	}
	d.applied++
	// The cursor advances BEFORE the checkpoint so the durable state is
	// self-consistent: the checkpoint that contains this partial's fold also
	// says it was applied. Checkpointing the old cursor would make a restore
	// re-request work the fold already holds — and an agent that saw the ack
	// would correctly abort on the regressed resume cursor.
	cur.Seq = sb.Seq
	if d.cfg.CheckpointPath != "" {
		if err := s.districtCheckpointLocked(d); err != nil {
			// The partial is folded in memory (cursor advanced to match) but
			// not durable: record the failure and drop the session WITHOUT
			// acknowledging — the next applied partial's full-state
			// checkpoint covers this one too.
			d.ckptFails++
			d.lastCkptErr = err
			s.mu.Unlock()
			return false
		}
	}
	ack := Ack{Node: key, Seq: cur.Seq}
	s.mu.Unlock()
	if sess.send(frameAck, &ack) != nil {
		return false
	}
	s.checkScatterCompletion(d)
	return true
}

// handleScatterDone records a range's final work-item count and releases
// the agent with Fin once (and only once) the cursor covers it durably.
func (s *Sink) handleScatterDone(d *district, key string, done *Done) {
	if done == nil {
		return
	}
	var final uint64
	for _, c := range done.Final {
		if c.Node == key {
			final = c.Seq
		}
	}
	if final == 0 {
		return
	}
	s.mu.Lock()
	if d.finished[key] {
		// Re-sent Done after a reconnect: answer with Fin again.
		sess := d.sessions[key]
		s.mu.Unlock()
		if sess != nil {
			sess.send(frameFin, &Fin{})
		}
		return
	}
	d.finals[key] = final
	if d.cfg.CheckpointPath != "" && d.partial == nil {
		if err := s.districtCheckpointLocked(d); err != nil {
			d.ckptFails++
			d.lastCkptErr = err
			s.mu.Unlock()
			return
		}
	}
	s.mu.Unlock()
	s.checkScatterCompletion(d)
}

// checkScatterCompletion releases ranges whose final cursors are durable,
// and seals the district partial once every piconet in [Lo, Hi) is folded
// (plus the overlay, when this district owes it). Fin frames go out
// synchronously BEFORE the done channel closes, same as the flat path.
func (s *Sink) checkScatterCompletion(d *district) {
	s.mu.Lock()
	var fins []*sinkSession
	for key, final := range d.finals {
		if d.finished[key] {
			continue
		}
		cur := d.cursors[key]
		if cur == nil || cur.Seq < final {
			continue
		}
		d.finished[key] = true
		if sess := d.sessions[key]; sess != nil {
			fins = append(fins, sess)
		}
	}
	complete := d.partial == nil && d.foldedN == d.cfg.Hi-d.cfg.Lo &&
		(!districtWantsOverlay(d.cfg) || d.overlay != nil)
	if complete {
		d.partial = &DistrictPartial{
			Keyspace: d.cfg.Key, Campaign: d.cfg.Campaign, Net: d.cfg.Net,
			Lo: d.cfg.Lo, Hi: d.cfg.Hi,
			Fold: d.fold.Snapshot(), Overlay: d.overlay,
		}
	}
	s.mu.Unlock()
	for _, sess := range fins {
		sess.send(frameFin, &Fin{})
	}
	if complete {
		close(d.done)
	}
}

// DistrictPartial is one completed district's contribution to the metro
// merge: the exact fold snapshot over its piconet range, plus the overlay
// partial when the district owned it. This is what btsink exports (sealed
// with the §9.1 trailer) and btmerge -scatternet consumes.
type DistrictPartial struct {
	Keyspace string                           `json:"keyspace,omitempty"`
	Campaign CampaignID                       `json:"campaign"`
	Net      ScatterNet                       `json:"net"`
	Lo       int                              `json:"lo"`
	Hi       int                              `json:"hi"`
	Fold     *analysis.ScatternetFoldSnapshot `json:"fold"`
	Overlay  *analysis.OverlayPartial         `json:"overlay,omitempty"`
}

// WaitDistrict blocks until the named district's piconet range has fully
// folded, then returns its sealed partial. A zero timeout waits
// indefinitely.
func (s *Sink) WaitDistrict(key string, timeout time.Duration) (*DistrictPartial, error) {
	s.mu.Lock()
	d := s.districts[key]
	s.mu.Unlock()
	if d == nil {
		return nil, fmt.Errorf("collector: wait on unknown district %q", key)
	}
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	select {
	case <-d.done:
	case <-timeoutCh:
		s.mu.Lock()
		foldedN, applied, dups, rejected := d.foldedN, d.applied, d.duplicates, d.rejected
		overlayMissing := districtWantsOverlay(d.cfg) && d.overlay == nil
		ckptFails, ckptErr := d.ckptFails, d.lastCkptErr
		s.mu.Unlock()
		msg := fmt.Sprintf("collector: district %q incomplete after %v (%d/%d piconets folded, %d applied, %d duplicates, %d rejected)",
			key, timeout, foldedN, d.cfg.Hi-d.cfg.Lo, applied, dups, rejected)
		if overlayMissing {
			msg += "; overlay partial not received"
		}
		if ckptFails > 0 {
			msg += fmt.Sprintf("; %d checkpoint write failures, last: %v", ckptFails, ckptErr)
		}
		return nil, fmt.Errorf("%s", msg)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return d.partial, nil
}

// MergeDistricts rebuilds the metro rollup from a completed campaign's
// district partials: it validates campaign and scatternet agreement and
// exact disjoint coverage of [0, Piconets) (the MergeAggregates idiom one
// tier up), merges the folds in ascending range order, and finalizes — the
// trace re-sort inside Finalize is what makes the result independent of
// both district count and arrival order. The overlay partial (exactly one,
// from the piconet-0 district, iff the campaign has bridges) carries its
// own pre-merged accumulators. The returned rollup renders byte-identically
// to the single-process `-scatternet -rollup -stream` run.
func MergeDistricts(parts []*DistrictPartial) (*analysis.ScatternetRollup, *analysis.RedundancyTable, error) {
	if len(parts) == 0 {
		return nil, nil, fmt.Errorf("collector: no district partials to merge")
	}
	sorted := append([]*DistrictPartial(nil), parts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })
	first := sorted[0]
	var overlay *analysis.OverlayPartial
	next := 0
	for _, p := range sorted {
		if p.Campaign != first.Campaign || p.Net != first.Net {
			return nil, nil, fmt.Errorf("collector: district partials disagree on the campaign "+
				"(%q runs seed %d over %d piconets; %q runs seed %d over %d piconets)",
				first.Keyspace, first.Campaign.Seed, first.Net.Piconets,
				p.Keyspace, p.Campaign.Seed, p.Net.Piconets)
		}
		if p.Hi <= p.Lo || p.Hi > first.Net.Piconets {
			return nil, nil, fmt.Errorf("collector: district %q claims invalid piconet range [%d:%d) of %d",
				p.Keyspace, p.Lo, p.Hi, first.Net.Piconets)
		}
		if p.Lo < next {
			return nil, nil, fmt.Errorf("collector: district ranges overlap at piconet %d "+
				"(%q claims [%d:%d))", next, p.Keyspace, p.Lo, p.Hi)
		}
		if p.Lo > next {
			return nil, nil, fmt.Errorf("collector: piconets [%d:%d) covered by no district partial", next, p.Lo)
		}
		next = p.Hi
		if p.Overlay != nil {
			if first.Net.Bridges <= 0 {
				return nil, nil, fmt.Errorf("collector: district %q ships an overlay partial but the campaign has no bridges", p.Keyspace)
			}
			if overlay != nil {
				return nil, nil, fmt.Errorf("collector: two districts ship overlay partials")
			}
			if p.Lo != 0 {
				return nil, nil, fmt.Errorf("collector: overlay partial from district %q, which does not own piconet 0", p.Keyspace)
			}
			overlay = p.Overlay
		}
	}
	if next != first.Net.Piconets {
		return nil, nil, fmt.Errorf("collector: piconets [%d:%d) covered by no district partial",
			next, first.Net.Piconets)
	}
	if first.Net.Bridges > 0 && overlay == nil {
		return nil, nil, fmt.Errorf("collector: campaign has %d bridges but no district shipped the overlay partial",
			first.Net.Bridges)
	}
	var fold *analysis.ScatternetFold
	for _, p := range sorted {
		f, err := analysis.RestoreScatternetFold(p.Fold)
		if err != nil {
			return nil, nil, fmt.Errorf("collector: district %q fold: %w", p.Keyspace, err)
		}
		if fold == nil {
			fold = f
		} else if err := fold.Merge(f); err != nil {
			return nil, nil, fmt.Errorf("collector: merge district %q: %w", p.Keyspace, err)
		}
	}
	agg, overview, err := fold.Finalize()
	if err != nil {
		return nil, nil, err
	}
	// Report normalization of the sampling fraction: <=0 (unset) and >=1
	// both mean exhaustive. Must match scatternet.ProbeFraction exactly.
	frac := first.Net.ProbeSample
	if frac <= 0 || frac >= 1 {
		frac = 1
	}
	roll := &analysis.ScatternetRollup{
		Piconets:          first.Net.Piconets,
		Scenario:          fold.Scenario(),
		Agg:               agg,
		Overview:          overview,
		ProbePairFraction: frac,
	}
	var redundancy *analysis.RedundancyTable
	if overlay != nil {
		if overlay.Bridges != nil {
			roll.Bridges, roll.BridgeCount = analysis.RestoreBridgeAccum(overlay.Bridges), overlay.BridgeCount
		}
		if overlay.RelayDepth != nil {
			roll.RelayDepth = analysis.RestoreRelayDepthAccum(overlay.RelayDepth)
		}
		redundancy = &analysis.RedundancyTable{Rows: overlay.Redundancy}
	}
	return roll, redundancy, nil
}

// ScatterAgentConfig configures one scatternet agent: the district sink it
// reports to, its piconet range, and the campaign callbacks that produce
// the partials. The callbacks keep the collector campaign-agnostic (it
// never imports the scatternet engine) and give tests a seam for crash
// injection.
type ScatterAgentConfig struct {
	// Addr is the district sink's TCP address.
	Addr string
	// Keyspace names the district keyspace at the sink.
	Keyspace string
	// Campaign identifies the campaign; must match the district's exactly.
	Campaign CampaignID
	// Net is the scatternet identity; must match the district's exactly.
	Net ScatterNet
	// Lo, Hi bound this agent's piconet range [Lo, Hi).
	Lo, Hi int
	// Overlay marks this agent as the bridge-overlay owner; must be set
	// exactly when Lo == 0 and the campaign has bridges.
	Overlay bool
	// RunPiconet produces piconet p's partial. Piconet worlds are
	// deterministic in (seed, p), so the agent keeps no WAL: after a crash
	// it simply re-runs the piconets past the sink's resume cursor and
	// regenerates byte-identical partials.
	RunPiconet func(p int) (*analysis.PiconetPartial, error)
	// RunOverlay produces the overlay partial (required when Overlay).
	RunOverlay func() (*analysis.OverlayPartial, error)

	// DialTimeout bounds one connection attempt (default 2 s).
	DialTimeout time.Duration
	// RetryMin / RetryMax bound the jittered exponential reconnect backoff
	// (defaults 100 ms / 5 s), seeded by RetrySeed.
	RetryMin  time.Duration
	RetryMax  time.Duration
	RetrySeed int64
	// StallTimeout triggers retransmission of the outstanding work item
	// when its acknowledgement does not arrive (default 5 s).
	StallTimeout time.Duration
	// Fault injects deterministic faults into outgoing kind-8 data frames
	// (control frames are never injected), exercising the retransmission
	// machinery exactly like the flat agent's injector.
	Fault FaultConfig
}

// scatterFatal marks errors that must stop the agent rather than be
// retried: typed fatal rejects, partial-computation failures, and a resume
// cursor that regressed below what the sink once acknowledged.
type scatterFatal struct{ err error }

func (e *scatterFatal) Error() string { return e.err.Error() }
func (e *scatterFatal) Unwrap() error { return e.err }

// RunScatterAgent runs one scatternet agent to completion: dial, handshake,
// ship every work item stop-and-wait, Done, Fin. It reconnects with
// jittered exponential backoff through sink restarts and transient rejects,
// and returns nil only after the sink released the session with Fin.
func RunScatterAgent(cfg ScatterAgentConfig) error {
	if cfg.Lo < 0 || cfg.Hi <= cfg.Lo {
		return fmt.Errorf("collector: scatternet agent range [%d:%d) is empty", cfg.Lo, cfg.Hi)
	}
	if cfg.RunPiconet == nil {
		return fmt.Errorf("collector: scatternet agent without a RunPiconet callback")
	}
	if cfg.Overlay && cfg.RunOverlay == nil {
		return fmt.Errorf("collector: overlay-owning scatternet agent without a RunOverlay callback")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.RetryMin <= 0 {
		cfg.RetryMin = 100 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 5 * time.Second
	}
	if cfg.RetryMax < cfg.RetryMin {
		cfg.RetryMax = cfg.RetryMin
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = 5 * time.Second
	}
	a := &scatterAgent{
		cfg:   cfg,
		key:   scatterRangeKey(cfg.Lo, cfg.Hi),
		total: uint64(cfg.Hi - cfg.Lo),
		inj:   newFaultInjector(cfg.Fault),
	}
	if cfg.Overlay {
		a.total++
	}
	rng := rand.New(rand.NewSource(cfg.RetrySeed))
	attempt := 0
	for {
		conn, err := net.DialTimeout("tcp", cfg.Addr, cfg.DialTimeout)
		if err == nil {
			done, resumed, serr := a.session(conn)
			conn.Close()
			if done {
				return nil
			}
			var fatal *scatterFatal
			if errors.As(serr, &fatal) {
				return fatal.err
			}
			if resumed {
				attempt = 0
				continue
			}
		}
		time.Sleep(scatterBackoff(cfg.RetryMin, cfg.RetryMax, rng, attempt))
		attempt++
	}
}

// scatterBackoff mirrors the flat agent's reconnect delay: capped
// exponential growth jittered over the upper half of the window.
func scatterBackoff(min, max time.Duration, rng *rand.Rand, attempt int) time.Duration {
	d := min
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// scatterAgent is RunScatterAgent's connection-spanning state: the
// cumulative acknowledged cursor and the cached encoding of the one
// outstanding work item (stop-and-wait ships at most one).
type scatterAgent struct {
	cfg   ScatterAgentConfig
	key   string
	total uint64
	inj   *faultInjector

	cursor    uint64 // work items acknowledged durable by the sink
	cachedSeq uint64
	cached    []byte // encoded kind-8 frame for cachedSeq
}

// session drives one connection: handshake, ship the remaining work items
// stop-and-wait, then Done/Fin. It reports (finished, resumed, error);
// fatal errors are wrapped in scatterFatal.
func (a *scatterAgent) session(conn net.Conn) (bool, bool, error) {
	hello := Hello{Campaign: a.cfg.Campaign, Keyspace: a.cfg.Keyspace,
		Testbed: a.key, Scatter: &ScatterHello{
			Net: a.cfg.Net, Lo: a.cfg.Lo, Hi: a.cfg.Hi, Overlay: a.cfg.Overlay}}
	if err := writeControl(conn, frameHello, hello); err != nil {
		return false, false, nil
	}
	conn.SetReadDeadline(time.Now().Add(a.cfg.StallTimeout))
	fr, err := ReadFrame(conn)
	if err != nil {
		return false, false, nil
	}
	if fr.Kind == KindReject {
		if fr.Reject.Retryable() {
			return false, false, nil
		}
		return false, false, &scatterFatal{fmt.Errorf("collector: sink refused district session: %s", fr.Reject.Error())}
	}
	if fr.Kind != KindResume {
		return false, false, nil
	}
	var acked uint64
	for _, c := range fr.Resume.Cursors {
		if c.Node == a.key {
			acked = c.Seq
		}
	}
	if acked < a.cursor {
		return false, true, &scatterFatal{fmt.Errorf(
			"collector: district sink lost durable state: resume cursor %d below acknowledged %d "+
				"(restarted without its checkpoint?)", acked, a.cursor)}
	}
	a.cursor = acked

	stalls := 0
	for a.cursor < a.total {
		seq := a.cursor + 1
		if a.cachedSeq != seq {
			frame, err := a.encodeItem(seq)
			if err != nil {
				return false, true, &scatterFatal{err}
			}
			a.cachedSeq, a.cached = seq, frame
		}
		frames, delay := a.inj.apply(a.cached)
		if delay > 0 {
			time.Sleep(delay)
		}
		for _, f := range frames {
			if _, err := conn.Write(f); err != nil {
				return false, true, nil
			}
		}
		conn.SetReadDeadline(time.Now().Add(a.cfg.StallTimeout))
		fr, err := ReadFrame(conn)
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				// The frame (or its ack) was lost: retransmit. A few
				// stalls in a row mean the connection is wedged —
				// reconnect instead.
				if stalls++; stalls >= 8 {
					return false, true, nil
				}
				continue
			}
			return false, true, nil
		}
		stalls = 0
		switch fr.Kind {
		case KindAck:
			if fr.Ack.Node == a.key && fr.Ack.Seq > a.cursor {
				a.cursor = fr.Ack.Seq
			}
		case KindReject:
			if fr.Reject.Retryable() {
				return false, true, nil
			}
			return false, true, &scatterFatal{fmt.Errorf("collector: district sink rejected session: %s", fr.Reject.Error())}
		default:
			return false, true, nil
		}
	}
	// Every work item is durable; a reorder-held frame is obsolete now.
	a.inj.flush()
	a.cachedSeq, a.cached = 0, nil
	done := Done{Testbed: a.key, Duration: a.cfg.Campaign.Duration,
		Final: []StreamCursor{{Node: a.key, Seq: a.total}}}
	for {
		if err := writeControl(conn, frameDone, &done); err != nil {
			return false, true, nil
		}
		conn.SetReadDeadline(time.Now().Add(a.cfg.StallTimeout))
		fr, err := ReadFrame(conn)
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				if stalls++; stalls >= 8 {
					return false, true, nil
				}
				continue
			}
			return false, true, nil
		}
		switch fr.Kind {
		case KindFin:
			return true, true, nil
		case KindAck:
			// Stale ack still in flight; keep waiting for Fin.
		case KindReject:
			if fr.Reject.Retryable() {
				return false, true, nil
			}
			return false, true, &scatterFatal{fmt.Errorf("collector: district sink rejected session: %s", fr.Reject.Error())}
		default:
			return false, true, nil
		}
	}
}

// encodeItem computes work item seq (running the piconet world or the
// overlay) and renders its complete kind-8 frame, so the fault injector can
// hold, duplicate or drop it whole.
func (a *scatterAgent) encodeItem(seq uint64) ([]byte, error) {
	sb := ScatterBatch{Seq: seq}
	if items := uint64(a.cfg.Hi - a.cfg.Lo); seq <= items {
		p, err := a.cfg.RunPiconet(a.cfg.Lo + int(seq) - 1)
		if err != nil {
			return nil, err
		}
		sb.Piconet = p
	} else {
		ov, err := a.cfg.RunOverlay()
		if err != nil {
			return nil, err
		}
		if ov == nil {
			return nil, fmt.Errorf("collector: overlay-owning agent produced no overlay partial")
		}
		sb.Overlay = ov
	}
	blob, err := json.Marshal(&sb)
	if err != nil {
		return nil, fmt.Errorf("collector: marshal scatter frame: %w", err)
	}
	if 1+len(blob) > maxBatchBytes {
		return nil, fmt.Errorf("collector: scatter frame of %d bytes exceeds limit", 1+len(blob))
	}
	frame := make([]byte, 5, 5+len(blob))
	binary.BigEndian.PutUint32(frame[:4], uint32(1+len(blob)))
	frame[4] = frameScatter
	return append(frame, blob...), nil
}
