package collector

import (
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The multi-tenant suite pins the sink's tenancy promises: per-keyspace
// isolation (a neighbor flooding, failing or finishing never perturbs your
// tables), typed admission control (quota quarantine sheds exactly the
// offender, and lifting it loses nothing), late registration on an always-on
// sink, graceful drain, the sharded-sink merge law at the collector level,
// and the resume-handshake cursor semantics stream by stream.

// waitUntil polls cond to true within d.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// ksAgents builds one agent per tpSpec testbed addressed at a keyspace and
// ingests the batches (buffered; shipping happens on the uplink goroutines).
func ksAgents(t *testing.T, addr, keyspace string, campaign CampaignID, batches []tpBatch) []*Agent {
	t.Helper()
	spec := tpSpec()
	agents := make([]*Agent, 0, len(spec.Testbeds))
	for i, tb := range spec.Testbeds {
		a, err := NewAgent(AgentConfig{
			Addr: addr, Campaign: campaign, Keyspace: keyspace, Testbed: tb.Name,
			Nodes:        append(append([]string{}, tb.PANUs...), tb.NAP),
			RetryMin:     10 * time.Millisecond,
			RetryMax:     50 * time.Millisecond,
			RetrySeed:    campaign.Seed*10 + uint64(i),
			StallTimeout: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, a)
	}
	byName := map[string]*Agent{"alpha": agents[0], "beta": agents[1]}
	for _, b := range batches {
		if err := byName[b.testbed].Ingest(b.testbed, b.node, b.reports, b.entries, b.watermark); err != nil {
			t.Fatal(err)
		}
	}
	return agents
}

// finishKSAgents declares every shard Done and waits for its Fin.
func finishKSAgents(t *testing.T, agents []*Agent, timeout time.Duration) {
	t.Helper()
	spec := tpSpec()
	for i, tb := range spec.Testbeds {
		counters := make(map[string]*workload.CountersSnapshot)
		for _, node := range tb.PANUs {
			counters[node] = tpCounters(node)
		}
		if err := agents[i].Finish(counters, 24*sim.Hour, timeout); err != nil {
			t.Fatalf("finish %s: %v", tb.Name, err)
		}
	}
}

// TestMultiTenantIsolation hosts two campaigns on one sink and checks that
// each keyspace's tables are bit-identical to its own single-process
// reference — shared transport, zero cross-talk.
func TestMultiTenantIsolation(t *testing.T) {
	batches := tpBatches(24)
	want := tpLocal(t, batches)
	campRed := CampaignID{Seed: 1, Duration: 24 * sim.Hour, Scenario: 1}
	campBlue := CampaignID{Seed: 2, Duration: 24 * sim.Hour, Scenario: 2}

	sink, err := NewSink(SinkConfig{Addr: "127.0.0.1:0", Keyspaces: []KeyspaceConfig{
		{Key: "red", Campaign: campRed, Spec: tpSpec()},
		{Key: "blue", Campaign: campBlue, Spec: tpSpec()},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	red := ksAgents(t, sink.Addr(), "red", campRed, batches)
	blue := ksAgents(t, sink.Addr(), "blue", campBlue, batches)
	finishKSAgents(t, red, 30*time.Second)
	finishKSAgents(t, blue, 30*time.Second)

	for _, key := range []string{"red", "blue"} {
		rep, err := sink.WaitKeyspace(key, 30*time.Second)
		if err != nil {
			t.Fatalf("wait %s: %v", key, err)
		}
		if got := rep.Agg.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Errorf("keyspace %s diverged from the single-process reference", key)
		}
	}
	m := sink.Metrics()
	if len(m.Keyspaces) != 2 {
		t.Fatalf("metrics list %d keyspaces, want 2", len(m.Keyspaces))
	}
	for _, km := range m.Keyspaces {
		if !km.Complete || km.Quarantined {
			t.Errorf("keyspace %s: complete=%v quarantined=%v", km.Key, km.Complete, km.Quarantined)
		}
	}
}

// TestQuotaQuarantineAndRequota drives one keyspace over its batch quota
// while a neighbor runs clean: the offender is quarantined with typed
// over-quota rejects and the neighbor's tables stay bit-identical; lifting
// the quota lets the quarantined campaign complete losslessly (the agents
// kept everything unacknowledged).
func TestQuotaQuarantineAndRequota(t *testing.T) {
	batches := tpBatches(24)
	want := tpLocal(t, batches)
	campHog := CampaignID{Seed: 3, Duration: 24 * sim.Hour, Scenario: 1}
	campGood := CampaignID{Seed: 4, Duration: 24 * sim.Hour, Scenario: 1}

	sink, err := NewSink(SinkConfig{Addr: "127.0.0.1:0", Keyspaces: []KeyspaceConfig{
		{Key: "hog", Campaign: campHog, Spec: tpSpec(), MaxBatches: 30},
		{Key: "good", Campaign: campGood, Spec: tpSpec()},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	hog := ksAgents(t, sink.Addr(), "hog", campHog, batches)
	good := ksAgents(t, sink.Addr(), "good", campGood, batches)

	// The neighbor completes untouched while the hog is being shed.
	finishKSAgents(t, good, 30*time.Second)
	rep, err := sink.WaitKeyspace("good", 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Agg.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Error("clean neighbor diverged while another keyspace was quarantined")
	}

	waitUntil(t, 10*time.Second, "hog quarantine + typed rejects", func() bool {
		for _, km := range sink.Metrics().Keyspaces {
			if km.Key == "hog" && !km.Quarantined {
				return false
			}
		}
		n, last := hog[0].Rejects()
		m, lastB := hog[1].Rejects()
		if n == 0 && m == 0 {
			return false
		}
		if last == nil {
			last = lastB
		}
		return last != nil && last.Code == RejectOverQuota
	})

	// Operator lifts the quota; the campaign completes with nothing lost.
	if err := sink.Requota("hog", 0, 0); err != nil {
		t.Fatal(err)
	}
	finishKSAgents(t, hog, 30*time.Second)
	rep, err = sink.WaitKeyspace("hog", 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Agg.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Error("quarantined campaign lost or corrupted data across the shed/requota cycle")
	}
}

// TestRegisterLate starts agents against an always-on sink before their
// campaign exists: they absorb retryable unknown-campaign rejects, the
// campaign is registered, and collection completes bit-identically.
func TestRegisterLate(t *testing.T) {
	batches := tpBatches(24)
	want := tpLocal(t, batches)
	camp := CampaignID{Seed: 5, Duration: 24 * sim.Hour, Scenario: 1}

	sink, err := NewSink(SinkConfig{Addr: "127.0.0.1:0", AllowEmpty: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	agents := ksAgents(t, sink.Addr(), "late", camp, batches)
	waitUntil(t, 10*time.Second, "unknown-campaign rejects", func() bool {
		n, last := agents[0].Rejects()
		return n > 0 && last.Code == RejectUnknownCampaign
	})

	if err := sink.Register(KeyspaceConfig{Key: "late", Campaign: camp, Spec: tpSpec()}); err != nil {
		t.Fatal(err)
	}
	finishKSAgents(t, agents, 30*time.Second)
	rep, err := sink.WaitKeyspace("late", 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Agg.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Error("late-registered campaign diverged from the single-process reference")
	}
}

// TestDrainRejects checks graceful drain: live unfinished sessions get a
// retryable draining Reject, and so does every new hello.
func TestDrainRejects(t *testing.T) {
	sink, err := NewSink(SinkConfig{Addr: "127.0.0.1:0", Spec: tpSpec()})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	conn, _ := rawSession(t, sink.Addr(), "", CampaignID{}, "alpha")
	defer conn.Close()

	if err := sink.Drain(); err != nil {
		t.Fatal(err)
	}
	if !sink.Metrics().Draining {
		t.Error("metrics do not report draining")
	}

	// The live session is told to go away, retryably.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	fr, err := ReadFrame(conn)
	if err != nil {
		t.Fatalf("read on live session after drain: %v", err)
	}
	if fr.Kind != KindReject || fr.Reject.Code != RejectDraining || !fr.Reject.Retryable() {
		t.Fatalf("live session got %v (%+v), want retryable draining reject", fr.Kind, fr.Reject)
	}

	// A fresh hello is refused the same way.
	conn2, err := net.Dial("tcp", sink.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	spec := tpSpec().Testbeds[0]
	hello := &Hello{Testbed: spec.Name, Nodes: append(append([]string{}, spec.PANUs...), spec.NAP)}
	if err := writeControl(conn2, frameHello, hello); err != nil {
		t.Fatal(err)
	}
	conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	fr, err = ReadFrame(conn2)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Kind != KindReject || fr.Reject.Code != RejectDraining {
		t.Fatalf("new hello got %v (%+v), want draining reject", fr.Kind, fr.Reject)
	}
}

// TestShardedPartialsMerge splits the campaign across two sink shards (one
// testbed each, specs built with SubSpec so the depend trace is recorded),
// exports each shard's Partial, and checks MergePartials reproduces the
// unsharded sink's report bit for bit — the collector-level merge law.
func TestShardedPartialsMerge(t *testing.T) {
	batches := tpBatches(24)
	want := tpLocal(t, batches)
	camp := CampaignID{Seed: 6, Duration: 24 * sim.Hour, Scenario: 1}
	full := tpSpec()

	sinks := make([]*Sink, 2)
	for i, tb := range []string{"alpha", "beta"} {
		sub, err := analysis.SubSpec(full, []string{tb})
		if err != nil {
			t.Fatal(err)
		}
		sinks[i], err = NewSink(SinkConfig{Addr: "127.0.0.1:0",
			Keyspaces: []KeyspaceConfig{{Key: "camp", Campaign: camp, Spec: sub}}})
		if err != nil {
			t.Fatal(err)
		}
		defer sinks[i].Close()
	}

	var wg sync.WaitGroup
	for i, tb := range full.Testbeds {
		var shard []tpBatch
		for _, b := range batches {
			if b.testbed == tb.Name {
				shard = append(shard, b)
			}
		}
		a, err := NewAgent(AgentConfig{
			Addr: sinks[i].Addr(), Campaign: camp, Keyspace: "camp", Testbed: tb.Name,
			Nodes:        append(append([]string{}, tb.PANUs...), tb.NAP),
			RetryMin:     10 * time.Millisecond,
			StallTimeout: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range shard {
			if err := a.Ingest(b.testbed, b.node, b.reports, b.entries, b.watermark); err != nil {
				t.Fatal(err)
			}
		}
		counters := make(map[string]*workload.CountersSnapshot)
		for _, node := range tb.PANUs {
			counters[node] = tpCounters(node)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.Finish(counters, 24*sim.Hour, 30*time.Second); err != nil {
				t.Errorf("finish %s: %v", tb.Name, err)
			}
		}()
	}
	wg.Wait()

	parts := make([]*Partial, 2)
	for i, s := range sinks {
		p, err := s.WaitPartial("camp", 30*time.Second)
		if err != nil {
			t.Fatalf("partial from shard %d: %v", i, err)
		}
		parts[i] = p
	}
	rep, err := MergePartials(full, parts)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Agg.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Error("merged shards diverged from the single-sink reference")
	}
	for _, tb := range full.Testbeds {
		if rep.Durations[tb.Name] != 24*sim.Hour {
			t.Errorf("testbed %s duration %v", tb.Name, rep.Durations[tb.Name])
		}
		for _, node := range tb.PANUs {
			if !reflect.DeepEqual(rep.Counters[tb.Name][node].Snapshot(), tpCounters(node)) {
				t.Errorf("counters for %s/%s diverged through the merge", tb.Name, node)
			}
		}
	}
}

// rawSession opens a raw protocol session for one tpSpec testbed and returns
// the connection plus the sink's Resume answer.
func rawSession(t *testing.T, addr, keyspace string, campaign CampaignID, testbed string) (net.Conn, *Resume) {
	t.Helper()
	var spec *analysis.TestbedSpec
	full := tpSpec()
	for i := range full.Testbeds {
		if full.Testbeds[i].Name == testbed {
			spec = &full.Testbeds[i]
		}
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	hello := &Hello{Campaign: campaign, Keyspace: keyspace, Testbed: testbed,
		Nodes: append(append([]string{}, spec.PANUs...), spec.NAP)}
	if err := writeControl(conn, frameHello, hello); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	fr, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Kind != KindResume {
		t.Fatalf("handshake answered with %v (%+v), want resume", fr.Kind, fr.Reject)
	}
	return conn, fr.Resume
}

// TestResumeCursors drives raw protocol sessions and pins the resume
// handshake's cursor semantics per stream: cumulative acknowledgement under
// interleaving, a stream held back behind a sequence gap, and a duplicate
// hello landing on a still-live session.
func TestResumeCursors(t *testing.T) {
	// One scripted step: open a fresh session and check its resume cursors,
	// or send seq for node on session sess and check the cumulative ack.
	type step struct {
		hello       bool
		node        string
		seq         uint64
		sess        int               // session index the send goes on
		wantAck     uint64            // after a send
		wantCursors map[string]uint64 // after a hello
	}
	zero := map[string]uint64{"a1": 0, "a2": 0, "napA": 0}
	cases := []struct {
		name  string
		steps []step
	}{
		{name: "interleaved streams ack independently", steps: []step{
			{hello: true, wantCursors: zero},
			{node: "a1", seq: 1, wantAck: 1},
			{node: "a2", seq: 1, wantAck: 1},
			{node: "napA", seq: 1, wantAck: 1},
			{node: "a1", seq: 2, wantAck: 2},
			{hello: true, wantCursors: map[string]uint64{"a1": 2, "a2": 1, "napA": 1}},
		}},
		{name: "stream resumes behind the cumulative ack", steps: []step{
			{hello: true, wantCursors: zero},
			{node: "a1", seq: 1, wantAck: 1},
			// Seq 3 arrives before 2: parked, cursor stays at 1.
			{node: "a1", seq: 3, wantAck: 1},
			{hello: true, wantCursors: map[string]uint64{"a1": 1, "a2": 0, "napA": 0}},
			// Filling the gap drains the parked batch: cursor jumps to 3.
			{node: "a1", seq: 2, sess: 1, wantAck: 3},
			{hello: true, wantCursors: map[string]uint64{"a1": 3, "a2": 0, "napA": 0}},
		}},
		{name: "duplicate hello on a live session", steps: []step{
			{hello: true, wantCursors: zero},
			{node: "a1", seq: 1, wantAck: 1},
			// Second hello while the first session is still live: the sink
			// serves both; cursors reflect everything acknowledged so far.
			{hello: true, wantCursors: map[string]uint64{"a1": 1, "a2": 0, "napA": 0}},
			{node: "a1", seq: 2, sess: 1, wantAck: 2},
			// The ORIGINAL session keeps working too.
			{node: "a1", seq: 3, sess: 0, wantAck: 3},
			{hello: true, wantCursors: map[string]uint64{"a1": 3, "a2": 0, "napA": 0}},
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sink, err := NewSink(SinkConfig{Addr: "127.0.0.1:0", Spec: tpSpec()})
			if err != nil {
				t.Fatal(err)
			}
			defer sink.Close()
			var conns []net.Conn
			defer func() {
				for _, c := range conns {
					c.Close()
				}
			}()
			for _, st := range tc.steps {
				if st.hello {
					conn, res := rawSession(t, sink.Addr(), "", CampaignID{}, "alpha")
					conns = append(conns, conn)
					got := make(map[string]uint64, len(res.Cursors))
					for _, c := range res.Cursors {
						got[c.Node] = c.Seq
					}
					if !reflect.DeepEqual(got, st.wantCursors) {
						t.Fatalf("session %d resume cursors %v, want %v", len(conns)-1, got, st.wantCursors)
					}
					continue
				}
				conn := conns[st.sess]
				wm := sim.Time(st.seq) * sim.Hour
				b := &Batch{Testbed: "alpha", Node: st.node, Seq: st.seq, Watermark: wm,
					Entries: []core.SystemEntry{{At: wm - sim.Hour + sim.Second,
						Testbed: "alpha", Node: st.node, Source: core.SysSource(1)}}}
				if err := WriteBatch(conn, b); err != nil {
					t.Fatal(err)
				}
				conn.SetReadDeadline(time.Now().Add(5 * time.Second))
				fr, err := ReadFrame(conn)
				if err != nil {
					t.Fatal(err)
				}
				if fr.Kind != KindAck || fr.Ack.Node != st.node || fr.Ack.Seq != st.wantAck {
					t.Fatalf("send %s/%d answered %v (%+v), want ack seq %d",
						st.node, st.seq, fr.Kind, fr.Ack, st.wantAck)
				}
			}
		})
	}
}
