package collector

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/core"
)

// Repository is the central failure-data store: it accepts LogAnalyzer
// connections and accumulates their batches.
type Repository struct {
	ln net.Listener
	wg sync.WaitGroup

	mu      sync.Mutex
	stored  *sync.Cond // signalled on every stored batch
	reports []core.UserReport
	entries []core.SystemEntry
	batches int
	closed  bool
}

// NewRepository starts a repository listening on addr (use "127.0.0.1:0"
// for an ephemeral test port).
func NewRepository(addr string) (*Repository, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collector: listen %s: %w", addr, err)
	}
	r := &Repository{ln: ln}
	r.stored = sync.NewCond(&r.mu)
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr reports the listening address.
func (r *Repository) Addr() string { return r.ln.Addr().String() }

// acceptLoop serves incoming LogAnalyzer connections until Close.
func (r *Repository) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return // listener closed
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer conn.Close()
			r.serve(conn)
		}()
	}
}

// serve drains one connection's batches.
func (r *Repository) serve(conn net.Conn) {
	for {
		b, err := ReadBatch(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				// A malformed peer: drop the connection; partial batches
				// were already stored atomically per frame.
				return
			}
			return
		}
		r.mu.Lock()
		r.reports = append(r.reports, b.Reports...)
		r.entries = append(r.entries, b.Entries...)
		r.batches++
		r.stored.Broadcast()
		r.mu.Unlock()
	}
}

// WaitForBatches blocks until the repository has stored at least n batches,
// and reports whether it did before the timeout. Batch storage is
// asynchronous with respect to the sender's write — a LogAnalyzer's
// FlushOnce returns once the frame is on the wire — so collection drivers
// must rendezvous here before reading the repository, or a tail batch can
// still be in flight.
func (r *Repository) WaitForBatches(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		r.mu.Lock()
		r.stored.Broadcast()
		r.mu.Unlock()
	})
	defer timer.Stop()
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.batches < n && time.Now().Before(deadline) {
		r.stored.Wait()
	}
	return r.batches >= n
}

// Close stops accepting and waits for in-flight connections to finish.
func (r *Repository) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	err := r.ln.Close()
	r.wg.Wait()
	return err
}

// Reports returns a copy of the accumulated user reports.
func (r *Repository) Reports() []core.UserReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]core.UserReport, len(r.reports))
	copy(out, r.reports)
	return out
}

// Entries returns a copy of the accumulated system entries.
func (r *Repository) Entries() []core.SystemEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]core.SystemEntry, len(r.entries))
	copy(out, r.entries)
	return out
}

// Stats reports aggregate counts (reports, entries, batches).
func (r *Repository) Stats() (reports, entries, batches int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.reports), len(r.entries), r.batches
}
