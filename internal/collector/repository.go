package collector

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
)

// Repository is the central failure-data store: it accepts LogAnalyzer
// connections and accumulates their batches. It runs in one of two modes:
//
//   - retained (NewRepository): every record is kept, for raw-record
//     analysis and the tests that inspect individual reports;
//   - streaming (NewStreamingRepository): records fold into the running
//     aggregates behind the paper's tables as they arrive, so repository
//     memory is bounded by the senders' flush cadence, not the campaign
//     length.
type Repository struct {
	ln net.Listener
	wg sync.WaitGroup

	stream *analysis.Streamer // nil in retained mode

	mu       sync.Mutex
	storedCh chan struct{} // closed-and-replaced on every stored batch
	reports  []core.UserReport
	entries  []core.SystemEntry
	nReports int
	nEntries int
	batches  int
	rejected int // batches refused by the streaming aggregator
	closed   bool
}

// NewRepository starts a retained-mode repository listening on addr (use
// "127.0.0.1:0" for an ephemeral test port).
func NewRepository(addr string) (*Repository, error) {
	return newRepository(addr, nil)
}

// NewStreamingRepository starts a repository that folds incoming batches
// into streaming aggregates for the declared node set instead of retaining
// records. Read the results with Aggregates after the senders are done.
func NewStreamingRepository(addr string, spec analysis.StreamSpec) (*Repository, error) {
	s, err := analysis.NewStreamer(spec)
	if err != nil {
		return nil, err
	}
	return newRepository(addr, s)
}

func newRepository(addr string, stream *analysis.Streamer) (*Repository, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collector: listen %s: %w", addr, err)
	}
	r := &Repository{ln: ln, stream: stream, storedCh: make(chan struct{})}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr reports the listening address.
func (r *Repository) Addr() string { return r.ln.Addr().String() }

// Streaming reports whether the repository folds instead of retaining.
func (r *Repository) Streaming() bool { return r.stream != nil }

// acceptLoop serves incoming LogAnalyzer connections until Close.
func (r *Repository) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return // listener closed
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer conn.Close()
			r.serve(conn)
		}()
	}
}

// serve drains one connection's batches.
func (r *Repository) serve(conn net.Conn) {
	for {
		b, err := ReadBatch(conn)
		if err != nil {
			// io.EOF is the clean end between frames; anything else is a
			// malformed peer. Either way the connection is done; partial
			// batches were already stored atomically per frame.
			return
		}
		if r.stream != nil {
			// Shard ingest takes only the shard's own lock. The batch
			// sequence number lets the aggregator apply a node's flushes in
			// send order even when their connections race; batches from an
			// undeclared node (or a broken sequence) are a peer error: the
			// rejection is counted — silent loss would be indistinguishable
			// from a healthy run — and the connection dropped.
			if err := r.stream.IngestSeq(b.Testbed, b.Node, b.Reports, b.Entries,
				b.Watermark, b.Seq); err != nil {
				r.mu.Lock()
				r.rejected++
				r.broadcastLocked() // wake waiters so drivers can notice
				r.mu.Unlock()
				return
			}
			r.mu.Lock()
			r.nReports += len(b.Reports)
			r.nEntries += len(b.Entries)
			r.batches++
			r.broadcastLocked()
			r.mu.Unlock()
			continue
		}
		r.mu.Lock()
		r.reports = append(r.reports, b.Reports...)
		r.entries = append(r.entries, b.Entries...)
		r.nReports += len(b.Reports)
		r.nEntries += len(b.Entries)
		r.batches++
		r.broadcastLocked()
		r.mu.Unlock()
	}
}

// broadcastLocked wakes every WaitForBatches waiter. Caller holds mu.
func (r *Repository) broadcastLocked() {
	close(r.storedCh)
	r.storedCh = make(chan struct{})
}

// WaitForBatches blocks until the repository has stored at least n batches,
// and reports whether it did before the timeout. Batch storage is
// asynchronous with respect to the sender's write — a LogAnalyzer's
// FlushOnce returns once the frame is on the wire — so collection drivers
// must rendezvous here before reading the repository, or a tail batch can
// still be in flight. A Close wakes every waiter immediately (teardown never
// waits out the timeout).
func (r *Repository) WaitForBatches(n int, timeout time.Duration) bool {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		r.mu.Lock()
		if r.batches >= n {
			r.mu.Unlock()
			return true
		}
		if r.closed {
			r.mu.Unlock()
			return false
		}
		ch := r.storedCh
		r.mu.Unlock()
		select {
		case <-ch:
		case <-timer.C:
			r.mu.Lock()
			ok := r.batches >= n
			r.mu.Unlock()
			return ok
		}
	}
}

// Close stops accepting, wakes any waiters, and waits for in-flight
// connections to finish.
func (r *Repository) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.broadcastLocked()
	r.mu.Unlock()
	err := r.ln.Close()
	r.wg.Wait()
	return err
}

// Reports returns a copy of the accumulated user reports (nil in streaming
// mode — records are folded, not retained).
func (r *Repository) Reports() []core.UserReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stream != nil {
		return nil
	}
	out := make([]core.UserReport, len(r.reports))
	copy(out, r.reports)
	return out
}

// Entries returns a copy of the accumulated system entries (nil in
// streaming mode).
func (r *Repository) Entries() []core.SystemEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stream != nil {
		return nil
	}
	out := make([]core.SystemEntry, len(r.entries))
	copy(out, r.entries)
	return out
}

// Aggregates finalizes and returns the streaming aggregates (nil in
// retained mode). Call once the senders are done — typically after a
// WaitForBatches rendezvous; the repository must not receive afterwards.
func (r *Repository) Aggregates() *analysis.Aggregates {
	if r.stream == nil {
		return nil
	}
	return r.stream.Finalize()
}

// Stats reports aggregate counts (reports, entries, batches) — live in both
// modes.
func (r *Repository) Stats() (reports, entries, batches int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nReports, r.nEntries, r.batches
}

// Rejected reports how many batches the streaming aggregator refused
// (undeclared stream, broken sequence, records below the fold horizon).
// Collection drivers should treat a nonzero value as data loss.
func (r *Repository) Rejected() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rejected
}
