package collector

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// The transport suite runs real agent/sink sessions over loopback TCP
// against synthetic record streams and pins the plane's core promise: the
// sink's aggregates are bit-identical to feeding the same batches into a
// local analysis.Streamer — with a clean network, under seeded
// drop/duplicate/reorder injection, and across a kill-and-restore of the
// sink process state.

// tpSpec declares the synthetic campaign: two testbeds, five streams.
func tpSpec() analysis.StreamSpec {
	return analysis.StreamSpec{Testbeds: []analysis.TestbedSpec{
		{Name: "alpha", Kind: core.WLRandom, NAP: "napA", PANUs: []string{"a1", "a2"}},
		{Name: "beta", Kind: core.WLRealistic, NAP: "napB", PANUs: []string{"b1"}},
	}}
}

// tpBatch is one synthetic shipment (without its sequence number, which the
// agent assigns).
type tpBatch struct {
	testbed, node string
	reports       []core.UserReport
	entries       []core.SystemEntry
	watermark     sim.Time
}

// tpBatches generates hourly flushes for every stream of tpSpec,
// deterministic and time-ordered per stream.
func tpBatches(hours int) []tpBatch {
	rng := uint64(0x853C49E6748FEA9B)
	next := func(mod uint64) uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return (rng >> 33) % mod
	}
	type stream struct {
		testbed, node string
		isNAP         bool
	}
	streams := []stream{
		{"alpha", "a1", false}, {"alpha", "a2", false}, {"alpha", "napA", true},
		{"beta", "b1", false}, {"beta", "napB", true},
	}
	failures := core.UserFailures()
	var out []tpBatch
	for h := 1; h <= hours; h++ {
		wm := sim.Time(h) * sim.Hour
		start := wm - sim.Hour
		for _, st := range streams {
			b := tpBatch{testbed: st.testbed, node: st.node, watermark: wm}
			t := start
			for i, n := 0, int(next(3)); i < n; i++ {
				t += sim.Time(next(uint64(sim.Hour / 3)))
				if t >= wm {
					break
				}
				b.entries = append(b.entries, core.SystemEntry{
					At: t, Testbed: st.testbed, Node: st.node,
					Source: core.SysSource(1 + next(7)), Code: core.ErrorCode(next(5)),
				})
			}
			if !st.isNAP {
				t = start + sim.Second
				for i, m := 0, int(next(3)); i < m; i++ {
					t += sim.Time(next(uint64(sim.Hour / 3)))
					if t >= wm {
						break
					}
					r := core.UserReport{
						At: t, Testbed: st.testbed, Node: st.node,
						Failure:   failures[next(uint64(len(failures)))],
						SentPkts:  int(next(9000)),
						DistanceM: []float64{1, 5, 10}[next(3)],
					}
					if next(3) > 0 {
						r.Recovered = true
						r.Recovery = core.RecoveryAction(1 + next(uint64(core.NumRecoveryActions)))
						r.TTR = sim.Time(1+next(30)) * sim.Second
					}
					b.reports = append(b.reports, r)
				}
			}
			out = append(out, b)
		}
	}
	return out
}

// tpLocal folds the batch sequence through a local streamer: the
// single-process reference the distributed plane must match digit for digit.
func tpLocal(t *testing.T, batches []tpBatch) *analysis.AggregatesSnapshot {
	t.Helper()
	s, err := analysis.NewStreamer(tpSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if err := s.Ingest(b.testbed, b.node, b.reports, b.entries, b.watermark); err != nil {
			t.Fatal(err)
		}
	}
	return s.Finalize().Snapshot()
}

// tpCounters builds a deterministic counters snapshot for one node.
func tpCounters(node string) *workload.CountersSnapshot {
	c := workload.NewCounters()
	c.Cycles = len(node) * 7
	c.Connections = len(node) * 3
	c.Failures[core.UFPacketLoss] = len(node)
	var s stats.Summary
	s.Add(1.5)
	s.Add(float64(len(node)))
	c.IdleBeforeFailed = s
	return c.Snapshot()
}

// tpAgents ships the batches through one agent per testbed and finishes
// both. Returns the agents for stats inspection (already finished).
func tpAgents(t *testing.T, addr string, batches []tpBatch, fault FaultConfig) []*Agent {
	t.Helper()
	spec := tpSpec()
	agents := make([]*Agent, 0, len(spec.Testbeds))
	for i, tb := range spec.Testbeds {
		cfg := AgentConfig{
			Addr: addr, Testbed: tb.Name,
			Nodes:        append(append([]string{}, tb.PANUs...), tb.NAP),
			Fault:        fault,
			RetryEvery:   20 * time.Millisecond,
			StallTimeout: 100 * time.Millisecond,
		}
		cfg.Fault.Seed = fault.Seed + uint64(i) // distinct decision sequences
		a, err := NewAgent(cfg)
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, a)
	}
	byName := map[string]*Agent{"alpha": agents[0], "beta": agents[1]}
	for _, b := range batches {
		if err := byName[b.testbed].Ingest(b.testbed, b.node, b.reports, b.entries, b.watermark); err != nil {
			t.Fatal(err)
		}
	}
	for _, tb := range spec.Testbeds {
		counters := make(map[string]*workload.CountersSnapshot)
		for _, node := range tb.PANUs {
			counters[node] = tpCounters(node)
		}
		if err := byName[tb.Name].Finish(counters, 24*sim.Hour, 30*time.Second); err != nil {
			t.Fatalf("finish %s: %v", tb.Name, err)
		}
	}
	return agents
}

// TestAgentSinkLoopback: clean network, no checkpointing.
func TestAgentSinkLoopback(t *testing.T) {
	batches := tpBatches(24)
	want := tpLocal(t, batches)

	sink, err := NewSink(SinkConfig{Addr: "127.0.0.1:0", Spec: tpSpec()})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	agents := tpAgents(t, sink.Addr(), batches, FaultConfig{})
	defer func() {
		for _, a := range agents {
			a.Close()
		}
	}()
	rep, err := sink.Wait(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Agg.Snapshot(); !reflect.DeepEqual(want, got) {
		t.Errorf("distributed aggregates diverge from local streamer")
	}
	if rep.Counters["alpha"]["a1"].Cycles != tpCounters("a1").Cycles {
		t.Errorf("counters did not survive the Done frame")
	}
	if d := rep.Durations["beta"]; d != 24*sim.Hour {
		t.Errorf("duration did not survive the Done frame: %v", d)
	}
}

// TestAgentSinkUnderFaults: seeded loss, duplication and reordering on the
// data path; retransmission and duplicate filtering must still converge to
// the exact local aggregates.
func TestAgentSinkUnderFaults(t *testing.T) {
	batches := tpBatches(24)
	want := tpLocal(t, batches)

	sink, err := NewSink(SinkConfig{Addr: "127.0.0.1:0", Spec: tpSpec()})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	fault := FaultConfig{Seed: 99, Drop: 0.15, Duplicate: 0.15, Reorder: 0.2}
	agents := tpAgents(t, sink.Addr(), batches, fault)
	defer func() {
		for _, a := range agents {
			a.Close()
		}
	}()
	rep, err := sink.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Agg.Snapshot(); !reflect.DeepEqual(want, got) {
		t.Errorf("aggregates under fault injection diverge from local streamer")
	}
	retrans := 0
	for _, a := range agents {
		_, r := a.Stats()
		retrans += r
	}
	if retrans == 0 {
		t.Errorf("fault injection at 15%% drop caused no retransmissions — injector inactive?")
	}
	if rep.Agg.SeqGaps != 0 || rep.Agg.DroppedRecords != 0 {
		t.Errorf("loss leaked into the aggregates: %d gaps, %d dropped records",
			rep.Agg.SeqGaps, rep.Agg.DroppedRecords)
	}
}

// TestSinkCheckpointResume kills the sink mid-campaign (no graceful final
// checkpoint) and restarts it from the checkpoint file on the same port:
// the agents reconnect, resume from the Resume cursors, and the completed
// campaign matches the local reference digit for digit.
func TestSinkCheckpointResume(t *testing.T) {
	batches := tpBatches(24)
	want := tpLocal(t, batches)
	cpPath := filepath.Join(t.TempDir(), "sink.ckpt")

	sink, err := NewSink(SinkConfig{Addr: "127.0.0.1:0", Spec: tpSpec(),
		CheckpointPath: cpPath, CheckpointEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	addr := sink.Addr()

	spec := tpSpec()
	agents := make(map[string]*Agent)
	for _, tb := range spec.Testbeds {
		a, err := NewAgent(AgentConfig{
			Addr: addr, Testbed: tb.Name,
			Nodes:        append(append([]string{}, tb.PANUs...), tb.NAP),
			RetryEvery:   20 * time.Millisecond,
			StallTimeout: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		agents[tb.Name] = a
		defer a.Close()
	}

	// First half of the campaign, then wait for a checkpoint to exist.
	half := len(batches) / 2
	for _, b := range batches[:half] {
		if err := agents[b.testbed].Ingest(b.testbed, b.node, b.reports, b.entries, b.watermark); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		applied, _, _ := sink.Stats()
		if _, err := os.Stat(cpPath); err == nil && applied >= 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint after 10s (%d applied)", applied)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := sink.Abort(); err != nil { // SIGKILL double: no final checkpoint
		t.Fatal(err)
	}

	sink2, err := NewSink(SinkConfig{Addr: addr, Spec: tpSpec(),
		CheckpointPath: cpPath, CheckpointEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer sink2.Close()

	// Second half plus Done; the agents retransmit whatever the checkpoint
	// missed.
	for _, b := range batches[half:] {
		if err := agents[b.testbed].Ingest(b.testbed, b.node, b.reports, b.entries, b.watermark); err != nil {
			t.Fatal(err)
		}
	}
	for _, tb := range spec.Testbeds {
		counters := make(map[string]*workload.CountersSnapshot)
		for _, node := range tb.PANUs {
			counters[node] = tpCounters(node)
		}
		if err := agents[tb.Name].Finish(counters, 24*sim.Hour, 30*time.Second); err != nil {
			t.Fatalf("finish %s after resume: %v", tb.Name, err)
		}
	}
	rep, err := sink2.Wait(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Agg.Snapshot(); !reflect.DeepEqual(want, got) {
		t.Errorf("kill-and-resume aggregates diverge from local streamer")
	}
	if rep.Counters["beta"]["b1"] == nil {
		t.Errorf("counters lost across the resume")
	}
}

// TestSinkLostCheckpointDetected: a sink that comes back EMPTY (checkpoint
// gone) must be refused by agents that already had batches acknowledged —
// silent truncation is the one unrecoverable failure and has to be loud.
func TestSinkLostCheckpointDetected(t *testing.T) {
	batches := tpBatches(8)
	sink, err := NewSink(SinkConfig{Addr: "127.0.0.1:0", Spec: tpSpec()})
	if err != nil {
		t.Fatal(err)
	}
	addr := sink.Addr()
	spec := tpSpec()
	a, err := NewAgent(AgentConfig{
		Addr: addr, Testbed: "alpha",
		Nodes:        append(append([]string{}, spec.Testbeds[0].PANUs...), spec.Testbeds[0].NAP),
		RetryEvery:   20 * time.Millisecond,
		StallTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for _, b := range batches {
		if b.testbed != "alpha" {
			continue
		}
		if err := a.Ingest(b.testbed, b.node, b.reports, b.entries, b.watermark); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the sink acknowledged something (agent pruned its buffer).
	deadline := time.Now().Add(10 * time.Second)
	for {
		applied, _, _ := sink.Stats()
		if applied >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sink never applied batches")
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond) // let acks land
	sink.Abort()

	// An amnesiac sink on the same port.
	sink2, err := NewSink(SinkConfig{Addr: addr, Spec: tpSpec()})
	if err != nil {
		t.Fatal(err)
	}
	defer sink2.Close()
	deadline = time.Now().Add(10 * time.Second)
	for a.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("agent accepted a sink that lost acknowledged data")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCampaignMismatchRejected: an agent of a different campaign (same node
// names — node lists cannot tell campaigns apart) must be refused at the
// handshake and fail loudly instead of merging silently or retrying
// forever. A stale checkpoint from a different campaign must likewise be
// refused at sink startup.
func TestCampaignMismatchRejected(t *testing.T) {
	sink, err := NewSink(SinkConfig{Addr: "127.0.0.1:0", Spec: tpSpec(),
		Campaign: CampaignID{Seed: 1, Duration: 24 * sim.Hour, Scenario: 3}})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	spec := tpSpec()
	a, err := NewAgent(AgentConfig{
		Addr:       sink.Addr(),
		Campaign:   CampaignID{Seed: 2, Duration: 24 * sim.Hour, Scenario: 3},
		Testbed:    "alpha",
		Nodes:      append(append([]string{}, spec.Testbeds[0].PANUs...), spec.Testbeds[0].NAP),
		RetryEvery: 20 * time.Millisecond, StallTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	deadline := time.Now().Add(10 * time.Second)
	for a.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("agent with a mismatched campaign was not refused")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Checkpoint guard: a file recorded under campaign seed 1 must refuse
	// to serve a sink configured for seed 2.
	cpPath := filepath.Join(t.TempDir(), "sink.ckpt")
	cp1, err := NewSink(SinkConfig{Addr: "127.0.0.1:0", Spec: tpSpec(),
		Campaign:       CampaignID{Seed: 1, Duration: 24 * sim.Hour, Scenario: 3},
		CheckpointPath: cpPath, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := cp1.Close(); err != nil { // graceful close writes a checkpoint
		t.Fatal(err)
	}
	if _, err := NewSink(SinkConfig{Addr: "127.0.0.1:0", Spec: tpSpec(),
		Campaign:       CampaignID{Seed: 2, Duration: 24 * sim.Hour, Scenario: 3},
		CheckpointPath: cpPath}); err == nil {
		t.Fatal("sink accepted a checkpoint from a different campaign")
	}
}

// TestFaultInjectorDeterministic pins that the same seed yields the same
// decision sequence.
func TestFaultInjectorDeterministic(t *testing.T) {
	cfg := FaultConfig{Seed: 7, Drop: 0.3, Duplicate: 0.2, Reorder: 0.2}
	run := func() []int {
		inj := newFaultInjector(cfg)
		var counts []int
		frame := []byte{0, 0, 0, 1, 0}
		for i := 0; i < 200; i++ {
			out, _ := inj.apply(frame)
			counts = append(counts, len(out))
		}
		if h := inj.flush(); h != nil {
			counts = append(counts, -1)
		}
		return counts
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Error("fault decisions differ across runs with the same seed")
	}
	if inj := newFaultInjector(FaultConfig{}); inj != nil {
		t.Error("inactive fault config built an injector")
	}
}
