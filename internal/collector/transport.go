package collector

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/sim"
	"repro/internal/workload"
)

// The distributed collection plane's wire protocol, specified normatively in
// PROTOCOL.md. Every frame shares the batch frame layout — a 4-byte
// big-endian length prefix covering a kind byte plus payload — and the kind
// byte space extends the data codec tags (0 binary, 1 JSON) with control
// frames that carry the session protocol: an agent opens with Hello, the
// sink answers with Resume (the per-stream acknowledged cursors the agent
// must resume from), data batches flow as ordinary batch frames, the sink
// acknowledges durable progress with Ack, the agent announces shard
// completion with Done (final cursors + workload counters), and the sink
// releases it with Fin once everything is durable.

// Frame kinds beyond the data codec tags. Control payloads are JSON: they
// are rare (one Hello/Resume/Done/Fin per session, one small Ack per applied
// batch), and a debuggable handshake beats saving bytes there — the hot
// path, record batches, stays on the binary codec.
const (
	frameHello   byte = 2
	frameResume  byte = 3
	frameAck     byte = 4
	frameDone    byte = 5
	frameFin     byte = 6
	frameReject  byte = 7
	frameScatter byte = 8
)

// FrameKind classifies a decoded frame.
type FrameKind int

// Decoded frame kinds.
const (
	KindBatch FrameKind = iota
	KindHello
	KindResume
	KindAck
	KindDone
	KindFin
	KindReject
	KindScatter
)

// CampaignID identifies the campaign every process of a deployment must
// agree on. Node lists are identical across campaigns, so without this the
// sink could silently merge shards of different seeds, durations or
// scenarios into one meaningless report; the handshake refuses mismatches
// instead, and checkpoints refuse restores from a different campaign.
type CampaignID struct {
	Seed     uint64   `json:"seed"`
	Duration sim.Time `json:"duration"`
	Scenario int      `json:"scenario"`
}

// Hello opens an agent session: it names the campaign, the testbed shard
// and the streams the agent will ship (all of which must match the sink's
// declared campaign and spec exactly). Keyspace addresses one campaign of a
// multi-tenant sink; the empty string is the sink's default keyspace, which
// keeps single-campaign deployments (and pre-keyspace agents) working
// unchanged.
type Hello struct {
	Campaign CampaignID `json:"campaign"`
	Keyspace string     `json:"keyspace,omitempty"`
	Testbed  string     `json:"testbed"`
	Nodes    []string   `json:"nodes"`
	// Scatter marks the session as a scatternet district shard (protocol
	// §12): the agent ships piconet fold partials (kind 8) instead of record
	// batches. Absent on flat-campaign sessions, so v2 sessions interoperate
	// unchanged.
	Scatter *ScatterHello `json:"scatternet,omitempty"`
}

// Typed Reject codes. Configuration errors are fatal — a misconfigured
// deployment must fail loudly, not retry forever — while service conditions
// (an unregistered keyspace, a quota quarantine, a draining sink) are
// retryable: the agent backs off and tries again rather than dying.
const (
	// RejectCampaignMismatch: the keyspace exists but is a different
	// campaign (seed/duration/scenario). Fatal.
	RejectCampaignMismatch = "campaign-mismatch"
	// RejectUnknownShard: the testbed or its node set is not in the
	// keyspace's stream spec. Fatal.
	RejectUnknownShard = "unknown-shard"
	// RejectUnknownCampaign: no such keyspace (yet) — retryable, the
	// campaign may simply not have been registered with the sink so far.
	RejectUnknownCampaign = "unknown-campaign"
	// RejectOverQuota: the keyspace exhausted its ingest quota and is
	// quarantined — retryable once an operator raises the quota.
	RejectOverQuota = "over-quota"
	// RejectDraining: the sink is shutting down gracefully and refuses new
	// work — retryable against its replacement.
	RejectDraining = "draining"
)

// Reject answers a Hello (or interrupts a session) the sink cannot serve.
// Code is one of the typed Reject* constants; Reason is the human-readable
// detail. Pre-keyspace sinks sent only Reason; an empty Code is therefore
// treated as fatal, matching their semantics.
type Reject struct {
	Code   string `json:"code,omitempty"`
	Reason string `json:"reason"`
}

// Retryable reports whether the agent should back off and retry (service
// condition) rather than fail the deployment (configuration error).
func (r *Reject) Retryable() bool {
	switch r.Code {
	case RejectUnknownCampaign, RejectOverQuota, RejectDraining:
		return true
	}
	return false
}

// Error renders the reject for error chains.
func (r *Reject) Error() string {
	if r.Code == "" {
		return r.Reason
	}
	return fmt.Sprintf("%s: %s", r.Code, r.Reason)
}

// StreamCursor is one stream's position: the highest contiguously applied
// (and, when checkpointing, durably checkpointed) sequence number and the
// watermark that came with it.
type StreamCursor struct {
	Node      string   `json:"node"`
	Seq       uint64   `json:"seq"`
	Watermark sim.Time `json:"watermark"`
}

// Resume answers a Hello with every declared stream's acknowledged cursor;
// the agent retransmits everything after these positions and discards its
// buffered copies up to them.
type Resume struct {
	Cursors []StreamCursor `json:"cursors"`
}

// Ack acknowledges one stream's durable progress. Acks are cumulative: Seq
// covers every batch up to and including it, and the agent may drop its
// buffered copies. A checkpointing sink acknowledges only checkpoint-covered
// batches — applied-but-not-yet-checkpointed work stays unacknowledged so a
// crash can demand its retransmission.
type Ack struct {
	Node      string   `json:"node"`
	Seq       uint64   `json:"seq"`
	Watermark sim.Time `json:"watermark"`
}

// Done announces that the agent's shard finished its campaign: no new data
// will be produced. Final carries each stream's last assigned sequence
// number (how the sink knows whether retransmissions are still owed) and
// Counters the per-client workload counters the §6 scalars and Figure 3a
// need, which never travel through the record stream.
type Done struct {
	Testbed  string                                `json:"testbed"`
	Duration sim.Time                              `json:"duration"`
	Final    []StreamCursor                        `json:"final"`
	Counters map[string]*workload.CountersSnapshot `json:"counters"`
}

// Fin releases a finished agent: every batch up to the final cursors is
// durable and the session is over.
type Fin struct{}

// Frame is one decoded wire frame. WireBytes is the frame's full on-wire
// size (length prefix included) — what ingest byte quotas account.
type Frame struct {
	Kind      FrameKind
	WireBytes int
	Batch     *Batch
	Hello     *Hello
	Resume    *Resume
	Ack       *Ack
	Done      *Done
	Reject    *Reject
	Scatter   *ScatterBatch
}

// writeControl frames and writes one control payload (kind byte + JSON).
func writeControl(w io.Writer, kind byte, payload any) error {
	blob, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("collector: marshal control frame %d: %w", kind, err)
	}
	frame := make([]byte, 5, 5+len(blob))
	binary.BigEndian.PutUint32(frame[:4], uint32(1+len(blob)))
	frame[4] = kind
	frame = append(frame, blob...)
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("collector: write control frame: %w", err)
	}
	return nil
}

// ReadFrame reads one frame of any kind, dispatching on the kind byte. io.EOF
// is returned unchanged when the stream ends cleanly between frames.
func ReadFrame(r io.Reader) (*Frame, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("collector: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 || n > maxBatchBytes {
		return nil, fmt.Errorf("collector: implausible frame length %d", n)
	}
	if _, err := io.ReadFull(r, hdr[4:5]); err != nil {
		return nil, fmt.Errorf("collector: read frame kind: %w", err)
	}
	blob := make([]byte, int(n)-1)
	if _, err := io.ReadFull(r, blob); err != nil {
		return nil, fmt.Errorf("collector: read frame body: %w", err)
	}
	fr, err := decodeFrame(hdr[4], blob)
	if err != nil {
		return nil, err
	}
	fr.WireBytes = 4 + int(n)
	return fr, nil
}

// decodeFrame decodes one frame body by kind byte.
func decodeFrame(kind byte, blob []byte) (*Frame, error) {
	switch kind {
	case byte(CodecBinary):
		b, err := decodeBinaryBatch(blob)
		if err != nil {
			return nil, err
		}
		return &Frame{Kind: KindBatch, Batch: b}, nil
	case byte(CodecJSON):
		var b Batch
		if err := json.Unmarshal(blob, &b); err != nil {
			return nil, fmt.Errorf("collector: decode batch: %w", err)
		}
		return &Frame{Kind: KindBatch, Batch: &b}, nil
	case frameHello:
		var h Hello
		if err := json.Unmarshal(blob, &h); err != nil {
			return nil, fmt.Errorf("collector: decode hello: %w", err)
		}
		return &Frame{Kind: KindHello, Hello: &h}, nil
	case frameResume:
		var res Resume
		if err := json.Unmarshal(blob, &res); err != nil {
			return nil, fmt.Errorf("collector: decode resume: %w", err)
		}
		return &Frame{Kind: KindResume, Resume: &res}, nil
	case frameAck:
		var a Ack
		if err := json.Unmarshal(blob, &a); err != nil {
			return nil, fmt.Errorf("collector: decode ack: %w", err)
		}
		return &Frame{Kind: KindAck, Ack: &a}, nil
	case frameDone:
		var d Done
		if err := json.Unmarshal(blob, &d); err != nil {
			return nil, fmt.Errorf("collector: decode done: %w", err)
		}
		return &Frame{Kind: KindDone, Done: &d}, nil
	case frameFin:
		return &Frame{Kind: KindFin}, nil
	case frameReject:
		var rej Reject
		if err := json.Unmarshal(blob, &rej); err != nil {
			return nil, fmt.Errorf("collector: decode reject: %w", err)
		}
		return &Frame{Kind: KindReject, Reject: &rej}, nil
	case frameScatter:
		var sb ScatterBatch
		if err := json.Unmarshal(blob, &sb); err != nil {
			return nil, fmt.Errorf("collector: decode scatternet partial: %w", err)
		}
		return &Frame{Kind: KindScatter, Scatter: &sb}, nil
	default:
		return nil, fmt.Errorf("collector: unknown frame kind %d", kind)
	}
}

// encodeBatchFrame renders a complete data frame (length prefix + codec tag
// + payload) into a fresh buffer, so the fault injector can hold, duplicate
// or drop whole frames.
func encodeBatchFrame(b *Batch, codec Codec) ([]byte, error) {
	frame := make([]byte, 5, 4096)
	frame[4] = byte(codec)
	switch codec {
	case CodecBinary:
		frame = appendBinaryBatch(frame, b)
	case CodecJSON:
		blob, err := json.Marshal(b)
		if err != nil {
			return nil, fmt.Errorf("collector: marshal batch: %w", err)
		}
		frame = append(frame, blob...)
	default:
		return nil, fmt.Errorf("collector: unknown codec %d", codec)
	}
	n := len(frame) - 4
	if n > maxBatchBytes {
		return nil, fmt.Errorf("collector: batch of %d bytes exceeds limit", n)
	}
	binary.BigEndian.PutUint32(frame[:4], uint32(n))
	return frame, nil
}

// FaultConfig injects deterministic, seeded faults into an agent's outgoing
// DATA frames, emulating a lossy collection network above the TCP session:
// whole frames are dropped, duplicated, reordered with their successor, or
// delayed. Control frames are never injected — the loss model targets the
// collection payload; the session protocol underneath is what recovers it
// (retransmission after missing acknowledgements, duplicate filtering by
// sequence number at the sink). Rates are probabilities in [0,1]; the
// decision sequence is fully determined by Seed.
type FaultConfig struct {
	Seed      uint64
	Drop      float64       // P(frame is silently discarded)
	Duplicate float64       // P(frame is sent twice)
	Reorder   float64       // P(frame swaps with the next data frame)
	DelayRate float64       // P(frame is delayed by Delay before sending)
	Delay     time.Duration // wall-clock delay applied on a delay decision
}

// Active reports whether any fault injection is configured.
func (c FaultConfig) Active() bool {
	return c.Drop > 0 || c.Duplicate > 0 || c.Reorder > 0 || (c.DelayRate > 0 && c.Delay > 0)
}

// faultInjector applies a FaultConfig to a sequence of encoded data frames.
type faultInjector struct {
	cfg  FaultConfig
	rng  *rand.Rand
	held []byte // frame held back by a reorder decision

	dropped, duplicated, reordered, delayed int
}

// newFaultInjector builds the injector (nil when the config is inactive).
func newFaultInjector(cfg FaultConfig) *faultInjector {
	if !cfg.Active() {
		return nil
	}
	return &faultInjector{cfg: cfg, rng: rand.New(rand.NewSource(int64(cfg.Seed)))}
}

// apply decides one data frame's fate: the byte slices to put on the wire
// (possibly none) and a wall-clock delay to impose first.
func (f *faultInjector) apply(frame []byte) (out [][]byte, delay time.Duration) {
	if f == nil {
		return [][]byte{frame}, 0
	}
	if f.cfg.DelayRate > 0 && f.rng.Float64() < f.cfg.DelayRate {
		f.delayed++
		delay = f.cfg.Delay
	}
	if f.cfg.Drop > 0 && f.rng.Float64() < f.cfg.Drop {
		f.dropped++
		return nil, delay
	}
	if f.cfg.Duplicate > 0 && f.rng.Float64() < f.cfg.Duplicate {
		f.duplicated++
		out = append(out, frame)
	}
	if f.held != nil {
		// A held frame goes out after the current one (the swap).
		out = append(out, frame, f.held)
		f.held = nil
		return out, delay
	}
	if f.cfg.Reorder > 0 && f.rng.Float64() < f.cfg.Reorder {
		f.reordered++
		f.held = frame
		return out, delay
	}
	out = append(out, frame)
	return out, delay
}

// flush returns any held frame (called before control frames and at the end
// of a write burst, so a reorder decision cannot starve the last frame).
func (f *faultInjector) flush() []byte {
	if f == nil || f.held == nil {
		return nil
	}
	h := f.held
	f.held = nil
	return h
}
