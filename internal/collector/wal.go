package collector

// The agent-side write-ahead spill log (WAL) and the torn-write-guarded
// checkpoint file helpers. Together they close the two crash windows PR 5
// left open: an agent kill -9 no longer loses unacknowledged batches (they
// replay from the WAL through the ordinary resume handshake), and a sink
// (or sweep) checkpoint torn mid-write no longer poisons a restart (the
// trailer detects it and restore falls back to the previous good file).
//
// WAL file format (normative in PROTOCOL.md §10):
//
//	record := length (4 B big-endian u32, counts type+payload)
//	          type   (1 B)
//	          payload
//	          crc32  (4 B big-endian, IEEE, over type+payload)
//
// Record types: 1 header (JSON: campaign identity, testbed, acked cursors
// as of the last compaction), 2 frame (one encoded data frame, exactly the
// bytes offered to the uplink), 3 ack (JSON: one stream's cumulative
// acknowledged sequence). A file is a header followed by frame/ack records
// in append order. Replay stops at the first torn or CRC-corrupt record and
// truncates the file there: a record torn by the kill was not yet on the
// wire as an acknowledged batch, and the deterministic shard re-run
// regenerates its batch, so truncation never loses campaign data.
//
// Appends are plain synchronous writes without fsync: the crash model is a
// killed PROCESS (kill -9, OOM, panic), where the page cache survives and
// ordering is preserved. Machine-level power loss is out of scope — the
// shard simulation is deterministic, so even that only costs a re-run.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
)

// WAL record types.
const (
	walRecHeader byte = 1
	walRecFrame  byte = 2
	walRecAck    byte = 3
)

// walOverhead is the per-record framing cost: 4-byte length, 1-byte type,
// 4-byte CRC.
const walOverhead = 9

// walAckEvery is how far a stream's cumulative acknowledgement may advance
// before the WAL durably records it. Ack records exist only to shrink the
// replay (and are re-anchored at every compaction anyway); deferring them
// costs a restart at most walAckEvery already-acknowledged frames per
// stream, which the resume handshake prunes and the sink's duplicate filter
// absorbs — while halving the append syscalls on the hot ingest path.
const walAckEvery = 32

// walFlushThreshold caps the in-memory pending buffer: appendFrame flushes
// to disk once this many buffered bytes accumulate, whatever the caller's
// flush policy, so a long-lived session cannot defer durability without
// bound.
const walFlushThreshold = 64 << 10

// maxWALRecord bounds one WAL record's declared length (same guard as the
// wire: a corrupt length field must not demand gigabytes).
const maxWALRecord = maxBatchBytes + walOverhead

// walHeader is the WAL's first record: the campaign identity that guards a
// stale spill directory from contaminating a different campaign, and the
// acknowledged cursors as of the last compaction (acks recorded after the
// header arrive as walRecAck records).
type walHeader struct {
	Campaign CampaignID        `json:"campaign"`
	Testbed  string            `json:"testbed"`
	Acked    map[string]uint64 `json:"acked,omitempty"`
}

// walAck is one acknowledgement record: a stream's cumulative acknowledged
// sequence number.
type walAck struct {
	Node string `json:"node"`
	Seq  uint64 `json:"seq"`
}

// walFrame is one replayed unacknowledged data frame: the decoded batch
// (for its sequence/stream identity) plus the exact encoded bytes to
// retransmit.
type walFrame struct {
	batch *Batch
	raw   []byte
}

// walStream is one stream's replayed state: the highest sequence number
// ever assigned to the stream (acknowledged or not — the restart's ingest
// skip cursor), the cumulative acknowledged sequence, and the surviving
// unacknowledged frames in ascending sequence order.
type walStream struct {
	last   uint64
	acked  uint64
	frames []walFrame
}

// wal is an agent's open write-ahead spill log. All methods are called with
// the owning Agent's mutex held, which serializes appends, acknowledgement
// truncation and compaction against each other.
type wal struct {
	path      string
	f         *os.File
	campaign  CampaignID
	testbed   string
	acked     map[string]uint64
	ackOnDisk map[string]uint64 // cumulative acks durably recorded so far
	ackEvery  uint64            // ack advance before a durable record; tests set 1
	pending   []byte            // appended records not yet written to the file
	live      int64             // bytes of records covering unacknowledged frames
	dead      int64             // reclaimable bytes: header, ack records, acked frames
	budget    int64             // live-byte bound; 0 = unbounded
}

// walPath names a testbed shard's WAL file inside a spill directory.
func walPath(dir, testbed string) string {
	return filepath.Join(dir, testbed+".wal")
}

// appendWALRecord appends one framed record to buf.
func appendWALRecord(buf []byte, typ byte, payload []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(1+len(payload)))
	buf = append(buf, hdr[:]...)
	body := len(buf)
	buf = append(buf, typ)
	buf = append(buf, payload...)
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], crc32.ChecksumIEEE(buf[body:]))
	return append(buf, tail[:]...)
}

// walRecordSize is the on-disk size of a record with the given payload
// length.
func walRecordSize(payloadLen int) int64 {
	return int64(payloadLen) + walOverhead
}

// readWALRecord reads one record from blob at off. It returns the record
// type, payload, and the offset after the record; ok is false when the
// remaining bytes do not hold one intact, CRC-valid record (a torn tail).
func readWALRecord(blob []byte, off int) (typ byte, payload []byte, next int, ok bool) {
	if off+4 > len(blob) {
		return 0, nil, off, false
	}
	n := binary.BigEndian.Uint32(blob[off : off+4])
	if n < 1 || n > maxWALRecord {
		return 0, nil, off, false
	}
	end := off + 4 + int(n) + 4
	if end > len(blob) {
		return 0, nil, off, false
	}
	body := blob[off+4 : off+4+int(n)]
	want := binary.BigEndian.Uint32(blob[off+4+int(n) : end])
	if crc32.ChecksumIEEE(body) != want {
		return 0, nil, off, false
	}
	return body[0], body[1:], end, true
}

// openWAL opens (or creates) a shard's spill log and replays it. It returns
// the open log and the per-stream replayed state. A torn tail — the record
// a kill -9 interrupted mid-append — is truncated away; a WAL recorded
// under a different campaign or testbed is refused loudly.
func openWAL(dir, testbed string, campaign CampaignID, budget int64) (*wal, map[string]*walStream, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("collector: spill dir: %w", err)
	}
	path := walPath(dir, testbed)
	w := &wal{path: path, campaign: campaign, testbed: testbed,
		acked: make(map[string]uint64), ackOnDisk: make(map[string]uint64),
		ackEvery: walAckEvery, budget: budget}
	blob, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("collector: read spill log: %w", err)
	}

	streams := make(map[string]*walStream)
	get := func(node string) *walStream {
		st := streams[node]
		if st == nil {
			st = &walStream{}
			streams[node] = st
		}
		return st
	}
	good := 0 // offset after the last intact record
	if len(blob) > 0 {
		typ, payload, next, ok := readWALRecord(blob, 0)
		if !ok || typ != walRecHeader {
			// Unreadable header: the file never got a complete first record
			// (killed inside the very first append). Start over.
			blob = nil
		} else {
			var hdr walHeader
			if err := json.Unmarshal(payload, &hdr); err != nil {
				return nil, nil, fmt.Errorf("collector: corrupt spill log header %s: %w", path, err)
			}
			if hdr.Campaign != campaign || hdr.Testbed != testbed {
				return nil, nil, fmt.Errorf("collector: spill log %s is from a different campaign or shard "+
					"(%s, seed %d, %v, scenario %d; this agent runs %s, seed %d, %v, scenario %d) — "+
					"delete it to start over", path,
					hdr.Testbed, hdr.Campaign.Seed, hdr.Campaign.Duration, hdr.Campaign.Scenario,
					testbed, campaign.Seed, campaign.Duration, campaign.Scenario)
			}
			for node, seq := range hdr.Acked {
				w.acked[node] = seq
				if st := get(node); st.acked < seq {
					st.acked = seq
					if st.last < seq {
						st.last = seq
					}
				}
			}
			w.dead += walRecordSize(len(payload))
			good = next
			for good < len(blob) {
				typ, payload, next, ok = readWALRecord(blob, good)
				if !ok {
					break // torn tail: truncate here
				}
				switch typ {
				case walRecFrame:
					fr, err := ReadFrame(bytes.NewReader(payload))
					if err != nil || fr.Kind != KindBatch {
						// An intact record holding an undecodable frame is
						// corruption beyond a torn append; stop replay here
						// like a torn tail (the deterministic re-run
						// regenerates everything past this point).
						ok = false
					} else {
						b := fr.Batch
						st := get(b.Node)
						raw := append([]byte(nil), payload...)
						st.frames = append(st.frames, walFrame{batch: b, raw: raw})
						if st.last < b.Seq {
							st.last = b.Seq
						}
					}
				case walRecAck:
					var a walAck
					if err := json.Unmarshal(payload, &a); err != nil {
						ok = false
					} else {
						if w.acked[a.Node] < a.Seq {
							w.acked[a.Node] = a.Seq
						}
						st := get(a.Node)
						if st.acked < a.Seq {
							st.acked = a.Seq
						}
						if st.last < a.Seq {
							st.last = a.Seq
						}
						w.dead += walRecordSize(len(payload))
					}
				default:
					ok = false // unknown record type: treat as corruption
				}
				if !ok {
					break
				}
				good = next
			}
		}
	}
	// Drop acknowledged frames from the replayed streams and account the
	// surviving ones as live bytes.
	for _, st := range streams {
		keep := st.frames[:0]
		for _, f := range st.frames {
			if f.batch.Seq > st.acked {
				keep = append(keep, f)
				w.live += walRecordSize(len(f.raw))
			} else {
				w.dead += walRecordSize(len(f.raw))
			}
		}
		st.frames = keep
	}

	if blob == nil || good == 0 {
		// Fresh file (or one with an unreadable header): write the header.
		hdrPayload, err := json.Marshal(&walHeader{Campaign: campaign, Testbed: testbed})
		if err != nil {
			return nil, nil, err
		}
		rec := appendWALRecord(nil, walRecHeader, hdrPayload)
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, rec, 0o644); err != nil {
			return nil, nil, fmt.Errorf("collector: create spill log: %w", err)
		}
		if err := os.Rename(tmp, path); err != nil {
			return nil, nil, fmt.Errorf("collector: create spill log: %w", err)
		}
		w.dead = walRecordSize(len(hdrPayload))
		w.live = 0
	} else if good < len(blob) {
		// Torn tail: cut the file back to the last intact record.
		if err := os.Truncate(path, int64(good)); err != nil {
			return nil, nil, fmt.Errorf("collector: truncate torn spill log: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("collector: open spill log: %w", err)
	}
	w.f = f
	for node, seq := range w.acked {
		w.ackOnDisk[node] = seq // everything replayed came from durable records
	}
	return w, streams, nil
}

// appendFrame spills one encoded data frame. With flush set (or once the
// pending buffer passes walFlushThreshold) the record reaches the file
// before appendFrame returns; otherwise it is buffered until the next
// flush — the owning agent flushes before any frame is offered to the
// uplink, so a buffered record is by construction one that has never been
// sent, and losing it to a crash only costs the deterministic re-run a
// regeneration. appendFrame fails loudly when the spill budget would be
// exceeded — a sink outage has then outlasted what the operator
// provisioned for.
func (w *wal) appendFrame(raw []byte, flushNow bool) error {
	if w.f == nil {
		return errors.New("collector: spill log is closed")
	}
	sz := walRecordSize(len(raw))
	if w.budget > 0 && w.live+sz > w.budget {
		return fmt.Errorf("collector: spill budget exceeded: %d bytes of unacknowledged batches "+
			"+ %d new would pass the %d-byte budget (sink unreachable for too long?)",
			w.live, sz, w.budget)
	}
	w.pending = appendWALRecord(w.pending, walRecFrame, raw)
	w.live += sz
	if flushNow || len(w.pending) >= walFlushThreshold {
		return w.flush()
	}
	return nil
}

// flush writes every pending record to the file.
func (w *wal) flush() error {
	if w.f == nil || len(w.pending) == 0 {
		return nil
	}
	if _, err := w.f.Write(w.pending); err != nil {
		return fmt.Errorf("collector: spill append: %w", err)
	}
	w.pending = w.pending[:0]
	return nil
}

// noteAck records one stream's cumulative acknowledgement and moves the
// freed frame bytes from live to reclaimable. freed is the on-disk size of
// the frames this acknowledgement released (walRecordSize per frame). The
// durable ack record is deferred until the stream has advanced ackEvery
// sequences past its last recorded cursor — see walAckEvery for why that
// lag is safe.
func (w *wal) noteAck(node string, seq uint64, freed int64) error {
	if w.f == nil {
		return nil // closed during shutdown: acks are already durable at the sink
	}
	if w.acked[node] >= seq {
		return nil
	}
	w.acked[node] = seq
	w.live -= freed
	if w.live < 0 {
		w.live = 0
	}
	w.dead += freed
	if seq-w.ackOnDisk[node] < w.ackEvery {
		return nil // defer: a restart resends the short acked tail, the sink dedups it
	}
	payload, err := json.Marshal(&walAck{Node: node, Seq: seq})
	if err != nil {
		return err
	}
	w.pending = appendWALRecord(w.pending, walRecAck, payload)
	w.ackOnDisk[node] = seq
	w.dead += walRecordSize(len(payload))
	return nil
}

// shouldCompact reports whether enough reclaimable bytes have accumulated
// to be worth rewriting the file (acked frames + ack records dominate it).
func (w *wal) shouldCompact() bool {
	if w.f == nil {
		return false
	}
	return w.dead > 1<<20 || (w.dead > 1<<12 && w.dead > w.live)
}

// compact rewrites the log as a fresh header (carrying the acknowledged
// cursors) plus the surviving unacknowledged frames, via atomic rename.
// raws must be every unacknowledged frame in send order — exactly the
// owning agent's buffered raw frames.
func (w *wal) compact(raws [][]byte) error {
	if w.f == nil {
		return nil
	}
	hdrPayload, err := json.Marshal(&walHeader{Campaign: w.campaign, Testbed: w.testbed, Acked: w.acked})
	if err != nil {
		return err
	}
	buf := appendWALRecord(nil, walRecHeader, hdrPayload)
	var live int64
	for _, raw := range raws {
		buf = appendWALRecord(buf, walRecFrame, raw)
		live += walRecordSize(len(raw))
	}
	tmp := w.path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("collector: spill compaction: %w", err)
	}
	if err := os.Rename(tmp, w.path); err != nil {
		return fmt.Errorf("collector: spill compaction: %w", err)
	}
	f, err := os.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("collector: spill compaction reopen: %w", err)
	}
	w.f.Close()
	w.f = f
	for node, seq := range w.acked {
		w.ackOnDisk[node] = seq // the fresh header carries every cursor
	}
	w.pending = w.pending[:0] // the rewrite covered everything buffered
	w.live = live
	w.dead = walRecordSize(len(hdrPayload))
	return nil
}

// close flushes pending records and closes the log file; further appends
// become no-ops.
func (w *wal) close() {
	if w.f != nil {
		w.flush()
		w.f.Close()
		w.f = nil
	}
}

// abort closes the log file WITHOUT flushing pending records — the
// in-process double of kill -9, which loses whatever had not reached the
// page cache yet.
func (w *wal) abort() {
	if w.f != nil {
		w.pending = nil
		w.f.Close()
		w.f = nil
	}
}

// Torn-write-guarded checkpoint files. A checkpoint payload is written as
// payload || trailer, where the 12-byte trailer is
//
//	magic "btck" (4 B) || payload length (4 B big-endian) || CRC32-IEEE (4 B)
//
// and every write rotates the previous good file to path+".prev" before the
// atomic rename, so a restart always has at most one torn candidate and one
// known-good fallback. Restore refuses a file whose trailer is missing,
// whose length disagrees, or whose CRC fails — a truncated or half-written
// checkpoint can then never be mistaken for a short-but-valid one.

// durableTrailerLen is the guard trailer's size.
const durableTrailerLen = 12

// durableMagic marks a trailer-guarded checkpoint file.
var durableMagic = [4]byte{'b', 't', 'c', 'k'}

// PrevSuffix is appended to a checkpoint path to name the rotated
// previous-good copy kept as the torn-write fallback.
const PrevSuffix = ".prev"

// sealDurable appends the guard trailer to a payload.
func sealDurable(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+durableTrailerLen)
	out = append(out, payload...)
	out = append(out, durableMagic[:]...)
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(payload)))
	out = append(out, n[:]...)
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	return append(out, crc[:]...)
}

// unsealDurable verifies the trailer and returns the payload, or an error
// describing how the file is torn.
func unsealDurable(blob []byte) ([]byte, error) {
	if len(blob) < durableTrailerLen {
		return nil, fmt.Errorf("%d bytes is too short to hold the guard trailer", len(blob))
	}
	t := blob[len(blob)-durableTrailerLen:]
	if !bytes.Equal(t[:4], durableMagic[:]) {
		return nil, errors.New("guard trailer magic missing (torn or pre-trailer file)")
	}
	payload := blob[:len(blob)-durableTrailerLen]
	if n := binary.BigEndian.Uint32(t[4:8]); int(n) != len(payload) {
		return nil, fmt.Errorf("trailer declares %d payload bytes, file holds %d", n, len(payload))
	}
	if want := binary.BigEndian.Uint32(t[8:12]); crc32.ChecksumIEEE(payload) != want {
		return nil, errors.New("payload CRC mismatch")
	}
	return append([]byte(nil), payload...), nil
}

// WriteFileDurable writes payload to path with the torn-write guard
// trailer, via write-to-temp + atomic rename, rotating any existing file to
// path+PrevSuffix first so restore always has a previous-good fallback.
func WriteFileDurable(path string, payload []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, sealDurable(payload), 0o644); err != nil {
		return err
	}
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, path+PrevSuffix); err != nil {
			return err
		}
	}
	return os.Rename(tmp, path)
}

// ReadFileDurable reads a trailer-guarded file. A torn, truncated or
// corrupt primary falls back to path+PrevSuffix (the last known-good
// write); if neither file exists the error wraps fs.ErrNotExist, so
// callers can distinguish "no checkpoint yet" from "checkpoint destroyed".
func ReadFileDurable(path string) ([]byte, error) {
	blob, err := os.ReadFile(path)
	var primaryErr error
	switch {
	case err == nil:
		payload, uerr := unsealDurable(blob)
		if uerr == nil {
			return payload, nil
		}
		primaryErr = fmt.Errorf("%s: %v", path, uerr)
	case os.IsNotExist(err):
		primaryErr = nil // missing primary alone is not an error yet
	default:
		return nil, err
	}
	prev := path + PrevSuffix
	blob, err = os.ReadFile(prev)
	if err != nil {
		if os.IsNotExist(err) {
			if primaryErr != nil {
				return nil, fmt.Errorf("collector: torn checkpoint with no previous-good fallback: %w", primaryErr)
			}
			return nil, fmt.Errorf("collector: checkpoint %s: %w", path, fs.ErrNotExist)
		}
		return nil, err
	}
	payload, uerr := unsealDurable(blob)
	if uerr != nil {
		if primaryErr != nil {
			return nil, fmt.Errorf("collector: both checkpoint files are torn (%v; %s: %v)", primaryErr, prev, uerr)
		}
		return nil, fmt.Errorf("collector: previous-good checkpoint %s: %v", prev, uerr)
	}
	return payload, nil
}
