package collector

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/workload"
)

// The WAL and torn-write suite: the agent's spill log must replay exactly
// the unacknowledged tail after any kill point (including a tear inside the
// final record), and the guard-trailer checkpoint files must reject
// truncation at every byte boundary rather than resume from garbage.

// walTestFrame encodes a minimal batch frame for stream node/seq.
func walTestFrame(t *testing.T, node string, seq uint64) []byte {
	t.Helper()
	raw, err := encodeBatchFrame(&Batch{Node: node, Testbed: "alpha",
		Watermark: sim.Time(seq) * sim.Hour, Seq: seq}, CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestWALReplayTornTail truncates a spill log at every byte boundary and
// reopens it: whatever the cut, replay must recover a consistent prefix —
// contiguous unacknowledged frames acked+1..last, never garbage, never an
// error — and the truncated file must keep accepting appends. The full
// file must recover the exact pre-kill state.
func TestWALReplayTornTail(t *testing.T) {
	campaign := CampaignID{Seed: 3, Duration: 24 * sim.Hour, Scenario: 3}
	dir := t.TempDir()
	w, streams, err := openWAL(dir, "alpha", campaign, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.ackEvery = 1 // record the ack eagerly so the cut sweep crosses all three record types
	if len(streams) != 0 {
		t.Fatalf("fresh WAL replayed %d streams", len(streams))
	}
	var frames [][]byte
	for seq := uint64(1); seq <= 3; seq++ {
		raw := walTestFrame(t, "a1", seq)
		frames = append(frames, raw)
		if err := w.appendFrame(raw, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.noteAck("a1", 1, walRecordSize(len(frames[0]))); err != nil {
		t.Fatal(err)
	}
	w.close()
	blob, err := os.ReadFile(walPath(dir, "alpha"))
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(blob); cut++ {
		cutDir := t.TempDir()
		if err := os.WriteFile(walPath(cutDir, "alpha"), blob[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, streams, err := openWAL(cutDir, "alpha", campaign, 0)
		if err != nil {
			t.Fatalf("cut %d: replay failed: %v", cut, err)
		}
		st := streams["a1"]
		if st == nil {
			st = &walStream{}
		}
		if st.acked > st.last {
			t.Fatalf("cut %d: acked %d above last %d", cut, st.acked, st.last)
		}
		if st.last > 3 || st.acked > 1 {
			t.Fatalf("cut %d: replay invented state (last %d, acked %d)", cut, st.last, st.acked)
		}
		for i, f := range st.frames {
			want := st.acked + 1 + uint64(i)
			if f.batch.Seq != want {
				t.Fatalf("cut %d: frame %d has seq %d, want %d", cut, i, f.batch.Seq, want)
			}
			if !reflect.DeepEqual(f.raw, frames[f.batch.Seq-1]) {
				t.Fatalf("cut %d: frame %d bytes differ from the original append", cut, f.batch.Seq)
			}
		}
		if n := len(st.frames); st.last != st.acked+uint64(n) {
			t.Fatalf("cut %d: %d frames do not span acked %d..last %d", cut, n, st.acked, st.last)
		}
		// The recovered log must still be appendable.
		if err := w2.appendFrame(walTestFrame(t, "a1", st.last+1), true); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		w2.close()
	}

	// The untouched file recovers the exact pre-kill state.
	_, streams, err = openWAL(dir, "alpha", campaign, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := streams["a1"]
	if st == nil || st.last != 3 || st.acked != 1 || len(st.frames) != 2 {
		t.Fatalf("full replay diverged: %+v", st)
	}
}

// TestWALCompaction: once acknowledgements dominate the file, compaction
// rewrites it to a header (carrying the cursors) plus the unacknowledged
// frames, and a reopen sees the same state from a much smaller file.
func TestWALCompaction(t *testing.T) {
	campaign := CampaignID{Seed: 3, Duration: 24 * sim.Hour, Scenario: 3}
	dir := t.TempDir()
	w, _, err := openWAL(dir, "alpha", campaign, 0)
	if err != nil {
		t.Fatal(err)
	}
	var freed int64
	var last []byte
	for seq := uint64(1); seq <= 200; seq++ {
		raw := walTestFrame(t, "a1", seq)
		if err := w.appendFrame(raw, true); err != nil {
			t.Fatal(err)
		}
		if seq < 200 {
			freed += walRecordSize(len(raw))
		} else {
			last = raw
		}
	}
	grown, err := os.Stat(walPath(dir, "alpha"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.noteAck("a1", 199, freed); err != nil {
		t.Fatal(err)
	}
	if !w.shouldCompact() {
		t.Fatalf("%d dead / %d live bytes did not trigger compaction", w.dead, w.live)
	}
	if err := w.compact([][]byte{last}); err != nil {
		t.Fatal(err)
	}
	w.close()
	shrunk, err := os.Stat(walPath(dir, "alpha"))
	if err != nil {
		t.Fatal(err)
	}
	if shrunk.Size() >= grown.Size()/10 {
		t.Fatalf("compaction barely shrank the log: %d -> %d bytes", grown.Size(), shrunk.Size())
	}
	_, streams, err := openWAL(dir, "alpha", campaign, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := streams["a1"]
	if st == nil || st.acked != 199 || st.last != 200 || len(st.frames) != 1 {
		t.Fatalf("post-compaction replay diverged: %+v", st)
	}
}

// TestWALAckDeferral: ack records below the walAckEvery threshold stay
// in memory (a restart just resends a short acked tail the sink dedups),
// while an advance past the threshold is durably recorded and shrinks the
// replay.
func TestWALAckDeferral(t *testing.T) {
	campaign := CampaignID{Seed: 3, Duration: 24 * sim.Hour, Scenario: 3}
	dir := t.TempDir()
	w, _, err := openWAL(dir, "alpha", campaign, 0)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= walAckEvery+8; seq++ {
		if err := w.appendFrame(walTestFrame(t, "a1", seq), true); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.noteAck("a1", 10, 0); err != nil { // below threshold: deferred
		t.Fatal(err)
	}
	sizeAfterDeferred, err := os.Stat(walPath(dir, "alpha"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.noteAck("a1", walAckEvery+2, 0); err != nil { // past threshold: durable
		t.Fatal(err)
	}
	if err := w.flush(); err != nil {
		t.Fatal(err)
	}
	sizeAfterDurable, err := os.Stat(walPath(dir, "alpha"))
	if err != nil {
		t.Fatal(err)
	}
	if sizeAfterDurable.Size() <= sizeAfterDeferred.Size() {
		t.Fatal("threshold-crossing ack did not append a record")
	}
	w.close()
	_, streams, err := openWAL(dir, "alpha", campaign, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := streams["a1"]
	if st == nil || st.acked != walAckEvery+2 || len(st.frames) != 6 {
		t.Fatalf("replay did not honor the durable ack: %+v", st)
	}
	// The deferred ack at seq 10 must NOT have survived on its own: a
	// second log acked only below the threshold replays everything.
	dir2 := t.TempDir()
	w2, _, err := openWAL(dir2, "alpha", campaign, 0)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := w2.appendFrame(walTestFrame(t, "a1", seq), true); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.noteAck("a1", 2, 0); err != nil {
		t.Fatal(err)
	}
	w2.close()
	_, streams, err = openWAL(dir2, "alpha", campaign, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := streams["a1"]; st == nil || st.acked != 0 || len(st.frames) != 3 {
		t.Fatalf("deferred-only ack leaked into the replay: %+v", st)
	}
}

// TestWALCampaignMismatch: a spill directory recorded under a different
// campaign or shard must be refused loudly, never silently merged.
func TestWALCampaignMismatch(t *testing.T) {
	dir := t.TempDir()
	w, _, err := openWAL(dir, "alpha", CampaignID{Seed: 1, Duration: sim.Day, Scenario: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.close()
	if _, _, err := openWAL(dir, "alpha", CampaignID{Seed: 2, Duration: sim.Day, Scenario: 3}, 0); err == nil {
		t.Fatal("WAL from a different campaign was accepted")
	} else if !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("unhelpful mismatch error: %v", err)
	}
}

// TestAgentSpillBudgetOverflow: with the sink unreachable the agent keeps
// the campaign running while spilling — until the budget is exceeded, at
// which point Ingest (and Err) fail loudly instead of eating the disk.
func TestAgentSpillBudgetOverflow(t *testing.T) {
	a, err := NewAgent(AgentConfig{
		Addr:     "127.0.0.1:1", // reserved port: every dial fails fast
		Campaign: CampaignID{Seed: 3, Duration: 24 * sim.Hour, Scenario: 3},
		Testbed:  "alpha", Nodes: []string{"a1", "a2", "napA"},
		SpillDir: t.TempDir(), SpillBudget: 512,
		DialTimeout: 50 * time.Millisecond, RetryMin: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var ingestErr error
	for seq := 1; seq <= 100; seq++ {
		ingestErr = a.Ingest("alpha", "a1", nil, nil, sim.Time(seq)*sim.Hour)
		if ingestErr != nil {
			break
		}
	}
	if ingestErr == nil {
		t.Fatal("100 unshippable batches never exceeded a 512-byte spill budget")
	}
	if !strings.Contains(ingestErr.Error(), "spill budget exceeded") {
		t.Fatalf("unhelpful budget error: %v", ingestErr)
	}
	if a.Err() == nil {
		t.Fatal("budget overflow did not latch as the agent's fatal error")
	}
}

// TestDurableFileTornAtEveryByte truncates a guard-trailed checkpoint at
// every byte boundary: only the intact file may yield the new payload, and
// every tear must fall back to the rotated previous-good copy. Both files
// torn is a loud error; both missing is fs.ErrNotExist (fresh start).
func TestDurableFileTornAtEveryByte(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck")
	first := []byte("first checkpoint payload")
	second := []byte("second checkpoint payload, a little longer than the first")
	if err := WriteFileDurable(path, first); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileDurable(path, second); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := os.ReadFile(path + PrevSuffix)
	if err != nil {
		t.Fatalf("previous-good rotation missing: %v", err)
	}
	for cut := 0; cut <= len(blob); cut++ {
		if err := os.WriteFile(path, blob[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFileDurable(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := first
		if cut == len(blob) {
			want = second
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cut %d: restored %q, want %q", cut, got, want)
		}
	}
	// Both candidates torn: loud error, not fs.ErrNotExist, not silence.
	if err := os.WriteFile(path, blob[:len(blob)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+PrevSuffix, prev[:len(prev)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFileDurable(path); err == nil {
		t.Fatal("two torn checkpoints restored without error")
	} else if errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("torn checkpoints misreported as missing: %v", err)
	}
	// Both missing: fs.ErrNotExist so callers start fresh.
	os.Remove(path)
	os.Remove(path + PrevSuffix)
	if _, err := ReadFileDurable(path); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing checkpoints: err = %v, want fs.ErrNotExist", err)
	}
}

// TestSinkTornCheckpointFallsBack: a sink restarted on a checkpoint torn by
// the crash must fall back to the previous good checkpoint; with no
// fallback available it must refuse to start rather than resume from
// garbage.
func TestSinkTornCheckpointFallsBack(t *testing.T) {
	batches := tpBatches(24)
	cpPath := filepath.Join(t.TempDir(), "sink.ckpt")
	sink, err := NewSink(SinkConfig{Addr: "127.0.0.1:0", Spec: tpSpec(),
		CheckpointPath: cpPath, CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	agents := tpAgents(t, sink.Addr(), batches, FaultConfig{})
	for _, a := range agents {
		a.Close()
	}
	if _, err := sink.Wait(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	sink.Abort()
	blob, err := os.ReadFile(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cpPath + PrevSuffix); err != nil {
		t.Fatalf("checkpoint cadence never rotated a previous-good file: %v", err)
	}

	for _, cut := range []int{0, 7, durableTrailerLen - 1, len(blob) / 2, len(blob) - 1} {
		if err := os.WriteFile(cpPath, blob[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := NewSink(SinkConfig{Addr: "127.0.0.1:0", Spec: tpSpec(),
			CheckpointPath: cpPath, CheckpointEvery: 3})
		if err != nil {
			t.Fatalf("cut %d: restart did not fall back to the previous checkpoint: %v", cut, err)
		}
		s2.Abort()
	}

	// No previous-good fallback: a torn checkpoint must refuse to start.
	if err := os.WriteFile(cpPath, blob[:len(blob)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	os.Remove(cpPath + PrevSuffix)
	if _, err := NewSink(SinkConfig{Addr: "127.0.0.1:0", Spec: tpSpec(),
		CheckpointPath: cpPath, CheckpointEvery: 3}); err == nil {
		t.Fatal("sink started from a torn checkpoint with no fallback")
	}
}

// tpSpillAgents builds one spill-enabled agent per testbed (not yet fed or
// finished).
func tpSpillAgents(t testing.TB, addr, spillDir string) map[string]*Agent {
	t.Helper()
	agents := make(map[string]*Agent)
	for _, tb := range tpSpec().Testbeds {
		a, err := NewAgent(AgentConfig{
			Addr: addr, Testbed: tb.Name,
			Nodes:        append(append([]string{}, tb.PANUs...), tb.NAP),
			SpillDir:     spillDir,
			RetryMin:     5 * time.Millisecond,
			RetryMax:     50 * time.Millisecond,
			StallTimeout: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		agents[tb.Name] = a
	}
	return agents
}

// tpFinish finishes every agent with the standard counters.
func tpFinish(t testing.TB, agents map[string]*Agent) {
	t.Helper()
	for _, tb := range tpSpec().Testbeds {
		counters := make(map[string]*workload.CountersSnapshot)
		for _, node := range tb.PANUs {
			counters[node] = tpCounters(node)
		}
		if err := agents[tb.Name].Finish(counters, 24*sim.Hour, 30*time.Second); err != nil {
			t.Fatalf("finish %s: %v", tb.Name, err)
		}
	}
}

// TestAgentSpillKillResume kills both agents mid-campaign (Abort, the
// in-process kill -9 double: only the spill log survives) and restarts them
// on the same spill directory. The restarted agents replay the
// unacknowledged tail, skip the drains their deterministic re-run
// regenerates, and the completed campaign matches the local reference digit
// for digit.
func TestAgentSpillKillResume(t *testing.T) {
	batches := tpBatches(24)
	want := tpLocal(t, batches)
	spill := t.TempDir()
	cpPath := filepath.Join(t.TempDir(), "sink.ckpt")

	sink, err := NewSink(SinkConfig{Addr: "127.0.0.1:0", Spec: tpSpec(),
		CheckpointPath: cpPath, CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	// First incarnation: half the campaign, then kill -9 both agents after
	// the sink demonstrably acknowledged some of it (so the replay exercises
	// both ack-truncated and unacknowledged WAL records).
	agents := tpSpillAgents(t, sink.Addr(), spill)
	half := len(batches) / 2
	for _, b := range batches[:half] {
		if err := agents[b.testbed].Ingest(b.testbed, b.node, b.reports, b.entries, b.watermark); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		applied, _, _ := sink.Stats()
		if applied >= 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sink never applied the first half (%d applied)", applied)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, a := range agents {
		a.Abort()
	}

	// Second incarnation: the deterministic shard re-run replays every drain
	// from the start; the agents must skip what the WAL already covers and
	// ship the rest.
	agents = tpSpillAgents(t, sink.Addr(), spill)
	defer func() {
		for _, a := range agents {
			a.Close()
		}
	}()
	for _, b := range batches {
		if err := agents[b.testbed].Ingest(b.testbed, b.node, b.reports, b.entries, b.watermark); err != nil {
			t.Fatal(err)
		}
	}
	tpFinish(t, agents)
	rep, err := sink.Wait(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Agg.Snapshot(); !reflect.DeepEqual(want, got) {
		t.Errorf("kill-and-replay aggregates diverge from local streamer")
	}
	// The replay skipped what the sink had acknowledged: the second
	// incarnation must have shipped fewer frames than the whole campaign.
	total := 0
	for _, a := range agents {
		sent, _ := a.Stats()
		total += sent
	}
	if total >= len(batches) {
		t.Errorf("restarted agents sent %d frames for a %d-batch campaign — replay skipped nothing",
			total, len(batches))
	}
}

// TestAgentSpillAckRaceReconnect races acknowledgement-driven WAL
// truncation against reconnect-and-resume: a checkpointing sink is killed
// and restarted twice mid-campaign while spill-enabled agents keep
// ingesting, retransmitting and truncating. Run under -race in CI, and the
// final aggregates must still be exact.
func TestAgentSpillAckRaceReconnect(t *testing.T) {
	batches := tpBatches(24)
	want := tpLocal(t, batches)
	spill := t.TempDir()
	cpPath := filepath.Join(t.TempDir(), "sink.ckpt")
	mkSink := func(addr string) *Sink {
		s, err := NewSink(SinkConfig{Addr: addr, Spec: tpSpec(),
			CheckpointPath: cpPath, CheckpointEvery: 2})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	sink := mkSink("127.0.0.1:0")
	addr := sink.Addr()
	agents := tpSpillAgents(t, addr, spill)
	defer func() {
		for _, a := range agents {
			a.Close()
		}
	}()

	kills := map[int]bool{len(batches) / 3: true, 2 * len(batches) / 3: true}
	for i, b := range batches {
		if err := agents[b.testbed].Ingest(b.testbed, b.node, b.reports, b.entries, b.watermark); err != nil {
			t.Fatal(err)
		}
		if kills[i] {
			// Let acks land mid-stream, then kill the sink under the agents.
			deadline := time.Now().Add(10 * time.Second)
			for {
				if applied, _, _ := sink.Stats(); applied > 0 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("sink applied nothing before the scheduled kill")
				}
				time.Sleep(2 * time.Millisecond)
			}
			sink.Abort()
			sink = mkSink(addr)
		}
	}
	defer sink.Close()
	tpFinish(t, agents)
	rep, err := sink.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Agg.Snapshot(); !reflect.DeepEqual(want, got) {
		t.Errorf("ack-race aggregates diverge from local streamer")
	}
}
