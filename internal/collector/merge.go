package collector

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The sharded-sink merge tier: a campaign too hot for one sink is split
// across N sink shards, each hosting a disjoint subset of the campaign's
// testbeds under the same keyspace (built with analysis.SubSpec, so every
// shard records the depend trace). When a shard's subset completes, the
// shard exports a Partial; MergePartials folds the N partials into the one
// SinkReport a single sink hosting the whole campaign would have produced —
// byte-identical tables, per the analysis merge laws.

// Partial is one sink shard's completed contribution to a campaign: the
// shard's finalized aggregates (with depend trace), plus the counters and
// durations from the Done frames of the testbeds it hosted. Serialized as
// JSON by cmd/btsink (-partial-dir) and merged by cmd/btmerge.
type Partial struct {
	Keyspace  string                                           `json:"keyspace,omitempty"`
	Campaign  CampaignID                                       `json:"campaign"`
	Shard     analysis.ShardAggregates                         `json:"shard"`
	Counters  map[string]map[string]*workload.CountersSnapshot `json:"counters,omitempty"`
	Durations map[string]sim.Time                              `json:"durations,omitempty"`
}

// Partial exports one completed keyspace's shard partial. It fails while
// the keyspace's campaign is still incomplete — a partial must cover its
// testbed subset entirely, or the merge would silently under-count.
func (s *Sink) Partial(key string) (*Partial, error) {
	s.mu.Lock()
	t := s.tenants[key]
	if t == nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("collector: partial of unknown keyspace %q", key)
	}
	if t.agg == nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("collector: partial of incomplete keyspace %q (%d/%d testbeds finished)",
			key, len(t.finished), len(t.cfg.Spec.Testbeds))
	}
	p := &Partial{
		Keyspace: key,
		Campaign: t.cfg.Campaign,
		Shard: analysis.ShardAggregates{
			Agg:   t.agg.Snapshot(),
			Trace: append([]analysis.DependEvent(nil), t.trace...),
		},
		Counters:  make(map[string]map[string]*workload.CountersSnapshot, len(t.counters)),
		Durations: make(map[string]sim.Time, len(t.durations)),
	}
	for _, tb := range t.cfg.Spec.Testbeds {
		p.Shard.Testbeds = append(p.Shard.Testbeds, tb.Name)
	}
	for tb, m := range t.counters {
		p.Counters[tb] = m
	}
	for tb, d := range t.durations {
		p.Durations[tb] = d
	}
	s.mu.Unlock()
	return p, nil
}

// WaitPartial blocks until the keyspace completes, then exports its shard
// partial. A zero timeout waits indefinitely.
func (s *Sink) WaitPartial(key string, timeout time.Duration) (*Partial, error) {
	if _, err := s.WaitKeyspace(key, timeout); err != nil {
		return nil, err
	}
	return s.Partial(key)
}

// MergePartials folds sink-shard partials of one campaign into the full
// campaign's SinkReport. spec is the FULL campaign stream spec; the partials
// must agree on campaign and keyspace, and their testbed subsets must
// disjointly cover the spec (validated by analysis.MergeAggregates, which
// also reconstructs the order-sensitive Table 4 state from the shards'
// depend traces).
func MergePartials(spec analysis.StreamSpec, parts []*Partial) (*SinkReport, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("collector: merge of zero partials")
	}
	shards := make([]analysis.ShardAggregates, len(parts))
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("collector: nil partial %d", i)
		}
		if p.Campaign != parts[0].Campaign || p.Keyspace != parts[0].Keyspace {
			return nil, fmt.Errorf("collector: partial %d is from a different campaign "+
				"(keyspace %q, seed %d vs keyspace %q, seed %d)", i,
				p.Keyspace, p.Campaign.Seed, parts[0].Keyspace, parts[0].Campaign.Seed)
		}
		shards[i] = p.Shard
	}
	agg, err := analysis.MergeAggregates(spec, shards)
	if err != nil {
		return nil, err
	}
	rep := &SinkReport{
		Agg:       agg,
		Counters:  make(map[string]map[string]*workload.Counters),
		Durations: make(map[string]sim.Time),
	}
	for _, p := range parts {
		for tb, m := range p.Counters {
			if _, dup := rep.Counters[tb]; dup {
				return nil, fmt.Errorf("collector: testbed %q counters in more than one partial", tb)
			}
			rep.Counters[tb] = make(map[string]*workload.Counters, len(m))
			for node, snap := range m {
				c, err := workload.RestoreCounters(snap)
				if err != nil {
					return nil, fmt.Errorf("collector: counters for %s/%s: %w", tb, node, err)
				}
				rep.Counters[tb][node] = c
			}
		}
		for tb, d := range p.Durations {
			rep.Durations[tb] = d
		}
	}
	return rep, nil
}
