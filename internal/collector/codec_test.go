package collector

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/coalesce"
	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/sim"
)

// fullBatch exercises every field of both record types, including negative
// and boundary values the varint zigzag must survive.
func fullBatch() *Batch {
	return &Batch{
		Node: "Verde", Testbed: "random", Watermark: 9 * sim.Hour,
		Reports: []core.UserReport{
			{
				At: 90*sim.Minute + 17, Testbed: "random", Node: "Verde",
				Failure: core.UFPANConnectFailed, Workload: core.WLRealistic,
				App: core.AppP2P, Packet: core.PTDH5,
				SentPkts: 123456, RecvdPkts: 98765, CycleIdx: 17,
				SDPFlag: true, ScanFlag: false, DistanceM: 7.25,
				IdleBefore: 27 * sim.Second, ConnID: 1 << 62,
				Masked: true, Recovered: true, Recovery: core.RABTStackReset,
				TTR:   95 * sim.Second,
				Phase: core.PhaseOpen, Verdict: core.VerdictDynamicAvailability,
			},
			{At: 0, Node: "Win", Failure: core.UFPacketLoss, DistanceM: 0.5,
				Phase: core.PhaseSend, Verdict: core.VerdictTransient},
		},
		Entries: []core.SystemEntry{
			{
				At: 2 * sim.Hour, Testbed: "random", Node: "Giallo",
				Source: core.SrcHCI, Code: core.CodeHCICommandTimeout,
				Detail: "command timeout (hci_cmd)", ConnID: 42,
			},
			{At: 2 * sim.Hour, Node: "Verde", Source: core.SrcBNEP, Code: core.CodeBNEPAddFailed},
		},
	}
}

// TestCrossCodecEquivalence is the codec acceptance test: the same batch
// written with the binary codec and with the JSON debug codec decodes to
// deep-equal records, and each codec round-trips bit-exactly.
func TestCrossCodecEquivalence(t *testing.T) {
	in := fullBatch()
	var binBuf, jsonBuf bytes.Buffer
	if err := WriteBatchCodec(&binBuf, in, CodecBinary); err != nil {
		t.Fatal(err)
	}
	if err := WriteBatchCodec(&jsonBuf, in, CodecJSON); err != nil {
		t.Fatal(err)
	}
	fromBin, err := ReadBatch(&binBuf)
	if err != nil {
		t.Fatalf("binary decode: %v", err)
	}
	fromJSON, err := ReadBatch(&jsonBuf)
	if err != nil {
		t.Fatalf("json decode: %v", err)
	}
	if !reflect.DeepEqual(fromBin, in) {
		t.Errorf("binary round trip diverges:\n got %+v\nwant %+v", fromBin, in)
	}
	if !reflect.DeepEqual(fromJSON, in) {
		t.Errorf("json round trip diverges:\n got %+v\nwant %+v", fromJSON, in)
	}
	if !reflect.DeepEqual(fromBin, fromJSON) {
		t.Error("binary and json decodes disagree")
	}
}

// encodeV1Frame hand-builds a version-1 binary frame for b: the pre-taxonomy
// wire layout, byte for byte — the version tag says 1 and no taxonomy byte
// follows TTR. This is what every agent built before PR 10 puts on the wire.
func encodeV1Frame(b *Batch) []byte {
	tab := &stringTable{index: make(map[string]uint64, 8)}
	tab.intern(b.Node)
	tab.intern(b.Testbed)
	for i := range b.Reports {
		tab.intern(b.Reports[i].Testbed)
		tab.intern(b.Reports[i].Node)
	}
	for i := range b.Entries {
		tab.intern(b.Entries[i].Testbed)
		tab.intern(b.Entries[i].Node)
		tab.intern(b.Entries[i].Detail)
	}
	frame := []byte{0, 0, 0, 0, byte(CodecBinary)}
	frame = binary.AppendUvarint(frame, legacyBinaryVersion)
	frame = binary.AppendUvarint(frame, uint64(len(tab.list)))
	for _, s := range tab.list {
		frame = binary.AppendUvarint(frame, uint64(len(s)))
		frame = append(frame, s...)
	}
	frame = binary.AppendUvarint(frame, tab.intern(b.Node))
	frame = binary.AppendUvarint(frame, tab.intern(b.Testbed))
	frame = binary.AppendVarint(frame, int64(b.Watermark))
	frame = binary.AppendUvarint(frame, b.Seq)
	frame = binary.AppendUvarint(frame, uint64(len(b.Reports)))
	for i := range b.Reports {
		r := &b.Reports[i]
		frame = binary.AppendVarint(frame, int64(r.At))
		frame = binary.AppendUvarint(frame, tab.intern(r.Testbed))
		frame = binary.AppendUvarint(frame, tab.intern(r.Node))
		frame = binary.AppendVarint(frame, int64(r.Failure))
		frame = binary.AppendVarint(frame, int64(r.Workload))
		frame = binary.AppendVarint(frame, int64(r.App))
		frame = binary.AppendVarint(frame, int64(r.Packet))
		frame = binary.AppendVarint(frame, int64(r.SentPkts))
		frame = binary.AppendVarint(frame, int64(r.RecvdPkts))
		frame = binary.AppendVarint(frame, int64(r.CycleIdx))
		var flags byte
		if r.SDPFlag {
			flags |= 1
		}
		if r.ScanFlag {
			flags |= 2
		}
		if r.Masked {
			flags |= 4
		}
		if r.Recovered {
			flags |= 8
		}
		frame = append(frame, flags)
		frame = binary.LittleEndian.AppendUint64(frame, math.Float64bits(r.DistanceM))
		frame = binary.AppendVarint(frame, int64(r.IdleBefore))
		frame = binary.AppendUvarint(frame, r.ConnID)
		frame = binary.AppendVarint(frame, int64(r.Recovery))
		frame = binary.AppendVarint(frame, int64(r.TTR))
	}
	frame = binary.AppendUvarint(frame, uint64(len(b.Entries)))
	for i := range b.Entries {
		e := &b.Entries[i]
		frame = binary.AppendVarint(frame, int64(e.At))
		frame = binary.AppendUvarint(frame, tab.intern(e.Testbed))
		frame = binary.AppendUvarint(frame, tab.intern(e.Node))
		frame = binary.AppendVarint(frame, int64(e.Source))
		frame = binary.AppendVarint(frame, int64(e.Code))
		frame = binary.AppendUvarint(frame, tab.intern(e.Detail))
		frame = binary.AppendUvarint(frame, e.ConnID)
	}
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	return frame
}

// TestBinaryCodecV1CrossVersion pins the cross-version contract: a
// version-1 frame (a pre-taxonomy agent) decodes losslessly, with both
// taxonomy tags at their zero values — never an error, never garbage tags.
func TestBinaryCodecV1CrossVersion(t *testing.T) {
	in := fullBatch()
	got, err := ReadBatch(bytes.NewReader(encodeV1Frame(in)))
	if err != nil {
		t.Fatalf("v1 frame rejected: %v", err)
	}
	want := fullBatch()
	for i := range want.Reports {
		want.Reports[i].Phase = core.PhaseUnknown
		want.Reports[i].Verdict = core.VerdictUnknown
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("v1 decode diverges:\n got %+v\nwant %+v", got, want)
	}
	// And the re-encoded (v2) frame round-trips the same records.
	var buf bytes.Buffer
	if err := WriteBatchCodec(&buf, got, CodecBinary); err != nil {
		t.Fatal(err)
	}
	again, err := ReadBatch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Error("v1 -> v2 re-encode round trip diverges")
	}
}

// TestBinaryCodecRejectsCorruptTaxonomy pins the loud-rejection contract:
// a v2 frame whose taxonomy byte encodes an out-of-range phase or verdict
// must fail the decode with a diagnostic, never clamp silently.
func TestBinaryCodecRejectsCorruptTaxonomy(t *testing.T) {
	in := &Batch{Node: "Verde", Testbed: "random",
		Reports: []core.UserReport{{
			At: sim.Minute, Testbed: "random", Node: "Verde",
			Failure: core.UFConnectFailed,
			Phase:   core.PhaseOpen, Verdict: core.VerdictTransient,
		}}}
	var buf bytes.Buffer
	if err := WriteBatchCodec(&buf, in, CodecBinary); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	// One report, zero entries: the frame ends with the report's taxonomy
	// byte followed by the single-byte entry count.
	taxOff := len(frame) - 2
	for _, tax := range []byte{0xFF, 0x0F, 0xF1} {
		mut := append([]byte(nil), frame...)
		mut[taxOff] = tax
		_, err := ReadBatch(bytes.NewReader(mut))
		if err == nil {
			t.Errorf("taxonomy byte 0x%02x accepted", tax)
			continue
		}
		if !strings.Contains(err.Error(), "corrupt taxonomy byte") {
			t.Errorf("taxonomy byte 0x%02x rejected with the wrong diagnostic: %v", tax, err)
		}
	}
	// The unmutated frame still decodes (the offset arithmetic above really
	// did point at the taxonomy byte, not something else).
	if _, err := ReadBatch(bytes.NewReader(frame)); err != nil {
		t.Fatalf("control decode failed: %v", err)
	}
}

// TestBinaryCodecCompact pins the point of the rewrite: the binary frame is
// several times smaller than the JSON frame for a realistic batch.
func TestBinaryCodecCompact(t *testing.T) {
	in := &Batch{Node: "Verde", Testbed: "random"}
	for i := 0; i < 200; i++ {
		in.Reports = append(in.Reports, core.UserReport{
			At: sim.Time(i) * sim.Minute, Testbed: "random", Node: "Verde",
			Failure: core.UFPacketLoss, Workload: core.WLRandom,
			Packet: core.PTDM1, SentPkts: i * 7, RecvdPkts: i * 6,
			DistanceM: 5, Recovered: true, Recovery: core.RAIPSocketReset,
			TTR: 9 * sim.Second,
		})
		in.Entries = append(in.Entries, core.SystemEntry{
			At: sim.Time(i)*sim.Minute + sim.Second, Testbed: "random",
			Node: "Verde", Source: core.SrcHCI, Code: core.CodeHCICommandTimeout,
			Detail: "command timeout (hci_cmd)",
		})
	}
	var binBuf, jsonBuf bytes.Buffer
	if err := WriteBatchCodec(&binBuf, in, CodecBinary); err != nil {
		t.Fatal(err)
	}
	if err := WriteBatchCodec(&jsonBuf, in, CodecJSON); err != nil {
		t.Fatal(err)
	}
	if binBuf.Len()*4 > jsonBuf.Len() {
		t.Errorf("binary frame %d B, json frame %d B — want at least 4x smaller",
			binBuf.Len(), jsonBuf.Len())
	}
	t.Logf("200+200-record batch: binary %d B, json %d B (%.1fx)",
		binBuf.Len(), jsonBuf.Len(), float64(jsonBuf.Len())/float64(binBuf.Len()))
}

// TestBinaryCodecRejectsCorruption flips every byte of a valid binary frame
// body and requires a clean error (or a decode, never a panic) — the
// repository faces the network.
func TestBinaryCodecRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBatchCodec(&buf, fullBatch(), CodecBinary); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	for i := 5; i < len(frame); i++ { // skip length+codec header
		mut := append([]byte{}, frame...)
		mut[i] ^= 0xFF
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("decoder panicked on corrupt byte %d: %v", i, p)
				}
			}()
			_, _ = ReadBatch(bytes.NewReader(mut))
		}()
	}
	// Truncations at every length.
	for i := 5; i < len(frame); i++ {
		if _, err := ReadBatch(bytes.NewReader(frame[:i])); err == nil {
			t.Fatalf("truncated frame of %d bytes accepted", i)
		}
	}
}

// TestParseCodec pins the flag surface.
func TestParseCodec(t *testing.T) {
	for s, want := range map[string]Codec{"": CodecBinary, "binary": CodecBinary, "json": CodecJSON} {
		got, err := ParseCodec(s)
		if err != nil || got != want {
			t.Errorf("ParseCodec(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseCodec("xml"); err == nil {
		t.Error("unknown codec accepted")
	}
}

// shipNode flushes one node's data to the repository at addr.
func shipNode(t *testing.T, addr, testbed, node string, codec Codec,
	reports []core.UserReport, entries []core.SystemEntry, watermark sim.Time) {
	t.Helper()
	test := logging.NewTestLog(node)
	for _, r := range reports {
		test.Append(r)
	}
	sys := logging.NewSystemLog(node)
	for _, e := range entries {
		sys.Append(e)
	}
	a := NewLogAnalyzer(node, testbed, test, sys, addr, Filter{})
	a.Codec = codec
	a.Clock = func() sim.Time { return watermark }
	if err := a.FlushOnce(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamingRepositoryMatchesRetained ships the same two-testbed dataset
// to a retained repository and to a streaming repository (one with the
// binary codec, one with JSON) and requires identical analysis outputs:
// the streaming repository's folded Table 2/3 and dependability column
// equal the ones computed from the retained repository's raw records.
func TestStreamingRepositoryMatchesRetained(t *testing.T) {
	spec := analysis.StreamSpec{Testbeds: []analysis.TestbedSpec{
		{Name: "random", Kind: core.WLRandom, NAP: "Giallo", PANUs: []string{"Verde", "Win"}},
		{Name: "realistic", Kind: core.WLRealistic, NAP: "Giallo", PANUs: []string{"Verde", "Win"}},
	}}
	// A small deterministic dataset with cross-node evidence.
	mkData := func(tb string) (map[string][]core.UserReport, map[string][]core.SystemEntry) {
		reports := map[string][]core.UserReport{}
		entries := map[string][]core.SystemEntry{}
		for ni, node := range []string{"Verde", "Win"} {
			for i := 0; i < 40; i++ {
				at := sim.Time(i*200+ni*7) * sim.Second
				reports[node] = append(reports[node], core.UserReport{
					At: at, Testbed: tb, Node: node, Failure: core.UFConnectFailed,
					Workload: core.WLRandom, DistanceM: 5,
					Recovered: true, Recovery: core.RABTConnectionReset, TTR: 20 * sim.Second,
				})
				entries[node] = append(entries[node], core.SystemEntry{
					At: at + 4*sim.Second, Testbed: tb, Node: node,
					Source: core.SrcHCI, Code: core.CodeHCICommandTimeout,
				})
			}
		}
		for i := 0; i < 40; i++ {
			entries["Giallo"] = append(entries["Giallo"], core.SystemEntry{
				At: sim.Time(i*200+11) * sim.Second, Testbed: tb, Node: "Giallo",
				Source: core.SrcBNEP, Code: core.CodeBNEPAddFailed,
			})
		}
		return reports, entries
	}

	retained, err := NewRepository("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer retained.Close()
	streaming, err := NewStreamingRepository("127.0.0.1:0", spec)
	if err != nil {
		t.Fatal(err)
	}
	defer streaming.Close()
	if !streaming.Streaming() || retained.Streaming() {
		t.Fatal("mode flags wrong")
	}

	batches := 0
	for _, tb := range []string{"random", "realistic"} {
		reports, entries := mkData(tb)
		for _, node := range []string{"Verde", "Win", "Giallo"} {
			codec := CodecBinary
			if node == "Win" {
				codec = CodecJSON // mixed codecs on one repository
			}
			shipNode(t, retained.Addr(), tb, node, codec, reports[node], entries[node], 10*sim.Hour)
			shipNode(t, streaming.Addr(), tb, node, codec, reports[node], entries[node], 10*sim.Hour)
			batches++
		}
	}
	if !retained.WaitForBatches(batches, 5*time.Second) ||
		!streaming.WaitForBatches(batches, 5*time.Second) {
		t.Fatal("batches did not all arrive")
	}

	// Retained path: rebuild per-node views and run the retained builders.
	perR := map[string]map[string][]core.UserReport{"random": {}, "realistic": {}}
	perE := map[string]map[string][]core.SystemEntry{"random": {}, "realistic": {}}
	for _, r := range retained.Reports() {
		perR[r.Testbed][r.Node] = append(perR[r.Testbed][r.Node], r)
	}
	for _, e := range retained.Entries() {
		perE[e.Testbed][e.Node] = append(perE[e.Testbed][e.Node], e)
	}
	ev := coalesce.NewEvidence()
	var all []core.UserReport
	for _, tb := range []string{"random", "realistic"} {
		for node, rs := range perR[tb] {
			logging.SortUserReports(rs)
			perR[tb][node] = rs
		}
		for node, es := range perE[tb] {
			logging.SortSystemEntries(es)
			perE[tb][node] = es
		}
		analysis.BuildEvidence(ev, perR[tb], perE[tb], "Giallo", coalesce.PaperWindow)
		var tbAll []core.UserReport
		for _, rs := range perR[tb] {
			tbAll = append(tbAll, rs...)
		}
		logging.SortUserReports(tbAll)
		all = append(all, tbAll...)
	}
	wantT2 := analysis.BuildTable2(ev)
	wantT3 := analysis.BuildTable3(all)

	agg := streaming.Aggregates()
	if agg == nil {
		t.Fatal("streaming repository returned no aggregates")
	}
	if !reflect.DeepEqual(agg.Table2(), wantT2) {
		t.Error("streaming repository Table 2 diverges from retained")
	}
	if !reflect.DeepEqual(agg.Table3(), wantT3) {
		t.Error("streaming repository Table 3 diverges from retained")
	}
	gu, ge, _ := agg.DataItems()
	ru, re, _ := retained.Stats()
	if gu != ru || ge != re {
		t.Errorf("item counts diverge: streaming %d/%d, retained %d/%d", gu, ge, ru, re)
	}
	if retained.Reports() == nil || streaming.Reports() != nil {
		t.Error("record retention mode mixed up")
	}
}

// TestWaitForBatchesWakesOnClose pins the teardown-latency fix: a waiter
// blocked on an unreached target returns as soon as the repository closes,
// not after the timeout.
func TestWaitForBatchesWakesOnClose(t *testing.T) {
	repo, err := NewRepository("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	start := time.Now()
	var got bool
	go func() {
		defer wg.Done()
		got = repo.WaitForBatches(1, 30*time.Second)
	}()
	time.Sleep(20 * time.Millisecond)
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if got {
		t.Error("WaitForBatches reported success with no batches")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("waiter took %v to notice Close", elapsed)
	}
}
