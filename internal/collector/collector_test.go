package collector

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/sim"
)

func sampleBatch() *Batch {
	return &Batch{
		Node:    "Verde",
		Testbed: "random",
		Reports: []core.UserReport{
			{At: sim.Second, Node: "Verde", Failure: core.UFPacketLoss, Workload: core.WLRandom},
		},
		Entries: []core.SystemEntry{
			{At: sim.Second, Node: "Verde", Source: core.SrcHCI, Code: core.CodeHCICommandTimeout},
		},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := sampleBatch()
	if err := WriteBatch(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadBatch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Node != in.Node || len(out.Reports) != 1 || len(out.Entries) != 1 {
		t.Errorf("round trip lost data: %+v", out)
	}
	if out.Reports[0] != in.Reports[0] || out.Entries[0] != in.Entries[0] {
		t.Error("record mismatch after round trip")
	}
	// Clean EOF between frames.
	if _, err := ReadBatch(&buf); err != io.EOF {
		t.Errorf("want io.EOF, got %v", err)
	}
}

func TestReadBatchRejectsGarbage(t *testing.T) {
	// Implausible length prefix.
	if _, err := ReadBatch(strings.NewReader("\xff\xff\xff\xff....")); err == nil {
		t.Error("giant frame accepted")
	}
	// Truncated body.
	if _, err := ReadBatch(strings.NewReader("\x00\x00\x00\x10abc")); err == nil {
		t.Error("truncated frame accepted")
	}
	// Valid length, invalid JSON.
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 3})
	buf.WriteString("{{{")
	if _, err := ReadBatch(&buf); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestFilterSystemDedup(t *testing.T) {
	f := Filter{DedupWindow: 2 * sim.Second}
	mk := func(at sim.Time, code core.ErrorCode) core.SystemEntry {
		return core.SystemEntry{At: at, Node: "Verde", Source: code.Source(), Code: code}
	}
	in := []core.SystemEntry{
		mk(0, core.CodeHCICommandTimeout),
		mk(sim.Second, core.CodeHCICommandTimeout),    // dup, within window
		mk(1500*sim.Millisecond, core.CodeSDPTimeout), // different code
		mk(5*sim.Second, core.CodeHCICommandTimeout),  // past window of the last dup? (window slides)
	}
	out := f.FilterSystem(in)
	if len(out) != 3 {
		t.Fatalf("filtered to %d entries, want 3: %+v", len(out), out)
	}
	// Disabled filter passes everything.
	if got := (Filter{}).FilterSystem(in); len(got) != len(in) {
		t.Error("zero window should disable dedup")
	}
}

func TestFilterSlidingWindowSuppressesThrash(t *testing.T) {
	f := Filter{DedupWindow: 2 * sim.Second}
	var in []core.SystemEntry
	// 100 identical entries 1 s apart: the window slides, so only the
	// first survives — that is the thrash-collapse behaviour.
	for i := 0; i < 100; i++ {
		in = append(in, core.SystemEntry{At: sim.Time(i) * sim.Second,
			Node: "Verde", Source: core.SrcUSB, Code: core.CodeUSBAddressStall})
	}
	out := f.FilterSystem(in)
	if len(out) != 1 {
		t.Errorf("thrash collapsed to %d entries, want 1", len(out))
	}
}

func TestRepositoryCollectsFromAnalyzers(t *testing.T) {
	repo, err := NewRepository("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()

	test := logging.NewTestLog("Verde")
	sys := logging.NewSystemLog("Verde")
	test.Append(core.UserReport{At: sim.Second, Node: "Verde", Failure: core.UFConnectFailed})
	sys.Append(core.SystemEntry{At: sim.Second, Node: "Verde",
		Source: core.SrcHCI, Code: core.CodeHCICommandTimeout})
	sys.Append(core.SystemEntry{At: sim.Second + sim.Millisecond, Node: "Verde",
		Source: core.SrcHCI, Code: core.CodeHCICommandTimeout}) // dup: filtered

	a := NewLogAnalyzer("Verde", "random", test, sys, repo.Addr(), DefaultFilter())
	if err := a.FlushOnce(); err != nil {
		t.Fatal(err)
	}
	if a.Shipped() != 1 {
		t.Errorf("Shipped = %d", a.Shipped())
	}

	// The repository receives asynchronously; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		r, e, _ := repo.Stats()
		if r == 1 && e == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("repository has %d/%d records, want 1/1", r, e)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if repo.Reports()[0].Failure != core.UFConnectFailed {
		t.Error("wrong report stored")
	}
	if repo.Entries()[0].Code != core.CodeHCICommandTimeout {
		t.Error("wrong entry stored")
	}

	// Logs were drained by the flush.
	if test.Len() != 0 || sys.Len() != 0 {
		t.Error("flush should drain the logs")
	}
	// An empty flush ships nothing.
	if err := a.FlushOnce(); err != nil {
		t.Fatal(err)
	}
	if a.Shipped() != 1 {
		t.Error("empty flush should not ship")
	}
}

func TestAnalyzerRetainsDataWhenRepositoryDown(t *testing.T) {
	test := logging.NewTestLog("Verde")
	sys := logging.NewSystemLog("Verde")
	test.Append(core.UserReport{At: sim.Second, Node: "Verde", Failure: core.UFBindFailed})

	a := NewLogAnalyzer("Verde", "random", test, sys, "127.0.0.1:1", DefaultFilter())
	if err := a.FlushOnce(); err == nil {
		t.Fatal("flush to a dead repository should fail")
	}
	if test.Len() != 1 {
		t.Error("failed flush must put the data back for retry")
	}
}

func TestRepositoryCloseIdempotent(t *testing.T) {
	repo, err := NewRepository("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}
	if err := repo.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestRepositoryMultipleAnalyzers(t *testing.T) {
	repo, err := NewRepository("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()

	const nodes = 6
	done := make(chan error, nodes)
	for i := 0; i < nodes; i++ {
		node := string(rune('A' + i))
		go func() {
			test := logging.NewTestLog(node)
			sys := logging.NewSystemLog(node)
			for j := 0; j < 50; j++ {
				test.Append(core.UserReport{At: sim.Time(j) * sim.Second,
					Node: node, Failure: core.UFPacketLoss})
			}
			a := NewLogAnalyzer(node, "random", test, sys, repo.Addr(), DefaultFilter())
			done <- a.FlushOnce()
		}()
	}
	for i := 0; i < nodes; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		r, _, b := repo.Stats()
		if r == nodes*50 && b == nodes {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("repository has %d reports / %d batches, want %d/%d",
				r, b, nodes*50, nodes)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
