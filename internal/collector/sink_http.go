package collector

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/analysis"
	"repro/internal/stats"
)

// The sink's observability surface: a plain net/http handler serving
// liveness/readiness probes, the transport/ingest/durability counters as
// metrics JSON, and — the part the paper's methodology actually wants —
// the live Table 2/3/4 view of any hosted campaign MID-run, computed from a
// consistent snapshot of the keyspace's streaming aggregates. Keyspaces are
// addressed with the ?keyspace= query parameter (absent = the default
// keyspace), so the empty default key needs no path encoding.
//
// Routes:
//
//	GET  /healthz             liveness (200 while the process serves)
//	GET  /readyz              readiness (503 once draining or closed)
//	GET  /metricsz            SinkMetrics JSON
//	GET  /campaigns           KeyspaceMetrics JSON array
//	GET  /campaigns/tables    LiveTables JSON   (?keyspace=KEY)
//	GET  /campaigns/partial   Partial JSON      (?keyspace=KEY; 409 until complete)
//	POST /campaigns           register a keyspace (needs SinkConfig.SpecResolver)

// LiveTables is one keyspace's mid-campaign (or final) analysis view: the
// rendered Table 2/3 and the Table 4 column with its within-run 95 %
// confidence intervals, plus the dataset counters that qualify it.
type LiveTables struct {
	Keyspace string     `json:"keyspace"`
	Campaign CampaignID `json:"campaign"`
	Complete bool       `json:"complete"`

	Reports        int `json:"reports"`
	Entries        int `json:"entries"`
	SeqGaps        int `json:"seq_gaps"`
	DroppedRecords int `json:"dropped_records"`

	Table2 string                  `json:"table2"`
	Table3 string                  `json:"table3"`
	Table4 *analysis.Dependability `json:"table4"`

	// Taxonomy / Survival / Interarrival are the failure-taxonomy plane
	// rendered from the same snapshot: the per-phase transience split, the
	// Kaplan-Meier node-uptime curve (censored at the campaign horizon) and
	// the failure-interarrival histogram. Mid-run they reflect the data
	// applied so far, exactly like Table 2/3.
	Taxonomy     string `json:"taxonomy"`
	Survival     string `json:"survival"`
	Interarrival string `json:"interarrival"`

	// MTTFCI / MTTRCI are the Student-t 95 % confidence intervals over the
	// campaign's observed inter-failure gaps / repair times so far.
	MTTFCI stats.Estimate `json:"mttf_ci95"`
	MTTRCI stats.Estimate `json:"mttr_ci95"`
}

// RegisterRequest is the POST /campaigns body: a keyspace declaration whose
// stream spec the sink derives through its SpecResolver.
type RegisterRequest struct {
	Key          string     `json:"key"`
	Campaign     CampaignID `json:"campaign"`
	Testbeds     []string   `json:"testbeds,omitempty"`
	ScenarioName string     `json:"scenario_name,omitempty"`

	CheckpointPath string `json:"checkpoint_path,omitempty"`
	QuotaBytes     int64  `json:"quota_bytes,omitempty"`
	QuotaBatches   int    `json:"quota_batches,omitempty"`
}

// LiveTables computes one keyspace's current analysis view from a
// consistent aggregate snapshot (the finalized aggregates once complete, a
// live fold-consistent snapshot before that).
func (s *Sink) LiveTables(key string) (*LiveTables, error) {
	s.mu.Lock()
	t := s.tenants[key]
	if t == nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("collector: tables for unknown keyspace %q", key)
	}
	complete := t.agg != nil
	scenario := t.cfg.ScenarioName
	campaign := t.cfg.Campaign
	var snap *analysis.AggregatesSnapshot
	if complete {
		snap = t.agg.Snapshot()
	}
	str := t.str
	s.mu.Unlock()
	if snap == nil {
		snap = str.AggSnapshot()
	}
	if scenario == "" {
		scenario = fmt.Sprintf("scenario %d", campaign.Scenario)
	}
	agg, err := analysis.RestoreAggregates(snap)
	if err != nil {
		return nil, err
	}
	ttf := stats.RestoreSummary(snap.Depend.TTF)
	ttr := stats.RestoreSummary(snap.Depend.TTR)
	return &LiveTables{
		Keyspace: key, Campaign: campaign, Complete: complete,
		Reports: agg.Reports, Entries: agg.Entries,
		SeqGaps: agg.SeqGaps, DroppedRecords: agg.DroppedRecords,
		Table2:       agg.Table2().Render(),
		Table3:       agg.Table3().Render(),
		Table4:       agg.Dependability(scenario),
		Taxonomy:     agg.Taxonomy().Table(campaign.Duration).Render(),
		Survival:     agg.Survival().Curve(campaign.Duration).Render(),
		Interarrival: agg.Survival().RenderInterarrival(40),
		MTTFCI:       ttf.CI95(),
		MTTRCI:       ttr.CI95(),
	}, nil
}

// Handler returns the sink's HTTP observability handler (mounted by
// cmd/btsink's -http flag; embeddable under any mux).
func (s *Sink) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		ready := !s.draining && !s.closed
		s.mu.Unlock()
		if !ready {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/metricsz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Metrics())
	})
	mux.HandleFunc("/campaigns", func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			s.handleRegister(w, r)
			return
		}
		m := s.Metrics()
		writeJSON(w, m.Keyspaces)
	})
	mux.HandleFunc("/campaigns/tables", func(w http.ResponseWriter, r *http.Request) {
		lt, err := s.LiveTables(r.URL.Query().Get("keyspace"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, lt)
	})
	mux.HandleFunc("/campaigns/partial", func(w http.ResponseWriter, r *http.Request) {
		p, err := s.Partial(r.URL.Query().Get("keyspace"))
		if err != nil {
			// Distinguish "not yet" (retry later) from "no such keyspace".
			s.mu.Lock()
			_, known := s.tenants[r.URL.Query().Get("keyspace")]
			s.mu.Unlock()
			code := http.StatusNotFound
			if known {
				code = http.StatusConflict
			}
			http.Error(w, err.Error(), code)
			return
		}
		writeJSON(w, p)
	})
	return mux
}

// handleRegister serves POST /campaigns.
func (s *Sink) handleRegister(w http.ResponseWriter, r *http.Request) {
	if s.cfg.SpecResolver == nil {
		http.Error(w, "this sink has no spec resolver; register campaigns at startup",
			http.StatusNotImplemented)
		return
	}
	var req RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad register request: %v", err), http.StatusBadRequest)
		return
	}
	spec, err := s.cfg.SpecResolver(req.Campaign, req.Testbeds)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	err = s.Register(KeyspaceConfig{
		Key: req.Key, Campaign: req.Campaign, Spec: spec,
		ScenarioName:   req.ScenarioName,
		CheckpointPath: req.CheckpointPath,
		MaxBytes:       req.QuotaBytes, MaxBatches: req.QuotaBatches,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.WriteHeader(http.StatusCreated)
	fmt.Fprintf(w, "registered keyspace %q\n", req.Key)
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
