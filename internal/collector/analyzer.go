package collector

import (
	"fmt"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/sim"
)

// Filter decides what is significant enough to ship to the repository. The
// paper's LogAnalyzer filters the raw logs so that only significant data
// travels; the dominant noise in system logs is repeated identical error
// entries from one component thrashing, which collapse to the first
// occurrence within the window.
type Filter struct {
	// DedupWindow collapses identical (node, code) system entries closer
	// than this; 0 disables deduplication.
	DedupWindow sim.Time
}

// DefaultFilter returns the standard filter.
func DefaultFilter() Filter {
	return Filter{DedupWindow: 2 * sim.Second}
}

// FilterSystem returns the significant entries, preserving order.
func (f Filter) FilterSystem(entries []core.SystemEntry) []core.SystemEntry {
	if f.DedupWindow <= 0 || len(entries) == 0 {
		return entries
	}
	type key struct {
		node string
		code core.ErrorCode
	}
	lastSeen := make(map[key]sim.Time)
	out := make([]core.SystemEntry, 0, len(entries))
	for _, e := range entries {
		k := key{e.Node, e.Code}
		if at, ok := lastSeen[k]; ok && e.At-at <= f.DedupWindow {
			lastSeen[k] = e.At
			continue
		}
		lastSeen[k] = e.At
		out = append(out, e)
	}
	return out
}

// FilterUser passes user reports through unchanged (every user-level
// failure is significant by definition).
func (f Filter) FilterUser(reports []core.UserReport) []core.UserReport {
	return reports
}

// LogAnalyzer is the per-node collection daemon.
type LogAnalyzer struct {
	Node    string
	Testbed string

	// Codec selects the wire encoding (zero value: the binary codec;
	// CodecJSON for debugging with external tools).
	Codec Codec
	// Clock, when set, stamps each batch's watermark with the current
	// virtual time — the promise a streaming repository needs to fold this
	// node's records. Without a clock the watermark falls back to the last
	// shipped record's timestamp.
	Clock func() sim.Time
	// DialTimeout bounds one connection attempt to the repository (default
	// 5 s).
	DialTimeout time.Duration

	test   *logging.TestLog
	sys    *logging.SystemLog
	addr   string
	filter Filter

	shipped int
}

// NewLogAnalyzer builds the daemon for one node, shipping to the repository
// at addr.
func NewLogAnalyzer(node, testbed string, test *logging.TestLog, sys *logging.SystemLog, addr string, filter Filter) *LogAnalyzer {
	if test == nil || sys == nil {
		panic("collector: nil logs")
	}
	return &LogAnalyzer{Node: node, Testbed: testbed, test: test, sys: sys,
		addr: addr, filter: filter}
}

// Shipped reports how many batches have been sent.
func (a *LogAnalyzer) Shipped() int { return a.shipped }

// FlushOnce extracts, filters and ships the current log contents. An empty
// extraction ships nothing and returns nil. On any transport failure the
// drained records go back into the logs so the next flush retries them
// (frames are stored atomically by the repository, so a half-written frame
// was not stored and the retry cannot duplicate).
func (a *LogAnalyzer) FlushOnce() error {
	reports := a.filter.FilterUser(a.test.Drain())
	entries := a.filter.FilterSystem(a.sys.Drain())
	if len(reports) == 0 && len(entries) == 0 {
		return nil
	}
	putBack := func() {
		for _, r := range reports {
			a.test.Append(r)
		}
		for _, e := range entries {
			a.sys.Append(e)
		}
	}
	dialTimeout := a.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", a.addr, dialTimeout)
	if err != nil {
		putBack()
		return fmt.Errorf("collector: dial repository: %w", err)
	}
	defer conn.Close()
	batch := &Batch{Node: a.Node, Testbed: a.Testbed, Reports: reports, Entries: entries,
		Seq: uint64(a.shipped) + 1}
	if a.Clock != nil {
		batch.Watermark = a.Clock()
	} else {
		for i := range reports {
			if reports[i].At > batch.Watermark {
				batch.Watermark = reports[i].At
			}
		}
		for i := range entries {
			if entries[i].At > batch.Watermark {
				batch.Watermark = entries[i].At
			}
		}
	}
	if err := WriteBatchCodec(conn, batch, a.Codec); err != nil {
		putBack()
		return err
	}
	a.shipped++
	return nil
}
