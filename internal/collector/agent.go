package collector

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Agent is the distributed collection plane's uplink: it runs inside a
// testbed-shard process (cmd/btagent), accepts that shard's periodic log
// drains through Ingest — the same call shape a local analysis.Streamer
// takes, so a testbed streams to either without knowing which — stamps each
// drain with the stream's next sequence number, and ships it to the sink as
// a binary batch frame over TCP.
//
// Delivery is at-least-once on top of a lossy path: every batch stays
// buffered until the sink acknowledges it (cumulatively, per stream), a
// connection loss triggers reconnect-and-resume from the sink's Resume
// cursors, and an acknowledgement stall triggers go-back-N retransmission
// of everything unacknowledged. The sink deduplicates by sequence number,
// so duplicates arising from retransmission are harmless by construction.
//
// With SpillDir configured the agent is additionally crash-tolerant: every
// encoded batch frame is appended to a write-ahead spill log (wal.go)
// before it is offered to the uplink, acknowledgements truncate the log,
// and a restarted agent replays the unacknowledged tail while skipping the
// drains its deterministic re-run regenerates — so kill -9 of the shard
// process resumes to a bit-identical campaign, the same way a sink kill
// already does.
type Agent struct {
	cfg AgentConfig
	inj *faultInjector

	mu           sync.Mutex
	streams      map[string]*agentStream
	order        []string
	wal          *wal        // nil without SpillDir
	walQ         []walQueued // ingested but not yet encoded/spilled batches
	connected    bool        // a session holds a live Resume handshake
	done         *Done       // set by Finish; resent once per connection
	err          error       // first fatal protocol error
	lastProgress time.Time
	sent         int // data frames handed to the fault injector
	retransmits  int // frames sent again after an earlier send
	rejects      int // retryable rejects absorbed (backed off, not fatal)
	lastReject   *Reject

	work      chan struct{}
	closed    chan struct{}
	fin       chan struct{}
	closeOnce sync.Once
	finOnce   sync.Once
	wg        sync.WaitGroup
}

// AgentConfig configures an Agent.
type AgentConfig struct {
	// Addr is the sink's TCP address.
	Addr string
	// Campaign identifies the campaign; the sink refuses the session when
	// it differs from its own (node lists alone cannot tell campaigns
	// apart, so seed/duration/scenario mismatches would otherwise merge
	// silently).
	Campaign CampaignID
	// Keyspace addresses one campaign of a multi-tenant sink (empty: the
	// sink's default keyspace, matching pre-keyspace deployments). It also
	// namespaces the spill log's filename, so agents of different
	// campaigns can share one SpillDir without colliding.
	Keyspace string
	// Testbed names the shard; Nodes its streams (must match the sink's
	// spec for this testbed).
	Testbed string
	Nodes   []string
	// Codec selects the data frame encoding (zero value: binary).
	Codec Codec
	// Fault optionally injects deterministic loss/duplication/reordering/
	// delay into outgoing data frames (see FaultConfig).
	Fault FaultConfig
	// SpillDir, when set, enables the write-ahead spill log: encoded batch
	// frames are appended to <SpillDir>/<Testbed>.wal before being offered
	// to the uplink, and a restarted agent given the same directory replays
	// the unacknowledged tail (PROTOCOL.md §10). Empty keeps the batches in
	// memory only — a crashed agent then restarts its shard from scratch.
	SpillDir string
	// SpillBudget bounds the spill log's unacknowledged bytes (graceful
	// degradation during a sink outage is not an unbounded disk promise):
	// when a new frame would push the live spill past the budget the agent
	// fails loudly instead of spilling forever. 0 means unbounded.
	SpillBudget int64
	// DialTimeout bounds one connection attempt (default 2 s).
	DialTimeout time.Duration
	// RetryMin is the backoff floor between reconnection attempts while the
	// sink is unreachable (default 100 ms). Consecutive failures double the
	// delay up to RetryMax, with deterministic jitter from RetrySeed; the
	// agent retries until Close or Finish timeout — a crashed sink is
	// expected to come back with its checkpoint.
	RetryMin time.Duration
	// RetryMax caps the reconnection backoff (default 5 s, never below
	// RetryMin).
	RetryMax time.Duration
	// RetrySeed seeds the backoff jitter, so a fleet of agents restarting
	// together does not hammer the sink in lockstep yet every run of a
	// given agent is reproducible (default 1; wire the shard seed here).
	RetrySeed uint64
	// RetryEvery is the deprecated fixed reconnection cadence. When set and
	// RetryMin is not, it seeds RetryMin for compatibility.
	RetryEvery time.Duration
	// HelloTimeout bounds the wait for the sink's Resume/Reject answer to
	// the session Hello (default 5 s).
	HelloTimeout time.Duration
	// IOTimeout bounds each data/control frame write on a session (default
	// 5 s); a slower sink drops the connection and the agent resumes.
	IOTimeout time.Duration
	// StallTimeout triggers go-back-N retransmission when unacknowledged
	// batches exist and no acknowledgement progress happened for this long
	// (default 500 ms).
	StallTimeout time.Duration
}

// bufEntry is one unacknowledged batch: the decoded form plus, when the
// spill log is enabled, the exact encoded frame (encoded once at Ingest so
// the bytes spilled, sent and retransmitted are identical).
type bufEntry struct {
	b   *Batch
	raw []byte // nil without SpillDir; sessions then encode at send time
}

// walQueued names one buffered batch awaiting its encode + spill append.
// While a session is live, Ingest only queues (keeping the drain callback
// off the syscall path) and the session flushes the queue — encode, WAL
// append, one file write — before offering anything to the uplink. With no
// session, Ingest flushes inline: during a sink outage, when the spill log
// is the only safety net, every accepted drain is durable before Ingest
// returns.
type walQueued struct {
	node string
	seq  uint64
}

// agentStream is one node's send state.
type agentStream struct {
	node     string
	last     uint64     // last assigned sequence number
	acked    uint64     // cumulatively acknowledged by the sink
	sentUpTo uint64     // send cursor on the current connection
	maxSent  uint64     // highest sequence ever sent (retransmit accounting)
	ingested uint64     // drains seen this process (replay-skip counter)
	replayed uint64     // drains covered by the WAL replay; re-runs skip them
	buf      []bufEntry // unacknowledged batches, sequences acked+1..last
}

// NewAgent builds the uplink and starts its connection loop. With SpillDir
// set it first replays the shard's spill log: previously assigned sequence
// numbers, acknowledged cursors and unacknowledged frames are restored, and
// the first replayed-many drains of the deterministic re-run are skipped on
// Ingest rather than re-shipped.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Addr == "" || cfg.Testbed == "" || len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("collector: agent needs an address, a testbed and nodes")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.RetryMin <= 0 {
		cfg.RetryMin = cfg.RetryEvery // deprecated alias
	}
	if cfg.RetryMin <= 0 {
		cfg.RetryMin = 100 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 5 * time.Second
	}
	if cfg.RetryMax < cfg.RetryMin {
		cfg.RetryMax = cfg.RetryMin
	}
	if cfg.RetrySeed == 0 {
		cfg.RetrySeed = 1
	}
	if cfg.HelloTimeout <= 0 {
		cfg.HelloTimeout = 5 * time.Second
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 5 * time.Second
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = 500 * time.Millisecond
	}
	a := &Agent{
		cfg:     cfg,
		inj:     newFaultInjector(cfg.Fault),
		streams: make(map[string]*agentStream, len(cfg.Nodes)),
		work:    make(chan struct{}, 1),
		closed:  make(chan struct{}),
		fin:     make(chan struct{}),
	}
	var replay map[string]*walStream
	if cfg.SpillDir != "" {
		// The spill log is keyed by keyspace-qualified shard name: agents
		// of different campaigns sharing a spill directory must not collide
		// on (or refuse) each other's logs.
		walName := cfg.Testbed
		if cfg.Keyspace != "" {
			walName = cfg.Keyspace + "@" + cfg.Testbed
		}
		w, streams, err := openWAL(cfg.SpillDir, walName, cfg.Campaign, cfg.SpillBudget)
		if err != nil {
			return nil, err
		}
		a.wal = w
		replay = streams
	}
	for _, node := range cfg.Nodes {
		if _, dup := a.streams[node]; dup {
			if a.wal != nil {
				a.wal.close()
			}
			return nil, fmt.Errorf("collector: agent declares node %q twice", node)
		}
		st := &agentStream{node: node}
		if ws := replay[node]; ws != nil {
			st.last, st.acked = ws.last, ws.acked
			st.sentUpTo, st.replayed = ws.acked, ws.last
			for _, f := range ws.frames {
				st.buf = append(st.buf, bufEntry{b: f.batch, raw: f.raw})
			}
		}
		a.streams[node] = st
		a.order = append(a.order, node)
	}
	for node := range replay {
		if _, ok := a.streams[node]; !ok {
			if a.wal != nil {
				a.wal.close()
			}
			return nil, fmt.Errorf("collector: spill log holds stream %q this agent does not declare "+
				"(node list changed between runs?)", node)
		}
	}
	a.wg.Add(1)
	go a.run()
	return a, nil
}

// signal nudges the writer without blocking.
func (a *Agent) signal() {
	select {
	case a.work <- struct{}{}:
	default:
	}
}

// fatalLocked records the first unrecoverable error and stops the agent.
// Caller holds mu.
func (a *Agent) fatalLocked(err error) {
	if a.err == nil {
		a.err = err
	}
	a.closeOnce.Do(func() { close(a.closed) })
}

// fatal records the first unrecoverable protocol error and stops the agent.
func (a *Agent) fatal(err error) {
	a.mu.Lock()
	a.fatalLocked(err)
	a.mu.Unlock()
}

// Err reports the agent's fatal error, if any.
func (a *Agent) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// Ingest accepts one drain of a node's logs — the testbed's streaming
// collection callback. The batch is stamped with the stream's next sequence
// number, spilled to the WAL when one is configured (inline while the sink
// is unreachable; through the session's pre-send flush while a session is
// live, keeping this callback off the syscall path), buffered until
// acknowledged, and shipped asynchronously: Ingest never blocks on the
// network, so a sink outage stalls shipping, not the campaign (buffered
// batches grow with the outage, bounded only by SpillBudget).
//
// On a replayed run the first drains are the deterministic re-run of work
// the previous process already assigned sequence numbers to: they are
// counted and skipped, so replayed frames keep their original sequence
// numbers and the sink's duplicate filter sees a consistent stream. A drain
// whose sequence the sink has already durably acknowledged is likewise
// dropped without buffering.
func (a *Agent) Ingest(testbed, node string, reports []core.UserReport,
	entries []core.SystemEntry, watermark sim.Time) error {
	if testbed != a.cfg.Testbed {
		return fmt.Errorf("collector: agent for %q got a %q drain", a.cfg.Testbed, testbed)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err != nil {
		return a.err
	}
	if a.done != nil {
		return fmt.Errorf("collector: ingest after Finish")
	}
	st, ok := a.streams[node]
	if !ok {
		return fmt.Errorf("collector: agent for %q got a drain for undeclared node %q",
			a.cfg.Testbed, node)
	}
	st.ingested++
	if st.ingested <= st.replayed {
		// The WAL already accounts for this drain (its frame either
		// survived into buf or was acknowledged before the crash).
		return nil
	}
	st.last++
	if st.last <= st.acked {
		// The sink holds this batch durably (its Resume cursor was ahead of
		// our replayed state); assigning the sequence number keeps the
		// stream consistent, shipping it again would only feed the
		// duplicate filter.
		return nil
	}
	e := bufEntry{b: &Batch{
		Node: node, Testbed: testbed,
		Reports: reports, Entries: entries,
		Watermark: watermark, Seq: st.last,
	}}
	st.buf = append(st.buf, e)
	if a.wal != nil {
		a.walQ = append(a.walQ, walQueued{node: node, seq: st.last})
		if !a.connected {
			if err := a.flushWALLocked(); err != nil {
				a.fatalLocked(err)
				return err
			}
		}
	}
	a.signal()
	return nil
}

// flushWALLocked encodes every queued batch, appends the frames to the
// spill log and writes them out in one append. After it returns nil, every
// buffered batch is durable — the precondition for offering any of them to
// the uplink. Caller holds mu.
func (a *Agent) flushWALLocked() error {
	if a.wal == nil || len(a.walQ) == 0 {
		return nil
	}
	for _, q := range a.walQ {
		st := a.streams[q.node]
		if q.seq <= st.acked {
			continue // pruned before it was ever flushed (cannot happen for sent frames)
		}
		e := &st.buf[int(q.seq-st.acked-1)]
		raw, err := encodeBatchFrame(e.b, a.cfg.Codec)
		if err != nil {
			return err
		}
		if err := a.wal.appendFrame(raw, false); err != nil {
			return err
		}
		e.raw = raw
	}
	a.walQ = a.walQ[:0]
	return a.wal.flush()
}

// Finish declares the shard complete: no more Ingest calls will come. It
// ships the Done frame — the final per-stream cursors plus the shard's
// workload counter snapshots and campaign duration — and blocks until the
// sink confirms with Fin that every batch up to those cursors is durable,
// or the timeout expires. A zero timeout waits indefinitely.
func (a *Agent) Finish(counters map[string]*workload.CountersSnapshot, duration sim.Time,
	timeout time.Duration) error {
	a.mu.Lock()
	if a.err != nil {
		err := a.err
		a.mu.Unlock()
		return err
	}
	if a.done == nil {
		done := &Done{Testbed: a.cfg.Testbed, Duration: duration, Counters: counters}
		for _, node := range a.order {
			done.Final = append(done.Final, StreamCursor{Node: node, Seq: a.streams[node].last})
		}
		a.done = done
	}
	a.mu.Unlock()
	a.signal()

	var timeoutCh <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	select {
	case <-a.fin:
		return nil
	case <-a.closed:
		if err := a.Err(); err != nil {
			return err
		}
		return fmt.Errorf("collector: agent closed before the sink confirmed completion")
	case <-timeoutCh:
		a.mu.Lock()
		unacked := 0
		for _, st := range a.streams {
			unacked += int(st.last - st.acked)
		}
		rejects, lastReject := a.rejects, a.lastReject
		a.mu.Unlock()
		msg := fmt.Sprintf("collector: sink did not confirm completion within %v "+
			"(%d batches still unacknowledged)", timeout, unacked)
		if rejects > 0 {
			msg += fmt.Sprintf("; sink rejected the session %d times, last: %s",
				rejects, lastReject.Error())
		}
		return fmt.Errorf("%s", msg)
	}
}

// Stats reports transport counters: data frames sent (before fault
// injection) and frames that were retransmissions of an earlier send.
func (a *Agent) Stats() (sent, retransmits int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sent, a.retransmits
}

// Close stops the agent without waiting for acknowledgements (tests and
// error paths; the normal shutdown is Finish). The spill log file is
// closed but kept on disk — whatever it holds is exactly what a restart
// needs.
func (a *Agent) Close() {
	a.closeOnce.Do(func() { close(a.closed) })
	a.wg.Wait()
	a.mu.Lock()
	if a.wal != nil {
		if err := a.flushWALLocked(); err != nil {
			a.fatalLocked(err)
		}
		a.wal.close()
	}
	a.mu.Unlock()
}

// Abort stops the agent as the in-process double for kill -9: unflushed
// network state AND unflushed spill appends are abandoned — only what the
// spill log already holds survives into the next incarnation, which must
// regenerate the rest from its deterministic re-run.
func (a *Agent) Abort() {
	a.closeOnce.Do(func() { close(a.closed) })
	a.wg.Wait()
	a.mu.Lock()
	if a.wal != nil {
		a.walQ = nil
		a.wal.abort()
	}
	a.mu.Unlock()
}

// backoff computes the delay before reconnection attempt n: capped
// exponential growth from RetryMin to RetryMax, jittered over the upper
// half of the window by the deterministic per-agent rng.
func (a *Agent) backoff(rng *rand.Rand, attempt int) time.Duration {
	d := a.cfg.RetryMin
	for i := 0; i < attempt && d < a.cfg.RetryMax; i++ {
		d *= 2
	}
	if d > a.cfg.RetryMax {
		d = a.cfg.RetryMax
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// run is the connection loop: dial, session, reconnect — until closed or
// finished. Failed attempts back off exponentially with seeded jitter; a
// session that got as far as a Resume handshake resets the backoff.
func (a *Agent) run() {
	defer a.wg.Done()
	rng := rand.New(rand.NewSource(int64(a.cfg.RetrySeed)))
	attempt := 0
	for {
		select {
		case <-a.closed:
			return
		case <-a.fin:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", a.cfg.Addr, a.cfg.DialTimeout)
		if err == nil {
			resumed := a.session(conn)
			conn.Close()
			a.mu.Lock()
			a.connected = false
			a.mu.Unlock()
			if resumed {
				// The sink was alive and handshaking; reconnect eagerly.
				attempt = 0
				continue
			}
		}
		delay := a.backoff(rng, attempt)
		attempt++
		select {
		case <-a.closed:
			return
		case <-time.After(delay):
		}
	}
}

// session drives one connection: handshake, then ship until it breaks. It
// reports whether the sink answered the handshake with Resume (backoff
// reset).
func (a *Agent) session(conn net.Conn) bool {
	hello := Hello{Campaign: a.cfg.Campaign, Keyspace: a.cfg.Keyspace,
		Testbed: a.cfg.Testbed, Nodes: a.order}
	if err := writeControl(conn, frameHello, hello); err != nil {
		return false
	}
	conn.SetReadDeadline(time.Now().Add(a.cfg.HelloTimeout))
	fr, err := ReadFrame(conn)
	if err != nil {
		return false
	}
	if fr.Kind == KindReject {
		// Typed rejects split two worlds: a service condition (keyspace not
		// registered yet, quota quarantine, draining sink) is absorbed —
		// back off and retry, the condition is expected to clear — while a
		// configuration error (campaign or shard mismatch) must fail
		// loudly, not retry forever.
		if !a.absorbReject(fr.Reject) {
			a.fatal(fmt.Errorf("collector: sink refused session: %s", fr.Reject.Error()))
		}
		return false
	}
	if fr.Kind != KindResume {
		return false
	}
	conn.SetReadDeadline(time.Time{})
	if !a.applyResume(fr.Resume) {
		return false
	}

	readerDone := make(chan struct{})
	a.wg.Add(1)
	go a.reader(conn, readerDone)

	ticker := time.NewTicker(a.cfg.StallTimeout / 2)
	defer ticker.Stop()
	doneSent := false
	for {
		entries, done := a.collect(&doneSent)
		for _, e := range entries {
			raw := e.raw
			if raw == nil {
				raw, err = encodeBatchFrame(e.b, a.cfg.Codec)
				if err != nil {
					a.fatal(err)
					return true
				}
			}
			outs, delay := a.inj.apply(raw)
			if delay > 0 {
				time.Sleep(delay)
			}
			for _, o := range outs {
				conn.SetWriteDeadline(time.Now().Add(a.cfg.IOTimeout))
				if _, err := conn.Write(o); err != nil {
					return true
				}
			}
		}
		if done != nil {
			if h := a.inj.flush(); h != nil {
				conn.SetWriteDeadline(time.Now().Add(a.cfg.IOTimeout))
				if _, err := conn.Write(h); err != nil {
					return true
				}
			}
			conn.SetWriteDeadline(time.Now().Add(a.cfg.IOTimeout))
			if err := writeControl(conn, frameDone, done); err != nil {
				return true
			}
		}
		select {
		case <-a.work:
		case <-ticker.C:
			a.maybeStallReset()
		case <-readerDone:
			return true
		case <-a.fin:
			return true
		case <-a.closed:
			return true
		}
	}
}

// applyResume aligns the send state with the sink's acknowledged cursors.
// A cursor behind what the sink already acknowledged means the sink lost
// its durable state (restarted without its checkpoint): the buffered copies
// of the acknowledged batches are gone, the campaign cannot be made whole,
// and the agent fails loudly rather than shipping a silently truncated
// stream.
func (a *Agent) applyResume(res *Resume) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	seen := make(map[string]bool, len(res.Cursors))
	for _, c := range res.Cursors {
		st, ok := a.streams[c.Node]
		if !ok {
			continue // cursor for a stream this agent does not ship
		}
		seen[st.node] = true
		if c.Seq < st.acked {
			a.fatalLocked(fmt.Errorf("collector: sink resumed %s/%s at seq %d below acknowledged %d "+
				"(checkpoint lost?)", a.cfg.Testbed, st.node, c.Seq, st.acked))
			return false
		}
		a.pruneLocked(st, c.Seq)
		st.sentUpTo = st.acked
	}
	for _, st := range a.streams {
		if !seen[st.node] {
			a.fatalLocked(fmt.Errorf("collector: sink resume is missing stream %s/%s",
				a.cfg.Testbed, st.node))
			return false
		}
	}
	a.connected = true
	a.lastProgress = time.Now()
	return true
}

// pruneLocked drops buffered batches covered by a cumulative ack and
// truncates the spill log's view of them. Caller holds mu.
func (a *Agent) pruneLocked(st *agentStream, acked uint64) {
	if acked <= st.acked {
		return
	}
	drop := int(acked - st.acked)
	if drop > len(st.buf) {
		drop = len(st.buf)
	}
	var freed int64
	if a.wal != nil {
		for _, e := range st.buf[:drop] {
			freed += walRecordSize(len(e.raw))
		}
	}
	st.buf = st.buf[:copy(st.buf, st.buf[drop:])]
	st.acked = acked
	if st.sentUpTo < st.acked {
		st.sentUpTo = st.acked
	}
	if a.wal != nil {
		if err := a.wal.noteAck(st.node, acked, freed); err != nil {
			a.fatalLocked(err)
			return
		}
		a.maybeCompactLocked()
	}
}

// maybeCompactLocked rewrites the spill log when acknowledged frames
// dominate it, keeping exactly the still-unacknowledged buffers. Caller
// holds mu.
func (a *Agent) maybeCompactLocked() {
	if a.wal == nil || !a.wal.shouldCompact() {
		return
	}
	if err := a.flushWALLocked(); err != nil {
		a.fatalLocked(err)
		return
	}
	var raws [][]byte
	for _, node := range a.order {
		for _, e := range a.streams[node].buf {
			raws = append(raws, e.raw)
		}
	}
	if err := a.wal.compact(raws); err != nil {
		a.fatalLocked(err)
	}
}

// collect gathers the batches to send now (everything assigned but not yet
// sent on this connection) and, once all data is on the wire and Finish was
// requested, the Done frame to follow it.
func (a *Agent) collect(doneSent *bool) ([]bufEntry, *Done) {
	a.mu.Lock()
	defer a.mu.Unlock()
	// Durability before delivery: everything gathered below must already be
	// in the spill log when it goes on the wire.
	if err := a.flushWALLocked(); err != nil {
		a.fatalLocked(err)
		return nil, nil
	}
	var out []bufEntry
	for _, node := range a.order {
		st := a.streams[node]
		for seq := st.sentUpTo + 1; seq <= st.last; seq++ {
			out = append(out, st.buf[int(seq-st.acked-1)])
			a.sent++
			if seq <= st.maxSent {
				a.retransmits++
			} else {
				st.maxSent = seq
			}
		}
		st.sentUpTo = st.last
	}
	// Once Finish has been requested, every known batch is in this same
	// write burst, so Done may ride right behind the data.
	if a.done != nil && !*doneSent {
		*doneSent = true
		return out, a.done
	}
	return out, nil
}

// maybeStallReset rewinds the send cursors to the acknowledged positions
// when acknowledgements have stalled, forcing go-back-N retransmission of
// everything in flight (the recovery path for frames lost to the network).
func (a *Agent) maybeStallReset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	unacked := false
	for _, st := range a.streams {
		if st.last > st.acked {
			unacked = true
			break
		}
	}
	if !unacked || time.Since(a.lastProgress) < a.cfg.StallTimeout {
		return
	}
	for _, st := range a.streams {
		st.sentUpTo = st.acked
	}
	a.lastProgress = time.Now()
	a.signal()
}

// reader consumes the sink's acknowledgements and the final Fin.
func (a *Agent) reader(conn net.Conn, done chan struct{}) {
	defer a.wg.Done()
	defer close(done)
	for {
		fr, err := ReadFrame(conn)
		if err != nil {
			return
		}
		switch fr.Kind {
		case KindAck:
			a.mu.Lock()
			if st, ok := a.streams[fr.Ack.Node]; ok && fr.Ack.Seq > st.acked {
				a.pruneLocked(st, fr.Ack.Seq)
				a.lastProgress = time.Now()
			}
			a.mu.Unlock()
		case KindFin:
			a.finOnce.Do(func() { close(a.fin) })
			return
		case KindReject:
			// A mid-session reject (the sink started draining, or this
			// keyspace tripped its quota): same split as at the handshake.
			if !a.absorbReject(fr.Reject) {
				a.fatal(fmt.Errorf("collector: sink rejected session: %s", fr.Reject.Error()))
			}
			return
		default:
			return // protocol violation; reconnect
		}
	}
}

// absorbReject records a retryable reject (the agent backs off and retries)
// and reports whether it was retryable; fatal rejects are the caller's to
// escalate.
func (a *Agent) absorbReject(rej *Reject) bool {
	if !rej.Retryable() {
		return false
	}
	a.mu.Lock()
	a.rejects++
	a.lastReject = rej
	a.mu.Unlock()
	return true
}

// Rejects reports how many retryable rejects the agent has absorbed (each
// followed by backoff and retry) and the most recent one (nil if none) —
// the observable trail of quota shedding and drains.
func (a *Agent) Rejects() (count int, last *Reject) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rejects, a.lastReject
}
