package collector

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Agent is the distributed collection plane's uplink: it runs inside a
// testbed-shard process (cmd/btagent), accepts that shard's periodic log
// drains through Ingest — the same call shape a local analysis.Streamer
// takes, so a testbed streams to either without knowing which — stamps each
// drain with the stream's next sequence number, and ships it to the sink as
// a binary batch frame over TCP.
//
// Delivery is at-least-once on top of a lossy path: every batch stays
// buffered until the sink acknowledges it (cumulatively, per stream), a
// connection loss triggers reconnect-and-resume from the sink's Resume
// cursors, and an acknowledgement stall triggers go-back-N retransmission
// of everything unacknowledged. The sink deduplicates by sequence number,
// so duplicates arising from retransmission are harmless by construction.
type Agent struct {
	cfg AgentConfig
	inj *faultInjector

	mu           sync.Mutex
	streams      map[string]*agentStream
	order        []string
	done         *Done // set by Finish; resent once per connection
	err          error // first fatal protocol error
	lastProgress time.Time
	sent         int // data frames handed to the fault injector
	retransmits  int // frames sent again after an earlier send

	work      chan struct{}
	closed    chan struct{}
	fin       chan struct{}
	closeOnce sync.Once
	finOnce   sync.Once
	wg        sync.WaitGroup
}

// AgentConfig configures an Agent.
type AgentConfig struct {
	// Addr is the sink's TCP address.
	Addr string
	// Campaign identifies the campaign; the sink refuses the session when
	// it differs from its own (node lists alone cannot tell campaigns
	// apart, so seed/duration/scenario mismatches would otherwise merge
	// silently).
	Campaign CampaignID
	// Testbed names the shard; Nodes its streams (must match the sink's
	// spec for this testbed).
	Testbed string
	Nodes   []string
	// Codec selects the data frame encoding (zero value: binary).
	Codec Codec
	// Fault optionally injects deterministic loss/duplication/reordering/
	// delay into outgoing data frames (see FaultConfig).
	Fault FaultConfig
	// DialTimeout bounds one connection attempt (default 2 s).
	DialTimeout time.Duration
	// RetryEvery paces reconnection attempts while the sink is unreachable
	// (default 100 ms). The agent retries until Close or Finish timeout —
	// a crashed sink is expected to come back with its checkpoint.
	RetryEvery time.Duration
	// StallTimeout triggers go-back-N retransmission when unacknowledged
	// batches exist and no acknowledgement progress happened for this long
	// (default 500 ms).
	StallTimeout time.Duration
}

// agentStream is one node's send state.
type agentStream struct {
	node     string
	last     uint64   // last assigned sequence number
	acked    uint64   // cumulatively acknowledged by the sink
	sentUpTo uint64   // send cursor on the current connection
	maxSent  uint64   // highest sequence ever sent (retransmit accounting)
	buf      []*Batch // unacknowledged batches, sequences acked+1..last
}

// NewAgent builds the uplink and starts its connection loop.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Addr == "" || cfg.Testbed == "" || len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("collector: agent needs an address, a testbed and nodes")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = 100 * time.Millisecond
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = 500 * time.Millisecond
	}
	a := &Agent{
		cfg:     cfg,
		inj:     newFaultInjector(cfg.Fault),
		streams: make(map[string]*agentStream, len(cfg.Nodes)),
		work:    make(chan struct{}, 1),
		closed:  make(chan struct{}),
		fin:     make(chan struct{}),
	}
	for _, node := range cfg.Nodes {
		if _, dup := a.streams[node]; dup {
			return nil, fmt.Errorf("collector: agent declares node %q twice", node)
		}
		a.streams[node] = &agentStream{node: node}
		a.order = append(a.order, node)
	}
	a.wg.Add(1)
	go a.run()
	return a, nil
}

// signal nudges the writer without blocking.
func (a *Agent) signal() {
	select {
	case a.work <- struct{}{}:
	default:
	}
}

// fatal records the first unrecoverable protocol error and stops the agent.
func (a *Agent) fatal(err error) {
	a.mu.Lock()
	if a.err == nil {
		a.err = err
	}
	a.mu.Unlock()
	a.closeOnce.Do(func() { close(a.closed) })
}

// Err reports the agent's fatal error, if any.
func (a *Agent) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// Ingest accepts one drain of a node's logs — the testbed's streaming
// collection callback. The batch is stamped with the stream's next sequence
// number, buffered until acknowledged, and shipped asynchronously: Ingest
// never blocks on the network, so a sink outage stalls shipping, not the
// campaign (buffered batches grow with the outage; they drain on resume).
func (a *Agent) Ingest(testbed, node string, reports []core.UserReport,
	entries []core.SystemEntry, watermark sim.Time) error {
	if testbed != a.cfg.Testbed {
		return fmt.Errorf("collector: agent for %q got a %q drain", a.cfg.Testbed, testbed)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err != nil {
		return a.err
	}
	if a.done != nil {
		return fmt.Errorf("collector: ingest after Finish")
	}
	st, ok := a.streams[node]
	if !ok {
		return fmt.Errorf("collector: agent for %q got a drain for undeclared node %q",
			a.cfg.Testbed, node)
	}
	st.last++
	st.buf = append(st.buf, &Batch{
		Node: node, Testbed: testbed,
		Reports: reports, Entries: entries,
		Watermark: watermark, Seq: st.last,
	})
	a.signal()
	return nil
}

// Finish declares the shard complete: no more Ingest calls will come. It
// ships the Done frame — the final per-stream cursors plus the shard's
// workload counter snapshots and campaign duration — and blocks until the
// sink confirms with Fin that every batch up to those cursors is durable,
// or the timeout expires. A zero timeout waits indefinitely.
func (a *Agent) Finish(counters map[string]*workload.CountersSnapshot, duration sim.Time,
	timeout time.Duration) error {
	a.mu.Lock()
	if a.err != nil {
		err := a.err
		a.mu.Unlock()
		return err
	}
	if a.done == nil {
		done := &Done{Testbed: a.cfg.Testbed, Duration: duration, Counters: counters}
		for _, node := range a.order {
			done.Final = append(done.Final, StreamCursor{Node: node, Seq: a.streams[node].last})
		}
		a.done = done
	}
	a.mu.Unlock()
	a.signal()

	var timeoutCh <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	select {
	case <-a.fin:
		return nil
	case <-a.closed:
		if err := a.Err(); err != nil {
			return err
		}
		return fmt.Errorf("collector: agent closed before the sink confirmed completion")
	case <-timeoutCh:
		return fmt.Errorf("collector: sink did not confirm completion within %v", timeout)
	}
}

// Stats reports transport counters: data frames sent (before fault
// injection) and frames that were retransmissions of an earlier send.
func (a *Agent) Stats() (sent, retransmits int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sent, a.retransmits
}

// Close stops the agent without waiting for acknowledgements (tests and
// error paths; the normal shutdown is Finish).
func (a *Agent) Close() {
	a.closeOnce.Do(func() { close(a.closed) })
	a.wg.Wait()
}

// run is the connection loop: dial, session, reconnect — until closed or
// finished.
func (a *Agent) run() {
	defer a.wg.Done()
	for {
		select {
		case <-a.closed:
			return
		case <-a.fin:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", a.cfg.Addr, a.cfg.DialTimeout)
		if err != nil {
			select {
			case <-a.closed:
				return
			case <-time.After(a.cfg.RetryEvery):
			}
			continue
		}
		a.session(conn)
		conn.Close()
	}
}

// session drives one connection: handshake, then ship until it breaks.
func (a *Agent) session(conn net.Conn) {
	hello := Hello{Campaign: a.cfg.Campaign, Testbed: a.cfg.Testbed, Nodes: a.order}
	if err := writeControl(conn, frameHello, hello); err != nil {
		return
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	fr, err := ReadFrame(conn)
	if err != nil {
		return
	}
	if fr.Kind == KindReject {
		// A misconfigured deployment (campaign or shard mismatch) must fail
		// loudly, not retry forever.
		a.fatal(fmt.Errorf("collector: sink refused session: %s", fr.Reject.Reason))
		return
	}
	if fr.Kind != KindResume {
		return
	}
	conn.SetReadDeadline(time.Time{})
	if !a.applyResume(fr.Resume) {
		return
	}

	readerDone := make(chan struct{})
	go a.reader(conn, readerDone)

	ticker := time.NewTicker(a.cfg.StallTimeout / 2)
	defer ticker.Stop()
	doneSent := false
	for {
		batches, done := a.collect(&doneSent)
		for _, b := range batches {
			raw, err := encodeBatchFrame(b, a.cfg.Codec)
			if err != nil {
				a.fatal(err)
				return
			}
			outs, delay := a.inj.apply(raw)
			if delay > 0 {
				time.Sleep(delay)
			}
			for _, o := range outs {
				conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
				if _, err := conn.Write(o); err != nil {
					return
				}
			}
		}
		if done != nil {
			if h := a.inj.flush(); h != nil {
				conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
				if _, err := conn.Write(h); err != nil {
					return
				}
			}
			conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
			if err := writeControl(conn, frameDone, done); err != nil {
				return
			}
		}
		select {
		case <-a.work:
		case <-ticker.C:
			a.maybeStallReset()
		case <-readerDone:
			return
		case <-a.fin:
			return
		case <-a.closed:
			return
		}
	}
}

// applyResume aligns the send state with the sink's acknowledged cursors.
// A cursor behind what the sink already acknowledged means the sink lost
// its durable state (restarted without its checkpoint): the buffered copies
// of the acknowledged batches are gone, the campaign cannot be made whole,
// and the agent fails loudly rather than shipping a silently truncated
// stream.
func (a *Agent) applyResume(res *Resume) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	seen := make(map[string]bool, len(res.Cursors))
	for _, c := range res.Cursors {
		st, ok := a.streams[c.Node]
		if !ok {
			continue // cursor for a stream this agent does not ship
		}
		seen[st.node] = true
		if c.Seq < st.acked {
			a.err = fmt.Errorf("collector: sink resumed %s/%s at seq %d below acknowledged %d "+
				"(checkpoint lost?)", a.cfg.Testbed, st.node, c.Seq, st.acked)
			a.closeOnce.Do(func() { close(a.closed) })
			return false
		}
		a.pruneLocked(st, c.Seq)
		st.sentUpTo = st.acked
	}
	for _, st := range a.streams {
		if !seen[st.node] {
			a.err = fmt.Errorf("collector: sink resume is missing stream %s/%s",
				a.cfg.Testbed, st.node)
			a.closeOnce.Do(func() { close(a.closed) })
			return false
		}
	}
	a.lastProgress = time.Now()
	return true
}

// pruneLocked drops buffered batches covered by a cumulative ack. Caller
// holds mu.
func (a *Agent) pruneLocked(st *agentStream, acked uint64) {
	if acked <= st.acked {
		return
	}
	drop := int(acked - st.acked)
	if drop > len(st.buf) {
		drop = len(st.buf)
	}
	st.buf = st.buf[:copy(st.buf, st.buf[drop:])]
	st.acked = acked
	if st.sentUpTo < st.acked {
		st.sentUpTo = st.acked
	}
}

// collect gathers the batches to send now (everything assigned but not yet
// sent on this connection) and, once all data is on the wire and Finish was
// requested, the Done frame to follow it.
func (a *Agent) collect(doneSent *bool) ([]*Batch, *Done) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []*Batch
	for _, node := range a.order {
		st := a.streams[node]
		for seq := st.sentUpTo + 1; seq <= st.last; seq++ {
			b := st.buf[int(seq-st.acked-1)]
			out = append(out, b)
			a.sent++
			if seq <= st.maxSent {
				a.retransmits++
			} else {
				st.maxSent = seq
			}
		}
		st.sentUpTo = st.last
	}
	// Once Finish has been requested, every known batch is in this same
	// write burst, so Done may ride right behind the data.
	if a.done != nil && !*doneSent {
		*doneSent = true
		return out, a.done
	}
	return out, nil
}

// maybeStallReset rewinds the send cursors to the acknowledged positions
// when acknowledgements have stalled, forcing go-back-N retransmission of
// everything in flight (the recovery path for frames lost to the network).
func (a *Agent) maybeStallReset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	unacked := false
	for _, st := range a.streams {
		if st.last > st.acked {
			unacked = true
			break
		}
	}
	if !unacked || time.Since(a.lastProgress) < a.cfg.StallTimeout {
		return
	}
	for _, st := range a.streams {
		st.sentUpTo = st.acked
	}
	a.lastProgress = time.Now()
	a.signal()
}

// reader consumes the sink's acknowledgements and the final Fin.
func (a *Agent) reader(conn net.Conn, done chan struct{}) {
	defer close(done)
	for {
		fr, err := ReadFrame(conn)
		if err != nil {
			return
		}
		switch fr.Kind {
		case KindAck:
			a.mu.Lock()
			if st, ok := a.streams[fr.Ack.Node]; ok && fr.Ack.Seq > st.acked {
				a.pruneLocked(st, fr.Ack.Seq)
				a.lastProgress = time.Now()
			}
			a.mu.Unlock()
		case KindFin:
			a.finOnce.Do(func() { close(a.fin) })
			return
		default:
			return // protocol violation; reconnect
		}
	}
}
