package sim

import "math/rand/v2"

// World bundles the kernel and RNG rig that every simulated component needs.
// It is the single object threaded through the stack, the workload, and the
// fault injectors.
type World struct {
	*Kernel
	rig *Rig
}

// NewWorld returns a world at virtual time zero, seeded with seed.
func NewWorld(seed uint64) *World {
	return &World{Kernel: NewKernel(), rig: NewRig(seed)}
}

// Rig exposes the RNG rig, for components that need to fork it.
func (w *World) Rig() *Rig { return w.rig }

// RNG returns the named deterministic random stream.
func (w *World) RNG(name string) *rand.Rand { return w.rig.Stream(name) }

// Seed reports the root seed of the world's rig.
func (w *World) Seed() uint64 { return w.rig.Seed() }
