// Package sim provides the discrete-event simulation kernel on which the
// whole btpan reproduction runs: a virtual clock, an event calendar, timers,
// and deterministic named random-number streams.
//
// All other packages express durations in sim.Time (virtual nanoseconds) and
// never consult the wall clock, which makes campaigns bit-reproducible for a
// given seed and lets 18 months of simulated operation run in seconds.
package sim

import (
	"fmt"
	"time"
)

// Time is a virtual instant, measured in nanoseconds since the start of the
// simulation. It is also used for durations (differences of instants), which
// mirrors how time.Duration relates to time.Time and keeps arithmetic simple
// inside the kernel.
type Time int64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1_000 * Nanosecond
	Millisecond Time = 1_000 * Microsecond
	Second      Time = 1_000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
	Day         Time = 24 * Hour

	// Slot is the Bluetooth baseband time slot: 625 microseconds.
	Slot Time = 625 * Microsecond
)

// Never is a sentinel instant later than any schedulable event.
const Never Time = Time(1<<63 - 1)

// Duration converts t to a time.Duration. Time and time.Duration share the
// nanosecond unit, so the conversion is exact.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Slots reports how many whole baseband slots fit in t.
func (t Time) Slots() int64 { return int64(t / Slot) }

// String formats the instant using time.Duration notation, with Never
// rendered symbolically.
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return t.Duration().String()
}

// FromDuration converts a time.Duration to a sim.Time duration.
func FromDuration(d time.Duration) Time { return Time(d) }

// Seconds builds a Time from a floating-point number of seconds. It is the
// inverse of Time.Seconds and is used by calibration tables that express
// recovery durations in seconds.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// Epoch is the wall-clock anchor used to render virtual instants as
// timestamps in logs. The paper's campaign started in June 2004; anchoring
// there makes generated logs read like the originals.
var Epoch = time.Date(2004, time.June, 1, 0, 0, 0, 0, time.UTC)

// Wall renders a virtual instant as a wall-clock timestamp.
func Wall(t Time) time.Time { return Epoch.Add(t.Duration()) }

// ParseWall converts a wall-clock timestamp back into a virtual instant.
// It returns an error when ts predates the epoch.
func ParseWall(ts time.Time) (Time, error) {
	d := ts.Sub(Epoch)
	if d < 0 {
		return 0, fmt.Errorf("sim: timestamp %v predates epoch %v", ts, Epoch)
	}
	return Time(d), nil
}
