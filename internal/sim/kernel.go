package sim

import "fmt"

// Kernel is the discrete-event simulation engine. Events are callbacks
// scheduled at virtual instants; Run drains the calendar in timestamp order,
// breaking ties by scheduling order so execution is deterministic.
//
// The calendar is a value-based 4-ary min-heap of (instant, seq, slab-slot)
// entries; the callbacks live in a slab with a free-list, so steady-state
// scheduling through Schedule/ScheduleAfter performs no heap allocations
// (the campaign schedules ~1.6M events per virtual day).
//
// The zero value is not usable; construct with NewKernel.
type Kernel struct {
	now     Time
	cal     []calEntry // 4-ary min-heap ordered by (at, seq)
	slab    []event    // event storage, indexed by calEntry.slot
	free    []int32    // recycled slab slots
	seq     uint64
	stopped bool
	limit   Time

	// executed counts delivered events, for tests and progress reporting.
	executed uint64
}

// event is a slab entry. seq ties it to its calendar entry; dead marks
// cancelled (or delivered) events that are lazily discarded when their
// calendar entry reaches the top of the heap, keeping cancellation O(1).
type event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
}

// calEntry is one value-typed calendar slot: the ordering key plus the slab
// index holding the callback.
type calEntry struct {
	at   Time
	seq  uint64
	slot int32
}

func entryLess(a, b calEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// NewKernel returns a kernel with an empty calendar at virtual time zero.
func NewKernel() *Kernel {
	return &Kernel{limit: Never}
}

// Now reports the current virtual instant.
func (k *Kernel) Now() Time { return k.now }

// Executed reports how many events have been delivered so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending reports how many events are waiting in the calendar (including
// cancelled entries not yet lazily discarded).
func (k *Kernel) Pending() int { return len(k.cal) }

// Timer is a handle to a scheduled event. Stop cancels delivery; a stopped
// or already-delivered timer reports Active() == false. For periodic timers
// (Every), Stop also prevents re-arming.
type Timer struct {
	k       *Kernel
	slot    int32
	seq     uint64
	stopped bool
}

// live reports whether the slab entry for (slot, seq) is still scheduled.
func (k *Kernel) live(slot int32, seq uint64) bool {
	return slot >= 0 && int(slot) < len(k.slab) &&
		k.slab[slot].seq == seq && !k.slab[slot].dead
}

// Active reports whether the timer is still scheduled for delivery.
func (t *Timer) Active() bool {
	return t != nil && !t.stopped && t.k != nil && t.k.live(t.slot, t.seq)
}

// Stop cancels the timer. It reports whether the call prevented a pending
// delivery. Stopping from inside the timer's own callback returns false (the
// delivery already happened) but still halts a periodic series.
func (t *Timer) Stop() bool {
	if t == nil || t.stopped {
		return false
	}
	t.stopped = true
	if t.k != nil && t.k.live(t.slot, t.seq) {
		ev := &t.k.slab[t.slot]
		ev.dead = true
		ev.fn = nil
		return true
	}
	return false
}

// When reports the instant the timer will fire, or Never if inactive.
func (t *Timer) When() Time {
	if !t.Active() {
		return Never
	}
	return t.k.slab[t.slot].at
}

// schedule is the allocation-free core: it places fn at instant at and
// returns the slab slot and sequence number identifying the schedule.
func (k *Kernel) schedule(at Time, fn func()) (int32, uint64) {
	if fn == nil {
		panic("sim: schedule called with nil callback")
	}
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, k.now))
	}
	k.seq++
	var slot int32
	if n := len(k.free); n > 0 {
		slot = k.free[n-1]
		k.free = k.free[:n-1]
	} else {
		k.slab = append(k.slab, event{})
		slot = int32(len(k.slab) - 1)
	}
	k.slab[slot] = event{at: at, seq: k.seq, fn: fn}
	k.heapPush(calEntry{at: at, seq: k.seq, slot: slot})
	return slot, k.seq
}

// Schedule places fn at instant at without returning a cancellation handle.
// It is the zero-allocation path for fire-and-forget events (the vast
// majority of the simulation's schedules). Scheduling in the past panics.
func (k *Kernel) Schedule(at Time, fn func()) { k.schedule(at, fn) }

// ScheduleAfter places fn d after the current instant without returning a
// handle. Negative delays panic, zero delays run after the current event.
func (k *Kernel) ScheduleAfter(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: ScheduleAfter called with negative delay %v", d))
	}
	k.schedule(k.now+d, fn)
}

// At schedules fn to run at instant at and returns a cancellation handle.
// Scheduling in the past (before Now) panics: in a discrete-event simulation
// that is always a logic error, and silently clamping it would mask
// causality bugs.
func (k *Kernel) At(at Time, fn func()) *Timer {
	slot, seq := k.schedule(at, fn)
	return &Timer{k: k, slot: slot, seq: seq}
}

// After schedules fn to run d after the current instant. Negative delays
// panic, zero delays run after the current event completes.
func (k *Kernel) After(d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: After called with negative delay %v", d))
	}
	return k.At(k.now+d, fn)
}

// Every schedules fn to run every period, starting one period from now, and
// returns a Timer whose Stop cancels the series. A non-positive period
// panics.
func (k *Kernel) Every(period Time, fn func()) *Timer {
	if period <= 0 {
		panic(fmt.Sprintf("sim: Every called with non-positive period %v", period))
	}
	t := &Timer{k: k}
	var tick func()
	tick = func() {
		fn()
		// Re-arm unless the handle was stopped (possibly from inside fn).
		if !t.stopped {
			t.slot, t.seq = k.schedule(k.now+period, tick)
		}
	}
	t.slot, t.seq = k.schedule(k.now+period, tick)
	return t
}

// Step delivers the next event, if any, advancing the clock to its instant.
// It reports whether an event was delivered.
func (k *Kernel) Step() bool {
	for len(k.cal) > 0 {
		top := k.cal[0]
		// A slab slot is recycled only after its calendar entry pops, so
		// the top entry always references its own event.
		ev := &k.slab[top.slot]
		if ev.dead {
			// Cancelled entry: discard it and recycle the slot.
			k.heapPop()
			ev.fn = nil
			k.free = append(k.free, top.slot)
			continue
		}
		if top.at > k.limit {
			// Past the horizon: leave the entry in place and report
			// exhaustion.
			return false
		}
		k.heapPop()
		k.now = top.at
		k.executed++
		fn := ev.fn
		ev.dead = true
		ev.fn = nil
		k.free = append(k.free, top.slot)
		fn()
		return true
	}
	return false
}

// Run delivers events until the calendar is empty or Stop is called.
func (k *Kernel) Run() {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
}

// RunUntil delivers events with timestamps <= horizon, then advances the
// clock to the horizon. Events beyond the horizon stay scheduled, so the
// simulation can be resumed with a later horizon.
func (k *Kernel) RunUntil(horizon Time) {
	if horizon < k.now {
		panic(fmt.Sprintf("sim: RunUntil horizon %v before now %v", horizon, k.now))
	}
	k.stopped = false
	k.limit = horizon
	for !k.stopped && k.Step() {
	}
	k.limit = Never
	if !k.stopped && k.now < horizon {
		k.now = horizon
	}
}

// Stop makes the current Run/RunUntil return after the in-flight event
// completes. It is safe to call from inside an event callback.
func (k *Kernel) Stop() { k.stopped = true }

// heapPush appends e and sifts it up the 4-ary heap.
func (k *Kernel) heapPush(e calEntry) {
	k.cal = append(k.cal, e)
	i := len(k.cal) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !entryLess(k.cal[i], k.cal[p]) {
			break
		}
		k.cal[i], k.cal[p] = k.cal[p], k.cal[i]
		i = p
	}
}

// heapPop removes the minimum entry and sifts the tail down.
func (k *Kernel) heapPop() {
	n := len(k.cal) - 1
	k.cal[0] = k.cal[n]
	k.cal = k.cal[:n]
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entryLess(k.cal[j], k.cal[m]) {
				m = j
			}
		}
		if !entryLess(k.cal[m], k.cal[i]) {
			break
		}
		k.cal[i], k.cal[m] = k.cal[m], k.cal[i]
		i = m
	}
}
