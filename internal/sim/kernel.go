package sim

import (
	"container/heap"
	"fmt"
)

// Kernel is the discrete-event simulation engine. Events are callbacks
// scheduled at virtual instants; Run drains the calendar in timestamp order,
// breaking ties by scheduling order so execution is deterministic.
//
// The zero value is not usable; construct with NewKernel.
type Kernel struct {
	now     Time
	cal     calendar
	seq     uint64
	stopped bool
	limit   Time

	// executed counts delivered events, for tests and progress reporting.
	executed uint64
}

// NewKernel returns a kernel with an empty calendar at virtual time zero.
func NewKernel() *Kernel {
	return &Kernel{limit: Never}
}

// Now reports the current virtual instant.
func (k *Kernel) Now() Time { return k.now }

// Executed reports how many events have been delivered so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending reports how many events are waiting in the calendar.
func (k *Kernel) Pending() int { return len(k.cal) }

// Timer is a handle to a scheduled event. Stop cancels delivery; a stopped
// or already-delivered timer reports Active() == false. For periodic timers
// (Every), Stop also prevents re-arming.
type Timer struct {
	ev      *event
	stopped bool
}

// Active reports whether the timer is still scheduled for delivery.
func (t *Timer) Active() bool {
	return t != nil && !t.stopped && t.ev != nil && !t.ev.dead
}

// Stop cancels the timer. It reports whether the call prevented a pending
// delivery. Stopping from inside the timer's own callback returns false (the
// delivery already happened) but still halts a periodic series.
func (t *Timer) Stop() bool {
	if t == nil || t.stopped {
		return false
	}
	t.stopped = true
	if t.ev != nil && !t.ev.dead {
		t.ev.dead = true
		t.ev = nil
		return true
	}
	t.ev = nil
	return false
}

// When reports the instant the timer will fire, or Never if inactive.
func (t *Timer) When() Time {
	if !t.Active() {
		return Never
	}
	return t.ev.at
}

// At schedules fn to run at instant at. Scheduling in the past (before Now)
// panics: in a discrete-event simulation that is always a logic error, and
// silently clamping it would mask causality bugs.
func (k *Kernel) At(at Time, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, k.now))
	}
	k.seq++
	ev := &event{at: at, seq: k.seq, fn: fn}
	heap.Push(&k.cal, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d after the current instant. Negative delays
// panic, zero delays run after the current event completes.
func (k *Kernel) After(d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: After called with negative delay %v", d))
	}
	return k.At(k.now+d, fn)
}

// Every schedules fn to run every period, starting one period from now, and
// returns a Timer whose Stop cancels the series. A non-positive period
// panics.
func (k *Kernel) Every(period Time, fn func()) *Timer {
	if period <= 0 {
		panic(fmt.Sprintf("sim: Every called with non-positive period %v", period))
	}
	t := &Timer{}
	var tick func()
	tick = func() {
		fn()
		// Re-arm unless the handle was stopped (possibly from inside fn).
		if !t.stopped {
			t.ev = k.After(period, tick).ev
		}
	}
	t.ev = k.After(period, tick).ev
	return t
}

// Step delivers the next event, if any, advancing the clock to its instant.
// It reports whether an event was delivered.
func (k *Kernel) Step() bool {
	for len(k.cal) > 0 {
		ev := heap.Pop(&k.cal).(*event)
		if ev.dead {
			continue
		}
		if ev.at > k.limit {
			// Past the horizon: push back and report exhaustion.
			heap.Push(&k.cal, ev)
			return false
		}
		k.now = ev.at
		k.executed++
		ev.dead = true
		ev.fn()
		return true
	}
	return false
}

// Run delivers events until the calendar is empty or Stop is called.
func (k *Kernel) Run() {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
}

// RunUntil delivers events with timestamps <= horizon, then advances the
// clock to the horizon. Events beyond the horizon stay scheduled, so the
// simulation can be resumed with a later horizon.
func (k *Kernel) RunUntil(horizon Time) {
	if horizon < k.now {
		panic(fmt.Sprintf("sim: RunUntil horizon %v before now %v", horizon, k.now))
	}
	k.stopped = false
	k.limit = horizon
	for !k.stopped && k.Step() {
	}
	k.limit = Never
	if !k.stopped && k.now < horizon {
		k.now = horizon
	}
}

// Stop makes the current Run/RunUntil return after the in-flight event
// completes. It is safe to call from inside an event callback.
func (k *Kernel) Stop() { k.stopped = true }

// event is a calendar entry. dead marks cancelled (or delivered) events that
// are lazily discarded when popped, which keeps cancellation O(1).
type event struct {
	at   Time
	seq  uint64
	fn   func()
	idx  int
	dead bool
}

// calendar is a min-heap of events ordered by (at, seq).
type calendar []*event

func (c calendar) Len() int { return len(c) }

func (c calendar) Less(i, j int) bool {
	if c[i].at != c[j].at {
		return c[i].at < c[j].at
	}
	return c[i].seq < c[j].seq
}

func (c calendar) Swap(i, j int) {
	c[i], c[j] = c[j], c[i]
	c[i].idx = i
	c[j].idx = j
}

func (c *calendar) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*c)
	*c = append(*c, ev)
}

func (c *calendar) Pop() any {
	old := *c
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*c = old[:n-1]
	return ev
}
