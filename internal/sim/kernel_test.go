package sim

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	tests := []struct {
		name string
		in   Time
		want time.Duration
	}{
		{"zero", 0, 0},
		{"slot", Slot, 625 * time.Microsecond},
		{"second", Second, time.Second},
		{"day", Day, 24 * time.Hour},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.in.Duration(); got != tt.want {
				t.Errorf("Duration() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	for _, s := range []float64{0, 0.5, 1, 330, 7366, 117893} {
		got := Seconds(s).Seconds()
		if diff := got - s; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("Seconds(%v).Seconds() = %v", s, got)
		}
	}
}

func TestSlots(t *testing.T) {
	if got := (3 * Slot).Slots(); got != 3 {
		t.Errorf("Slots() = %d, want 3", got)
	}
	if got := (3*Slot - 1).Slots(); got != 2 {
		t.Errorf("Slots() = %d, want 2", got)
	}
}

func TestWallRoundTrip(t *testing.T) {
	at := 42 * Day
	ts := Wall(at)
	back, err := ParseWall(ts)
	if err != nil {
		t.Fatalf("ParseWall: %v", err)
	}
	if back != at {
		t.Errorf("round trip = %v, want %v", back, at)
	}
	if _, err := ParseWall(Epoch.Add(-time.Hour)); err == nil {
		t.Error("ParseWall before epoch: want error")
	}
}

func TestKernelOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.At(30*Second, func() { order = append(order, 3) })
	k.At(10*Second, func() { order = append(order, 1) })
	k.At(20*Second, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("delivery order = %v, want [1 2 3]", order)
	}
	if k.Now() != 30*Second {
		t.Errorf("Now() = %v, want 30s", k.Now())
	}
}

func TestKernelTieBreakBySchedulingOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(Second, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order = %v, want ascending", order)
		}
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	tm := k.After(Second, func() { fired = true })
	if !tm.Active() {
		t.Fatal("timer should be active before Run")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report cancellation")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	k.Run()
	if fired {
		t.Error("cancelled timer fired")
	}
}

func TestKernelSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.At(Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		k.At(0, func() {})
	})
	k.Run()
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel()
	var hits []Time
	k.After(Second, func() {
		hits = append(hits, k.Now())
		k.After(Second, func() { hits = append(hits, k.Now()) })
	})
	k.Run()
	if len(hits) != 2 || hits[0] != Second || hits[1] != 2*Second {
		t.Errorf("hits = %v, want [1s 2s]", hits)
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for i := 1; i <= 5; i++ {
		at := Time(i) * Second
		k.At(at, func() { fired = append(fired, at) })
	}
	k.RunUntil(3 * Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events by 3s, want 3", len(fired))
	}
	if k.Now() != 3*Second {
		t.Errorf("Now() = %v, want 3s", k.Now())
	}
	k.RunUntil(10 * Second)
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
	if k.Now() != 10*Second {
		t.Errorf("Now() = %v, want 10s (horizon advance)", k.Now())
	}
}

func TestKernelStopFromCallback(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 10; i++ {
		k.At(Time(i)*Second, func() {
			count++
			if count == 4 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 4 {
		t.Errorf("count = %d, want 4 (stopped mid-run)", count)
	}
	// Resume drains the rest.
	k.Run()
	if count != 10 {
		t.Errorf("count after resume = %d, want 10", count)
	}
}

func TestKernelEvery(t *testing.T) {
	k := NewKernel()
	var ticks []Time
	var tm *Timer
	tm = k.Every(Second, func() {
		ticks = append(ticks, k.Now())
		if len(ticks) == 3 {
			tm.Stop()
		}
	})
	k.RunUntil(10 * Second)
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v, want 3 entries", ticks)
	}
	for i, at := range ticks {
		if want := Time(i+1) * Second; at != want {
			t.Errorf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestKernelEveryPanicsOnZeroPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Every(0) should panic")
		}
	}()
	NewKernel().Every(0, func() {})
}

func TestTimerWhen(t *testing.T) {
	k := NewKernel()
	tm := k.After(5*Second, func() {})
	if tm.When() != 5*Second {
		t.Errorf("When() = %v, want 5s", tm.When())
	}
	tm.Stop()
	if tm.When() != Never {
		t.Errorf("When() after Stop = %v, want Never", tm.When())
	}
}

// TestKernelHeapProperty drives the calendar with random schedules and
// verifies delivery is globally time-ordered.
func TestKernelHeapProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		k := NewKernel()
		var seen []Time
		for _, d := range delays {
			at := Time(d) * Millisecond
			k.At(at, func() { seen = append(seen, at) })
		}
		k.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRigDeterminism(t *testing.T) {
	a := NewRig(7).Stream("fault.hci")
	b := NewRig(7).Stream("fault.hci")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed+name produced different streams")
		}
	}
}

func TestRigStreamIndependence(t *testing.T) {
	rig := NewRig(7)
	a := rig.Stream("a")
	b := rig.Stream("b")
	equal := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Errorf("streams a and b coincided %d/64 times", equal)
	}
}

func TestRigStreamIdentity(t *testing.T) {
	rig := NewRig(1)
	if rig.Stream("x") != rig.Stream("x") {
		t.Error("Stream should return the same object for the same name")
	}
	names := rig.StreamNames()
	if len(names) != 1 || names[0] != "x" {
		t.Errorf("StreamNames = %v, want [x]", names)
	}
}

func TestRigForkIndependence(t *testing.T) {
	rig := NewRig(9)
	f1 := rig.Fork("testbed-1").Stream("s")
	f2 := rig.Fork("testbed-2").Stream("s")
	equal := 0
	for i := 0; i < 64; i++ {
		if f1.Uint64() == f2.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Errorf("forked rigs coincided %d/64 times", equal)
	}
}

func TestRigForkDeterminism(t *testing.T) {
	a := NewRig(9).Fork("tb").Stream("s").Uint64()
	b := NewRig(9).Fork("tb").Stream("s").Uint64()
	if a != b {
		t.Error("fork determinism violated")
	}
}

func TestWorld(t *testing.T) {
	w := NewWorld(13)
	if w.Seed() != 13 {
		t.Errorf("Seed() = %d, want 13", w.Seed())
	}
	var r *rand.Rand = w.RNG("x")
	if r == nil {
		t.Fatal("RNG returned nil")
	}
	fired := false
	w.After(Second, func() { fired = true })
	w.Run()
	if !fired {
		t.Error("world kernel did not deliver event")
	}
}
