package sim

import "testing"

// TestKernelScheduleSteadyStateAllocFree proves that once the calendar,
// slab, and free-list have reached their working capacity, a schedule +
// deliver round trip through the no-handle API performs zero heap
// allocations (the campaign schedules ~1.6M events per virtual day).
func TestKernelScheduleSteadyStateAllocFree(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	// Prime the slab, calendar and free-list capacities.
	for i := 0; i < 256; i++ {
		k.ScheduleAfter(Time(i+1)*Millisecond, fn)
	}
	for k.Step() {
	}
	allocs := testing.AllocsPerRun(1000, func() {
		k.ScheduleAfter(Millisecond, fn)
		k.Step()
	})
	if allocs != 0 {
		t.Errorf("steady-state schedule+deliver allocates %.1f objects per run, want 0", allocs)
	}
}

// TestScheduleDeliversLikeAt pins the no-handle API to the Timer-returning
// one: same ordering, same clock behavior.
func TestScheduleDeliversLikeAt(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Schedule(2*Second, func() { order = append(order, 2) })
	k.At(1*Second, func() { order = append(order, 1) })
	k.ScheduleAfter(3*Second, func() { order = append(order, 3) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("delivery order = %v, want [1 2 3]", order)
	}
	if k.Now() != 3*Second {
		t.Errorf("Now() = %v, want 3s", k.Now())
	}
}

// TestTimerSlotReuseDoesNotResurrect checks the slab generation guard: a
// Timer whose event was delivered must stay inactive even after its slab
// slot is recycled for a new event.
func TestTimerSlotReuseDoesNotResurrect(t *testing.T) {
	k := NewKernel()
	tm := k.After(Millisecond, func() {})
	k.Run()
	if tm.Active() {
		t.Fatal("delivered timer still active")
	}
	// Recycle the slot with a fresh schedule.
	k.ScheduleAfter(Millisecond, func() {})
	if tm.Active() {
		t.Error("stale timer resurrected by slot reuse")
	}
	if tm.Stop() {
		t.Error("stale timer Stop cancelled a foreign event")
	}
	k.Run()
	if k.Executed() != 2 {
		t.Errorf("executed %d events, want 2", k.Executed())
	}
}

// BenchmarkKernelSchedule measures a steady-state schedule + deliver round
// trip through the value-heap calendar.
func BenchmarkKernelSchedule(b *testing.B) {
	k := NewKernel()
	fn := func() {}
	for i := 0; i < 256; i++ {
		k.ScheduleAfter(Time(i+1)*Millisecond, fn)
	}
	for k.Step() {
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.ScheduleAfter(Millisecond, fn)
		k.Step()
	}
}
