package sim

import (
	"hash/fnv"
	"math/rand/v2"
	"sort"
	"sync"
)

// Rig hands out deterministic, named random-number streams. Two components
// asking for differently named streams never perturb each other's sequences,
// so adding a new consumer does not shift the randomness seen by existing
// ones — the property that keeps calibrated campaigns stable as the codebase
// grows.
type Rig struct {
	seed uint64

	mu      sync.Mutex
	streams map[string]*rand.Rand
}

// NewRig returns a rig rooted at seed. Equal seeds yield identical stream
// families.
func NewRig(seed uint64) *Rig {
	return &Rig{seed: seed, streams: make(map[string]*rand.Rand)}
}

// Seed reports the root seed.
func (r *Rig) Seed() uint64 { return r.seed }

// Stream returns the RNG for name, creating it on first use. The stream is
// seeded from a hash of (root seed, name), so the mapping is stable across
// runs and processes.
func (r *Rig) Stream(name string) *rand.Rand {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.streams[name]; ok {
		return s
	}
	h := fnv.New64a()
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(r.seed >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(name))
	lo := h.Sum64()
	h.Write([]byte{0xA5}) // decorrelate the second PCG word
	hi := h.Sum64()
	s := rand.New(rand.NewPCG(lo, hi))
	r.streams[name] = s
	return s
}

// StreamNames reports the names of the streams created so far, sorted, for
// diagnostics and tests.
func (r *Rig) StreamNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.streams))
	for n := range r.streams {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Fork derives a child rig whose streams are independent of the parent's.
// It is used to give each testbed its own randomness family.
func (r *Rig) Fork(name string) *Rig {
	h := fnv.New64a()
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(r.seed >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte("fork:"))
	h.Write([]byte(name))
	return NewRig(h.Sum64())
}
