package traffic

import (
	"math/rand/v2"
	"testing"

	"repro/internal/core"
)

func testRNG() *rand.Rand { return rand.New(rand.NewPCG(51, 52)) }

func TestSampleAllApps(t *testing.T) {
	r := testRNG()
	for _, app := range core.Apps() {
		for i := 0; i < 200; i++ {
			p := Sample(app, r, 1)
			if p.App != app {
				t.Fatalf("%v: wrong app %v", app, p.App)
			}
			if p.Bytes <= 0 {
				t.Fatalf("%v: non-positive volume", app)
			}
			if p.SendPDU <= 0 || p.RecvPDU <= 0 {
				t.Fatalf("%v: bad PDUs %d/%d", app, p.SendPDU, p.RecvPDU)
			}
			if p.SendFrac < 0 || p.SendFrac > 1 {
				t.Fatalf("%v: SendFrac %v", app, p.SendFrac)
			}
			send, recv := p.Packets()
			if send < 0 || recv < 0 || send+recv == 0 {
				t.Fatalf("%v: packets %d/%d", app, send, recv)
			}
		}
	}
}

func TestOnlyStreamingIsPaced(t *testing.T) {
	r := testRNG()
	for _, app := range core.Apps() {
		p := Sample(app, r, 1)
		if p.Paced != (app == core.AppStreaming) {
			t.Errorf("%v: paced = %v", app, p.Paced)
		}
	}
}

func TestVolumeOrderingMatchesFigure3c(t *testing.T) {
	r := testRNG()
	const n = 30000
	mean := map[core.AppKind]float64{}
	for _, app := range core.Apps() {
		mean[app] = MeanBytes(app, r, n)
	}
	// P2P must move the most bytes per cycle; streaming next; the
	// interactive applications (Web, Mail, FTP) less than both.
	if !(mean[core.AppP2P] > mean[core.AppStreaming]) {
		t.Errorf("P2P (%v) should exceed streaming (%v)", mean[core.AppP2P], mean[core.AppStreaming])
	}
	for _, app := range []core.AppKind{core.AppWeb, core.AppMail} {
		if mean[app] >= mean[core.AppStreaming] {
			t.Errorf("%v mean %v should be below streaming %v", app, mean[app], mean[core.AppStreaming])
		}
	}
	if mean[core.AppMail] >= mean[core.AppFTP] {
		t.Errorf("Mail (%v) should be lighter than FTP (%v)", mean[core.AppMail], mean[core.AppFTP])
	}
}

func TestScaleShrinksVolume(t *testing.T) {
	full := MeanBytes(core.AppWeb, rand.New(rand.NewPCG(1, 1)), 5000)
	quarter := 0.0
	r := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 5000; i++ {
		quarter += float64(Sample(core.AppWeb, r, 0.25).Bytes)
	}
	quarter /= 5000
	ratio := quarter / full
	if ratio < 0.2 || ratio > 0.35 {
		t.Errorf("scale 0.25 gave ratio %v", ratio)
	}
}

func TestSamplePanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for zero scale")
		}
	}()
	Sample(core.AppWeb, testRNG(), 0)
}

func TestSamplePanicsOnUnknownApp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for AppNone")
		}
	}()
	Sample(core.AppNone, testRNG(), 1)
}

func TestRandomAppCoversMix(t *testing.T) {
	r := testRNG()
	counts := map[core.AppKind]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		counts[RandomApp(r)]++
	}
	if len(counts) != 5 {
		t.Fatalf("only %d apps drawn", len(counts))
	}
	// Web is the most popular application in the mix.
	for app, c := range counts {
		if app != core.AppWeb && c > counts[core.AppWeb] {
			t.Errorf("%v drawn more often than Web (%d > %d)", app, c, counts[core.AppWeb])
		}
	}
}

func TestPacketsRounding(t *testing.T) {
	p := Plan{App: core.AppWeb, Bytes: 1461, SendPDU: PDUAck, RecvPDU: PDUData, SendFrac: 0}
	send, recv := p.Packets()
	if send != 0 || recv != 2 {
		t.Errorf("packets = %d/%d, want 0/2 (ceil)", send, recv)
	}
	// Degenerate plan still implies at least one packet.
	p = Plan{Bytes: 0, SendPDU: 1, RecvPDU: 1}
	send, recv = p.Packets()
	if send+recv == 0 {
		t.Error("zero packets for degenerate plan")
	}
}
