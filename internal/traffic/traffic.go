// Package traffic implements the application traffic models behind the
// Realistic workload (the paper's §3, following Crovella–Bestavros for the
// Web's self-similar heavy tails and the Sprint backbone measurements of
// Fraleigh et al. for PDU sizes): Web browsing, e-mail, FTP, peer-to-peer
// and audio/video streaming.
//
// Figure 3c's finding — P2P and streaming are the most failure-prone
// applications for BT PANs, Web/Mail/FTP the least — emerges from these
// models mechanically: P2P moves the most bytes per session over saturated,
// long-lived connections; streaming runs long isochronous sessions at a
// moderate rate; the interactive applications transfer little and
// intermittently.
package traffic

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/stats"
)

// Common Internet PDU sizes (Fraleigh et al.): pure-ACK, old default MSS,
// and Ethernet-MSS data segments.
const (
	PDUAck   = 40
	PDUSmall = 576
	PDUData  = 1460
)

// Plan is the sampled transfer plan for one realistic-workload cycle.
type Plan struct {
	App core.AppKind

	// Bytes is the total volume moved this cycle (both directions).
	Bytes int

	// SendPDU and RecvPDU are the uplink/downlink packet sizes (L_S, L_R).
	SendPDU, RecvPDU int

	// SendFrac is the uplink share of Bytes.
	SendFrac float64

	// Paced marks isochronous traffic (streaming): the sender paces packets
	// instead of saturating the link.
	Paced bool
}

// Packets reports the downlink/uplink packet counts implied by the plan.
func (p Plan) Packets() (send, recv int) {
	sendBytes := int(float64(p.Bytes) * p.SendFrac)
	recvBytes := p.Bytes - sendBytes
	send = (sendBytes + p.SendPDU - 1) / p.SendPDU
	recv = (recvBytes + p.RecvPDU - 1) / p.RecvPDU
	if send == 0 && recv == 0 {
		recv = 1
	}
	return send, recv
}

// Sample draws a transfer plan for app. scale multiplies all volumes, which
// lets fast campaigns shrink transfer sizes without changing the relative
// shape across applications (the figures normalise to shares).
func Sample(app core.AppKind, rng *rand.Rand, scale float64) Plan {
	if scale <= 0 {
		panic(fmt.Sprintf("traffic: non-positive scale %v", scale))
	}
	var p Plan
	p.App = app
	switch app {
	case core.AppWeb:
		// Page + embedded objects: heavy-tailed (Crovella-Bestavros).
		size := stats.BoundedPareto{L: 2 << 10, H: 2 << 20, Alpha: 1.3}.Sample(rng)
		p.Bytes = int(size)
		p.SendPDU, p.RecvPDU = PDUAck, PDUData
		p.SendFrac = 0.06 // requests + ACKs
	case core.AppMail:
		// Message sizes: log-normal, median ~8 KB.
		size := stats.LogNormal{Mu: math.Log(8 << 10), Sigma: 1.0}.Sample(rng)
		if size > 1<<20 {
			size = 1 << 20
		}
		p.Bytes = int(size)
		p.SendPDU, p.RecvPDU = PDUData, PDUAck
		p.SendFrac = 0.92 // SMTP upload dominates
	case core.AppFTP:
		size := stats.BoundedPareto{L: 10 << 10, H: 20 << 20, Alpha: 1.15}.Sample(rng)
		p.Bytes = int(size)
		p.SendPDU, p.RecvPDU = PDUAck, PDUData
		p.SendFrac = 0.04
	case core.AppP2P:
		// Chunked file-sharing: the heaviest tail, bidirectional, and the
		// largest expected volume of all applications.
		size := stats.BoundedPareto{L: 512 << 10, H: 32 << 20, Alpha: 1.1}.Sample(rng)
		p.Bytes = int(size)
		p.SendPDU, p.RecvPDU = PDUData, PDUData
		p.SendFrac = 0.35
	case core.AppStreaming:
		// Session duration x codec rate: isochronous.
		dur := stats.Uniform{Lo: 30, Hi: 180}.Sample(rng) // seconds
		const rate = 16 << 10                             // 16 KB/s (128 kbit/s codec)
		p.Bytes = int(dur * rate)
		p.SendPDU, p.RecvPDU = PDUAck, PDUData
		p.SendFrac = 0.02
		p.Paced = true
	default:
		panic(fmt.Sprintf("traffic: no model for app %v", app))
	}
	p.Bytes = int(float64(p.Bytes) * scale)
	if p.Bytes < p.RecvPDU {
		p.Bytes = p.RecvPDU
	}
	return p
}

// appMix is the relative popularity of the emulated applications in the
// realistic workload (documented reproduction choice; the paper's TR fixes
// the mix but only the resulting failure shares are published).
var appMix = []struct {
	app    core.AppKind
	weight float64
}{
	{core.AppWeb, 0.34},
	{core.AppMail, 0.16},
	{core.AppFTP, 0.12},
	{core.AppP2P, 0.22},
	{core.AppStreaming, 0.16},
}

// RandomApp draws an application according to the workload mix.
func RandomApp(rng *rand.Rand) core.AppKind {
	weights := make([]float64, len(appMix))
	for i, m := range appMix {
		weights[i] = m.weight
	}
	return appMix[stats.WeightedChoice(rng, weights)].app
}

// MeanBytes estimates the expected per-cycle volume for an app by Monte
// Carlo; used by tests to assert the Figure 3c volume ordering.
func MeanBytes(app core.AppKind, rng *rand.Rand, samples int) float64 {
	var s stats.Summary
	for i := 0; i < samples; i++ {
		s.Add(float64(Sample(app, rng, 1).Bytes))
	}
	return s.Mean()
}
