// Package baseband implements the Bluetooth 1.1 baseband data plane used by
// the reproduction: ACL packet framing for the six data packet types
// (DM1/DH1/DM3/DH3/DM5/DH5), the CRC-16 payload check, the 8-bit header
// error check (HEC), the shortened Hamming(15,10) 2/3-rate FEC that protects
// DMx payloads, and the ARQ transmitter whose retransmission flush limit is
// the paper's source of "Packet loss" failures.
//
// The bit-exact codecs (CRC16, HEC8, Hamming) are real implementations,
// exercised by property tests. The ARQ transmitter uses them for framing and
// an analytically equivalent per-slot error model for speed, so campaigns
// covering months of virtual time stay fast.
package baseband

// crcPoly is the CCITT generator x^16 + x^12 + x^5 + 1 used by the Bluetooth
// baseband payload CRC.
const crcPoly uint16 = 0x1021

// CRC16 computes the Bluetooth payload CRC over data, seeded with init
// (the spec seeds with the master's UAP in the high byte; the testbeds'
// default UAP of zero gives init 0).
func CRC16(init uint16, data []byte) uint16 {
	crc := init
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ crcPoly
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// hecPoly is the header-error-check generator x^8+x^7+x^5+x^2+x+1 (0x1A7
// with the leading term), used over the 10 header bits.
const hecPoly uint16 = 0x1A7

// HEC8 computes the 8-bit header error check over the 10-bit header value,
// seeded with the UAP.
func HEC8(uap uint8, header10 uint16) uint8 {
	// Process the 10 header bits MSB-first through the LFSR seeded with uap.
	reg := uint16(uap)
	for i := 9; i >= 0; i-- {
		bit := (header10 >> uint(i)) & 1
		msb := (reg >> 7) & 1
		reg = (reg << 1) & 0xFF
		if msb^bit == 1 {
			reg ^= uint16(hecPoly & 0xFF)
		}
	}
	return uint8(reg)
}

// hammingGen is the generator polynomial of the Bluetooth 2/3-rate FEC,
// g(D) = (D+1)(D^4+D+1) = D^5 + D^4 + D^2 + 1, i.e. bits 110101.
const hammingGen uint16 = 0b110101

// HammingEncode encodes 10 information bits (low bits of info) into a 15-bit
// codeword: info shifted up 5, plus the remainder of polynomial division by
// g(D). The code corrects any single bit error in the codeword.
func HammingEncode(info uint16) uint16 {
	info &= 0x3FF
	reg := info << 5
	for i := 14; i >= 5; i-- {
		if reg&(1<<uint(i)) != 0 {
			reg ^= hammingGen << uint(i-5)
		}
	}
	return info<<5 | reg&0x1F
}

// hammingSyndromes maps syndrome value to the single-bit error position.
// Built lazily at init; the code is short enough that the full table is 32
// entries.
var hammingSyndromes [32]int8

func init() {
	for i := range hammingSyndromes {
		hammingSyndromes[i] = -1
	}
	hammingSyndromes[0] = 15 // syndrome 0: no error (position sentinel)
	for pos := 0; pos < 15; pos++ {
		cw := uint16(1) << uint(pos)
		s := hammingSyndrome(cw)
		hammingSyndromes[s] = int8(pos)
	}
}

// hammingSyndrome computes the 5-bit syndrome of a 15-bit word.
func hammingSyndrome(cw uint16) uint16 {
	reg := cw
	for i := 14; i >= 5; i-- {
		if reg&(1<<uint(i)) != 0 {
			reg ^= hammingGen << uint(i-5)
		}
	}
	return reg & 0x1F
}

// HammingDecode decodes a 15-bit codeword. It returns the 10 information
// bits, whether a single-bit error was corrected, and whether decoding
// failed (an uncorrectable pattern was detected). Two-bit errors either
// report detected=false with silently miscorrected data — exactly the
// weakness under burst errors the paper observes — or map to an unused
// syndrome and report failure.
func HammingDecode(cw uint16) (info uint16, corrected, failed bool) {
	cw &= 0x7FFF
	s := hammingSyndrome(cw)
	if s == 0 {
		return cw >> 5, false, false
	}
	pos := hammingSyndromes[s]
	if pos < 0 {
		return cw >> 5, false, true
	}
	cw ^= 1 << uint(pos)
	return cw >> 5, true, false
}

// FECEncode expands data with the (15,10) code: each 10-bit group becomes a
// 15-bit codeword. The result is returned as a packed bit slice (LSB first
// within each byte) together with the number of valid bits.
func FECEncode(data []byte) (coded []byte, nbits int) {
	bits := len(data) * 8
	ncw := (bits + 9) / 10
	nbits = ncw * 15
	coded = make([]byte, (nbits+7)/8)
	for i := 0; i < ncw; i++ {
		var info uint16
		for j := 0; j < 10; j++ {
			bit := i*10 + j
			if bit < bits && data[bit/8]&(1<<uint(bit%8)) != 0 {
				info |= 1 << uint(j)
			}
		}
		cw := HammingEncode(info)
		for j := 0; j < 15; j++ {
			if cw&(1<<uint(j)) != 0 {
				out := i*15 + j
				coded[out/8] |= 1 << uint(out%8)
			}
		}
	}
	return coded, nbits
}

// FECDecode reverses FECEncode, correcting single-bit errors per codeword.
// It reports the number of corrected codewords and the number of codewords
// with detected-uncorrectable patterns.
func FECDecode(coded []byte, nbits, outLen int) (data []byte, correctedCW, failedCW int) {
	data = make([]byte, outLen)
	ncw := nbits / 15
	for i := 0; i < ncw; i++ {
		var cw uint16
		for j := 0; j < 15; j++ {
			bit := i*15 + j
			if bit < len(coded)*8 && coded[bit/8]&(1<<uint(bit%8)) != 0 {
				cw |= 1 << uint(j)
			}
		}
		info, corr, fail := HammingDecode(cw)
		if corr {
			correctedCW++
		}
		if fail {
			failedCW++
		}
		for j := 0; j < 10; j++ {
			bit := i*10 + j
			if bit >= outLen*8 {
				break
			}
			if info&(1<<uint(j)) != 0 {
				data[bit/8] |= 1 << uint(bit%8)
			}
		}
	}
	return data, correctedCW, failedCW
}
