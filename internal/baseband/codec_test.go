package baseband

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestCRC16KnownVectors(t *testing.T) {
	// CRC-16/XMODEM (same polynomial, zero init) classic check value.
	if got := CRC16(0, []byte("123456789")); got != 0x31C3 {
		t.Errorf("CRC16(123456789) = %#04x, want 0x31c3", got)
	}
	if got := CRC16(0, nil); got != 0 {
		t.Errorf("CRC16(empty) = %#04x, want 0", got)
	}
}

func TestCRC16DetectsSingleBitFlips(t *testing.T) {
	data := []byte("bluetooth pan failure data")
	orig := CRC16(0, data)
	for i := 0; i < len(data)*8; i++ {
		mut := make([]byte, len(data))
		copy(mut, data)
		mut[i/8] ^= 1 << uint(i%8)
		if CRC16(0, mut) == orig {
			t.Fatalf("single-bit flip at %d undetected", i)
		}
	}
}

func TestCRC16InitMatters(t *testing.T) {
	data := []byte("x")
	if CRC16(0, data) == CRC16(0xAB00, data) {
		t.Error("different init (UAP) should change the CRC")
	}
}

func TestHEC8DetectsHeaderCorruption(t *testing.T) {
	h := Header{LTAddr: 5, Type: 0xA, ARQN: true}
	enc := h.Encode(0x47)
	if _, err := DecodeHeader(enc, 0x47); err != nil {
		t.Fatalf("clean header rejected: %v", err)
	}
	for bit := 0; bit < 18; bit++ {
		if _, err := DecodeHeader(enc^(1<<uint(bit)), 0x47); err == nil {
			t.Errorf("corrupted header bit %d accepted", bit)
		}
	}
	if _, err := DecodeHeader(enc, 0x48); err == nil {
		t.Error("wrong UAP accepted")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	prop := func(lt, typ uint8, flow, arqn, seqn bool) bool {
		h := Header{LTAddr: lt & 7, Type: typ & 0xF, Flow: flow, ARQN: arqn, SEQN: seqn}
		got, err := DecodeHeader(h.Encode(0), 0)
		return err == nil && got == h
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestHammingRoundTrip(t *testing.T) {
	for info := uint16(0); info < 1024; info++ {
		cw := HammingEncode(info)
		if cw>>5 != info {
			t.Fatalf("systematic property violated for %#x", info)
		}
		got, corrected, failed := HammingDecode(cw)
		if got != info || corrected || failed {
			t.Fatalf("clean decode of %#x: got %#x corrected=%v failed=%v",
				info, got, corrected, failed)
		}
	}
}

func TestHammingCorrectsAllSingleBitErrors(t *testing.T) {
	for info := uint16(0); info < 1024; info += 37 {
		cw := HammingEncode(info)
		for pos := 0; pos < 15; pos++ {
			got, corrected, failed := HammingDecode(cw ^ 1<<uint(pos))
			if failed {
				t.Fatalf("info %#x pos %d: decode failed", info, pos)
			}
			if !corrected {
				t.Fatalf("info %#x pos %d: no correction reported", info, pos)
			}
			if got != info {
				t.Fatalf("info %#x pos %d: decoded %#x", info, pos, got)
			}
		}
	}
}

func TestHammingDoubleErrorsNotSilentlyCorrect(t *testing.T) {
	// A distance-3 code cannot correct 2 errors: every double error must
	// either be flagged failed or miscorrect to a wrong word — it must
	// never return the true word while claiming a clean decode.
	info := uint16(0x2AB)
	cw := HammingEncode(info)
	for a := 0; a < 15; a++ {
		for b := a + 1; b < 15; b++ {
			got, corrected, failed := HammingDecode(cw ^ 1<<uint(a) ^ 1<<uint(b))
			if !failed && !corrected {
				t.Fatalf("double error (%d,%d) decoded as clean", a, b)
			}
			if !failed && got == info {
				t.Fatalf("double error (%d,%d) silently corrected", a, b)
			}
		}
	}
}

func TestFECEncodeDecodeRoundTrip(t *testing.T) {
	prop := func(data []byte) bool {
		if len(data) > 400 {
			data = data[:400]
		}
		coded, nbits := FECEncode(data)
		out, corrected, failed := FECDecode(coded, nbits, len(data))
		if corrected != 0 || failed != 0 {
			return false
		}
		return string(out) == string(data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFECCorrectsScatteredErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	data := make([]byte, 121) // DM3 payload
	for i := range data {
		data[i] = byte(rng.UintN(256))
	}
	coded, nbits := FECEncode(data)
	// Flip one bit in each of the first 10 codewords.
	for i := 0; i < 10; i++ {
		bit := i*15 + int(rng.UintN(15))
		coded[bit/8] ^= 1 << uint(bit%8)
	}
	out, corrected, failed := FECDecode(coded, nbits, len(data))
	if failed != 0 {
		t.Fatalf("scattered single errors reported %d failures", failed)
	}
	if corrected != 10 {
		t.Errorf("corrected %d codewords, want 10", corrected)
	}
	if string(out) != string(data) {
		t.Error("data corrupted despite correction")
	}
}

func TestFECExpansionRatio(t *testing.T) {
	_, nbits := FECEncode(make([]byte, 10)) // 80 bits -> 8 codewords
	if nbits != 8*15 {
		t.Errorf("FEC bits = %d, want 120", nbits)
	}
}
