package baseband

import (
	"math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/radio"
	"repro/internal/sim"
)

func testRNG(a, b uint64) *rand.Rand { return rand.New(rand.NewPCG(a, b)) }

func cleanLink(rng *rand.Rand) *radio.Link {
	cfg := radio.DefaultConfig(0)
	cfg.BERGood, cfg.BERBad = 0, 0
	cfg.InterferencePerHour = 0
	return radio.NewLink(cfg, rng)
}

func noisyLink(ber float64, rng *rand.Rand) *radio.Link {
	cfg := radio.DefaultConfig(0)
	cfg.BERGood, cfg.BERBad = ber, ber
	cfg.InterferencePerHour = 0
	return radio.NewLink(cfg, rng)
}

func TestPacketBuildRejectsOversizedPayload(t *testing.T) {
	if _, err := Build(1, 1, core.PTDM1, false, make([]byte, 18)); err == nil {
		t.Error("DM1 with 18B payload should fail")
	}
	if _, err := Build(1, 1, core.PTDM1, false, make([]byte, 17)); err != nil {
		t.Errorf("DM1 with 17B payload: %v", err)
	}
}

func TestTypeCodesRoundTrip(t *testing.T) {
	for _, pt := range core.PacketTypes() {
		c, err := TypeCode(pt)
		if err != nil {
			t.Fatalf("TypeCode(%v): %v", pt, err)
		}
		back, err := PacketTypeFromCode(c)
		if err != nil || back != pt {
			t.Errorf("code %#x -> %v, %v; want %v", c, back, err, pt)
		}
	}
	if _, err := TypeCode(core.PTUnknown); err == nil {
		t.Error("TypeCode(unknown) should fail")
	}
	if _, err := PacketTypeFromCode(0x0); err == nil {
		t.Error("PacketTypeFromCode(0) should fail")
	}
}

func TestPacketMarshalUnmarshalClean(t *testing.T) {
	for _, pt := range core.PacketTypes() {
		payload := make([]byte, pt.Payload())
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		p, err := Build(0xDEAD, 2, pt, true, payload)
		if err != nil {
			t.Fatalf("Build(%v): %v", pt, err)
		}
		air, nbits := p.Marshal(0)
		got, crcOK, corrected, failed := Unmarshal(pt, 0, air, nbits, len(payload))
		if !crcOK {
			t.Errorf("%v: CRC failed on clean channel", pt)
		}
		if corrected != 0 || failed != 0 {
			t.Errorf("%v: FEC activity on clean channel (%d/%d)", pt, corrected, failed)
		}
		if string(got) != string(payload) {
			t.Errorf("%v: payload mismatch", pt)
		}
	}
}

func TestPacketCorruptionDetectedByCRC(t *testing.T) {
	payload := []byte("hello bluetooth world......")[:27]
	p, err := Build(1, 1, core.PTDH1, false, payload)
	if err != nil {
		t.Fatal(err)
	}
	air, nbits := p.Marshal(0)
	air[3] ^= 0xFF // burst of 8 flipped bits
	_, crcOK, _, _ := Unmarshal(core.PTDH1, 0, air, nbits, len(payload))
	if crcOK {
		t.Error("8-bit burst passed CRC")
	}
}

func TestAirBits(t *testing.T) {
	// DH1: (27+2)*8 = 232 bits uncoded.
	if got := AirBits(core.PTDH1, 27); got != 232 {
		t.Errorf("AirBits(DH1) = %d, want 232", got)
	}
	// DM1: (17+2)*8=152 bits -> 16 codewords -> 240 bits.
	if got := AirBits(core.PTDM1, 17); got != 240 {
		t.Errorf("AirBits(DM1) = %d, want 240", got)
	}
}

func TestARQConfigValidate(t *testing.T) {
	if err := DefaultARQConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := DefaultARQConfig()
	bad.FlushLimit = 0
	if bad.Validate() == nil {
		t.Error("flush limit 0 should be invalid")
	}
	bad = DefaultARQConfig()
	bad.CRCEscape = 2
	if bad.Validate() == nil {
		t.Error("CRC escape 2 should be invalid")
	}
}

func TestSendCleanChannelDeliversFirstTry(t *testing.T) {
	tx := NewTransmitter(DefaultARQConfig(), cleanLink(testRNG(1, 1)), testRNG(2, 2))
	for _, pt := range core.PacketTypes() {
		res := tx.Send(pt, pt.Payload())
		if res.Outcome != Delivered || res.Attempts != 1 {
			t.Errorf("%v: outcome=%v attempts=%d on clean channel", pt, res.Outcome, res.Attempts)
		}
		wantSlots := int64(pt.Slots() + 1)
		if res.Slots != wantSlots {
			t.Errorf("%v: slots=%d, want %d", pt, res.Slots, wantSlots)
		}
		if res.Elapsed != sim.Time(wantSlots)*sim.Slot {
			t.Errorf("%v: elapsed=%v", pt, res.Elapsed)
		}
	}
}

func TestSendHostileChannelDrops(t *testing.T) {
	cfg := DefaultARQConfig()
	cfg.CRCEscape = 0
	tx := NewTransmitter(cfg, noisyLink(0.5, testRNG(3, 3)), testRNG(4, 4))
	res := tx.Send(core.PTDH5, 339)
	if res.Outcome != Dropped {
		t.Fatalf("outcome = %v on a 50%% BER channel, want dropped", res.Outcome)
	}
	if res.Attempts != cfg.FlushLimit {
		t.Errorf("attempts = %d, want flush limit %d", res.Attempts, cfg.FlushLimit)
	}
}

func TestSendCRCEscapeProducesCorrupted(t *testing.T) {
	cfg := DefaultARQConfig()
	cfg.CRCEscape = 1 // every corrupted attempt escapes
	tx := NewTransmitter(cfg, noisyLink(0.5, testRNG(5, 5)), testRNG(6, 6))
	res := tx.Send(core.PTDM1, 17)
	if res.Outcome != Corrupted {
		t.Fatalf("outcome = %v, want corrupted with escape=1", res.Outcome)
	}
}

func TestSendRetransmissionsConsumeSlots(t *testing.T) {
	cfg := DefaultARQConfig()
	cfg.CRCEscape = 0
	// 0.1% BER over a 1480-bit DH3 packet: individual attempts fail with
	// p~0.77, so delivery usually needs a few tries.
	tx := NewTransmitter(cfg, noisyLink(0.001, testRNG(7, 7)), testRNG(8, 8))
	var retried *TxResult
	for i := 0; i < 5000; i++ {
		res := tx.Send(core.PTDH3, 183)
		if res.Attempts > 1 && res.Outcome == Delivered {
			retried = &res
			break
		}
	}
	if retried == nil {
		t.Fatal("no retransmissions observed at 0.1% BER")
	}
	if retried.Slots != int64(retried.Attempts)*4 {
		t.Errorf("slots = %d for %d attempts of a 3-slot packet (+1 return each)",
			retried.Slots, retried.Attempts)
	}
}

func TestPerByteLossOrderingMatchesFigure3a(t *testing.T) {
	// The paper's Figure 3a finding: per byte of offered data, packet loss
	// decreases with slot count, and DMx lose more than DHx. Use a channel
	// with frequent short fades so the flush limit actually bites.
	cfg := radio.DefaultConfig(0)
	cfg.MeanGoodDur = 800 * sim.Millisecond
	cfg.MeanBadDur = 80 * sim.Millisecond
	cfg.BERBad = 0.05
	cfg.InterferencePerHour = 0

	arq := DefaultARQConfig()
	arq.CRCEscape = 0

	lossPerByte := map[core.PacketType]float64{}
	const volume = 4 << 20 // bytes per type
	for _, pt := range core.PacketTypes() {
		link := radio.NewLink(cfg, testRNG(11, uint64(pt)))
		tx := NewTransmitter(arq, link, testRNG(12, uint64(pt)))
		drops, sent := 0, 0
		for sent < volume {
			res := tx.Send(pt, pt.Payload())
			sent += pt.Payload()
			if res.Outcome == Dropped {
				drops++
			}
		}
		lossPerByte[pt] = float64(drops) / float64(sent)
	}

	if !(lossPerByte[core.PTDM1] > lossPerByte[core.PTDM3] &&
		lossPerByte[core.PTDM3] > lossPerByte[core.PTDM5]) {
		t.Errorf("multi-slot DM ordering violated: %v", lossPerByte)
	}
	if !(lossPerByte[core.PTDH1] > lossPerByte[core.PTDH3] &&
		lossPerByte[core.PTDH3] > lossPerByte[core.PTDH5]) {
		t.Errorf("multi-slot DH ordering violated: %v", lossPerByte)
	}
	for _, pair := range [][2]core.PacketType{
		{core.PTDM1, core.PTDH1}, {core.PTDM3, core.PTDH3}, {core.PTDM5, core.PTDH5},
	} {
		if lossPerByte[pair[0]] <= lossPerByte[pair[1]] {
			t.Errorf("%v should lose more per byte than %v: %v",
				pair[0], pair[1], lossPerByte)
		}
	}
}

func TestAdvanceTo(t *testing.T) {
	tx := NewTransmitter(DefaultARQConfig(), cleanLink(testRNG(9, 9)), testRNG(10, 10))
	tx.Send(core.PTDH1, 10)
	cur := tx.Slot()
	tx.AdvanceTo(cur + 100)
	if tx.Slot() != cur+100 {
		t.Errorf("Slot() = %d, want %d", tx.Slot(), cur+100)
	}
	defer func() {
		if recover() == nil {
			t.Error("backwards AdvanceTo should panic")
		}
	}()
	tx.AdvanceTo(cur)
}

func TestSendPanicsOnBadPayload(t *testing.T) {
	tx := NewTransmitter(DefaultARQConfig(), cleanLink(testRNG(13, 13)), testRNG(14, 14))
	defer func() {
		if recover() == nil {
			t.Error("oversized payload should panic")
		}
	}()
	tx.Send(core.PTDM1, 100)
}
