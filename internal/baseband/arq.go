package baseband

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/radio"
	"repro/internal/sim"
)

// ARQConfig parameterises the baseband retransmission scheme.
type ARQConfig struct {
	// FlushLimit is the maximum number of transmission attempts per payload;
	// when exhausted, the current payload is dropped and the next one is
	// considered — the paper's explanation for packet-loss failures.
	FlushLimit int

	// CRCEscape is the probability that a corrupted payload slips past the
	// CRC-16 (a "data mismatch"). Under correlated burst errors the residual
	// error rate is far above the 2^-16 memoryless bound (Paulitsch et al.,
	// DSN 2005), which is why the paper sees data corruption at all.
	CRCEscape float64

	// BurstContinue is the intra-burst bit-error clustering density; it must
	// match radio.CodewordErrors' continuation probability (0.3) for the
	// analytic fast path to agree with the bit-level model.
	BurstContinue float64

	// SlowPath disables the transmitter's probability memoization: every
	// chunk and attempt probability is recomputed from scratch instead of
	// served from the (pt, bits, BER)-keyed caches. Control flow —
	// run-length BER queries and SDU batching included — is identical on
	// both settings, and probabilities combine in the same order, so
	// campaign outputs are bit-identical; the knob exists so the
	// seed-equivalence test can prove the memoization is sound. (The
	// run-length API itself is pinned to per-slot queries by
	// radio's TestBERRunMatchesSlotBER, and the batch draw to per-fragment
	// sends by TestSendSDUMatchesPerFragmentSends.)
	SlowPath bool
}

// DefaultARQConfig returns the calibrated retransmission parameters.
func DefaultARQConfig() ARQConfig {
	return ARQConfig{
		FlushLimit:    16,
		CRCEscape:     2e-5,
		BurstContinue: 0.3,
	}
}

// Validate reports configuration errors.
func (c ARQConfig) Validate() error {
	switch {
	case c.FlushLimit < 1:
		return fmt.Errorf("baseband: flush limit %d < 1", c.FlushLimit)
	case c.CRCEscape < 0 || c.CRCEscape > 1:
		return fmt.Errorf("baseband: CRC escape %v out of range", c.CRCEscape)
	case c.BurstContinue < 0 || c.BurstContinue >= 1:
		return fmt.Errorf("baseband: burst continuation %v out of range", c.BurstContinue)
	default:
		return nil
	}
}

// Outcome describes the fate of one payload submitted to the ARQ.
type Outcome int

// Payload fates.
const (
	// Delivered: payload arrived intact (possibly after retransmissions).
	Delivered Outcome = iota
	// Dropped: the flush limit was exhausted; the payload was discarded
	// (surfaces as a "Packet loss" user failure after the 30 s timeout).
	Dropped
	// Corrupted: the payload was accepted by the receiver but its content
	// is wrong (CRC escape; surfaces as "Data mismatch").
	Corrupted
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case Dropped:
		return "dropped"
	case Corrupted:
		return "corrupted"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// TxResult reports the transmission of one payload.
type TxResult struct {
	Outcome  Outcome
	Attempts int      // transmission attempts made (1 = first try succeeded)
	Slots    int64    // total slots consumed, including return slots
	Elapsed  sim.Time // Slots expressed as time
}

// Transmitter runs the ACL ARQ over a radio link. It is the data plane of
// one piconet direction; the workload calls Send once per BlueTest packet.
type Transmitter struct {
	cfg  ARQConfig
	link *radio.Link
	rng  *rand.Rand
	slot int64 // next free slot on the shared piconet clock

	// cf memoizes chunkFailProb per (packet type, bits-in-slot, BER). The
	// BER is part of the key, so entries never need explicit invalidation:
	// a channel-state transition simply stops hitting them. An attempt
	// touches at most two distinct bit counts (full slots plus the
	// remainder slot), so a tiny ring with linear scan stays hot across
	// the ~2.9M-slot good-state sojourns that dominate the campaign.
	cf     [8]cfEntry
	cfNext int
	cfMRU  int

	// att memoizes whole-attempt survival probabilities per (packet type,
	// air bits, BER) for attempts that fall entirely inside one channel
	// state — the overwhelmingly common case. One hit replaces the
	// per-slot chunk loop.
	att     [8]attEntry
	attNext int
	attMRU  int

	// pOKs is SendSDU's scratch buffer of per-fragment survival
	// probabilities; a field rather than a local so the 1 KiB array is not
	// re-zeroed on every SDU.
	pOKs [sduBatchMax]float64
}

// attEntry is one memoized attempt survival probability.
type attEntry struct {
	ber     float64
	pOK     float64
	airBits int32
	pt      core.PacketType
	valid   bool
}

// attemptOK returns the probability that an attempt of airBits on-air bits
// survives every one of its slots at constant BER, memoized. The product is
// accumulated slot by slot in the same order as the slow path, from the same
// memoized chunkFailProb values, so the cached float is bit-identical to
// what a per-slot computation yields.
func (t *Transmitter) attemptOK(pt core.PacketType, airBits, slots, bitsPerSlot int, ber float64) float64 {
	if e := &t.att[t.attMRU]; e.valid && e.pt == pt && e.airBits == int32(airBits) && e.ber == ber {
		return e.pOK
	}
	for i := range t.att {
		e := &t.att[i]
		if e.valid && e.pt == pt && e.airBits == int32(airBits) && e.ber == ber {
			t.attMRU = i
			return e.pOK
		}
	}
	pOK := 1.0
	for s := 0; s < slots; s++ {
		bits := bitsPerSlot
		if rem := airBits - s*bitsPerSlot; rem < bits {
			bits = rem
		}
		pOK *= 1 - t.chunkFail(pt, bits, ber)
	}
	t.att[t.attNext] = attEntry{ber: ber, pOK: pOK, airBits: int32(airBits), pt: pt, valid: true}
	t.attMRU = t.attNext
	t.attNext = (t.attNext + 1) % len(t.att)
	return pOK
}

// cfEntry is one memoized chunk-failure probability.
type cfEntry struct {
	ber   float64
	prob  float64
	bits  int32
	pt    core.PacketType
	valid bool
}

// chunkFail returns chunkFailProb(pt, bits, ber), memoized. The cached value
// is the exact float produced by chunkFailProb, so fast- and slow-path
// campaigns stay bit-identical.
func (t *Transmitter) chunkFail(pt core.PacketType, bits int, ber float64) float64 {
	// Consecutive lookups repeat the previous key almost always (full
	// fragments of one SDU share a bit count), so check the last hit
	// before scanning the ring.
	if e := &t.cf[t.cfMRU]; e.valid && e.pt == pt && e.bits == int32(bits) && e.ber == ber {
		return e.prob
	}
	for i := range t.cf {
		e := &t.cf[i]
		if e.valid && e.pt == pt && e.bits == int32(bits) && e.ber == ber {
			t.cfMRU = i
			return e.prob
		}
	}
	p := t.chunkFailProb(pt, bits, ber)
	t.cf[t.cfNext] = cfEntry{ber: ber, prob: p, bits: int32(bits), pt: pt, valid: true}
	t.cfMRU = t.cfNext
	t.cfNext = (t.cfNext + 1) % len(t.cf)
	return p
}

// NewTransmitter builds a transmitter over link. Invalid configs panic
// (constructed once at testbed build time).
func NewTransmitter(cfg ARQConfig, link *radio.Link, rng *rand.Rand) *Transmitter {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Transmitter{cfg: cfg, link: link, rng: rng}
}

// Slot reports the next free piconet slot.
func (t *Transmitter) Slot() int64 { return t.slot }

// AdvanceTo moves the piconet clock forward (e.g. across idle periods).
// Moving backwards panics: slots are a shared monotone resource.
func (t *Transmitter) AdvanceTo(slot int64) {
	if slot < t.slot {
		panic(fmt.Sprintf("baseband: AdvanceTo %d before current slot %d", slot, t.slot))
	}
	t.slot = slot
}

// chunkFailProb computes the probability that the bits of one slot's share
// of the payload are not recovered, given the slot BER. For FEC-coded (DMx)
// packets a codeword survives zero errors or exactly one (corrected); under
// the clustered-error model, P(>=2 | >=1) = BurstContinue. For uncoded (DHx)
// packets any bit error corrupts the payload.
func (t *Transmitter) chunkFailProb(pt core.PacketType, bitsInSlot int, ber float64) float64 {
	if bitsInSlot <= 0 {
		return 0
	}
	if !pt.FEC() {
		return 1 - powOneMinus(ber, bitsInSlot)
	}
	// Codewords of 15 bits; a codeword fails when a burst continues past
	// the first errored bit.
	ncw := (bitsInSlot + 14) / 15
	pAnyCW := 1 - powOneMinus(ber, 15)
	pCWFail := pAnyCW * t.cfg.BurstContinue
	return 1 - powOneMinus(pCWFail, ncw)
}

// attemptSurvival computes the probability that one attempt's data slots all
// deliver their chunk of the payload intact, advancing the piconet clock
// across them. The product runs slot by slot in transmission order; on the
// fast path a whole-attempt memo (attemptOK) or the chunkFail memo supplies
// the factors, with cfg.SlowPath every factor is recomputed from scratch —
// both orderings and values are bit-identical.
func (t *Transmitter) attemptSurvival(pt core.PacketType, airBits, slots, bitsPerSlot int) float64 {
	pOK := 1.0
	end := t.slot + int64(slots)
	for s := 0; t.slot < end; {
		ber, until := t.link.BERRun(t.slot, end)
		if !t.cfg.SlowPath && s == 0 && until >= end {
			// The whole attempt sits in one channel state: one memoized
			// probability covers it.
			pOK = t.attemptOK(pt, airBits, slots, bitsPerSlot, ber)
			t.slot = end
			break
		}
		for ; t.slot < until; s++ {
			bits := bitsPerSlot
			if rem := airBits - s*bitsPerSlot; rem < bits {
				bits = rem
			}
			if t.cfg.SlowPath {
				pOK *= 1 - t.chunkFailProb(pt, bits, ber)
			} else {
				pOK *= 1 - t.chunkFail(pt, bits, ber)
			}
			t.slot++
		}
	}
	return pOK
}

// sendFragment runs the ARQ for one fragment, with attemptsDone attempts
// already consumed by the caller (the SDU batch path hands over fragments
// whose first attempt failed). Slots and elapsed time are measured from the
// call's entry.
func (t *Transmitter) sendFragment(pt core.PacketType, payloadLen, attemptsDone int) TxResult {
	airBits := AirBits(pt, payloadLen)
	slots := pt.Slots()
	bitsPerSlot := (airBits + slots - 1) / slots

	start := t.slot
	attempts := attemptsDone
	for {
		attempts++
		pOK := t.attemptSurvival(pt, airBits, slots, bitsPerSlot)
		// One Bernoulli decides the attempt; inlined (instead of stats) to
		// keep call overhead off the per-attempt path, with the same
		// draw-skipping edge cases.
		corrupt := false
		if pFail := 1 - pOK; pFail > 0 {
			corrupt = pFail >= 1 || t.rng.Float64() < pFail
		}
		t.slot++ // return slot carrying ACK/NAK

		if !corrupt {
			used := t.slot - start
			return TxResult{Outcome: Delivered, Attempts: attempts,
				Slots: used, Elapsed: sim.Time(used) * sim.Slot}
		}
		// Corrupted attempt: tiny chance the CRC fails to notice and the
		// receiver ACKs garbage.
		if stats(t.rng, t.cfg.CRCEscape) {
			used := t.slot - start
			return TxResult{Outcome: Corrupted, Attempts: attempts,
				Slots: used, Elapsed: sim.Time(used) * sim.Slot}
		}
		if attempts >= t.cfg.FlushLimit {
			used := t.slot - start
			return TxResult{Outcome: Dropped, Attempts: attempts,
				Slots: used, Elapsed: sim.Time(used) * sim.Slot}
		}
	}
}

// Send transmits one payload of payloadLen bytes as a packet of type pt,
// retransmitting on integrity failure up to the flush limit. Slots advance
// on the shared piconet clock; each attempt consumes the packet's slots plus
// one return slot for the ACK/NAK (the baseband's alternating TDD).
//
// Each attempt draws one Bernoulli against the probability that any slot's
// chunk of the payload is corrupted (1 - Π over slots of the chunk survival
// probabilities), instead of one draw per slot — the same corruption
// distribution for a fraction of the RNG and BER-query work.
func (t *Transmitter) Send(pt core.PacketType, payloadLen int) TxResult {
	if payloadLen < 0 || payloadLen > pt.Payload() {
		panic(fmt.Sprintf("baseband: payload %dB out of range for %v", payloadLen, pt))
	}
	return t.sendFragment(pt, payloadLen, 0)
}

// SDUResult reports the transmission of one multi-fragment SDU.
type SDUResult struct {
	Outcome Outcome
	Slots   int64    // total slots consumed, including return slots
	Elapsed sim.Time // Slots expressed as time
}

// sduBatchMax bounds the stack array holding per-fragment survival
// probabilities in SendSDU; longer SDUs (a DM1-segmented BNEP MTU is ~100
// fragments) batch in consecutive windows.
const sduBatchMax = 128

// SendSDU transmits an SDU segmented into count fragments — full fragments
// of fullLen bytes plus a final one of lastLen — exactly as consecutive
// Send calls would, but batched: while the channel state holds, the first
// attempts of every remaining fragment are decided by a single uniform draw
// against the prefix-product failure CDF (the draw that locates the first
// failing fragment is the same draw that decided failure, by CDF inversion,
// so the per-fragment outcome distribution is untouched). Only fragments at
// a channel-state transition, or retransmissions after a located failure,
// fall back to the per-attempt path. This turns the dominant workload case —
// a multi-fragment SDU delivered cleanly inside a multi-minute good-state
// sojourn — into one BER query, one memo hit and one RNG draw.
func (t *Transmitter) SendSDU(pt core.PacketType, count, fullLen, lastLen int) SDUResult {
	if count < 1 {
		panic(fmt.Sprintf("baseband: SendSDU with %d fragments", count))
	}
	if fullLen < 0 || fullLen > pt.Payload() || lastLen < 0 || lastLen > pt.Payload() {
		panic(fmt.Sprintf("baseband: fragment lengths %d/%d out of range for %v",
			fullLen, lastLen, pt))
	}
	slots := pt.Slots()
	stride := int64(slots + 1) // data slots plus the ACK/NAK return slot
	start := t.slot
	fullBits := AirBits(pt, fullLen)
	lastBits := AirBits(pt, lastLen)
	fullBPS := (fullBits + slots - 1) / slots
	lastBPS := (lastBits + slots - 1) / slots

	for frag := 0; frag < count; {
		remaining := count - frag
		windowEnd := t.slot + int64(remaining)*stride
		ber, until := t.link.BERRun(t.slot, windowEnd)
		// n fragments have all their data slots inside this channel state.
		span := until - t.slot
		n := 0
		if span >= int64(slots) {
			n = int((span-int64(slots))/stride) + 1
			if n > remaining {
				n = remaining
			}
			if n > sduBatchMax {
				n = sduBatchMax
			}
		}
		if n == 0 {
			// The next fragment's data slots straddle a state transition:
			// send it through the per-attempt path.
			fragLen := fullLen
			if frag == count-1 {
				fragLen = lastLen
			}
			res := t.sendFragment(pt, fragLen, 0)
			if res.Outcome != Delivered {
				return t.sduDone(res.Outcome, start)
			}
			frag++
			continue
		}
		// First-attempt survival probabilities of the batched fragments, in
		// transmission order (identical factors and order on both paths).
		// Only two distinct values occur — full fragments and the final
		// one — so they are computed once per batch and the product runs
		// over scalars.
		pFull := t.batchFragOK(pt, fullBits, slots, fullBPS, ber)
		pLast := pFull
		if frag+n == count {
			pLast = t.batchFragOK(pt, lastBits, slots, lastBPS, ber)
		}
		pAll := 1.0
		for i := 0; i < n; i++ {
			p := pFull
			if frag+i == count-1 {
				p = pLast
			}
			t.pOKs[i] = p
			pAll *= p
		}
		pFail := 1 - pAll
		if pFail <= 0 {
			// Every batched fragment delivers on its first attempt.
			t.slot += int64(n) * stride
			frag += n
			continue
		}
		u := t.rng.Float64()
		if u >= pFail {
			t.slot += int64(n) * stride
			frag += n
			continue
		}
		// Some first attempt failed: invert the same u on the prefix-failure
		// CDF F_j = 1 - Π_{i<=j} pOK_i to locate the first failing fragment
		// (u < pFail = F_{n-1} guarantees a hit; F is non-decreasing).
		prefix := 1.0
		j := n - 1
		for i := 0; i < n; i++ {
			prefix *= t.pOKs[i]
			if u < 1-prefix {
				j = i
				break
			}
		}
		// Fragments before j delivered first-try; fragment j's first attempt
		// consumed its stride and was corrupted.
		t.slot += int64(j+1) * stride
		if stats(t.rng, t.cfg.CRCEscape) {
			return t.sduDone(Corrupted, start)
		}
		if t.cfg.FlushLimit <= 1 {
			return t.sduDone(Dropped, start)
		}
		fragLen := fullLen
		if frag+j == count-1 {
			fragLen = lastLen
		}
		res := t.sendFragment(pt, fragLen, 1)
		if res.Outcome != Delivered {
			return t.sduDone(res.Outcome, start)
		}
		frag += j + 1
	}
	return t.sduDone(Delivered, start)
}

// batchFragOK returns the first-attempt survival probability of one batched
// fragment at constant BER: memoized on the fast path, recomputed slot by
// slot (in the same order, yielding the same float) with cfg.SlowPath.
func (t *Transmitter) batchFragOK(pt core.PacketType, airBits, slots, bitsPerSlot int, ber float64) float64 {
	if !t.cfg.SlowPath {
		return t.attemptOK(pt, airBits, slots, bitsPerSlot, ber)
	}
	p := 1.0
	for s := 0; s < slots; s++ {
		bits := bitsPerSlot
		if rem := airBits - s*bitsPerSlot; rem < bits {
			bits = rem
		}
		p *= 1 - t.chunkFailProb(pt, bits, ber)
	}
	return p
}

// sduDone assembles an SDUResult from the slots consumed since start.
func (t *Transmitter) sduDone(o Outcome, start int64) SDUResult {
	used := t.slot - start
	return SDUResult{Outcome: o, Slots: used, Elapsed: sim.Time(used) * sim.Slot}
}

// stats draws a Bernoulli without importing internal/stats (avoids a cycle-
// prone dependency for one function).
func stats(rng *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return rng.Float64() < p
}

// powOneMinus computes (1-p)^n by squaring.
func powOneMinus(p float64, n int) float64 {
	out := 1.0
	base := 1 - p
	for n > 0 {
		if n&1 == 1 {
			out *= base
		}
		base *= base
		n >>= 1
	}
	return out
}
