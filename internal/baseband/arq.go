package baseband

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/radio"
	"repro/internal/sim"
)

// ARQConfig parameterises the baseband retransmission scheme.
type ARQConfig struct {
	// FlushLimit is the maximum number of transmission attempts per payload;
	// when exhausted, the current payload is dropped and the next one is
	// considered — the paper's explanation for packet-loss failures.
	FlushLimit int

	// CRCEscape is the probability that a corrupted payload slips past the
	// CRC-16 (a "data mismatch"). Under correlated burst errors the residual
	// error rate is far above the 2^-16 memoryless bound (Paulitsch et al.,
	// DSN 2005), which is why the paper sees data corruption at all.
	CRCEscape float64

	// BurstContinue is the intra-burst bit-error clustering density; it must
	// match radio.CodewordErrors' continuation probability (0.3) for the
	// analytic fast path to agree with the bit-level model.
	BurstContinue float64
}

// DefaultARQConfig returns the calibrated retransmission parameters.
func DefaultARQConfig() ARQConfig {
	return ARQConfig{
		FlushLimit:    16,
		CRCEscape:     2e-5,
		BurstContinue: 0.3,
	}
}

// Validate reports configuration errors.
func (c ARQConfig) Validate() error {
	switch {
	case c.FlushLimit < 1:
		return fmt.Errorf("baseband: flush limit %d < 1", c.FlushLimit)
	case c.CRCEscape < 0 || c.CRCEscape > 1:
		return fmt.Errorf("baseband: CRC escape %v out of range", c.CRCEscape)
	case c.BurstContinue < 0 || c.BurstContinue >= 1:
		return fmt.Errorf("baseband: burst continuation %v out of range", c.BurstContinue)
	default:
		return nil
	}
}

// Outcome describes the fate of one payload submitted to the ARQ.
type Outcome int

// Payload fates.
const (
	// Delivered: payload arrived intact (possibly after retransmissions).
	Delivered Outcome = iota
	// Dropped: the flush limit was exhausted; the payload was discarded
	// (surfaces as a "Packet loss" user failure after the 30 s timeout).
	Dropped
	// Corrupted: the payload was accepted by the receiver but its content
	// is wrong (CRC escape; surfaces as "Data mismatch").
	Corrupted
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case Dropped:
		return "dropped"
	case Corrupted:
		return "corrupted"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// TxResult reports the transmission of one payload.
type TxResult struct {
	Outcome  Outcome
	Attempts int      // transmission attempts made (1 = first try succeeded)
	Slots    int64    // total slots consumed, including return slots
	Elapsed  sim.Time // Slots expressed as time
}

// Transmitter runs the ACL ARQ over a radio link. It is the data plane of
// one piconet direction; the workload calls Send once per BlueTest packet.
type Transmitter struct {
	cfg  ARQConfig
	link *radio.Link
	rng  *rand.Rand
	slot int64 // next free slot on the shared piconet clock
}

// NewTransmitter builds a transmitter over link. Invalid configs panic
// (constructed once at testbed build time).
func NewTransmitter(cfg ARQConfig, link *radio.Link, rng *rand.Rand) *Transmitter {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Transmitter{cfg: cfg, link: link, rng: rng}
}

// Slot reports the next free piconet slot.
func (t *Transmitter) Slot() int64 { return t.slot }

// AdvanceTo moves the piconet clock forward (e.g. across idle periods).
// Moving backwards panics: slots are a shared monotone resource.
func (t *Transmitter) AdvanceTo(slot int64) {
	if slot < t.slot {
		panic(fmt.Sprintf("baseband: AdvanceTo %d before current slot %d", slot, t.slot))
	}
	t.slot = slot
}

// chunkFailProb computes the probability that the bits of one slot's share
// of the payload are not recovered, given the slot BER. For FEC-coded (DMx)
// packets a codeword survives zero errors or exactly one (corrected); under
// the clustered-error model, P(>=2 | >=1) = BurstContinue. For uncoded (DHx)
// packets any bit error corrupts the payload.
func (t *Transmitter) chunkFailProb(pt core.PacketType, bitsInSlot int, ber float64) float64 {
	if bitsInSlot <= 0 {
		return 0
	}
	pAny := 1 - powOneMinus(ber, bitsInSlot)
	if !pt.FEC() {
		return pAny
	}
	// Codewords of 15 bits; a codeword fails when a burst continues past
	// the first errored bit.
	ncw := (bitsInSlot + 14) / 15
	pAnyCW := 1 - powOneMinus(ber, 15)
	pCWFail := pAnyCW * t.cfg.BurstContinue
	_ = pAny
	return 1 - powOneMinus(pCWFail, ncw)
}

// Send transmits one payload of payloadLen bytes as a packet of type pt,
// retransmitting on integrity failure up to the flush limit. Slots advance
// on the shared piconet clock; each attempt consumes the packet's slots plus
// one return slot for the ACK/NAK (the baseband's alternating TDD).
func (t *Transmitter) Send(pt core.PacketType, payloadLen int) TxResult {
	if payloadLen < 0 || payloadLen > pt.Payload() {
		panic(fmt.Sprintf("baseband: payload %dB out of range for %v", payloadLen, pt))
	}
	airBits := AirBits(pt, payloadLen)
	slots := pt.Slots()
	bitsPerSlot := (airBits + slots - 1) / slots

	start := t.slot
	attempts := 0
	for {
		attempts++
		corrupt := false
		for s := 0; s < slots; s++ {
			ber := t.link.SlotBER(t.slot)
			t.slot++
			bits := bitsPerSlot
			if rem := airBits - s*bitsPerSlot; rem < bits {
				bits = rem
			}
			if stats(t.rng, t.chunkFailProb(pt, bits, ber)) {
				corrupt = true
			}
		}
		t.slot++ // return slot carrying ACK/NAK

		if !corrupt {
			used := t.slot - start
			return TxResult{Outcome: Delivered, Attempts: attempts,
				Slots: used, Elapsed: sim.Time(used) * sim.Slot}
		}
		// Corrupted attempt: tiny chance the CRC fails to notice and the
		// receiver ACKs garbage.
		if stats(t.rng, t.cfg.CRCEscape) {
			used := t.slot - start
			return TxResult{Outcome: Corrupted, Attempts: attempts,
				Slots: used, Elapsed: sim.Time(used) * sim.Slot}
		}
		if attempts >= t.cfg.FlushLimit {
			used := t.slot - start
			return TxResult{Outcome: Dropped, Attempts: attempts,
				Slots: used, Elapsed: sim.Time(used) * sim.Slot}
		}
	}
}

// stats draws a Bernoulli without importing internal/stats (avoids a cycle-
// prone dependency for one function).
func stats(rng *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return rng.Float64() < p
}

// powOneMinus computes (1-p)^n by squaring.
func powOneMinus(p float64, n int) float64 {
	out := 1.0
	base := 1 - p
	for n > 0 {
		if n&1 == 1 {
			out *= base
		}
		base *= base
		n >>= 1
	}
	return out
}
