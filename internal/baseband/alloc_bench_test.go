package baseband

import (
	"testing"

	"repro/internal/core"
)

// TestSendSDUSteadyStateAllocFree proves the whole per-SDU data plane —
// run-length BER queries, memoized attempt probabilities, batched draws —
// performs zero heap allocations in steady state.
func TestSendSDUSteadyStateAllocFree(t *testing.T) {
	tx := NewTransmitter(DefaultARQConfig(), noisyLink(1e-5, testRNG(31, 31)), testRNG(32, 32))
	// Warm the memo rings.
	for i := 0; i < 64; i++ {
		tx.SendSDU(core.PTDH5, 5, 339, 120)
	}
	allocs := testing.AllocsPerRun(500, func() {
		tx.SendSDU(core.PTDH5, 5, 339, 120)
	})
	if allocs != 0 {
		t.Errorf("SendSDU allocates %.1f objects per run, want 0", allocs)
	}
}

// BenchmarkTransmitterSend measures one full-payload DH5 ARQ send on the
// calibrated channel.
func BenchmarkTransmitterSend(b *testing.B) {
	tx := NewTransmitter(DefaultARQConfig(), noisyLink(2e-6, testRNG(41, 41)), testRNG(42, 42))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.Send(core.PTDH5, 339)
	}
}

// BenchmarkTransmitterSendSDU measures a five-fragment SDU through the
// batched path.
func BenchmarkTransmitterSendSDU(b *testing.B) {
	tx := NewTransmitter(DefaultARQConfig(), noisyLink(2e-6, testRNG(43, 43)), testRNG(44, 44))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.SendSDU(core.PTDH5, 5, 339, 120)
	}
}
