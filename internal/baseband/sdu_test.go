package baseband

import (
	"testing"

	"repro/internal/core"
	"repro/internal/radio"
	"repro/internal/sim"
)

// TestSendSDUMatchesPerFragmentSends checks that the batched SDU path has
// the same outcome distribution as a loop of per-fragment Sends: the batch
// draw plus CDF inversion is mathematically the same process, so loss and
// corruption rates (and mean slot consumption) must agree statistically.
func TestSendSDUMatchesPerFragmentSends(t *testing.T) {
	const (
		sdus     = 30000
		count    = 5
		fullLen  = 339
		lastLen  = 120
		pt       = core.PTDH5
		tolRatio = 0.08
	)
	type tally struct {
		lost, corrupted int
		slots           int64
	}
	run := func(batched bool, seedA, seedB uint64) tally {
		cfg := radio.DefaultConfig(0)
		cfg.MeanGoodDur = 2 * sim.Second
		cfg.MeanBadDur = 100 * sim.Millisecond
		cfg.BERBad = 0.01
		cfg.InterferencePerHour = 0
		link := radio.NewLink(cfg, testRNG(seedA, seedA))
		tx := NewTransmitter(DefaultARQConfig(), link, testRNG(seedB, seedB))
		var out tally
		for i := 0; i < sdus; i++ {
			if batched {
				res := tx.SendSDU(pt, count, fullLen, lastLen)
				out.slots += res.Slots
				switch res.Outcome {
				case Dropped:
					out.lost++
				case Corrupted:
					out.corrupted++
				}
			} else {
				for f := 0; f < count; f++ {
					l := fullLen
					if f == count-1 {
						l = lastLen
					}
					res := tx.Send(pt, l)
					out.slots += res.Slots
					if res.Outcome == Dropped {
						out.lost++
						break
					}
					if res.Outcome == Corrupted {
						out.corrupted++
						break
					}
				}
			}
		}
		return out
	}

	a := run(true, 101, 202)
	b := run(false, 303, 404)
	t.Logf("batched: lost %d corrupted %d slots %d; per-fragment: lost %d corrupted %d slots %d",
		a.lost, a.corrupted, a.slots, b.lost, b.corrupted, b.slots)
	if a.lost == 0 || b.lost == 0 {
		t.Fatalf("no losses observed (batched %d, per-fragment %d): channel too clean for the test",
			a.lost, b.lost)
	}
	relDiff := func(x, y int) float64 {
		fx, fy := float64(x), float64(y)
		return (fx - fy) / fy
	}
	if d := relDiff(a.lost, b.lost); d > tolRatio || d < -tolRatio {
		t.Errorf("loss rates diverge: batched %d vs per-fragment %d (%.1f%%)",
			a.lost, b.lost, 100*d)
	}
	ds := (float64(a.slots) - float64(b.slots)) / float64(b.slots)
	if ds > 0.02 || ds < -0.02 {
		t.Errorf("slot consumption diverges: batched %d vs per-fragment %d (%.2f%%)",
			a.slots, b.slots, 100*ds)
	}
}
