package baseband

import (
	"fmt"

	"repro/internal/core"
)

// Header is the 18-bit baseband packet header (10 bits of fields plus the
// 8-bit HEC), transmitted with 1/3-rate repetition coding on air.
type Header struct {
	LTAddr uint8 // 3-bit logical transport address of the active slave
	Type   uint8 // 4-bit packet type code
	Flow   bool  // flow control
	ARQN   bool  // acknowledgement of the previous packet
	SEQN   bool  // 1-bit sequence number for duplicate filtering
}

// typeCode maps the taxonomy packet types onto the 4-bit on-air type codes
// of the Bluetooth 1.1 baseband (ACL logical transport).
var typeCode = map[core.PacketType]uint8{
	core.PTDM1: 0x3,
	core.PTDH1: 0x4,
	core.PTDM3: 0xA,
	core.PTDH3: 0xB,
	core.PTDM5: 0xE,
	core.PTDH5: 0xF,
}

// TypeCode returns the 4-bit on-air code for a packet type.
func TypeCode(p core.PacketType) (uint8, error) {
	c, ok := typeCode[p]
	if !ok {
		return 0, fmt.Errorf("baseband: no type code for %v", p)
	}
	return c, nil
}

// PacketTypeFromCode inverts TypeCode.
func PacketTypeFromCode(c uint8) (core.PacketType, error) {
	for p, code := range typeCode {
		if code == c {
			return p, nil
		}
	}
	return core.PTUnknown, fmt.Errorf("baseband: unknown type code %#x", c)
}

// pack10 folds the header fields into the 10-bit value covered by the HEC.
func (h Header) pack10() uint16 {
	v := uint16(h.LTAddr&0x7) << 7
	v |= uint16(h.Type&0xF) << 3
	if h.Flow {
		v |= 1 << 2
	}
	if h.ARQN {
		v |= 1 << 1
	}
	if h.SEQN {
		v |= 1
	}
	return v
}

// Encode renders the 18-bit header (fields + HEC) as a uint32.
func (h Header) Encode(uap uint8) uint32 {
	v := h.pack10()
	return uint32(v)<<8 | uint32(HEC8(uap, v))
}

// DecodeHeader parses an 18-bit header value and verifies its HEC.
func DecodeHeader(bits uint32, uap uint8) (Header, error) {
	v := uint16(bits>>8) & 0x3FF
	hec := uint8(bits & 0xFF)
	if HEC8(uap, v) != hec {
		return Header{}, fmt.Errorf("baseband: HEC mismatch")
	}
	return Header{
		LTAddr: uint8(v >> 7 & 0x7),
		Type:   uint8(v >> 3 & 0xF),
		Flow:   v&(1<<2) != 0,
		ARQN:   v&(1<<1) != 0,
		SEQN:   v&1 != 0,
	}, nil
}

// Packet is an on-air ACL data packet: 72-bit channel access code (derived
// from the master's address), header, and a payload with CRC-16 (and, for
// DMx types, 2/3-rate FEC applied on air).
type Packet struct {
	AccessCode uint64 // 64-bit sync word (the 72-bit code minus preamble/trailer)
	Header     Header
	Type       core.PacketType
	Payload    []byte // user payload, at most Type.Payload() bytes
}

// Build assembles a packet for a payload, checking the length budget.
func Build(access uint64, lt uint8, pt core.PacketType, seqn bool, payload []byte) (Packet, error) {
	code, err := TypeCode(pt)
	if err != nil {
		return Packet{}, err
	}
	if len(payload) > pt.Payload() {
		return Packet{}, fmt.Errorf("baseband: payload %dB exceeds %v budget %dB",
			len(payload), pt, pt.Payload())
	}
	return Packet{
		AccessCode: access,
		Header:     Header{LTAddr: lt, Type: code, SEQN: seqn},
		Type:       pt,
		Payload:    payload,
	}, nil
}

// Marshal serialises payload + CRC, applying FEC for DMx types. The result
// is the on-air payload bit stream (packed LSB-first) and its bit length.
func (p Packet) Marshal(uap uint8) (air []byte, nbits int) {
	crc := CRC16(uint16(uap)<<8, p.Payload)
	body := make([]byte, 0, len(p.Payload)+2)
	body = append(body, p.Payload...)
	body = append(body, byte(crc>>8), byte(crc))
	if p.Type.FEC() {
		return FECEncode(body)
	}
	out := make([]byte, len(body))
	copy(out, body)
	return out, len(body) * 8
}

// Unmarshal reverses Marshal: undoes FEC (correcting single-bit errors per
// codeword), then verifies the CRC. It returns the payload, whether the CRC
// verified, and FEC bookkeeping for diagnostics.
func Unmarshal(pt core.PacketType, uap uint8, air []byte, nbits, payloadLen int) (payload []byte, crcOK bool, correctedCW, failedCW int) {
	var body []byte
	if pt.FEC() {
		body, correctedCW, failedCW = FECDecode(air, nbits, payloadLen+2)
	} else {
		body = make([]byte, payloadLen+2)
		copy(body, air)
	}
	payload = body[:payloadLen]
	wire := uint16(body[payloadLen])<<8 | uint16(body[payloadLen+1])
	crcOK = CRC16(uint16(uap)<<8, payload) == wire
	return payload, crcOK, correctedCW, failedCW
}

// AirBits reports the number of on-air payload bits for a packet of
// payloadLen user bytes of the given type (payload + CRC, FEC-expanded for
// DMx). It drives the per-slot exposure computation in the ARQ model.
func AirBits(pt core.PacketType, payloadLen int) int {
	bits := (payloadLen + 2) * 8
	if pt.FEC() {
		ncw := (bits + 9) / 10
		return ncw * 15
	}
	return bits
}
