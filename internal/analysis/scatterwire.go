package analysis

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// Wire snapshots for the distributed metro plane: a scatternet campaign run
// as real OS processes ships per-piconet fold contributions and the overlay's
// rollup partial through the collector's session protocol, and the sink's
// district keyspaces persist their running fold across kill -9. Everything
// here is the exact-serialization discipline of checkpoint.go applied to the
// roll-up tier: integer counts stay integers, float64 fields round-trip
// through Go's JSON encoding bit-exactly, and every map that would
// de-determinize the bytes ships as a sorted slice.

// MetroEvent is the exported wire view of one deployment-trace event: the
// unmasked failure plus the (piconet, within-piconet fold position) pair that
// makes the deployment sort key total.
type MetroEvent struct {
	Ev      DependEvent `json:"ev"`
	Piconet int         `json:"piconet"`
	Seq     int         `json:"seq"`
}

// ScatternetFoldSnapshot is the serializable state of a ScatternetFold — what
// a district sink checkpoints after every applied partial and exports when
// its piconet range completes. Masked travels separately from Agg because the
// fold's Depend accumulator is stale by construction until Finalize rebuilds
// it from the trace.
type ScatternetFoldSnapshot struct {
	Scenario string              `json:"scenario"`
	Agg      *AggregatesSnapshot `json:"agg,omitempty"`
	Masked   int                 `json:"masked"`
	Trace    []MetroEvent        `json:"trace,omitempty"`
	Rows     []PiconetRow        `json:"rows,omitempty"`
}

// Snapshot captures the fold's exact state (the fold keeps ownership and may
// continue folding afterwards; the snapshot shares no mutable state with it).
func (f *ScatternetFold) Snapshot() *ScatternetFoldSnapshot {
	snap := &ScatternetFoldSnapshot{Scenario: f.scenario, Masked: f.masked}
	if f.agg != nil {
		snap.Agg = f.agg.Snapshot()
	}
	snap.Trace = make([]MetroEvent, len(f.trace))
	for i, me := range f.trace {
		snap.Trace[i] = MetroEvent{Ev: me.ev, Piconet: me.piconet, Seq: me.seq}
	}
	snap.Rows = append([]PiconetRow(nil), f.rows...)
	return snap
}

// RestoreScatternetFold rebuilds a fold mid-campaign; folding more piconets
// into it and finalizing is bit-identical to never having snapshotted.
func RestoreScatternetFold(snap *ScatternetFoldSnapshot) (*ScatternetFold, error) {
	if snap == nil {
		return nil, fmt.Errorf("analysis: nil scatternet fold snapshot")
	}
	f := NewScatternetFold(snap.Scenario)
	if snap.Agg != nil {
		a, err := RestoreAggregates(snap.Agg)
		if err != nil {
			return nil, err
		}
		f.agg = a
	}
	f.masked = snap.Masked
	f.trace = make([]metroEvent, len(snap.Trace))
	for i, me := range snap.Trace {
		f.trace[i] = metroEvent{ev: me.Ev, piconet: me.Piconet, seq: me.Seq}
	}
	f.rows = append([]PiconetRow(nil), snap.Rows...)
	return f, nil
}

// Scenario reports the fold's recovery-scenario label.
func (f *ScatternetFold) Scenario() string { return f.scenario }

// PiconetPartial is one finished piconet campaign on the wire: the streaming
// aggregates plus the fold-ordered depend trace — exactly the AddPiconet
// arguments, serialized.
type PiconetPartial struct {
	Piconet int                 `json:"piconet"`
	Agg     *AggregatesSnapshot `json:"agg"`
	Trace   []DependEvent       `json:"trace,omitempty"`
}

// AddPartial restores a wire partial's aggregates and folds them; the
// AddPiconet validation (trace length vs accumulated failures, window/radius
// agreement) applies unchanged.
func (f *ScatternetFold) AddPartial(p *PiconetPartial) error {
	if p == nil || p.Agg == nil {
		return fmt.Errorf("analysis: scatternet partial without aggregates")
	}
	agg, err := RestoreAggregates(p.Agg)
	if err != nil {
		return err
	}
	return f.AddPiconet(p.Piconet, agg, p.Trace)
}

// BridgeAccumSnapshot is the serializable state of a BridgeAccum (the two
// Welford summaries need explicit snapshots; everything else is exported).
type BridgeAccumSnapshot struct {
	Bridge         string                `json:"bridge"`
	Device         string                `json:"device"`
	Serves         []int                 `json:"serves,omitempty"`
	Hops           int                   `json:"hops"`
	Relayed        int                   `json:"relayed"`
	RelayLost      int                   `json:"relay_lost"`
	RelayCorrupted int                   `json:"relay_corrupted"`
	Outages        int                   `json:"outages"`
	SysErrors      int                   `json:"sys_errors"`
	FailureKinds   []FailureKindCount    `json:"failure_kinds,omitempty"`
	Downtime       stats.SummarySnapshot `json:"downtime"`
	RelayLatency   stats.SummarySnapshot `json:"relay_latency"`
	Coupling       []*BridgeCoupling     `json:"coupling,omitempty"`
}

// FailureKindCount is one failure-classification count (the map ships as
// sorted pairs so the wire bytes are deterministic).
type FailureKindCount struct {
	Kind  int `json:"kind"`
	Count int `json:"count"`
}

// Snapshot captures the accumulator's exact state.
func (a *BridgeAccum) Snapshot() *BridgeAccumSnapshot {
	snap := &BridgeAccumSnapshot{
		Bridge: a.Bridge, Device: a.Device,
		Serves: append([]int(nil), a.Serves...),
		Hops:   a.Hops, Relayed: a.Relayed,
		RelayLost: a.RelayLost, RelayCorrupted: a.RelayCorrupted,
		Outages: a.Outages, SysErrors: a.SysErrors,
		Downtime:     a.Downtime.Snapshot(),
		RelayLatency: a.RelayLatency.Snapshot(),
	}
	for kind := range a.FailuresByKind {
		snap.FailureKinds = append(snap.FailureKinds,
			FailureKindCount{Kind: int(kind), Count: a.FailuresByKind[kind]})
	}
	sortFailureKinds(snap.FailureKinds)
	for _, c := range a.Coupling {
		cc := *c
		snap.Coupling = append(snap.Coupling, &cc)
	}
	return snap
}

func sortFailureKinds(s []FailureKindCount) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Kind < s[j-1].Kind; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// RestoreBridgeAccum rebuilds the accumulator.
func RestoreBridgeAccum(snap *BridgeAccumSnapshot) *BridgeAccum {
	a := NewBridgeAccum(snap.Bridge, snap.Device, snap.Serves)
	a.Hops, a.Relayed = snap.Hops, snap.Relayed
	a.RelayLost, a.RelayCorrupted = snap.RelayLost, snap.RelayCorrupted
	a.Outages, a.SysErrors = snap.Outages, snap.SysErrors
	for _, kc := range snap.FailureKinds {
		a.FailuresByKind[core.UserFailure(kc.Kind)] = kc.Count
	}
	a.Downtime = stats.RestoreSummary(snap.Downtime)
	a.RelayLatency = stats.RestoreSummary(snap.RelayLatency)
	for _, c := range snap.Coupling {
		cc := *c
		a.Coupling = append(a.Coupling, &cc)
	}
	return a
}

// RelayDepthBin is one depth's delay summary (sorted-slice form of ByDepth).
type RelayDepthBin struct {
	Depth   int                   `json:"depth"`
	Summary stats.SummarySnapshot `json:"summary"`
}

// RelayDepthSnapshot is the serializable state of a RelayDepthAccum.
type RelayDepthSnapshot struct {
	Bins        []RelayDepthBin `json:"bins,omitempty"`
	Unreachable int             `json:"unreachable"`
}

// Snapshot captures the accumulator's exact state, bins ascending by depth.
func (a *RelayDepthAccum) Snapshot() *RelayDepthSnapshot {
	snap := &RelayDepthSnapshot{Unreachable: a.Unreachable}
	for _, d := range a.Depths() {
		snap.Bins = append(snap.Bins, RelayDepthBin{Depth: d, Summary: a.ByDepth[d].Snapshot()})
	}
	return snap
}

// RestoreRelayDepthAccum rebuilds the accumulator.
func RestoreRelayDepthAccum(snap *RelayDepthSnapshot) *RelayDepthAccum {
	a := NewRelayDepthAccum()
	a.Unreachable = snap.Unreachable
	for _, bin := range snap.Bins {
		s := stats.RestoreSummary(bin.Summary)
		a.ByDepth[bin.Depth] = &s
	}
	return a
}

// OverlayPartial is the bridge overlay's rollup contribution on the wire. The
// overlay owner performs the order-sensitive Welford merges itself — the
// all-bridge summary merges bridge rows in row order and the relay-depth
// table merges the per-source partials in ascending source order, exactly the
// single-process rollup's orders — so the receiving side never has to know an
// order it could get wrong.
type OverlayPartial struct {
	BridgeCount int                  `json:"bridge_count"`
	Bridges     *BridgeAccumSnapshot `json:"bridges,omitempty"`
	RelayDepth  *RelayDepthSnapshot  `json:"relay_depth,omitempty"`
	Redundancy  []*RedundancyGroup   `json:"redundancy,omitempty"`
}
