package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

// The scatternet views: when piconet campaigns are composed into a bridged
// multi-piconet topology (internal/scatternet), two aggregate families are
// added on top of the per-piconet tables. Both are streaming accumulators in
// the PR 2 sense — O(1) state in campaign duration, fed one event at a time
// — so a month-scale scatternet campaign stays O(1) in memory end to end.
//
//   - BridgeAccum / BridgeTable attribute inter-piconet traffic and outages
//     to the bridge nodes that time-share across piconets: relayed SDUs,
//     relay losses, store-and-forward latency, and — the failure-coupling
//     signal — outages that one bridge failure propagates to every piconet
//     it serves.
//   - PiconetOverview lines up the per-piconet dependability columns so the
//     piconet-to-piconet spread of MTTF/MTTR/availability is visible at a
//     glance.

// BridgeCoupling is one served piconet's view of one bridge: how often the
// bridge's failures took this piconet's inter-piconet service down, for how
// long, and what relay traffic the piconet got (or lost) through it.
type BridgeCoupling struct {
	// Piconet is the served piconet's index in the scatternet.
	Piconet int
	// Outages counts the bridge failures this piconet experienced as
	// correlated inter-piconet service outages. Every piconet a bridge
	// serves records the same failure episode, which is exactly the
	// correlation the scatternet subsystem exists to measure.
	Outages int
	// OutageSeconds accumulates the downtime those outages imposed.
	OutageSeconds float64
	// Delivered counts relay SDUs the bridge carried into this piconet.
	Delivered int
	// Lost counts relay SDUs destined for this piconet that died on the
	// bridge's radio link (RF/ARQ loss while relaying).
	Lost int
	// Corrupted counts relay SDUs delivered with payload corruption.
	Corrupted int
	// DroppedInOutage counts relay SDUs offered for this piconet while the
	// bridge was down — the traffic a bridge failure costs its piconets.
	DroppedInOutage int
	// DroppedQueueFull counts relay SDUs that found the bridge's
	// store-and-forward queue for this piconet full.
	DroppedQueueFull int
}

// BridgeAccum is the streaming accumulator behind one bridge's row of the
// bridge-attributed table. The scatternet overlay feeds it one event at a
// time; all state is O(1) in campaign duration.
type BridgeAccum struct {
	// Bridge is the bridge node's name ("bridge0", ...).
	Bridge string
	// Device names the hardware-catalogue machine the bridge is built from.
	Device string
	// Serves lists the piconet indices the bridge time-shares across.
	Serves []int

	// Hops counts completed residency switches (attach to a new piconet).
	Hops int
	// Relayed / RelayLost / RelayCorrupted total the per-piconet delivery
	// counters across every served piconet.
	Relayed, RelayLost, RelayCorrupted int
	// Outages counts the bridge's failure episodes; each propagates to all
	// served piconets (see BridgeCoupling.Outages).
	Outages int
	// SysErrors counts system-level errors the bridge's own stack raised
	// (its System Log volume, kept as a counter so overlay memory is O(1)).
	SysErrors int
	// FailuresByKind classifies the failures that caused outages.
	FailuresByKind map[core.UserFailure]int
	// Downtime summarizes per-outage downtime seconds.
	Downtime stats.Summary
	// RelayLatency summarizes store-and-forward latency seconds
	// (SDU arrival at the bridge to delivery into the destination piconet);
	// it includes hold-time waits and outage delays, so it is the
	// Rondón-style relay-delay signal.
	RelayLatency stats.Summary

	// Coupling holds the per-piconet views, aligned with Serves.
	Coupling []*BridgeCoupling
}

// NewBridgeAccum allocates the accumulator for a bridge serving the given
// piconets.
func NewBridgeAccum(bridge, device string, serves []int) *BridgeAccum {
	a := &BridgeAccum{
		Bridge:         bridge,
		Device:         device,
		Serves:         append([]int(nil), serves...),
		FailuresByKind: make(map[core.UserFailure]int),
	}
	for _, p := range a.Serves {
		a.Coupling = append(a.Coupling, &BridgeCoupling{Piconet: p})
	}
	return a
}

// coupling finds the served piconet's view (nil for an unserved piconet).
func (a *BridgeAccum) coupling(piconet int) *BridgeCoupling {
	for _, c := range a.Coupling {
		if c.Piconet == piconet {
			return c
		}
	}
	return nil
}

// AddHop records a completed residency switch.
func (a *BridgeAccum) AddHop() { a.Hops++ }

// AddDelivery records one relay SDU delivered into a piconet after waiting
// latencySeconds in the bridge's store-and-forward queue.
func (a *BridgeAccum) AddDelivery(piconet int, latencySeconds float64) {
	a.Relayed++
	a.RelayLatency.Add(latencySeconds)
	if c := a.coupling(piconet); c != nil {
		c.Delivered++
	}
}

// AddRelayLoss records one relay SDU lost on the radio link while being
// delivered into a piconet.
func (a *BridgeAccum) AddRelayLoss(piconet int) {
	a.RelayLost++
	if c := a.coupling(piconet); c != nil {
		c.Lost++
	}
}

// AddCorruption records one relay SDU delivered corrupted.
func (a *BridgeAccum) AddCorruption(piconet int) {
	a.RelayCorrupted++
	if c := a.coupling(piconet); c != nil {
		c.Corrupted++
	}
}

// AddOutage records one bridge failure episode of the given kind and
// duration. The outage is attributed to every piconet the bridge serves —
// the correlated-failure bookkeeping at the heart of the scatternet study.
func (a *BridgeAccum) AddOutage(f core.UserFailure, seconds float64) {
	a.Outages++
	a.FailuresByKind[f]++
	a.Downtime.Add(seconds)
	for _, c := range a.Coupling {
		c.Outages++
		c.OutageSeconds += seconds
	}
}

// AddOutageDrop records one relay SDU offered for a piconet while the
// bridge was down.
func (a *BridgeAccum) AddOutageDrop(piconet int) {
	if c := a.coupling(piconet); c != nil {
		c.DroppedInOutage++
	}
}

// Merge folds another bridge's accumulator into a, producing a summary row
// covering both (the hierarchical roll-up's all-bridge line; a keeps its own
// Bridge/Device labels). Counters and per-kind failure tallies sum exactly;
// Downtime and RelayLatency merge via the parallel Welford combination;
// Serves becomes the sorted union and Coupling the piconet-matched sum,
// re-sorted by piconet so merged rows render identically regardless of
// merge grouping.
func (a *BridgeAccum) Merge(o *BridgeAccum) {
	if o == nil {
		return
	}
	a.Hops += o.Hops
	a.Relayed += o.Relayed
	a.RelayLost += o.RelayLost
	a.RelayCorrupted += o.RelayCorrupted
	a.Outages += o.Outages
	a.SysErrors += o.SysErrors
	for k, n := range o.FailuresByKind {
		a.FailuresByKind[k] += n
	}
	a.Downtime.Merge(o.Downtime)
	a.RelayLatency.Merge(o.RelayLatency)
	for _, oc := range o.Coupling {
		c := a.coupling(oc.Piconet)
		if c == nil {
			c = &BridgeCoupling{Piconet: oc.Piconet}
			a.Coupling = append(a.Coupling, c)
			a.Serves = append(a.Serves, oc.Piconet)
		}
		c.Outages += oc.Outages
		c.OutageSeconds += oc.OutageSeconds
		c.Delivered += oc.Delivered
		c.Lost += oc.Lost
		c.Corrupted += oc.Corrupted
		c.DroppedInOutage += oc.DroppedInOutage
		c.DroppedQueueFull += oc.DroppedQueueFull
	}
	sort.Ints(a.Serves)
	sort.Slice(a.Coupling, func(i, j int) bool { return a.Coupling[i].Piconet < a.Coupling[j].Piconet })
}

// AddQueueDrop records one relay SDU that found the piconet's
// store-and-forward queue full.
func (a *BridgeAccum) AddQueueDrop(piconet int) {
	if c := a.coupling(piconet); c != nil {
		c.DroppedQueueFull++
	}
}

// BridgeTable is the bridge-attributed aggregate of a scatternet campaign:
// one row per bridge plus the piconet-coupling roll-up.
type BridgeTable struct {
	Rows []*BridgeAccum
}

// TotalOutages sums every bridge's failure episodes.
func (t *BridgeTable) TotalOutages() int {
	n := 0
	for _, r := range t.Rows {
		n += r.Outages
	}
	return n
}

// CorrelatedOutages counts (bridge outage, served piconet) pairs — the
// number of piconet-level service interruptions bridge failures caused.
// A single bridge failure serving K piconets contributes K.
func (t *BridgeTable) CorrelatedOutages() int {
	n := 0
	for _, r := range t.Rows {
		n += r.Outages * len(r.Serves)
	}
	return n
}

// TotalDowntimeSeconds sums every bridge's outage time.
func (t *BridgeTable) TotalDowntimeSeconds() float64 {
	s := 0.0
	for _, r := range t.Rows {
		s += r.Downtime.Sum()
	}
	return s
}

// TotalRelayed sums delivered relay SDUs over all bridges.
func (t *BridgeTable) TotalRelayed() int {
	n := 0
	for _, r := range t.Rows {
		n += r.Relayed
	}
	return n
}

// PiconetCoupling aggregates what piconet p suffered from every bridge that
// serves it: correlated outages, downtime, and relay SDUs lost to outages.
func (t *BridgeTable) PiconetCoupling(p int) (outages int, downtimeSeconds float64, droppedInOutage int) {
	for _, r := range t.Rows {
		for _, c := range r.Coupling {
			if c.Piconet == p {
				outages += c.Outages
				downtimeSeconds += c.OutageSeconds
				droppedInOutage += c.DroppedInOutage
			}
		}
	}
	return outages, downtimeSeconds, droppedInOutage
}

// piconets lists every piconet index any bridge serves, ascending.
func (t *BridgeTable) piconets() []int {
	seen := map[int]bool{}
	for _, r := range t.Rows {
		for _, p := range r.Serves {
			seen[p] = true
		}
	}
	out := make([]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// Render formats the bridge rows and the per-piconet coupling roll-up.
func (t *BridgeTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-8s %-8s %5s %8s %6s %8s %8s %10s %10s\n",
		"bridge", "device", "serves", "hops", "relayed", "lost", "corrupt", "outages", "down (s)", "lat (s)")
	for _, r := range t.Rows {
		serves := make([]string, len(r.Serves))
		for i, p := range r.Serves {
			serves[i] = fmt.Sprintf("%d", p)
		}
		fmt.Fprintf(&b, "%-8s %-8s %-8s %5d %8d %6d %8d %8d %10.1f %10.2f\n",
			r.Bridge, r.Device, strings.Join(serves, ","), r.Hops,
			r.Relayed, r.RelayLost, r.RelayCorrupted, r.Outages,
			r.Downtime.Sum(), r.RelayLatency.Mean())
	}
	fmt.Fprintf(&b, "\n%-8s %14s %14s %16s\n",
		"piconet", "corr. outages", "downtime (s)", "dropped in outage")
	for _, p := range t.piconets() {
		o, d, drops := t.PiconetCoupling(p)
		fmt.Fprintf(&b, "%-8d %14d %14.1f %16d\n", p, o, d, drops)
	}
	return b.String()
}

// PiconetRow is one piconet's line of the scatternet overview.
type PiconetRow struct {
	// Piconet is the piconet's index in the scatternet.
	Piconet int
	// UserReports / SystemEntries are the piconet's dataset sizes.
	UserReports, SystemEntries int
	// Depend is the piconet's Table 4 column.
	Depend *Dependability
}

// PiconetOverview lines the per-piconet dependability columns up so the
// piconet-to-piconet spread of a scatternet campaign is visible at a glance.
type PiconetOverview struct {
	Rows []PiconetRow
}

// Render formats the overview, one piconet per line.
func (o *PiconetOverview) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %8s %8s %10s %10s %8s %10s\n",
		"piconet", "reports", "entries", "MTTF (s)", "MTTR (s)", "avail", "failures")
	for _, r := range o.Rows {
		fmt.Fprintf(&b, "%-8d %8d %8d %10.2f %10.2f %8.3f %10d\n",
			r.Piconet, r.UserReports, r.SystemEntries,
			r.Depend.MTTF, r.Depend.MTTR, r.Depend.Availability, r.Depend.Failures)
	}
	return b.String()
}
