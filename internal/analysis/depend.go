package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Dependability is one column of the paper's Table 4.
type Dependability struct {
	Scenario string

	MTTF      float64 // seconds
	DevStdTTF float64
	MinTTF    float64
	MaxTTF    float64

	MTTR      float64 // seconds
	DevStdTTR float64
	MinTTR    float64
	MaxTTR    float64

	Availability float64 // MTTF / (MTTF + MTTR)

	// CoveragePct is the share of failures recovered without restarting the
	// application or rebooting (failure-mode coverage per Avizienis et al.),
	// with masked failures counting as covered in the masking scenario.
	CoveragePct float64
	// MaskingPct is the share of would-be failures suppressed by masking.
	MaskingPct float64

	Failures int
	Masked   int
}

// BuildDependability computes a Table 4 column from the reports of one
// campaign run under a single scenario. TTF is measured piconet-wide: the
// gaps between consecutive (unmasked) failure instants across all nodes of
// the testbed, which matches the paper's "a node in the piconet fails every
// 30 minutes" reading. duration bounds the observation window.
func BuildDependability(scenario string, reports []core.UserReport, duration sim.Time) *Dependability {
	d := &Dependability{Scenario: scenario}

	// Split failure and masked streams; sort by time.
	var failures []core.UserReport
	for _, r := range reports {
		if r.Masked {
			d.Masked++
			continue
		}
		failures = append(failures, r)
	}
	sort.SliceStable(failures, func(i, j int) bool { return failures[i].At < failures[j].At })
	d.Failures = len(failures)

	var ttf, ttr stats.Summary
	prev := sim.Time(0)
	for _, r := range failures {
		gap := r.At - prev
		ttf.Add(gap.Seconds())
		prev = r.At
		if r.Recovered {
			ttr.Add(r.TTR.Seconds())
		}
	}
	// The censored tail (last failure to end of window) is not a TTF
	// sample; the paper's estimator uses observed inter-failure gaps.
	_ = duration

	d.MTTF, d.DevStdTTF = ttf.Mean(), ttf.StdDev()
	d.MinTTF, d.MaxTTF = ttf.Min(), ttf.Max()
	d.MTTR, d.DevStdTTR = ttr.Mean(), ttr.StdDev()
	d.MinTTR, d.MaxTTR = ttr.Min(), ttr.Max()
	if d.MTTF+d.MTTR > 0 {
		d.Availability = d.MTTF / (d.MTTF + d.MTTR)
	}

	// Coverage: recovered without app restart or reboot.
	covered := 0
	for _, r := range failures {
		if r.Recovered && r.Recovery >= core.RAIPSocketReset && r.Recovery <= core.RABTStackReset {
			covered++
		}
	}
	total := d.Failures + d.Masked
	if total > 0 {
		d.MaskingPct = float64(d.Masked) / float64(total) * 100
		d.CoveragePct = d.MaskingPct + float64(covered)/float64(total)*100
	}
	return d
}

// Table4 collects the four scenario columns.
type Table4 struct {
	Columns []*Dependability
}

// Improvement reports the relative availability and MTTF gains of the last
// column over the first two (the paper's 3.64 %/36.6 % and 202 % numbers).
func (t *Table4) Improvement() (availVsReboot, availVsAppReboot, mttfGain float64) {
	if len(t.Columns) < 4 {
		return 0, 0, 0
	}
	rebootOnly, appReboot, masked := t.Columns[0], t.Columns[1], t.Columns[3]
	if rebootOnly.Availability > 0 {
		availVsReboot = (masked.Availability - rebootOnly.Availability) / rebootOnly.Availability * 100
	}
	if appReboot.Availability > 0 {
		availVsAppReboot = (masked.Availability - appReboot.Availability) / appReboot.Availability * 100
	}
	base := t.Columns[0].MTTF
	if base > 0 {
		mttfGain = (masked.MTTF - base) / base * 100
	}
	return availVsReboot, availVsAppReboot, mttfGain
}

// Render formats the table in the paper's row layout.
func (t *Table4) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%24s", c.Scenario)
	}
	b.WriteString("\n")
	row := func(label string, get func(*Dependability) string) {
		fmt.Fprintf(&b, "%-16s", label)
		for _, c := range t.Columns {
			fmt.Fprintf(&b, "%24s", get(c))
		}
		b.WriteString("\n")
	}
	row("MTTF (s)", func(d *Dependability) string { return fmt.Sprintf("%.2f", d.MTTF) })
	row("MTTR (s)", func(d *Dependability) string { return fmt.Sprintf("%.2f", d.MTTR) })
	row("Availability", func(d *Dependability) string { return fmt.Sprintf("%.3f", d.Availability) })
	row("% Coverage", func(d *Dependability) string { return fmt.Sprintf("%.2f", d.CoveragePct) })
	row("% Masking", func(d *Dependability) string { return fmt.Sprintf("%.2f", d.MaskingPct) })
	row("DEV_STD TTF (s)", func(d *Dependability) string { return fmt.Sprintf("%.2f", d.DevStdTTF) })
	row("MIN TTF (s)", func(d *Dependability) string { return fmt.Sprintf("%.0f", d.MinTTF) })
	row("MAX TTF (s)", func(d *Dependability) string { return fmt.Sprintf("%.0f", d.MaxTTF) })
	row("DEV_STD TTR (s)", func(d *Dependability) string { return fmt.Sprintf("%.2f", d.DevStdTTR) })
	row("MIN TTR (s)", func(d *Dependability) string { return fmt.Sprintf("%.0f", d.MinTTR) })
	row("MAX TTR (s)", func(d *Dependability) string { return fmt.Sprintf("%.0f", d.MaxTTR) })
	row("failures", func(d *Dependability) string { return fmt.Sprintf("%d", d.Failures) })
	return b.String()
}
