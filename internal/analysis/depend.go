package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Dependability is one column of the paper's Table 4.
type Dependability struct {
	Scenario string

	MTTF      float64 // seconds
	DevStdTTF float64
	MinTTF    float64
	MaxTTF    float64

	MTTR      float64 // seconds
	DevStdTTR float64
	MinTTR    float64
	MaxTTR    float64

	Availability float64 // MTTF / (MTTF + MTTR)

	// CoveragePct is the share of failures recovered without restarting the
	// application or rebooting (failure-mode coverage per Avizienis et al.),
	// with masked failures counting as covered in the masking scenario.
	CoveragePct float64
	// MaskingPct is the share of would-be failures suppressed by masking.
	MaskingPct float64

	Failures int
	Masked   int
}

// DependAccum is the streaming accumulator behind a Table 4 column: it folds
// (unmasked) failure reports in campaign time order and keeps only the
// running TTF/TTR summaries and coverage counters — O(1) state regardless of
// campaign length. Reports MUST arrive in the same order the retained
// estimator processes them (time-sorted, ties in testbed-then-node order)
// for the Welford accumulation to be bit-identical.
type DependAccum struct {
	TTF, TTR stats.Summary
	Failures int
	Masked   int
	Covered  int
	prevFail sim.Time
}

// Add folds one report at its position in the time-ordered failure stream.
func (a *DependAccum) Add(r *core.UserReport) {
	if r.Masked {
		a.Masked++
		return
	}
	a.Failures++
	a.TTF.Add((r.At - a.prevFail).Seconds())
	a.prevFail = r.At
	if r.Recovered {
		a.TTR.Add(r.TTR.Seconds())
		if r.Recovery >= core.RAIPSocketReset && r.Recovery <= core.RABTStackReset {
			a.Covered++
		}
	}
}

// Column finalizes the accumulator into a Table 4 column.
func (a *DependAccum) Column(scenario string) *Dependability {
	d := &Dependability{Scenario: scenario, Failures: a.Failures, Masked: a.Masked}
	d.MTTF, d.DevStdTTF = a.TTF.Mean(), a.TTF.StdDev()
	d.MinTTF, d.MaxTTF = a.TTF.Min(), a.TTF.Max()
	d.MTTR, d.DevStdTTR = a.TTR.Mean(), a.TTR.StdDev()
	d.MinTTR, d.MaxTTR = a.TTR.Min(), a.TTR.Max()
	if d.MTTF+d.MTTR > 0 {
		d.Availability = d.MTTF / (d.MTTF + d.MTTR)
	}
	total := d.Failures + d.Masked
	if total > 0 {
		d.MaskingPct = float64(d.Masked) / float64(total) * 100
		d.CoveragePct = d.MaskingPct + float64(a.Covered)/float64(total)*100
	}
	return d
}

// BuildDependability computes a Table 4 column from the reports of one
// campaign run under a single scenario. TTF is measured piconet-wide: the
// gaps between consecutive (unmasked) failure instants across all nodes of
// the testbed, which matches the paper's "a node in the piconet fails every
// 30 minutes" reading. duration bounds the observation window.
func BuildDependability(scenario string, reports []core.UserReport, duration sim.Time) *Dependability {
	// Split failure and masked streams; sort by time. The censored tail
	// (last failure to end of window) is not a TTF sample; the paper's
	// estimator uses observed inter-failure gaps.
	_ = duration
	var acc DependAccum
	var failures []core.UserReport
	for _, r := range reports {
		if r.Masked {
			acc.Add(&r)
			continue
		}
		failures = append(failures, r)
	}
	sort.SliceStable(failures, func(i, j int) bool { return failures[i].At < failures[j].At })
	for i := range failures {
		acc.Add(&failures[i])
	}
	return acc.Column(scenario)
}

// Table4 collects the four scenario columns.
type Table4 struct {
	Columns []*Dependability
}

// Improvement reports the relative availability and MTTF gains of the last
// column over the first two (the paper's 3.64 %/36.6 % and 202 % numbers).
func (t *Table4) Improvement() (availVsReboot, availVsAppReboot, mttfGain float64) {
	if len(t.Columns) < 4 {
		return 0, 0, 0
	}
	rebootOnly, appReboot, masked := t.Columns[0], t.Columns[1], t.Columns[3]
	if rebootOnly.Availability > 0 {
		availVsReboot = (masked.Availability - rebootOnly.Availability) / rebootOnly.Availability * 100
	}
	if appReboot.Availability > 0 {
		availVsAppReboot = (masked.Availability - appReboot.Availability) / appReboot.Availability * 100
	}
	base := t.Columns[0].MTTF
	if base > 0 {
		mttfGain = (masked.MTTF - base) / base * 100
	}
	return availVsReboot, availVsAppReboot, mttfGain
}

// Render formats the table in the paper's row layout.
func (t *Table4) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%24s", c.Scenario)
	}
	b.WriteString("\n")
	row := func(label string, get func(*Dependability) string) {
		fmt.Fprintf(&b, "%-16s", label)
		for _, c := range t.Columns {
			fmt.Fprintf(&b, "%24s", get(c))
		}
		b.WriteString("\n")
	}
	row("MTTF (s)", func(d *Dependability) string { return fmt.Sprintf("%.2f", d.MTTF) })
	row("MTTR (s)", func(d *Dependability) string { return fmt.Sprintf("%.2f", d.MTTR) })
	row("Availability", func(d *Dependability) string { return fmt.Sprintf("%.3f", d.Availability) })
	row("% Coverage", func(d *Dependability) string { return fmt.Sprintf("%.2f", d.CoveragePct) })
	row("% Masking", func(d *Dependability) string { return fmt.Sprintf("%.2f", d.MaskingPct) })
	row("DEV_STD TTF (s)", func(d *Dependability) string { return fmt.Sprintf("%.2f", d.DevStdTTF) })
	row("MIN TTF (s)", func(d *Dependability) string { return fmt.Sprintf("%.0f", d.MinTTF) })
	row("MAX TTF (s)", func(d *Dependability) string { return fmt.Sprintf("%.0f", d.MaxTTF) })
	row("DEV_STD TTR (s)", func(d *Dependability) string { return fmt.Sprintf("%.2f", d.DevStdTTR) })
	row("MIN TTR (s)", func(d *Dependability) string { return fmt.Sprintf("%.0f", d.MinTTR) })
	row("MAX TTR (s)", func(d *Dependability) string { return fmt.Sprintf("%.0f", d.MaxTTR) })
	row("failures", func(d *Dependability) string { return fmt.Sprintf("%d", d.Failures) })
	return b.String()
}
