package analysis

import (
	"math"
	"strings"
	"testing"
)

func dep(avail, mttf float64) *Dependability {
	// Derive MTTR from the availability identity A = MTTF/(MTTF+MTTR).
	mttr := mttf * (1 - avail) / avail
	return &Dependability{Availability: avail, MTTF: mttf, MTTR: mttr}
}

func TestRedundantAvailability(t *testing.T) {
	r := &RedundantDeployment{A: dep(0.9, 900), B: dep(0.9, 900)}
	// Both down: 0.1*0.1 = 0.01 -> availability 0.99 (no failover cost).
	if got := r.Availability(); math.Abs(got-0.99) > 1e-9 {
		t.Errorf("availability = %v, want 0.99", got)
	}
	// Failover cost reduces it further.
	r.FailoverSeconds = 10
	withFailover := r.Availability()
	if withFailover >= 0.99 {
		t.Errorf("failover cost should reduce availability: %v", withFailover)
	}
	// Loss term: 10s per MTTF+MTTR cycle (1000s) = 1%.
	if math.Abs(withFailover-(0.99-0.01)) > 1e-9 {
		t.Errorf("failover-adjusted availability = %v, want 0.98", withFailover)
	}
}

func TestRedundantBeatsBestSingle(t *testing.T) {
	r := &RedundantDeployment{A: dep(0.93, 1700), B: dep(0.92, 1600), FailoverSeconds: 2}
	if r.Availability() <= r.A.Availability {
		t.Errorf("redundant %v should beat single %v", r.Availability(), r.A.Availability)
	}
	if r.Improvement() <= 0 {
		t.Errorf("improvement = %v", r.Improvement())
	}
}

func TestRedundantMTBSF(t *testing.T) {
	r := &RedundantDeployment{A: dep(0.9, 900), B: dep(0.9, 900)}
	// Each piconet's unavailability is 0.1; simultaneous-failure rate =
	// 2 * 0.1/900; MTBSF = 4500 s.
	if got := r.MTBSF(); math.Abs(got-4500) > 1 {
		t.Errorf("MTBSF = %v, want 4500", got)
	}
	// MTBSF must far exceed the single-piconet MTTF.
	if r.MTBSF() <= r.A.MTTF {
		t.Error("redundancy should stretch the time between system failures")
	}
}

func TestRedundantDegenerate(t *testing.T) {
	r := &RedundantDeployment{}
	if r.Availability() != 0 || r.MTBSF() != 0 {
		t.Error("nil deps should report zeros")
	}
	r = &RedundantDeployment{A: dep(0.5, 100), B: dep(0.5, 100), FailoverSeconds: 1e9}
	if got := r.Availability(); got != 0 {
		t.Errorf("absurd failover cost should clamp to 0, got %v", got)
	}
}

func TestRedundantRender(t *testing.T) {
	r := &RedundantDeployment{A: dep(0.93, 1700), B: dep(0.92, 1600), FailoverSeconds: 2}
	out := r.Render()
	for _, want := range []string{"piconet A", "piconet B", "redundant 1-of-2", "MTBSF"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
