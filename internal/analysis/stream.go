package analysis

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/coalesce"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// The streaming aggregation plane: instead of retaining every UserReport and
// SystemEntry of a campaign (which makes month-scale runs RAM-bound), a
// Streamer folds records into exactly the running aggregates the paper's
// outputs consume — the coalescence Evidence behind Table 2, the SIRA counts
// behind Table 3, the TTF/TTR summaries behind Table 4 and §6, and the
// figure count maps/histograms. All of that state is O(1) in campaign
// duration.
//
// Correctness hinges on ordering: the TTF/TTR Welford accumulation and the
// per-PANU coalescence are order-sensitive, and records arrive on
// independent shards (one per node, either from an in-process testbed drain
// or from a repository TCP connection). Each shard carries a watermark ("all
// of this node's data up to virtual time W has been delivered"); whenever
// the minimum watermark over all shards advances, the events below it are
// globally sorted by (time, testbed rank, node) — the exact tie order of the
// retained pipeline — and folded. Pending-event memory is bounded by the
// flush cadence, not the campaign length.

// TestbedSpec names one testbed's streams.
type TestbedSpec struct {
	Name string
	// Kind classifies the workload for the §6 scalars and Figure 3c.
	Kind core.WorkloadKind
	// NAP is the access point (its system entries count as NAP-side
	// evidence for every PANU of the testbed).
	NAP string
	// PANUs are the client nodes (each gets a streaming coalescer).
	PANUs []string
}

// StreamSpec configures a Streamer. Testbed order is significant: it is the
// tie-break rank of the fold order, matching the retained pipeline's
// "random block before realistic block" convention.
type StreamSpec struct {
	Testbeds []TestbedSpec
	// Window / Radius parameterize the evidence extraction (defaults:
	// coalesce.PaperWindow / coalesce.RelateRadius).
	Window, Radius sim.Time
	// TraceDepend records every unmasked failure folded into the Table 4
	// accumulator as a DependEvent (in fold order). A streamer that covers
	// only a subset of a campaign's testbeds — one shard of a horizontally
	// sharded sink — MUST enable this, because the TTF gaps of DependAccum
	// are computed over the campaign-global interleaved failure sequence:
	// MergeAggregates needs the shards' traces to re-run the accumulator
	// over the merged order. Full-campaign streamers can leave it off.
	TraceDepend bool
}

// shardKey identifies one stream: node names repeat across testbeds, so the
// key is the pair.
type shardKey struct{ testbed, node string }

// shard is one node's pending queue. Ingest appends under the shard's own
// lock, so concurrent connections never contend on a global lock; the fold
// path steals the pending prefix below the watermark.
type shard struct {
	key   shardKey
	rank  int
	isNAP bool

	mu      sync.Mutex
	reports []core.UserReport
	entries []core.SystemEntry
	// stolen is the exclusive bound of the last fold that drained this
	// shard (guarded by mu): records below it can no longer be merged in
	// order, so a late ingest of one is rejected.
	stolen sim.Time
	// nextSeq is the next sender sequence number to apply; batches ahead
	// of it park in parked until the gap fills (guarded by mu).
	nextSeq uint64
	parked  map[uint64]parkedBatch
	// closed marks the shard finalized: further ingests are doomed (the
	// final fold has run) and must fail loudly (guarded by mu).
	closed bool
	// watermark is atomic so the fold trigger can scan all shards without
	// taking every lock; writes happen under mu.
	watermark atomic.Int64
}

// parkedBatch is a sequenced batch waiting for its predecessors.
type parkedBatch struct {
	reports   []core.UserReport
	entries   []core.SystemEntry
	watermark sim.Time
}

// maxParkedBatches bounds the per-shard reorder buffer: a sender that runs
// this far ahead of a missing sequence number has lost a batch for good.
const maxParkedBatches = 1024

// foldEvent is one record en route to the aggregates, tagged with its fold
// sort key.
type foldEvent struct {
	at   sim.Time
	rank int
	node string
	user bool
	r    core.UserReport
	e    core.SystemEntry
}

// Aggregates is the folded state of a campaign: everything the paper's
// tables, figures and scalars need, and nothing per-record.
type Aggregates struct {
	Window, Radius sim.Time

	// Evidence backs Table 2.
	Evidence *coalesce.Evidence
	// Depend backs the campaign's Table 4 column.
	Depend DependAccum
	// T3 backs Table 3.
	T3 *Table3Counts
	// AppLoss backs Figure 3c (realistic testbeds only).
	AppLoss map[core.AppKind]float64
	// PerHost backs Figure 4.
	PerHost map[string]map[core.UserFailure]int
	// ConnAge histograms packet losses by packets sent before the loss
	// (Figure 3b's view, at its paper binning: 10 bins of 1000 packets).
	ConnAge *stats.Histogram
	// ScalarC backs the §6 scalars.
	ScalarC *ScalarCounts

	// Tax splits failures by protocol phase and transience verdict; Surv
	// runs the Kaplan-Meier / interarrival survival estimators. Both are
	// always accumulated (rendering is what CLI flags gate), so every
	// plane can be equivalence-checked on them.
	Tax  *TaxonomyAccum
	Surv *SurvivalAccum

	// Reports / Entries count every ingested record (the DataItems view,
	// masked reports included).
	Reports, Entries int

	// SeqGaps counts streams that ended with an unfilled sequence gap (a
	// sender's batch was lost in transit; later batches were recovered
	// best-effort at Finalize). DroppedRecords counts records that could
	// not be merged at all. Both zero on a healthy campaign — consumers
	// doing science on the tables should check.
	SeqGaps        int
	DroppedRecords int
}

// newAggregates allocates the folded state.
func newAggregates(window, radius sim.Time) *Aggregates {
	return &Aggregates{
		Window:   window,
		Radius:   radius,
		Evidence: coalesce.NewEvidence(),
		T3:       NewTable3Counts(),
		AppLoss:  make(map[core.AppKind]float64),
		PerHost:  make(map[string]map[core.UserFailure]int),
		ConnAge:  stats.NewHistogram(0, 10000, 10),
		ScalarC:  NewScalarCounts(),
		Tax:      NewTaxonomyAccum(),
		Surv:     NewSurvivalAccum(),
	}
}

// Taxonomy exposes the phase/verdict accumulator.
func (a *Aggregates) Taxonomy() *TaxonomyAccum { return a.Tax }

// Survival exposes the survival accumulator.
func (a *Aggregates) Survival() *SurvivalAccum { return a.Surv }

// Table2 renders the error-failure relationship table from the streamed
// evidence.
func (a *Aggregates) Table2() *Table2 { return BuildTable2(a.Evidence) }

// Table3 renders the SIRA effectiveness table.
func (a *Aggregates) Table3() *Table3 { return a.T3.Table() }

// Dependability renders the campaign's Table 4 column.
func (a *Aggregates) Dependability(scenario string) *Dependability {
	return a.Depend.Column(scenario)
}

// Fig3c renders the loss-by-application bars.
func (a *Aggregates) Fig3c() []Bar { return Fig3cFromCounts(a.AppLoss) }

// Fig4 renders the per-host failure distribution.
func (a *Aggregates) Fig4() []Fig4Row { return Fig4FromCounts(a.PerHost) }

// Fig3bBars renders the connection-age histogram at its accumulation
// binning.
func (a *Aggregates) Fig3bBars() []Bar {
	shares := a.ConnAge.Shares()
	bars := make([]Bar, len(shares))
	for i := range bars {
		bars[i] = Bar{Label: a.ConnAge.BinLabel(i), Share: shares[i]}
	}
	return bars
}

// Scalars renders the §6 scalar findings; counters supply the idle-time
// summaries exactly as in the retained path.
func (a *Aggregates) Scalars(counters map[string]*workload.Counters) *Scalars {
	return a.ScalarC.Scalars(counters, a.Entries)
}

// DataItems reports the dataset sizes (user reports, system entries, total).
func (a *Aggregates) DataItems() (userReports, systemEntries, total int) {
	return a.Reports, a.Entries, a.Reports + a.Entries
}

// Streamer folds per-node record streams into campaign Aggregates.
type Streamer struct {
	spec   StreamSpec
	kinds  []core.WorkloadKind
	naps   []string
	shards map[shardKey]*shard
	all    []*shard

	foldMu    sync.Mutex
	folded    atomic.Int64 // events strictly below this time have been folded
	relators  map[shardKey]*coalesce.StreamRelator
	panuKeys  [][]shardKey // per testbed rank, PANU relator keys in order
	agg       *Aggregates
	trace     []DependEvent // fold-ordered unmasked failures (TraceDepend)
	scratch   []foldEvent
	finalized bool
}

// NewStreamer builds the aggregator for the given streams. Every node that
// will ever ingest must be declared up front: the fold watermark is the
// minimum over all declared shards, so a late-registered stream could not be
// merged in order retroactively.
func NewStreamer(spec StreamSpec) (*Streamer, error) {
	if len(spec.Testbeds) == 0 {
		return nil, fmt.Errorf("analysis: streamer needs at least one testbed")
	}
	if spec.Window == 0 {
		spec.Window = coalesce.PaperWindow
	}
	if spec.Radius == 0 {
		spec.Radius = coalesce.RelateRadius
	}
	if spec.Window <= 0 || spec.Radius <= 0 || spec.Radius > spec.Window {
		return nil, fmt.Errorf("analysis: streaming needs 0 < radius <= window, got radius %v window %v",
			spec.Radius, spec.Window)
	}
	s := &Streamer{
		spec:     spec,
		shards:   make(map[shardKey]*shard),
		relators: make(map[shardKey]*coalesce.StreamRelator),
		agg:      newAggregates(spec.Window, spec.Radius),
	}
	for rank, tb := range spec.Testbeds {
		if tb.Name == "" || tb.NAP == "" || len(tb.PANUs) == 0 {
			return nil, fmt.Errorf("analysis: testbed spec %d incomplete: %+v", rank, tb)
		}
		s.kinds = append(s.kinds, tb.Kind)
		s.naps = append(s.naps, tb.NAP)
		var keys []shardKey
		for _, node := range append(append([]string{}, tb.PANUs...), tb.NAP) {
			key := shardKey{tb.Name, node}
			if _, dup := s.shards[key]; dup {
				return nil, fmt.Errorf("analysis: duplicate stream %s/%s", tb.Name, node)
			}
			sh := &shard{key: key, rank: rank, isNAP: node == tb.NAP, nextSeq: 1}
			s.shards[key] = sh
			s.all = append(s.all, sh)
			if node != tb.NAP {
				s.relators[key] = coalesce.NewStreamRelator(s.agg.Evidence, tb.NAP,
					spec.Window, spec.Radius)
				keys = append(keys, key)
				s.agg.Tax.Nodes++
				s.agg.Surv.Observe(tb.Name, node)
			}
		}
		s.panuKeys = append(s.panuKeys, keys)
	}
	return s, nil
}

// Ingest appends one node's next records (each slice time-ordered, as logs
// are) and advances the node's watermark: the promise that everything from
// this node up to that virtual time has now been delivered. Folding happens
// opportunistically once every declared shard's watermark has passed the
// current fold point. Ingest trusts the caller to deliver batches in send
// order (the in-process testbed drain does); transports that can reorder
// batches — one TCP connection per flush — must use IngestSeq.
func (s *Streamer) Ingest(testbed, node string, reports []core.UserReport,
	entries []core.SystemEntry, watermark sim.Time) error {
	return s.IngestSeq(testbed, node, reports, entries, watermark, 0)
}

// IngestSeq is Ingest for sequenced senders: batches carry the sender's
// 1-based sequence number and are applied strictly in that order, parking
// early arrivals until the gap fills. This is what keeps the fold correct
// when consecutive flushes of one node race each other across separate
// connections. seq 0 bypasses sequencing.
func (s *Streamer) IngestSeq(testbed, node string, reports []core.UserReport,
	entries []core.SystemEntry, watermark sim.Time, seq uint64) error {
	_, err := s.ingestSeq(testbed, node, reports, entries, watermark, seq, false)
	return err
}

// OfferSeq is IngestSeq for at-least-once transports: a batch whose sequence
// number was already applied or is already parked is a duplicate — the
// normal consequence of retransmitting after a lost acknowledgement — and is
// ignored rather than treated as a peer error. It reports whether the batch
// was accepted (applied or parked); a duplicate returns (false, nil).
func (s *Streamer) OfferSeq(testbed, node string, reports []core.UserReport,
	entries []core.SystemEntry, watermark sim.Time, seq uint64) (bool, error) {
	return s.ingestSeq(testbed, node, reports, entries, watermark, seq, true)
}

// ingestSeq implements IngestSeq/OfferSeq; tolerant selects the duplicate
// policy.
func (s *Streamer) ingestSeq(testbed, node string, reports []core.UserReport,
	entries []core.SystemEntry, watermark sim.Time, seq uint64, tolerant bool) (bool, error) {
	sh, ok := s.shards[shardKey{testbed, node}]
	if !ok {
		return false, fmt.Errorf("analysis: ingest for undeclared stream %s/%s", testbed, node)
	}
	sh.mu.Lock()
	accepted := true
	var err error
	switch {
	case sh.closed:
		accepted = false
		err = fmt.Errorf("analysis: stream %s/%s ingested after finalize", testbed, node)
	case seq == 0:
		err = s.applyLocked(sh, reports, entries, watermark)
	case seq < sh.nextSeq:
		accepted = false
		if !tolerant {
			err = fmt.Errorf("analysis: stream %s/%s replayed batch seq %d (next is %d)",
				testbed, node, seq, sh.nextSeq)
		}
	case seq > sh.nextSeq:
		if len(sh.parked) >= maxParkedBatches {
			accepted = false
			err = fmt.Errorf("analysis: stream %s/%s ran %d batches ahead of missing seq %d",
				testbed, node, len(sh.parked), sh.nextSeq)
			break
		}
		if sh.parked == nil {
			sh.parked = make(map[uint64]parkedBatch)
		}
		if _, dup := sh.parked[seq]; dup {
			accepted = false
			if !tolerant {
				err = fmt.Errorf("analysis: stream %s/%s replayed parked batch seq %d", testbed, node, seq)
			}
			break
		}
		sh.parked[seq] = parkedBatch{reports: reports, entries: entries, watermark: watermark}
	default: // seq == sh.nextSeq
		err = s.applyLocked(sh, reports, entries, watermark)
		for err == nil {
			sh.nextSeq++
			p, ok := sh.parked[sh.nextSeq]
			if !ok {
				break
			}
			delete(sh.parked, sh.nextSeq)
			err = s.applyLocked(sh, p.reports, p.entries, p.watermark)
		}
	}
	sh.mu.Unlock()
	if err != nil {
		return false, err
	}
	if accepted {
		s.maybeFold()
	}
	return accepted, nil
}

// Cursor reports one stream's contiguous applied sequence number (0 before
// the first sequenced batch) and current watermark — the state transport
// acknowledgements and resume handshakes are built from.
func (s *Streamer) Cursor(testbed, node string) (seq uint64, watermark sim.Time, err error) {
	sh, ok := s.shards[shardKey{testbed, node}]
	if !ok {
		return 0, 0, fmt.Errorf("analysis: cursor for undeclared stream %s/%s", testbed, node)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.nextSeq - 1, sim.Time(sh.watermark.Load()), nil
}

// applyLocked merges one in-order batch into the shard. Caller holds sh.mu.
//
// Within the seq-0 trust model batches may still arrive slightly shuffled
// in time (distinct sources behind one stream): reordering above the fold
// horizon is repaired by re-sorting the pending queue, while records at or
// below an already-folded instant are unmergeable (their fold slot is gone)
// and rejected as an error, which the repository treats as a peer failure.
func (s *Streamer) applyLocked(sh *shard, reports []core.UserReport,
	entries []core.SystemEntry, watermark sim.Time) error {
	minAt, sortedBatch := sim.Never, true
	for i := range reports {
		if reports[i].At < minAt {
			minAt = reports[i].At
		}
		if i > 0 && reports[i].At < reports[i-1].At {
			sortedBatch = false
		}
	}
	for i := range entries {
		if entries[i].At < minAt {
			minAt = entries[i].At
		}
		if i > 0 && entries[i].At < entries[i-1].At {
			sortedBatch = false
		}
	}
	// The stolen bound is updated under this same lock by the fold's
	// prefix steal, so the check cannot race with a concurrent fold.
	if minAt < sh.stolen {
		return fmt.Errorf("analysis: stream %s/%s delivered records below the fold horizon %v",
			sh.key.testbed, sh.key.node, sh.stolen)
	}
	resort := !sortedBatch
	if n := len(sh.reports); n > 0 && len(reports) > 0 && reports[0].At < sh.reports[n-1].At {
		resort = true
	}
	if n := len(sh.entries); n > 0 && len(entries) > 0 && entries[0].At < sh.entries[n-1].At {
		resort = true
	}
	sh.reports = append(sh.reports, reports...)
	sh.entries = append(sh.entries, entries...)
	if resort {
		sort.SliceStable(sh.reports, func(i, j int) bool { return sh.reports[i].At < sh.reports[j].At })
		sort.SliceStable(sh.entries, func(i, j int) bool { return sh.entries[i].At < sh.entries[j].At })
	}
	if watermark > sim.Time(sh.watermark.Load()) {
		sh.watermark.Store(int64(watermark))
	}
	return nil
}

// minWatermark reports the fold horizon.
func (s *Streamer) minWatermark() sim.Time {
	min := sim.Never
	for _, sh := range s.all {
		if w := sim.Time(sh.watermark.Load()); w < min {
			min = w
		}
	}
	return min
}

// maybeFold folds up to the current minimum watermark if it advanced.
func (s *Streamer) maybeFold() {
	if s.minWatermark() <= sim.Time(s.folded.Load()) { // lock-free fast path
		return
	}
	s.foldMu.Lock()
	defer s.foldMu.Unlock()
	if w := s.minWatermark(); w > sim.Time(s.folded.Load()) && !s.finalized {
		s.fold(w)
		s.folded.Store(int64(w))
	}
}

// fold merges every pending event strictly below upTo into the aggregates,
// in the retained pipeline's exact order. The bound is exclusive because a
// node that flushed at virtual instant T may still log more records AT T
// within the same instant; they join the fold once the node's watermark
// passes T, alongside any same-instant peers. Caller holds foldMu.
func (s *Streamer) fold(upTo sim.Time) {
	evs := s.scratch[:0]
	for _, sh := range s.all {
		sh.mu.Lock()
		if upTo > sh.stolen {
			sh.stolen = upTo
		}
		nr := 0
		for nr < len(sh.reports) && sh.reports[nr].At < upTo {
			nr++
		}
		for i := 0; i < nr; i++ {
			evs = append(evs, foldEvent{at: sh.reports[i].At, rank: sh.rank,
				node: sh.key.node, user: true, r: sh.reports[i]})
		}
		if nr > 0 {
			sh.reports = sh.reports[:copy(sh.reports, sh.reports[nr:])]
		}
		ne := 0
		for ne < len(sh.entries) && sh.entries[ne].At < upTo {
			ne++
		}
		for i := 0; i < ne; i++ {
			evs = append(evs, foldEvent{at: sh.entries[i].At, rank: sh.rank,
				node: sh.key.node, e: sh.entries[i]})
		}
		if ne > 0 {
			sh.entries = sh.entries[:copy(sh.entries, sh.entries[ne:])]
		}
		sh.mu.Unlock()
	}
	// (time, testbed rank, node), stable: within one shard the gather order
	// was reports-then-entries, reproducing the retained merge's tie order
	// (a node's report sorts before its same-instant entry, the random
	// block before the realistic block).
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		if evs[i].rank != evs[j].rank {
			return evs[i].rank < evs[j].rank
		}
		return evs[i].node < evs[j].node
	})
	for i := range evs {
		s.apply(&evs[i])
	}
	s.scratch = evs[:0]
}

// apply folds one event.
func (s *Streamer) apply(ev *foldEvent) {
	if ev.user {
		r := &ev.r
		s.agg.Reports++
		if s.spec.TraceDepend && !r.Masked {
			s.trace = append(s.trace, DependEvent{
				At: ev.at, Testbed: s.spec.Testbeds[ev.rank].Name, Node: ev.node,
				Recovered: r.Recovered, TTR: r.TTR, Recovery: r.Recovery})
		}
		s.agg.Depend.Add(r)
		s.agg.T3.Add(r)
		if !taxonomyDisabled.Load() {
			s.agg.Tax.Add(r)
			s.agg.Surv.Add(s.spec.Testbeds[ev.rank].Name, ev.node, r)
		}
		AddFig4(s.agg.PerHost, r)
		s.agg.ScalarC.Add(r, s.kinds[ev.rank])
		if s.kinds[ev.rank] == core.WLRealistic {
			AddFig3c(s.agg.AppLoss, r)
		}
		if !r.Masked && r.Failure == core.UFPacketLoss {
			s.agg.ConnAge.Add(float64(r.SentPkts))
		}
		if !r.Masked {
			if rel := s.relators[shardKey{s.spec.Testbeds[ev.rank].Name, ev.node}]; rel != nil {
				rel.AddUser(ev.at, r.Failure)
			}
		}
		return
	}
	s.agg.Entries++
	if ev.node == s.naps[ev.rank] {
		// NAP entries are merged into every PANU stream of the testbed.
		for _, key := range s.panuKeys[ev.rank] {
			s.relators[key].AddSys(ev.at, ev.node, ev.e.Source)
		}
		return
	}
	if rel := s.relators[shardKey{s.spec.Testbeds[ev.rank].Name, ev.node}]; rel != nil {
		rel.AddSys(ev.at, ev.node, ev.e.Source)
	}
}

// DependTrace returns a copy of the fold-ordered unmasked-failure trace
// accumulated so far (nil unless the spec enabled TraceDepend). After
// Finalize the trace is complete; a sharded sink ships it inside its
// Partial so the merge tier can reconstruct the campaign-global failure
// order (see MergeAggregates).
func (s *Streamer) DependTrace() []DependEvent {
	s.foldMu.Lock()
	defer s.foldMu.Unlock()
	if s.trace == nil {
		return nil
	}
	return append([]DependEvent(nil), s.trace...)
}

// Pending reports how many records are buffered awaiting watermark advance
// or a sequence gap (a liveness/memory probe for tests and benchmarks).
func (s *Streamer) Pending() int {
	n := 0
	for _, sh := range s.all {
		sh.mu.Lock()
		n += len(sh.reports) + len(sh.entries)
		for _, p := range sh.parked {
			n += len(p.reports) + len(p.entries)
		}
		sh.mu.Unlock()
	}
	return n
}

// Finalize folds everything still pending regardless of watermarks, closes
// the coalescence streams, and returns the campaign aggregates. Ingests
// after Finalize fail with an error. Sequence gaps left by lost batches are
// handled best-effort: the batches parked behind a gap are still
// time-ordered and (normally) above the fold horizon, so they merge fine —
// only the genuinely lost batch is missing — and the loss is surfaced in
// Aggregates.SeqGaps / DroppedRecords rather than swallowed.
func (s *Streamer) Finalize() *Aggregates {
	s.foldMu.Lock()
	defer s.foldMu.Unlock()
	if !s.finalized {
		for _, sh := range s.all {
			sh.mu.Lock()
			if len(sh.parked) > 0 {
				s.agg.SeqGaps++
				seqs := make([]uint64, 0, len(sh.parked))
				for q := range sh.parked {
					seqs = append(seqs, q)
				}
				sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
				for _, q := range seqs {
					p := sh.parked[q]
					if err := s.applyLocked(sh, p.reports, p.entries, p.watermark); err != nil {
						s.agg.DroppedRecords += len(p.reports) + len(p.entries)
					}
				}
				sh.parked = nil
			}
			sh.closed = true
			sh.mu.Unlock()
		}
		s.fold(sim.Never)
		for _, keys := range s.panuKeys {
			for _, key := range keys {
				s.relators[key].Close()
			}
		}
		s.finalized = true
	}
	return s.agg
}
