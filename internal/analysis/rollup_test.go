package analysis

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// synthRelay builds a relay-depth accumulator from a deterministic stream of
// probes (depths 1..3, exponential-ish delays) plus a few unreachables.
func synthRelay(seed uint64, probes int) *RelayDepthAccum {
	rng := rand.New(rand.NewPCG(seed, 0xACC))
	a := NewRelayDepthAccum()
	for i := 0; i < probes; i++ {
		a.AddProbe(1+rng.IntN(3), rng.ExpFloat64()*40)
	}
	for i := 0; i < int(seed%4); i++ {
		a.AddUnreachable()
	}
	return a
}

// closeEnough compares two float64s to a relative 1e-9 — the slack the
// parallel Welford combination's non-associative rounding needs, far below
// the %.2f the reports print at.
func closeEnough(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestRelayDepthMergeLaws checks the merge algebra the hierarchical roll-up
// leans on: nil is the identity, counts merge exactly, and regrouping the
// same partials ((a⊕b)⊕c versus a⊕(b⊕c)) moves nothing the report can see —
// probe counts and unreachables are exact sums and the delay moments agree
// to within rounding far below the rendered precision.
func TestRelayDepthMergeLaws(t *testing.T) {
	build := func() (*RelayDepthAccum, *RelayDepthAccum, *RelayDepthAccum) {
		return synthRelay(1, 200), synthRelay(2, 150), synthRelay(3, 75)
	}

	a, _, _ := build()
	before := a.Probes()
	a.Merge(nil)
	if a.Probes() != before {
		t.Fatal("Merge(nil) must be the identity")
	}

	left, b1, c1 := build()
	left.Merge(b1)
	left.Merge(c1) // (a ⊕ b) ⊕ c

	a2, right, c2 := build()
	right.Merge(c2)
	a2.Merge(right) // a ⊕ (b ⊕ c)

	wantProbes, wantUnreach := 0, 0
	for _, acc := range []*RelayDepthAccum{synthRelay(1, 200), synthRelay(2, 150), synthRelay(3, 75)} {
		wantProbes += acc.Probes()
		wantUnreach += acc.Unreachable
	}
	if left.Probes() != wantProbes || a2.Probes() != wantProbes {
		t.Errorf("merged probe counts %d / %d, want the exact sum %d", left.Probes(), a2.Probes(), wantProbes)
	}
	if left.Unreachable != wantUnreach || a2.Unreachable != wantUnreach {
		t.Errorf("merged unreachables %d / %d, want %d", left.Unreachable, a2.Unreachable, wantUnreach)
	}
	for _, d := range left.Depths() {
		ls, rs := left.ByDepth[d], a2.ByDepth[d]
		if rs == nil || ls.N() != rs.N() {
			t.Fatalf("depth %d: groupings disagree on probe count", d)
		}
		if !closeEnough(ls.Mean(), rs.Mean()) || ls.Min() != rs.Min() || ls.Max() != rs.Max() {
			t.Errorf("depth %d: groupings disagree on moments: mean %v vs %v", d, ls.Mean(), rs.Mean())
		}
	}
	if l, r := left.RenderSampled(0.5), a2.RenderSampled(0.5); l != r {
		t.Errorf("regrouped merges render differently:\n%s\nvs\n%s", l, r)
	}
}

// TestEstimatedProbes pins the Horvitz–Thompson correction: an observed
// count stands in for observed/fraction exhaustive probes, degenerate
// fractions mean no correction, and a depth never observed estimates zero.
func TestEstimatedProbes(t *testing.T) {
	a := NewRelayDepthAccum()
	for i := 0; i < 8; i++ {
		a.AddProbe(2, float64(i))
	}
	if got := a.EstimatedProbes(2, 0.25); got != 32 {
		t.Errorf("EstimatedProbes(2, 0.25) = %v, want 32", got)
	}
	for _, f := range []float64{0, 1, -1, 2} {
		if got := a.EstimatedProbes(2, f); got != 8 {
			t.Errorf("EstimatedProbes(2, %v) = %v, want the uncorrected 8", f, got)
		}
	}
	if got := a.EstimatedProbes(5, 0.25); got != 0 {
		t.Errorf("EstimatedProbes(5, 0.25) = %v for an unobserved depth, want 0", got)
	}
	if !strings.Contains(a.RenderSampled(0.25), "32.0") {
		t.Errorf("RenderSampled(0.25) does not show the estimated column:\n%s", a.RenderSampled(0.25))
	}
}

// synthBridge builds a bridge accumulator with activity across every
// counter the merge must carry.
func synthBridge(name string, serves []int, seed uint64) *BridgeAccum {
	rng := rand.New(rand.NewPCG(seed, 0xB41D6E))
	a := NewBridgeAccum(name, "bridge-"+name, serves)
	for i := 0; i < 50; i++ {
		a.AddHop()
		p := serves[rng.IntN(len(serves))]
		switch rng.IntN(5) {
		case 0:
			a.AddRelayLoss(p)
		case 1:
			a.AddCorruption(p)
		case 2:
			a.AddOutage(core.UFConnectFailed, rng.ExpFloat64()*30)
			a.AddOutageDrop(p)
		case 3:
			a.AddQueueDrop(p)
		default:
			a.AddDelivery(p, rng.ExpFloat64()*5)
		}
	}
	return a
}

// TestBridgeAccumMergeLaws checks the all-bridge summary's merge algebra:
// regrouping the same bridge rows leaves every exact counter, the per-kind
// failure tallies and the piconet-matched coupling rows identical, keeps
// the Welford moments within rounding, and yields a sorted Serves union.
func TestBridgeAccumMergeLaws(t *testing.T) {
	build := func() (*BridgeAccum, *BridgeAccum, *BridgeAccum) {
		return synthBridge("a", []int{0, 1}, 4),
			synthBridge("b", []int{1, 2}, 5),
			synthBridge("c", []int{3, 0}, 6)
	}

	left, b1, c1 := build()
	left.Merge(b1)
	left.Merge(c1) // (a ⊕ b) ⊕ c

	a2, right, c2 := build()
	right.Merge(c2)
	a2.Merge(right) // a ⊕ (b ⊕ c)

	if left.Hops != a2.Hops || left.Relayed != a2.Relayed || left.RelayLost != a2.RelayLost ||
		left.RelayCorrupted != a2.RelayCorrupted || left.Outages != a2.Outages {
		t.Fatalf("groupings disagree on exact counters: %+v vs %+v", left, a2)
	}
	for k, n := range left.FailuresByKind {
		if a2.FailuresByKind[k] != n {
			t.Errorf("failure kind %v: %d vs %d across groupings", k, n, a2.FailuresByKind[k])
		}
	}
	if left.Downtime.N() != a2.Downtime.N() || !closeEnough(left.Downtime.Sum(), a2.Downtime.Sum()) {
		t.Errorf("downtime disagrees across groupings: %v vs %v", left.Downtime.Sum(), a2.Downtime.Sum())
	}
	if left.RelayLatency.N() != a2.RelayLatency.N() || !closeEnough(left.RelayLatency.Mean(), a2.RelayLatency.Mean()) {
		t.Errorf("relay latency disagrees across groupings: %v vs %v", left.RelayLatency.Mean(), a2.RelayLatency.Mean())
	}

	wantServes := []int{0, 1, 2, 3}
	if len(left.Serves) != len(wantServes) {
		t.Fatalf("merged Serves = %v, want the union %v", left.Serves, wantServes)
	}
	for i, p := range wantServes {
		if left.Serves[i] != p || a2.Serves[i] != p {
			t.Fatalf("merged Serves not the sorted union: %v / %v, want %v", left.Serves, a2.Serves, wantServes)
		}
	}
	if len(left.Coupling) != len(a2.Coupling) {
		t.Fatalf("coupling row counts differ: %d vs %d", len(left.Coupling), len(a2.Coupling))
	}
	for i := range left.Coupling {
		l, r := left.Coupling[i], a2.Coupling[i]
		if l.Piconet != r.Piconet || l.Outages != r.Outages || l.Delivered != r.Delivered ||
			l.Lost != r.Lost || l.Corrupted != r.Corrupted ||
			l.DroppedInOutage != r.DroppedInOutage || l.DroppedQueueFull != r.DroppedQueueFull ||
			!closeEnough(l.OutageSeconds, r.OutageSeconds) {
			t.Errorf("coupling row %d disagrees across groupings: %+v vs %+v", i, l, r)
		}
	}
}

// TestScatternetFoldGuards exercises the fold's error paths: folding a
// piconet without aggregates, a depend trace that disagrees with the
// accumulated failure count, partials with mismatched evidence windows, and
// finalizing an empty fold.
func TestScatternetFoldGuards(t *testing.T) {
	f := NewScatternetFold("With only SIRAs")
	if err := f.AddPiconet(0, nil, nil); err == nil {
		t.Error("AddPiconet(nil aggregates) must error")
	}
	if err := f.AddPiconet(0, &Aggregates{}, []DependEvent{{}}); err == nil {
		t.Error("AddPiconet with a trace/failure-count mismatch must error")
	}
	if _, _, err := f.Finalize(); err == nil {
		t.Error("Finalize of an empty fold must error")
	}

	g := NewScatternetFold("With only SIRAs")
	if err := g.AddPiconet(0, &Aggregates{Window: sim.Second, Radius: sim.Second}, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPiconet(1, &Aggregates{Window: 2 * sim.Second, Radius: sim.Second}, nil); err == nil {
		t.Error("AddPiconet with a mismatched window must error")
	}
	h := NewScatternetFold("With only SIRAs")
	if err := h.AddPiconet(2, &Aggregates{Window: 2 * sim.Second, Radius: sim.Second}, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.Merge(h); err == nil {
		t.Error("Merge of partials with mismatched windows must error")
	}
	if err := g.Merge(nil); err != nil {
		t.Errorf("Merge(nil) must be a no-op, got %v", err)
	}
}
