package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Bar is one bar of a text-mode figure.
type Bar struct {
	Label string
	Share float64 // percent
}

// RenderBars draws a labelled horizontal bar chart.
func RenderBars(title string, bars []Bar, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	maxShare := 0.0
	for _, bar := range bars {
		if bar.Share > maxShare {
			maxShare = bar.Share
		}
	}
	for _, bar := range bars {
		n := 0
		if maxShare > 0 {
			n = int(bar.Share / maxShare * float64(width))
		}
		fmt.Fprintf(&b, "  %-12s %6.2f%% %s\n", bar.Label, bar.Share, strings.Repeat("#", n))
	}
	return b.String()
}

// Fig3aPacketType computes the packet-loss distribution by baseband packet
// type from random-workload counters, normalised per byte offered so that
// usage imbalance from the binomial type draw does not mask the per-type
// failure proneness (the paper's "prefer multi-slot, prefer DHx" finding).
func Fig3aPacketType(counters map[string]*workload.Counters) []Bar {
	rates := make([]float64, 0, 6)
	types := core.PacketTypes()
	for _, pt := range types {
		var losses, packets int64
		for _, c := range counters {
			losses += c.LossesByType[pt]
			packets += c.PacketsByType[pt]
		}
		if packets > 0 {
			// Losses per byte offered in this type.
			rates = append(rates, float64(losses)/float64(packets*int64(pt.Payload())))
		} else {
			rates = append(rates, 0)
		}
	}
	shares := stats.Normalize(rates)
	bars := make([]Bar, len(types))
	for i, pt := range types {
		bars[i] = Bar{Label: pt.String(), Share: shares[i]}
	}
	return bars
}

// Fig3bConnectionAge histograms packet-loss failures by the number of
// packets sent on the connection before the loss (the fixed workload's
// infant-mortality curve). Bins of binWidth packets, nbins bins.
func Fig3bConnectionAge(reports []core.UserReport, binWidth, nbins int) []Bar {
	h := stats.NewHistogram(0, float64(binWidth*nbins), nbins)
	for _, r := range reports {
		if r.Masked || r.Failure != core.UFPacketLoss {
			continue
		}
		h.Add(float64(r.SentPkts))
	}
	shares := h.Shares()
	bars := make([]Bar, nbins)
	for i := range bars {
		bars[i] = Bar{Label: h.BinLabel(i), Share: shares[i]}
	}
	return bars
}

// Fig3cApplications computes the packet-loss share by emulated application
// from realistic-workload reports.
func Fig3cApplications(reports []core.UserReport) []Bar {
	counts := make(map[core.AppKind]float64)
	for i := range reports {
		AddFig3c(counts, &reports[i])
	}
	return Fig3cFromCounts(counts)
}

// AddFig3c folds one realistic-workload report into Figure 3c's counts
// (no-op unless it is an unmasked, app-attributed packet loss).
func AddFig3c(counts map[core.AppKind]float64, r *core.UserReport) {
	if r.Masked || r.Failure != core.UFPacketLoss || r.App == core.AppNone {
		return
	}
	counts[r.App]++
}

// Fig3cFromCounts finalizes accumulated per-app loss counts into the
// Figure 3c bars.
func Fig3cFromCounts(counts map[core.AppKind]float64) []Bar {
	apps := core.Apps()
	raw := make([]float64, len(apps))
	for i, a := range apps {
		raw[i] = counts[a]
	}
	shares := stats.Normalize(raw)
	bars := make([]Bar, len(apps))
	for i, a := range apps {
		bars[i] = Bar{Label: a.String(), Share: shares[i]}
	}
	return bars
}

// Fig4Row is one host's failure-type distribution.
type Fig4Row struct {
	Node   string
	Shares map[core.UserFailure]float64 // percent of the host's failures
	Total  int
}

// Fig4PerHost computes the per-host user-failure distribution (realistic
// workload, no masking — matching the paper's Figure 4 conditions).
func Fig4PerHost(reports []core.UserReport) []Fig4Row {
	perNode := make(map[string]map[core.UserFailure]int)
	for i := range reports {
		AddFig4(perNode, &reports[i])
	}
	return Fig4FromCounts(perNode)
}

// AddFig4 folds one report into Figure 4's per-host counts (masked reports
// are skipped).
func AddFig4(perNode map[string]map[core.UserFailure]int, r *core.UserReport) {
	if r.Masked {
		return
	}
	if perNode[r.Node] == nil {
		perNode[r.Node] = make(map[core.UserFailure]int)
	}
	perNode[r.Node][r.Failure]++
}

// Fig4FromCounts finalizes accumulated per-host failure counts into the
// Figure 4 rows.
func Fig4FromCounts(perNode map[string]map[core.UserFailure]int) []Fig4Row {
	nodes := make([]string, 0, len(perNode))
	for n := range perNode {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	rows := make([]Fig4Row, 0, len(nodes))
	for _, n := range nodes {
		total := 0
		for _, c := range perNode[n] {
			total += c
		}
		shares := make(map[core.UserFailure]float64, len(perNode[n]))
		for f, c := range perNode[n] {
			shares[f] = float64(c) / float64(total) * 100
		}
		rows = append(rows, Fig4Row{Node: n, Shares: shares, Total: total})
	}
	return rows
}

// RenderFig4 formats the per-host distribution.
func RenderFig4(rows []Fig4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "Host")
	for _, f := range core.UserFailures() {
		fmt.Fprintf(&b, "%24s", f)
	}
	b.WriteString("\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-10s", row.Node)
		for _, f := range core.UserFailures() {
			fmt.Fprintf(&b, "%23.1f%%", row.Shares[f])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Scalars are the §6 auxiliary findings.
type Scalars struct {
	// RandomSharePct is the share of failures from the random workload
	// (paper: 84 %).
	RandomSharePct float64
	// IdleBeforeFailedMean / IdleBeforeCleanMean compare T_W before failed
	// and failure-free cycles (paper: 27.3 s vs 26.9 s — idle connections
	// do not fail more).
	IdleBeforeFailedMean float64
	IdleBeforeCleanMean  float64
	// DistanceShares is the failure share per antenna distance, excluding
	// bind failures (which would bias it, manifesting on two hosts only).
	DistanceShares map[float64]float64
	// UserReports / SystemEntries are the dataset sizes.
	UserReports   int
	SystemEntries int
}

// ScalarCounts is the streaming accumulator behind the §6 scalars: plain
// integer counts folded one report at a time (the idle-time summaries come
// from workload counters, which stay O(nodes) on the testbed side).
type ScalarCounts struct {
	NRandom    int // unmasked failures, random workload
	NRealistic int // unmasked failures, realistic workload
	// DistCount / DistTotal split realistic unmasked non-bind failures by
	// antenna distance.
	DistCount map[float64]int
	DistTotal int
}

// NewScalarCounts allocates the accumulator.
func NewScalarCounts() *ScalarCounts {
	return &ScalarCounts{DistCount: make(map[float64]int)}
}

// Add folds one report from the named workload kind.
func (c *ScalarCounts) Add(r *core.UserReport, kind core.WorkloadKind) {
	if r.Masked {
		return
	}
	switch kind {
	case core.WLRandom:
		c.NRandom++
	case core.WLRealistic:
		c.NRealistic++
		if r.Failure != core.UFBindFailed {
			c.DistCount[r.DistanceM]++
			c.DistTotal++
		}
	}
}

// Scalars finalizes the counts (plus the per-client counters and the system
// entry total) into the §6 scalar report.
func (c *ScalarCounts) Scalars(counters map[string]*workload.Counters, systemEntries int) *Scalars {
	s := &Scalars{DistanceShares: make(map[float64]float64)}
	if c.NRandom+c.NRealistic > 0 {
		s.RandomSharePct = float64(c.NRandom) / float64(c.NRandom+c.NRealistic) * 100
	}
	s.UserReports = c.NRandom + c.NRealistic
	s.SystemEntries = systemEntries

	// Merge in sorted key order: float accumulation is rounding-order
	// dependent, and map iteration order would make the scalar outputs
	// differ in ulps between otherwise identical runs.
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	var failed, clean stats.Summary
	for _, name := range names {
		failed.Merge(counters[name].IdleBeforeFailed)
		clean.Merge(counters[name].IdleBeforeClean)
	}
	s.IdleBeforeFailedMean = failed.Mean()
	s.IdleBeforeCleanMean = clean.Mean()

	for d, n := range c.DistCount {
		if c.DistTotal > 0 {
			s.DistanceShares[d] = float64(n) / float64(c.DistTotal) * 100
		}
	}
	return s
}

// BuildScalars computes the §6 scalars from both testbeds' data.
func BuildScalars(randomReports, realisticReports []core.UserReport,
	counters map[string]*workload.Counters, systemEntries int) *Scalars {
	counts := NewScalarCounts()
	for i := range randomReports {
		counts.Add(&randomReports[i], core.WLRandom)
	}
	for i := range realisticReports {
		counts.Add(&realisticReports[i], core.WLRealistic)
	}
	return counts.Scalars(counters, systemEntries)
}
