package analysis

import (
	"reflect"
	"testing"

	"repro/internal/coalesce"
	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/sim"
	"repro/internal/workload"
)

// synthCampaign builds a deterministic two-testbed dataset shaped like a
// real campaign: per-node time-ordered report/entry streams with ties within
// and across testbeds, masked reports, recoveries, and NAP entries.
type synthCampaign struct {
	reports map[shardKey][]core.UserReport
	entries map[shardKey][]core.SystemEntry
	spec    StreamSpec
	horizon sim.Time
}

func genCampaign(n int) *synthCampaign {
	c := &synthCampaign{
		reports: make(map[shardKey][]core.UserReport),
		entries: make(map[shardKey][]core.SystemEntry),
		spec: StreamSpec{Testbeds: []TestbedSpec{
			{Name: "random", Kind: core.WLRandom, NAP: "Giallo", PANUs: []string{"Verde", "Win", "Rosso"}},
			{Name: "realistic", Kind: core.WLRealistic, NAP: "Giallo", PANUs: []string{"Verde", "Win", "Rosso"}},
		}},
	}
	state := uint64(0xA5A5A5A55A5A5A5A)
	next := func(mod int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(mod))
	}
	dists := []float64{0.5, 5, 7}
	for rank, tb := range c.spec.Testbeds {
		for _, node := range tb.PANUs {
			key := shardKey{tb.Name, node}
			at := sim.Time(0)
			for i := 0; i < n; i++ {
				// Steps of 0..240 s in whole seconds: ties across nodes and
				// testbeds are common, exercising the fold's tie order.
				at += sim.Time(next(241)) * sim.Second
				if next(3) == 0 {
					f := core.UserFailures()[next(core.NumUserFailures)]
					r := core.UserReport{
						At: at, Testbed: tb.Name, Node: node, Failure: f,
						Workload:  tb.Kind,
						SentPkts:  next(12000),
						DistanceM: dists[next(len(dists))],
						Masked:    next(10) == 0,
					}
					if rank == 1 {
						r.App = core.Apps()[next(5)]
					}
					if next(4) != 0 {
						r.Recovered = true
						r.Recovery = core.RecoveryActions()[next(core.NumRecoveryActions)]
						r.TTR = sim.Time(next(600)) * sim.Second
					}
					c.reports[key] = append(c.reports[key], r)
				} else {
					src := core.SysSources()[next(core.NumSysSources)]
					c.entries[key] = append(c.entries[key], core.SystemEntry{
						At: at, Testbed: tb.Name, Node: node, Source: src,
					})
				}
				if at > c.horizon {
					c.horizon = at
				}
			}
		}
		// The NAP logs entries too (no reports).
		key := shardKey{tb.Name, tb.NAP}
		at := sim.Time(0)
		for i := 0; i < n; i++ {
			at += sim.Time(next(241)) * sim.Second
			c.entries[key] = append(c.entries[key], core.SystemEntry{
				At: at, Testbed: tb.Name, Node: tb.NAP,
				Source: core.SysSources()[next(core.NumSysSources)],
			})
			if at > c.horizon {
				c.horizon = at
			}
		}
	}
	return c
}

// retained computes every output through the retained (slice-based)
// pipeline, replicating the CampaignResult conventions: per-testbed evidence
// into one shared Evidence, AllReports = random block then realistic block.
func (c *synthCampaign) retained() (*Table2, *Table3, *Dependability, []Bar, []Fig4Row, *Scalars, int, int) {
	ev := coalesce.NewEvidence()
	var all, realistic, random []core.UserReport
	entriesTotal := 0
	for _, tb := range c.spec.Testbeds {
		perR := make(map[string][]core.UserReport)
		perE := make(map[string][]core.SystemEntry)
		var tbReports []core.UserReport
		for _, node := range tb.PANUs {
			key := shardKey{tb.Name, node}
			perR[node] = c.reports[key]
			perE[node] = c.entries[key]
			tbReports = append(tbReports, c.reports[key]...)
			entriesTotal += len(c.entries[key])
		}
		perE[tb.NAP] = c.entries[shardKey{tb.Name, tb.NAP}]
		entriesTotal += len(perE[tb.NAP])
		BuildEvidenceWithRadius(ev, perR, perE, tb.NAP, coalesce.PaperWindow, coalesce.RelateRadius)
		logging.SortUserReports(tbReports)
		if tb.Kind == core.WLRandom {
			random = tbReports
		} else {
			realistic = tbReports
		}
		all = append(all, tbReports...)
	}
	t2 := BuildTable2(ev)
	t3 := BuildTable3(all)
	dep := BuildDependability("SIRAs", all, c.horizon)
	f3c := Fig3cApplications(realistic)
	f4 := Fig4PerHost(all)
	sc := BuildScalars(random, realistic, map[string]*workload.Counters{}, entriesTotal)
	return t2, t3, dep, f3c, f4, sc, len(all), entriesTotal
}

// stream pushes the same dataset through a Streamer in epoch-sized batches
// with per-shard watermarks, returning the folded aggregates and the largest
// pending backlog observed right after any epoch completed.
func (c *synthCampaign) stream(t *testing.T, epoch sim.Time) (*Aggregates, int) {
	t.Helper()
	s, err := NewStreamer(c.spec)
	if err != nil {
		t.Fatal(err)
	}
	type cursor struct{ r, e int }
	cur := make(map[shardKey]*cursor)
	var keys []shardKey
	for _, tb := range c.spec.Testbeds {
		for _, node := range append(append([]string{}, tb.PANUs...), tb.NAP) {
			key := shardKey{tb.Name, node}
			cur[key] = &cursor{}
			keys = append(keys, key)
		}
	}
	maxPending := 0
	for upTo := epoch; upTo < c.horizon+2*epoch; upTo += epoch {
		// Scrambled-ish shard order: reverse every other epoch, as TCP
		// arrival order would scramble it.
		ordered := append([]shardKey{}, keys...)
		if (upTo/epoch)%2 == 0 {
			for i, j := 0, len(ordered)-1; i < j; i, j = i+1, j-1 {
				ordered[i], ordered[j] = ordered[j], ordered[i]
			}
		}
		for _, key := range ordered {
			cu := cur[key]
			rs, es := c.reports[key], c.entries[key]
			r0 := cu.r
			for cu.r < len(rs) && rs[cu.r].At <= upTo {
				cu.r++
			}
			e0 := cu.e
			for cu.e < len(es) && es[cu.e].At <= upTo {
				cu.e++
			}
			if err := s.Ingest(key.testbed, key.node, rs[r0:cu.r], es[e0:cu.e], upTo); err != nil {
				t.Fatal(err)
			}
		}
		if p := s.Pending(); p > maxPending {
			maxPending = p
		}
	}
	return s.Finalize(), maxPending
}

// TestStreamerMatchesRetainedExactly is the streaming == retained
// equivalence proof at the aggregation layer: identical Table 2, Table 3,
// dependability column (bit-identical floats), figures, scalars and item
// counts on a fixed synthetic campaign, regardless of epoch granularity.
func TestStreamerMatchesRetainedExactly(t *testing.T) {
	c := genCampaign(600)
	t2, t3, dep, f3c, f4, sc, nu, ne := c.retained()
	for _, epoch := range []sim.Time{500 * sim.Second, sim.Hour, 13 * sim.Hour} {
		agg, _ := c.stream(t, epoch)
		if !reflect.DeepEqual(agg.Table2(), t2) {
			t.Errorf("epoch %v: Table 2 diverges", epoch)
		}
		if !reflect.DeepEqual(agg.Table3(), t3) {
			t.Errorf("epoch %v: Table 3 diverges", epoch)
		}
		if got := agg.Dependability("SIRAs"); !reflect.DeepEqual(got, dep) {
			t.Errorf("epoch %v: dependability diverges:\n got %+v\nwant %+v", epoch, got, dep)
		}
		if !reflect.DeepEqual(agg.Fig3c(), f3c) {
			t.Errorf("epoch %v: Fig 3c diverges", epoch)
		}
		if !reflect.DeepEqual(agg.Fig4(), f4) {
			t.Errorf("epoch %v: Fig 4 diverges", epoch)
		}
		if got := agg.Scalars(map[string]*workload.Counters{}); !reflect.DeepEqual(got, sc) {
			t.Errorf("epoch %v: scalars diverge:\n got %+v\nwant %+v", epoch, got, sc)
		}
		if gu, ge, _ := agg.DataItems(); gu != nu || ge != ne {
			t.Errorf("epoch %v: items %d/%d, want %d/%d", epoch, gu, ge, nu, ne)
		}
	}
}

// TestStreamerPendingBounded pins the memory story: with a fixed epoch, the
// pending backlog right after each epoch is bounded by per-epoch volume, not
// by how long the campaign has been running.
func TestStreamerPendingBounded(t *testing.T) {
	c := genCampaign(600)
	_, maxPending := c.stream(t, sim.Hour)
	total := 0
	for _, rs := range c.reports {
		total += len(rs)
	}
	for _, es := range c.entries {
		total += len(es)
	}
	// With ~2-minute mean inter-event steps, one hour holds a few dozen
	// events per shard; a tenth of the campaign is a generous ceiling that
	// still proves records are not being retained.
	if maxPending > total/10 {
		t.Errorf("pending backlog %d of %d records — streaming is retaining", maxPending, total)
	}
}

// TestStreamerReorderTolerance pins the cross-connection hardening: batch
// reordering above the fold horizon is repaired (identical aggregates),
// while records at or below an already-folded instant are rejected as an
// error instead of corrupting the fold or panicking.
func TestStreamerReorderTolerance(t *testing.T) {
	spec := StreamSpec{Testbeds: []TestbedSpec{
		{Name: "x", Kind: core.WLRandom, NAP: "n", PANUs: []string{"a"}},
	}}
	mk := func(at sim.Time) core.UserReport {
		return core.UserReport{At: at, Testbed: "x", Node: "a",
			Failure: core.UFPacketLoss, Recovered: true,
			Recovery: core.RAIPSocketReset, TTR: sim.Second}
	}

	// In-order reference.
	ref, err := NewStreamer(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []sim.Time{10 * sim.Second, 20 * sim.Second, 30 * sim.Second} {
		if err := ref.Ingest("x", "a", []core.UserReport{mk(at)}, nil, at); err != nil {
			t.Fatal(err)
		}
	}
	want := ref.Finalize().Dependability("s")

	// Two batches swapped before any watermark advances past them: the
	// shard re-sorts and the outputs are identical.
	swapped, err := NewStreamer(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := swapped.Ingest("x", "a", []core.UserReport{mk(20 * sim.Second)}, nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := swapped.Ingest("x", "a",
		[]core.UserReport{mk(10 * sim.Second), mk(30 * sim.Second)}, nil, 30*sim.Second); err != nil {
		t.Fatal(err)
	}
	if got := swapped.Finalize().Dependability("s"); !reflect.DeepEqual(got, want) {
		t.Errorf("reordered ingest diverges:\n got %+v\nwant %+v", got, want)
	}

	// Sequenced ingest handles the cross-connection race a multi-flush
	// daemon creates: the second flush (later records, higher watermark)
	// arrives first. Without sequencing its watermark would let the fold
	// pass the first flush's records; with it, the early batch parks until
	// the gap fills and the outputs match the in-order reference.
	seqd, err := NewStreamer(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := seqd.IngestSeq("x", "n", nil, nil, sim.Hour, 1); err != nil {
		t.Fatal(err) // NAP shard ready: only "a"'s watermark gates the fold
	}
	if err := seqd.IngestSeq("x", "a",
		[]core.UserReport{mk(20 * sim.Second), mk(30 * sim.Second)}, nil, sim.Hour, 2); err != nil {
		t.Fatal(err)
	}
	if seqd.Pending() == 0 {
		t.Fatal("out-of-sequence batch was applied instead of parked")
	}
	if err := seqd.IngestSeq("x", "a",
		[]core.UserReport{mk(10 * sim.Second)}, nil, 30*sim.Second, 1); err != nil {
		t.Fatal(err)
	}
	if got := seqd.Finalize().Dependability("s"); !reflect.DeepEqual(got, want) {
		t.Errorf("sequenced reordered ingest diverges:\n got %+v\nwant %+v", got, want)
	}

	// A replayed sequence number is rejected.
	replay, err := NewStreamer(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := replay.IngestSeq("x", "a", nil, nil, sim.Second, 1); err != nil {
		t.Fatal(err)
	}
	if err := replay.IngestSeq("x", "a", nil, nil, sim.Second, 1); err == nil {
		t.Error("replayed batch seq accepted")
	}

	// A lost batch (unfilled sequence gap) does not take its successors
	// with it: Finalize recovers the parked batches and reports the gap.
	gap, err := NewStreamer(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := gap.IngestSeq("x", "a", []core.UserReport{mk(10 * sim.Second)}, nil, 15*sim.Second, 1); err != nil {
		t.Fatal(err)
	}
	// seq 2 is lost in transit; seq 3 parks.
	if err := gap.IngestSeq("x", "a", []core.UserReport{mk(40 * sim.Second)}, nil, sim.Minute, 3); err != nil {
		t.Fatal(err)
	}
	gapAgg := gap.Finalize()
	if gapAgg.SeqGaps != 1 {
		t.Errorf("SeqGaps = %d, want 1", gapAgg.SeqGaps)
	}
	if gapAgg.Reports != 2 {
		t.Errorf("recovered %d reports, want 2 (parked batch lost with the gap)", gapAgg.Reports)
	}
	// Ingest after Finalize fails loudly instead of dropping records.
	if err := gap.Ingest("x", "a", []core.UserReport{mk(2 * sim.Minute)}, nil, 2*sim.Minute); err == nil {
		t.Error("post-finalize ingest accepted")
	}

	// A record below an already-folded instant is unmergeable: error, and
	// prior aggregates stay intact.
	late, err := NewStreamer(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := late.Ingest("x", "a", []core.UserReport{mk(10 * sim.Second)}, nil, sim.Hour); err != nil {
		t.Fatal(err)
	}
	if err := late.Ingest("x", "n", nil, nil, sim.Hour); err != nil {
		t.Fatal(err) // both shards at 1h: the 10s report is folded now
	}
	if err := late.Ingest("x", "a", []core.UserReport{mk(20 * sim.Second)}, nil, sim.Hour); err == nil {
		t.Error("record below the fold horizon accepted")
	}
	if got := late.Finalize().Dependability("s"); got.Failures != 1 {
		t.Errorf("late ingest corrupted aggregates: %+v", got)
	}
}

// TestStreamerGuards pins config validation and undeclared-stream errors.
func TestStreamerGuards(t *testing.T) {
	if _, err := NewStreamer(StreamSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := NewStreamer(StreamSpec{
		Testbeds: []TestbedSpec{{Name: "x", NAP: "n", PANUs: []string{"a"}}},
		Window:   sim.Second, Radius: 2 * sim.Second,
	}); err == nil {
		t.Error("radius > window accepted")
	}
	s, err := NewStreamer(StreamSpec{
		Testbeds: []TestbedSpec{{Name: "x", NAP: "n", PANUs: []string{"a"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("x", "ghost", nil, nil, sim.Second); err == nil {
		t.Error("undeclared stream accepted")
	}
	if err := s.Ingest("x", "a", nil, nil, sim.Second); err != nil {
		t.Errorf("declared stream rejected: %v", err)
	}
}
