package analysis

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// The taxonomy/survival plane (PR 10). Every user report carries a
// protocol phase and a transience verdict assigned once, at collection
// time; the accumulators below reduce them with O(1) state per node and
// exact integer arithmetic, so retained, streaming, distributed and
// sharded-merge aggregation all land on bit-identical tables. Floating
// point appears only at render time (Table/Curve), derived from the same
// integers on every plane.

// taxonomyDisabled is a benchmark-only kill switch: scripts/bench.sh
// flips it to measure the marginal cost of the taxonomy plane on the
// streaming hot path (taxonomy_overhead_ratio). It is never set in
// production paths — rendering is gated by CLI flags instead, so the
// accumulators always run and cross-plane equivalence always holds.
var taxonomyDisabled atomic.Bool

// SetTaxonomyDisabled turns the taxonomy/survival accumulation off (or
// back on). Benchmarks only; see taxonomyDisabled.
func SetTaxonomyDisabled(v bool) { taxonomyDisabled.Store(v) }

// Survival histogram binning: thirty 120-second bins spanning the first
// hour of uptime. Uptimes past the span saturate into the top bin, which
// the Kaplan-Meier renderer labels as open-ended. All planes must bin
// identically or Merge panics, so these are package constants.
const (
	// SurvivalBinSeconds is the width of one uptime bin.
	SurvivalBinSeconds = 120
	// SurvivalBins is the number of uptime bins.
	SurvivalBins = 30
)

// newSurvivalHist allocates a histogram with the canonical uptime binning.
func newSurvivalHist() *stats.Histogram {
	return stats.NewHistogram(0, SurvivalBinSeconds*SurvivalBins, SurvivalBins)
}

// TaxonomyAccum reduces failure reports into per-phase, per-verdict
// integer counts plus the integer sums needed for per-phase MTBF/MTTR.
// All fields are exact integers (times are virtual nanoseconds), so
// Merge is associative and commutative and the accumulator is
// regroup-invariant across shardings.
type TaxonomyAccum struct {
	// Nodes is the number of observed PANU node streams (summed on
	// merge of disjoint shards). The per-phase MTBF is rate-based —
	// duration * Nodes / failures — which keeps it order-free.
	Nodes int

	// Counts[phase][verdict] counts unmasked failures.
	Counts [core.NumFailurePhases + 1][core.NumTransienceVerdicts + 1]int

	// Masked counts error-masked occurrences per phase; they carry tags
	// too but stay out of the user-visible failure counts, mirroring
	// Table 2/3 semantics.
	Masked [core.NumFailurePhases + 1]int

	// Recovered and TTRSum feed the per-phase MTTR (TTRSum/Recovered).
	Recovered [core.NumFailurePhases + 1]int
	TTRSum    [core.NumFailurePhases + 1]sim.Time
}

// NewTaxonomyAccum allocates an empty taxonomy accumulator.
func NewTaxonomyAccum() *TaxonomyAccum { return &TaxonomyAccum{} }

// Add folds one report in. Out-of-range tags (which the codec rejects,
// but hand-built records may carry) collapse to the unknown bucket
// rather than corrupting memory.
func (t *TaxonomyAccum) Add(r *core.UserReport) {
	p := r.Phase
	if p < 0 || int(p) > core.NumFailurePhases {
		p = core.PhaseUnknown
	}
	v := r.Verdict
	if v < 0 || int(v) > core.NumTransienceVerdicts {
		v = core.VerdictUnknown
	}
	if r.Masked {
		t.Masked[p]++
		return
	}
	t.Counts[p][v]++
	if r.Recovered {
		t.Recovered[p]++
		t.TTRSum[p] += r.TTR
	}
}

// Merge folds another accumulator in by exact integer sums.
func (t *TaxonomyAccum) Merge(o *TaxonomyAccum) {
	t.Nodes += o.Nodes
	for p := range t.Counts {
		for v := range t.Counts[p] {
			t.Counts[p][v] += o.Counts[p][v]
		}
		t.Masked[p] += o.Masked[p]
		t.Recovered[p] += o.Recovered[p]
		t.TTRSum[p] += o.TTRSum[p]
	}
}

// Clone returns an independent copy (all fields are values).
func (t *TaxonomyAccum) Clone() *TaxonomyAccum {
	c := *t
	return &c
}

// Failures reports the unmasked failure count of one phase.
func (t *TaxonomyAccum) Failures(p core.FailurePhase) int {
	n := 0
	for _, c := range t.Counts[p] {
		n += c
	}
	return n
}

// TaxonomyRow is one rendered line of the taxonomy table.
type TaxonomyRow struct {
	Phase     core.FailurePhase
	Failures  int // unmasked failures in the phase
	Transient int
	Dynamic   int // dynamic-availability verdicts (windowed recurrence)
	Masked    int
	Recovered int
	MTBF      float64 // seconds; 0 when no failures
	MTTR      float64 // seconds; 0 when nothing recovered
}

// TaxonomyTable is the rendered per-phase MTBF/MTTR split.
type TaxonomyTable struct {
	Rows  []TaxonomyRow
	Total TaxonomyRow
}

// Table derives the per-phase table for a campaign of the given
// duration. Pure floats-from-integers: identical accumulators yield
// bit-identical tables on every plane.
func (t *TaxonomyAccum) Table(duration sim.Time) *TaxonomyTable {
	out := &TaxonomyTable{}
	phases := append([]core.FailurePhase{core.PhaseUnknown}, core.FailurePhases()...)
	for _, p := range phases {
		row := TaxonomyRow{
			Phase:     p,
			Failures:  t.Failures(p),
			Transient: t.Counts[p][core.VerdictTransient],
			Dynamic:   t.Counts[p][core.VerdictDynamicAvailability],
			Masked:    t.Masked[p],
			Recovered: t.Recovered[p],
		}
		if p == core.PhaseUnknown && row.Failures == 0 && row.Masked == 0 {
			continue // only legacy (codec v1) data lands here
		}
		if row.Failures > 0 && t.Nodes > 0 {
			row.MTBF = duration.Seconds() * float64(t.Nodes) / float64(row.Failures)
		}
		if row.Recovered > 0 {
			row.MTTR = t.TTRSum[p].Seconds() / float64(row.Recovered)
		}
		out.Rows = append(out.Rows, row)
		out.Total.Failures += row.Failures
		out.Total.Transient += row.Transient
		out.Total.Dynamic += row.Dynamic
		out.Total.Masked += row.Masked
		out.Total.Recovered += row.Recovered
	}
	if out.Total.Failures > 0 && t.Nodes > 0 {
		out.Total.MTBF = duration.Seconds() * float64(t.Nodes) / float64(out.Total.Failures)
	}
	var ttr sim.Time
	for p := range t.TTRSum {
		ttr += t.TTRSum[p]
	}
	if out.Total.Recovered > 0 {
		out.Total.MTTR = ttr.Seconds() / float64(out.Total.Recovered)
	}
	return out
}

// Render formats the table in the repo's fixed-width report style.
func (tt *TaxonomyTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %9s %10s %10s %7s %10s %12s %10s\n",
		"phase", "failures", "transient", "dyn-avail", "masked", "recovered", "MTBF (s)", "MTTR (s)")
	line := func(r TaxonomyRow, name string) {
		fmt.Fprintf(&b, "%-10s %9d %10d %10d %7d %10d %12.1f %10.2f\n",
			name, r.Failures, r.Transient, r.Dynamic, r.Masked, r.Recovered, r.MTBF, r.MTTR)
	}
	for _, r := range tt.Rows {
		line(r, r.Phase.String())
	}
	line(tt.Total, "total")
	return b.String()
}

// SurvivalAccum estimates node uptime survival with O(1) state per node
// stream: two fixed-binning integer histograms plus one open-interval
// instant per stream. Uptime is the time between consecutive unmasked
// failures of a node (the first interval measured from the campaign
// origin); intervals still open at the horizon are censored.
type SurvivalAccum struct {
	// Uptimes bins completed uptime intervals — the Kaplan-Meier event
	// bins, doubling as the failure-interarrival histogram.
	Uptimes *stats.Histogram

	// Censored bins intervals closed without a failure (stream ended at
	// the campaign horizon). Populated by Censor; until then open
	// intervals live in LastFail and Curve censors them virtually.
	Censored *stats.Histogram

	// UptimeSum/UptimeN are exact integer sums over completed intervals
	// (mean interarrival for the CI scalar columns).
	UptimeSum sim.Time
	UptimeN   int

	// LastFail maps open node streams ("testbed/node") to the instant
	// of their last unmasked failure (the origin 0 right after
	// Observe). Merging shards with colliding keys would double-count a
	// stream, so folds over same-named rosters (scatternet piconets)
	// must Censor before merging; disjoint shards merge directly.
	LastFail map[string]sim.Time
}

// NewSurvivalAccum allocates an empty survival accumulator.
func NewSurvivalAccum() *SurvivalAccum {
	return &SurvivalAccum{
		Uptimes:  newSurvivalHist(),
		Censored: newSurvivalHist(),
		LastFail: make(map[string]sim.Time),
	}
}

// survivalKey names one node stream.
func survivalKey(testbed, node string) string { return testbed + "/" + node }

// Observe registers a node stream at the campaign origin, so nodes that
// never fail still contribute a censored interval and the first failure
// measures time-to-first-failure.
func (s *SurvivalAccum) Observe(testbed, node string) {
	k := survivalKey(testbed, node)
	if _, ok := s.LastFail[k]; !ok {
		s.LastFail[k] = 0
	}
}

// Add folds one report in, closing the node's open uptime interval.
// Masked occurrences do not end an uptime (the user never saw an
// outage), matching the masking semantics of the availability figures.
func (s *SurvivalAccum) Add(testbed, node string, r *core.UserReport) {
	if r.Masked {
		return
	}
	k := survivalKey(testbed, node)
	last := s.LastFail[k] // zero origin if the stream was never observed
	up := r.At - last
	if up < 0 {
		up = 0
	}
	s.Uptimes.Add(up.Seconds())
	s.UptimeSum += up
	s.UptimeN++
	s.LastFail[k] = r.At
}

// Censor closes every open interval at the horizon, draining LastFail
// into the censored bins. Call it before merging accumulators whose
// rosters share node names (scatternet piconets); idempotent.
func (s *SurvivalAccum) Censor(horizon sim.Time) {
	for k, last := range s.LastFail {
		up := horizon - last
		if up < 0 {
			up = 0
		}
		s.Censored.Add(up.Seconds())
		delete(s.LastFail, k)
	}
}

// Merge folds another accumulator in. Histogram merges are exact
// integer-bin sums; open streams are unioned (keys must be disjoint —
// see LastFail).
func (s *SurvivalAccum) Merge(o *SurvivalAccum) {
	s.Uptimes.Merge(o.Uptimes)
	s.Censored.Merge(o.Censored)
	s.UptimeSum += o.UptimeSum
	s.UptimeN += o.UptimeN
	for k, v := range o.LastFail {
		s.LastFail[k] = v
	}
}

// MeanUptimeSeconds reports the mean completed uptime (failure
// interarrival), 0 when no interval completed.
func (s *SurvivalAccum) MeanUptimeSeconds() float64 {
	if s.UptimeN == 0 {
		return 0
	}
	return s.UptimeSum.Seconds() / float64(s.UptimeN)
}

// Interarrival exposes the failure-interarrival histogram (the event
// bins).
func (s *SurvivalAccum) Interarrival() *stats.Histogram { return s.Uptimes }

// SurvivalPoint is one bin of the Kaplan-Meier curve.
type SurvivalPoint struct {
	UpToSeconds float64 // bin upper edge (uptime <= this)
	Events      int     // failures in the bin
	Censored    int     // censored intervals in the bin
	AtRisk      int     // streams at risk entering the bin
	S           float64 // survival estimate after the bin
}

// SurvivalCurve is the rendered Kaplan-Meier estimate.
type SurvivalCurve struct {
	Points []SurvivalPoint
	Total  int // intervals (events + censored) entering the estimate
}

// Curve derives the Kaplan-Meier survival curve at the horizon without
// mutating the accumulator: open intervals are censored virtually, so a
// single-campaign plane never needs an explicit Censor. The estimate
// uses the grouped form S *= (1 - d_j/R_j) with censored intervals in a
// bin leaving the risk set after the bin's events.
func (s *SurvivalAccum) Curve(horizon sim.Time) *SurvivalCurve {
	cens := newSurvivalHist()
	cens.Merge(s.Censored)
	for _, last := range s.LastFail {
		up := horizon - last
		if up < 0 {
			up = 0
		}
		cens.Add(up.Seconds())
	}
	ev, cn := s.Uptimes.Counts(), cens.Counts()
	atRisk := 0
	for j := range ev {
		atRisk += ev[j] + cn[j]
	}
	out := &SurvivalCurve{Total: atRisk}
	surv := 1.0
	for j := range ev {
		d, c := ev[j], cn[j]
		if d == 0 && c == 0 {
			continue
		}
		if d > 0 && atRisk > 0 {
			surv *= 1 - float64(d)/float64(atRisk)
		}
		out.Points = append(out.Points, SurvivalPoint{
			UpToSeconds: float64(SurvivalBinSeconds) * float64(j+1),
			Events:      d,
			Censored:    c,
			AtRisk:      atRisk,
			S:           surv,
		})
		atRisk -= d + c
	}
	return out
}

// Render formats the curve; the top bin is open-ended (uptimes past the
// histogram span saturate into it).
func (c *SurvivalCurve) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Kaplan-Meier node uptime survival (%d intervals)\n", c.Total)
	fmt.Fprintf(&b, "%12s %8s %9s %8s %10s\n", "uptime", "events", "censored", "at-risk", "S(t)")
	span := float64(SurvivalBinSeconds * SurvivalBins)
	for _, p := range c.Points {
		label := fmt.Sprintf("<= %.0fs", p.UpToSeconds)
		if p.UpToSeconds >= span {
			label = fmt.Sprintf("> %.0fs", span-SurvivalBinSeconds)
		}
		fmt.Fprintf(&b, "%12s %8d %9d %8d %10.6f\n",
			label, p.Events, p.Censored, p.AtRisk, p.S)
	}
	return b.String()
}

// RenderInterarrival formats the non-empty bins of the interarrival
// histogram with share bars.
func (s *SurvivalAccum) RenderInterarrival(width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "failure interarrival (mean %.1f s over %d intervals)\n",
		s.MeanUptimeSeconds(), s.UptimeN)
	counts := s.Uptimes.Counts()
	total := 0
	for _, c := range counts {
		total += c
	}
	for j, c := range counts {
		if c == 0 {
			continue
		}
		bar := 0
		if total > 0 {
			bar = int(float64(width) * float64(c) / float64(total))
		}
		fmt.Fprintf(&b, "%12s %6d %s\n",
			fmt.Sprintf("[%d,%ds)", j*SurvivalBinSeconds, (j+1)*SurvivalBinSeconds),
			c, strings.Repeat("#", bar))
	}
	return b.String()
}

// OpenStream is one still-open node stream in a survival snapshot,
// sorted by key for deterministic serialization.
type OpenStream struct {
	Key      string   `json:"key"`
	LastFail sim.Time `json:"last_fail"`
}

// SurvivalSnapshot is the serializable state of a SurvivalAccum.
type SurvivalSnapshot struct {
	Uptimes   stats.HistogramSnapshot `json:"uptimes"`
	Censored  stats.HistogramSnapshot `json:"censored"`
	UptimeSum sim.Time                `json:"uptime_sum"`
	UptimeN   int                     `json:"uptime_n"`
	Open      []OpenStream            `json:"open,omitempty"`
}

// Snapshot captures the accumulator for a checkpoint.
func (s *SurvivalAccum) Snapshot() *SurvivalSnapshot {
	snap := &SurvivalSnapshot{
		Uptimes:   s.Uptimes.Snapshot(),
		Censored:  s.Censored.Snapshot(),
		UptimeSum: s.UptimeSum,
		UptimeN:   s.UptimeN,
	}
	for k, v := range s.LastFail {
		snap.Open = append(snap.Open, OpenStream{Key: k, LastFail: v})
	}
	sort.Slice(snap.Open, func(i, j int) bool { return snap.Open[i].Key < snap.Open[j].Key })
	return snap
}

// RestoreSurvivalAccum rebuilds an accumulator from its snapshot.
func RestoreSurvivalAccum(snap *SurvivalSnapshot) (*SurvivalAccum, error) {
	up, err := stats.RestoreHistogram(snap.Uptimes)
	if err != nil {
		return nil, fmt.Errorf("survival uptimes: %w", err)
	}
	cn, err := stats.RestoreHistogram(snap.Censored)
	if err != nil {
		return nil, fmt.Errorf("survival censored: %w", err)
	}
	s := &SurvivalAccum{
		Uptimes:   up,
		Censored:  cn,
		UptimeSum: snap.UptimeSum,
		UptimeN:   snap.UptimeN,
		LastFail:  make(map[string]sim.Time, len(snap.Open)),
	}
	for _, o := range snap.Open {
		s.LastFail[o.Key] = o.LastFail
	}
	return s, nil
}
