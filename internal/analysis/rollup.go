package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// The hierarchical scatternet roll-up: a city-scale campaign (10³ piconets)
// cannot afford one retained result per piconet, so the sharded engine folds
// every finished piconet into a per-shard ScatternetFold and merges the
// shard partials into one metro-wide report. The fold reuses the PR 7
// depend-trace merge idiom: everything order-insensitive merges
// algebraically (the Table 2 evidence cells, Table 3 counts, per-host and
// per-app maps, histogram bins and scalar counters are all integer sums, so
// the merge is exact and associative), while the order-sensitive Table 4
// accumulator is re-derived at Finalize from the piconet-tagged failure
// traces, k-way merged into deployment order by the total key
// (time, piconet, within-piconet fold position). Because the final sort key
// is total, the merged report is byte-identical no matter how many shards
// folded the piconets or in which order they finished — the shard-count
// invariance law pinned by the merge-law tests.

// metroEvent is one unmasked failure in the deployment-wide trace, tagged
// with its piconet and its position in that piconet's fold-ordered trace (the
// pair that makes the deployment sort key total).
type metroEvent struct {
	ev      DependEvent
	piconet int
	seq     int
}

// ScatternetFold accumulates finished piconet campaigns into one metro
// partial. Shard workers each own a fold; Merge combines shard partials and
// Finalize produces the deployment-wide aggregates. Not safe for concurrent
// use — each shard folds on its own goroutine and the partials merge after
// the barrier.
type ScatternetFold struct {
	scenario string
	agg      *Aggregates
	masked   int
	trace    []metroEvent
	rows     []PiconetRow
}

// NewScatternetFold allocates an empty fold for the given recovery-scenario
// label (the Dependability column name).
func NewScatternetFold(scenario string) *ScatternetFold {
	return &ScatternetFold{scenario: scenario}
}

// AddPiconet folds one finished piconet campaign: its overview row is
// derived before the aggregates are absorbed (the fold takes ownership of
// agg — the caller must not use it afterwards), and the piconet-tagged
// depend trace joins the deployment sequence. trace must be the piconet's
// fold-ordered unmasked-failure trace (StreamSpec.TraceDepend).
func (f *ScatternetFold) AddPiconet(piconet int, agg *Aggregates, trace []DependEvent) error {
	if agg == nil {
		return fmt.Errorf("analysis: scatternet fold of piconet %d without aggregates", piconet)
	}
	if len(trace) != agg.Depend.Failures {
		return fmt.Errorf("analysis: piconet %d trace has %d events for %d accumulated failures (TraceDepend not enabled?)",
			piconet, len(trace), agg.Depend.Failures)
	}
	u, s, _ := agg.DataItems()
	f.rows = append(f.rows, PiconetRow{
		Piconet:       piconet,
		UserReports:   u,
		SystemEntries: s,
		Depend:        agg.Dependability(f.scenario),
	})
	for i, ev := range trace {
		f.trace = append(f.trace, metroEvent{ev: ev, piconet: piconet, seq: i})
	}
	f.masked += agg.Depend.Masked
	if f.agg == nil {
		f.agg = agg
		return nil
	}
	if agg.Window != f.agg.Window || agg.Radius != f.agg.Radius {
		return fmt.Errorf("analysis: piconet %d aggregates disagree on window/radius", piconet)
	}
	addAggregates(f.agg, agg)
	return nil
}

// Merge absorbs another shard's partial into f (o must not be used
// afterwards). Merging is exact: every combined field is an integer sum or a
// concatenation that Finalize re-sorts by a total key.
func (f *ScatternetFold) Merge(o *ScatternetFold) error {
	if o == nil || o.agg == nil {
		return nil
	}
	f.rows = append(f.rows, o.rows...)
	f.trace = append(f.trace, o.trace...)
	f.masked += o.masked
	if f.agg == nil {
		f.agg = o.agg
		return nil
	}
	if o.agg.Window != f.agg.Window || o.agg.Radius != f.agg.Radius {
		return fmt.Errorf("analysis: scatternet fold partials disagree on window/radius")
	}
	addAggregates(f.agg, o.agg)
	return nil
}

// Piconets reports how many piconets have been folded so far.
func (f *ScatternetFold) Piconets() int { return len(f.rows) }

// Finalize sorts the deployment trace into campaign order, re-derives the
// deployment-wide Table 4 accumulator from it (exactly the MergeAggregates
// idiom), and returns the metro aggregates plus the per-piconet overview in
// piconet order. The fold must not be reused afterwards.
func (f *ScatternetFold) Finalize() (*Aggregates, *PiconetOverview, error) {
	if f.agg == nil {
		return nil, nil, fmt.Errorf("analysis: finalize of an empty scatternet fold")
	}
	sort.Slice(f.trace, func(i, j int) bool {
		a, b := &f.trace[i], &f.trace[j]
		if a.ev.At != b.ev.At {
			return a.ev.At < b.ev.At
		}
		if a.piconet != b.piconet {
			return a.piconet < b.piconet
		}
		return a.seq < b.seq
	})
	f.agg.Depend = DependAccum{Masked: f.masked}
	for i := range f.trace {
		r := f.trace[i].ev.report()
		f.agg.Depend.Add(&r)
	}
	sort.Slice(f.rows, func(i, j int) bool { return f.rows[i].Piconet < f.rows[j].Piconet })
	return f.agg, &PiconetOverview{Rows: f.rows}, nil
}

// ScatternetRollup is the one-report view of a city-scale scatternet
// campaign: deployment-wide paper tables merged across every piconet, the
// per-piconet overview, the all-bridge coupling summary and the (possibly
// sampled) delay-vs-depth table.
type ScatternetRollup struct {
	// Piconets is the campaign's piconet count.
	Piconets int
	// Scenario labels the recovery regime.
	Scenario string
	// Agg holds the deployment-wide merged aggregates: Table 2/3 merged
	// exactly across piconets, Depend re-derived over the interleaved
	// deployment failure sequence.
	Agg *Aggregates
	// Overview lines up every piconet's dataset sizes and dependability.
	Overview *PiconetOverview
	// Bridges is the all-bridge summary row (every bridge row merged; nil
	// when the campaign had no bridges); BridgeCount is the row count it
	// summarizes.
	Bridges     *BridgeAccum
	BridgeCount int
	// RelayDepth is the delay-vs-depth table, merged from the per-source
	// probe partials in piconet order.
	RelayDepth *RelayDepthAccum
	// ProbePairFraction is the relay-probe pair-sampling fraction the
	// campaign ran (1 = exhaustive); RelayDepth estimates scale by its
	// inverse (see RelayDepthAccum.EstimatedProbes).
	ProbePairFraction float64
}

// Render formats the metro report: deployment dependability, merged paper
// tables, the overview spread, and the bridge/relay planes.
func (r *ScatternetRollup) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scatternet roll-up: %d piconets, %d bridges (scenario %s)\n",
		r.Piconets, r.BridgeCount, r.Scenario)
	d := r.Agg.Dependability(r.Scenario)
	u, s, tot := r.Agg.DataItems()
	fmt.Fprintf(&b, "deployment: %d user reports + %d system entries = %d items\n", u, s, tot)
	fmt.Fprintf(&b, "deployment MTTF %.2f s, MTTR %.2f s, availability %.6f, %d failures (%d masked)\n",
		d.MTTF, d.MTTR, d.Availability, d.Failures, d.Masked)
	fmt.Fprintf(&b, "\nDeployment Table 2 (error-failure relationship, all piconets)\n%s",
		r.Agg.Table2().Render())
	fmt.Fprintf(&b, "Deployment Table 3 (SIRA effectiveness, all piconets)\n%s",
		r.Agg.Table3().Render())
	fmt.Fprintf(&b, "\nPiconet overview\n%s", r.Overview.Render())
	if r.Bridges != nil {
		fmt.Fprintf(&b, "\nAll-bridge summary (%d bridges merged)\n", r.BridgeCount)
		fmt.Fprintf(&b, "hops=%d relayed=%d lost=%d corrupt=%d outages=%d downtime=%.1f s mean-latency=%.2f s\n",
			r.Bridges.Hops, r.Bridges.Relayed, r.Bridges.RelayLost, r.Bridges.RelayCorrupted,
			r.Bridges.Outages, r.Bridges.Downtime.Sum(), r.Bridges.RelayLatency.Mean())
	}
	if r.RelayDepth != nil && (len(r.RelayDepth.ByDepth) > 0 || r.RelayDepth.Unreachable > 0) {
		fmt.Fprintf(&b, "\nRelay delay vs depth (pair sample fraction %.4f)\n%s",
			r.ProbePairFraction, r.RelayDepth.RenderSampled(r.ProbePairFraction))
	}
	return b.String()
}

// RenderTaxonomy formats the deployment-wide taxonomy/survival plane
// (PR 10): the per-phase failure split over every piconet, the
// Kaplan-Meier node-uptime curve and the interarrival histogram. Kept out
// of Render so the default roll-up report stays byte-identical to its
// pre-taxonomy captures; btcampaign -taxonomy appends it.
func (r *ScatternetRollup) RenderTaxonomy(duration sim.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Deployment failure taxonomy (phase x transience)\n%s",
		r.Agg.Tax.Table(duration).Render())
	fmt.Fprintf(&b, "\n%s", r.Agg.Surv.Curve(duration).Render())
	fmt.Fprintf(&b, "\n%s", r.Agg.Surv.RenderInterarrival(40))
	return b.String()
}
