package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/coalesce"
	"repro/internal/core"
	"repro/internal/sim"
)

// Cell is one (local, NAP) evidence pair of Table 2, in percent of the
// row's evidence.
type Cell struct {
	Local float64
	NAP   float64
}

// Table2 is the error–failure relationship table.
type Table2 struct {
	// Rows in taxonomy order; absent failures keep zero rows.
	Rows map[core.UserFailure]map[core.SysSource]Cell
	// RowEvidence counts total evidence per failure (the row denominators).
	RowEvidence map[core.UserFailure]int
	// NoRelationship is the share (%) of a failure's occurrences with no
	// related system entry at all.
	NoRelationship map[core.UserFailure]float64
	// Tot is the share (%) of each user failure among all occurrences
	// (the paper's TOT column).
	Tot map[core.UserFailure]float64
	// SourceTotals is the bottom "total" row: share (%) of all evidence per
	// source, split by locality.
	SourceTotals map[core.SysSource]Cell
	// TotalFailures is the number of unmasked user failures considered.
	TotalFailures int
}

// BuildEvidence runs the merge-and-coalesce pipeline for every PANU of one
// testbed and accumulates relationship evidence. The NAP's system log is
// merged into every PANU's stream (the paper relates each Test Log with both
// the local and the NAP system logs). Call once per testbed with a shared
// Evidence to aggregate a whole campaign.
func BuildEvidence(ev *coalesce.Evidence, perNodeReports map[string][]core.UserReport,
	perNodeEntries map[string][]core.SystemEntry, napNode string, window sim.Time) {
	BuildEvidenceWithRadius(ev, perNodeReports, perNodeEntries, napNode, window,
		coalesce.RelateRadius)
}

// BuildEvidenceWithRadius is BuildEvidence with an explicit evidence
// adjacency radius (ablation knob).
func BuildEvidenceWithRadius(ev *coalesce.Evidence, perNodeReports map[string][]core.UserReport,
	perNodeEntries map[string][]core.SystemEntry, napNode string, window, radius sim.Time) {
	napEntries := perNodeEntries[napNode]
	nodes := make([]string, 0, len(perNodeReports))
	for node := range perNodeReports {
		nodes = append(nodes, node)
	}
	sort.Strings(nodes)
	for _, node := range nodes {
		events := coalesce.Merge(perNodeReports[node], perNodeEntries[node], napEntries)
		tuples := coalesce.Tuples(events, window)
		coalesce.RelateWithRadius(ev, tuples, napNode, radius)
	}
}

// BuildTable2 renders accumulated evidence as the percentage table.
func BuildTable2(ev *coalesce.Evidence) *Table2 {
	t := &Table2{
		Rows:           make(map[core.UserFailure]map[core.SysSource]Cell),
		RowEvidence:    make(map[core.UserFailure]int),
		NoRelationship: make(map[core.UserFailure]float64),
		Tot:            make(map[core.UserFailure]float64),
		SourceTotals:   make(map[core.SysSource]Cell),
		TotalFailures:  ev.TotalFailures,
	}
	// Row percentages.
	for _, f := range core.UserFailures() {
		rowTotal := ev.RowTotal(f)
		t.RowEvidence[f] = rowTotal
		cells := make(map[core.SysSource]Cell)
		for _, src := range core.SysSources() {
			local := ev.Counts[coalesce.EvidenceKey{Failure: f, Source: src, Locality: coalesce.Local}]
			nap := ev.Counts[coalesce.EvidenceKey{Failure: f, Source: src, Locality: coalesce.NAP}]
			if rowTotal > 0 {
				cells[src] = Cell{
					Local: float64(local) / float64(rowTotal) * 100,
					NAP:   float64(nap) / float64(rowTotal) * 100,
				}
			}
		}
		t.Rows[f] = cells
		if n := ev.FailureTotals[f]; n > 0 {
			t.NoRelationship[f] = float64(ev.NoRelationship[f]) / float64(n) * 100
		}
		if ev.TotalFailures > 0 {
			t.Tot[f] = float64(ev.FailureTotals[f]) / float64(ev.TotalFailures) * 100
		}
	}
	// Source totals over all evidence.
	grand := 0
	for _, n := range ev.Counts {
		grand += n
	}
	if grand > 0 {
		for _, src := range core.SysSources() {
			var local, nap int
			for key, n := range ev.Counts {
				if key.Source != src {
					continue
				}
				if key.Locality == coalesce.NAP {
					nap += n
				} else {
					local += n
				}
			}
			t.SourceTotals[src] = Cell{
				Local: float64(local) / float64(grand) * 100,
				NAP:   float64(nap) / float64(grand) * 100,
			}
		}
	}
	return t
}

// SourceShare reports the combined (local+NAP) share of a source in the
// total row — e.g. the paper's "49.9 % of the user failures are due to HCI".
func (t *Table2) SourceShare(src core.SysSource) float64 {
	c := t.SourceTotals[src]
	return c.Local + c.NAP
}

// RowShare reports the combined share of a source within one failure's row.
func (t *Table2) RowShare(f core.UserFailure, src core.SysSource) float64 {
	c := t.Rows[f][src]
	return c.Local + c.NAP
}

// Render formats the table in the paper's layout.
func (t *Table2) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s", "User Level Failure")
	for _, src := range core.SysSources() {
		fmt.Fprintf(&b, "%14s", src.String()+" loc/NAP")
	}
	fmt.Fprintf(&b, "%8s\n", "TOT")
	for _, f := range core.UserFailures() {
		fmt.Fprintf(&b, "%-26s", f)
		for _, src := range core.SysSources() {
			c := t.Rows[f][src]
			fmt.Fprintf(&b, "%8.1f/%-5.1f", c.Local, c.NAP)
		}
		fmt.Fprintf(&b, "%7.1f\n", t.Tot[f])
	}
	fmt.Fprintf(&b, "%-26s", "Total")
	for _, src := range core.SysSources() {
		c := t.SourceTotals[src]
		fmt.Fprintf(&b, "%8.1f/%-5.1f", c.Local, c.NAP)
	}
	fmt.Fprintf(&b, "%7s\n", "100.0")
	return b.String()
}
