package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
)

// The relay-depth view: when a scatternet's topology has diameter > 1, an
// inter-piconet SDU relays through several bridges, and every hop adds
// store-and-forward delay — the bridge must rotate its residency to the
// pickup piconet, carry the SDU, and rotate again to the delivery piconet
// (plus wait out any outage in progress). RelayDepthAccum buckets the probe
// plane's end-to-end delays by route depth (bridge count), producing the
// delay-versus-relay-depth table that Bluetooth-mesh latency studies
// (arXiv:1910.03345) report for physical deployments. All state is O(depths)
// — streaming-compatible like every scatternet aggregate.

// RelayDepthAccum is the streaming accumulator behind the delay-vs-depth
// table. The scatternet probe plane feeds it one routed probe at a time.
type RelayDepthAccum struct {
	// ByDepth summarizes end-to-end relay delay seconds per route depth
	// (number of bridges on the path; depth 1 is a direct bridge).
	ByDepth map[int]*stats.Summary
	// Unreachable counts probes between piconets with no bridge path at all
	// (a disconnected membership map).
	Unreachable int
}

// NewRelayDepthAccum allocates an empty accumulator.
func NewRelayDepthAccum() *RelayDepthAccum {
	return &RelayDepthAccum{ByDepth: make(map[int]*stats.Summary)}
}

// AddProbe records one routed probe: a relay over depth bridges that took
// delaySeconds end to end.
func (a *RelayDepthAccum) AddProbe(depth int, delaySeconds float64) {
	s := a.ByDepth[depth]
	if s == nil {
		s = &stats.Summary{}
		a.ByDepth[depth] = s
	}
	s.Add(delaySeconds)
}

// AddUnreachable records one probe with no route.
func (a *RelayDepthAccum) AddUnreachable() { a.Unreachable++ }

// Merge folds another accumulator into a (o may be reused afterwards but is
// conventionally discarded). Each depth's summary merges via the parallel
// Welford combination, so the hierarchical roll-up merges per-source probe
// partials in a fixed (source-piconet) order to keep reports byte-stable.
func (a *RelayDepthAccum) Merge(o *RelayDepthAccum) {
	if o == nil {
		return
	}
	for _, d := range o.Depths() {
		s := a.ByDepth[d]
		if s == nil {
			s = &stats.Summary{}
			a.ByDepth[d] = s
		}
		s.Merge(*o.ByDepth[d])
	}
	a.Unreachable += o.Unreachable
}

// EstimatedProbes is the Horvitz–Thompson estimate of the probe count an
// exhaustive (fraction = 1) run would have recorded at the given depth: each
// sampled ordered pair stands in for 1/fraction pairs, so the estimate is
// observed/fraction. Delay moments (mean/min/max per depth) need no
// correction — pair inclusion is decided by a seeded coin independent of the
// pair's delay, so the sampled delays are an unbiased draw from the
// exhaustive delay population. fraction outside (0, 1] is treated as 1.
func (a *RelayDepthAccum) EstimatedProbes(depth int, fraction float64) float64 {
	s := a.ByDepth[depth]
	if s == nil {
		return 0
	}
	if fraction <= 0 || fraction >= 1 {
		return float64(s.N())
	}
	return float64(s.N()) / fraction
}

// RenderSampled formats the delay-vs-relay-depth table with the estimated
// exhaustive probe count per depth (see EstimatedProbes). At fraction 1 the
// estimate column equals the observed count and the table matches Render's
// content.
func (a *RelayDepthAccum) RenderSampled(fraction float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %8s %10s %10s %10s %10s\n",
		"depth", "probes", "est. full", "mean (s)", "min (s)", "max (s)")
	for _, d := range a.Depths() {
		s := a.ByDepth[d]
		fmt.Fprintf(&b, "%-6d %8d %10.1f %10.2f %10.2f %10.2f\n",
			d, s.N(), a.EstimatedProbes(d, fraction), s.Mean(), s.Min(), s.Max())
	}
	if a.Unreachable > 0 {
		fmt.Fprintf(&b, "unreachable probes: %d\n", a.Unreachable)
	}
	return b.String()
}

// Probes reports the total routed probe count.
func (a *RelayDepthAccum) Probes() int {
	n := 0
	for _, s := range a.ByDepth {
		n += s.N()
	}
	return n
}

// Depths lists the observed route depths, ascending.
func (a *RelayDepthAccum) Depths() []int {
	out := make([]int, 0, len(a.ByDepth))
	for d := range a.ByDepth {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// Render formats the delay-vs-relay-depth table.
func (a *RelayDepthAccum) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %8s %10s %10s %10s\n", "depth", "probes", "mean (s)", "min (s)", "max (s)")
	for _, d := range a.Depths() {
		s := a.ByDepth[d]
		fmt.Fprintf(&b, "%-6d %8d %10.2f %10.2f %10.2f\n", d, s.N(), s.Mean(), s.Min(), s.Max())
	}
	if a.Unreachable > 0 {
		fmt.Fprintf(&b, "unreachable probes: %d\n", a.Unreachable)
	}
	return b.String()
}

// RelayDepthRow is one depth's line of the sweep-level table: the per-seed
// probe count and mean delay, each as mean ± 95 % CI over the seeds.
type RelayDepthRow struct {
	// Depth is the route depth (bridges on the path).
	Depth int
	// Probes estimates the per-seed routed probe count at this depth.
	Probes stats.Estimate
	// Delay estimates the per-seed mean relay delay in seconds.
	Delay stats.Estimate
}

// RelayDepthCI is the delay-vs-relay-depth table with confidence intervals
// from a multi-seed scatternet sweep.
type RelayDepthCI struct {
	// Seeds is the number of campaigns summarized.
	Seeds int
	// Rows holds one line per observed depth, ascending.
	Rows []RelayDepthRow
	// Unreachable estimates the per-seed count of unroutable probes.
	Unreachable stats.Estimate
}

// BuildRelayDepthCI summarizes per-seed relay-depth accumulators. A depth
// missing from a seed contributes zero probes (and no delay sample) for that
// seed, so the CI reflects how reliably the topology produces that depth.
func BuildRelayDepthCI(accs []*RelayDepthAccum) *RelayDepthCI {
	ci := &RelayDepthCI{Seeds: len(accs)}
	depths := map[int]bool{}
	unreach := make([]float64, 0, len(accs))
	for _, a := range accs {
		for d := range a.ByDepth {
			depths[d] = true
		}
		unreach = append(unreach, float64(a.Unreachable))
	}
	ci.Unreachable = stats.CI95(unreach)
	sorted := make([]int, 0, len(depths))
	for d := range depths {
		sorted = append(sorted, d)
	}
	sort.Ints(sorted)
	for _, d := range sorted {
		var probes, delays []float64
		for _, a := range accs {
			if s := a.ByDepth[d]; s != nil {
				probes = append(probes, float64(s.N()))
				delays = append(delays, s.Mean())
			} else {
				probes = append(probes, 0)
			}
		}
		ci.Rows = append(ci.Rows, RelayDepthRow{
			Depth:  d,
			Probes: stats.CI95(probes),
			Delay:  stats.CI95(delays),
		})
	}
	return ci
}

// Render formats the sweep-level delay-vs-depth table.
func (ci *RelayDepthCI) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %16s %18s\n", "depth", "probes/seed", "mean delay (s)")
	for _, r := range ci.Rows {
		fmt.Fprintf(&b, "%-6d %16s %18s\n", r.Depth, r.Probes.Format("%.1f"), r.Delay.Format("%.2f"))
	}
	return b.String()
}
