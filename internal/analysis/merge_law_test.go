package analysis

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// streamSubset folds only the named testbeds of the campaign through a
// fresh sub-spec streamer (TraceDepend on via SubSpec), in epoch-sized
// watermark steps, optionally checkpoint/restoring mid-way to prove the
// trace survives a crash. Returns the shard partial a sharded sink would
// ship to the merge tier.
func streamSubset(t *testing.T, c *synthCampaign, names []string, epoch sim.Time, crashAt int) ShardAggregates {
	t.Helper()
	sub, err := SubSpec(c.spec, names)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < len(c.spec.Testbeds) && !sub.TraceDepend {
		t.Fatalf("SubSpec(%v) did not enable TraceDepend", names)
	}
	s, err := NewStreamer(sub)
	if err != nil {
		t.Fatal(err)
	}
	type cursor struct{ r, e int }
	cur := make(map[shardKey]*cursor)
	var keys []shardKey
	for _, tb := range sub.Testbeds {
		for _, node := range append(append([]string{}, tb.PANUs...), tb.NAP) {
			key := shardKey{tb.Name, node}
			cur[key] = &cursor{}
			keys = append(keys, key)
		}
	}
	step := 0
	for upTo := epoch; upTo < c.horizon+2*epoch; upTo += epoch {
		for _, key := range keys {
			cu := cur[key]
			rs, es := c.reports[key], c.entries[key]
			r0 := cu.r
			for cu.r < len(rs) && rs[cu.r].At <= upTo {
				cu.r++
			}
			e0 := cu.e
			for cu.e < len(es) && es[cu.e].At <= upTo {
				cu.e++
			}
			if err := s.Ingest(key.testbed, key.node, rs[r0:cu.r], es[e0:cu.e], upTo); err != nil {
				t.Fatal(err)
			}
		}
		step++
		if crashAt > 0 && step == crashAt {
			// Kill the shard sink: everything not in the checkpoint is gone,
			// and the restored streamer must carry the depend trace forward.
			cp, err := s.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			s, err = RestoreStreamer(sub, cp)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	agg := s.Finalize()
	return ShardAggregates{Testbeds: names, Agg: agg.Snapshot(), Trace: s.DependTrace()}
}

// TestMergeAggregatesMatchesSingleStreamer is the sharded-sink merge law:
// splitting a campaign's testbeds across independent streamers and merging
// their partials reproduces the single full-spec streamer bit for bit —
// including the order-sensitive Table 4 Welford state, reconstructed from
// the shards' depend traces.
func TestMergeAggregatesMatchesSingleStreamer(t *testing.T) {
	c := genCampaign(400)
	ref, _ := c.stream(t, 30*sim.Minute)
	refSnap := ref.Snapshot()

	for _, crashAt := range []int{0, 7} {
		pr := streamSubset(t, c, []string{"random"}, 30*sim.Minute, crashAt)
		pl := streamSubset(t, c, []string{"realistic"}, 30*sim.Minute, 0)
		merged, err := MergeAggregates(c.spec, []ShardAggregates{pr, pl})
		if err != nil {
			t.Fatal(err)
		}
		if got := merged.Snapshot(); !reflect.DeepEqual(got, refSnap) {
			t.Errorf("crashAt=%d: merged shard partials diverge from the single streamer", crashAt)
		}
		// Order of partials must not matter.
		merged2, err := MergeAggregates(c.spec, []ShardAggregates{pl, pr})
		if err != nil {
			t.Fatal(err)
		}
		if got := merged2.Snapshot(); !reflect.DeepEqual(got, refSnap) {
			t.Errorf("crashAt=%d: merge is order-dependent", crashAt)
		}
	}
}

// TestMergeAggregatesSinglePartial pins the passthrough: one partial
// covering the whole campaign merges to itself, trace optional.
func TestMergeAggregatesSinglePartial(t *testing.T) {
	c := genCampaign(150)
	ref, _ := c.stream(t, time30())
	snap := ref.Snapshot()
	merged, err := MergeAggregates(c.spec, []ShardAggregates{
		{Testbeds: []string{"random", "realistic"}, Agg: snap}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Snapshot(), snap) {
		t.Error("single-partial merge is not a passthrough")
	}
}

func time30() sim.Time { return 30 * sim.Minute }

// TestMergeAggregatesGuards pins the loud-failure contract: overlapping or
// missing coverage, unknown testbeds, and shards without a trace are
// refused rather than silently mis-merged.
func TestMergeAggregatesGuards(t *testing.T) {
	c := genCampaign(60)
	pr := streamSubset(t, c, []string{"random"}, time30(), 0)
	pl := streamSubset(t, c, []string{"realistic"}, time30(), 0)

	if _, err := MergeAggregates(c.spec, nil); err == nil {
		t.Error("merge of zero partials must fail")
	}
	if _, err := MergeAggregates(c.spec, []ShardAggregates{pr}); err == nil {
		t.Error("partial coverage must fail")
	}
	if _, err := MergeAggregates(c.spec, []ShardAggregates{pr, pr}); err == nil {
		t.Error("overlapping coverage must fail")
	}
	bad := pr
	bad.Testbeds = []string{"bogus"}
	if _, err := MergeAggregates(c.spec, []ShardAggregates{bad, pl}); err == nil {
		t.Error("unknown testbed must fail")
	}
	traceless := pr
	traceless.Trace = nil
	if pr.Agg.Depend.Failures > 0 {
		if _, err := MergeAggregates(c.spec, []ShardAggregates{traceless, pl}); err == nil {
			t.Error("multi-shard merge without a depend trace must fail")
		}
	}
	noAgg := pr
	noAgg.Agg = nil
	if _, err := MergeAggregates(c.spec, []ShardAggregates{noAgg, pl}); err == nil {
		t.Error("partial without aggregates must fail")
	}
}

// TestSubSpecGuards pins SubSpec's validation and rank preservation.
func TestSubSpecGuards(t *testing.T) {
	c := genCampaign(1)
	if _, err := SubSpec(c.spec, []string{"random", "random"}); err == nil {
		t.Error("duplicate subset testbed must fail")
	}
	if _, err := SubSpec(c.spec, []string{"nope"}); err == nil {
		t.Error("unknown subset testbed must fail")
	}
	// Subset order comes from the full spec, not the request.
	sub, err := SubSpec(c.spec, []string{"realistic", "random"})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Testbeds[0].Name != "random" || sub.Testbeds[1].Name != "realistic" {
		t.Errorf("SubSpec does not preserve full-spec order: %v", sub.Testbeds)
	}
	if sub.TraceDepend {
		t.Error("full-coverage subset should not force TraceDepend")
	}
}
