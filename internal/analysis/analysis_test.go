package analysis

import (
	"math"
	"strings"
	"testing"

	"repro/internal/coalesce"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestBuildEvidenceAndTable2(t *testing.T) {
	// Two connect failures on Verde: one explained by a local HCI timeout,
	// one by an HCI timeout on the NAP. One inquiry failure with no
	// evidence at all.
	reports := map[string][]core.UserReport{
		"Verde": {
			{At: 100 * sim.Second, Node: "Verde", Failure: core.UFConnectFailed},
			{At: 5000 * sim.Second, Node: "Verde", Failure: core.UFConnectFailed},
			{At: 20000 * sim.Second, Node: "Verde", Failure: core.UFInquiryScanFailed},
		},
	}
	entries := map[string][]core.SystemEntry{
		"Verde": {
			{At: 95 * sim.Second, Node: "Verde", Source: core.SrcHCI, Code: core.CodeHCICommandTimeout},
		},
		"Giallo": {
			{At: 5010 * sim.Second, Node: "Giallo", Source: core.SrcHCI, Code: core.CodeHCICommandTimeout},
		},
	}
	ev := coalesce.NewEvidence()
	BuildEvidence(ev, reports, entries, "Giallo", coalesce.PaperWindow)
	table := BuildTable2(ev)

	if table.TotalFailures != 3 {
		t.Fatalf("TotalFailures = %d", table.TotalFailures)
	}
	cell := table.Rows[core.UFConnectFailed][core.SrcHCI]
	if math.Abs(cell.Local-50) > 1e-9 || math.Abs(cell.NAP-50) > 1e-9 {
		t.Errorf("connect HCI cell = %+v, want 50/50", cell)
	}
	if got := table.RowShare(core.UFConnectFailed, core.SrcHCI); math.Abs(got-100) > 1e-9 {
		t.Errorf("RowShare = %v", got)
	}
	if got := table.SourceShare(core.SrcHCI); math.Abs(got-100) > 1e-9 {
		t.Errorf("SourceShare = %v (all evidence is HCI)", got)
	}
	if got := table.NoRelationship[core.UFInquiryScanFailed]; math.Abs(got-100) > 1e-9 {
		t.Errorf("inquiry NoRelationship = %v, want 100", got)
	}
	// TOT column: 2/3 connect, 1/3 inquiry.
	if got := table.Tot[core.UFConnectFailed]; math.Abs(got-200.0/3) > 1e-6 {
		t.Errorf("Tot[connect] = %v", got)
	}
	if out := table.Render(); !strings.Contains(out, "Connect failed") {
		t.Error("render missing rows")
	}
}

func TestTable2RowsSumTo100(t *testing.T) {
	// Synthetic evidence with several sources: each row's local+NAP cells
	// must sum to 100 when any evidence exists.
	ev := coalesce.NewEvidence()
	add := func(f core.UserFailure, src core.SysSource, loc coalesce.Locality, n int) {
		ev.Counts[coalesce.EvidenceKey{Failure: f, Source: src, Locality: loc}] += n
		ev.FailureTotals[f] += n
		ev.TotalFailures += n
	}
	add(core.UFPacketLoss, core.SrcHCI, coalesce.Local, 3)
	add(core.UFPacketLoss, core.SrcBCSP, coalesce.Local, 5)
	add(core.UFPacketLoss, core.SrcL2CAP, coalesce.NAP, 2)
	table := BuildTable2(ev)
	sum := 0.0
	for _, src := range core.SysSources() {
		c := table.Rows[core.UFPacketLoss][src]
		sum += c.Local + c.NAP
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Errorf("row sums to %v", sum)
	}
}

func TestBuildTable3(t *testing.T) {
	var reports []core.UserReport
	mk := func(f core.UserFailure, a core.RecoveryAction, n int) {
		for i := 0; i < n; i++ {
			reports = append(reports, core.UserReport{
				Failure: f, Recovered: true, Recovery: a})
		}
	}
	mk(core.UFNAPNotFound, core.RABTStackReset, 61)
	mk(core.UFNAPNotFound, core.RASystemReboot, 31)
	mk(core.UFNAPNotFound, core.RAAppRestart, 8)
	// Unrecovered and masked reports must be ignored.
	reports = append(reports,
		core.UserReport{Failure: core.UFNAPNotFound},
		core.UserReport{Failure: core.UFNAPNotFound, Masked: true, Recovered: true, Recovery: core.RAAppRestart})

	table := BuildTable3(reports)
	if table.Counts[core.UFNAPNotFound] != 100 {
		t.Fatalf("count = %d", table.Counts[core.UFNAPNotFound])
	}
	if got := table.Share(core.UFNAPNotFound, core.RABTStackReset); math.Abs(got-61) > 1e-9 {
		t.Errorf("stack-reset share = %v", got)
	}
	if got := table.ExpensiveShare(core.UFNAPNotFound); math.Abs(got-39) > 1e-9 {
		t.Errorf("expensive share = %v", got)
	}
	sev := table.MeanSeverity(core.UFNAPNotFound)
	want := (61*3 + 31*6 + 8*4) / 100.0
	if math.Abs(sev-want) > 1e-9 {
		t.Errorf("mean severity = %v, want %v", sev, want)
	}
	row := table.Rows[core.UFNAPNotFound]
	sum := 0.0
	for _, v := range row {
		sum += v
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Errorf("row sums to %v", sum)
	}
	if out := table.Render(); !strings.Contains(out, "no recovery defined") {
		t.Error("data mismatch row missing")
	}
}

func TestBuildDependability(t *testing.T) {
	// Failures at 100s, 400s, 1000s: TTFs 100, 300, 600.
	reports := []core.UserReport{
		{At: 100 * sim.Second, Failure: core.UFPacketLoss, Recovered: true,
			Recovery: core.RABTConnectionReset, TTR: 4 * sim.Second},
		{At: 400 * sim.Second, Failure: core.UFConnectFailed, Recovered: true,
			Recovery: core.RAAppRestart, TTR: 10 * sim.Second},
		{At: 1000 * sim.Second, Failure: core.UFPacketLoss, Recovered: true,
			Recovery: core.RAIPSocketReset, TTR: 1 * sim.Second},
		{At: 500 * sim.Second, Failure: core.UFBindFailed, Masked: true},
	}
	d := BuildDependability("test", reports, 2000*sim.Second)
	if d.Failures != 3 || d.Masked != 1 {
		t.Fatalf("failures/masked = %d/%d", d.Failures, d.Masked)
	}
	wantMTTF := (100.0 + 300 + 600) / 3
	if math.Abs(d.MTTF-wantMTTF) > 1e-9 {
		t.Errorf("MTTF = %v, want %v", d.MTTF, wantMTTF)
	}
	wantMTTR := (4.0 + 10 + 1) / 3
	if math.Abs(d.MTTR-wantMTTR) > 1e-9 {
		t.Errorf("MTTR = %v, want %v", d.MTTR, wantMTTR)
	}
	wantAvail := wantMTTF / (wantMTTF + wantMTTR)
	if math.Abs(d.Availability-wantAvail) > 1e-9 {
		t.Errorf("availability = %v, want %v", d.Availability, wantAvail)
	}
	// Coverage: 2 of 4 (incl. masked) cleared without restart/reboot, plus
	// the masked one: (1 masked + 2 covered) / 4.
	wantCov := 25.0 + 50.0
	if math.Abs(d.CoveragePct-wantCov) > 1e-9 {
		t.Errorf("coverage = %v, want %v", d.CoveragePct, wantCov)
	}
	if math.Abs(d.MaskingPct-25) > 1e-9 {
		t.Errorf("masking = %v, want 25", d.MaskingPct)
	}
	if d.MinTTF != 100 || d.MaxTTF != 600 {
		t.Errorf("TTF bounds = %v/%v", d.MinTTF, d.MaxTTF)
	}
}

func TestTable4Improvement(t *testing.T) {
	t4 := &Table4{Columns: []*Dependability{
		{Scenario: "Only Reboot", Availability: 0.688, MTTF: 630.56},
		{Scenario: "App restart and Reboot", Availability: 0.907, MTTF: 631},
		{Scenario: "With only SIRAs", Availability: 0.923, MTTF: 633},
		{Scenario: "SIRAs and masking", Availability: 0.94, MTTF: 1905.05},
	}}
	vsReboot, vsAppReboot, mttfGain := t4.Improvement()
	if math.Abs(vsReboot-36.6) > 0.3 {
		t.Errorf("availability vs reboot = %v, want ~36.6", vsReboot)
	}
	if math.Abs(vsAppReboot-3.64) > 0.1 {
		t.Errorf("availability vs app+reboot = %v, want ~3.64", vsAppReboot)
	}
	if math.Abs(mttfGain-202) > 2 {
		t.Errorf("MTTF gain = %v, want ~202", mttfGain)
	}
	if out := t4.Render(); !strings.Contains(out, "Availability") {
		t.Error("render incomplete")
	}
}

func TestFig3aPacketType(t *testing.T) {
	c := workload.NewCounters()
	// Equal byte volumes per type, losses decreasing with capacity.
	losses := map[core.PacketType]int64{
		core.PTDM1: 60, core.PTDH1: 40, core.PTDM3: 20,
		core.PTDH3: 12, core.PTDM5: 8, core.PTDH5: 4,
	}
	for _, pt := range core.PacketTypes() {
		c.PacketsByType[pt] = 1 << 20 / int64(pt.Payload())
		c.LossesByType[pt] = losses[pt]
	}
	bars := Fig3aPacketType(map[string]*workload.Counters{"Verde": c})
	if len(bars) != 6 {
		t.Fatalf("%d bars", len(bars))
	}
	sum := 0.0
	for i := 1; i < len(bars); i++ {
		if bars[i].Share > bars[i-1].Share {
			t.Errorf("shares not decreasing: %+v", bars)
		}
	}
	for _, b := range bars {
		sum += b.Share
	}
	if math.Abs(sum-100) > 1e-6 {
		t.Errorf("shares sum to %v", sum)
	}
}

func TestFig3bConnectionAge(t *testing.T) {
	var reports []core.UserReport
	// Heavy infant mortality: most losses in the first bin.
	for i := 0; i < 80; i++ {
		reports = append(reports, core.UserReport{Failure: core.UFPacketLoss, SentPkts: i % 500})
	}
	for i := 0; i < 20; i++ {
		reports = append(reports, core.UserReport{Failure: core.UFPacketLoss, SentPkts: 2000 + i*100})
	}
	// Noise that must be excluded.
	reports = append(reports, core.UserReport{Failure: core.UFConnectFailed, SentPkts: 1})
	reports = append(reports, core.UserReport{Failure: core.UFPacketLoss, SentPkts: 1, Masked: true})

	bars := Fig3bConnectionAge(reports, 500, 10)
	if len(bars) != 10 {
		t.Fatalf("%d bins", len(bars))
	}
	if bars[0].Share <= bars[9].Share {
		t.Errorf("young-connection bin (%v) should dominate the tail (%v)",
			bars[0].Share, bars[9].Share)
	}
}

func TestFig3cApplications(t *testing.T) {
	var reports []core.UserReport
	add := func(app core.AppKind, n int) {
		for i := 0; i < n; i++ {
			reports = append(reports, core.UserReport{Failure: core.UFPacketLoss, App: app})
		}
	}
	add(core.AppP2P, 45)
	add(core.AppStreaming, 25)
	add(core.AppWeb, 15)
	add(core.AppFTP, 10)
	add(core.AppMail, 5)
	bars := Fig3cApplications(reports)
	shares := map[string]float64{}
	for _, b := range bars {
		shares[b.Label] = b.Share
	}
	if shares["P2P"] != 45 || shares["Mail"] != 5 {
		t.Errorf("shares = %v", shares)
	}
}

func TestFig4PerHost(t *testing.T) {
	reports := []core.UserReport{
		{Node: "Azzurro", Failure: core.UFBindFailed},
		{Node: "Azzurro", Failure: core.UFConnectFailed},
		{Node: "Verde", Failure: core.UFPacketLoss},
		{Node: "Verde", Failure: core.UFPacketLoss},
		{Node: "Verde", Failure: core.UFBindFailed, Masked: true},
	}
	rows := Fig4PerHost(reports)
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Node != "Azzurro" || rows[0].Shares[core.UFBindFailed] != 50 {
		t.Errorf("Azzurro row = %+v", rows[0])
	}
	if rows[1].Shares[core.UFPacketLoss] != 100 {
		t.Errorf("Verde row = %+v (masked must not count)", rows[1])
	}
	if out := RenderFig4(rows); !strings.Contains(out, "Azzurro") {
		t.Error("render missing host")
	}
}

func TestBuildScalars(t *testing.T) {
	random := make([]core.UserReport, 84)
	for i := range random {
		random[i] = core.UserReport{Failure: core.UFPacketLoss, DistanceM: 0.5}
	}
	realistic := make([]core.UserReport, 16)
	for i := range realistic {
		d := []float64{0.5, 5, 7}[i%3]
		realistic[i] = core.UserReport{Failure: core.UFPacketLoss, DistanceM: d}
	}
	// Bind failures excluded from the distance split.
	realistic = append(realistic, core.UserReport{Failure: core.UFBindFailed, DistanceM: 5})

	c := workload.NewCounters()
	c.IdleBeforeFailed.Add(27.3)
	c.IdleBeforeClean.Add(26.9)

	s := BuildScalars(random, realistic, map[string]*workload.Counters{"Verde": c}, 1234)
	if math.Abs(s.RandomSharePct-84.0/1.01) > 1.0 {
		t.Errorf("random share = %v", s.RandomSharePct)
	}
	if s.IdleBeforeFailedMean != 27.3 || s.IdleBeforeCleanMean != 26.9 {
		t.Errorf("idle means = %v/%v", s.IdleBeforeFailedMean, s.IdleBeforeCleanMean)
	}
	total := 0.0
	for _, share := range s.DistanceShares {
		total += share
	}
	if math.Abs(total-100) > 1e-6 {
		t.Errorf("distance shares sum to %v", total)
	}
	if s.SystemEntries != 1234 {
		t.Errorf("system entries = %d", s.SystemEntries)
	}
}

func TestRenderBars(t *testing.T) {
	out := RenderBars("Figure", []Bar{{"DM1", 60}, {"DH5", 5}}, 20)
	if !strings.Contains(out, "DM1") || !strings.Contains(out, "#") {
		t.Errorf("render = %q", out)
	}
	_ = stats.Normalize // keep the stats dependency explicit
}
