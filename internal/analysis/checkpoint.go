package analysis

import (
	"fmt"
	"sort"

	"repro/internal/coalesce"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Checkpoint snapshots for the streaming aggregation plane. Two layers:
//
//   - AggregatesSnapshot serializes the folded campaign state (everything
//     behind Table 2/3/4, the figures and the §6 scalars) — what a finished
//     seed of a sweep persists so an interrupted sweep resumes instead of
//     recomputing it;
//   - StreamerCheckpoint serializes a LIVE Streamer mid-campaign: the
//     aggregates plus every shard's pending queue, sequence cursor, parked
//     batches and watermark, and every coalescence relator's in-flight
//     window — what a collection sink persists so a crash resumes from the
//     last checkpoint rather than restarting the campaign.
//
// Both snapshots are exact: restore-and-continue produces bit-identical
// outputs to a never-interrupted run (Go's JSON float encoding round-trips,
// integer counts are integers, and map-free slices keep the bytes
// deterministic). The checkpoint round-trip tests pin this.

// DependAccumSnapshot is the serializable state of a DependAccum.
type DependAccumSnapshot struct {
	TTF      stats.SummarySnapshot `json:"ttf"`
	TTR      stats.SummarySnapshot `json:"ttr"`
	Failures int                   `json:"failures"`
	Masked   int                   `json:"masked"`
	Covered  int                   `json:"covered"`
	PrevFail sim.Time              `json:"prev_fail"`
}

// Snapshot captures the accumulator's exact state.
func (a *DependAccum) Snapshot() DependAccumSnapshot {
	return DependAccumSnapshot{TTF: a.TTF.Snapshot(), TTR: a.TTR.Snapshot(),
		Failures: a.Failures, Masked: a.Masked, Covered: a.Covered, PrevFail: a.prevFail}
}

// RestoreDependAccum rebuilds the accumulator mid-stream.
func RestoreDependAccum(snap DependAccumSnapshot) DependAccum {
	return DependAccum{TTF: stats.RestoreSummary(snap.TTF), TTR: stats.RestoreSummary(snap.TTR),
		Failures: snap.Failures, Masked: snap.Masked, Covered: snap.Covered, prevFail: snap.PrevFail}
}

// Table3Snapshot is the serializable state of a Table3Counts accumulator.
type Table3Snapshot struct {
	Rows   map[core.UserFailure][core.NumRecoveryActions]int `json:"rows,omitempty"`
	Totals [core.NumRecoveryActions]int                      `json:"totals"`
	Grand  int                                               `json:"grand"`
}

// Snapshot captures the recovery-success counts.
func (c *Table3Counts) Snapshot() Table3Snapshot {
	snap := Table3Snapshot{Rows: make(map[core.UserFailure][core.NumRecoveryActions]int, len(c.Rows)),
		Totals: c.Totals, Grand: c.Grand}
	for f, row := range c.Rows {
		snap.Rows[f] = row
	}
	return snap
}

// RestoreTable3Counts rebuilds the accumulator.
func RestoreTable3Counts(snap Table3Snapshot) *Table3Counts {
	c := NewTable3Counts()
	for f, row := range snap.Rows {
		c.Rows[f] = row
	}
	c.Totals, c.Grand = snap.Totals, snap.Grand
	return c
}

// DistanceCount is one antenna-distance failure count of a ScalarSnapshot
// (JSON objects cannot key on float64, so the map ships as sorted pairs).
type DistanceCount struct {
	Meters float64 `json:"meters"`
	Count  int     `json:"count"`
}

// ScalarSnapshot is the serializable state of a ScalarCounts accumulator.
type ScalarSnapshot struct {
	NRandom    int             `json:"n_random"`
	NRealistic int             `json:"n_realistic"`
	Distances  []DistanceCount `json:"distances,omitempty"`
	DistTotal  int             `json:"dist_total"`
}

// Snapshot captures the scalar counts, distances sorted ascending.
func (c *ScalarCounts) Snapshot() ScalarSnapshot {
	snap := ScalarSnapshot{NRandom: c.NRandom, NRealistic: c.NRealistic, DistTotal: c.DistTotal}
	for d, n := range c.DistCount {
		snap.Distances = append(snap.Distances, DistanceCount{Meters: d, Count: n})
	}
	sort.Slice(snap.Distances, func(i, j int) bool { return snap.Distances[i].Meters < snap.Distances[j].Meters })
	return snap
}

// RestoreScalarCounts rebuilds the accumulator.
func RestoreScalarCounts(snap ScalarSnapshot) *ScalarCounts {
	c := NewScalarCounts()
	c.NRandom, c.NRealistic, c.DistTotal = snap.NRandom, snap.NRealistic, snap.DistTotal
	for _, d := range snap.Distances {
		c.DistCount[d.Meters] = d.Count
	}
	return c
}

// AggregatesSnapshot is the serializable state of campaign Aggregates.
type AggregatesSnapshot struct {
	Window sim.Time `json:"window"`
	Radius sim.Time `json:"radius"`

	Evidence *coalesce.EvidenceSnapshot          `json:"evidence"`
	Depend   DependAccumSnapshot                 `json:"depend"`
	T3       Table3Snapshot                      `json:"t3"`
	AppLoss  map[core.AppKind]float64            `json:"app_loss,omitempty"`
	PerHost  map[string]map[core.UserFailure]int `json:"per_host,omitempty"`
	ConnAge  stats.HistogramSnapshot             `json:"conn_age"`
	Scalar   ScalarSnapshot                      `json:"scalar"`

	// Tax/Surv carry the taxonomy/survival plane (PR 10). Nil on
	// checkpoints written by older builds; restore then keeps the
	// receiver's (empty but roster-registered) accumulators.
	Tax  *TaxonomyAccum    `json:"tax,omitempty"`
	Surv *SurvivalSnapshot `json:"surv,omitempty"`

	Reports        int `json:"reports"`
	Entries        int `json:"entries"`
	SeqGaps        int `json:"seq_gaps"`
	DroppedRecords int `json:"dropped_records"`
}

// Snapshot captures the aggregates' exact state. The caller must ensure no
// concurrent folding (the Streamer checkpoints under its fold lock;
// finalized aggregates are quiescent by definition).
func (a *Aggregates) Snapshot() *AggregatesSnapshot {
	snap := &AggregatesSnapshot{
		Window:   a.Window,
		Radius:   a.Radius,
		Evidence: a.Evidence.Snapshot(),
		Depend:   a.Depend.Snapshot(),
		T3:       a.T3.Snapshot(),
		AppLoss:  make(map[core.AppKind]float64, len(a.AppLoss)),
		PerHost:  make(map[string]map[core.UserFailure]int, len(a.PerHost)),
		ConnAge:  a.ConnAge.Snapshot(),
		Scalar:   a.ScalarC.Snapshot(),
		Tax:      a.Tax.Clone(),
		Surv:     a.Surv.Snapshot(),
		Reports:  a.Reports, Entries: a.Entries,
		SeqGaps: a.SeqGaps, DroppedRecords: a.DroppedRecords,
	}
	for app, n := range a.AppLoss {
		snap.AppLoss[app] = n
	}
	for node, counts := range a.PerHost {
		m := make(map[core.UserFailure]int, len(counts))
		for f, n := range counts {
			m[f] = n
		}
		snap.PerHost[node] = m
	}
	return snap
}

// restoreInto loads the snapshot into a, replacing its contents in place so
// that relators already wired to a.Evidence keep accumulating into the
// restored state.
func (snap *AggregatesSnapshot) restoreInto(a *Aggregates) error {
	if snap.Evidence == nil {
		return fmt.Errorf("analysis: aggregates snapshot missing evidence")
	}
	a.Window, a.Radius = snap.Window, snap.Radius
	if err := snap.Evidence.RestoreInto(a.Evidence); err != nil {
		return err
	}
	a.Depend = RestoreDependAccum(snap.Depend)
	a.T3 = RestoreTable3Counts(snap.T3)
	a.AppLoss = make(map[core.AppKind]float64, len(snap.AppLoss))
	for app, n := range snap.AppLoss {
		a.AppLoss[app] = n
	}
	a.PerHost = make(map[string]map[core.UserFailure]int, len(snap.PerHost))
	for node, counts := range snap.PerHost {
		m := make(map[core.UserFailure]int, len(counts))
		for f, n := range counts {
			m[f] = n
		}
		a.PerHost[node] = m
	}
	h, err := stats.RestoreHistogram(snap.ConnAge)
	if err != nil {
		return err
	}
	a.ConnAge = h
	a.ScalarC = RestoreScalarCounts(snap.Scalar)
	if snap.Tax != nil {
		a.Tax = snap.Tax.Clone()
	}
	if snap.Surv != nil {
		surv, err := RestoreSurvivalAccum(snap.Surv)
		if err != nil {
			return err
		}
		a.Surv = surv
	}
	a.Reports, a.Entries = snap.Reports, snap.Entries
	a.SeqGaps, a.DroppedRecords = snap.SeqGaps, snap.DroppedRecords
	return nil
}

// RestoreAggregates rebuilds standalone (finalized) aggregates from a
// snapshot — the sweep-resume path, where each completed seed's folded state
// is reloaded instead of recomputed.
func RestoreAggregates(snap *AggregatesSnapshot) (*Aggregates, error) {
	a := newAggregates(snap.Window, snap.Radius)
	if err := snap.restoreInto(a); err != nil {
		return nil, err
	}
	return a, nil
}

// ParkedCheckpoint is one reorder-parked batch of a ShardCheckpoint.
type ParkedCheckpoint struct {
	Seq       uint64             `json:"seq"`
	Reports   []core.UserReport  `json:"reports,omitempty"`
	Entries   []core.SystemEntry `json:"entries,omitempty"`
	Watermark sim.Time           `json:"watermark"`
}

// ShardCheckpoint is one stream's live state inside a StreamerCheckpoint.
type ShardCheckpoint struct {
	Testbed string `json:"testbed"`
	Node    string `json:"node"`

	Reports   []core.UserReport  `json:"reports,omitempty"`
	Entries   []core.SystemEntry `json:"entries,omitempty"`
	Stolen    sim.Time           `json:"stolen"`
	NextSeq   uint64             `json:"next_seq"`
	Parked    []ParkedCheckpoint `json:"parked,omitempty"`
	Watermark sim.Time           `json:"watermark"`
}

// RelatorCheckpoint is one PANU relator's in-flight window inside a
// StreamerCheckpoint.
type RelatorCheckpoint struct {
	Testbed string                    `json:"testbed"`
	Node    string                    `json:"node"`
	State   *coalesce.RelatorSnapshot `json:"state"`
}

// StreamerCheckpoint is the full serializable state of a live Streamer: the
// folded aggregates plus everything still in flight. A sink writes one
// atomically every few batches; restoring it (RestoreStreamer) and replaying
// each stream from NextSeq onward reproduces the uninterrupted campaign
// digit-for-digit.
type StreamerCheckpoint struct {
	Folded   sim.Time            `json:"folded"`
	Agg      *AggregatesSnapshot `json:"agg"`
	Shards   []ShardCheckpoint   `json:"shards"`
	Relators []RelatorCheckpoint `json:"relators"`
	// Trace is the fold-ordered unmasked-failure trace (only present when
	// the spec enabled TraceDepend — i.e. the streamer covers a shard of a
	// larger campaign and its partial will go through MergeAggregates).
	Trace []DependEvent `json:"trace,omitempty"`
}

// AppliedSeq reports the checkpoint's contiguous applied sequence number for
// one stream (0 when the stream has no checkpointed batches). This — not the
// live Streamer's cursor — is what a checkpointing sink may acknowledge:
// batches applied after the snapshot are not yet durable.
func (cp *StreamerCheckpoint) AppliedSeq(testbed, node string) uint64 {
	for i := range cp.Shards {
		if cp.Shards[i].Testbed == testbed && cp.Shards[i].Node == node {
			return cp.Shards[i].NextSeq - 1
		}
	}
	return 0
}

// AggSnapshot captures just the folded aggregates of a (possibly live)
// streamer, consistently with any concurrent folding — the cheap snapshot
// behind mid-campaign observability (live Table 2/3/4 over HTTP), as
// opposed to the full Checkpoint a sink persists for crash recovery.
func (s *Streamer) AggSnapshot() *AggregatesSnapshot {
	s.foldMu.Lock()
	defer s.foldMu.Unlock()
	return s.agg.Snapshot()
}

// Checkpoint captures the streamer's full live state. It can run
// concurrently with ingests: the fold lock blocks folding for the duration
// and each shard is captured atomically under its own lock, so every
// captured NextSeq is consistent with the captured pending queue (a batch
// ingested while the checkpoint is in progress either made its shard's
// snapshot completely or stays unacknowledged and will be retransmitted).
// Checkpointing a finalized streamer is an error — there is nothing left in
// flight; snapshot the finalized Aggregates instead.
func (s *Streamer) Checkpoint() (*StreamerCheckpoint, error) {
	s.foldMu.Lock()
	defer s.foldMu.Unlock()
	if s.finalized {
		return nil, fmt.Errorf("analysis: checkpoint of a finalized streamer")
	}
	cp := &StreamerCheckpoint{Folded: sim.Time(s.folded.Load()), Agg: s.agg.Snapshot()}
	if s.trace != nil {
		cp.Trace = append([]DependEvent(nil), s.trace...)
	}
	for _, sh := range s.all {
		sh.mu.Lock()
		sc := ShardCheckpoint{
			Testbed:   sh.key.testbed,
			Node:      sh.key.node,
			Reports:   append([]core.UserReport(nil), sh.reports...),
			Entries:   append([]core.SystemEntry(nil), sh.entries...),
			Stolen:    sh.stolen,
			NextSeq:   sh.nextSeq,
			Watermark: sim.Time(sh.watermark.Load()),
		}
		seqs := make([]uint64, 0, len(sh.parked))
		for q := range sh.parked {
			seqs = append(seqs, q)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, q := range seqs {
			p := sh.parked[q]
			sc.Parked = append(sc.Parked, ParkedCheckpoint{Seq: q,
				Reports:   append([]core.UserReport(nil), p.reports...),
				Entries:   append([]core.SystemEntry(nil), p.entries...),
				Watermark: p.watermark})
		}
		sh.mu.Unlock()
		cp.Shards = append(cp.Shards, sc)
	}
	for rank, keys := range s.panuKeys {
		for _, key := range keys {
			cp.Relators = append(cp.Relators, RelatorCheckpoint{
				Testbed: s.spec.Testbeds[rank].Name, Node: key.node,
				State: s.relators[key].Snapshot()})
		}
	}
	return cp, nil
}

// RestoreStreamer rebuilds a live Streamer from a checkpoint. The spec must
// be the same one the checkpointed streamer was built with (stream
// membership is validated; window/radius come from the snapshot). Senders
// then resume each stream from the checkpoint's AppliedSeq + 1.
func RestoreStreamer(spec StreamSpec, cp *StreamerCheckpoint) (*Streamer, error) {
	if cp == nil || cp.Agg == nil {
		return nil, fmt.Errorf("analysis: empty streamer checkpoint")
	}
	spec.Window, spec.Radius = cp.Agg.Window, cp.Agg.Radius
	s, err := NewStreamer(spec)
	if err != nil {
		return nil, err
	}
	if err := cp.Agg.restoreInto(s.agg); err != nil {
		return nil, err
	}
	if len(cp.Shards) != len(s.all) {
		return nil, fmt.Errorf("analysis: checkpoint has %d shards, spec declares %d",
			len(cp.Shards), len(s.all))
	}
	for i := range cp.Shards {
		sc := &cp.Shards[i]
		sh, ok := s.shards[shardKey{sc.Testbed, sc.Node}]
		if !ok {
			return nil, fmt.Errorf("analysis: checkpoint shard %s/%s not in spec", sc.Testbed, sc.Node)
		}
		if sc.NextSeq == 0 {
			return nil, fmt.Errorf("analysis: checkpoint shard %s/%s has zero sequence cursor",
				sc.Testbed, sc.Node)
		}
		sh.reports = append([]core.UserReport(nil), sc.Reports...)
		sh.entries = append([]core.SystemEntry(nil), sc.Entries...)
		sh.stolen = sc.Stolen
		sh.nextSeq = sc.NextSeq
		for _, p := range sc.Parked {
			if sh.parked == nil {
				sh.parked = make(map[uint64]parkedBatch)
			}
			sh.parked[p.Seq] = parkedBatch{reports: p.Reports, entries: p.Entries, watermark: p.Watermark}
		}
		sh.watermark.Store(int64(sc.Watermark))
	}
	restored := make(map[shardKey]bool, len(cp.Relators))
	for _, rc := range cp.Relators {
		key := shardKey{rc.Testbed, rc.Node}
		rank := -1
		for r, tb := range spec.Testbeds {
			if tb.Name == rc.Testbed {
				rank = r
			}
		}
		if rank < 0 || s.relators[key] == nil || rc.State == nil {
			return nil, fmt.Errorf("analysis: checkpoint relator %s/%s not in spec", rc.Testbed, rc.Node)
		}
		s.relators[key] = coalesce.RestoreStreamRelator(s.agg.Evidence, spec.Testbeds[rank].NAP,
			s.agg.Window, s.agg.Radius, rc.State)
		restored[key] = true
	}
	if len(restored) != len(s.relators) {
		return nil, fmt.Errorf("analysis: checkpoint restores %d relators, spec declares %d",
			len(restored), len(s.relators))
	}
	if cp.Trace != nil {
		s.trace = append([]DependEvent(nil), cp.Trace...)
	}
	s.folded.Store(int64(cp.Folded))
	return s, nil
}
