package analysis

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

// Confidence-interval views of the paper's tables, built from one table per
// sweep seed: every cell becomes mean ± 95 % CI over the seeds. The paper
// reports point estimates from a single 18-month run; a multi-seed sweep
// quantifies how tight those numbers actually are at a given duration.

// DependabilityCI is a Table 4 column with confidence intervals.
type DependabilityCI struct {
	Scenario string
	Seeds    int

	MTTF, MTTR   stats.Estimate
	Availability stats.Estimate
	CoveragePct  stats.Estimate
	MaskingPct   stats.Estimate
	Failures     stats.Estimate
}

// BuildDependabilityCI summarizes per-seed columns (all from the same
// scenario).
func BuildDependabilityCI(cols []*Dependability) *DependabilityCI {
	d := &DependabilityCI{Seeds: len(cols)}
	var mttf, mttr, avail, cover, mask, fails stats.Summary
	for _, c := range cols {
		d.Scenario = c.Scenario
		mttf.Add(c.MTTF)
		mttr.Add(c.MTTR)
		avail.Add(c.Availability)
		cover.Add(c.CoveragePct)
		mask.Add(c.MaskingPct)
		fails.Add(float64(c.Failures))
	}
	d.MTTF, d.MTTR = mttf.CI95(), mttr.CI95()
	d.Availability = avail.CI95()
	d.CoveragePct, d.MaskingPct = cover.CI95(), mask.CI95()
	d.Failures = fails.CI95()
	return d
}

// Render formats the column, one metric per line.
func (d *DependabilityCI) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d seeds)\n", d.Scenario, d.Seeds)
	fmt.Fprintf(&b, "  MTTF (s)       %s\n", d.MTTF.Format("%.2f"))
	fmt.Fprintf(&b, "  MTTR (s)       %s\n", d.MTTR.Format("%.2f"))
	fmt.Fprintf(&b, "  Availability   %s\n", d.Availability.Format("%.4f"))
	fmt.Fprintf(&b, "  %% Coverage     %s\n", d.CoveragePct.Format("%.2f"))
	fmt.Fprintf(&b, "  %% Masking      %s\n", d.MaskingPct.Format("%.2f"))
	fmt.Fprintf(&b, "  failures       %s\n", d.Failures.Format("%.0f"))
	return b.String()
}

// Table4CI is the four-scenario dependability comparison with CIs.
type Table4CI struct {
	Columns []*DependabilityCI
}

// Render formats the table in the paper's row layout.
func (t *Table4CI) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%26s", c.Scenario)
	}
	b.WriteString("\n")
	row := func(label string, get func(*DependabilityCI) string) {
		fmt.Fprintf(&b, "%-16s", label)
		for _, c := range t.Columns {
			fmt.Fprintf(&b, "%26s", get(c))
		}
		b.WriteString("\n")
	}
	row("MTTF (s)", func(d *DependabilityCI) string { return d.MTTF.Format("%.2f") })
	row("MTTR (s)", func(d *DependabilityCI) string { return d.MTTR.Format("%.2f") })
	row("Availability", func(d *DependabilityCI) string { return d.Availability.Format("%.4f") })
	row("% Coverage", func(d *DependabilityCI) string { return d.CoveragePct.Format("%.2f") })
	row("% Masking", func(d *DependabilityCI) string { return d.MaskingPct.Format("%.2f") })
	row("failures", func(d *DependabilityCI) string { return d.Failures.Format("%.0f") })
	return b.String()
}

// Table2CI is the error-failure relationship table with CIs on the combined
// (local + NAP) shares.
type Table2CI struct {
	Seeds int
	// Rows: per failure, per source, CI of the combined row share (%).
	Rows map[core.UserFailure]map[core.SysSource]stats.Estimate
	// Tot: CI of each failure's share of all occurrences (%).
	Tot map[core.UserFailure]stats.Estimate
	// SourceTotals: CI of each source's combined share of all evidence (%).
	SourceTotals map[core.SysSource]stats.Estimate
}

// BuildTable2CI summarizes per-seed Table 2 instances.
func BuildTable2CI(tables []*Table2) *Table2CI {
	out := &Table2CI{
		Seeds:        len(tables),
		Rows:         make(map[core.UserFailure]map[core.SysSource]stats.Estimate),
		Tot:          make(map[core.UserFailure]stats.Estimate),
		SourceTotals: make(map[core.SysSource]stats.Estimate),
	}
	for _, f := range core.UserFailures() {
		cells := make(map[core.SysSource]stats.Estimate)
		for _, src := range core.SysSources() {
			var s stats.Summary
			for _, t := range tables {
				s.Add(t.RowShare(f, src))
			}
			cells[src] = s.CI95()
		}
		out.Rows[f] = cells
		var tot stats.Summary
		for _, t := range tables {
			tot.Add(t.Tot[f])
		}
		out.Tot[f] = tot.CI95()
	}
	for _, src := range core.SysSources() {
		var s stats.Summary
		for _, t := range tables {
			s.Add(t.SourceShare(src))
		}
		out.SourceTotals[src] = s.CI95()
	}
	return out
}

// Render formats the CI table in the paper's layout (combined loc+NAP
// shares).
func (t *Table2CI) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s", fmt.Sprintf("User Level Failure (%d seeds)", t.Seeds))
	for _, src := range core.SysSources() {
		fmt.Fprintf(&b, "%16s", src)
	}
	fmt.Fprintf(&b, "%14s\n", "TOT")
	for _, f := range core.UserFailures() {
		fmt.Fprintf(&b, "%-26s", f)
		for _, src := range core.SysSources() {
			fmt.Fprintf(&b, "%16s", t.Rows[f][src].Format("%.1f"))
		}
		fmt.Fprintf(&b, "%14s\n", t.Tot[f].Format("%.1f"))
	}
	fmt.Fprintf(&b, "%-26s", "Total")
	for _, src := range core.SysSources() {
		fmt.Fprintf(&b, "%16s", t.SourceTotals[src].Format("%.1f"))
	}
	b.WriteString("\n")
	return b.String()
}

// Table3CI is the SIRA effectiveness table with CIs.
type Table3CI struct {
	Seeds    int
	Rows     map[core.UserFailure][core.NumRecoveryActions]stats.Estimate
	TotalRow [core.NumRecoveryActions]stats.Estimate
}

// BuildTable3CI summarizes per-seed Table 3 instances.
func BuildTable3CI(tables []*Table3) *Table3CI {
	out := &Table3CI{
		Seeds: len(tables),
		Rows:  make(map[core.UserFailure][core.NumRecoveryActions]stats.Estimate),
	}
	for _, f := range core.UserFailures() {
		var row [core.NumRecoveryActions]stats.Estimate
		for i := 0; i < core.NumRecoveryActions; i++ {
			var s stats.Summary
			for _, t := range tables {
				s.Add(t.Rows[f][i])
			}
			row[i] = s.CI95()
		}
		out.Rows[f] = row
	}
	for i := 0; i < core.NumRecoveryActions; i++ {
		var s stats.Summary
		for _, t := range tables {
			s.Add(t.TotalRow[i])
		}
		out.TotalRow[i] = s.CI95()
	}
	return out
}

// Render formats the CI table in the paper's layout.
func (t *Table3CI) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s", fmt.Sprintf("User Level Failure (%d seeds)", t.Seeds))
	for _, a := range core.RecoveryActions() {
		fmt.Fprintf(&b, "%22s", a)
	}
	b.WriteString("\n")
	for _, f := range core.UserFailures() {
		if f == core.UFDataMismatch {
			fmt.Fprintf(&b, "%-26s%s\n", f, "  (no recovery defined)")
			continue
		}
		fmt.Fprintf(&b, "%-26s", f)
		row := t.Rows[f]
		for i := range core.RecoveryActions() {
			fmt.Fprintf(&b, "%22s", row[i].Format("%.1f"))
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-26s", "Total")
	for i := range core.RecoveryActions() {
		fmt.Fprintf(&b, "%22s", t.TotalRow[i].Format("%.1f"))
	}
	b.WriteString("\n")
	return b.String()
}

// TaxonomyCI summarizes the taxonomy/survival plane over sweep seeds:
// per-phase failure counts, the dynamic-availability share, and the mean
// failure interarrival, each as mean ± 95 % CI (PR 10).
type TaxonomyCI struct {
	Seeds int
	// Failures estimates the per-seed unmasked failure count per phase.
	Failures map[core.FailurePhase]stats.Estimate
	// DynamicPct estimates the dynamic-availability share of unmasked
	// failures (%).
	DynamicPct stats.Estimate
	// MeanUptime estimates the mean failure interarrival in seconds.
	MeanUptime stats.Estimate
}

// BuildTaxonomyCI summarizes per-seed taxonomy/survival accumulators
// (slices aligned by seed).
func BuildTaxonomyCI(taxes []*TaxonomyAccum, survs []*SurvivalAccum) *TaxonomyCI {
	out := &TaxonomyCI{Seeds: len(taxes),
		Failures: make(map[core.FailurePhase]stats.Estimate)}
	for _, p := range core.FailurePhases() {
		var s stats.Summary
		for _, t := range taxes {
			s.Add(float64(t.Failures(p)))
		}
		out.Failures[p] = s.CI95()
	}
	var dyn, up stats.Summary
	for i, t := range taxes {
		total, dynamic := 0, 0
		for p := range t.Counts {
			for v, n := range t.Counts[p] {
				total += n
				if core.TransienceVerdict(v) == core.VerdictDynamicAvailability {
					dynamic += n
				}
			}
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(dynamic) / float64(total)
		}
		dyn.Add(pct)
		up.Add(survs[i].MeanUptimeSeconds())
	}
	out.DynamicPct = dyn.CI95()
	out.MeanUptime = up.CI95()
	return out
}

// Render formats the taxonomy CI summary, one metric per line.
func (t *TaxonomyCI) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "taxonomy (%d seeds)\n", t.Seeds)
	for _, p := range core.FailurePhases() {
		fmt.Fprintf(&b, "  %-10s failures  %s\n", p, t.Failures[p].Format("%.1f"))
	}
	fmt.Fprintf(&b, "  dynamic-availability share  %s %%\n", t.DynamicPct.Format("%.1f"))
	fmt.Fprintf(&b, "  mean failure interarrival   %s s\n", t.MeanUptime.Format("%.1f"))
	return b.String()
}

// ScalarsCI is the §6 scalar findings with CIs.
type ScalarsCI struct {
	Seeds                int
	RandomSharePct       stats.Estimate
	IdleBeforeFailedMean stats.Estimate
	IdleBeforeCleanMean  stats.Estimate
	DistanceShares       map[float64]stats.Estimate
	UserReports          stats.Estimate
	SystemEntries        stats.Estimate
}

// BuildScalarsCI summarizes per-seed scalar findings.
func BuildScalarsCI(all []*Scalars) *ScalarsCI {
	out := &ScalarsCI{Seeds: len(all), DistanceShares: make(map[float64]stats.Estimate)}
	var share, failed, clean, users, sys stats.Summary
	dists := make(map[float64]*stats.Summary)
	for _, s := range all {
		share.Add(s.RandomSharePct)
		failed.Add(s.IdleBeforeFailedMean)
		clean.Add(s.IdleBeforeCleanMean)
		users.Add(float64(s.UserReports))
		sys.Add(float64(s.SystemEntries))
		for d := range s.DistanceShares {
			if dists[d] == nil {
				dists[d] = &stats.Summary{}
			}
		}
	}
	// Every seed votes on every distance — a seed that never saw a distance
	// contributes a 0 % share, not an absence (which would bias the mean up
	// and shrink N for the rarest distances).
	for d, sum := range dists {
		for _, s := range all {
			sum.Add(s.DistanceShares[d])
		}
	}
	out.RandomSharePct = share.CI95()
	out.IdleBeforeFailedMean, out.IdleBeforeCleanMean = failed.CI95(), clean.CI95()
	out.UserReports, out.SystemEntries = users.CI95(), sys.CI95()
	for d, s := range dists {
		out.DistanceShares[d] = s.CI95()
	}
	return out
}
