package analysis

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Table3 is the user-failure → SIRA effectiveness table: the percentage of
// occurrences of each failure cleared by each recovery action.
type Table3 struct {
	// Rows maps failure → per-action success share (%), indexed by
	// RecoveryAction ordinal - 1.
	Rows map[core.UserFailure][core.NumRecoveryActions]float64
	// Counts is the per-failure denominator (recovered occurrences).
	Counts map[core.UserFailure]int
	// TotalRow aggregates all failures.
	TotalRow [core.NumRecoveryActions]float64
}

// Table3Counts is the streaming-friendly accumulator behind Table 3: raw
// recovery-success counts that fold one report at a time and finalize into
// the percentage table. Integer counts make shard merges and the
// streaming/retained equivalence exact.
type Table3Counts struct {
	Rows   map[core.UserFailure][core.NumRecoveryActions]int
	Totals [core.NumRecoveryActions]int
	Grand  int
}

// NewTable3Counts allocates the accumulator.
func NewTable3Counts() *Table3Counts {
	return &Table3Counts{Rows: make(map[core.UserFailure][core.NumRecoveryActions]int)}
}

// Add folds one report (no-op unless it is an unmasked, recovered failure
// cleared by a defined SIRA).
func (c *Table3Counts) Add(r *core.UserReport) {
	if r.Masked || !r.Recovered || !r.Recovery.Valid() {
		return
	}
	row := c.Rows[r.Failure]
	row[int(r.Recovery)-1]++
	c.Rows[r.Failure] = row
	c.Totals[int(r.Recovery)-1]++
	c.Grand++
}

// Table computes the percentage table from the accumulated counts.
func (c *Table3Counts) Table() *Table3 {
	t := &Table3{
		Rows:   make(map[core.UserFailure][core.NumRecoveryActions]float64),
		Counts: make(map[core.UserFailure]int),
	}
	for f, row := range c.Rows {
		n := 0
		for _, v := range row {
			n += v
		}
		t.Counts[f] = n
		var pct [core.NumRecoveryActions]float64
		if n > 0 {
			for i, v := range row {
				pct[i] = float64(v) / float64(n) * 100
			}
		}
		t.Rows[f] = pct
	}
	if c.Grand > 0 {
		for i, v := range c.Totals {
			t.TotalRow[i] = float64(v) / float64(c.Grand) * 100
		}
	}
	return t
}

// BuildTable3 computes the effectiveness matrix from (unmasked, recovered)
// failure reports produced under the SIRA cascade.
func BuildTable3(reports []core.UserReport) *Table3 {
	counts := NewTable3Counts()
	for i := range reports {
		counts.Add(&reports[i])
	}
	return counts.Table()
}

// Share reports the success share of one action for one failure.
func (t *Table3) Share(f core.UserFailure, a core.RecoveryAction) float64 {
	if !a.Valid() {
		return 0
	}
	return t.Rows[f][int(a)-1]
}

// ExpensiveShare reports the share of a failure's recoveries that needed
// application restart or worse (the paper's severity argument for
// "Connect failed": 84.6 %).
func (t *Table3) ExpensiveShare(f core.UserFailure) float64 {
	row := t.Rows[f]
	sum := 0.0
	for a := core.RAAppRestart; a <= core.RAMultiSystemReboot; a++ {
		sum += row[int(a)-1]
	}
	return sum
}

// MeanSeverity reports the mean severity (ordinal of the clearing SIRA)
// for a failure type.
func (t *Table3) MeanSeverity(f core.UserFailure) float64 {
	row := t.Rows[f]
	mean := 0.0
	for i, pct := range row {
		mean += float64(i+1) * pct / 100
	}
	return mean
}

// Render formats the table in the paper's layout.
func (t *Table3) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s", "User Level Failure")
	for _, a := range core.RecoveryActions() {
		fmt.Fprintf(&b, "%22s", a)
	}
	b.WriteString("\n")
	for _, f := range core.UserFailures() {
		if f == core.UFDataMismatch {
			fmt.Fprintf(&b, "%-26s%s\n", f, "  (no recovery defined)")
			continue
		}
		fmt.Fprintf(&b, "%-26s", f)
		row := t.Rows[f]
		for i := range core.RecoveryActions() {
			fmt.Fprintf(&b, "%22.1f", row[i])
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-26s", "Total")
	for i := range core.RecoveryActions() {
		fmt.Fprintf(&b, "%22.1f", t.TotalRow[i])
	}
	b.WriteString("\n")
	return b.String()
}
