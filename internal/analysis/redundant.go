package analysis

import "fmt"

// The paper's closing recommendation for permanently deployed piconets
// (wireless robot control, aircraft maintenance): "extensive fault tolerance
// techniques should be adopted, such as using redundant, overlapped
// piconets, other than SIRAs and masking." This file evaluates that
// proposal: a PANU covered by two overlapping piconets is down only while
// BOTH are simultaneously unavailable.

// RedundantDeployment evaluates a 1-out-of-2 redundant piconet deployment
// from the dependability of its two (independent) piconets.
type RedundantDeployment struct {
	A, B *Dependability

	// Failover is the client-side switchover time in seconds when the
	// active piconet fails while the standby is up; it bounds the outage
	// the user sees in the common case.
	FailoverSeconds float64
}

// Availability reports the steady-state availability of the redundant pair:
// the system is unavailable only when both piconets are down at once, plus
// the (brief) failover transitions. With independent alternating-renewal
// piconets, simultaneous unavailability is the product of the per-piconet
// unavailabilities.
func (r *RedundantDeployment) Availability() float64 {
	if r.A == nil || r.B == nil {
		return 0
	}
	bothDown := (1 - r.A.Availability) * (1 - r.B.Availability)
	// Failover outages: every failure of the active piconet costs the
	// switchover time instead of its full MTTR.
	failoverLoss := 0.0
	if r.A.MTTF+r.A.MTTR > 0 {
		failoverLoss = r.FailoverSeconds / (r.A.MTTF + r.A.MTTR)
	}
	avail := 1 - bothDown - failoverLoss
	if avail < 0 {
		return 0
	}
	return avail
}

// MTBSF reports the mean time between simultaneous failures — the expected
// interval between windows in which both piconets are down at once, the
// system-level failure of the redundant deployment. For independent
// piconets with exponential-ish failure processes, a piconet-B outage
// overlaps a piconet-A outage with probability MTTR_B/(MTTF_B+MTTR_B), so
// simultaneous failures occur at rate 1/MTTF_A times that (plus the
// symmetric term).
func (r *RedundantDeployment) MTBSF() float64 {
	if r.A == nil || r.B == nil || r.A.MTTF == 0 || r.B.MTTF == 0 {
		return 0
	}
	uB := r.B.MTTR / (r.B.MTTF + r.B.MTTR)
	uA := r.A.MTTR / (r.A.MTTF + r.A.MTTR)
	rate := uB/r.A.MTTF + uA/r.B.MTTF
	if rate == 0 {
		return 0
	}
	return 1 / rate
}

// Improvement reports the availability gain over the better single piconet.
func (r *RedundantDeployment) Improvement() float64 {
	best := r.A.Availability
	if r.B.Availability > best {
		best = r.B.Availability
	}
	if best == 0 {
		return 0
	}
	return (r.Availability() - best) / best * 100
}

// Render summarises the deployment.
func (r *RedundantDeployment) Render() string {
	return fmt.Sprintf(
		"piconet A: avail %.4f (MTTF %.0fs, MTTR %.0fs)\n"+
			"piconet B: avail %.4f (MTTF %.0fs, MTTR %.0fs)\n"+
			"redundant 1-of-2: avail %.5f (%+.2f%% vs best single), MTBSF %.0fs (%.1fh)\n",
		r.A.Availability, r.A.MTTF, r.A.MTTR,
		r.B.Availability, r.B.MTTF, r.B.MTTR,
		r.Availability(), r.Improvement(), r.MTBSF(), r.MTBSF()/3600)
}
