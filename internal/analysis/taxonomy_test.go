package analysis

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// The taxonomy-plane property suite: the merge laws that make the
// accumulators safe to shard (regroup invariance, empty-shard identity),
// the Kaplan-Meier estimator's invariants (monotone non-increasing, exact
// on a hand-computed case), and the snapshot round-trip that lets a sink
// checkpoint mid-campaign without bending any of them.

// synthTaxReport builds one synthetic failure report for stream
// (testbed, node) at instant at.
func synthTaxReport(testbed, node string, at sim.Time, phase core.FailurePhase,
	verdict core.TransienceVerdict, masked, recovered bool, ttr sim.Time) core.UserReport {
	return core.UserReport{
		At: at, Testbed: testbed, Node: node,
		Failure: core.UFConnectFailed, Masked: masked,
		Recovered: recovered, TTR: ttr,
		Phase: phase, Verdict: verdict,
	}
}

// synthTaxStreams generates a deterministic multi-stream failure history:
// per-stream time-ordered reports covering every phase/verdict combination,
// a sprinkling of masked and unrecovered records, and (when hostile) tags
// outside the declared enum ranges.
func synthTaxStreams(seed int64, streams, perStream int, hostile bool) map[[2]string][]core.UserReport {
	rng := rand.New(rand.NewSource(seed))
	out := make(map[[2]string][]core.UserReport, streams)
	for i := 0; i < streams; i++ {
		key := [2]string{"random", string(rune('a' + i))}
		at := sim.Time(0)
		var rs []core.UserReport
		for j := 0; j < perStream; j++ {
			at += sim.Time(1+rng.Intn(900)) * sim.Second
			phase := core.FailurePhase(rng.Intn(int(core.NumFailurePhases)))
			verdict := core.TransienceVerdict(rng.Intn(int(core.NumTransienceVerdicts)))
			if hostile && rng.Intn(4) == 0 {
				phase = core.FailurePhase(200 + rng.Intn(50))
				verdict = core.TransienceVerdict(200 + rng.Intn(50))
			}
			masked := rng.Intn(5) == 0
			recovered := !masked && rng.Intn(4) != 0
			var ttr sim.Time
			if recovered {
				ttr = sim.Time(rng.Intn(120)) * sim.Second
			}
			rs = append(rs, synthTaxReport(key[0], key[1], at, phase, verdict, masked, recovered, ttr))
		}
		out[key] = rs
	}
	return out
}

// foldTaxonomy folds the given streams into fresh accumulators, registering
// every stream first (the Observe step NewStreamer performs).
func foldTaxonomy(streams map[[2]string][]core.UserReport, keys [][2]string) (*TaxonomyAccum, *SurvivalAccum) {
	tax, surv := NewTaxonomyAccum(), NewSurvivalAccum()
	for _, key := range keys {
		tax.Nodes++
		surv.Observe(key[0], key[1])
	}
	for _, key := range keys {
		rs := streams[key]
		for i := range rs {
			tax.Add(&rs[i])
			surv.Add(key[0], key[1], &rs[i])
		}
	}
	return tax, surv
}

// TestTaxonomyMergeRegroupInvariance is the sharding law: partitioning the
// node streams into shards, folding each shard independently and merging
// the partials must reproduce the unsharded accumulators exactly — for any
// grouping, including groupings with empty shards, and including records
// with out-of-range tags (hostile producers collapse into the unknown
// bucket, not into divergence).
func TestTaxonomyMergeRegroupInvariance(t *testing.T) {
	streams := synthTaxStreams(42, 6, 40, true)
	keys := make([][2]string, 0, len(streams))
	for i := 0; i < 6; i++ {
		keys = append(keys, [2]string{"random", string(rune('a' + i))})
	}
	wantTax, wantSurv := foldTaxonomy(streams, keys)

	groupings := [][][]int{
		{{0, 1, 2, 3, 4, 5}},
		{{0, 1, 2}, {3, 4, 5}},
		{{5, 0}, {4, 1}, {3, 2}},
		{{0}, {1}, {2}, {3}, {4}, {5}},
		{{2, 4, 0, 5, 1, 3}},
		{{0, 1, 2, 3, 4, 5}, {}}, // empty shard is a merge identity
	}
	for gi, grouping := range groupings {
		tax, surv := NewTaxonomyAccum(), NewSurvivalAccum()
		for _, shard := range grouping {
			shardKeys := make([][2]string, 0, len(shard))
			for _, idx := range shard {
				shardKeys = append(shardKeys, keys[idx])
			}
			st, ss := foldTaxonomy(streams, shardKeys)
			tax.Merge(st)
			surv.Merge(ss)
		}
		if !reflect.DeepEqual(tax, wantTax) {
			t.Errorf("grouping %d: merged TaxonomyAccum diverges:\n got %+v\nwant %+v", gi, tax, wantTax)
		}
		if !reflect.DeepEqual(surv, wantSurv) {
			t.Errorf("grouping %d: merged SurvivalAccum diverges", gi)
		}
		// The rendered outputs must agree too (they are pure functions of
		// the accumulator, but the render path is what ships).
		horizon := 12 * sim.Hour
		if got, want := surv.Curve(horizon).Render(), wantSurv.Curve(horizon).Render(); got != want {
			t.Errorf("grouping %d: merged survival curve diverges:\n%s\nvs\n%s", gi, got, want)
		}
		if got, want := tax.Table(horizon).Render(), wantTax.Table(horizon).Render(); got != want {
			t.Errorf("grouping %d: merged taxonomy table diverges:\n%s\nvs\n%s", gi, got, want)
		}
	}
}

// TestTaxonomyAccumClassification pins the Add contract on the edge
// records: masked reports count only toward the masked column, unrecovered
// reports contribute no repair time, and out-of-range tags collapse into
// the unknown bucket.
func TestTaxonomyAccumClassification(t *testing.T) {
	tax := NewTaxonomyAccum()
	tax.Nodes = 1
	masked := synthTaxReport("random", "a", sim.Minute, core.PhaseOpen,
		core.VerdictTransient, true, false, 0)
	tax.Add(&masked)
	if tax.Masked[core.PhaseOpen] != 1 || tax.Failures(core.PhaseOpen) != 0 {
		t.Errorf("masked report leaked into the failure counts: %+v", tax)
	}
	unrec := synthTaxReport("random", "a", 2*sim.Minute, core.PhaseSend,
		core.VerdictDynamicAvailability, false, false, 0)
	tax.Add(&unrec)
	if tax.Recovered[core.PhaseSend] != 0 || tax.TTRSum[core.PhaseSend] != 0 {
		t.Errorf("unrecovered report charged repair time: %+v", tax)
	}
	if tax.Failures(core.PhaseSend) != 1 {
		t.Errorf("unrecovered report not counted as a failure: %+v", tax)
	}
	hostile := synthTaxReport("random", "a", 3*sim.Minute, core.FailurePhase(250),
		core.TransienceVerdict(250), false, true, 5*sim.Second)
	tax.Add(&hostile)
	if tax.Counts[core.PhaseUnknown][core.VerdictUnknown] != 1 {
		t.Errorf("out-of-range tags did not collapse to the unknown bucket: %+v", tax.Counts)
	}
	table := tax.Table(sim.Hour)
	if table.Total.Failures != 2 || table.Total.Masked != 1 {
		t.Errorf("table totals diverge: %+v", table.Total)
	}
}

// TestSurvivalCurveHandComputed pins the Kaplan-Meier estimator on a case
// small enough to verify by hand. Three nodes over a 600 s horizon:
//
//	a fails at 100 s (event, bin [0,120)), then stays up 500 s (censored,
//	  bin [480,600));
//	b fails at 300 s (event, bin [240,360)), then stays up 300 s
//	  (censored, bin [240,360));
//	c never fails (censored at 600 s, bin [600,720)).
//
// Risk set starts at 5 intervals. S steps 1 -> 4/5 at the first event and
// 4/5 -> 3/5 at the second; censoring alone never moves it.
func TestSurvivalCurveHandComputed(t *testing.T) {
	s := NewSurvivalAccum()
	for _, n := range []string{"a", "b", "c"} {
		s.Observe("random", n)
	}
	ra := synthTaxReport("random", "a", 100*sim.Second, core.PhaseOpen, core.VerdictTransient, false, true, sim.Second)
	rb := synthTaxReport("random", "b", 300*sim.Second, core.PhaseSend, core.VerdictTransient, false, true, sim.Second)
	s.Add("random", "a", &ra)
	s.Add("random", "b", &rb)

	curve := s.Curve(600 * sim.Second)
	if curve.Total != 5 {
		t.Fatalf("curve totals %d intervals, want 5", curve.Total)
	}
	want := []SurvivalPoint{
		{UpToSeconds: 120, Events: 1, Censored: 0, AtRisk: 5, S: 0.8},
		{UpToSeconds: 360, Events: 1, Censored: 1, AtRisk: 4, S: 0.6},
		{UpToSeconds: 600, Events: 0, Censored: 1, AtRisk: 2, S: 0.6},
		{UpToSeconds: 720, Events: 0, Censored: 1, AtRisk: 1, S: 0.6},
	}
	if len(curve.Points) != len(want) {
		t.Fatalf("curve has %d points, want %d: %+v", len(curve.Points), len(want), curve.Points)
	}
	for i, p := range curve.Points {
		w := want[i]
		if p.UpToSeconds != w.UpToSeconds || p.Events != w.Events ||
			p.Censored != w.Censored || p.AtRisk != w.AtRisk ||
			math.Abs(p.S-w.S) > 1e-12 {
			t.Errorf("point %d = %+v, want %+v", i, p, w)
		}
	}
	// Mean interarrival counts only closed (event) intervals: (100+300)/2.
	if got := s.MeanUptimeSeconds(); math.Abs(got-200) > 1e-12 {
		t.Errorf("mean uptime %.3f s, want 200", got)
	}
	// Curve is non-mutating: the same call must repeat byte-identically.
	if a, b := curve.Render(), s.Curve(600*sim.Second).Render(); a != b {
		t.Errorf("Curve mutated the accumulator:\n%s\nvs\n%s", a, b)
	}
}

// TestSurvivalCurveMonotone is the estimator's structural invariant on
// random histories: S(t) starts at or below 1, never increases, stays
// non-negative, and the at-risk column drains by exactly the events plus
// censored of each row.
func TestSurvivalCurveMonotone(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		streams := synthTaxStreams(seed, 5, 30, false)
		keys := make([][2]string, 0, 5)
		for i := 0; i < 5; i++ {
			keys = append(keys, [2]string{"random", string(rune('a' + i))})
		}
		_, surv := foldTaxonomy(streams, keys)
		curve := surv.Curve(10 * sim.Hour)
		prevS, atRisk := 1.0, curve.Total
		for i, p := range curve.Points {
			if p.S > prevS+1e-12 || p.S < 0 {
				t.Fatalf("seed %d point %d: S %.9f after %.9f — not monotone non-increasing",
					seed, i, p.S, prevS)
			}
			if p.AtRisk != atRisk {
				t.Fatalf("seed %d point %d: at-risk %d, want %d", seed, i, p.AtRisk, atRisk)
			}
			atRisk -= p.Events + p.Censored
			prevS = p.S
		}
		if atRisk != 0 {
			t.Fatalf("seed %d: %d intervals never left the risk set", seed, atRisk)
		}
	}
}

// TestTaxonomySnapshotRoundTripMidStream checkpoints the accumulators in
// the middle of a synthetic campaign (through JSON, as the sink checkpoint
// does), restores them, feeds both the original and the restored copy the
// identical remainder and requires bit-identical accumulators and rendered
// outputs — the crash/restore path must not bend the survival plane.
func TestTaxonomySnapshotRoundTripMidStream(t *testing.T) {
	streams := synthTaxStreams(7, 4, 30, true)
	keys := [][2]string{
		{"random", "a"}, {"random", "b"}, {"random", "c"}, {"random", "d"},
	}
	tax, surv := NewTaxonomyAccum(), NewSurvivalAccum()
	for _, key := range keys {
		tax.Nodes++
		surv.Observe(key[0], key[1])
	}
	// First half.
	for _, key := range keys {
		rs := streams[key]
		for i := 0; i < len(rs)/2; i++ {
			tax.Add(&rs[i])
			surv.Add(key[0], key[1], &rs[i])
		}
	}
	// Checkpoint through the JSON wire format.
	blob, err := json.Marshal(struct {
		Tax  *TaxonomyAccum
		Surv *SurvivalSnapshot
	}{tax.Clone(), surv.Snapshot()})
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Tax  *TaxonomyAccum
		Surv *SurvivalSnapshot
	}
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatal(err)
	}
	tax2 := snap.Tax
	surv2, err := RestoreSurvivalAccum(snap.Surv)
	if err != nil {
		t.Fatal(err)
	}
	// Second half into both.
	for _, key := range keys {
		rs := streams[key]
		for i := len(rs) / 2; i < len(rs); i++ {
			tax.Add(&rs[i])
			tax2.Add(&rs[i])
			surv.Add(key[0], key[1], &rs[i])
			surv2.Add(key[0], key[1], &rs[i])
		}
	}
	if !reflect.DeepEqual(tax, tax2) {
		t.Errorf("restored TaxonomyAccum diverges:\n got %+v\nwant %+v", tax2, tax)
	}
	if !reflect.DeepEqual(surv, surv2) {
		t.Errorf("restored SurvivalAccum diverges:\n got %+v\nwant %+v", surv2, surv)
	}
	horizon := 10 * sim.Hour
	if a, b := surv.Curve(horizon).Render(), surv2.Curve(horizon).Render(); a != b {
		t.Errorf("restored survival curve diverges:\n%s\nvs\n%s", b, a)
	}
	if a, b := tax.Table(horizon).Render(), tax2.Table(horizon).Render(); a != b {
		t.Errorf("restored taxonomy table diverges:\n%s\nvs\n%s", b, a)
	}
}

// TestSurvivalCensorIdempotent pins the piconet-fold contract: Censor
// closes every open interval at the horizon, a second Censor is a no-op,
// and two censored same-roster accumulators merge without key collisions —
// the property the scatternet fold relies on when piconets share a roster.
func TestSurvivalCensorIdempotent(t *testing.T) {
	build := func() *SurvivalAccum {
		s := NewSurvivalAccum()
		s.Observe("random", "a")
		s.Observe("random", "b")
		r := synthTaxReport("random", "a", 100*sim.Second, core.PhaseOpen,
			core.VerdictTransient, false, true, sim.Second)
		s.Add("random", "a", &r)
		return s
	}
	horizon := 600 * sim.Second
	a := build()
	a.Censor(horizon)
	if len(a.LastFail) != 0 {
		t.Fatalf("Censor left %d open streams", len(a.LastFail))
	}
	once := a.Curve(horizon).Render()
	a.Censor(horizon)
	if got := a.Curve(horizon).Render(); got != once {
		t.Errorf("second Censor changed the curve:\n%s\nvs\n%s", got, once)
	}
	// Same roster in a second "piconet": merge must work after censoring
	// (and would collide on open-stream keys without it).
	b := build()
	b.Censor(horizon)
	a.Merge(b)
	if got := a.Curve(horizon).Total; got != 6 {
		t.Errorf("merged censored accumulators total %d intervals, want 6", got)
	}
}
