package analysis

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// The checkpoint round-trip suite: a Streamer serialized mid-campaign and
// restored must fold the remainder of its streams into aggregates
// bit-identical to a never-interrupted run — including shards that never
// received a record, batches applied after the checkpoint (a "mid-batch
// kill": applied but unacknowledged work that gets retransmitted), and
// reorder-parked batches captured inside the checkpoint.

// synthStream describes one generated stream.
type synthStream struct {
	testbed, node string
	isNAP         bool
	quiet         bool // ships watermark-only batches (the empty-shard case)
}

// synthStreams lists the generated campaign's streams: two testbeds, one
// silent PANU.
func synthStreams() []synthStream {
	return []synthStream{
		{testbed: "tbA", node: "p1"},
		{testbed: "tbA", node: "p2"},
		{testbed: "tbA", node: "napA", isNAP: true},
		{testbed: "tbB", node: "p3"},
		{testbed: "tbB", node: "quiet", quiet: true},
		{testbed: "tbB", node: "napB", isNAP: true},
	}
}

// synthSpec declares the generated campaign for a Streamer.
func synthSpec() StreamSpec {
	return StreamSpec{Testbeds: []TestbedSpec{
		{Name: "tbA", Kind: core.WLRandom, NAP: "napA", PANUs: []string{"p1", "p2"}},
		{Name: "tbB", Kind: core.WLRealistic, NAP: "napB", PANUs: []string{"p3", "quiet"}},
	}}
}

// synthBatch is one generated shipment.
type synthBatch struct {
	testbed, node string
	reports       []core.UserReport
	entries       []core.SystemEntry
	watermark     sim.Time
	seq           uint64
}

// synthBatches generates a deterministic batch sequence: hours hourly
// flushes per stream, every stream's records time-ordered, watermarks at
// whole hours. The record mix exercises every aggregate (failures with and
// without recovery, masked reports, packet losses with ages, per-app and
// per-distance counts, NAP- and PANU-side entries).
func synthBatches(hours int) []synthBatch {
	rng := uint64(0x9E3779B97F4A7C15)
	next := func(mod uint64) uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return (rng >> 33) % mod
	}
	streams := synthStreams()
	seqs := make(map[string]uint64)
	var out []synthBatch
	for h := 1; h <= hours; h++ {
		wm := sim.Time(h) * sim.Hour
		start := wm - sim.Hour
		for _, st := range streams {
			key := st.testbed + "/" + st.node
			seqs[key]++
			sb := synthBatch{testbed: st.testbed, node: st.node, watermark: wm, seq: seqs[key]}
			if !st.quiet {
				t := start
				for i, n := 0, int(next(4)); i < n; i++ {
					t += sim.Time(next(uint64(sim.Hour / 4)))
					if t >= wm {
						break
					}
					sb.entries = append(sb.entries, core.SystemEntry{
						At: t, Testbed: st.testbed, Node: st.node,
						Source: core.SysSource(1 + next(7)),
						Code:   core.ErrorCode(next(5)),
						ConnID: next(100),
					})
				}
				if !st.isNAP {
					t = start + sim.Second
					for i, m := 0, int(next(3)); i < m; i++ {
						t += sim.Time(next(uint64(sim.Hour / 3)))
						if t >= wm {
							break
						}
						failures := core.UserFailures()
						r := core.UserReport{
							At: t, Testbed: st.testbed, Node: st.node,
							Failure:   failures[next(uint64(len(failures)))],
							Workload:  core.WLRandom,
							SentPkts:  int(next(12000)),
							RecvdPkts: int(next(12000)),
							DistanceM: []float64{1, 5, 10}[next(3)],
							ConnID:    next(100),
						}
						if st.testbed == "tbB" {
							r.Workload = core.WLRealistic
							r.App = core.AppKind(1 + next(5))
						}
						if next(5) == 0 {
							r.Masked = true
						}
						if next(3) > 0 {
							r.Recovered = true
							r.Recovery = core.RecoveryAction(1 + next(uint64(core.NumRecoveryActions)))
							r.TTR = sim.Time(1+next(20)) * sim.Second
						}
						sb.reports = append(sb.reports, r)
					}
				}
			}
			out = append(out, sb)
		}
	}
	return out
}

// feed ingests batches in order, failing the test on any ingest error.
func feed(t *testing.T, s *Streamer, batches []synthBatch) {
	t.Helper()
	for _, b := range batches {
		if err := s.IngestSeq(b.testbed, b.node, b.reports, b.entries, b.watermark, b.seq); err != nil {
			t.Fatalf("ingest %s/%s seq %d: %v", b.testbed, b.node, b.seq, err)
		}
	}
}

// offer re-delivers batches through the tolerant path (retransmission).
func offer(t *testing.T, s *Streamer, batches []synthBatch) {
	t.Helper()
	for _, b := range batches {
		if _, err := s.OfferSeq(b.testbed, b.node, b.reports, b.entries, b.watermark, b.seq); err != nil {
			t.Fatalf("offer %s/%s seq %d: %v", b.testbed, b.node, b.seq, err)
		}
	}
}

// continuous runs the whole batch sequence through one streamer.
func continuous(t *testing.T, batches []synthBatch) *AggregatesSnapshot {
	t.Helper()
	s, err := NewStreamer(synthSpec())
	if err != nil {
		t.Fatal(err)
	}
	feed(t, s, batches)
	return s.Finalize().Snapshot()
}

// checkpointJSON round-trips a checkpoint through its on-disk encoding.
func checkpointJSON(t *testing.T, s *Streamer) *StreamerCheckpoint {
	t.Helper()
	cp, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var back StreamerCheckpoint
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	return &back
}

// TestCheckpointResumeMatchesContinuous is the core round trip: checkpoint
// at the halfway flush, restore from the JSON bytes, feed the rest.
func TestCheckpointResumeMatchesContinuous(t *testing.T) {
	batches := synthBatches(24)
	want := continuous(t, batches)

	cut := len(batches) / 2
	s1, err := NewStreamer(synthSpec())
	if err != nil {
		t.Fatal(err)
	}
	feed(t, s1, batches[:cut])
	cp := checkpointJSON(t, s1)
	s2, err := RestoreStreamer(synthSpec(), cp)
	if err != nil {
		t.Fatal(err)
	}
	// The restored cursors must agree with the checkpoint's promises.
	for _, st := range synthStreams() {
		seq, _, err := s2.Cursor(st.testbed, st.node)
		if err != nil {
			t.Fatal(err)
		}
		if want := cp.AppliedSeq(st.testbed, st.node); seq != want {
			t.Fatalf("restored cursor %s/%s = %d, checkpoint says %d", st.testbed, st.node, seq, want)
		}
	}
	feed(t, s2, batches[cut:])
	got := s2.Finalize().Snapshot()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("checkpoint-resume aggregates diverge from continuous run")
	}
}

// TestCheckpointMidBatchKill models a sink killed after applying batches the
// checkpoint does not cover: the restored streamer sees them again as
// retransmissions (plus re-sends of already-durable batches, which must be
// ignored as duplicates) and still converges to the continuous digits.
func TestCheckpointMidBatchKill(t *testing.T) {
	batches := synthBatches(24)
	want := continuous(t, batches)

	streams := len(synthStreams())
	cut := len(batches) / 2
	s1, err := NewStreamer(synthSpec())
	if err != nil {
		t.Fatal(err)
	}
	feed(t, s1, batches[:cut])
	cp := checkpointJSON(t, s1)
	// Applied after the checkpoint, then lost with the process.
	feed(t, s1, batches[cut:cut+streams])

	s2, err := RestoreStreamer(synthSpec(), cp)
	if err != nil {
		t.Fatal(err)
	}
	// The sender's retransmit window starts before the checkpoint: the
	// already-covered flush must come back as (false, nil) duplicates.
	for _, b := range batches[cut-streams : cut] {
		accepted, err := s2.OfferSeq(b.testbed, b.node, b.reports, b.entries, b.watermark, b.seq)
		if err != nil {
			t.Fatalf("duplicate offer errored: %v", err)
		}
		if accepted {
			t.Fatalf("duplicate %s/%s seq %d was applied twice", b.testbed, b.node, b.seq)
		}
	}
	offer(t, s2, batches[cut:])
	got := s2.Finalize().Snapshot()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("mid-batch-kill resume diverges from continuous run")
	}
}

// TestCheckpointCarriesParkedBatches checkpoints while a sequence gap has a
// batch parked, restores, then fills the gap.
func TestCheckpointCarriesParkedBatches(t *testing.T) {
	batches := synthBatches(24)
	want := continuous(t, batches)

	streams := len(synthStreams())
	cut := len(batches) / 2
	s1, err := NewStreamer(synthSpec())
	if err != nil {
		t.Fatal(err)
	}
	feed(t, s1, batches[:cut])
	// The next flush arrives with one stream's batch overtaken by its
	// successor: deliver flush cut+1 for every stream, plus flush cut+2 for
	// the stream whose cut+1 batch is "in flight" — except we hold exactly
	// one batch (the first stream's cut+1) and deliver its cut+2 instead.
	held := batches[cut]
	offer(t, s1, batches[cut+1:cut+streams])         // rest of the cut+1 flush
	offer(t, s1, batches[cut+streams:cut+streams+1]) // held stream's next batch: parks
	cp := checkpointJSON(t, s1)

	s2, err := RestoreStreamer(synthSpec(), cp)
	if err != nil {
		t.Fatal(err)
	}
	offer(t, s2, []synthBatch{held}) // gap fills; parked batch unparks
	offer(t, s2, batches[cut+streams+1:])
	got := s2.Finalize().Snapshot()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("parked-batch resume diverges from continuous run")
	}
}

// TestAggregatesSnapshotRoundTrip pins the standalone (finalized) aggregate
// snapshot: restore → snapshot is the identity, and the restored aggregates
// render the same tables.
func TestAggregatesSnapshotRoundTrip(t *testing.T) {
	batches := synthBatches(12)
	s, err := NewStreamer(synthSpec())
	if err != nil {
		t.Fatal(err)
	}
	feed(t, s, batches)
	agg := s.Finalize()
	snap := agg.Snapshot()
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back AggregatesSnapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreAggregates(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, restored.Snapshot()) {
		t.Errorf("aggregates snapshot round trip is not the identity")
	}
	if got, want := restored.Table2().Render(), agg.Table2().Render(); got != want {
		t.Errorf("restored Table 2 diverges:\n%s\nvs\n%s", got, want)
	}
	if got, want := restored.Table3().Render(), agg.Table3().Render(); got != want {
		t.Errorf("restored Table 3 diverges")
	}
	if !reflect.DeepEqual(restored.Dependability("x"), agg.Dependability("x")) {
		t.Errorf("restored Table 4 column diverges")
	}
	if !reflect.DeepEqual(restored.Fig3bBars(), agg.Fig3bBars()) {
		t.Errorf("restored Fig 3b diverges")
	}
}

// TestCheckpointAfterFinalizeFails pins the misuse error.
func TestCheckpointAfterFinalizeFails(t *testing.T) {
	s, err := NewStreamer(synthSpec())
	if err != nil {
		t.Fatal(err)
	}
	s.Finalize()
	if _, err := s.Checkpoint(); err == nil {
		t.Fatal("checkpoint of a finalized streamer did not fail")
	}
}
