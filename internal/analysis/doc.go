// Package analysis computes the paper's published results from collected
// failure data: the error–failure relationship matrix (Table 2), the SIRA
// effectiveness matrix (Table 3), the dependability improvement report
// (Table 4), the failure-distribution figures (Figures 3a–c and 4), and the
// §6 scalar findings (workload split, idle-time comparison, distance split).
//
// The package offers the same results on two collection planes:
//
//   - Retained: the Build* functions (BuildTable2, BuildTable3,
//     BuildDependability, BuildScalars, the Fig* builders) operate on plain
//     record slices / workload counters, so they analyse live campaign
//     results, repository contents, or log files read back from disk.
//   - Streaming: a Streamer (NewStreamer with a StreamSpec naming every
//     testbed/node stream) folds records into running Aggregates as they
//     arrive — per-node shards with their own locks, per-shard watermarks,
//     and a fold in the retained pipeline's exact (time, testbed rank,
//     node) order — so the memory cost is bounded by the flush cadence,
//     not the campaign length, and every table is bit-identical to the
//     retained build of the same seed. The streaming-friendly accumulators
//     behind the tables (Table3Counts, DependAccum, ScalarCounts, the
//     figure count maps) are shared by both planes.
//
// Multi-seed sweeps summarize per-seed tables into confidence-interval
// views (Table2CI, Table3CI, DependabilityCI, ScalarsCI, Table4CI): every
// cell becomes a mean ± 95 % CI estimate over the seeds.
//
// Scatternet campaigns add two aggregate families on top of the
// per-piconet tables: BridgeAccum/BridgeTable attribute inter-piconet
// traffic and correlated outages to the bridge nodes, and PiconetOverview
// lines the per-piconet dependability columns up side by side.
package analysis
