package analysis

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
)

// The merge tier for horizontally sharded sinks: N sink shards each fold a
// disjoint subset of a campaign's testbeds into their own Aggregates, and
// MergeAggregates folds the N partials into the one Aggregates a
// single-process run of the full campaign would have produced — exactly,
// digit for digit.
//
// Almost everything merges algebraically, as pinned by the PR 2 shard-merge
// laws: Evidence cells, Table 3 counts, the per-host and per-app count maps,
// the connection-age histogram bins and the scalar counters are all plain
// sums (the float64-valued AppLoss counts are integer-valued, so addition is
// exact well below 2^53). The single exception is the Table 4 accumulator:
// DependAccum's TTF samples are the gaps between consecutive unmasked
// failures of the campaign-GLOBAL interleaved failure sequence, so the
// within-shard Welford summaries sample different gaps than the
// uninterrupted run and cannot be combined by Summary.Merge. Shards
// therefore record a fold-ordered DependEvent trace (StreamSpec.TraceDepend)
// and the merge tier k-way merges the traces back into campaign order —
// (time, spec testbed rank, node), the fold's exact tie order — and re-runs
// a fresh DependAccum over the merged sequence.

// DependEvent is one unmasked failure in a shard's fold-ordered trace:
// exactly the fields DependAccum consumes, plus the (testbed, node) fold key
// the merge tier re-interleaves traces by.
type DependEvent struct {
	At        sim.Time            `json:"at"`
	Testbed   string              `json:"testbed"`
	Node      string              `json:"node"`
	Recovered bool                `json:"recovered,omitempty"`
	TTR       sim.Time            `json:"ttr,omitempty"`
	Recovery  core.RecoveryAction `json:"recovery,omitempty"`
}

// report reconstructs the unmasked UserReport view DependAccum.Add folds.
func (e *DependEvent) report() core.UserReport {
	return core.UserReport{At: e.At, Recovered: e.Recovered, TTR: e.TTR, Recovery: e.Recovery}
}

// ShardAggregates is one sink shard's contribution to a campaign: the
// finalized aggregates of the testbed subset it hosted, plus the depend
// trace (required whenever more than one shard is merged).
type ShardAggregates struct {
	// Testbeds names the subset this shard folded, in the shard's own spec
	// order. The union over all shards must be exactly the full campaign
	// spec's testbeds, with no overlap.
	Testbeds []string            `json:"testbeds"`
	Agg      *AggregatesSnapshot `json:"agg"`
	Trace    []DependEvent       `json:"trace,omitempty"`
}

// MergeAggregates folds per-shard partials into the full campaign's
// Aggregates. spec is the FULL campaign stream spec (its testbed order
// defines the fold tie rank); each partial covers a disjoint, non-empty
// subset of its testbeds and together they must cover all of them. The
// result is bit-identical to a single streamer folding every testbed — the
// sharded-sink analogue of the checkpoint guarantee (see the merge-law
// tests).
func MergeAggregates(spec StreamSpec, parts []ShardAggregates) (*Aggregates, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("analysis: merge of zero shard partials")
	}
	rank := make(map[string]int, len(spec.Testbeds))
	for i, tb := range spec.Testbeds {
		rank[tb.Name] = i
	}
	covered := make(map[string]bool, len(rank))
	for pi, p := range parts {
		if p.Agg == nil {
			return nil, fmt.Errorf("analysis: shard partial %d has no aggregates", pi)
		}
		if len(p.Testbeds) == 0 {
			return nil, fmt.Errorf("analysis: shard partial %d declares no testbeds", pi)
		}
		for _, name := range p.Testbeds {
			if _, ok := rank[name]; !ok {
				return nil, fmt.Errorf("analysis: shard partial %d covers testbed %q not in the campaign spec",
					pi, name)
			}
			if covered[name] {
				return nil, fmt.Errorf("analysis: testbed %q covered by more than one shard partial", name)
			}
			covered[name] = true
		}
	}
	if len(covered) != len(rank) {
		for _, tb := range spec.Testbeds {
			if !covered[tb.Name] {
				return nil, fmt.Errorf("analysis: no shard partial covers testbed %q", tb.Name)
			}
		}
	}

	// Restore each partial; a single full-coverage partial passes through
	// (its DependAccum is already the campaign-global one, trace optional).
	restored := make([]*Aggregates, len(parts))
	for i, p := range parts {
		a, err := RestoreAggregates(p.Agg)
		if err != nil {
			return nil, fmt.Errorf("analysis: shard partial %d: %w", i, err)
		}
		restored[i] = a
	}
	if len(parts) == 1 {
		return restored[0], nil
	}

	out := restored[0]
	for i := 1; i < len(restored); i++ {
		if restored[i].Window != out.Window || restored[i].Radius != out.Radius {
			return nil, fmt.Errorf("analysis: shard partials disagree on window/radius: %v/%v vs %v/%v",
				out.Window, out.Radius, restored[i].Window, restored[i].Radius)
		}
		addAggregates(out, restored[i])
	}

	// Re-derive the order-sensitive Table 4 accumulator from the merged
	// trace. Ties on (at, rank) can only come from the same shard — a node
	// belongs to exactly one testbed — so the within-trace order already
	// resolves them and the merge is deterministic.
	var masked int
	for _, a := range restored {
		masked += a.Depend.Masked
	}
	for i, p := range parts {
		if len(p.Trace) != restored[i].Depend.Failures {
			return nil, fmt.Errorf("analysis: shard partial %d trace has %d events for %d accumulated failures (TraceDepend not enabled on the shard?)",
				i, len(p.Trace), restored[i].Depend.Failures)
		}
	}
	merged := mergeTraces(parts, rank)
	out.Depend = DependAccum{Masked: masked}
	for i := range merged {
		r := merged[i].report()
		out.Depend.Add(&r)
	}
	return out, nil
}

// addAggregates folds src's order-insensitive state into dst (everything but
// Depend, which the caller re-derives from the merged trace).
func addAggregates(dst, src *Aggregates) {
	for k, n := range src.Evidence.Counts {
		dst.Evidence.Counts[k] += n
	}
	for f, n := range src.Evidence.FailureTotals {
		dst.Evidence.FailureTotals[f] += n
	}
	for f, n := range src.Evidence.NoRelationship {
		dst.Evidence.NoRelationship[f] += n
	}
	dst.Evidence.TotalFailures += src.Evidence.TotalFailures
	for f, row := range src.T3.Rows {
		d := dst.T3.Rows[f]
		for i := range row {
			d[i] += row[i]
		}
		dst.T3.Rows[f] = d
	}
	for i := range src.T3.Totals {
		dst.T3.Totals[i] += src.T3.Totals[i]
	}
	dst.T3.Grand += src.T3.Grand
	for app, n := range src.AppLoss {
		dst.AppLoss[app] += n
	}
	for node, counts := range src.PerHost {
		m := dst.PerHost[node]
		if m == nil {
			m = make(map[core.UserFailure]int, len(counts))
			dst.PerHost[node] = m
		}
		for f, n := range counts {
			m[f] += n
		}
	}
	dst.ConnAge.Merge(src.ConnAge)
	dst.Tax.Merge(src.Tax)
	dst.Surv.Merge(src.Surv)
	dst.ScalarC.NRandom += src.ScalarC.NRandom
	dst.ScalarC.NRealistic += src.ScalarC.NRealistic
	for d, n := range src.ScalarC.DistCount {
		dst.ScalarC.DistCount[d] += n
	}
	dst.ScalarC.DistTotal += src.ScalarC.DistTotal
	dst.Reports += src.Reports
	dst.Entries += src.Entries
	dst.SeqGaps += src.SeqGaps
	dst.DroppedRecords += src.DroppedRecords
}

// mergeTraces k-way merges the shards' fold-ordered traces by the campaign
// fold key (time, full-spec testbed rank, node), stably within each shard.
func mergeTraces(parts []ShardAggregates, rank map[string]int) []DependEvent {
	total := 0
	for _, p := range parts {
		total += len(p.Trace)
	}
	type cursor struct {
		trace []DependEvent
		pos   int
	}
	cursors := make([]*cursor, 0, len(parts))
	for _, p := range parts {
		if len(p.Trace) > 0 {
			cursors = append(cursors, &cursor{trace: p.Trace})
		}
	}
	out := make([]DependEvent, 0, total)
	for len(cursors) > 0 {
		best := 0
		for i := 1; i < len(cursors); i++ {
			a := &cursors[i].trace[cursors[i].pos]
			b := &cursors[best].trace[cursors[best].pos]
			if less(a, b, rank) {
				best = i
			}
		}
		c := cursors[best]
		out = append(out, c.trace[c.pos])
		c.pos++
		if c.pos == len(c.trace) {
			cursors = append(cursors[:best], cursors[best+1:]...)
		}
	}
	return out
}

// less orders two depend events by the fold key.
func less(a, b *DependEvent, rank map[string]int) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if ra, rb := rank[a.Testbed], rank[b.Testbed]; ra != rb {
		return ra < rb
	}
	return a.Node < b.Node
}

// SubSpec restricts a full campaign spec to the named testbeds, preserving
// the full spec's rank order (so a shard's internal fold-tie order matches
// its slice of the campaign order) and enabling TraceDepend whenever the
// subset is proper — the streamer then records what MergeAggregates needs.
func SubSpec(full StreamSpec, testbeds []string) (StreamSpec, error) {
	want := make(map[string]bool, len(testbeds))
	for _, name := range testbeds {
		if want[name] {
			return StreamSpec{}, fmt.Errorf("analysis: duplicate testbed %q in subset", name)
		}
		want[name] = true
	}
	sub := StreamSpec{Window: full.Window, Radius: full.Radius, TraceDepend: full.TraceDepend}
	for _, tb := range full.Testbeds {
		if want[tb.Name] {
			sub.Testbeds = append(sub.Testbeds, tb)
			delete(want, tb.Name)
		}
	}
	if len(want) > 0 {
		missing := make([]string, 0, len(want))
		for name := range want {
			missing = append(missing, name)
		}
		sort.Strings(missing)
		return StreamSpec{}, fmt.Errorf("analysis: testbeds %v not in the campaign spec", missing)
	}
	if len(sub.Testbeds) < len(full.Testbeds) {
		sub.TraceDepend = true
	}
	return sub, nil
}
