package analysis

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// The redundancy-group view: the paper's closing recommendation is redundant
// overlapped piconets, and RedundantDeployment models the 1-out-of-2 case
// analytically from two piconets' dependability columns. When a scatternet
// deploys K bridges over the same piconet span (Topology.WithRedundancy),
// the simulation measures that recommendation directly: the span's
// inter-piconet service is down only while ALL K bridges are down at once,
// and the measured all-down time is compared head to head against the
// independence model (and, for K = 2, against RedundantDeployment itself).

// RedundancyGroup is one span's measured redundancy outcome: K bridges
// serving the same piconet set, with per-member and all-down accounting.
type RedundancyGroup struct {
	// Span lists the piconets the group's bridges serve.
	Span []int
	// Bridges names the member bridges.
	Bridges []string
	// K is the group size (len(Bridges)).
	K int
	// MemberOutages counts the member bridges' individual failure episodes.
	MemberOutages int
	// MemberDownSeconds is each member's accumulated down time, aligned with
	// Bridges and clamped to the campaign horizon.
	MemberDownSeconds []float64
	// AllDownEpisodes counts the windows in which every member was down at
	// once — the only windows a K-redundant span charges as correlated
	// outages.
	AllDownEpisodes int
	// AllDownSeconds is the accumulated all-down time.
	AllDownSeconds float64
	// MaxAllDownSeconds is the longest single all-down episode — the
	// statistic partition-candidate detection thresholds on (one long
	// correlated outage partitions the span; many short ones do not).
	MaxAllDownSeconds float64
	// DurationSeconds is the campaign horizon the group was observed over.
	DurationSeconds float64
}

// MeasuredUnavailability reports the span's observed unavailability: the
// fraction of the campaign every member was down simultaneously.
func (g *RedundancyGroup) MeasuredUnavailability() float64 {
	if g.DurationSeconds <= 0 {
		return 0
	}
	return g.AllDownSeconds / g.DurationSeconds
}

// PredictedUnavailability reports the independence model's prediction: the
// product of the members' individual unavailability fractions — what the
// 1-out-of-K generalization of RedundantDeployment expects when member
// failures are uncorrelated.
func (g *RedundancyGroup) PredictedUnavailability() float64 {
	if g.DurationSeconds <= 0 {
		return 0
	}
	u := 1.0
	for _, d := range g.MemberDownSeconds {
		f := d / g.DurationSeconds
		if f > 1 {
			f = 1
		}
		u *= f
	}
	return u
}

// memberDependability derives member i's pseudo-dependability column from
// its outage count and down time, the inputs RedundantDeployment expects.
func (g *RedundancyGroup) memberDependability(i int) *Dependability {
	d := &Dependability{Availability: 1}
	if g.DurationSeconds <= 0 || i >= len(g.MemberDownSeconds) {
		return d
	}
	down := g.MemberDownSeconds[i]
	d.Availability = 1 - down/g.DurationSeconds
	// Outage episodes are tracked per group, not per member; attribute them
	// evenly — the deployment model only consumes the MTTF/MTTR ratio.
	episodes := float64(g.MemberOutages) / float64(g.K)
	if episodes > 0 {
		d.MTTR = down / episodes
		d.MTTF = (g.DurationSeconds - down) / episodes
	} else {
		d.MTTF = g.DurationSeconds
	}
	return d
}

// Model1of2 builds the analytical RedundantDeployment for a K = 2 group from
// its members' measured outage statistics (nil for other K): the head-to-head
// baseline the measured all-down time is compared against.
func (g *RedundancyGroup) Model1of2() *RedundantDeployment {
	if g.K != 2 {
		return nil
	}
	return &RedundantDeployment{
		A: g.memberDependability(0),
		B: g.memberDependability(1),
	}
}

// RedundancyTable is the per-span redundancy aggregate of a scatternet
// campaign: one row per redundancy group (bridges with an identical span).
type RedundancyTable struct {
	Rows []*RedundancyGroup
}

// AllDownEpisodes sums the groups' all-down outage episodes.
func (t *RedundancyTable) AllDownEpisodes() int {
	n := 0
	for _, g := range t.Rows {
		n += g.AllDownEpisodes
	}
	return n
}

// AllDownSeconds sums the groups' all-down time.
func (t *RedundancyTable) AllDownSeconds() float64 {
	s := 0.0
	for _, g := range t.Rows {
		s += g.AllDownSeconds
	}
	return s
}

// MemberOutages sums the groups' individual member failure episodes.
func (t *RedundancyTable) MemberOutages() int {
	n := 0
	for _, g := range t.Rows {
		n += g.MemberOutages
	}
	return n
}

// Render formats the redundancy table: measured all-down outcome per span
// against the independence model, plus the RedundantDeployment 1-of-2
// availability for K = 2 groups.
func (t *RedundancyTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %3s %10s %12s %12s %12s %12s %12s\n",
		"span", "K", "outages", "all-down", "all-down (s)", "meas unav", "pred unav", "1-of-2 avail")
	for _, g := range t.Rows {
		span := make([]string, len(g.Span))
		for i, p := range g.Span {
			span[i] = fmt.Sprint(p)
		}
		model := "-"
		if m := g.Model1of2(); m != nil {
			model = fmt.Sprintf("%.6f", m.Availability())
		}
		fmt.Fprintf(&b, "%-10s %3d %10d %12d %12.1f %12.6f %12.6f %12s\n",
			strings.Join(span, ","), g.K, g.MemberOutages, g.AllDownEpisodes,
			g.AllDownSeconds, g.MeasuredUnavailability(), g.PredictedUnavailability(), model)
	}
	return b.String()
}

// PartitionCandidates lists the spans whose longest all-down episode
// reached the threshold: every bridge of the span was down simultaneously
// for that long, so the piconets it serves were plausibly partitioned
// from the rest of the scatternet (taxonomy plane, PR 10). Rows keep
// table order.
func (t *RedundancyTable) PartitionCandidates(thresholdSeconds float64) []*RedundancyGroup {
	var out []*RedundancyGroup
	for _, g := range t.Rows {
		if g.AllDownEpisodes > 0 && g.MaxAllDownSeconds >= thresholdSeconds {
			out = append(out, g)
		}
	}
	return out
}

// RenderPartitionCandidates formats the partition-candidate spans at the
// given threshold ("none" line when no span qualifies).
func (t *RedundancyTable) RenderPartitionCandidates(thresholdSeconds float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "partition candidates (all K bridges down >= %.0f s)\n", thresholdSeconds)
	cands := t.PartitionCandidates(thresholdSeconds)
	if len(cands) == 0 {
		fmt.Fprintf(&b, "  none\n")
		return b.String()
	}
	for _, g := range cands {
		span := make([]string, len(g.Span))
		for i, p := range g.Span {
			span[i] = fmt.Sprint(p)
		}
		fmt.Fprintf(&b, "  span %-10s K=%d episodes=%d longest=%.1f s total=%.1f s\n",
			strings.Join(span, ","), g.K, g.AllDownEpisodes,
			g.MaxAllDownSeconds, g.AllDownSeconds)
	}
	return b.String()
}

// RedundancyCI summarizes a scatternet sweep's redundancy outcomes: per-seed
// totals as mean ± 95 % CI.
type RedundancyCI struct {
	// Seeds is the number of campaigns summarized.
	Seeds int
	// MemberOutages estimates the per-seed individual bridge failure count.
	MemberOutages stats.Estimate
	// AllDownEpisodes estimates the per-seed count of windows where a whole
	// redundancy group was down at once.
	AllDownEpisodes stats.Estimate
	// AllDownSeconds estimates the per-seed all-down time.
	AllDownSeconds stats.Estimate
}

// BuildRedundancyCI summarizes per-seed redundancy tables.
func BuildRedundancyCI(tables []*RedundancyTable) *RedundancyCI {
	ci := &RedundancyCI{Seeds: len(tables)}
	var members, episodes, seconds []float64
	for _, t := range tables {
		members = append(members, float64(t.MemberOutages()))
		episodes = append(episodes, float64(t.AllDownEpisodes()))
		seconds = append(seconds, t.AllDownSeconds())
	}
	ci.MemberOutages = stats.CI95(members)
	ci.AllDownEpisodes = stats.CI95(episodes)
	ci.AllDownSeconds = stats.CI95(seconds)
	return ci
}

// Render formats the sweep-level redundancy summary.
func (ci *RedundancyCI) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bridge outages per seed:      %s\n", ci.MemberOutages.Format("%.1f"))
	fmt.Fprintf(&b, "all-down episodes per seed:   %s\n", ci.AllDownEpisodes.Format("%.1f"))
	fmt.Fprintf(&b, "all-down seconds per seed:    %s\n", ci.AllDownSeconds.Format("%.1f"))
	return b.String()
}
