// Package sdp implements the Service Discovery Protocol of the simulated
// stack: service records, the server daemon that answers searches, and the
// client search procedure that BlueTest runs before connecting to the NAP.
//
// Table 1 failure modes carried here:
//
//   - "SDP search failed" — the search procedure terminates abnormally
//     (connection with the SDP server refused or timed out);
//   - "NAP not found" — the procedure completes but does not find the NAP
//     even though it is present (the daemon transiently misses its own
//     registry entry, "AP ... not implementing the required service, even if
//     it implements it").
//
// Server-side faults log on the server's (NAP's) system log, which is how
// the paper's Table 2 sees NAP→PANU error propagation for SDP.
package sdp

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/hci"
	"repro/internal/l2cap"
	"repro/internal/sim"
)

// Well-known PAN service class UUIDs.
const (
	UUIDPANU uint16 = 0x1115
	UUIDNAP  uint16 = 0x1116
	UUIDGN   uint16 = 0x1117
)

// Record is one SDP service record.
type Record struct {
	Handle  uint32 // service record handle
	Class   uint16 // service class UUID
	PSM     uint16 // protocol descriptor: L2CAP PSM to reach the service
	Name    string
	Version uint16
}

// ServerConfig parameterises the daemon's fault behaviour.
type ServerConfig struct {
	// RefuseProb is the probability an incoming SDP connection is refused.
	RefuseProb float64
	// TimeoutProb is the probability the daemon hangs past the client's
	// response timer.
	TimeoutProb float64
	// MissProb is the probability a lookup misses a genuinely registered
	// record ("NAP not found" despite presence).
	MissProb float64
	// ResponseTime is the nominal handling latency.
	ResponseTime sim.Time
}

// DefaultServerConfig returns calibrated daemon parameters.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		RefuseProb:   1.6e-3,
		TimeoutProb:  1.3e-3,
		MissProb:     2e-4,
		ResponseTime: 30 * sim.Millisecond,
	}
}

// Validate reports configuration errors.
func (c ServerConfig) Validate() error {
	if c.RefuseProb < 0 || c.RefuseProb > 1 ||
		c.TimeoutProb < 0 || c.TimeoutProb > 1 ||
		c.MissProb < 0 || c.MissProb > 1 {
		return fmt.Errorf("sdp: probability out of range")
	}
	if c.ResponseTime <= 0 {
		return fmt.Errorf("sdp: non-positive response time")
	}
	return nil
}

// Server is the SDP daemon of one node (in the testbeds, the NAP's).
type Server struct {
	cfg  ServerConfig
	node string
	rng  *rand.Rand
	sink hci.Sink

	nextHandle uint32
	records    map[uint32]*Record

	refused, timedOut, missed int
}

// NewServer builds an SDP daemon.
func NewServer(cfg ServerConfig, node string, rng *rand.Rand, sink hci.Sink) *Server {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Server{
		cfg: cfg, node: node, rng: rng, sink: sink,
		nextHandle: 0x10000,
		records:    make(map[uint32]*Record),
	}
}

// Register adds a record, assigning its handle.
func (s *Server) Register(r Record) uint32 {
	s.nextHandle++
	r.Handle = s.nextHandle
	s.records[r.Handle] = &r
	return r.Handle
}

// Unregister removes a record.
func (s *Server) Unregister(handle uint32) { delete(s.records, handle) }

// Records reports the number of registered records.
func (s *Server) Records() int { return len(s.records) }

// Node reports the daemon's host.
func (s *Server) Node() string { return s.node }

// Stats reports fault counters.
func (s *Server) Stats() (refused, timedOut, missed int) {
	return s.refused, s.timedOut, s.missed
}

// outcome is the daemon's response classification.
type outcome int

const (
	ok outcome = iota
	refused
	timedOut
	missed
)

// handleSearch runs the daemon side of one search, with fault injection.
func (s *Server) handleSearch(class uint16) ([]Record, outcome) {
	switch u := s.rng.Float64(); {
	case u < s.cfg.RefuseProb:
		s.refused++
		if s.sink != nil {
			s.sink(core.CodeSDPConnectionRefused, "sdp.handle_search")
		}
		return nil, refused
	case u < s.cfg.RefuseProb+s.cfg.TimeoutProb:
		s.timedOut++
		if s.sink != nil {
			s.sink(core.CodeSDPTimeout, "sdp.handle_search")
		}
		return nil, timedOut
	}
	var hits []Record
	for _, r := range s.records {
		if r.Class == class {
			hits = append(hits, *r)
		}
	}
	if len(hits) > 0 && s.rng.Float64() < s.cfg.MissProb {
		s.missed++
		if s.sink != nil {
			s.sink(core.CodeSDPServiceMissing, "sdp.handle_search")
		}
		return nil, missed
	}
	return hits, ok
}

// LogStaleRecord records that a PAN setup validated against a stale cached
// copy of this daemon's registry: the daemon logs the mismatch on its own
// (NAP-side) system log. It is how nearly all "PAN connect failed" failures
// leave their SDP evidence in Table 2.
func (s *Server) LogStaleRecord() {
	s.missed++
	if s.sink != nil {
		s.sink(core.CodeSDPServiceMissing, "sdp.stale_record")
	}
}

// Client runs SDP searches from a PANU.
type Client struct {
	node string
	mux  *l2cap.Mux
	sink hci.Sink
}

// NewClient builds an SDP client over the node's L2CAP layer.
func NewClient(node string, mux *l2cap.Mux, sink hci.Sink) *Client {
	if mux == nil {
		panic("sdp: nil L2CAP mux")
	}
	return &Client{node: node, mux: mux, sink: sink}
}

// Result reports a search.
type Result struct {
	Dur sim.Time
	Err error
}

// Search connects to the server's SDP daemon over hd and asks for records of
// the given service class.
//
// Error semantics, mapped to the paper's user failures by the workload:
//   - transport/L2CAP/HCI errors or daemon refusal/timeout → the search
//     procedure terminated abnormally ("SDP search failed");
//   - nil error with zero records while the service is registered →
//     "NAP not found".
func (c *Client) Search(hd hci.Handle, server *Server, class uint16) ([]Record, Result) {
	ch, cres := c.mux.Connect(hd, l2cap.PSMSDP)
	if cres.Err != nil {
		return nil, Result{Dur: cres.Dur, Err: cres.Err}
	}
	total := cres.Dur

	hits, out := server.handleSearch(class)
	total += server.cfg.ResponseTime
	switch out {
	case refused:
		// The client-side sdpd logs the refusal too (as BlueZ does).
		if c.sink != nil {
			c.sink(core.CodeSDPConnectionRefused, "sdp.search")
		}
		c.mux.Disconnect(ch)
		return nil, Result{Dur: total,
			Err: core.NewSimError(core.CodeSDPConnectionRefused, "sdp.search", c.node)}
	case timedOut:
		// Client waits out its response timer before giving up.
		total += 5 * sim.Second
		if c.sink != nil {
			c.sink(core.CodeSDPTimeout, "sdp.search")
		}
		c.mux.Disconnect(ch)
		return nil, Result{Dur: total,
			Err: core.NewSimError(core.CodeSDPTimeout, "sdp.search", c.node)}
	}

	dres := c.mux.Disconnect(ch)
	total += dres.Dur
	return hits, Result{Dur: total}
}
