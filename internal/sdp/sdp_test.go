package sdp

import (
	"errors"
	"math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/hci"
	"repro/internal/l2cap"
	"repro/internal/sim"
	"repro/internal/transport"
)

type fixture struct {
	client   *Client
	server   *Server
	host     *hci.Host
	now      sim.Time
	panuLogs []core.ErrorCode
	napLogs  []core.ErrorCode
}

func newFixture(t *testing.T, mutate func(*ServerConfig)) *fixture {
	t.Helper()
	f := &fixture{}
	hcfg := hci.DefaultConfig()
	hcfg.TimeoutProbIdle, hcfg.TimeoutProbBusy, hcfg.InquiryFailProb = 0, 0, 0
	panuSink := func(code core.ErrorCode, op string) { f.panuLogs = append(f.panuLogs, code) }
	napSink := func(code core.ErrorCode, op string) { f.napLogs = append(f.napLogs, code) }
	f.host = hci.NewHost(hcfg, "Miseno",
		transport.NewH4(transport.H4Config{BaudRate: 115200}),
		func() sim.Time { return f.now },
		rand.New(rand.NewPCG(11, 12)), panuSink)
	lcfg := l2cap.DefaultConfig()
	lcfg.UnexpectedFrameProb, lcfg.DataFaultPerPacket = 0, 0
	mux := l2cap.NewMux(lcfg, "Miseno", f.host, rand.New(rand.NewPCG(13, 14)), panuSink)

	scfg := DefaultServerConfig()
	scfg.RefuseProb, scfg.TimeoutProb, scfg.MissProb = 0, 0, 0
	if mutate != nil {
		mutate(&scfg)
	}
	f.server = NewServer(scfg, "Giallo", rand.New(rand.NewPCG(15, 16)), napSink)
	f.client = NewClient("Miseno", mux, panuSink)
	return f
}

func (f *fixture) handle(t *testing.T) hci.Handle {
	t.Helper()
	hd, res := f.host.CreateConnection("Giallo")
	if res.Err != nil {
		t.Fatalf("hci create: %v", res.Err)
	}
	f.now += 10 * sim.Second
	return hd
}

func TestDefaultServerConfigValid(t *testing.T) {
	if err := DefaultServerConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultServerConfig()
	bad.MissProb = -1
	if bad.Validate() == nil {
		t.Error("negative probability should fail")
	}
	bad = DefaultServerConfig()
	bad.ResponseTime = 0
	if bad.Validate() == nil {
		t.Error("zero response time should fail")
	}
}

func TestRegisterAndSearch(t *testing.T) {
	f := newFixture(t, nil)
	f.server.Register(Record{Class: UUIDNAP, PSM: l2cap.PSMBNEP, Name: "Network Access Point"})
	f.server.Register(Record{Class: UUIDGN, PSM: l2cap.PSMBNEP, Name: "Group Network"})
	if f.server.Records() != 2 {
		t.Fatalf("Records = %d", f.server.Records())
	}

	hits, res := f.client.Search(f.handle(t), f.server, UUIDNAP)
	if res.Err != nil {
		t.Fatalf("search: %v", res.Err)
	}
	if len(hits) != 1 || hits[0].Class != UUIDNAP || hits[0].PSM != l2cap.PSMBNEP {
		t.Fatalf("hits = %+v", hits)
	}
	if res.Dur <= 0 {
		t.Error("search should take time")
	}
}

func TestSearchNoService(t *testing.T) {
	f := newFixture(t, nil)
	hits, res := f.client.Search(f.handle(t), f.server, UUIDNAP)
	if res.Err != nil {
		t.Fatalf("search: %v", res.Err)
	}
	if len(hits) != 0 {
		t.Error("found a service that is not registered")
	}
}

func TestUnregister(t *testing.T) {
	f := newFixture(t, nil)
	h := f.server.Register(Record{Class: UUIDNAP, PSM: l2cap.PSMBNEP})
	f.server.Unregister(h)
	if f.server.Records() != 0 {
		t.Error("record survived unregister")
	}
}

func TestSearchRefused(t *testing.T) {
	f := newFixture(t, func(c *ServerConfig) { c.RefuseProb = 1 })
	f.server.Register(Record{Class: UUIDNAP, PSM: l2cap.PSMBNEP})
	_, res := f.client.Search(f.handle(t), f.server, UUIDNAP)
	var se *core.SimError
	if !errors.As(res.Err, &se) || se.Code != core.CodeSDPConnectionRefused {
		t.Fatalf("want refused, got %v", res.Err)
	}
	// The daemon fault logs on the NAP's system log (error propagation).
	if len(f.napLogs) != 1 || f.napLogs[0] != core.CodeSDPConnectionRefused {
		t.Errorf("NAP logs = %v", f.napLogs)
	}
	if r, _, _ := f.server.Stats(); r != 1 {
		t.Errorf("refused counter = %d", r)
	}
}

func TestSearchTimeout(t *testing.T) {
	f := newFixture(t, func(c *ServerConfig) { c.TimeoutProb = 1 })
	f.server.Register(Record{Class: UUIDNAP, PSM: l2cap.PSMBNEP})
	_, res := f.client.Search(f.handle(t), f.server, UUIDNAP)
	var se *core.SimError
	if !errors.As(res.Err, &se) || se.Code != core.CodeSDPTimeout {
		t.Fatalf("want timeout, got %v", res.Err)
	}
	if res.Dur < 5*sim.Second {
		t.Errorf("timeout search should wait out the response timer, dur=%v", res.Dur)
	}
}

func TestSearchMissesPresentService(t *testing.T) {
	f := newFixture(t, func(c *ServerConfig) { c.MissProb = 1 })
	f.server.Register(Record{Class: UUIDNAP, PSM: l2cap.PSMBNEP})
	hits, res := f.client.Search(f.handle(t), f.server, UUIDNAP)
	if res.Err != nil {
		t.Fatalf("a miss is not a procedure failure: %v", res.Err)
	}
	if len(hits) != 0 {
		t.Fatal("miss fault returned hits")
	}
	// The daemon knows it failed to advertise: service-missing on NAP log.
	if len(f.napLogs) != 1 || f.napLogs[0] != core.CodeSDPServiceMissing {
		t.Errorf("NAP logs = %v", f.napLogs)
	}
}

func TestSearchPropagatesL2CAPFailure(t *testing.T) {
	f := newFixture(t, nil)
	f.server.Register(Record{Class: UUIDNAP, PSM: l2cap.PSMBNEP})
	// Search over a dead HCI handle: the L2CAP connect fails first.
	_, res := f.client.Search(hci.Handle(777), f.server, UUIDNAP)
	var se *core.SimError
	if !errors.As(res.Err, &se) || se.Code != core.CodeHCIInvalidHandle {
		t.Fatalf("want HCI failure through SDP, got %v", res.Err)
	}
}

func TestMissFaultOnlyFiresWhenRegistered(t *testing.T) {
	f := newFixture(t, func(c *ServerConfig) { c.MissProb = 1 })
	// Nothing registered: no miss fault, just a clean empty answer.
	hits, res := f.client.Search(f.handle(t), f.server, UUIDNAP)
	if res.Err != nil || len(hits) != 0 {
		t.Fatalf("hits=%v err=%v", hits, res.Err)
	}
	if _, _, missed := f.server.Stats(); missed != 0 {
		t.Error("miss fault fired with no records")
	}
}
