package scatternet

import (
	"math"
	"math/rand/v2"
)

// The probe-pair sampler: at city scale the relay probe plane is the O(P²)
// wall — 10³ piconets mean 999,000 ordered pairs, each with its own arrival
// process and route walks — while the delay-vs-depth table it feeds needs
// only a statistically sufficient pair subset. The sampler draws that subset
// deterministically from the campaign seed, independent of every simulation
// RNG stream: pair inclusion is a seeded Bernoulli coin per ordered pair in
// canonical order, so the sample is reproducible per seed, never perturbs
// the data plane (probes are read-only and per-pair RNG streams are named,
// so excluded pairs simply never draw), and fraction 1 degenerates to the
// exhaustive pre-sampling pair set without consuming a single random number.
// The matching estimator lives in analysis.RelayDepthAccum.EstimatedProbes:
// with each pair kept with probability f, an observed count scales by 1/f
// (Horvitz–Thompson) and the delay moments are unbiased as sampled.

// probeSampleSalt decorrelates the pair-sampling stream from the topology
// generator and every simulation world derived from the same root seed.
const probeSampleSalt = 0x9A1B5C0FFEE5A17

// probePair is one sampled ordered piconet pair.
type probePair struct {
	src, dst int
}

// samplePairs returns the sampled ordered pairs in canonical order (src
// ascending, then dst ascending, src != dst). fraction >= 1 (or <= 0, the
// unset zero value) includes every pair without touching the RNG — the
// exhaustive set, exactly; otherwise each pair is kept with independent
// probability fraction, drawn from a PCG stream seeded by (seed,
// probeSampleSalt).
func samplePairs(piconets int, fraction float64, seed uint64) []probePair {
	// NaN fails every comparison, so without the explicit test it would fall
	// through to the RNG branch where rng.Float64() < NaN is always false —
	// a silently EMPTY probe plane. Config.Validate rejects NaN loudly; this
	// is defense in depth for direct engine callers, resolving it the same
	// way as the other out-of-range values.
	exhaustive := math.IsNaN(fraction) || fraction <= 0 || fraction >= 1
	var rng *rand.Rand
	if !exhaustive {
		rng = rand.New(rand.NewPCG(seed, probeSampleSalt))
	}
	var pairs []probePair
	for src := 0; src < piconets; src++ {
		for dst := 0; dst < piconets; dst++ {
			if src == dst {
				continue
			}
			if exhaustive || rng.Float64() < fraction {
				pairs = append(pairs, probePair{src: src, dst: dst})
			}
		}
	}
	return pairs
}
