package scatternet

import (
	"fmt"

	"repro/internal/analysis"
)

// The distributed metro entry points: a scatternet agent process owns a
// contiguous piconet range of a campaign (and, by convention, the bridge
// overlay when its range starts at piconet 0) and streams each finished
// piconet's fold contribution to a district sink. Piconet worlds are fully
// independent and deterministic in (Seed, p), so the agent needs no
// write-ahead log: a kill -9 restart simply re-runs the piconets past the
// sink's resume cursor and regenerates byte-identical partials.

// PiconetPartial builds, runs and snapshots piconet p alone — one shard
// iteration of runShard, detached from the shard loop so a distributed agent
// can walk its range one piconet at a time and ship each result as it
// finishes. Requires Rollup mode (the partial carries the depend trace the
// metro fold re-interleaves).
func (c *Campaign) PiconetPartial(p int) (*analysis.PiconetPartial, error) {
	if !c.cfg.Rollup {
		return nil, fmt.Errorf("scatternet: piconet partials need Rollup mode")
	}
	if p < 0 || p >= c.topo.Piconets {
		return nil, fmt.Errorf("scatternet: piconet %d outside [0, %d)", p, c.topo.Piconets)
	}
	pic, trace, err := c.runPiconet(p)
	if err != nil {
		return nil, err
	}
	return &analysis.PiconetPartial{Piconet: p, Agg: pic.Agg.Snapshot(), Trace: trace}, nil
}

// RunOverlay runs the bridge overlay world for the campaign duration and
// returns its rollup partial (nil when the campaign has no bridges). The
// order-sensitive Welford merges happen HERE, where the campaign's fixed
// orders are known: the all-bridge summary merges the bridge rows in row
// order and the relay-depth table merges the per-source probe partials in
// ascending source order — exactly Campaign.rollup's orders, which is what
// keeps the distributed report byte-identical to the single-process one.
func (c *Campaign) RunOverlay() (*analysis.OverlayPartial, error) {
	if !c.cfg.Rollup {
		return nil, fmt.Errorf("scatternet: overlay partials need Rollup mode")
	}
	if c.overlay == nil {
		return nil, nil
	}
	c.overlay.Run(c.cfg.Duration)
	out := &analysis.OverlayPartial{}
	if rows := c.overlay.Table().Rows; len(rows) > 0 {
		sum := analysis.NewBridgeAccum("all", "-", nil)
		for _, r := range rows {
			sum.Merge(r)
		}
		out.Bridges, out.BridgeCount = sum.Snapshot(), len(rows)
	}
	rd := analysis.NewRelayDepthAccum()
	for _, a := range c.overlay.prober.bySrc {
		rd.Merge(a)
	}
	out.RelayDepth = rd.Snapshot()
	out.Redundancy = c.overlay.RedundancyTable(c.cfg.Duration).Rows
	return out, nil
}

// Piconets reports the campaign's effective piconet count.
func (c *Campaign) Piconets() int { return c.topo.Piconets }

// BridgeCount reports the campaign's effective bridge count (0 = no overlay).
func (c *Campaign) BridgeCount() int { return c.topo.Bridges() }

// ScenarioName reports the campaign's recovery-scenario label (the
// Dependability column name district folds are built with).
func (c *Campaign) ScenarioName() string { return c.cfg.Scenario.String() }

// ProbeFraction exposes the report normalization of the pair-sampling
// fraction (0, the unset default, means exhaustive — fraction 1); the
// distributed merge tier must render with exactly this value.
func ProbeFraction(f float64) float64 { return probeFraction(f) }
