package scatternet

import (
	"testing"

	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/stack"
)

// baseConfig returns a small two-piconet, one-bridge campaign config.
func baseConfig() Config {
	return Config{
		Seed:     3,
		Duration: 2 * sim.Hour,
		Scenario: recovery.ScenarioSIRAs,
		Piconets: 2,
		Bridges:  1,
		HoldTime: 5 * sim.Second,
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"base", func(c *Config) {}, true},
		{"one piconet no bridges", func(c *Config) { c.Piconets, c.Bridges = 1, 0 }, true},
		{"zero piconets", func(c *Config) { c.Piconets = 0 }, false},
		{"bridge needs two piconets", func(c *Config) { c.Piconets = 1 }, false},
		{"negative bridges", func(c *Config) { c.Bridges = -1 }, false},
		{"no duration", func(c *Config) { c.Duration = 0 }, false},
		{"bad scenario", func(c *Config) { c.Scenario = 9 }, false},
		{"negative hold", func(c *Config) { c.HoldTime = -sim.Second }, false},
		{"defaulted knobs", func(c *Config) { c.HoldTime, c.RelayEvery, c.RelayBytes = 0, 0, 0 }, true},
	}
	for _, tc := range cases {
		cfg := baseConfig()
		tc.mutate(&cfg)
		if err := cfg.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestPiconetSeed(t *testing.T) {
	if got := PiconetSeed(42, 0); got != 42 {
		t.Fatalf("PiconetSeed(42, 0) = %d, must keep the root seed", got)
	}
	seen := map[uint64]int{42: 0}
	for p := 1; p < 8; p++ {
		s := PiconetSeed(42, p)
		if prev, dup := seen[s]; dup {
			t.Fatalf("piconets %d and %d share seed %d", prev, p, s)
		}
		seen[s] = p
	}
}

// TestResidencySchedule pins the hold-time rotation at and around the
// boundaries: residency changes exactly at multiples of the hold time.
func TestResidencySchedule(t *testing.T) {
	h := 5 * sim.Second
	cases := []struct {
		at   sim.Time
		n    int
		want int
	}{
		{0, 2, 0},
		{h - 1, 2, 0},           // just below the first boundary
		{h, 2, 1},               // exactly on it
		{h + 1, 2, 1},           // just past it
		{2*h - 1, 2, 1},         // end of the second slot
		{2 * h, 2, 0},           // wraps around
		{7*h + h/2, 2, 1},       // mid-slot, odd slot
		{3 * h, 3, 0},           // three-way rotation wraps
		{4*h + h - 1, 3, 1},     // stays put through a whole slot
		{1000000 * h, 2, 0},     // deep into the campaign
		{1000001*h + h/3, 2, 1}, // and one slot later
	}
	for _, tc := range cases {
		if got := residencyAt(tc.at, h, tc.n); got != tc.want {
			t.Errorf("residencyAt(%v, %v, %d) = %d, want %d", tc.at, h, tc.n, got, tc.want)
		}
	}
}

// TestBridgeHopsOnBoundaries runs a real campaign and asserts every
// completed residency switch lands exactly on a hold-time boundary and
// attaches to the piconet the schedule dictates — including boundaries the
// bridge crosses right after recovering from an outage.
func TestBridgeHopsOnBoundaries(t *testing.T) {
	cfg := baseConfig()
	hops := 0
	cfg.OnBridgeHop = func(bridge string, at sim.Time, piconet int) {
		hops++
		if at%cfg.HoldTime != 0 {
			t.Errorf("%s hopped at %v, not a multiple of the hold time %v", bridge, at, cfg.HoldTime)
		}
		want := residencyAt(at, cfg.HoldTime, 2)
		if piconet != want {
			t.Errorf("%s resident in piconet %d at %v, schedule dictates %d", bridge, piconet, at, want)
		}
	}
	camp, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if hops == 0 {
		t.Fatal("bridge never hopped in two virtual hours")
	}
	row := res.Bridges.Rows[0]
	if row.Hops < hops {
		t.Errorf("accumulator recorded %d hops, hook saw %d boundary hops", row.Hops, hops)
	}
}

// TestBridgeFailureWhileRelaying forces the first relay transfers to fail
// (every pipe carries an immediate latent defect) and checks the correlated
// outage accounting: the failure is recovered through the standard cascade,
// both served piconets record every outage, and traffic offered while the
// bridge is down is counted against the piconets that lost it.
func TestBridgeFailureWhileRelaying(t *testing.T) {
	cfg := baseConfig()
	cfg.Duration = 6 * sim.Hour
	cfg.RelayEvery = 2 * sim.Second // dense traffic: outages always see offered SDUs
	cfg.MutateBridgeHost = func(bridge string, hc *stack.Config) {
		hc.LatentDefectProb = 1 // every connection's pipe fails young
		hc.LatentMeanPackets = 1
	}
	camp, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	row := res.Bridges.Rows[0]
	if row.Outages == 0 {
		t.Fatal("latent-defect bridge produced no outage in six virtual hours")
	}
	if row.RelayLost == 0 {
		t.Error("no relay SDU was recorded lost despite forced defects")
	}
	if row.Downtime.Sum() <= 0 {
		t.Error("outages accumulated no downtime")
	}
	if len(row.Coupling) != 2 {
		t.Fatalf("bridge couples %d piconets, want 2", len(row.Coupling))
	}
	for _, c := range row.Coupling {
		if c.Outages != row.Outages {
			t.Errorf("piconet %d saw %d outages, bridge had %d — coupling must be correlated",
				c.Piconet, c.Outages, row.Outages)
		}
	}
	dropped := 0
	for _, c := range row.Coupling {
		dropped += c.DroppedInOutage
	}
	if dropped == 0 {
		t.Error("no SDU was dropped during outages despite 2 s arrivals and minute-scale TTRs")
	}
	if got, want := res.Bridges.CorrelatedOutages(), 2*row.Outages; got != want {
		t.Errorf("CorrelatedOutages() = %d, want %d (outages x served piconets)", got, want)
	}
}

// TestRunDeterministic pins that the parallel orchestration cannot change
// bridge-attributed results: sequential and parallel runs agree exactly.
func TestRunDeterministic(t *testing.T) {
	run := func(parallelism int) *Result {
		cfg := baseConfig()
		cfg.Duration = 1 * sim.Hour
		cfg.Parallelism = parallelism
		camp, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := camp.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	par, seq := run(0), run(1)
	pr, sr := par.Bridges.Rows[0], seq.Bridges.Rows[0]
	if pr.Hops != sr.Hops || pr.Relayed != sr.Relayed || pr.Outages != sr.Outages ||
		pr.RelayLost != sr.RelayLost || pr.Downtime.Sum() != sr.Downtime.Sum() {
		t.Errorf("parallel and sequential scatternet runs diverge:\n par %+v\n seq %+v", pr, sr)
	}
	if len(par.Piconets) != len(seq.Piconets) {
		t.Fatal("piconet count diverges")
	}
}

// TestConfigTopologyCrossChecks pins the Config/Topology consistency rules:
// a non-nil topology overrides Piconets/Bridges but rejects explicit values
// that disagree with it, and an invalid membership map fails validation.
func TestConfigTopologyCrossChecks(t *testing.T) {
	topo := Star(3)
	cases := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"topology only", func(c *Config) { c.Piconets, c.Bridges, c.Topology = 0, 0, &topo }, true},
		{"agreeing counts", func(c *Config) { c.Piconets, c.Bridges, c.Topology = 3, 2, &topo }, true},
		{"piconet mismatch", func(c *Config) { c.Piconets, c.Topology = 4, &topo }, false},
		{"bridge mismatch", func(c *Config) { c.Bridges, c.Piconets, c.Topology = 5, 3, &topo }, false},
		{"invalid topology", func(c *Config) {
			bad := Topology{Piconets: 2, Members: [][]int{{0, 0}}}
			c.Topology = &bad
		}, false},
	}
	for _, tc := range cases {
		cfg := baseConfig()
		tc.mutate(&cfg)
		if err := cfg.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestStarRelayDepths runs a real star campaign and checks the probe plane:
// hub routes are depth 1, spoke-to-spoke routes depth 2, delays are
// non-negative, and deeper routes cost more on average (two residency
// rotations instead of one).
func TestStarRelayDepths(t *testing.T) {
	topo := Star(3)
	cfg := baseConfig()
	cfg.Piconets, cfg.Bridges = 0, 0
	cfg.Topology = &topo
	camp, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	depths := res.RelayDepth.Depths()
	if len(depths) != 2 || depths[0] != 1 || depths[1] != 2 {
		t.Fatalf("star relay depths = %v, want [1 2]", depths)
	}
	if res.RelayDepth.Unreachable != 0 {
		t.Errorf("%d unreachable probes in a connected star", res.RelayDepth.Unreachable)
	}
	d1, d2 := res.RelayDepth.ByDepth[1], res.RelayDepth.ByDepth[2]
	if d1.N() == 0 || d2.N() == 0 {
		t.Fatalf("empty depth buckets: %d/%d probes", d1.N(), d2.N())
	}
	if d1.Min() < 0 || d2.Min() < 0 {
		t.Error("negative relay delay")
	}
	if d2.Mean() <= d1.Mean() {
		t.Errorf("depth-2 mean %.2f s not above depth-1 mean %.2f s", d2.Mean(), d1.Mean())
	}
}

// TestRedundancyGroupAccounting runs a 2-redundant campaign and checks the
// all-down bookkeeping against the per-bridge rows: all-down time can never
// exceed any single member's downtime, episodes can never exceed member
// outages, and the table's span/K wiring matches the topology.
func TestRedundancyGroupAccounting(t *testing.T) {
	topo := RingBridges(2, 1).WithRedundancy(2)
	cfg := baseConfig()
	cfg.Duration = 6 * sim.Hour
	cfg.Piconets, cfg.Bridges = 0, 0
	cfg.Topology = &topo
	camp, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Redundancy.Rows) != 1 {
		t.Fatalf("%d redundancy rows, want 1", len(res.Redundancy.Rows))
	}
	g := res.Redundancy.Rows[0]
	if g.K != 2 || len(g.Bridges) != 2 || len(g.MemberDownSeconds) != 2 {
		t.Fatalf("group shape %+v, want K=2", g)
	}
	if g.DurationSeconds != cfg.Duration.Seconds() {
		t.Errorf("group horizon %.0f s, want %.0f s", g.DurationSeconds, cfg.Duration.Seconds())
	}
	if g.MemberOutages == 0 {
		t.Fatal("no member outage in six virtual hours")
	}
	if g.AllDownEpisodes > g.MemberOutages {
		t.Errorf("%d all-down episodes exceed %d member outages", g.AllDownEpisodes, g.MemberOutages)
	}
	for i, down := range g.MemberDownSeconds {
		if g.AllDownSeconds > down+1e-9 {
			t.Errorf("all-down %.1f s exceeds member %d downtime %.1f s", g.AllDownSeconds, i, down)
		}
		if down > g.DurationSeconds+1e-9 {
			t.Errorf("member %d downtime %.1f s exceeds the campaign horizon", i, down)
		}
	}
	if got := g.MeasuredUnavailability(); got < 0 || got > 1 {
		t.Errorf("measured unavailability %v out of [0,1]", got)
	}
	if m := g.Model1of2(); m == nil || m.Availability() < 0 || m.Availability() > 1 {
		t.Errorf("1-of-2 model = %+v", m)
	}
	// Redundancy must help: the all-down fraction is below the worst
	// member's individual down fraction.
	worst := 0.0
	for _, down := range g.MemberDownSeconds {
		if f := down / g.DurationSeconds; f > worst {
			worst = f
		}
	}
	if g.MeasuredUnavailability() >= worst && worst > 0 {
		t.Errorf("all-down fraction %.3f not below worst member %.3f", g.MeasuredUnavailability(), worst)
	}
}

// TestWideBridgeMembership runs a bridge that spans three piconets and
// checks the rotation visits all of them and the accounting stays
// consistent across a wider coupling set.
func TestWideBridgeMembership(t *testing.T) {
	topo := Topology{Piconets: 3, Members: [][]int{{0, 1, 2}}}
	cfg := baseConfig()
	cfg.Piconets, cfg.Bridges = 0, 0
	cfg.Topology = &topo
	visited := map[int]bool{}
	cfg.OnBridgeHop = func(_ string, _ sim.Time, piconet int) { visited[piconet] = true }
	camp, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(visited) != 3 {
		t.Errorf("three-piconet bridge visited %v, want all of 0,1,2", visited)
	}
	row := res.Bridges.Rows[0]
	if len(row.Coupling) != 3 {
		t.Fatalf("wide bridge couples %d piconets, want 3", len(row.Coupling))
	}
	for _, c := range row.Coupling {
		if c.Outages != row.Outages {
			t.Errorf("piconet %d saw %d outages, bridge had %d", c.Piconet, c.Outages, row.Outages)
		}
	}
	if got, want := res.Bridges.CorrelatedOutages(), 3*row.Outages; got != want {
		t.Errorf("CorrelatedOutages() = %d, want %d", got, want)
	}
}
