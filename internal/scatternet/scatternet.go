// Package scatternet composes the paper's single-piconet testbeds into a
// bridged multi-piconet topology — the scenario the paper's taxonomy lacks
// and scatternet studies need (BlueSky, arXiv:1308.2950; Bluetooth-mesh
// reliability, arXiv:1910.03345): large Bluetooth networks live or die by
// the behavior of the bridge nodes that time-share membership across
// piconets.
//
// The shape of the composition is an explicit Topology: a bridge→piconet
// membership map with built-in generators (Ring, Star, Mesh,
// RandomConnected), validation and connectivity checking, deterministic BFS
// relay routing (Route), and redundancy replication (WithRedundancy —
// K bridges per span, with correlated outages charged only while all K are
// down at once). On top of the data plane, a passive probe plane walks
// multi-hop routes and produces the delay-vs-relay-depth table.
//
// The composition keeps the repo's determinism architecture intact:
//
//   - Each piconet is a full paper campaign (random + realistic testbed
//     pair, built by testbed.NewCampaign) running in its own simulation
//     world. Piconet 0 uses the scatternet's root seed unchanged, so a
//     1-piconet scatternet is bit-identical to the classic single-piconet
//     campaign, and adding piconets or bridges never perturbs another
//     piconet's tables (no state crosses world boundaries).
//   - Bridges live in one additional overlay world together with a NAP-side
//     anchor per piconet. A bridge is a complete stack.Host built from the
//     device catalogue; it attaches to one piconet at a time on a hold-time
//     rotation, carries relayed SDUs through the real HCI → L2CAP → BNEP →
//     PAN path over its radio link, and fails through the same
//     device/recovery processes as any testbed node. A bridge failure takes
//     the inter-piconet service of every piconet it serves down for the
//     recovery TTR — the correlated outage the analysis attributes per
//     bridge and per piconet (analysis.BridgeTable).
//
// All aggregation is streaming-compatible: per-piconet tables come from one
// analysis.Streamer per piconet and the bridge accumulators are O(1) by
// construction, so month-scale scatternet campaigns run in constant memory.
//
// The execution model is sharded for city scale (10³ piconets): the piconet
// index space is partitioned into Parallelism contiguous ranges, each run by
// one worker that lazily builds, runs and — in Rollup mode — folds one
// piconet world at a time, so live memory is O(Parallelism), not
// O(Piconets). Relay probing samples a seeded subset of ordered pairs
// (ProbePairFraction) to flatten the O(P²) probe wall, and the hierarchical
// roll-up merges per-shard partials into one metro-wide report whose bytes
// are shard-count invariant. The overlay deliberately stays a single world:
// bridges share the NAP anchors and the connection-handle sequence, so
// splitting it would change results — and it is O(bridges), not O(P²), so
// it is never the scaling bottleneck.
package scatternet

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/analysis"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/testbed"
)

// Defaults for the bridge overlay knobs.
const (
	// DefaultHoldTime is the bridge residency per piconet visit.
	DefaultHoldTime = 10 * sim.Second
	// DefaultRelayEvery is the mean inter-arrival of relay SDUs per
	// directed inter-piconet flow.
	DefaultRelayEvery = 30 * sim.Second
	// DefaultRelayBytes is the relayed SDU size (a bulk BNEP payload).
	DefaultRelayBytes = 1024
	// DefaultQueueCap bounds each store-and-forward queue so overlay
	// memory stays O(1) even when a bridge is down for a long recovery.
	DefaultQueueCap = 64
	// DefaultRelayProbeEvery is the mean inter-arrival of multi-hop relay
	// probes per ordered piconet pair.
	DefaultRelayProbeEvery = 60 * sim.Second
)

// Config describes one scatternet campaign.
type Config struct {
	// Seed roots all randomness; piconet p derives PiconetSeed(Seed, p) and
	// the bridge overlay derives its own independent world seed.
	Seed uint64
	// Duration is the virtual observation window.
	Duration sim.Time
	// Scenario selects the recovery regime for piconet nodes and bridges.
	Scenario recovery.Scenario
	// Piconets is the number of composed piconet campaigns (>= 1). When
	// Topology is set it may be left zero (the topology dictates it);
	// otherwise it must agree with Topology.Piconets.
	Piconets int
	// Bridges is the number of bridge nodes (0 disables the overlay;
	// bridges need at least two piconets to connect). Without an explicit
	// Topology, bridge b serves the legacy ring pair (b mod Piconets,
	// (b+1) mod Piconets) — RingBridges(Piconets, Bridges) made implicit.
	Bridges int
	// Topology is the explicit bridge→piconet membership map. nil keeps
	// the legacy ring composition above; a non-nil topology overrides
	// Piconets/Bridges (which, when non-zero, must agree with it).
	Topology *Topology
	// HoldTime is the bridge residency per piconet visit (default 10 s):
	// at every multiple of HoldTime a bridge detaches from its current
	// piconet and attaches to the next one it serves.
	HoldTime sim.Time
	// RelayEvery is the mean inter-arrival of relay SDUs per directed
	// inter-piconet flow (default 30 s, exponential).
	RelayEvery sim.Time
	// RelayBytes is the relayed SDU size (default 1024).
	RelayBytes int
	// QueueCap bounds each per-destination store-and-forward queue
	// (default 64); arrivals beyond it are counted as queue drops.
	QueueCap int
	// RelayProbeEvery is the mean inter-arrival of multi-hop relay probes
	// per sampled ordered piconet pair (default 60 s). Probes walk the
	// topology's minimum-hop route analytically — they read bridge state
	// but never perturb it — and feed the delay-vs-relay-depth table.
	RelayProbeEvery sim.Time
	// ProbePairFraction samples the relay probe plane over a seeded subset
	// of ordered piconet pairs: each pair is kept with this independent
	// probability, drawn deterministically from the campaign seed (see
	// samplePairs). 0 (the unset default) and 1 probe every pair — the
	// exhaustive pre-sampling plane, byte-identical. Sampling cannot
	// perturb the data plane, and the delay-vs-depth table's probe counts
	// scale back by 1/fraction (analysis.RelayDepthAccum.EstimatedProbes,
	// Horvitz–Thompson) while the delay moments are unbiased as sampled.
	// City-scale runs want roughly 4·Piconets kept pairs, i.e. a fraction
	// around 4/(Piconets-1) — the O(P²) probe wall flattened to O(P).
	ProbePairFraction float64
	// Streaming folds each piconet's records into running aggregates as
	// they are collected (O(1) memory in campaign length), exactly like
	// the single-piconet streaming plane.
	Streaming bool
	// FlushEvery is the streaming drain cadence (default one virtual hour).
	FlushEvery sim.Time
	// Rollup (requires Streaming) folds every finished piconet into its
	// shard's partial — merged hierarchically into Result.Rollup, the one
	// metro-wide report — and drops the per-piconet results, so live
	// memory stays flat in Piconets (Result.Piconets comes back nil).
	Rollup bool
	// Parallelism is the piconet plane's shard count: piconets are
	// partitioned into that many contiguous index ranges, each processed
	// in ascending order by one worker goroutine that lazily builds, runs
	// and (in rollup mode) folds one piconet world at a time, while the
	// bridge overlay — a single world by construction, bridges share NAP
	// anchors — runs concurrently. 0 means GOMAXPROCS, capped at Piconets;
	// 1 forces the fully sequential path (piconets in index order on the
	// calling goroutine, then the overlay). Any value produces identical
	// results: no state crosses a world boundary until everything has
	// finished, and the roll-up's merge is shard-count invariant (pinned
	// by the golden equivalence and merge-law suites).
	Parallelism int

	// MutateBridgeHost adjusts bridge host configurations before the
	// overlay is built (fault-forcing hook for tests).
	MutateBridgeHost func(bridge string, cfg *stack.Config)
	// OnBridgeHop observes completed residency switches (test hook; must
	// not retain references past the call).
	OnBridgeHop func(bridge string, at sim.Time, piconet int)
}

// withDefaults fills the zero-value knobs.
func (c Config) withDefaults() Config {
	if c.HoldTime == 0 {
		c.HoldTime = DefaultHoldTime
	}
	if c.RelayEvery == 0 {
		c.RelayEvery = DefaultRelayEvery
	}
	if c.RelayBytes == 0 {
		c.RelayBytes = DefaultRelayBytes
	}
	if c.QueueCap == 0 {
		c.QueueCap = DefaultQueueCap
	}
	if c.RelayProbeEvery == 0 {
		c.RelayProbeEvery = DefaultRelayProbeEvery
	}
	if c.FlushEvery == 0 {
		c.FlushEvery = sim.Hour
	}
	return c
}

// effectiveTopology resolves the campaign's membership map: the explicit
// Topology when set, the legacy ring otherwise.
func (c Config) effectiveTopology() Topology {
	if c.Topology != nil {
		return *c.Topology
	}
	return RingBridges(c.Piconets, c.Bridges)
}

// Validate reports configuration errors (on the defaulted view, so a zero
// HoldTime is filled in, not rejected).
func (c Config) Validate() error {
	c = c.withDefaults()
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("scatternet: non-positive campaign duration")
	case c.Scenario < recovery.ScenarioRebootOnly || c.Scenario > recovery.ScenarioSIRAsMasking:
		return fmt.Errorf("scatternet: unknown scenario %d", c.Scenario)
	case c.HoldTime <= 0:
		return fmt.Errorf("scatternet: non-positive bridge hold time")
	case c.RelayEvery <= 0:
		return fmt.Errorf("scatternet: non-positive relay inter-arrival time")
	case c.RelayProbeEvery <= 0:
		return fmt.Errorf("scatternet: non-positive relay probe inter-arrival time")
	case c.RelayBytes <= 0:
		return fmt.Errorf("scatternet: non-positive relay SDU size")
	case c.QueueCap <= 0:
		return fmt.Errorf("scatternet: non-positive relay queue capacity")
	case c.FlushEvery < 0:
		return fmt.Errorf("scatternet: negative streaming flush interval")
	case math.IsNaN(c.ProbePairFraction):
		return fmt.Errorf("scatternet: probe pair fraction is NaN (want a fraction in (0, 1]; 1 = exhaustive)")
	case c.ProbePairFraction < 0 || c.ProbePairFraction > 1:
		return fmt.Errorf("scatternet: probe pair fraction %v outside [0, 1]", c.ProbePairFraction)
	case c.Rollup && !c.Streaming:
		return fmt.Errorf("scatternet: hierarchical roll-up requires the streaming plane")
	case c.Parallelism < 0:
		return fmt.Errorf("scatternet: negative parallelism")
	}
	if c.Topology == nil {
		switch {
		case c.Piconets < 1:
			return fmt.Errorf("scatternet: need at least one piconet, got %d", c.Piconets)
		case c.Bridges < 0:
			return fmt.Errorf("scatternet: negative bridge count")
		case c.Bridges > 0 && c.Piconets < 2:
			return fmt.Errorf("scatternet: %d bridge(s) need at least two piconets to connect", c.Bridges)
		}
		return nil
	}
	if err := c.Topology.Validate(); err != nil {
		return err
	}
	if c.Piconets != 0 && c.Piconets != c.Topology.Piconets {
		return fmt.Errorf("scatternet: Piconets %d disagrees with topology's %d", c.Piconets, c.Topology.Piconets)
	}
	if c.Bridges != 0 && c.Bridges != c.Topology.Bridges() {
		return fmt.Errorf("scatternet: Bridges %d disagrees with topology's %d", c.Bridges, c.Topology.Bridges())
	}
	return nil
}

// PiconetSeed derives piconet p's campaign seed. Piconet 0 keeps the root
// seed unchanged — the 1-piconet ≡ single-piconet bit-identity guarantee —
// and later piconets decorrelate through a golden-ratio multiply.
func PiconetSeed(seed uint64, p int) uint64 {
	if p == 0 {
		return seed
	}
	return seed ^ (uint64(p) * 0x9E3779B97F4A7C15)
}

// Piconet is one composed piconet's collected data.
type Piconet struct {
	// Index is the piconet's position in the scatternet.
	Index int
	// Random / Realistic are the piconet's testbed results (light parts
	// only in streaming mode, as in the single-piconet campaign).
	Random, Realistic *testbed.Results
	// Agg is the piconet's streaming aggregation state (nil when retained).
	Agg *analysis.Aggregates
}

// Result bundles a finished scatternet campaign.
type Result struct {
	Config Config
	// Piconets holds the per-piconet collected data (nil in rollup mode —
	// the per-piconet results are folded into Rollup and dropped as each
	// piconet finishes, which is what keeps live memory flat in Piconets).
	Piconets []*Piconet
	// Topology is the effective bridge→piconet membership map the campaign
	// ran (the explicit one, or the legacy ring made explicit).
	Topology Topology
	// Bridges is the bridge-attributed aggregate (empty table when the
	// campaign had no bridges).
	Bridges *analysis.BridgeTable
	// RelayDepth is the delay-vs-relay-depth aggregate from the multi-hop
	// probe plane (empty when the campaign had no bridges).
	RelayDepth *analysis.RelayDepthAccum
	// Redundancy is the per-span redundancy aggregate: one row per group of
	// bridges serving the same piconet set (empty table without bridges).
	Redundancy *analysis.RedundancyTable
	// Rollup is the hierarchical metro-wide roll-up (rollup mode only):
	// deployment Table 2/3/4 merged across every piconet, the per-piconet
	// overview, the all-bridge summary and the sampled delay-vs-depth
	// table. Its bytes are shard-count invariant.
	Rollup *analysis.ScatternetRollup
}

// Campaign is a live scatternet: the piconet plane (testbed pairs built
// lazily, one per shard worker at a time) plus the bridge overlay.
type Campaign struct {
	cfg     Config
	topo    Topology
	overlay *overlay
}

// New assembles the scatternet: the effective topology and, when it deploys
// bridges, the overlay world with its bridge hosts and per-piconet NAP
// anchors. Piconet worlds are NOT built here — each shard worker constructs
// its piconets one at a time during Run (testbed.NewCampaign per piconet,
// arena-backed by the slab event kernel), so a 10³-piconet campaign never
// holds more than Parallelism piconet worlds live at once.
func New(cfg Config) (*Campaign, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo := cfg.effectiveTopology()
	cfg.Piconets, cfg.Bridges = topo.Piconets, topo.Bridges()
	c := &Campaign{cfg: cfg, topo: topo}
	if topo.Bridges() > 0 {
		c.overlay = newOverlay(cfg, topo)
	}
	return c, nil
}

// shardCount resolves the piconet plane's worker count.
func (c *Campaign) shardCount() int {
	s := c.cfg.Parallelism
	if s <= 0 {
		s = runtime.GOMAXPROCS(0)
	}
	if s > c.topo.Piconets {
		s = c.topo.Piconets
	}
	if s < 1 {
		s = 1
	}
	return s
}

// shardState is one shard worker's output: the retained piconet results, or
// (rollup mode) the fold its piconets were absorbed into.
type shardState struct {
	piconets []*Piconet
	fold     *analysis.ScatternetFold
	err      error
}

// Run drives the piconet plane and the bridge overlay for the configured
// duration and gathers the results. Piconets are partitioned into
// shardCount contiguous index ranges; each shard worker lazily builds, runs
// and folds its piconets in ascending order while the overlay — one
// independent world — runs concurrently. Every simulation owns its kernel,
// RNG rig, hosts and logs, so no state crosses a world boundary until
// everything has finished and the results are identical for any shard
// count; Parallelism 1 degenerates to the fully sequential legacy path
// (piconets in order on the calling goroutine, then the overlay), which the
// golden equivalence suite pins byte-identical to the pre-shard engine.
func (c *Campaign) Run() (*Result, error) {
	res := &Result{
		Config:     c.cfg,
		Topology:   c.topo,
		Bridges:    &analysis.BridgeTable{},
		RelayDepth: analysis.NewRelayDepthAccum(),
		Redundancy: &analysis.RedundancyTable{},
	}
	shards := c.shardCount()
	states := make([]shardState, shards)
	bounds := func(s int) (lo, hi int) {
		return s * c.topo.Piconets / shards, (s + 1) * c.topo.Piconets / shards
	}
	if c.cfg.Parallelism == 1 {
		states[0] = c.runShard(0, c.topo.Piconets)
		if c.overlay != nil {
			c.overlay.Run(c.cfg.Duration)
		}
	} else {
		var wg sync.WaitGroup
		for s := 0; s < shards; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				lo, hi := bounds(s)
				states[s] = c.runShard(lo, hi)
			}(s)
		}
		if c.overlay != nil {
			c.overlay.Run(c.cfg.Duration)
		}
		wg.Wait()
	}
	for _, st := range states {
		if st.err != nil {
			return nil, st.err
		}
	}
	if c.overlay != nil {
		res.Bridges = c.overlay.Table()
		res.RelayDepth = c.overlay.prober.acc
		res.Redundancy = c.overlay.RedundancyTable(c.cfg.Duration)
	}
	if c.cfg.Rollup {
		roll, err := c.rollup(states, res)
		if err != nil {
			return nil, err
		}
		res.Rollup = roll
		return res, nil
	}
	for _, st := range states {
		res.Piconets = append(res.Piconets, st.piconets...)
	}
	return res, nil
}

// runShard builds, runs and collects piconets [lo, hi) in ascending order.
// In rollup mode each finished piconet folds into the shard's partial and
// is dropped immediately, so the shard's live state is one piconet world
// plus O(1) fold accumulators regardless of its range size.
func (c *Campaign) runShard(lo, hi int) shardState {
	var st shardState
	if c.cfg.Rollup {
		st.fold = analysis.NewScatternetFold(c.cfg.Scenario.String())
	}
	for p := lo; p < hi; p++ {
		pic, trace, err := c.runPiconet(p)
		if err != nil {
			st.err = err
			return st
		}
		if c.cfg.Rollup {
			if err := st.fold.AddPiconet(p, pic.Agg, trace); err != nil {
				st.err = err
				return st
			}
			continue
		}
		st.piconets = append(st.piconets, pic)
	}
	return st
}

// runPiconet lazily builds and runs one piconet's testbed pair on the
// configured plane. The control flow mirrors the single-piconet campaign
// runner exactly, so piconet 0's outputs are bit-identical to it; both
// testbeds run sequentially on the shard worker's goroutine (parallelism
// comes from sharding the piconet space, and the sequential testbed paths
// produce results identical to the goroutine-per-testbed ones). In rollup
// mode the streamer also records the depend trace the metro fold
// re-interleaves.
func (c *Campaign) runPiconet(p int) (*Piconet, []analysis.DependEvent, error) {
	pair, err := testbed.NewCampaign(PiconetSeed(c.cfg.Seed, p), c.cfg.Scenario, nil)
	if err != nil {
		return nil, nil, err
	}
	pic := &Piconet{Index: p}
	if !c.cfg.Streaming {
		pic.Random, pic.Realistic = pair.RunSequential(c.cfg.Duration)
		return pic, nil, nil
	}
	spec := pair.StreamSpec()
	if c.cfg.Rollup {
		spec.TraceDepend = true
	}
	s, err := analysis.NewStreamer(spec)
	if err != nil {
		return nil, nil, err
	}
	pic.Random, pic.Realistic = pair.RunStreamingSequential(c.cfg.Duration, c.cfg.FlushEvery, s)
	pic.Agg = s.Finalize()
	if c.cfg.Rollup {
		// Every piconet pair uses the same testbed/node roster, so the
		// survival accumulators of two piconets would collide on their
		// open-stream keys when the fold merges them: close every open
		// uptime interval at the campaign horizon first (exact — the
		// horizon is where a lone campaign would censor them anyway).
		pic.Agg.Surv.Censor(c.cfg.Duration)
	}
	return pic, s.DependTrace(), nil
}

// rollup merges the shard partials into the metro-wide report: the folds
// merge in ascending shard order (exact, so the grouping cannot show), the
// all-bridge summary row merges the bridge rows in row order, and the
// relay-depth table merges the prober's per-source partials in ascending
// source order — every combination order is fixed by the campaign, not by
// the sharding, which is what makes the report bytes shard-count invariant.
func (c *Campaign) rollup(states []shardState, res *Result) (*analysis.ScatternetRollup, error) {
	fold := states[0].fold
	for _, st := range states[1:] {
		if err := fold.Merge(st.fold); err != nil {
			return nil, err
		}
	}
	agg, overview, err := fold.Finalize()
	if err != nil {
		return nil, err
	}
	roll := &analysis.ScatternetRollup{
		Piconets:          c.topo.Piconets,
		Scenario:          c.cfg.Scenario.String(),
		Agg:               agg,
		Overview:          overview,
		ProbePairFraction: probeFraction(c.cfg.ProbePairFraction),
	}
	if c.overlay != nil {
		if rows := res.Bridges.Rows; len(rows) > 0 {
			sum := analysis.NewBridgeAccum("all", "-", nil)
			for _, r := range rows {
				sum.Merge(r)
			}
			roll.Bridges, roll.BridgeCount = sum, len(rows)
		}
		rd := analysis.NewRelayDepthAccum()
		for _, a := range c.overlay.prober.bySrc {
			rd.Merge(a)
		}
		roll.RelayDepth = rd
	}
	return roll, nil
}

// probeFraction normalizes the configured sampling fraction for reporting
// (0, the unset default, means exhaustive — fraction 1).
func probeFraction(f float64) float64 {
	if f <= 0 || f >= 1 {
		return 1
	}
	return f
}
