// Package scatternet composes the paper's single-piconet testbeds into a
// bridged multi-piconet topology — the scenario the paper's taxonomy lacks
// and scatternet studies need (BlueSky, arXiv:1308.2950; Bluetooth-mesh
// reliability, arXiv:1910.03345): large Bluetooth networks live or die by
// the behavior of the bridge nodes that time-share membership across
// piconets.
//
// The shape of the composition is an explicit Topology: a bridge→piconet
// membership map with built-in generators (Ring, Star, Mesh,
// RandomConnected), validation and connectivity checking, deterministic BFS
// relay routing (Route), and redundancy replication (WithRedundancy —
// K bridges per span, with correlated outages charged only while all K are
// down at once). On top of the data plane, a passive probe plane walks
// multi-hop routes and produces the delay-vs-relay-depth table.
//
// The composition keeps the repo's determinism architecture intact:
//
//   - Each piconet is a full paper campaign (random + realistic testbed
//     pair, built by testbed.NewCampaign) running in its own simulation
//     world. Piconet 0 uses the scatternet's root seed unchanged, so a
//     1-piconet scatternet is bit-identical to the classic single-piconet
//     campaign, and adding piconets or bridges never perturbs another
//     piconet's tables (no state crosses world boundaries).
//   - Bridges live in one additional overlay world together with a NAP-side
//     anchor per piconet. A bridge is a complete stack.Host built from the
//     device catalogue; it attaches to one piconet at a time on a hold-time
//     rotation, carries relayed SDUs through the real HCI → L2CAP → BNEP →
//     PAN path over its radio link, and fails through the same
//     device/recovery processes as any testbed node. A bridge failure takes
//     the inter-piconet service of every piconet it serves down for the
//     recovery TTR — the correlated outage the analysis attributes per
//     bridge and per piconet (analysis.BridgeTable).
//
// All aggregation is streaming-compatible: per-piconet tables come from one
// analysis.Streamer per piconet and the bridge accumulators are O(1) by
// construction, so month-scale scatternet campaigns run in constant memory.
package scatternet

import (
	"fmt"
	"sync"

	"repro/internal/analysis"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/testbed"
)

// Defaults for the bridge overlay knobs.
const (
	// DefaultHoldTime is the bridge residency per piconet visit.
	DefaultHoldTime = 10 * sim.Second
	// DefaultRelayEvery is the mean inter-arrival of relay SDUs per
	// directed inter-piconet flow.
	DefaultRelayEvery = 30 * sim.Second
	// DefaultRelayBytes is the relayed SDU size (a bulk BNEP payload).
	DefaultRelayBytes = 1024
	// DefaultQueueCap bounds each store-and-forward queue so overlay
	// memory stays O(1) even when a bridge is down for a long recovery.
	DefaultQueueCap = 64
	// DefaultRelayProbeEvery is the mean inter-arrival of multi-hop relay
	// probes per ordered piconet pair.
	DefaultRelayProbeEvery = 60 * sim.Second
)

// Config describes one scatternet campaign.
type Config struct {
	// Seed roots all randomness; piconet p derives PiconetSeed(Seed, p) and
	// the bridge overlay derives its own independent world seed.
	Seed uint64
	// Duration is the virtual observation window.
	Duration sim.Time
	// Scenario selects the recovery regime for piconet nodes and bridges.
	Scenario recovery.Scenario
	// Piconets is the number of composed piconet campaigns (>= 1). When
	// Topology is set it may be left zero (the topology dictates it);
	// otherwise it must agree with Topology.Piconets.
	Piconets int
	// Bridges is the number of bridge nodes (0 disables the overlay;
	// bridges need at least two piconets to connect). Without an explicit
	// Topology, bridge b serves the legacy ring pair (b mod Piconets,
	// (b+1) mod Piconets) — RingBridges(Piconets, Bridges) made implicit.
	Bridges int
	// Topology is the explicit bridge→piconet membership map. nil keeps
	// the legacy ring composition above; a non-nil topology overrides
	// Piconets/Bridges (which, when non-zero, must agree with it).
	Topology *Topology
	// HoldTime is the bridge residency per piconet visit (default 10 s):
	// at every multiple of HoldTime a bridge detaches from its current
	// piconet and attaches to the next one it serves.
	HoldTime sim.Time
	// RelayEvery is the mean inter-arrival of relay SDUs per directed
	// inter-piconet flow (default 30 s, exponential).
	RelayEvery sim.Time
	// RelayBytes is the relayed SDU size (default 1024).
	RelayBytes int
	// QueueCap bounds each per-destination store-and-forward queue
	// (default 64); arrivals beyond it are counted as queue drops.
	QueueCap int
	// RelayProbeEvery is the mean inter-arrival of multi-hop relay probes
	// per ordered piconet pair (default 60 s). Probes walk the topology's
	// minimum-hop route analytically — they read bridge state but never
	// perturb it — and feed the delay-vs-relay-depth table.
	RelayProbeEvery sim.Time
	// Streaming folds each piconet's records into running aggregates as
	// they are collected (O(1) memory in campaign length), exactly like
	// the single-piconet streaming plane.
	Streaming bool
	// FlushEvery is the streaming drain cadence (default one virtual hour).
	FlushEvery sim.Time
	// Parallelism 0 (default) runs the piconets and the bridge overlay on
	// separate goroutines (each owns its world, so results are identical
	// to sequential execution); 1 forces a single goroutine.
	Parallelism int

	// MutateBridgeHost adjusts bridge host configurations before the
	// overlay is built (fault-forcing hook for tests).
	MutateBridgeHost func(bridge string, cfg *stack.Config)
	// OnBridgeHop observes completed residency switches (test hook; must
	// not retain references past the call).
	OnBridgeHop func(bridge string, at sim.Time, piconet int)
}

// withDefaults fills the zero-value knobs.
func (c Config) withDefaults() Config {
	if c.HoldTime == 0 {
		c.HoldTime = DefaultHoldTime
	}
	if c.RelayEvery == 0 {
		c.RelayEvery = DefaultRelayEvery
	}
	if c.RelayBytes == 0 {
		c.RelayBytes = DefaultRelayBytes
	}
	if c.QueueCap == 0 {
		c.QueueCap = DefaultQueueCap
	}
	if c.RelayProbeEvery == 0 {
		c.RelayProbeEvery = DefaultRelayProbeEvery
	}
	if c.FlushEvery == 0 {
		c.FlushEvery = sim.Hour
	}
	return c
}

// effectiveTopology resolves the campaign's membership map: the explicit
// Topology when set, the legacy ring otherwise.
func (c Config) effectiveTopology() Topology {
	if c.Topology != nil {
		return *c.Topology
	}
	return RingBridges(c.Piconets, c.Bridges)
}

// Validate reports configuration errors (on the defaulted view, so a zero
// HoldTime is filled in, not rejected).
func (c Config) Validate() error {
	c = c.withDefaults()
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("scatternet: non-positive campaign duration")
	case c.Scenario < recovery.ScenarioRebootOnly || c.Scenario > recovery.ScenarioSIRAsMasking:
		return fmt.Errorf("scatternet: unknown scenario %d", c.Scenario)
	case c.HoldTime <= 0:
		return fmt.Errorf("scatternet: non-positive bridge hold time")
	case c.RelayEvery <= 0:
		return fmt.Errorf("scatternet: non-positive relay inter-arrival time")
	case c.RelayProbeEvery <= 0:
		return fmt.Errorf("scatternet: non-positive relay probe inter-arrival time")
	case c.RelayBytes <= 0:
		return fmt.Errorf("scatternet: non-positive relay SDU size")
	case c.QueueCap <= 0:
		return fmt.Errorf("scatternet: non-positive relay queue capacity")
	case c.FlushEvery < 0:
		return fmt.Errorf("scatternet: negative streaming flush interval")
	}
	if c.Topology == nil {
		switch {
		case c.Piconets < 1:
			return fmt.Errorf("scatternet: need at least one piconet, got %d", c.Piconets)
		case c.Bridges < 0:
			return fmt.Errorf("scatternet: negative bridge count")
		case c.Bridges > 0 && c.Piconets < 2:
			return fmt.Errorf("scatternet: %d bridge(s) need at least two piconets to connect", c.Bridges)
		}
		return nil
	}
	if err := c.Topology.Validate(); err != nil {
		return err
	}
	if c.Piconets != 0 && c.Piconets != c.Topology.Piconets {
		return fmt.Errorf("scatternet: Piconets %d disagrees with topology's %d", c.Piconets, c.Topology.Piconets)
	}
	if c.Bridges != 0 && c.Bridges != c.Topology.Bridges() {
		return fmt.Errorf("scatternet: Bridges %d disagrees with topology's %d", c.Bridges, c.Topology.Bridges())
	}
	return nil
}

// PiconetSeed derives piconet p's campaign seed. Piconet 0 keeps the root
// seed unchanged — the 1-piconet ≡ single-piconet bit-identity guarantee —
// and later piconets decorrelate through a golden-ratio multiply.
func PiconetSeed(seed uint64, p int) uint64 {
	if p == 0 {
		return seed
	}
	return seed ^ (uint64(p) * 0x9E3779B97F4A7C15)
}

// Piconet is one composed piconet's collected data.
type Piconet struct {
	// Index is the piconet's position in the scatternet.
	Index int
	// Random / Realistic are the piconet's testbed results (light parts
	// only in streaming mode, as in the single-piconet campaign).
	Random, Realistic *testbed.Results
	// Agg is the piconet's streaming aggregation state (nil when retained).
	Agg *analysis.Aggregates
}

// Result bundles a finished scatternet campaign.
type Result struct {
	Config   Config
	Piconets []*Piconet
	// Topology is the effective bridge→piconet membership map the campaign
	// ran (the explicit one, or the legacy ring made explicit).
	Topology Topology
	// Bridges is the bridge-attributed aggregate (empty table when the
	// campaign had no bridges).
	Bridges *analysis.BridgeTable
	// RelayDepth is the delay-vs-relay-depth aggregate from the multi-hop
	// probe plane (empty when the campaign had no bridges).
	RelayDepth *analysis.RelayDepthAccum
	// Redundancy is the per-span redundancy aggregate: one row per group of
	// bridges serving the same piconet set (empty table without bridges).
	Redundancy *analysis.RedundancyTable
}

// Campaign is a live scatternet: the per-piconet testbed pairs plus the
// bridge overlay.
type Campaign struct {
	cfg     Config
	topo    Topology
	pairs   []*testbed.Campaign
	overlay *overlay
}

// New assembles the scatternet: one testbed pair per piconet (piconet 0
// with the unmodified root seed) and, when the topology deploys bridges,
// the overlay world with its bridge hosts and per-piconet NAP anchors.
func New(cfg Config) (*Campaign, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo := cfg.effectiveTopology()
	cfg.Piconets, cfg.Bridges = topo.Piconets, topo.Bridges()
	c := &Campaign{cfg: cfg, topo: topo}
	for p := 0; p < topo.Piconets; p++ {
		pair, err := testbed.NewCampaign(PiconetSeed(cfg.Seed, p), cfg.Scenario, nil)
		if err != nil {
			return nil, err
		}
		c.pairs = append(c.pairs, pair)
	}
	if topo.Bridges() > 0 {
		c.overlay = newOverlay(cfg, topo)
	}
	return c, nil
}

// Run drives every piconet pair and the bridge overlay for the configured
// duration and gathers the results. The piconets and the overlay are fully
// independent simulations (each owns its kernel, RNG rig, hosts and logs),
// so they run on separate goroutines unless Parallelism forces one; per-seed
// determinism is untouched because no state crosses a world boundary until
// everything has finished.
func (c *Campaign) Run() (*Result, error) {
	res := &Result{
		Config:     c.cfg,
		Piconets:   make([]*Piconet, len(c.pairs)),
		Topology:   c.topo,
		Bridges:    &analysis.BridgeTable{},
		RelayDepth: analysis.NewRelayDepthAccum(),
		Redundancy: &analysis.RedundancyTable{},
	}
	errs := make([]error, len(c.pairs))
	if c.cfg.Parallelism == 1 {
		for p := range c.pairs {
			res.Piconets[p], errs[p] = c.runPiconet(p)
		}
		if c.overlay != nil {
			c.overlay.Run(c.cfg.Duration)
		}
	} else {
		var wg sync.WaitGroup
		for p := range c.pairs {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				res.Piconets[p], errs[p] = c.runPiconet(p)
			}(p)
		}
		if c.overlay != nil {
			c.overlay.Run(c.cfg.Duration)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if c.overlay != nil {
		res.Bridges = c.overlay.Table()
		res.RelayDepth = c.overlay.prober.acc
		res.Redundancy = c.overlay.RedundancyTable(c.cfg.Duration)
	}
	return res, nil
}

// runPiconet runs one piconet's testbed pair on the configured plane. The
// control flow mirrors the single-piconet campaign runner exactly, so
// piconet 0's outputs are bit-identical to it.
func (c *Campaign) runPiconet(p int) (*Piconet, error) {
	pair := c.pairs[p]
	pic := &Piconet{Index: p}
	if c.cfg.Streaming {
		s, err := analysis.NewStreamer(pair.StreamSpec())
		if err != nil {
			return nil, err
		}
		if c.cfg.Parallelism == 1 {
			pic.Random, pic.Realistic = pair.RunStreamingSequential(c.cfg.Duration, c.cfg.FlushEvery, s)
		} else {
			pic.Random, pic.Realistic = pair.RunStreaming(c.cfg.Duration, c.cfg.FlushEvery, s)
		}
		pic.Agg = s.Finalize()
	} else if c.cfg.Parallelism == 1 {
		pic.Random, pic.Realistic = pair.RunSequential(c.cfg.Duration)
	} else {
		pic.Random, pic.Realistic = pair.Run(c.cfg.Duration)
	}
	return pic, nil
}
