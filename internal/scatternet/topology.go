package scatternet

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// Topology is the explicit bridge→piconet membership map of a scatternet:
// Members[b] lists the piconets bridge b time-shares across, in the order of
// its residency rotation. The type generalizes PR 3's implicit ring — any
// membership map is expressible, bridges may span more than two piconets,
// and several bridges may span the same piconet set (a redundancy group, see
// RedundancyGroups). Generators for the common shapes are Ring, Star, Mesh
// and RandomConnected; WithRedundancy replicates every bridge K times.
type Topology struct {
	// Piconets is the number of piconets in the scatternet (>= 1).
	Piconets int
	// Members maps each bridge to the piconets it serves: Members[b] must
	// name at least two distinct in-range piconets. An empty Members means
	// no bridge overlay at all.
	Members [][]int
}

// Bridges reports the number of bridge nodes the topology deploys.
func (t Topology) Bridges() int { return len(t.Members) }

// Validate reports membership-map errors: every bridge must serve at least
// two distinct piconets and every index must be in range. (Connectivity is
// deliberately not required — a partially bridged scatternet is a legal,
// measurable deployment — use Connected to check it.)
func (t Topology) Validate() error {
	if t.Piconets < 1 {
		return fmt.Errorf("scatternet: topology needs at least one piconet, got %d", t.Piconets)
	}
	for b, members := range t.Members {
		if len(members) < 2 {
			return fmt.Errorf("scatternet: bridge %d serves %d piconet(s), need at least 2", b, len(members))
		}
		seen := make(map[int]bool, len(members))
		for _, p := range members {
			if p < 0 || p >= t.Piconets {
				return fmt.Errorf("scatternet: bridge %d serves piconet %d, out of range 0..%d", b, p, t.Piconets-1)
			}
			if seen[p] {
				return fmt.Errorf("scatternet: bridge %d serves piconet %d twice", b, p)
			}
			seen[p] = true
		}
	}
	return nil
}

// edgeMap builds the piconet adjacency of the bridge graph: edge[u][v] is
// the lowest-index bridge serving both u and v. Out-of-range members are
// skipped, so the traversals stay safe on unvalidated maps.
func (t Topology) edgeMap() []map[int]int {
	edge := make([]map[int]int, t.Piconets)
	for b, members := range t.Members {
		for _, u := range members {
			if u < 0 || u >= t.Piconets {
				continue
			}
			if edge[u] == nil {
				edge[u] = make(map[int]int, len(members))
			}
			for _, v := range members {
				if v == u || v < 0 || v >= t.Piconets {
					continue
				}
				if old, ok := edge[u][v]; !ok || b < old {
					edge[u][v] = b
				}
			}
		}
	}
	return edge
}

// Connected reports whether every piconet can reach every other over the
// bridge graph (a bridge links all the piconets it serves pairwise). A
// single-piconet topology is trivially connected.
func (t Topology) Connected() bool {
	if t.Piconets <= 1 {
		return true
	}
	edge := t.edgeMap()
	seen := make([]bool, t.Piconets)
	seen[0] = true
	frontier := []int{0}
	reached := 1
	for len(frontier) > 0 {
		p := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for q := range edge[p] {
			if !seen[q] {
				seen[q] = true
				reached++
				frontier = append(frontier, q)
			}
		}
	}
	return reached == t.Piconets
}

// RingBridges is PR 3's implicit ring made explicit: bridges bridge nodes,
// bridge b serving the piconet pair (b mod piconets, (b+1) mod piconets).
// It is the membership map behind the legacy Piconets/Bridges configuration,
// kept bit-identical by the golden equivalence suite.
func RingBridges(piconets, bridges int) Topology {
	t := Topology{Piconets: piconets}
	if piconets < 1 {
		return t // nothing to pair; Validate rejects the piconet count
	}
	for b := 0; b < bridges; b++ {
		t.Members = append(t.Members, []int{b % piconets, (b + 1) % piconets})
	}
	return t
}

// Ring builds the canonical ring of p piconets: one bridge per ring edge,
// bridge b serving (b, (b+1) mod p). A 2-piconet ring collapses to a single
// bridge (its two edges would be parallel bridges — use WithRedundancy for
// that) and a 1-piconet ring has no bridges at all, like Star(1)/Mesh(1).
// Ring(p) equals RingBridges(p, p) for p >= 3.
func Ring(p int) Topology {
	if p <= 1 {
		return Topology{Piconets: p}
	}
	if p == 2 {
		return RingBridges(2, 1)
	}
	return RingBridges(p, p)
}

// Star builds a hub-and-spoke scatternet: piconet 0 is the hub and each of
// the p-1 other piconets hangs off its own bridge (bridge i serves
// (0, i+1)). Every inter-spoke route relays through two bridges, which is
// what makes the star the minimal multi-hop (depth 2) topology.
func Star(p int) Topology {
	t := Topology{Piconets: p}
	for i := 0; i+1 < p; i++ {
		t.Members = append(t.Members, []int{0, i + 1})
	}
	return t
}

// Mesh builds the full mesh: one bridge per unordered piconet pair (i, j),
// i < j, in lexicographic order — every route is a single hop, at the cost
// of p(p-1)/2 bridge nodes.
func Mesh(p int) Topology {
	t := Topology{Piconets: p}
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			t.Members = append(t.Members, []int{i, j})
		}
	}
	return t
}

// randomTopologySalt decorrelates topology generation from every simulation
// world derived from the same root seed.
const randomTopologySalt = 0x5EED70B0106B

// RandomConnected builds a random connected scatternet of p piconets and
// exactly bridges bridge nodes, deterministically from the seed: the first
// p-1 bridges form a uniform random spanning tree (so the graph is always
// connected), and every further bridge spans a random set of two or three
// distinct piconets. bridges < p-1 cannot be connected and is an error.
func RandomConnected(p, bridges int, seed uint64) (Topology, error) {
	if p < 1 {
		return Topology{}, fmt.Errorf("scatternet: random topology needs at least one piconet, got %d", p)
	}
	if bridges < p-1 {
		return Topology{}, fmt.Errorf("scatternet: %d bridge(s) cannot connect %d piconets (need >= %d)", bridges, p, p-1)
	}
	if p < 2 && bridges > 0 {
		return Topology{}, fmt.Errorf("scatternet: bridges need at least two piconets to connect")
	}
	rng := rand.New(rand.NewPCG(seed, randomTopologySalt))
	t := Topology{Piconets: p}
	// Random spanning tree: attach each piconet (in a shuffled order) to a
	// uniformly chosen already-attached one.
	order := rng.Perm(p)
	for i := 1; i < p; i++ {
		t.Members = append(t.Members, []int{order[rng.IntN(i)], order[i]})
	}
	for b := p - 1; b < bridges; b++ {
		span := 2
		if p >= 3 && rng.IntN(4) == 0 {
			span = 3 // an occasional three-piconet bridge exercises wide membership
		}
		t.Members = append(t.Members, rng.Perm(p)[:span])
	}
	return t, nil
}

// WithRedundancy replicates every bridge k times in place, so each original
// span becomes a redundancy group of k bridges serving the same piconets —
// the deployment whose correlated-outage rate the K-out-of-K analysis
// (analysis.RedundancyTable) measures against the independent-failure model.
// k <= 1 returns the topology unchanged.
func (t Topology) WithRedundancy(k int) Topology {
	if k <= 1 {
		return t
	}
	out := Topology{Piconets: t.Piconets}
	for _, members := range t.Members {
		for i := 0; i < k; i++ {
			out.Members = append(out.Members, append([]int(nil), members...))
		}
	}
	return out
}

// spanKey canonicalizes a bridge's membership set (order-insensitive).
func spanKey(members []int) string {
	s := append([]int(nil), members...)
	sort.Ints(s)
	return fmt.Sprint(s)
}

// RedundancyGroups partitions the bridges by the piconet set they span:
// every returned group lists the bridge indices that serve exactly the same
// piconets, in order of first appearance. Groups of size K >= 2 are the
// redundant deployments whose correlated outage is charged only when all K
// members are down at once.
func (t Topology) RedundancyGroups() [][]int {
	index := map[string]int{}
	var groups [][]int
	for b, members := range t.Members {
		k := spanKey(members)
		g, ok := index[k]
		if !ok {
			g = len(groups)
			index[k] = g
			groups = append(groups, nil)
		}
		groups[g] = append(groups[g], b)
	}
	return groups
}

// Hop is one step of a relay route: bridge Bridge picks the SDU up in
// piconet From and delivers it into piconet To on its residency rotation.
type Hop struct {
	// Bridge is the relaying bridge's index.
	Bridge int
	// From and To are the hop's source and destination piconets.
	From, To int
}

// Route computes a minimum-hop relay path from piconet src to piconet dst
// over the bridge graph, deterministically (BFS visiting piconets in
// ascending order, lowest bridge index per edge). It returns nil when dst is
// unreachable and an empty non-nil slice when src == dst. One-shot
// convenience over NewRouter — a caller routing many pairs of the same
// topology should hold a Router, which amortizes the adjacency build and
// the per-source BFS across queries.
func (t Topology) Route(src, dst int) []Hop {
	return NewRouter(t).Route(src, dst)
}

// Router answers minimum-hop route queries over one topology. It builds the
// bridge-graph adjacency (sorted neighbor lists, lowest bridge per edge)
// once and caches one BFS tree per queried source piconet, so routing k
// pairs costs O(E + distinct-sources·(P+E)) instead of the O(k·(P+E))
// rebuild-per-query of Topology.Route — the difference between O(P³) and
// O(P²) for an exhaustive probe plane. Paths are identical to
// Topology.Route's (the BFS visits piconets in the same ascending order and
// prev entries are set exactly once, so an early-terminated and a full
// traversal derive the same path — pinned by TestRouterMatchesRoute).
// Not safe for concurrent use (the tree cache mutates lazily).
type Router struct {
	piconets int
	neigh    [][]int       // sorted neighbor piconets per piconet
	via      []map[int]int // lowest bridge serving each (u, v) edge
	trees    []*routeTree
}

// routeTree is one source piconet's BFS tree.
type routeTree struct {
	prev []Hop
	seen []bool
}

// NewRouter precomputes the topology's routing adjacency.
func NewRouter(t Topology) *Router {
	via := t.edgeMap()
	r := &Router{
		piconets: t.Piconets,
		neigh:    make([][]int, t.Piconets),
		via:      via,
		trees:    make([]*routeTree, t.Piconets),
	}
	for u := range via {
		ns := make([]int, 0, len(via[u]))
		for v := range via[u] {
			ns = append(ns, v)
		}
		sort.Ints(ns)
		r.neigh[u] = ns
	}
	return r
}

// tree returns src's BFS tree, building it on first use.
func (r *Router) tree(src int) *routeTree {
	if t := r.trees[src]; t != nil {
		return t
	}
	t := &routeTree{prev: make([]Hop, r.piconets), seen: make([]bool, r.piconets)}
	t.seen[src] = true
	frontier := []int{src}
	for len(frontier) > 0 {
		var next []int
		for _, u := range frontier {
			for _, v := range r.neigh[u] {
				if t.seen[v] {
					continue
				}
				t.seen[v] = true
				t.prev[v] = Hop{Bridge: r.via[u][v], From: u, To: v}
				next = append(next, v)
			}
		}
		frontier = next
	}
	r.trees[src] = t
	return t
}

// Route reports the minimum-hop path from src to dst with Topology.Route's
// exact semantics: nil when unreachable, empty non-nil when src == dst.
func (r *Router) Route(src, dst int) []Hop {
	if src < 0 || src >= r.piconets || dst < 0 || dst >= r.piconets {
		return nil
	}
	if src == dst {
		return []Hop{}
	}
	t := r.tree(src)
	if !t.seen[dst] {
		return nil
	}
	var path []Hop
	for v := dst; v != src; v = t.prev[v].From {
		path = append(path, t.prev[v])
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Spans renders each bridge's membership for display ("0,1" style), aligned
// with Members.
func (t Topology) Spans() []string {
	out := make([]string, len(t.Members))
	for b, members := range t.Members {
		s := ""
		for i, p := range members {
			if i > 0 {
				s += ","
			}
			s += fmt.Sprint(p)
		}
		out[b] = s
	}
	return out
}
