package scatternet

import (
	"repro/internal/analysis"
	"repro/internal/sim"
)

// redundancyGroup tracks one span's K bridges live: which members are down,
// since when, and the windows in which all of them were down at once — the
// only windows a K-redundant span charges as correlated outages. Bridges
// notify it on their down/up transitions (bridge.fail / bridge.rejoin); the
// group keeps O(K) state, so redundancy accounting is streaming-compatible
// like every other scatternet aggregate.
type redundancyGroup struct {
	row *analysis.RedundancyGroup
	// downSince[i] is member i's current outage start (negative when up).
	downSince    []sim.Time
	downCount    int
	allDownSince sim.Time
}

// newRedundancyGroup allocates the tracker for K bridges spanning span.
func newRedundancyGroup(span []int, names []string) *redundancyGroup {
	g := &redundancyGroup{
		row: &analysis.RedundancyGroup{
			Span:              append([]int(nil), span...),
			Bridges:           append([]string(nil), names...),
			K:                 len(names),
			MemberDownSeconds: make([]float64, len(names)),
		},
		downSince: make([]sim.Time, len(names)),
	}
	for i := range g.downSince {
		g.downSince[i] = -1
	}
	return g
}

// memberDown opens member i's outage window at instant t. When it is the
// last member standing, the whole span's all-down window opens with it.
func (g *redundancyGroup) memberDown(i int, t sim.Time) {
	if g.downSince[i] >= 0 {
		return
	}
	g.downSince[i] = t
	g.downCount++
	g.row.MemberOutages++
	if g.downCount == len(g.downSince) {
		g.allDownSince = t
		g.row.AllDownEpisodes++
	}
}

// memberUp closes member i's outage window at instant t; if the span was
// all-down, the correlated window closes with it.
func (g *redundancyGroup) memberUp(i int, t sim.Time) {
	if g.downSince[i] < 0 {
		return
	}
	if g.downCount == len(g.downSince) {
		ep := (t - g.allDownSince).Seconds()
		g.row.AllDownSeconds += ep
		if ep > g.row.MaxAllDownSeconds {
			g.row.MaxAllDownSeconds = ep
		}
	}
	g.row.MemberDownSeconds[i] += (t - g.downSince[i]).Seconds()
	g.downSince[i] = -1
	g.downCount--
}

// closeAt clamps every open window to the campaign horizon and returns the
// finished analysis row.
func (g *redundancyGroup) closeAt(horizon sim.Time) *analysis.RedundancyGroup {
	for i, since := range g.downSince {
		if since >= 0 {
			g.memberUp(i, horizon)
		}
	}
	g.row.DurationSeconds = horizon.Seconds()
	return g.row
}
