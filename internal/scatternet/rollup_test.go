package scatternet

import (
	"testing"

	"repro/internal/recovery"
	"repro/internal/sim"
)

// rollupConfig is the shared small city-in-miniature: six piconets on a
// ring, streaming plane, sampled probes, hierarchical roll-up.
func rollupConfig() Config {
	topo := Ring(6)
	return Config{
		Seed:              9,
		Duration:          2 * sim.Hour,
		Scenario:          recovery.ScenarioSIRAs,
		Piconets:          6,
		Topology:          &topo,
		HoldTime:          5 * sim.Second,
		ProbePairFraction: 0.5,
		Streaming:         true,
		Rollup:            true,
	}
}

// runRollup runs the config and returns the rendered metro report.
func runRollup(t *testing.T, cfg Config) *Result {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rollup == nil {
		t.Fatal("rollup mode produced no roll-up")
	}
	if len(res.Piconets) != 0 {
		t.Fatalf("rollup mode retained %d per-piconet results, want none", len(res.Piconets))
	}
	return res
}

// TestRollupShardCountInvariance is the merge law at engine level: the same
// campaign folded by 1, 2, 3, 6 or an over-asked 7 shards must render the
// byte-identical metro report — the partials hold only exact sums and the
// order-sensitive dependability accumulator is re-derived over the totally
// ordered deployment trace, so shard boundaries and completion order can
// leave no trace in the output.
func TestRollupShardCountInvariance(t *testing.T) {
	want := ""
	for _, shards := range []int{1, 2, 3, 6, 7} {
		cfg := rollupConfig()
		cfg.Parallelism = shards
		got := runRollup(t, cfg).Rollup.Render()
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("%d-shard roll-up differs from the 1-shard report:\n%s\nvs\n%s", shards, got, want)
		}
	}
}

// TestRollupMatchesRetained cross-checks the roll-up against the retained
// engine on the same seed: the deployment data-item total must equal the
// sum over the retained per-piconet aggregates, and the roll-up's overview
// rows must reproduce each retained piconet's dependability column exactly.
func TestRollupMatchesRetained(t *testing.T) {
	rolled := runRollup(t, rollupConfig())

	cfg := rollupConfig()
	cfg.Rollup = false
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	retained, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}

	wantU, wantS := 0, 0
	for _, pic := range retained.Piconets {
		u, s, _ := pic.Agg.DataItems()
		wantU += u
		wantS += s
	}
	gotU, gotS, _ := rolled.Rollup.Agg.DataItems()
	if gotU != wantU || gotS != wantS {
		t.Errorf("roll-up items %d+%d, retained piconets sum to %d+%d", gotU, gotS, wantU, wantS)
	}

	rows := rolled.Rollup.Overview.Rows
	if len(rows) != len(retained.Piconets) {
		t.Fatalf("overview has %d rows for %d piconets", len(rows), len(retained.Piconets))
	}
	scenario := cfg.Scenario.String()
	for i, pic := range retained.Piconets {
		want := pic.Agg.Dependability(scenario)
		got := rows[i].Depend
		if rows[i].Piconet != pic.Index || got.Failures != want.Failures ||
			got.MTTF != want.MTTF || got.MTTR != want.MTTR || got.Availability != want.Availability {
			t.Errorf("overview row %d = %+v, retained piconet says %+v", i, got, want)
		}
	}

	if rolled.Bridges == nil || rolled.Rollup.Bridges == nil {
		t.Fatal("ring campaign must produce a bridge table and an all-bridge summary")
	}
	hops, relayed := 0, 0
	for _, row := range rolled.Bridges.Rows {
		hops += row.Hops
		relayed += row.Relayed
	}
	if rolled.Rollup.Bridges.Hops != hops || rolled.Rollup.Bridges.Relayed != relayed {
		t.Errorf("all-bridge summary hops/relayed %d/%d, bridge rows sum to %d/%d",
			rolled.Rollup.Bridges.Hops, rolled.Rollup.Bridges.Relayed, hops, relayed)
	}
	if rolled.Rollup.BridgeCount != len(rolled.Bridges.Rows) {
		t.Errorf("BridgeCount = %d, bridge table has %d rows", rolled.Rollup.BridgeCount, len(rolled.Bridges.Rows))
	}
}

// TestSamplingDoesNotPerturbDataPlane pins the sampler's central promise:
// probing only a pair subset changes nothing outside the probe plane. The
// sampled run's per-piconet aggregates and bridge table must be
// byte-identical to the exhaustive run's; only the delay-vs-depth table
// thins out (and the roll-up's per-source merge must agree with the legacy
// global accumulator on the total probe count).
func TestSamplingDoesNotPerturbDataPlane(t *testing.T) {
	run := func(fraction float64) *Result {
		topo := Ring(4)
		c, err := New(Config{
			Seed:              3,
			Duration:          2 * sim.Hour,
			Scenario:          recovery.ScenarioSIRAs,
			Piconets:          4,
			Topology:          &topo,
			HoldTime:          5 * sim.Second,
			ProbePairFraction: fraction,
			Streaming:         true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := run(1)
	sampled := run(0.4)

	for p := range full.Piconets {
		if got, want := sampled.Piconets[p].Agg.Table2().Render(), full.Piconets[p].Agg.Table2().Render(); got != want {
			t.Errorf("piconet %d Table 2 changed under probe sampling:\n%s\nvs\n%s", p, got, want)
		}
	}
	if got, want := sampled.Bridges.Render(), full.Bridges.Render(); got != want {
		t.Errorf("bridge table changed under probe sampling:\n%s\nvs\n%s", got, want)
	}
	if sampled.RelayDepth.Probes() >= full.RelayDepth.Probes() {
		t.Errorf("0.4-fraction run probed %d pairs' worth, exhaustive run %d — sampling did not thin the plane",
			sampled.RelayDepth.Probes(), full.RelayDepth.Probes())
	}
}

// TestRollupRelayDepthMatchesGlobal checks the per-source probe partials:
// the roll-up's relay-depth table (merged from per-source accumulators in
// piconet order) must agree with the legacy global accumulator that feeds
// Result.RelayDepth — same depths, same probe counts, same rendered table.
func TestRollupRelayDepthMatchesGlobal(t *testing.T) {
	res := runRollup(t, rollupConfig())
	global, merged := res.RelayDepth, res.Rollup.RelayDepth
	if merged == nil {
		t.Fatal("roll-up has no relay-depth table")
	}
	if got, want := merged.Probes(), global.Probes(); got != want {
		t.Fatalf("roll-up relay-depth has %d probes, global accumulator %d", got, want)
	}
	if got, want := merged.Render(), global.Render(); got != want {
		t.Errorf("roll-up relay-depth renders differently from the global accumulator:\n%s\nvs\n%s", got, want)
	}
}

// TestRollupValidation pins the config guards the roll-up added.
func TestRollupValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"base rollup", func(c *Config) {}, true},
		{"rollup needs streaming", func(c *Config) { c.Streaming = false }, false},
		{"negative fraction", func(c *Config) { c.ProbePairFraction = -0.1 }, false},
		{"fraction above one", func(c *Config) { c.ProbePairFraction = 1.5 }, false},
		{"negative parallelism", func(c *Config) { c.Parallelism = -1 }, false},
		{"fraction one", func(c *Config) { c.ProbePairFraction = 1 }, true},
	}
	for _, tc := range cases {
		cfg := rollupConfig()
		tc.mutate(&cfg)
		if err := cfg.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}
