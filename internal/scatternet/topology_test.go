package scatternet

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// TestTopologyValidate exercises the membership-map invariants.
func TestTopologyValidate(t *testing.T) {
	cases := []struct {
		name string
		topo Topology
		ok   bool
	}{
		{"no piconets", Topology{}, false},
		{"one piconet no bridges", Topology{Piconets: 1}, true},
		{"ring", Ring(4), true},
		{"star", Star(4), true},
		{"mesh", Mesh(4), true},
		{"bridge serving one piconet", Topology{Piconets: 2, Members: [][]int{{0}}}, false},
		{"bridge serving none", Topology{Piconets: 2, Members: [][]int{{}}}, false},
		{"out of range", Topology{Piconets: 2, Members: [][]int{{0, 2}}}, false},
		{"negative piconet", Topology{Piconets: 2, Members: [][]int{{-1, 0}}}, false},
		{"duplicate membership", Topology{Piconets: 3, Members: [][]int{{1, 1}}}, false},
		{"wide bridge", Topology{Piconets: 3, Members: [][]int{{0, 1, 2}}}, true},
	}
	for _, tc := range cases {
		if err := tc.topo.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestGeneratorsValidateAndConnect is the property pass over the built-in
// generators: for every size in range, the generated topology validates,
// is connected, and has the documented bridge count.
func TestGeneratorsValidateAndConnect(t *testing.T) {
	for p := 2; p <= 8; p++ {
		for name, topo := range map[string]Topology{
			"ring": Ring(p), "star": Star(p), "mesh": Mesh(p),
		} {
			if err := topo.Validate(); err != nil {
				t.Errorf("%s(%d): %v", name, p, err)
			}
			if !topo.Connected() {
				t.Errorf("%s(%d) is not connected", name, p)
			}
			if topo.Piconets != p {
				t.Errorf("%s(%d) has %d piconets", name, p, topo.Piconets)
			}
		}
		if got, want := Star(p).Bridges(), p-1; got != want {
			t.Errorf("Star(%d) deploys %d bridges, want %d", p, got, want)
		}
		if got, want := Mesh(p).Bridges(), p*(p-1)/2; got != want {
			t.Errorf("Mesh(%d) deploys %d bridges, want %d", p, got, want)
		}
	}
	if got, want := Ring(2).Bridges(), 1; got != want {
		t.Errorf("Ring(2) deploys %d bridges, want %d (parallel edges collapse)", got, want)
	}
	for p := 3; p <= 8; p++ {
		if !reflect.DeepEqual(Ring(p), RingBridges(p, p)) {
			t.Errorf("Ring(%d) != RingBridges(%d, %d)", p, p, p)
		}
	}
}

// TestRandomConnectedProperties is the fuzz-style property pass over the
// random generator: across many (size, bridge budget, seed) points, every
// generated topology validates, is connected, and lands exactly the
// requested bridge count; generation is deterministic per seed and varies
// across seeds.
func TestRandomConnectedProperties(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		p := 2 + int(seed%7)
		bridges := p - 1 + int(seed%5)
		topo, err := RandomConnected(p, bridges, seed)
		if err != nil {
			t.Fatalf("RandomConnected(%d, %d, %d): %v", p, bridges, seed, err)
		}
		if err := topo.Validate(); err != nil {
			t.Errorf("seed %d: generated topology invalid: %v (%+v)", seed, err, topo)
		}
		if !topo.Connected() {
			t.Errorf("seed %d: generated topology disconnected: %+v", seed, topo)
		}
		if topo.Bridges() != bridges {
			t.Errorf("seed %d: %d bridges, want %d", seed, topo.Bridges(), bridges)
		}
		again, err := RandomConnected(p, bridges, seed)
		if err != nil || !reflect.DeepEqual(topo, again) {
			t.Errorf("seed %d: generation not deterministic: %+v vs %+v (%v)", seed, topo, again, err)
		}
	}
	// Different seeds at a fixed size must explore different graphs.
	distinct := map[string]bool{}
	for seed := uint64(0); seed < 10; seed++ {
		topo, err := RandomConnected(5, 7, seed)
		if err != nil {
			t.Fatal(err)
		}
		distinct[fmt.Sprint(topo.Members)] = true
	}
	if len(distinct) < 2 {
		t.Error("10 seeds of RandomConnected(5, 7) never produced two distinct topologies")
	}
	if _, err := RandomConnected(4, 2, 1); err == nil {
		t.Error("RandomConnected(4, 2) must fail: 2 bridges cannot connect 4 piconets")
	}
	if _, err := RandomConnected(0, 0, 1); err == nil {
		t.Error("RandomConnected(0, 0) must fail")
	}
}

// TestRoute pins the BFS router: shortest hop counts, deterministic bridge
// choice, unreachable pairs, and the src == dst degenerate case.
func TestRoute(t *testing.T) {
	star := Star(4) // bridges: 0:(0,1) 1:(0,2) 2:(0,3)
	if r := star.Route(1, 1); r == nil || len(r) != 0 {
		t.Errorf("Route(1,1) = %v, want empty non-nil", r)
	}
	if r := star.Route(0, 2); !reflect.DeepEqual(r, []Hop{{Bridge: 1, From: 0, To: 2}}) {
		t.Errorf("hub route = %v", r)
	}
	want := []Hop{{Bridge: 0, From: 1, To: 0}, {Bridge: 2, From: 0, To: 3}}
	if r := star.Route(1, 3); !reflect.DeepEqual(r, want) {
		t.Errorf("spoke-to-spoke route = %v, want %v", r, want)
	}
	// Parallel bridges: the lowest index must win, deterministically.
	red := Topology{Piconets: 2, Members: [][]int{{0, 1}, {0, 1}, {1, 0}}}
	if r := red.Route(0, 1); !reflect.DeepEqual(r, []Hop{{Bridge: 0, From: 0, To: 1}}) {
		t.Errorf("redundant-pair route = %v, want bridge 0", r)
	}
	// Disconnected: piconet 3 is an island.
	island := Topology{Piconets: 4, Members: [][]int{{0, 1}, {1, 2}}}
	if r := island.Route(0, 3); r != nil {
		t.Errorf("route to island = %v, want nil", r)
	}
	if island.Connected() {
		t.Error("island topology reports connected")
	}
	// A ring of 6 must route the short way around (3 hops max).
	ring := Ring(6)
	if r := ring.Route(0, 3); len(r) != 3 {
		t.Errorf("Ring(6) 0→3 depth %d, want 3", len(r))
	}
	if r := ring.Route(0, 5); len(r) != 1 {
		t.Errorf("Ring(6) 0→5 depth %d, want 1 (bridge 5 spans 5,0)", len(r))
	}
}

// TestRedundancyGroupsAndReplication pins the span grouping and the
// WithRedundancy replication it consumes.
func TestRedundancyGroupsAndReplication(t *testing.T) {
	base := Star(3) // two bridges, spans (0,1) and (0,2)
	topo := base.WithRedundancy(3)
	if topo.Bridges() != 6 {
		t.Fatalf("3-redundant star deploys %d bridges, want 6", topo.Bridges())
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	groups := topo.RedundancyGroups()
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want 2 spans", groups)
	}
	for _, g := range groups {
		if len(g) != 3 {
			t.Errorf("group %v has %d members, want 3", g, len(g))
		}
	}
	// Order-insensitive span matching: (0,1) and (1,0) are the same span.
	mixed := Topology{Piconets: 2, Members: [][]int{{0, 1}, {1, 0}}}
	if g := mixed.RedundancyGroups(); len(g) != 1 || len(g[0]) != 2 {
		t.Errorf("mixed-order spans grouped as %v, want one group of 2", g)
	}
	if got := base.WithRedundancy(1); !reflect.DeepEqual(got, base) {
		t.Errorf("WithRedundancy(1) changed the topology: %+v", got)
	}
}

// TestNextResidency pins the probe plane's residency arithmetic against the
// live schedule function residencyAt.
func TestNextResidency(t *testing.T) {
	hold := 10 * sim.Second
	serves := []int{4, 7, 2}
	for _, start := range []sim.Time{0, 3 * sim.Second, 10 * sim.Second, 95 * sim.Second} {
		for _, target := range serves {
			at := nextResidency(start, hold, serves, target)
			if at < start {
				t.Fatalf("nextResidency(%v → piconet %d) = %v, before start", start, target, at)
			}
			if got := serves[residencyAt(at, hold, len(serves))]; got != target {
				t.Errorf("nextResidency(%v → piconet %d) = %v, but schedule says piconet %d",
					start, target, at, got)
			}
			// Minimality: no earlier instant in [start, at) is resident.
			for probe := start; probe < at; probe += hold / 2 {
				if serves[residencyAt(probe, hold, len(serves))] == target {
					t.Fatalf("nextResidency(%v → piconet %d) = %v, but %v already resident",
						start, target, at, probe)
				}
			}
		}
	}
}

// TestTraversalsSafeOnUnvalidatedMaps pins that Route and Connected survive
// membership maps Validate would reject (out-of-range members) instead of
// panicking, and that Ring(1) is the bridge-less degenerate ring.
func TestTraversalsSafeOnUnvalidatedMaps(t *testing.T) {
	bad := Topology{Piconets: 2, Members: [][]int{{0, 5}, {-1, 1}}}
	if r := bad.Route(0, 1); r != nil {
		t.Errorf("Route over out-of-range members = %v, want nil (no usable edge)", r)
	}
	if bad.Connected() {
		t.Error("out-of-range members must not connect the graph")
	}
	ring1 := Ring(1)
	if ring1.Bridges() != 0 || ring1.Validate() != nil || !ring1.Connected() {
		t.Errorf("Ring(1) = %+v, want a valid bridge-less single piconet", ring1)
	}
}
