package scatternet

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/analysis"
)

// The district wire layer: piconet partials, fold snapshots and the overlay
// partial must survive a JSON round trip (the scatternet session protocol
// and the district checkpoint both serialize them) with no effect on the
// finalized metro report — snapshotting a fold mid-campaign and restoring
// it is indistinguishable from never having serialized at all.

// runDistrictPartials builds the shared rollup campaign and materializes
// every piconet partial plus the overlay partial.
func runDistrictPartials(t *testing.T) (*Campaign, []*analysis.PiconetPartial, *analysis.OverlayPartial) {
	t.Helper()
	c, err := New(rollupConfig())
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]*analysis.PiconetPartial, c.Piconets())
	for p := range parts {
		if parts[p], err = c.PiconetPartial(p); err != nil {
			t.Fatalf("piconet %d: %v", p, err)
		}
	}
	overlay, err := c.RunOverlay()
	if err != nil {
		t.Fatal(err)
	}
	if overlay == nil {
		t.Fatal("ring campaign produced no overlay partial")
	}
	return c, parts, overlay
}

// foldReport folds the given partials in order and renders the rollup the
// way the collector's merge does.
func foldReport(t *testing.T, scenario string, fold *analysis.ScatternetFold,
	parts []*analysis.PiconetPartial) string {
	t.Helper()
	for _, p := range parts {
		if err := fold.AddPartial(p); err != nil {
			t.Fatal(err)
		}
	}
	agg, overview, err := fold.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	roll := &analysis.ScatternetRollup{Scenario: scenario, Agg: agg, Overview: overview}
	return roll.Render()
}

// TestFoldSnapshotRoundTrip pins the checkpoint law: snapshot a half-folded
// district, push it through JSON (exactly what the sink's durable
// checkpoint and the exported district partial do), restore, fold the rest
// — the report must be byte-identical to the never-serialized fold.
func TestFoldSnapshotRoundTrip(t *testing.T) {
	c, parts, _ := runDistrictPartials(t)
	scenario := c.ScenarioName()

	want := foldReport(t, scenario, analysis.NewScatternetFold(scenario), parts)

	half := analysis.NewScatternetFold(scenario)
	for _, p := range parts[:len(parts)/2] {
		if err := half.AddPartial(p); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := json.Marshal(half.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap analysis.ScatternetFoldSnapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatal(err)
	}
	restored, err := analysis.RestoreScatternetFold(&snap)
	if err != nil {
		t.Fatal(err)
	}
	got := foldReport(t, scenario, restored, parts[len(parts)/2:])
	if got != want {
		t.Errorf("snapshot round trip changed the metro report:\n%s\nvs\n%s", got, want)
	}
}

// TestFoldMergeMatchesSequential pins the district-merge law the collector
// relies on: two disjoint folds merged (each having crossed the wire as a
// snapshot) finalize to the same bytes as one fold over everything.
func TestFoldMergeMatchesSequential(t *testing.T) {
	c, parts, _ := runDistrictPartials(t)
	scenario := c.ScenarioName()
	want := foldReport(t, scenario, analysis.NewScatternetFold(scenario), parts)

	mid := len(parts) / 2
	districts := [][]*analysis.PiconetPartial{parts[:mid], parts[mid:]}
	merged := analysis.NewScatternetFold(scenario)
	for _, dist := range districts {
		f := analysis.NewScatternetFold(scenario)
		for _, p := range dist {
			if err := f.AddPartial(p); err != nil {
				t.Fatal(err)
			}
		}
		blob, err := json.Marshal(f.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		var snap analysis.ScatternetFoldSnapshot
		if err := json.Unmarshal(blob, &snap); err != nil {
			t.Fatal(err)
		}
		restored, err := analysis.RestoreScatternetFold(&snap)
		if err != nil {
			t.Fatal(err)
		}
		if err := merged.Merge(restored); err != nil {
			t.Fatal(err)
		}
	}
	got := foldReport(t, scenario, merged, nil)
	if got != want {
		t.Errorf("merged district folds differ from the sequential fold:\n%s\nvs\n%s", got, want)
	}
}

// TestOverlayPartialRoundTrip pins the overlay wire format: the bridge
// accumulator and relay-depth tables restored from JSON must render exactly
// as the originals (Welford state crosses the wire as (count, mean, M2), so
// equality is on the rendered statistics, the merge's actual output).
func TestOverlayPartialRoundTrip(t *testing.T) {
	_, _, overlay := runDistrictPartials(t)

	blob, err := json.Marshal(overlay)
	if err != nil {
		t.Fatal(err)
	}
	var back analysis.OverlayPartial
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}

	// The all-bridge summary line the metro report prints — counts plus the
	// two Welford summaries, i.e. every wire-crossing field that shows up.
	summary := func(a *analysis.BridgeAccum) string {
		return fmt.Sprintf("hops=%d relayed=%d lost=%d corrupt=%d outages=%d downtime=%.6f mean-latency=%.6f",
			a.Hops, a.Relayed, a.RelayLost, a.RelayCorrupted,
			a.Outages, a.Downtime.Sum(), a.RelayLatency.Mean())
	}
	wantBridges := analysis.RestoreBridgeAccum(overlay.Bridges)
	gotBridges := analysis.RestoreBridgeAccum(back.Bridges)
	if got, want := summary(gotBridges), summary(wantBridges); got != want {
		t.Errorf("all-bridge summary changed across the wire:\n%s\nvs\n%s", got, want)
	}

	wantDepth := analysis.RestoreRelayDepthAccum(overlay.RelayDepth)
	gotDepth := analysis.RestoreRelayDepthAccum(back.RelayDepth)
	frac := probeFraction(rollupConfig().ProbePairFraction)
	if got, want := gotDepth.RenderSampled(frac), wantDepth.RenderSampled(frac); got != want {
		t.Errorf("relay-depth table changed across the wire:\n%s\nvs\n%s", got, want)
	}
}
