package scatternet

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/analysis"
	"repro/internal/sim"
)

// relayAirRateBps is the nominal asymmetric DH5 payload rate used to model a
// relayed SDU's transmission time on the probe plane (723.2 kbps — the
// classic Bluetooth 1.x asymmetric maximum). The probe plane measures
// residency and outage waits, which dominate by orders of magnitude; a
// deterministic airtime keeps the probes free of RNG draws that could
// perturb the data plane's streams.
const relayAirRateBps = 723_200

// relayAirTime models the transmission time of one relayed SDU.
func relayAirTime(bytes int) sim.Time {
	return sim.Time(float64(bytes) * 8 / relayAirRateBps * float64(sim.Second))
}

// prober is the multi-hop relay measurement plane: for every ordered piconet
// pair it offers probe SDUs on an exponential arrival process, walks the
// topology's minimum-hop route, and accounts the end-to-end store-and-forward
// delay by relay depth. The walk is analytic — it reads the bridges' current
// outage state and their deterministic residency schedules without touching
// any bridge or piconet state — so enabling probes cannot perturb the data
// plane (the golden equivalence suite pins this).
type prober struct {
	world   *sim.World
	bridges []*bridge
	hold    sim.Time
	service sim.Time
	every   sim.Time
	acc     *analysis.RelayDepthAccum

	routes [][]Hop // one route per ordered pair, aligned with rngs/fns
	rngs   []*rand.Rand
	fns    []func()
}

// newProber precomputes every ordered pair's route and arrival stream.
func newProber(cfg Config, o *overlay, topo Topology) *prober {
	pr := &prober{
		world:   o.world,
		bridges: o.bridges,
		hold:    cfg.HoldTime,
		service: relayAirTime(cfg.RelayBytes),
		every:   cfg.RelayProbeEvery,
		acc:     analysis.NewRelayDepthAccum(),
	}
	for src := 0; src < topo.Piconets; src++ {
		for dst := 0; dst < topo.Piconets; dst++ {
			if src == dst {
				continue
			}
			i := len(pr.routes)
			pr.routes = append(pr.routes, topo.Route(src, dst))
			pr.rngs = append(pr.rngs, o.world.RNG(fmt.Sprintf("probe.%d.%d", src, dst)))
			pr.fns = append(pr.fns, func() { pr.probe(i) })
		}
	}
	return pr
}

// start schedules every pair's first probe arrival.
func (pr *prober) start() {
	for i := range pr.fns {
		pr.world.ScheduleAfter(pr.next(i), pr.fns[i])
	}
}

// next samples pair i's exponential inter-arrival time.
func (pr *prober) next(i int) sim.Time {
	return sim.Time(pr.rngs[i].ExpFloat64() * float64(pr.every))
}

// probe offers one SDU on pair i's flow: walk the route hop by hop, waiting
// out any outage in progress, rotating to the pickup piconet, carrying the
// SDU, and rotating again to deliver — per-hop store-and-forward, exactly
// the delay anatomy of a scatternet relay path.
func (pr *prober) probe(i int) {
	now := pr.world.Now()
	pr.world.ScheduleAfter(pr.next(i), pr.fns[i])
	route := pr.routes[i]
	if route == nil {
		pr.acc.AddUnreachable()
		return
	}
	t := now
	for _, h := range route {
		b := pr.bridges[h.Bridge]
		// Wait out the bridge's current outage (future failures are unknown
		// at offer time; this is the delay the sender observes).
		if t < b.downUntil {
			t = b.downUntil
		}
		// Pickup: the bridge must rotate its residency to the hop's source.
		t = nextResidency(t, pr.hold, b.serves, h.From)
		// Carry: one SDU transmission into the bridge's queue discipline.
		t += pr.service
		// Delivery: rotate to the hop's destination piconet.
		t = nextResidency(t, pr.hold, b.serves, h.To)
	}
	pr.acc.AddProbe(len(route), (t - now).Seconds())
}

// nextResidency reports the earliest instant >= t at which the hold schedule
// has the bridge resident in piconet target (t itself when already there).
// A bridge that does not serve target never becomes resident; the routing
// layer guarantees that cannot be asked.
func nextResidency(t, hold sim.Time, serves []int, target int) sim.Time {
	idx := -1
	for i, p := range serves {
		if p == target {
			idx = i
			break
		}
	}
	if idx < 0 || len(serves) < 2 {
		return t
	}
	slot := int64(t) / int64(hold)
	ahead := (int64(idx) - slot%int64(len(serves)) + int64(len(serves))) % int64(len(serves))
	if ahead == 0 {
		return t
	}
	return sim.Time((slot + ahead) * int64(hold))
}
