package scatternet

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/analysis"
	"repro/internal/sim"
)

// relayAirRateBps is the nominal asymmetric DH5 payload rate used to model a
// relayed SDU's transmission time on the probe plane (723.2 kbps — the
// classic Bluetooth 1.x asymmetric maximum). The probe plane measures
// residency and outage waits, which dominate by orders of magnitude; a
// deterministic airtime keeps the probes free of RNG draws that could
// perturb the data plane's streams.
const relayAirRateBps = 723_200

// relayAirTime models the transmission time of one relayed SDU.
func relayAirTime(bytes int) sim.Time {
	return sim.Time(float64(bytes) * 8 / relayAirRateBps * float64(sim.Second))
}

// prober is the multi-hop relay measurement plane: for every sampled ordered
// piconet pair it offers probe SDUs on an exponential arrival process, walks
// the topology's minimum-hop route, and accounts the end-to-end
// store-and-forward delay by relay depth. The walk is analytic — it reads
// the bridges' current outage state and their deterministic residency
// schedules without touching any bridge or piconet state — so enabling
// probes, or sampling them down, cannot perturb the data plane (the golden
// equivalence suite pins this). Pair selection comes from samplePairs: at
// the default fraction 1 every ordered pair probes (the legacy exhaustive
// plane, byte-identical); below 1 only the seeded subset does, and each
// included pair keeps its own named RNG stream, so the surviving pairs'
// arrival processes are bit-identical to their exhaustive-run selves.
type prober struct {
	world   *sim.World
	bridges []*bridge
	hold    sim.Time
	service sim.Time
	every   sim.Time
	acc     *analysis.RelayDepthAccum

	routes [][]Hop // one route per sampled ordered pair, aligned with rngs/fns
	srcs   []int   // source piconet per sampled pair (per-source attribution)
	rngs   []*rand.Rand
	fns    []func()

	// bySrc holds per-source-piconet partials (allocated only in rollup
	// mode); the hierarchical roll-up merges them in ascending source order.
	bySrc []*analysis.RelayDepthAccum
}

// newProber samples the probe-pair subset and precomputes each pair's route
// (one shared Router, so the route build is O(sources·(P+E)) instead of the
// per-pair adjacency rebuild) and arrival stream.
func newProber(cfg Config, o *overlay, topo Topology) *prober {
	pr := &prober{
		world:   o.world,
		bridges: o.bridges,
		hold:    cfg.HoldTime,
		service: relayAirTime(cfg.RelayBytes),
		every:   cfg.RelayProbeEvery,
		acc:     analysis.NewRelayDepthAccum(),
	}
	if cfg.Rollup {
		pr.bySrc = make([]*analysis.RelayDepthAccum, topo.Piconets)
	}
	router := NewRouter(topo)
	for _, pair := range samplePairs(topo.Piconets, cfg.ProbePairFraction, cfg.Seed) {
		i := len(pr.routes)
		pr.routes = append(pr.routes, router.Route(pair.src, pair.dst))
		pr.srcs = append(pr.srcs, pair.src)
		pr.rngs = append(pr.rngs, o.world.RNG(fmt.Sprintf("probe.%d.%d", pair.src, pair.dst)))
		pr.fns = append(pr.fns, func() { pr.probe(i) })
	}
	return pr
}

// srcAccum returns pair i's per-source partial (nil outside rollup mode).
func (pr *prober) srcAccum(i int) *analysis.RelayDepthAccum {
	if pr.bySrc == nil {
		return nil
	}
	src := pr.srcs[i]
	if pr.bySrc[src] == nil {
		pr.bySrc[src] = analysis.NewRelayDepthAccum()
	}
	return pr.bySrc[src]
}

// start schedules every pair's first probe arrival.
func (pr *prober) start() {
	for i := range pr.fns {
		pr.world.ScheduleAfter(pr.next(i), pr.fns[i])
	}
}

// next samples pair i's exponential inter-arrival time.
func (pr *prober) next(i int) sim.Time {
	return sim.Time(pr.rngs[i].ExpFloat64() * float64(pr.every))
}

// probe offers one SDU on pair i's flow: walk the route hop by hop, waiting
// out any outage in progress, rotating to the pickup piconet, carrying the
// SDU, and rotating again to deliver — per-hop store-and-forward, exactly
// the delay anatomy of a scatternet relay path.
func (pr *prober) probe(i int) {
	now := pr.world.Now()
	pr.world.ScheduleAfter(pr.next(i), pr.fns[i])
	route := pr.routes[i]
	if route == nil {
		pr.acc.AddUnreachable()
		if a := pr.srcAccum(i); a != nil {
			a.AddUnreachable()
		}
		return
	}
	t := now
	for _, h := range route {
		b := pr.bridges[h.Bridge]
		// Wait out the bridge's current outage (future failures are unknown
		// at offer time; this is the delay the sender observes).
		if t < b.downUntil {
			t = b.downUntil
		}
		// Pickup: the bridge must rotate its residency to the hop's source.
		t = nextResidency(t, pr.hold, b.serves, h.From)
		// Carry: one SDU transmission into the bridge's queue discipline.
		t += pr.service
		// Delivery: rotate to the hop's destination piconet.
		t = nextResidency(t, pr.hold, b.serves, h.To)
	}
	pr.acc.AddProbe(len(route), (t - now).Seconds())
	if a := pr.srcAccum(i); a != nil {
		a.AddProbe(len(route), (t - now).Seconds())
	}
}

// nextResidency reports the earliest instant >= t at which the hold schedule
// has the bridge resident in piconet target (t itself when already there).
// A bridge that does not serve target never becomes resident; the routing
// layer guarantees that cannot be asked.
func nextResidency(t, hold sim.Time, serves []int, target int) sim.Time {
	idx := -1
	for i, p := range serves {
		if p == target {
			idx = i
			break
		}
	}
	if idx < 0 || len(serves) < 2 {
		return t
	}
	slot := int64(t) / int64(hold)
	ahead := (int64(idx) - slot%int64(len(serves)) + int64(len(serves))) % int64(len(serves))
	if ahead == 0 {
		return t
	}
	return sim.Time((slot + ahead) * int64(hold))
}
