package scatternet

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pan"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/stack"
)

// overlaySeedSalt decorrelates the overlay world from every piconet world
// derived from the same root seed.
const overlaySeedSalt = 0xB41D65CA77E27E7

// overlay is the inter-piconet plane: one independent simulation world that
// owns every bridge node plus one NAP-side anchor per piconet. The anchor
// is the piconet's access point as the bridge sees it — a full NAP host
// (HCI, SDP server, PAN profile) built from the catalogue's NAP machine —
// so bridge attachment and relay traffic exercise the real connection and
// data paths without reaching into the piconet worlds (which is what keeps
// every piconet bit-identical to its standalone run).
type overlay struct {
	world   *sim.World
	naps    []*stack.Host
	bridges []*bridge
	groups  []*redundancyGroup
	prober  *prober
	connID  uint64
}

// newOverlay builds the overlay world for the given membership map: the NAP
// anchors, the bridge hosts, the redundancy-group trackers, and the
// multi-hop relay probe plane.
func newOverlay(cfg Config, topo Topology) *overlay {
	o := &overlay{world: sim.NewWorld(cfg.Seed ^ overlaySeedSalt)}
	napSpec := device.NAP()
	for p := 0; p < topo.Piconets; p++ {
		spec := napSpec
		spec.Name = fmt.Sprintf("nap%d", p)
		// Anchor system errors are the piconet side's noise; the bridge
		// table attributes only bridge-raised errors, so drop them.
		o.naps = append(o.naps, spec.BuildHost(o.world, &o.connID,
			func(core.ErrorCode, string) {}))
	}
	panus := device.PANUs()
	for i, members := range topo.Members {
		spec := panus[i%len(panus)]
		o.bridges = append(o.bridges, newBridge(cfg, o, i, spec, members))
	}
	for _, group := range topo.RedundancyGroups() {
		names := make([]string, len(group))
		for i, b := range group {
			names[i] = o.bridges[b].name
		}
		g := newRedundancyGroup(topo.Members[group[0]], names)
		for i, b := range group {
			o.bridges[b].group, o.bridges[b].groupIdx = g, i
		}
		o.groups = append(o.groups, g)
	}
	o.prober = newProber(cfg, o, topo)
	return o
}

// Run starts every bridge and the probe plane, then advances the overlay
// world to the horizon.
func (o *overlay) Run(duration sim.Time) {
	for _, b := range o.bridges {
		b.start()
	}
	o.prober.start()
	o.world.RunUntil(duration)
}

// Table gathers the bridge-attributed aggregate.
func (o *overlay) Table() *analysis.BridgeTable {
	t := &analysis.BridgeTable{}
	for _, b := range o.bridges {
		t.Rows = append(t.Rows, b.acc)
	}
	return t
}

// RedundancyTable closes every group's open windows at the horizon and
// gathers the per-span redundancy aggregate.
func (o *overlay) RedundancyTable(duration sim.Time) *analysis.RedundancyTable {
	t := &analysis.RedundancyTable{}
	for _, g := range o.groups {
		t.Rows = append(t.Rows, g.closeAt(duration))
	}
	return t
}

// residencyAt reports which serves-index the hold schedule dictates at
// instant t: residency rotates one served piconet per HoldTime, anchored at
// t = 0. A bridge that recovers mid-slot rejoins at the residency the
// schedule dictates now — it does not resume where it failed.
func residencyAt(t, hold sim.Time, n int) int {
	if n <= 0 {
		return 0
	}
	return int((int64(t) / int64(hold)) % int64(n))
}

// relaySDU is one queued inter-piconet SDU (its arrival instant, for the
// store-and-forward latency accounting).
type relaySDU struct {
	at sim.Time
}

// bridge is one scatternet bridge node: a complete PANU-side stack host
// that time-shares attachment across the piconets it serves, relays queued
// SDUs through its PAN connection, and fails through the standard recovery
// cascade — taking the inter-piconet service of every served piconet down
// with it for the recovery TTR.
type bridge struct {
	name    string
	cfg     Config
	world   *sim.World
	host    *stack.Host
	cascade *recovery.Cascade
	rng     *rand.Rand
	arrRNGs []*rand.Rand
	serves  []int
	naps    []*stack.Host
	acc     *analysis.BridgeAccum

	resident  int
	attached  bool
	down      bool
	conn      *pan.Conn
	pipe      *stack.Pipe
	downUntil sim.Time
	busyUntil sim.Time
	queues    [][]relaySDU

	// group is the bridge's redundancy group (bridges spanning the same
	// piconet set); groupIdx is its member slot in it.
	group    *redundancyGroup
	groupIdx int

	fnHop, fnDrain, fnRejoin func()
	fnArrive                 []func()
}

// newBridge assembles bridge i from a catalogue machine.
func newBridge(cfg Config, o *overlay, i int, spec device.Spec, serves []int) *bridge {
	name := fmt.Sprintf("bridge%d", i)
	hostCfg := spec.HostConfig()
	if cfg.MutateBridgeHost != nil {
		cfg.MutateBridgeHost(name, &hostCfg)
	}
	b := &bridge{
		name:   name,
		cfg:    cfg,
		world:  o.world,
		rng:    o.world.RNG("bridge." + name),
		serves: append([]int(nil), serves...),
		acc:    analysis.NewBridgeAccum(name, spec.Name, serves),
		queues: make([][]relaySDU, len(serves)),
	}
	// The transport RNG stream is named after the spec, so give the bridge
	// a uniquely named copy (two bridges may share a catalogue machine).
	spec.Name = name
	b.host = stack.NewHost(hostCfg, o.world, name, spec.OS, spec.DistanceM,
		spec.IsPDA, false, spec.BuildTransport(o.world), &o.connID,
		func(core.ErrorCode, string) { b.acc.SysErrors++ })
	b.cascade = recovery.NewCascade(b.host, o.world.RNG("recovery."+name))
	for _, p := range serves {
		b.naps = append(b.naps, o.naps[p])
	}
	b.fnHop = b.hop
	b.fnDrain = b.drain
	b.fnRejoin = b.rejoin
	for d := range serves {
		d := d
		b.arrRNGs = append(b.arrRNGs, o.world.RNG(fmt.Sprintf("relay.%s.%d", name, d)))
		b.fnArrive = append(b.fnArrive, func() { b.arrive(d) })
	}
	return b
}

// start schedules the bridge's first attach (staggered so bridges do not
// page their NAPs in lockstep), the hold-time rotation, and the relay
// traffic arrival processes.
func (b *bridge) start() {
	b.world.At(sim.Time(b.rng.Int64N(int64(sim.Second))), b.fnRejoin)
	b.world.At(b.cfg.HoldTime, b.fnHop)
	for d := range b.serves {
		b.world.ScheduleAfter(b.nextArrival(d), b.fnArrive[d])
	}
}

// nextArrival samples the flow's exponential inter-arrival time.
func (b *bridge) nextArrival(d int) sim.Time {
	return sim.Time(b.arrRNGs[d].ExpFloat64() * float64(b.cfg.RelayEvery))
}

// arrive handles one relay SDU offered for destination serves[d]. Offered
// traffic during an outage is lost — a bridge failure costs every served
// piconet its inter-piconet service, which is the correlated-outage signal.
func (b *bridge) arrive(d int) {
	now := b.world.Now()
	switch {
	case now < b.downUntil:
		b.acc.AddOutageDrop(b.serves[d])
	case len(b.queues[d]) >= b.cfg.QueueCap:
		b.acc.AddQueueDrop(b.serves[d])
	default:
		b.queues[d] = append(b.queues[d], relaySDU{at: now})
		if b.attached && b.resident == d {
			delay := b.busyUntil - now
			if delay < 0 {
				delay = 0
			}
			b.world.ScheduleAfter(delay, b.fnDrain)
		}
	}
	b.world.ScheduleAfter(b.nextArrival(d), b.fnArrive[d])
}

// hop fires at every HoldTime boundary: the bridge leaves its current
// piconet and attaches to the one the schedule dictates. A bridge that is
// down skips the boundary (it rejoins when recovery completes).
func (b *bridge) hop() {
	now := b.world.Now()
	b.world.At(now+b.cfg.HoldTime, b.fnHop)
	if now < b.downUntil {
		return
	}
	next := residencyAt(now, b.cfg.HoldTime, len(b.serves))
	if b.attached && next == b.resident {
		return
	}
	b.detach()
	if b.attach(next) && b.cfg.OnBridgeHop != nil {
		b.cfg.OnBridgeHop(b.name, now, b.serves[next])
	}
}

// rejoin attaches the bridge to the schedule-dictated piconet outside the
// boundary rotation: at campaign start and when an outage ends mid-slot. It
// also closes the bridge's redundancy-group outage window — rejoin is
// scheduled at every outage's end, so the window closes exactly on time even
// when a same-instant hop re-attaches the bridge first.
func (b *bridge) rejoin() {
	now := b.world.Now()
	if b.down && now >= b.downUntil {
		b.down = false
		if b.group != nil {
			b.group.memberUp(b.groupIdx, now)
		}
	}
	if b.attached || now < b.downUntil {
		return
	}
	b.attach(residencyAt(now, b.cfg.HoldTime, len(b.serves)))
}

// detach quietly leaves the current piconet.
func (b *bridge) detach() {
	if b.conn != nil {
		b.host.PANU.Disconnect(b.conn, b.naps[b.resident].NAP)
	}
	b.conn, b.pipe = nil, nil
	b.attached = false
}

// attach joins piconet serves[idx] through the full connection chain —
// baseband page, PAN profile connect, master/slave switch (the operation
// that makes a node a scatternet bridge) — and reports success. Failures
// run the bridge failure path.
func (b *bridge) attach(idx int) bool {
	b.resident = idx
	nap := b.naps[idx]
	var dur sim.Time
	hd, res := b.host.HCI.CreateConnection(nap.Node)
	dur += res.Dur
	if res.Err != nil {
		b.fail(core.UFConnectFailed)
		return false
	}
	conn, pres := b.host.PANU.Connect(hd, nap.NAP, true)
	dur += pres.Dur
	if pres.Err != nil {
		if pres.Stage == pan.StageL2CAP {
			b.fail(core.UFConnectFailed)
		} else {
			b.fail(core.UFPANConnectFailed)
		}
		return false
	}
	b.conn = conn
	sres := b.host.PANU.SwitchRole(conn, nap.NAP)
	dur += sres.Dur
	if sres.Err != nil {
		if pan.RequestLegFailed(sres.Err) {
			b.fail(core.UFSwitchRoleRequestFailed)
		} else {
			b.fail(core.UFSwitchRoleCommandFailed)
		}
		return false
	}
	b.pipe = b.host.OpenPipe(conn)
	b.attached = true
	b.busyUntil = b.world.Now() + dur
	b.acc.AddHop()
	if len(b.queues[idx]) > 0 {
		b.world.ScheduleAfter(dur, b.fnDrain)
	}
	return true
}

// drain relays the resident piconet's queued SDUs through the pipe. A lost
// SDU is a bridge failure mid-relay: the remaining queue survives for the
// next residency, but the bridge goes down for the recovery TTR.
func (b *bridge) drain() {
	if !b.attached || b.world.Now() < b.downUntil {
		return
	}
	now := b.world.Now()
	if now < b.busyUntil {
		// The link is still carrying an earlier transfer; try again when
		// it frees up instead of overlapping transmissions.
		b.world.At(b.busyUntil, b.fnDrain)
		return
	}
	q := b.queues[b.resident]
	var dur sim.Time
	for i, sdu := range q {
		outcome, elapsed := b.pipe.SendPacket(core.PTDH5, b.cfg.RelayBytes)
		dur += elapsed
		switch outcome {
		case stack.PacketLost:
			b.acc.AddRelayLoss(b.serves[b.resident])
			b.queues[b.resident] = append(q[:0], q[i+1:]...)
			b.fail(core.UFPacketLoss)
			return
		case stack.PacketCorrupted:
			b.acc.AddCorruption(b.serves[b.resident])
		default:
			b.acc.AddDelivery(b.serves[b.resident], (now + dur - sdu.at).Seconds())
		}
	}
	b.queues[b.resident] = q[:0]
	b.extendBusy(now + dur)
}

// extendBusy advances the link-busy horizon monotonically (a no-op drain
// must never roll an in-flight transfer's window back).
func (b *bridge) extendBusy(until sim.Time) {
	if until > b.busyUntil {
		b.busyUntil = until
	}
}

// fail runs the bridge's recovery for a failure of kind f and opens the
// correlated outage window: the bridge drops its piconet attachment, stays
// down for the cascade's TTR, and every piconet it serves records the
// outage. Recovery completion schedules the rejoin.
func (b *bridge) fail(f core.UserFailure) {
	if b.conn != nil {
		b.host.PANU.Abort(b.conn, b.naps[b.resident].NAP)
	}
	b.conn, b.pipe = nil, nil
	b.attached = false
	depth, ok := recovery.SampleDepth(f, b.rng)
	if !ok {
		return
	}
	out := b.cascade.RunWithDepth(b.cfg.Scenario, depth)
	b.downUntil = b.world.Now() + out.TTR
	b.acc.AddOutage(f, out.TTR.Seconds())
	if !b.down {
		b.down = true
		if b.group != nil {
			b.group.memberDown(b.groupIdx, b.world.Now())
		}
	}
	b.world.At(b.downUntil, b.fnRejoin)
}
