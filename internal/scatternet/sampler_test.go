package scatternet

import (
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// exhaustivePairs is the canonical full ordered-pair set the sampler must
// degenerate to at fraction 1.
func exhaustivePairs(piconets int) []probePair {
	var pairs []probePair
	for src := 0; src < piconets; src++ {
		for dst := 0; dst < piconets; dst++ {
			if src != dst {
				pairs = append(pairs, probePair{src: src, dst: dst})
			}
		}
	}
	return pairs
}

// TestSamplePairsExhaustive pins the degenerate fractions: 0 (the unset zero
// value), 1 and anything outside (0, 1) must yield exactly the exhaustive
// ordered-pair set in canonical order — the property that makes the default
// configuration byte-identical to the pre-sampling engine.
func TestSamplePairsExhaustive(t *testing.T) {
	want := exhaustivePairs(5)
	for _, fraction := range []float64{0, 1, -0.3, 1.5} {
		got := samplePairs(5, fraction, 7)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("samplePairs(5, %v, 7) = %v, want the exhaustive set %v", fraction, got, want)
		}
	}
	if got := samplePairs(1, 1, 7); len(got) != 0 {
		t.Errorf("samplePairs(1, 1, 7) = %v, want no pairs for a single piconet", got)
	}
}

// TestSamplePairsDeterministic proves the sample is a pure function of
// (piconets, fraction, seed) and that distinct seeds draw distinct subsets.
func TestSamplePairsDeterministic(t *testing.T) {
	a := samplePairs(40, 0.3, 11)
	b := samplePairs(40, 0.3, 11)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("samplePairs is not deterministic for a fixed (piconets, fraction, seed)")
	}
	c := samplePairs(40, 0.3, 12)
	if reflect.DeepEqual(a, c) {
		t.Fatal("seeds 11 and 12 drew the same 0.3-fraction subset of 1560 pairs")
	}
}

// TestSamplePairsSubsetProperties checks the structural invariants of any
// sampled subset: valid ordered pairs only, strictly ascending canonical
// order (so it is a subsequence of the exhaustive set), no duplicates.
func TestSamplePairsSubsetProperties(t *testing.T) {
	const piconets = 30
	pairs := samplePairs(piconets, 0.4, 3)
	if len(pairs) == 0 {
		t.Fatal("0.4-fraction sample of 870 pairs came back empty")
	}
	less := func(a, b probePair) bool {
		return a.src < b.src || (a.src == b.src && a.dst < b.dst)
	}
	for i, p := range pairs {
		if p.src < 0 || p.src >= piconets || p.dst < 0 || p.dst >= piconets || p.src == p.dst {
			t.Fatalf("pair %d = %v is not a valid ordered pair", i, p)
		}
		if i > 0 && !less(pairs[i-1], p) {
			t.Fatalf("pairs %d..%d out of canonical order: %v then %v", i-1, i, pairs[i-1], p)
		}
	}
}

// TestSamplePairsFractionCI checks the sample size against the binomial
// model: over n = P(P-1) independent coins of probability f, the observed
// count must land within 4 standard deviations of nf. With the sampler's
// fixed PCG stream this is a deterministic assertion, not a flaky one; the
// bound just documents how much slack "statistically faithful" gets.
func TestSamplePairsFractionCI(t *testing.T) {
	const piconets = 60
	n := float64(piconets * (piconets - 1))
	for _, f := range []float64{0.1, 0.5, 0.9} {
		got := float64(len(samplePairs(piconets, f, 5)))
		sigma := math.Sqrt(n * f * (1 - f))
		if math.Abs(got-n*f) > 4*sigma {
			t.Errorf("fraction %v: sampled %v of %v pairs, want %v ± %v (4σ)", f, got, n, n*f, 4*sigma)
		}
	}
}

// referenceRoute is the legacy per-pair BFS (early-terminating, adjacency
// rebuilt per query) that Topology.Route shipped before the Router cache —
// kept verbatim as the oracle for TestRouterMatchesRoute.
func referenceRoute(t Topology, src, dst int) []Hop {
	if src < 0 || src >= t.Piconets || dst < 0 || dst >= t.Piconets {
		return nil
	}
	if src == dst {
		return []Hop{}
	}
	edge := t.edgeMap()
	prev := make([]Hop, t.Piconets)
	seen := make([]bool, t.Piconets)
	seen[src] = true
	frontier := []int{src}
	for len(frontier) > 0 && !seen[dst] {
		var next []int
		for _, u := range frontier {
			neigh := make([]int, 0, len(edge[u]))
			for v := range edge[u] {
				neigh = append(neigh, v)
			}
			sort.Ints(neigh)
			for _, v := range neigh {
				if seen[v] {
					continue
				}
				seen[v] = true
				prev[v] = Hop{Bridge: edge[u][v], From: u, To: v}
				next = append(next, v)
			}
		}
		frontier = next
	}
	if !seen[dst] {
		return nil
	}
	var path []Hop
	for v := dst; v != src; v = prev[v].From {
		path = append(path, prev[v])
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// TestRouterMatchesRoute pins the Router cache to the legacy per-pair BFS:
// for every ordered pair (including src == dst and out-of-range queries) of
// a representative topology zoo, Router.Route and the early-terminating
// reference derive the same path hop for hop. This is the identity that
// lets the probe plane swap in the shared Router without moving a byte of
// output.
func TestRouterMatchesRoute(t *testing.T) {
	random, err := RandomConnected(9, 13, 21)
	if err != nil {
		t.Fatal(err)
	}
	topos := map[string]Topology{
		"ring":         Ring(7),
		"star":         Star(6),
		"mesh":         Mesh(5),
		"random":       random,
		"legacy":       RingBridges(4, 6),
		"disconnected": {Piconets: 5, Members: [][]int{{0, 1}, {2, 3}}},
		"wide":         {Piconets: 6, Members: [][]int{{0, 1, 2}, {2, 3, 4}, {4, 5, 0}}},
	}
	for name, topo := range topos {
		router := NewRouter(topo)
		for src := -1; src <= topo.Piconets; src++ {
			for dst := -1; dst <= topo.Piconets; dst++ {
				want := referenceRoute(topo, src, dst)
				got := router.Route(src, dst)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s: Router.Route(%d, %d) = %v, reference BFS says %v", name, src, dst, got, want)
				}
				if convenience := topo.Route(src, dst); !reflect.DeepEqual(convenience, want) {
					t.Errorf("%s: Topology.Route(%d, %d) = %v, reference BFS says %v", name, src, dst, convenience, want)
				}
			}
		}
	}
}

// TestSamplePairsNaN pins the NaN regression: a NaN fraction must degenerate
// to the exhaustive set like every other out-of-domain value — the old
// comparison chain let NaN slip past both branches and silently probe
// nothing — and the config layer must refuse NaN loudly before a campaign
// runs at all.
func TestSamplePairsNaN(t *testing.T) {
	want := exhaustivePairs(5)
	if got := samplePairs(5, math.NaN(), 7); !reflect.DeepEqual(got, want) {
		t.Errorf("samplePairs(5, NaN, 7) = %v, want the exhaustive set", got)
	}
	cfg := Config{Seed: 1, Duration: 3600e9, Scenario: 3, Piconets: 2, Bridges: 1,
		ProbePairFraction: math.NaN()}
	err := cfg.Validate()
	if err == nil {
		t.Fatal("Config.Validate accepted a NaN probe pair fraction")
	}
	if !strings.Contains(err.Error(), "NaN") {
		t.Errorf("Validate error %q does not name NaN", err)
	}
}
