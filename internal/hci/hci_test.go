package hci

import (
	"errors"
	"math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/transport"
)

type fixture struct {
	host *Host
	now  sim.Time
	logs []core.ErrorCode
}

func newFixture(t *testing.T, mutate func(*Config)) *fixture {
	t.Helper()
	cfg := DefaultConfig()
	// Deterministic by default: no spontaneous faults unless the test asks.
	cfg.TimeoutProbIdle, cfg.TimeoutProbBusy, cfg.InquiryFailProb = 0, 0, 0
	if mutate != nil {
		mutate(&cfg)
	}
	f := &fixture{}
	tr := transport.NewH4(transport.H4Config{BaudRate: 115200})
	f.host = NewHost(cfg, "Verde", tr,
		func() sim.Time { return f.now },
		rand.New(rand.NewPCG(1, 2)),
		func(code core.ErrorCode, op string) { f.logs = append(f.logs, code) })
	return f
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.CommandTimeout = 0
	if bad.Validate() == nil {
		t.Error("zero timeout should fail")
	}
	bad = DefaultConfig()
	bad.TimeoutProbBusy = 1.5
	if bad.Validate() == nil {
		t.Error("probability 1.5 should fail")
	}
}

func TestConnectionLifecycle(t *testing.T) {
	f := newFixture(t, nil)
	hd, res := f.host.CreateConnection("Giallo")
	if res.Err != nil {
		t.Fatalf("create: %v", res.Err)
	}
	if hd == InvalidHandle || !f.host.ValidHandle(hd) {
		t.Fatal("no valid handle allocated")
	}
	if peer, ok := f.host.Peer(hd); !ok || peer != "Giallo" {
		t.Errorf("Peer = %q/%v", peer, ok)
	}
	if f.host.OpenHandles() != 1 {
		t.Errorf("OpenHandles = %d", f.host.OpenHandles())
	}
	if res := f.host.Disconnect(hd); res.Err != nil {
		t.Fatalf("disconnect: %v", res.Err)
	}
	if f.host.ValidHandle(hd) {
		t.Error("handle survived disconnect")
	}
}

func TestDisconnectUnknownHandle(t *testing.T) {
	f := newFixture(t, nil)
	res := f.host.Disconnect(42)
	var se *core.SimError
	if !errors.As(res.Err, &se) || se.Code != core.CodeHCIInvalidHandle {
		t.Fatalf("want invalid-handle error, got %v", res.Err)
	}
	if len(f.logs) != 1 || f.logs[0] != core.CodeHCIInvalidHandle {
		t.Errorf("sink saw %v, want one invalid-handle entry", f.logs)
	}
	if _, inv := f.host.Stats(); inv != 1 {
		t.Errorf("invalid-handle counter = %d", inv)
	}
}

func TestBusyWindowRaisesTimeoutProbability(t *testing.T) {
	f := newFixture(t, func(c *Config) {
		c.TimeoutProbBusy = 1 // certain timeout while busy
	})
	// Idle: command sails through.
	if _, res := f.host.CreateConnection("Giallo"); res.Err != nil {
		t.Fatalf("idle create failed: %v", res.Err)
	}
	// The create left the controller busy for ConnSetupTime; a command
	// issued now must hit the busy timeout.
	if !f.host.Busy() {
		t.Fatal("controller should be busy after create")
	}
	_, res := f.host.CreateConnection("Miseno")
	var se *core.SimError
	if !errors.As(res.Err, &se) || se.Code != core.CodeHCICommandTimeout {
		t.Fatalf("want command timeout on busy device, got %v", res.Err)
	}
	if res.Dur < DefaultConfig().CommandTimeout {
		t.Errorf("timeout should cost the full command timeout, got %v", res.Dur)
	}
	// Advance past the busy window: commands succeed again.
	f.now += 10 * sim.Second
	if _, res := f.host.CreateConnection("Azzurro"); res.Err != nil {
		t.Fatalf("post-busy create failed: %v", res.Err)
	}
}

func TestSetBusyExtendsNotShrinks(t *testing.T) {
	f := newFixture(t, nil)
	f.host.SetBusy(10 * sim.Second)
	f.host.SetBusy(5 * sim.Second)
	f.now = 7 * sim.Second
	if !f.host.Busy() {
		t.Error("shorter SetBusy should not shrink the window")
	}
}

func TestSwitchRole(t *testing.T) {
	f := newFixture(t, nil)
	hd, _ := f.host.CreateConnection("Giallo")
	if res := f.host.SwitchRole(hd); res.Err != nil {
		t.Fatalf("switch role: %v", res.Err)
	}
	res := f.host.SwitchRole(999)
	var se *core.SimError
	if !errors.As(res.Err, &se) || se.Code != core.CodeHCIInvalidHandle {
		t.Fatalf("switch on bad handle: %v", res.Err)
	}
}

func TestInquiry(t *testing.T) {
	f := newFixture(t, nil)
	res := f.host.Inquiry()
	if res.Err != nil {
		t.Fatalf("inquiry: %v", res.Err)
	}
	if res.Dur < DefaultConfig().InquiryDuration {
		t.Errorf("inquiry duration %v below configured %v", res.Dur, DefaultConfig().InquiryDuration)
	}
	if !f.host.Busy() {
		t.Error("inquiry should leave the controller busy")
	}
}

func TestInquiryAbnormalTermination(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.InquiryFailProb = 1 })
	res := f.host.Inquiry()
	if res.Err == nil {
		t.Fatal("want abnormal termination")
	}
	var se *core.SimError
	if !errors.As(res.Err, &se) || se.Code != core.CodeUnknown {
		t.Fatalf("inquiry failures carry no system error code, got %v", res.Err)
	}
	if len(f.logs) != 0 {
		t.Errorf("inquiry failure should not log a system entry (no relationship in Table 2), got %v", f.logs)
	}
}

func TestCommandOnHandle(t *testing.T) {
	f := newFixture(t, nil)
	hd, _ := f.host.CreateConnection("Giallo")
	if res := f.host.CommandOnHandle("l2cap.config", hd, 12); res.Err != nil {
		t.Fatalf("command on live handle: %v", res.Err)
	}
	res := f.host.CommandOnHandle("l2cap.config", hd+1, 12)
	var se *core.SimError
	if !errors.As(res.Err, &se) || se.Code != core.CodeHCIInvalidHandle {
		t.Fatalf("command on stale handle: %v", res.Err)
	}
}

func TestReset(t *testing.T) {
	f := newFixture(t, nil)
	hd, _ := f.host.CreateConnection("Giallo")
	f.host.SetBusy(sim.Hour)
	f.host.Reset()
	if f.host.ValidHandle(hd) {
		t.Error("reset should drop handles")
	}
	if f.host.Busy() {
		t.Error("reset should clear the busy window")
	}
}

func TestTransportFaultSurfacesThroughHCI(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TimeoutProbIdle, cfg.TimeoutProbBusy, cfg.InquiryFailProb = 0, 0, 0
	bcspCfg := transport.DefaultBCSPConfig()
	bcspCfg.ReorderProb, bcspCfg.RecoverProb = 1, 0
	var logs []core.ErrorCode
	var now sim.Time
	host := NewHost(cfg, "Ipaq",
		transport.NewBCSPSim(bcspCfg, "Ipaq", rand.New(rand.NewPCG(3, 4))),
		func() sim.Time { return now },
		rand.New(rand.NewPCG(5, 6)),
		func(code core.ErrorCode, op string) { logs = append(logs, code) })
	_, res := host.CreateConnection("Giallo")
	var se *core.SimError
	if !errors.As(res.Err, &se) || se.Code != core.CodeBCSPOutOfOrder {
		t.Fatalf("want BCSP out-of-order through HCI, got %v", res.Err)
	}
	if len(logs) != 1 || logs[0] != core.CodeBCSPOutOfOrder {
		t.Errorf("sink saw %v", logs)
	}
}

func TestStatsCountTimeouts(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.TimeoutProbIdle = 1 })
	f.host.Inquiry()
	if to, _ := f.host.Stats(); to != 1 {
		t.Errorf("timeouts = %d, want 1", to)
	}
}
